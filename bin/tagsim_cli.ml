(** The tagsim command-line interface.

    - [tagsim list]: the benchmark programs
    - [tagsim run NAME ...]: run a benchmark under a configuration
    - [tagsim file PATH ...]: compile and run a Lisp source file
    - [tagsim asm NAME ...]: dump the scheduled assembly of a benchmark
    - [tagsim experiments ...]: regenerate the paper's tables and figures *)

open Cmdliner

let scheme_arg =
  let parse s =
    try Ok (Tagsim.Scheme.by_name s)
    with Invalid_argument m -> Error (`Msg m)
  in
  let print ppf (s : Tagsim.Scheme.t) = Fmt.string ppf s.Tagsim.Scheme.name in
  Arg.conv (parse, print)

let scheme =
  Arg.(
    value
    & opt scheme_arg Tagsim.Scheme.high5
    & info [ "s"; "scheme" ] ~docv:"SCHEME"
        ~doc:"Tag scheme: high5, high6, low2 or low3.")

let checking =
  Arg.(
    value & flag
    & info [ "c"; "checking" ] ~doc:"Enable full run-time checking.")

let config =
  let parse s =
    match Tagsim.Support.by_name s with
    | Some c -> Ok c
    | None -> Error (`Msg ("unknown hardware configuration: " ^ s))
  in
  let print ppf s = Fmt.string ppf (Tagsim.Support.describe s) in
  Arg.(
    value
    & opt (conv (parse, print)) Tagsim.Support.software
    & info [ "hw" ] ~docv:"CONFIG"
        ~doc:
          "Hardware support: software, row1..row7 (Table 2 rows) or spur.")

let semi =
  Arg.(
    value
    & opt (some int) None
    & info [ "semi" ] ~docv:"BYTES" ~doc:"Semispace size in bytes.")

let opt_arg =
  Arg.(
    value
    & opt (enum [ ("none", `None); ("checks", `Checks) ]) `None
    & info [ "opt" ] ~docv:"LEVEL"
        ~doc:
          "Backend optimization level: $(b,none) (default; byte-identical \
           to the monolithic oracle) or $(b,checks) (tag-knowledge \
           check elimination over the typed tag-operation IR).")

let engine_arg =
  let parse s =
    match Tagsim.Machine.engine_by_name s with
    | Some e -> Ok e
    | None ->
        Error
          (`Msg
             (Fmt.str "unknown engine: %s (valid engines: %s)" s
                (String.concat ", "
                   (List.map Tagsim.Machine.engine_name
                      Tagsim.Machine.engine_all))))
  in
  let print ppf e = Fmt.string ppf (Tagsim.Machine.engine_name e) in
  Arg.(
    value
    & opt (conv (parse, print)) `Traced
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Simulator engine: $(b,traced) (default; profile-guided \
           superblock traces over fused blocks), $(b,fused) \
           (basic-block fused closures with direct chaining), \
           $(b,predecoded) (per-instruction pre-compiled closures) or \
           $(b,reference) (the re-decoding interpreter).  All produce \
           bit-identical statistics.")

let jobs =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the experiment matrix; 0 (the default) \
           means the recommended domain count of this machine, clamped \
           to 16.")

let support_of checking config =
  if checking then Tagsim.Support.with_checking config else config

let pp_stats ppf (stats : Tagsim.Stats.t) =
  let total = Tagsim.Stats.total stats in
  let pct n = 100.0 *. float_of_int n /. float_of_int total in
  Fmt.pf ppf "cycles: %d  (instructions %d)@\n" total
    (Tagsim.Stats.executed_insns stats);
  Fmt.pf ppf "tag insertion : %7d  (%5.2f%%)@\n"
    (Tagsim.Stats.insertion stats)
    (pct (Tagsim.Stats.insertion stats));
  Fmt.pf ppf "tag removal   : %7d  (%5.2f%%)@\n" (Tagsim.Stats.removal stats)
    (pct (Tagsim.Stats.removal stats));
  Fmt.pf ppf "tag extraction: %7d  (%5.2f%%)@\n"
    (Tagsim.Stats.extraction stats)
    (pct (Tagsim.Stats.extraction stats));
  Fmt.pf ppf "tag checking  : %7d  (%5.2f%%)  (incl. extraction)@\n"
    (Tagsim.Stats.tag_checking stats)
    (pct (Tagsim.Stats.tag_checking stats));
  Fmt.pf ppf "generic arith : %7d  (%5.2f%%)@\n"
    (Tagsim.Stats.generic_arith stats)
    (pct (Tagsim.Stats.generic_arith stats));
  Fmt.pf ppf "allocation    : %7d  (%5.2f%%)@\n" (Tagsim.Stats.alloc stats)
    (pct (Tagsim.Stats.alloc stats));
  Fmt.pf ppf "collector     : %7d  (%5.2f%%)@\n" (Tagsim.Stats.gc stats)
    (pct (Tagsim.Stats.gc stats))

let run_program source sizes scheme support opt engine =
  let program, result =
    Tagsim.Program.run_source ~opt ~engine ~sizes ~scheme ~support source
  in
  (match result.Tagsim.Program.abort with
  | Some msg -> Fmt.pr "aborted: %s@." msg
  | None ->
      Fmt.pr "result: %s@."
        (Tagsim.Program.hval_to_string
           (Option.get result.Tagsim.Program.value)));
  Fmt.pr "%a" pp_stats result.Tagsim.Program.stats;
  Fmt.pr "collections: %d (%d bytes copied)@."
    result.Tagsim.Program.gc_collections
    result.Tagsim.Program.gc_bytes_copied;
  Fmt.pr "object code: %d words@."
    program.Tagsim.Program.meta.Tagsim.Program.object_words;
  let elided = program.Tagsim.Program.meta.Tagsim.Program.checks_eliminated in
  if elided > 0 then Fmt.pr "checks eliminated: %d@." elided

let sizes_of (entry_sizes : Tagsim.Layout.sizes) semi : Tagsim.Layout.sizes =
  match semi with
  | None -> entry_sizes
  | Some bytes -> { entry_sizes with Tagsim.Layout.semi_bytes = bytes }

(* --- run --- *)

let bench_name =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"NAME" ~doc:"Benchmark name (see $(b,tagsim list)).")

let run_cmd =
  let run name scheme checking config semi opt engine =
    let entry = Tagsim.Benchmarks.find name in
    Fmt.pr "== %s: %s@." name entry.Tagsim.Benchmarks.description;
    run_program entry.Tagsim.Benchmarks.source
      (sizes_of entry.Tagsim.Benchmarks.sizes semi)
      scheme
      (support_of checking config)
      opt engine
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a benchmark program on the simulator.")
    Term.(
      const run $ bench_name $ scheme $ checking $ config $ semi $ opt_arg
      $ engine_arg)

(* --- file --- *)

let file_cmd =
  let run path scheme checking config semi opt engine =
    let ic = open_in path in
    let n = in_channel_length ic in
    let source = really_input_string ic n in
    close_in ic;
    run_program source
      (sizes_of Tagsim.Layout.default_sizes semi)
      scheme
      (support_of checking config)
      opt engine
  in
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Lisp source file defining (de main () ...).")
  in
  Cmd.v
    (Cmd.info "file" ~doc:"Compile and run a Lisp source file.")
    Term.(
      const run $ path $ scheme $ checking $ config $ semi $ opt_arg
      $ engine_arg)

(* --- list --- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Tagsim.Benchmarks.entry) ->
        Fmt.pr "%-8s %s@." e.Tagsim.Benchmarks.name
          e.Tagsim.Benchmarks.description)
      (Tagsim.Benchmarks.all ())
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the benchmark programs.")
    Term.(const run $ const ())

(* --- asm --- *)

let asm_cmd =
  let run name scheme checking config opt =
    let entry = Tagsim.Benchmarks.find name in
    let program =
      Tagsim.Program.compile ~opt ~sizes:entry.Tagsim.Benchmarks.sizes ~scheme
        ~support:(support_of checking config)
        entry.Tagsim.Benchmarks.source
    in
    Fmt.pr "%a@." Tagsim.Image.pp program.Tagsim.Program.image
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Dump the scheduled assembly of a benchmark.")
    Term.(const run $ bench_name $ scheme $ checking $ config $ opt_arg)

(* --- profile --- *)

let profile_cmd =
  let run name scheme checking config =
    let entry = Tagsim.Benchmarks.find name in
    let rows =
      Tagsim.Analysis.Profile.measure ~scheme
        ~support:(support_of checking config)
        entry
    in
    Fmt.pr "%a@." Tagsim.Analysis.Profile.pp rows
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Per-function cycle profile of a benchmark run.")
    Term.(const run $ bench_name $ scheme $ checking $ config)

(* --- fuzz --- *)

let fuzz_cmd =
  let module Cross = Tagsim.Fuzz.Cross in
  let module Driver = Tagsim.Fuzz.Driver in
  let run seed count max_size matrix shrink out =
    let seed =
      match seed with
      | Some s -> s
      | None ->
          (* no seed given: derive one and echo it, so any CI failure
             is replayable with [fuzz --seed S] *)
          Unix.gettimeofday () *. 1e6
          |> Int64.of_float
          |> Int64.logand 0x3FFFFFFFL
          |> Int64.to_int
    in
    Fmt.pr "fuzz: seed %d, %d programs, max size %d, matrix %s@." seed count
      max_size matrix.Cross.m_name;
    let report =
      Driver.campaign
        ~log:(fun line -> Fmt.pr "%s@." line)
        ~shrink ~matrix ~seed ~count ~max_size ()
    in
    Fmt.pr "fuzz: %d programs checked, %d rejected by the compiler, %d \
            divergence(s)@."
      report.Driver.r_generated report.Driver.r_skipped
      (List.length report.Driver.r_counterexamples);
    (match report.Driver.r_counterexamples with
    | [] -> ()
    | cexs ->
        (try Sys.mkdir out 0o777 with Sys_error _ -> ());
        List.iter
          (fun (c : Driver.counterexample) ->
            let path =
              Filename.concat out
                (Fmt.str "cex_seed%d_prog%d.lisp" c.Driver.cx_seed
                   c.Driver.cx_index)
            in
            let oc = open_out path in
            Printf.fprintf oc
              "; tagsim fuzz counterexample\n\
               ; reproduce: tagsim fuzz --seed %d --count %d\n\
               ; divergence: %s\n\
               ; shrunk (%d nodes):\n%s\n\n\
               ; original:\n%s\n"
              c.Driver.cx_seed (c.Driver.cx_index + 1) c.Driver.cx_detail
              c.Driver.cx_nodes c.Driver.cx_shrunk
              (String.concat "\n"
                 (List.map (fun l -> "; " ^ l)
                    (String.split_on_char '\n' c.Driver.cx_source)));
            close_out oc;
            Fmt.pr "counterexample written to %s@." path)
          cexs;
        exit 1)
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "PRNG seed.  The same seed, count and size replay the exact \
             program sequence; omitted, a time-derived seed is chosen \
             and echoed.")
  in
  let count =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate.")
  in
  let max_size =
    Arg.(
      value & opt int 80
      & info [ "max-size" ] ~docv:"NODES"
          ~doc:"Size bound (s-expression nodes) for generated programs.")
  in
  let matrix =
    let parse s =
      match Tagsim.Fuzz.Cross.by_name s with
      | Some m -> Ok m
      | None ->
          Error
            (`Msg
               (Fmt.str "unknown matrix: %s (valid: %s)" s
                  (String.concat ", " Tagsim.Fuzz.Cross.matrix_names)))
    in
    let print ppf (m : Cross.matrix) = Fmt.string ppf m.Cross.m_name in
    Arg.(
      value
      & opt (conv (parse, print)) Cross.full
      & info [ "matrix" ] ~docv:"NAME"
          ~doc:
            "Configuration matrix: $(b,full) (all schemes, a support \
             sample, every engine/backend/opt combination) or $(b,smoke) \
             (one scheme/support pair, every engine/backend/opt \
             combination).")
  in
  let shrink =
    Arg.(
      value & opt bool true
      & info [ "shrink" ] ~docv:"BOOL"
          ~doc:"Delta-debug counterexamples down to a minimal reproducer.")
  in
  let out =
    Arg.(
      value & opt string "_fuzz_out"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Directory for shrunk counterexample files (CI artifacts).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random programs over the \
          engine/backend/opt matrix, checked against the reference \
          interpreter.")
    Term.(const run $ seed $ count $ max_size $ matrix $ shrink $ out)

(* --- experiments --- *)

(* The [--verbose] run summary, on stderr so the artifact text on stdout
   stays byte-identical between cold and warm runs.  CI greps the
   "cache:" and "simulations:" lines to assert a 100% hit rate. *)
let print_run_summary () =
  let module Cache = Tagsim.Analysis.Cache in
  let module Objcache = Tagsim.Objcache in
  let hits, misses, writes = Cache.counters () in
  let ohits, omisses, owrites = Objcache.counters () in
  let compile_s, simulate_s, render_s =
    Tagsim.Analysis.Instrument.totals ()
  in
  let bt = Tagsim.Analysis.Instrument.backend_totals () in
  Fmt.epr "== run summary ==@.";
  Fmt.epr "jobs: %d@." !Tagsim.Analysis.Pool.default_jobs;
  if Cache.enabled () then
    Fmt.epr "cache: %d hits, %d misses, %d writes (dir %s)@." hits misses
      writes (Cache.dir ())
  else Fmt.epr "cache: disabled@.";
  Fmt.epr "objects: %d hits, %d misses, %d writes%s@." ohits omisses owrites
    (if Objcache.enabled () then Fmt.str " (dir %s)" (Objcache.dir ())
     else " (store disabled)");
  Fmt.epr "simulations: %d@." (Tagsim.Analysis.Run.simulations ());
  Fmt.epr "phases: compile %.2fs  simulate %.2fs  render %.2fs@." compile_s
    simulate_s render_s;
  Fmt.epr
    "backend: codegen %.2fs  lower %.2fs  opt %.2fs  select %.2fs  schedule \
     %.2fs  assemble %.2fs  link %.2fs@."
    bt.Tagsim.Bphase.codegen_s bt.Tagsim.Bphase.lower_s bt.Tagsim.Bphase.opt_s
    bt.Tagsim.Bphase.select_s bt.Tagsim.Bphase.schedule_s
    bt.Tagsim.Bphase.assemble_s bt.Tagsim.Bphase.link_s;
  let tt = Tagsim.Analysis.Instrument.trace_totals () in
  let pct part whole =
    if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole
  in
  Fmt.epr
    "traces: %d formed, %d entered, side-exit rate %.2f%%, %.1f%% of \
     instructions retired in traces@."
    tt.Tagsim.Machine.tt_formed tt.Tagsim.Machine.tt_entries
    (pct tt.Tagsim.Machine.tt_side_exits tt.Tagsim.Machine.tt_entries)
    (pct tt.Tagsim.Machine.tt_in_trace tt.Tagsim.Machine.tt_retired);
  (let phits, pmisses, pwrites, ploaded =
     Tagsim.Analysis.Instrument.plan_totals ()
   in
   if Tagsim.Plan.enabled () then
     Fmt.epr
       "plans: %d loaded (%d hits, %d misses), %d formed, %d flushed (dir \
        %s)@."
       ploaded phits pmisses tt.Tagsim.Machine.tt_formed pwrites
       (Tagsim.Plan.dir ())
   else Fmt.epr "plans: disabled@.");
  match Tagsim.Analysis.Run.dispatch_summary () with
  | Some d -> Fmt.epr "dispatch: %s@." d
  | None -> ()

let experiments_cmd =
  let module Spec = Tagsim.Analysis.Spec in
  let module Planner = Tagsim.Analysis.Planner in
  let module Cache = Tagsim.Analysis.Cache in
  let run only jobs engine json csv cache_dir no_cache no_plan_cache verbose =
    Tagsim.Analysis.Pool.set_default_jobs jobs;
    Cache.set_dir cache_dir;
    Cache.set_enabled (not no_cache);
    (* The object store lives beside the measurement store, under the
       same directory and kill switch. *)
    Tagsim.Objcache.set_dir (Filename.concat cache_dir "obj");
    Tagsim.Objcache.set_enabled (not no_cache);
    (* So does the trace-plan store, with its own additional kill
       switch: plans change how fast a measurement is reproduced, never
       what it measures, so they can be toggled independently. *)
    Tagsim.Plan.set_dir (Filename.concat cache_dir "plan");
    Tagsim.Plan.set_enabled ((not no_cache) && not no_plan_cache);
    let want name = only = [] || List.mem name only in
    (* One global plan: the union of the requested artifacts' matrices,
       deduplicated and fanned out once over the pool. *)
    let requested =
      List.filter (fun a -> want a.Spec.a_name) Planner.artifacts
    in
    let rendered = Planner.plan ~engine requested in
    List.iter
      (fun r ->
        (* table1 opens the report; everything else is preceded by a
           blank line (the historical output format, byte for byte). *)
        if r.Spec.r_name = "table1" then Fmt.pr "%s@." r.Spec.r_text
        else Fmt.pr "@.%s@." r.Spec.r_text)
      rendered;
    Option.iter (fun path -> Planner.write_json path rendered) json;
    Option.iter (fun path -> Planner.write_csv path rendered) csv;
    if verbose then print_run_summary ()
  in
  let only =
    Arg.(
      value
      & opt (list string) []
      & info [ "only" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated subset of table1, figure1, figure2, table2, \
             table3, garith, ablations, elision.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write the rendered artifacts as structured JSON to \
             $(docv) (the format of the committed RESULTS.json).")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Also write the rendered artifacts as CSV sections to $(docv).")
  in
  let cache_dir =
    Arg.(
      value
      & opt string "_tagsim_cache"
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Directory of the persistent measurement cache (created on \
             demand; entries are content-addressed and re-run \
             invariant, so the store can be kept across invocations \
             and branches).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Bypass the persistent measurement cache entirely: neither \
             read nor write the store.")
  in
  let no_plan_cache =
    Arg.(
      value & flag
      & info [ "no-plan-cache" ]
          ~doc:
            "Bypass the persistent trace-plan store: the traced engine \
             profiles and forms its superblocks online instead of \
             warm-starting from plans persisted by earlier runs \
             (measurements are bit-identical either way; implied by \
             $(b,--no-cache)).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:
            "Print a run summary on stderr: worker count, cache \
             hit/miss/write counters, simulations performed and \
             per-phase (compile/simulate/render) wall-clock totals.")
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's tables and figures.")
    Term.(
      const run $ only $ jobs $ engine_arg $ json $ csv $ cache_dir
      $ no_cache $ no_plan_cache $ verbose)

let () =
  let doc =
    "tagsim: Steenkiste & Hennessy's 1987 tag-handling measurement study, \
     reproduced"
  in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "tagsim" ~doc)
          [
            run_cmd; file_cmd; list_cmd; asm_cmd; profile_cmd; fuzz_cmd;
            experiments_cmd;
          ]))
