# Convenience targets; the build itself is plain dune.

.PHONY: all build test check bench experiments results clean clean-cache

all: build

build:
	dune build

test: build
	dune runtest

# The full gate: build, test suite, and a parallel smoke run of the
# experiment driver (2 worker domains, fused engine).
check: build
	dune runtest
	dune exec bin/tagsim_cli.exe -- experiments --only table3 --jobs 2

bench: build
	dune exec bench/main.exe

experiments: build
	dune exec bin/tagsim_cli.exe -- experiments --jobs 0

# Refresh the committed machine-readable reproduction (one planner
# fan-out over every artifact).  CI regenerates it and fails on drift;
# run this and commit the result when a cost-model change is intended.
results: build
	dune exec bin/tagsim_cli.exe -- experiments --jobs 0 --json RESULTS.json > /dev/null

clean:
	dune clean

# Wipe the persistent measurement cache.
clean-cache:
	rm -rf _tagsim_cache
