(** The instruction-level simulator.

    Cost model (Section 2 of the paper): execution time is instruction
    count.  Every instruction costs one cycle, with these exceptions, all
    visible to the paper's accounting:

    - wide immediates ([li]/[la] that do not fit the 17-bit immediate field)
      cost two cycles, standing for the two-instruction constant sequence;
    - multiply costs 8 and divide/remainder 16 cycles, standing for the
      multiply-step/divide-step software sequences of MIPS-X;
    - a load followed immediately by a use of the loaded register costs one
      extra cycle, standing for the assembler-inserted load-delay no-op
      (counted in the no-op class, as in Figure 2);
    - annulled slots of squashing branches cost their cycles and are counted
      in the squashed class (Figure 2);
    - traps charge a fixed overhead ([trap_overhead] cycles) plus the
      handler's own instructions. *)

module Insn = Tagsim_mipsx.Insn
module Annot = Tagsim_mipsx.Annot
module Reg = Tagsim_mipsx.Reg
module Word = Tagsim_mipsx.Word
module Image = Tagsim_asm.Image

exception Machine_error of string

let errorf fmt = Fmt.kstr (fun s -> raise (Machine_error s)) fmt

(** Execution engine selector.  [`Reference] re-decodes every retired
    instruction (the original interpreter, kept as the semantic
    baseline); [`Predecoded] runs closures compiled once per image by
    {!Predecode.attach}; [`Fused] runs basic-block closures compiled by
    {!Fuse.attach}, dispatching once per block; [`Traced] runs fused
    blocks under an edge-heat profile and promotes hot paths into
    superblock traces compiled by {!Trace} (attached with
    {!Trace.attach}), dispatching once per trace on the hot paths.  All
    engines must produce bit-identical statistics. *)
type engine = [ `Reference | `Predecoded | `Fused | `Traced ]

let engine_name : engine -> string = function
  | `Reference -> "reference"
  | `Predecoded -> "predecoded"
  | `Fused -> "fused"
  | `Traced -> "traced"

let engine_all : engine list = [ `Reference; `Predecoded; `Fused; `Traced ]

let engine_by_name s : engine option =
  List.find_opt (fun e -> engine_name e = s) engine_all

(** Hardware configuration: tag geometry and the semantics of the
    tag-aware instructions.  Supplied by the tag scheme in use. *)
type hw = {
  mem_bytes : int; (* power of two *)
  tag_shift : int;
  tag_width : int;
  addr_mask : int; (* applied by tag-ignoring and checked memory ops *)
  is_int_item : int -> bool; (* hardware integer test, for Add_gen *)
  gen_overflowed : int -> int -> int -> bool;
      (* a b result: did int arithmetic overflow the Lisp integer range? *)
  trap_overhead : int;
}

type outcome = Halted of int | Aborted of int

type t = {
  hw : hw;
  code : Image.entry array;
  code_entries : int array;
      (* addresses of all code labels, for basic-block leader detection *)
  mem : int array;
  regs : int array;
  mutable pc : int;
  mutable pending_load : int; (* register with an in-flight load, or -1 *)
  mutable jump_target : int;
      (* scratch for fused register-indirect jumps: the target is read
         before the delay slots run (they may clobber the register) and
         consumed by the slot chain's final pc update *)
  mutable trap_dest : int; (* destination register of a trapped insn *)
  mutable gen_add_handler : int; (* code address, -1 = none *)
  mutable gen_sub_handler : int;
  stats : Stats.t;
  mutable outcome : outcome option;
  mutable fuel : int;
  mutable in_slot : bool; (* executing a delay-slot instruction *)
  engine : engine;
  mutable exec : exec_fn array;
      (* one step closure per code entry, installed by Predecode.attach;
         [||] until then *)
  mutable blocks : block option array;
      (* one fused block per basic-block leader, indexed by leader pc,
         installed by Fuse.attach; [||] until then *)
  mutable tstate : tstate option;
      (* trace-engine state (heat/edge profile and formed traces),
         installed by Trace.attach; None until then *)
}

and exec_fn = t -> unit

(* A fused basic block: [b_exec] retires the whole straight-line run
   (body, terminator and its delay slots) in one call, with everything
   statically knowable pre-summed at fuse time, and returns the next
   program counter — or a negative value once the outcome is decided —
   so the hot dispatch path never round-trips through [t.pc] (the slow
   paths below re-materialise it).  [b_steps] is the number of top-level
   retirements the block performs when it runs to completion (delay
   slots ride their branch's retirement); the run loop pre-pays that
   much fuel before entry (closures refund the unretired remainder on an
   early dynamic exit).  The [b_next] slots memoise the successor lookup
   (direct block chaining): after the first resolution a hot loop never
   touches the dispatch array.  A memoised hit is validated against the
   successor's immutable [b_pc], so a stale or torn memo read can only
   miss, never execute the wrong block — block arrays may be shared
   between machines running in parallel domains. *)
and block = {
  b_pc : int; (* leader address of this block *)
  b_steps : int;
  b_exec : t -> int;
  mutable b_next1 : block option;
  mutable b_next2 : block option;
}

(* Trace-engine state, one per attached code image (shareable between
   machines running the same image, like [blocks]).  [ts_heat] counts
   block entries per leader while non-negative; crossing [ts_threshold]
   saturates the counter to [min_int] and calls [ts_form], which either
   installs a superblock trace in [ts_traces] (permanently hot) or —
   when the head could become formable once more edge profile
   accumulates — resets the counter to retry.  [ts_succ1]/[ts_cnt1] and
   [ts_succ2]/[ts_cnt2] are a two-entry successor profile per leader
   (CLOCK-style decay on conflict), consulted by trace formation to pick
   the dominant path.  All of it is racily shared across domains by
   design: a torn or stale read can only delay or re-run formation,
   never corrupt execution — traces are validated like block memos.
   [ts_plans] mirrors [ts_traces] as pure data: one [Plan.trace] per
   installed trace (pre-compiled from the persistent plan store or
   recorded by online formation), so the run's discoveries can be
   flushed back to disk at run end; [ts_dirty] is set only by online
   formation, so a fully warm run flushes nothing. *)
and tstate = {
  ts_traces : trace option array;
  ts_heat : int array;
  ts_succ1 : int array;
  ts_cnt1 : int array;
  ts_succ2 : int array;
  ts_cnt2 : int array;
  ts_threshold : int;
  ts_form : t -> int -> unit;
  mutable ts_plans : Plan.trace list; (* newest first *)
  mutable ts_dirty : bool;
}

(* A compiled superblock trace: [tr_exec] retires the whole expected
   path ([tr_blocks] fused blocks, [tr_steps] top-level retirements,
   pre-paid like a block's) in one call and returns the next pc —
   [tr_exit] when the expected path ran to the end, some other pc after
   a guarded side exit (which has already rolled statistics and fuel
   back to the exact per-block values), or a negative value once the
   outcome is decided.  [tr_next] memoises the trace at [tr_exit] for
   direct trace chaining (a loop trace chains to itself); the memo is
   validated against the immutable [tr_pc] exactly like block memos. *)
and trace = {
  tr_pc : int; (* leader address of the trace head *)
  tr_blocks : int;
  tr_steps : int;
  tr_exit : int; (* successor pc of the expected path *)
  tr_exec : t -> int;
  mutable tr_next : trace option;
}

(* Error codes used by [Aborted]. *)
let err_type = 1
let err_bounds = 2
let err_mem = 3
let err_div0 = 4
let err_user_base = 16 (* Trap n aborts with code err_user_base + n *)

let create ?(fuel = 600_000_000) ?(engine = `Reference) ~hw (image : Image.t) =
  if hw.mem_bytes land (hw.mem_bytes - 1) <> 0 then
    invalid_arg "mem_bytes must be a power of two";
  let mem = Array.make (hw.mem_bytes / 4) 0 in
  Array.blit image.Image.data_words 0 mem 0
    (Array.length image.Image.data_words);
  (* Sorted: [Hashtbl.fold] enumerates in an unspecified (hash-seeded)
     order, and the entry list must not vary from process to process. *)
  let code_entries =
    Hashtbl.fold (fun _ a acc -> a :: acc) image.Image.code_symbols []
    |> List.sort_uniq compare |> Array.of_list
  in
  {
    hw;
    code = image.Image.code;
    code_entries;
    mem;
    regs = Array.make Reg.count 0;
    pc = 0;
    pending_load = -1;
    jump_target = 0;
    trap_dest = 0;
    gen_add_handler = -1;
    gen_sub_handler = -1;
    stats = Stats.create ();
    outcome = None;
    fuel;
    in_slot = false;
    engine;
    exec = [||];
    blocks = [||];
    tstate = None;
  }

let set_gen_handlers t ~add ~sub =
  t.gen_add_handler <- add;
  t.gen_sub_handler <- sub

let reg t r = t.regs.(r)
let pc t = t.pc
let outcome t = t.outcome
let set_reg t r v = if r <> Reg.zero then t.regs.(r) <- Word.of_int v
let stats t = t.stats

(* The range guard is on the (possibly negative signed) byte address
   itself: [addr lsr 2] of a negative int is a huge positive index, so an
   [idx < 0] test after the shift could never fire — a wild pointer must
   fault on the address, not wrap. *)
let read_word t addr =
  if addr < 0 || addr lsr 2 >= Array.length t.mem then
    errorf "load fault at %d" addr
  else t.mem.(addr lsr 2)

let write_word t addr v =
  if addr < 0 || addr lsr 2 >= Array.length t.mem then
    errorf "store fault at %d" addr
  else t.mem.(addr lsr 2) <- Word.of_int v

(** Direct memory access for the host (loader, result decoding, perf
    counters). *)
let peek = read_word

let poke = write_word

let tag_of t w = Word.field ~shift:t.hw.tag_shift ~width:t.hw.tag_width w

let alu_cycles (op : Insn.alu) =
  match op with
  | Insn.Mul -> 8
  | Insn.Div | Insn.Rem -> 16
  | Insn.Add | Insn.Sub | Insn.And | Insn.Or | Insn.Xor | Insn.Nor | Insn.Slt
  | Insn.Sltu | Insn.Sll | Insn.Srl | Insn.Sra ->
      1

let alu_eval op a b =
  match (op : Insn.alu) with
  | Insn.Add -> Word.add a b
  | Insn.Sub -> Word.sub a b
  | Insn.And -> Word.logand a b
  | Insn.Or -> Word.logor a b
  | Insn.Xor -> Word.logxor a b
  | Insn.Nor -> Word.lognor a b
  | Insn.Slt -> if Word.lt_signed a b then 1 else 0
  | Insn.Sltu -> if Word.lt_unsigned a b then 1 else 0
  | Insn.Sll -> Word.sll a b
  | Insn.Srl -> Word.srl a b
  | Insn.Sra -> Word.sra a b
  | Insn.Mul -> Word.mul a b
  | Insn.Div -> Word.div a b
  | Insn.Rem -> Word.rem a b

let cond_eval (c : Insn.cond) a b =
  let sa = Word.to_signed a and sb = Word.to_signed b in
  match c with
  | Insn.Eq -> a = b
  | Insn.Ne -> a <> b
  | Insn.Lt -> sa < sb
  | Insn.Ge -> sa >= sb
  | Insn.Gt -> sa > sb
  | Insn.Le -> sa <= sb

let abort t code = t.outcome <- Some (Aborted code)

(* Effective data address for a memory access. *)
let effective t (mode : Insn.mem_mode) base off ~speculative =
  let addr = Word.add base (Word.of_int off) in
  match mode with
  | Insn.Plain ->
      if addr >= t.hw.mem_bytes then
        if speculative then Some (addr land (t.hw.mem_bytes - 1))
        else errorf "unmasked address 0x%08x at pc %d" addr t.pc
      else Some addr
  | Insn.Tag_ignoring -> Some (addr land t.hw.addr_mask)
  | Insn.Checked expected ->
      if tag_of t base <> expected then None (* type trap *)
      else
        (* The verified tag is subtracted (not masked) out of the address:
           with low-order tags an index may have carried into the tag
           field's upper bit, which a mask would corrupt. *)
        Some
          (Word.sub addr (expected lsl t.hw.tag_shift)
          land (t.hw.mem_bytes - 1))

(* A load-use dependence costs one no-op cycle, as if the assembler had
   inserted a delay no-op (counted in the no-op instruction class). *)
let interlock_check t (insn : int Insn.t) =
  if t.pending_load >= 0 && List.mem t.pending_load (Insn.reads insn) then begin
    t.stats.Stats.cycles <- t.stats.Stats.cycles + 1;
    t.stats.Stats.interlocks <- t.stats.Stats.interlocks + 1;
    Stats.count_insn t.stats Insn.K_nop
  end;
  t.pending_load <- -1

(* Execute a non-control instruction (possibly sitting in a delay slot). *)
let exec_simple t (e : Image.entry) =
  let insn = e.Image.insn in
  interlock_check t insn;
  Stats.count_insn t.stats (Insn.klass insn);
  let charge c = Stats.charge t.stats e.Image.annot c in
  (match insn with
  | Insn.Alu (op, rd, rs, rt) ->
      let b = t.regs.(rt) in
      if (op = Insn.Div || op = Insn.Rem) && b = 0 then abort t err_div0
      else begin
        charge (alu_cycles op);
        set_reg t rd (alu_eval op t.regs.(rs) b)
      end
  | Insn.Alui (op, rd, rs, imm) ->
      if (op = Insn.Div || op = Insn.Rem) && imm = 0 then abort t err_div0
      else begin
        charge (alu_cycles op);
        set_reg t rd (alu_eval op t.regs.(rs) (Word.of_int imm))
      end
  | Insn.Li (rd, imm) ->
      charge (Word.imm_cycles imm);
      set_reg t rd imm
  | Insn.La (rd, addr) ->
      charge (Word.imm_cycles addr);
      set_reg t rd addr
  | Insn.Mv (rd, rs) ->
      charge 1;
      set_reg t rd t.regs.(rs)
  | Insn.Ld (mode, rd, rs, off) -> (
      charge 1;
      match effective t mode t.regs.(rs) off ~speculative:e.Image.speculative with
      | Some addr ->
          set_reg t rd (read_word t addr);
          t.pending_load <- rd
      | None -> abort t err_type)
  | Insn.St (mode, rs, rt, off) -> (
      charge 1;
      match effective t mode t.regs.(rs) off ~speculative:e.Image.speculative with
      | Some addr -> write_word t addr t.regs.(rt)
      | None -> abort t err_type)
  | Insn.Add_gen (rd, rs, rt) | Insn.Sub_gen (rd, rs, rt) -> (
      charge 1;
      let is_add = match insn with Insn.Add_gen _ -> true | _ -> false in
      let a = t.regs.(rs) and b = t.regs.(rt) in
      let result = if is_add then Word.add a b else Word.sub a b in
      let ok =
        t.hw.is_int_item a && t.hw.is_int_item b
        && not (t.hw.gen_overflowed a b result)
      in
      if ok then set_reg t rd result
      else if t.in_slot then
        errorf "generic-arithmetic trap in a delay slot at pc %d" t.pc
      else
        let handler = if is_add then t.gen_add_handler else t.gen_sub_handler in
        if handler < 0 then abort t err_type
        else begin
          (* Resumable trap: operands into tr0/tr1, destination recorded,
             return address into epc. *)
          t.stats.Stats.traps <- t.stats.Stats.traps + 1;
          t.stats.Stats.trap_cycles <-
            t.stats.Stats.trap_cycles + t.hw.trap_overhead;
          Stats.charge t.stats
            (Annot.make ~checking:e.Image.annot.Annot.checking Annot.Garith)
            t.hw.trap_overhead;
          t.regs.(Reg.tr0) <- a;
          t.regs.(Reg.tr1) <- b;
          t.trap_dest <- rd;
          t.regs.(Reg.epc) <- t.pc + 1;
          t.pc <- handler - 1
          (* -1: the main loop will advance pc by one. *)
        end)
  | Insn.Settd rs ->
      charge 1;
      set_reg t t.trap_dest t.regs.(rs)
  | Insn.Nop -> charge 1
  | Insn.B _ | Insn.Bi _ | Insn.Btag _ | Insn.J _ | Insn.Jal _ | Insn.Jr _
  | Insn.Jalr _ | Insn.Rett | Insn.Trap _ | Insn.Halt ->
      errorf "control instruction in a delay slot at pc %d" t.pc);
  match insn with
  | Insn.Ld _ -> () (* pending_load already set *)
  | _ -> t.pending_load <- -1

let fetch t i =
  if i < 0 || i >= Array.length t.code then errorf "pc out of range: %d" i
  else t.code.(i)

(* Execute the instruction at [t.pc]; advances [t.pc]. *)
let step t =
  let e = fetch t t.pc in
  let insn = e.Image.insn in
  let charge c = Stats.charge t.stats e.Image.annot c in
  let exec_slots () =
    (* Slots run with pc conceptually past the branch; aborts inside a slot
       stop execution before the jump. *)
    let s1 = fetch t (t.pc + 1) and s2 = fetch t (t.pc + 2) in
    t.in_slot <- true;
    exec_simple t s1;
    if t.outcome = None then exec_simple t s2;
    t.in_slot <- false
  in
  let squash_slots () =
    t.stats.Stats.squashed <- t.stats.Stats.squashed + 2;
    t.stats.Stats.cycles <- t.stats.Stats.cycles + 2;
    let s = Stats.slot e.Image.annot in
    t.stats.Stats.kind_cycles.(s) <- t.stats.Stats.kind_cycles.(s) + 2
  in
  let branch_to ~taken ~squash target =
    interlock_check t insn;
    Stats.count_insn t.stats (Insn.klass insn);
    charge 1;
    if squash && not taken then squash_slots () else exec_slots ();
    if t.outcome = None then t.pc <- (if taken then target else t.pc + 3)
  in
  match insn with
  | Insn.B (b, target) ->
      let taken = cond_eval b.Insn.cond t.regs.(b.Insn.rs) t.regs.(b.Insn.rt) in
      branch_to ~taken ~squash:b.Insn.squash target
  | Insn.Bi (b, target) ->
      let taken =
        cond_eval b.Insn.bi_cond t.regs.(b.Insn.bi_rs)
          (Word.of_int b.Insn.bi_imm)
      in
      branch_to ~taken ~squash:b.Insn.bi_squash target
  | Insn.Btag (b, target) ->
      let tag = tag_of t t.regs.(b.Insn.bt_rs) in
      let taken = if b.Insn.bt_neg then tag <> b.Insn.bt_tag
                  else tag = b.Insn.bt_tag in
      branch_to ~taken ~squash:b.Insn.bt_squash target
  | Insn.J target -> branch_to ~taken:true ~squash:false target
  | Insn.Jal target ->
      set_reg t Reg.ra (t.pc + 3);
      branch_to ~taken:true ~squash:false target
  | Insn.Jr rs ->
      let target = t.regs.(rs) in
      branch_to ~taken:true ~squash:false target
  | Insn.Jalr rs ->
      let target = t.regs.(rs) in
      set_reg t Reg.ra (t.pc + 3);
      branch_to ~taken:true ~squash:false target
  | Insn.Rett ->
      interlock_check t insn;
      Stats.count_insn t.stats (Insn.klass insn);
      charge 1;
      t.pc <- t.regs.(Reg.epc)
  | Insn.Trap code ->
      interlock_check t insn;
      Stats.count_insn t.stats (Insn.klass insn);
      charge 1;
      abort t (err_user_base + code)
  | Insn.Halt ->
      Stats.count_insn t.stats (Insn.klass insn);
      charge 1;
      t.outcome <- Some (Halted t.regs.(Reg.v0))
  | Insn.Alu _ | Insn.Alui _ | Insn.Li _ | Insn.La _ | Insn.Mv _ | Insn.Ld _
  | Insn.St _ | Insn.Add_gen _ | Insn.Sub_gen _ | Insn.Settd _ | Insn.Nop ->
      exec_simple t e;
      t.pc <- t.pc + 1

exception Out_of_fuel

let run_reference t =
  let rec loop () =
    match t.outcome with
    | Some o -> o
    | None ->
        if t.fuel <= 0 then raise Out_of_fuel;
        t.fuel <- t.fuel - 1;
        step t;
        loop ()
  in
  loop ()

(* The pre-decoded hot loop: an array-indexed closure call per retired
   instruction, no re-decoding.  The closures are built by
   {!Predecode.attach}. *)
let run_predecoded t =
  let exec = t.exec in
  if Array.length exec <> Array.length t.code then
    errorf "predecoded engine not attached (use Predecode.attach)";
  let n = Array.length exec in
  let rec loop () =
    match t.outcome with
    | Some o -> o
    | None ->
        if t.fuel <= 0 then raise Out_of_fuel;
        t.fuel <- t.fuel - 1;
        let pc = t.pc in
        if pc < 0 || pc >= n then errorf "pc out of range: %d" pc;
        (Array.unsafe_get exec pc) t;
        loop ()
  in
  loop ()

(* The fused hot loop: one closure call per basic block.  Fuel is
   pre-paid per block; when the remaining fuel cannot cover a whole
   block, the tail runs on the per-instruction predecoded closures so
   that [Out_of_fuel] fires at the identical retirement count.  The
   successor of a block is memoised in the block itself after its first
   resolution (two slots, most-recent first), so hot loops chain
   directly from block to block without consulting the dispatch
   array. *)
let run_fused t =
  let blocks = t.blocks in
  let exec = t.exec in
  if
    Array.length blocks <> Array.length t.code
    || Array.length exec <> Array.length t.code
  then errorf "fused engine not attached (use Fuse.attach)";
  let n = Array.length t.code in
  let resolve pc =
    if pc < 0 || pc >= n then errorf "pc out of range: %d" pc;
    Array.unsafe_get blocks pc
  in
  let rec dispatch () =
    match t.outcome with
    | Some o -> o
    | None -> (
        let pc = t.pc in
        match resolve pc with Some b -> enter b | None -> step_one pc)
  and enter b =
    if t.fuel >= b.b_steps then begin
      t.fuel <- t.fuel - b.b_steps;
      let pc = b.b_exec t in
      if pc >= 0 then
        match b.b_next1 with
        | Some nb when nb.b_pc = pc -> enter nb
        | _ -> (
            match b.b_next2 with
            | Some nb when nb.b_pc = pc -> enter nb
            | _ -> (
                match resolve pc with
                | Some nb ->
                    (* Most recent resolution takes the front slot; a
                       two-successor branch then stabilises with both
                       memoised and no further writes. *)
                    b.b_next2 <- b.b_next1;
                    b.b_next1 <- Some nb;
                    enter nb
                | None ->
                    (* Non-leader entry: hand the pc back to the
                       per-instruction engine, which keeps [t.pc]
                       current itself. *)
                    t.pc <- pc;
                    step_one pc))
      else
        match t.outcome with
        | Some o -> o
        | None -> errorf "fused block stopped without an outcome"
    end
    else begin
      (* Fuel tail: finish instruction by instruction so [Out_of_fuel]
         fires at the identical retirement count.  [t.pc] may be stale
         when arriving via direct chaining — re-materialise it from the
         block about to (not) run. *)
      t.pc <- b.b_pc;
      step_one b.b_pc
    end
  and step_one pc =
    if t.fuel <= 0 then raise Out_of_fuel;
    t.fuel <- t.fuel - 1;
    if pc < 0 || pc >= n then errorf "pc out of range: %d" pc;
    (Array.unsafe_get exec pc) t;
    dispatch ()
  in
  dispatch ()

(* Process-wide trace-engine instrumentation.  The run loop accumulates
   locally and flushes once per [run] call (in a [Fun.protect] finally,
   so an [Out_of_fuel] or abort-path exception still reports), keeping
   atomics off the hot path. *)
type trace_totals = {
  tt_formed : int;
  tt_entries : int;
  tt_side_exits : int;
  tt_in_trace : int; (* instructions retired inside traces *)
  tt_retired : int; (* instructions retired by traced runs, total *)
}

let tt_formed_a = Atomic.make 0
let tt_entries_a = Atomic.make 0
let tt_side_exits_a = Atomic.make 0
let tt_in_trace_a = Atomic.make 0
let tt_retired_a = Atomic.make 0
let note_trace_formed () = Atomic.incr tt_formed_a

let trace_counters () =
  {
    tt_formed = Atomic.get tt_formed_a;
    tt_entries = Atomic.get tt_entries_a;
    tt_side_exits = Atomic.get tt_side_exits_a;
    tt_in_trace = Atomic.get tt_in_trace_a;
    tt_retired = Atomic.get tt_retired_a;
  }

let reset_trace_counters () =
  Atomic.set tt_formed_a 0;
  Atomic.set tt_entries_a 0;
  Atomic.set tt_side_exits_a 0;
  Atomic.set tt_in_trace_a 0;
  Atomic.set tt_retired_a 0

(* The traced hot loop: tier 1 is the fused block dispatch with two
   additions — a per-leader heat/edge profile feeding trace formation,
   and a trace lookup ahead of the block lookup so a formed trace
   captures its path.  Tier 2 dispatches once per trace, chaining a loop
   trace directly to itself through [tr_next].  Blocks do not use their
   [b_next] memos here: chaining block-to-block would skip the trace
   lookup at the successor, so tier 1 always returns to [goto].  Fuel
   follows the fused protocol at each granularity: a trace pre-pays
   [tr_steps] and falls back to block granularity when it cannot, a
   block pre-pays [b_steps] and falls back to single instructions, so
   [Out_of_fuel] fires at the identical retirement count. *)
let run_traced t =
  let ts =
    match t.tstate with
    | Some ts -> ts
    | None -> errorf "traced engine not attached (use Trace.attach)"
  in
  let blocks = t.blocks in
  let exec = t.exec in
  let n = Array.length t.code in
  if
    Array.length blocks <> n
    || Array.length exec <> n
    || Array.length ts.ts_traces <> n
  then errorf "traced engine not attached (use Trace.attach)";
  let traces = ts.ts_traces and heat = ts.ts_heat in
  let succ1 = ts.ts_succ1
  and cnt1 = ts.ts_cnt1
  and succ2 = ts.ts_succ2
  and cnt2 = ts.ts_cnt2 in
  let threshold = ts.ts_threshold in
  let entries = ref 0 and side_exits = ref 0 and in_trace = ref 0 in
  let fuel0 = t.fuel in
  (* Two-entry successor profile with decay: a slot is free when its
     count has decayed to zero, so a shifting dominant successor (think
     an indirect jump) can eventually displace a stale one. *)
  let record_edge from next =
    if heat.(from) >= 0 then
      if succ1.(from) = next then cnt1.(from) <- cnt1.(from) + 1
      else if succ2.(from) = next then cnt2.(from) <- cnt2.(from) + 1
      else if cnt1.(from) = 0 then begin
        succ1.(from) <- next;
        cnt1.(from) <- 1
      end
      else if cnt2.(from) = 0 then begin
        succ2.(from) <- next;
        cnt2.(from) <- 1
      end
      else begin
        cnt1.(from) <- cnt1.(from) - 1;
        cnt2.(from) <- cnt2.(from) - 1
      end
  in
  let rec dispatch () =
    match t.outcome with
    | Some o -> o
    | None ->
        let pc = t.pc in
        if pc < 0 || pc >= n then errorf "pc out of range: %d" pc;
        goto pc
  and goto pc =
    (* [pc] is in range: callers bounds-check before chaining here. *)
    match Array.unsafe_get traces pc with
    | Some tr -> enter_trace tr
    | None -> (
        match Array.unsafe_get blocks pc with
        | Some b -> enter_block b
        | None ->
            t.pc <- pc;
            step_one pc)
  and enter_trace tr =
    if t.fuel >= tr.tr_steps then begin
      incr entries;
      let f0 = t.fuel in
      t.fuel <- f0 - tr.tr_steps;
      let pc = tr.tr_exec t in
      in_trace := !in_trace + (f0 - t.fuel);
      if pc >= 0 then
        if pc = tr.tr_exit then
          match tr.tr_next with
          | Some nt when nt.tr_pc = pc -> enter_trace nt
          | _ -> (
              match if pc < n then Array.unsafe_get traces pc else None with
              | Some nt ->
                  tr.tr_next <- Some nt;
                  enter_trace nt
              | None ->
                  if pc >= n then errorf "pc out of range: %d" pc;
                  goto pc)
        else begin
          incr side_exits;
          if pc >= n then errorf "pc out of range: %d" pc;
          goto pc
        end
      else
        match t.outcome with
        | Some o -> o
        | None -> errorf "trace stopped without an outcome"
    end
    else begin
      (* Fuel tail: re-run the head at block granularity (which in turn
         falls back to single instructions), for the identical
         [Out_of_fuel] retirement count. *)
      t.pc <- tr.tr_pc;
      match blocks.(tr.tr_pc) with
      | Some b -> exec_block b
      | None -> step_one tr.tr_pc
    end
  and enter_block b =
    let bpc = b.b_pc in
    let h = heat.(bpc) in
    if h >= 0 then
      if h + 1 >= threshold then begin
        heat.(bpc) <- min_int;
        ts.ts_form t bpc;
        (* formation may have installed a trace at this leader *)
        match traces.(bpc) with
        | Some tr -> enter_trace tr
        | None -> exec_block b
      end
      else begin
        heat.(bpc) <- h + 1;
        exec_block b
      end
    else exec_block b
  and exec_block b =
    if t.fuel >= b.b_steps then begin
      t.fuel <- t.fuel - b.b_steps;
      let pc = b.b_exec t in
      if pc >= 0 then begin
        record_edge b.b_pc pc;
        if pc >= n then errorf "pc out of range: %d" pc;
        goto pc
      end
      else
        match t.outcome with
        | Some o -> o
        | None -> errorf "fused block stopped without an outcome"
    end
    else begin
      t.pc <- b.b_pc;
      step_one b.b_pc
    end
  and step_one pc =
    if t.fuel <= 0 then raise Out_of_fuel;
    t.fuel <- t.fuel - 1;
    if pc < 0 || pc >= n then errorf "pc out of range: %d" pc;
    (Array.unsafe_get exec pc) t;
    dispatch ()
  in
  Fun.protect
    ~finally:(fun () ->
      if !entries > 0 then begin
        ignore (Atomic.fetch_and_add tt_entries_a !entries);
        ignore (Atomic.fetch_and_add tt_side_exits_a !side_exits);
        ignore (Atomic.fetch_and_add tt_in_trace_a !in_trace)
      end;
      ignore (Atomic.fetch_and_add tt_retired_a (fuel0 - t.fuel)))
    dispatch

let run t =
  match t.engine with
  | `Reference -> run_reference t
  | `Predecoded -> run_predecoded t
  | `Fused -> run_fused t
  | `Traced -> run_traced t
