(** The profile-guided superblock trace engine: tier 1 executes fused
    blocks while counting block-entry and edge heat; a leader crossing
    the hot threshold grows a superblock along the expected successor
    path — probability-guided (growth stops when the product of
    junction shares drops below a reach cutoff), return addresses
    matched to calls crossed on the path, whole loop bodies unrolled
    within the length bound — and compiles it to one straight-line
    continuation chain with a single pre-summed statistics delta —
    cross-junction delay-slot interlocks and squashing-branch annul
    accounting statically resolved, never-trapping operations
    specialised with their operators inlined — and guarded side exits
    that roll statistics and fuel back to the exact per-block values.  [Machine.run] on a [`Traced] machine dispatches
    once per trace on hot paths and stays bit-identical to the
    reference interpreter, [Out_of_fuel] tail included (enforced by the
    four-way engine differential suite). *)

module Image := Tagsim_asm.Image

(** Block entries before a leader is considered hot (default 32).
    Tests pass a small threshold to force early formation. *)
val default_threshold : int

(** Superblock length bound, in blocks. *)
val max_segments : int

(** Install the fused engine (via {!Fuse.attach}) and the trace-engine
    state — heat and edge-profile counters and the (initially empty)
    trace table — on the machine; idempotent and length-guarded like
    the other engines' attach.  Required before [Machine.run] on a
    machine created with [~engine:`Traced].  The state may be shared
    between machines running the same image: formed traces are
    validated like block memos, and racy profile updates only delay or
    repeat formation. *)
val attach : ?threshold:int -> Machine.t -> unit

(** Convenience: [Machine.create ~engine:`Traced] plus {!attach}. *)
val create : ?fuel:int -> ?threshold:int -> hw:Machine.hw -> Image.t -> Machine.t
