(** The profile-guided superblock trace engine: tier 1 executes fused
    blocks while counting block-entry and edge heat; a leader crossing
    the hot threshold grows a superblock along the expected successor
    path — probability-guided (growth stops when the product of
    junction shares drops below a reach cutoff), return addresses
    matched to calls crossed on the path, whole loop bodies unrolled
    within the length bound — and compiles it to one straight-line
    continuation chain with a single pre-summed statistics delta —
    cross-junction delay-slot interlocks and squashing-branch annul
    accounting statically resolved, never-trapping operations
    specialised with their operators inlined — and guarded side exits
    that roll statistics and fuel back to the exact per-block values.  [Machine.run] on a [`Traced] machine dispatches
    once per trace on hot paths and stays bit-identical to the
    reference interpreter, [Out_of_fuel] tail included (enforced by the
    four-way engine differential suite). *)

module Image := Tagsim_asm.Image

(** Block entries before a leader is considered hot (default 32).
    Tests pass a small threshold to force early formation. *)
val default_threshold : int

(** Superblock length bound, in blocks. *)
val max_segments : int

(** Install the fused engine (via {!Fuse.attach}) and the trace-engine
    state — heat and edge-profile counters and the (initially empty)
    trace table — on the machine; idempotent and length-guarded like
    the other engines' attach.  Required before [Machine.run] on a
    machine created with [~engine:`Traced].  The state may be shared
    between machines running the same image: formed traces are
    validated like block memos, and racy profile updates only delay or
    repeat formation. *)
val attach : ?threshold:int -> Machine.t -> unit

(** Compile one planned superblock into a trace closure, or [None] when
    the plan does not validate against this machine's image (bounds,
    junction shapes, successor chaining — see the implementation).  A
    validated plan compiles through the same path as online formation:
    {!form} itself projects each grown superblock to a {!Plan.trace}
    and compiles the plan, so ahead-of-time and online traces are the
    same closures over the same data, and the persisted format provably
    captures every formation decision. *)
val compile_plan : Machine.t -> Plan.trace -> Machine.trace option

(** Ahead-of-time warm start: install every superblock of a persisted
    plan that still validates on this machine's image, so the run
    enters the traced engine with its hot paths already compiled — no
    tier-1 profiling for the planned heads.  Returns the number
    installed (also accumulated into {!Plan.traces_loaded}); rejected
    entries are skipped silently, leaving online formation as the
    fallback.  Newly formed traces during the run still extend
    [ts_plans], so a run-end flush persists the union. *)
val precompile : Machine.t -> Plan.t -> int

(** Convenience: [Machine.create ~engine:`Traced] plus {!attach}. *)
val create : ?fuel:int -> ?threshold:int -> hw:Machine.hw -> Image.t -> Machine.t
