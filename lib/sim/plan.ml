(** Persistent superblock trace plans.

    The traced engine discovers its superblocks online: tier 1 profiles
    block heat and edge shares, and only then grows and compiles traces
    — so every run of a given image pays the same profiling warmup to
    rediscover the same hot paths.  A {e plan} is the pure-data residue
    of that discovery: for each formed trace, the ordered segment path
    (leader pc, terminator pc, junction kind, expected successor) and
    the trace exit, with loop unrolling and return matching already
    applied.  Plans contain no closures and no statistics — everything
    else the trace compiler needs (instruction entries, fused delay
    slots, block lengths, squash flags) is re-derived from the live
    image and re-validated on load, so a plan can never make a run
    wrong, only warm.

    This module holds the plan data type, its (de)serialisation, and a
    persistent store under [_tagsim_cache/plan/] in the mould of
    {!Cache}/[Objcache]: content-addressed keys, atomic temp+rename
    writes, and silent recompute (fall back to online formation) on
    damaged, truncated or stale entries.

    {b Key.} The hex digest of the image fingerprint (a digest of the
    code array: instructions, annotations, speculation flags), a
    caller-supplied hardware/scheme token, and the {!version} stamp.

    {b Version stamp.} Bump on any change to the plan format {e or} to
    trace formation semantics (growth heuristics, unroll policy, return
    matching): unlike [Cache]/[Objcache] — whose stale entries would
    yield wrong bytes — a stale plan is merely a suboptimal warm start,
    but the stamp keeps stored plans aligned with what the current
    engine would have formed.  The stamp participates in the key digest
    and heads the payload, so entries from either side of a bump are
    never hit. *)

module Image = Tagsim_asm.Image

(* Bump on plan-format or trace-formation changes (see header). *)
let version = "1"

(* How a planned segment ends, and which successor the path expects.
   Mirrored (by type equation) into [Trace]'s growth machinery so the
   plan records the junction exactly as it was grown. *)
type jct =
  | Cond of { expect_taken : bool; target : int }
  | Jump of { link : bool }
  | Indirect of { rs : int; link : bool }

(* One block of a superblock path.  Everything else the compiler needs
   (terminator entry, delay slots, body length, squash flag) is
   re-derived from the image via [Fuse.shape] and validated on load. *)
type seg = {
  ps_pc : int; (* leader *)
  ps_stop : int; (* terminator address *)
  ps_jct : jct;
  ps_next : int; (* expected successor leader (trace exit for the last) *)
}

(* One superblock: the (already unrolled) segment path and its exit. *)
type trace = { pt_segs : seg array; pt_exit : int }

(* A plan: every superblock formed for one image, in formation order. *)
type t = trace list

let head (tr : trace) = tr.pt_segs.(0).ps_pc

(* --- Store configuration (CLI-owned refs, like Cache/Objcache). --- *)

let enabled_flag = ref false
let dir_ref = ref (Filename.concat "_tagsim_cache" "plan")
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b
let dir () = !dir_ref
let set_dir d = dir_ref := d

(* hits/misses/writes count whole plan files; [loaded_traces] counts
   individual superblocks pre-compiled from loaded plans (the number a
   warm run starts with). *)
let hit_count = Atomic.make 0
let miss_count = Atomic.make 0
let write_count = Atomic.make 0
let loaded_traces = Atomic.make 0

let counters () =
  (Atomic.get hit_count, Atomic.get miss_count, Atomic.get write_count)

let traces_loaded () = Atomic.get loaded_traces
let note_traces_loaded n = ignore (Atomic.fetch_and_add loaded_traces n)

let reset_counters () =
  Atomic.set hit_count 0;
  Atomic.set miss_count 0;
  Atomic.set write_count 0;
  Atomic.set loaded_traces 0

(* --- Keys. --- *)

(* The image's code array is pure data (decoded instructions, cycle
   annotations, speculation flags), so a [Marshal] digest is a faithful
   content fingerprint; the version stamp guards representation drift.
   [No_sharing] matters: the default marshaller encodes in-memory
   sharing, so structurally equal images — one compiled cold, one
   relinked from cached objects — would fingerprint differently, and a
   warm process would never find the plans a cold one flushed. *)
let image_fingerprint (image : Image.t) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string image.Image.code [ Marshal.No_sharing ]))

let key ~fingerprint ~token =
  Digest.to_hex
    (Digest.string
       (String.concat "\n" [ "tagsim-plan"; version; fingerprint; token ]))

let entry_path k = Filename.concat !dir_ref (k ^ ".plan")

(* --- (De)serialisation: the same line-oriented text format as the
   other stores — stable across compiler versions, diffable, and
   truncation-detectable via the ["end"] trailer. --- *)

let jct_token = function
  | Cond { expect_taken = true; target } -> Printf.sprintf "ct %d" target
  | Cond { expect_taken = false; target } -> Printf.sprintf "cf %d" target
  | Jump { link = false } -> "j"
  | Jump { link = true } -> "jl"
  | Indirect { rs; link = false } -> Printf.sprintf "i %d" rs
  | Indirect { rs; link = true } -> Printf.sprintf "il %d" rs

let serialize (plan : t) =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "tagsim-plan %s" version;
  line "traces %d" (List.length plan);
  List.iter
    (fun tr ->
      line "trace %d %d" tr.pt_exit (Array.length tr.pt_segs);
      Array.iter
        (fun s ->
          line "seg %d %d %d %s" s.ps_pc s.ps_stop s.ps_next
            (jct_token s.ps_jct))
        tr.pt_segs)
    plan;
  line "end";
  Buffer.contents b

exception Malformed

let parse (text : string) : t =
  let fields l = String.split_on_char ' ' l |> List.filter (( <> ) "") in
  let int s = match int_of_string_opt s with Some v -> v | None -> raise Malformed in
  let lines = ref (String.split_on_char '\n' text) in
  let next () =
    match !lines with
    | l :: rest ->
        lines := rest;
        l
    | [] -> raise Malformed
  in
  (match fields (next ()) with
  | [ "tagsim-plan"; v ] when v = version -> ()
  | _ -> raise Malformed);
  let n =
    match fields (next ()) with
    | [ "traces"; n ] -> int n
    | _ -> raise Malformed
  in
  if n < 0 then raise Malformed;
  let seg_of_line l =
    match fields l with
    | "seg" :: pc :: stop :: nx :: jct ->
        let ps_jct =
          match jct with
          | [ "ct"; t ] -> Cond { expect_taken = true; target = int t }
          | [ "cf"; t ] -> Cond { expect_taken = false; target = int t }
          | [ "j" ] -> Jump { link = false }
          | [ "jl" ] -> Jump { link = true }
          | [ "i"; rs ] -> Indirect { rs = int rs; link = false }
          | [ "il"; rs ] -> Indirect { rs = int rs; link = true }
          | _ -> raise Malformed
        in
        { ps_pc = int pc; ps_stop = int stop; ps_jct; ps_next = int nx }
    | _ -> raise Malformed
  in
  let trace_of_lines () =
    match fields (next ()) with
    | [ "trace"; exit_pc; k ] ->
        let k = int k in
        if k < 0 then raise Malformed;
        let segs = Array.init k (fun _ -> seg_of_line (next ())) in
        { pt_segs = segs; pt_exit = int exit_pc }
    | _ -> raise Malformed
  in
  let plan = List.init n (fun _ -> trace_of_lines ()) in
  if String.trim (next ()) <> "end" then raise Malformed;
  plan

(* --- Store operations (the Cache idiom: every failure is a miss,
   writes are atomic and best-effort). --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load k =
  if not !enabled_flag then None
  else
    let result =
      match read_file (entry_path k) with
      | exception _ -> None
      | text -> ( match parse text with p -> Some p | exception _ -> None)
    in
    (match result with
    | Some _ -> Atomic.incr hit_count
    | None -> Atomic.incr miss_count);
    result

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Sys.mkdir p 0o777 with Sys_error _ -> ()
    end
  in
  go path

let store k (plan : t) =
  if !enabled_flag then
    try
      mkdir_p !dir_ref;
      let tmp =
        Printf.sprintf "%s.tmp.%d.%d" (entry_path k) (Unix.getpid ())
          (Domain.self () :> int)
      in
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (serialize plan));
      Sys.rename tmp (entry_path k);
      Atomic.incr write_count
    with _ -> ()

let wipe () =
  let is_ours name =
    let pat = ".plan" and n = String.length name in
    let m = String.length pat in
    let rec at i = i + m <= n && (String.sub name i m = pat || at (i + 1)) in
    at 0
  in
  match Sys.readdir !dir_ref with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          if is_ours name then
            try Sys.remove (Filename.concat !dir_ref name) with _ -> ())
        names
