(** The instruction-level simulator.  Cost model: one cycle per
    instruction, with the deviations documented in the implementation
    header (wide immediates, multiply/divide, load-use interlocks,
    squashed slots, trap overhead) — all of them visible to the paper's
    cycle accounting.

    Three execution engines share this state:
    - [`Reference]: the original interpreter, re-decoding every retired
      instruction ({!step} in a loop);
    - [`Predecoded]: each image entry is compiled once into a closure by
      {!Predecode.attach}; {!run} then performs an array-indexed closure
      call per instruction;
    - [`Fused]: straight-line runs of pre-decoded instructions are fused
      into basic-block closures by {!Fuse.attach}; {!run} then dispatches
      once per block, with statically-knowable statistics pre-summed and
      successor blocks chained directly;
    - [`Traced]: fused blocks run under a block-entry/edge heat profile
      ({!Trace.attach}); hot paths are promoted to superblock traces —
      one straight-line closure spanning several blocks with a single
      pre-summed statistics delta and guarded side exits that roll back
      to exact per-block accounting.  All engines must produce
      bit-identical {!Stats.t} (enforced by the differential engine
      suite). *)

module Insn := Tagsim_mipsx.Insn
module Image := Tagsim_asm.Image

exception Machine_error of string

(** Hardware configuration: tag geometry and the semantics of the
    tag-aware instructions.  Supplied by the tag scheme in use
    (see {!Tagsim_tags.Scheme.machine_hw}). *)
type hw = {
  mem_bytes : int; (* power of two *)
  tag_shift : int;
  tag_width : int;
  addr_mask : int; (* applied by tag-ignoring and checked memory ops *)
  is_int_item : int -> bool; (* hardware integer test, for Add_gen *)
  gen_overflowed : int -> int -> int -> bool;
  trap_overhead : int;
}

type outcome = Halted of int | Aborted of int

(** Execution engine selector (see the module header). *)
type engine = [ `Reference | `Predecoded | `Fused | `Traced ]

(** {1 Engine registry}

    The canonical engine names, for CLI parsing and reporting. *)

val engine_name : engine -> string

(** All engines, in reference-to-fastest order. *)
val engine_all : engine list

(** Inverse of {!engine_name}; [None] for an unknown name. *)
val engine_by_name : string -> engine option

(** The machine state.  The record is exposed so that {!Predecode} and
    {!Fuse} can compile closures that operate on it directly; treat it
    as read-only outside [lib/sim] and use the accessors below. *)
type t = {
  hw : hw;
  code : Image.entry array;
  code_entries : int array; (* addresses of all code labels *)
  mem : int array;
  regs : int array;
  mutable pc : int;
  mutable pending_load : int; (* register with an in-flight load, or -1 *)
  mutable jump_target : int;
      (* scratch for fused register-indirect jumps: the target is read
         before the delay slots run (they may clobber the register) and
         consumed by the slot chain's final pc update *)
  mutable trap_dest : int; (* destination register of a trapped insn *)
  mutable gen_add_handler : int; (* code address, -1 = none *)
  mutable gen_sub_handler : int;
  stats : Stats.t;
  mutable outcome : outcome option;
  mutable fuel : int;
  mutable in_slot : bool; (* executing a delay-slot instruction *)
  engine : engine;
  mutable exec : exec_fn array; (* installed by Predecode.attach *)
  mutable blocks : block option array; (* installed by Fuse.attach *)
  mutable tstate : tstate option; (* installed by Trace.attach *)
}

and exec_fn = t -> unit

(** A fused basic block (built by {!Fuse.attach}): [b_exec] retires the
    whole straight-line run — including the terminator's delay slots —
    in one call and returns the successor pc (negative once the outcome
    is decided), [b_steps] top-level retirements of fuel are pre-paid by
    the run loop (slots ride their branch's retirement), and the
    [b_next] slots memoise successor blocks for direct chaining.  A memo
    hit is validated against the immutable [b_pc], so a stale or torn
    read can only miss, never mis-chain: block arrays are shareable
    across domains. *)
and block = {
  b_pc : int; (* leader address of this block *)
  b_steps : int;
  b_exec : t -> int;
  mutable b_next1 : block option;
  mutable b_next2 : block option;
}

(** Trace-engine state (built by {!Trace.attach}): per-leader entry
    heat, a two-entry successor profile with decay, and the formed
    traces.  [ts_heat] saturates to [min_int] when a leader crosses
    [ts_threshold] and [ts_form] runs (installing a trace or, when more
    profile is needed, resetting the counter to retry).  Shareable
    between machines running the same image; racy profile updates only
    delay or repeat formation, never corrupt execution.  [ts_plans]
    mirrors [ts_traces] as pure data (one {!Plan.trace} per installed
    trace, newest first) so the run's discoveries can be flushed to the
    persistent plan store at run end; [ts_dirty] is set only by online
    formation, so a fully warm run flushes nothing. *)
and tstate = {
  ts_traces : trace option array;
  ts_heat : int array;
  ts_succ1 : int array;
  ts_cnt1 : int array;
  ts_succ2 : int array;
  ts_cnt2 : int array;
  ts_threshold : int;
  ts_form : t -> int -> unit;
  mutable ts_plans : Plan.trace list; (* newest first *)
  mutable ts_dirty : bool;
}

(** A compiled superblock trace (built by {!Trace}): [tr_exec] retires
    the whole expected path — [tr_blocks] fused blocks, [tr_steps]
    pre-paid top-level retirements — in one call and returns the next
    pc: [tr_exit] when the expected path completed, another pc after a
    guarded side exit (statistics and fuel already rolled back to the
    exact per-block values), or a negative value once the outcome is
    decided.  [tr_next] memoises the trace at [tr_exit] for direct
    chaining (a loop trace chains to itself), validated against the
    immutable [tr_pc] like block memos. *)
and trace = {
  tr_pc : int; (* leader address of the trace head *)
  tr_blocks : int;
  tr_steps : int;
  tr_exit : int; (* successor pc of the expected path *)
  tr_exec : t -> int;
  mutable tr_next : trace option;
}

(** {1 Abort codes} *)

val err_type : int
val err_bounds : int
val err_mem : int
val err_div0 : int

(** [Trap n] aborts with code [err_user_base + n]. *)
val err_user_base : int

(** {1 Lifecycle} *)

val create : ?fuel:int -> ?engine:engine -> hw:hw -> Image.t -> t

(** Register the trap handlers for hardware generic arithmetic. *)
val set_gen_handlers : t -> add:int -> sub:int -> unit

val reg : t -> int -> int

(** Current program counter (an instruction index). *)
val pc : t -> int

(** Termination state, if the machine has stopped. *)
val outcome : t -> outcome option

val set_reg : t -> int -> int -> unit
val stats : t -> Stats.t

(** Direct memory access for the host (loader, result decoding,
    performance counters).  Addresses are byte addresses. *)
val peek : t -> int -> int

val poke : t -> int -> int -> unit

(** {1 Shared instruction semantics}

    Used by both the reference interpreter and the pre-decoder, so the
    two engines cannot drift. *)

val read_word : t -> int -> int
val write_word : t -> int -> int -> unit
val alu_cycles : Insn.alu -> int
val alu_eval : Insn.alu -> int -> int -> int
val cond_eval : Insn.cond -> int -> int -> bool
val abort : t -> int -> unit
val errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Execute one instruction (including its delay slots), by re-decoding
    it: this is the reference engine's step and works on any machine. *)
val step : t -> unit

exception Out_of_fuel

(** Run to completion with the machine's engine. *)
val run : t -> outcome

(** {1 Trace-engine instrumentation}

    Process-wide counters for the [`Traced] engine, accumulated across
    all domains once per {!run} (diagnostics only — they do not feed the
    paper's statistics). *)

type trace_totals = {
  tt_formed : int;  (** superblock traces formed *)
  tt_entries : int;  (** trace entries *)
  tt_side_exits : int;  (** trace exits off the expected path *)
  tt_in_trace : int;  (** instructions retired inside traces *)
  tt_retired : int;  (** instructions retired by traced runs, total *)
}

(** Called by {!Trace} when a trace is formed. *)
val note_trace_formed : unit -> unit

val trace_counters : unit -> trace_totals
val reset_trace_counters : unit -> unit
