(** Persistent superblock trace plans: the pure-data residue of the
    traced engine's online profiling — per formed trace, the ordered
    segment path (leader, terminator, junction, expected successor) and
    the exit, with unroll and return-matching decisions already applied
    — plus a content-addressed persistent store under
    [_tagsim_cache/plan/] in the mould of [Cache]/[Objcache].  A loaded
    plan is re-validated against the live image and pre-compiled on
    attach ({!Trace.precompile}), so a warm process enters the traced
    engine with its superblocks already installed; a damaged, stale or
    mismatched plan silently falls back to online formation. *)

module Image := Tagsim_asm.Image

(** Bump on plan-format or trace-formation changes: participates in the
    key digest and heads the payload, so entries from either side of a
    bump are never hit (see the implementation header for the policy
    versus [Cache]/[Objcache]). *)
val version : string

(** How a planned segment ends, and which successor the path expects.
    [Trace] re-exports this by type equation: the plan records the
    junction exactly as it was grown. *)
type jct =
  | Cond of { expect_taken : bool; target : int }
  | Jump of { link : bool }
  | Indirect of { rs : int; link : bool }

(** One block of a superblock path; everything else the trace compiler
    needs is re-derived from the image and validated on load. *)
type seg = { ps_pc : int; ps_stop : int; ps_jct : jct; ps_next : int }

(** One superblock: the (already unrolled) segment path and its exit. *)
type trace = { pt_segs : seg array; pt_exit : int }

(** A plan: every superblock formed for one image, in formation order. *)
type t = trace list

(** The leader pc of a planned trace ([pt_segs.(0).ps_pc]). *)
val head : trace -> int

(** {1 Store configuration} — CLI-owned, disabled by default, like the
    other stores. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
val dir : unit -> string
val set_dir : string -> unit

(** [(hits, misses, writes)] — whole plan files. *)
val counters : unit -> int * int * int

(** Individual superblocks pre-compiled from loaded plans (the number a
    warm run starts with). *)
val traces_loaded : unit -> int

val note_traces_loaded : int -> unit
val reset_counters : unit -> unit

(** {1 Keys} *)

(** Content fingerprint of an image's code array (instructions,
    annotations, speculation flags).  Sharing-insensitive: structurally
    equal images fingerprint identically however they were built (cold
    compile or relink from cached objects). *)
val image_fingerprint : Image.t -> string

(** Store key: digest of the image fingerprint, a caller-supplied
    hardware/scheme token and the {!version} stamp. *)
val key : fingerprint:string -> token:string -> string

(** On-disk path of a key's entry (for tests). *)
val entry_path : string -> string

(** {1 (De)serialisation} — line-oriented text with a version header
    and an ["end"] trailer; {!parse} raises on any damage. *)

val serialize : t -> string

exception Malformed

val parse : string -> t

(** {1 Store operations} — every failure mode on [load] is a miss;
    [store] is atomic (temp + rename) and best-effort. *)

val load : string -> t option
val store : string -> t -> unit

(** Remove every plan entry (and stray temp file) from the store
    directory; only files this module created are touched. *)
val wipe : unit -> unit
