(** The profile-guided superblock trace engine (tier 2 of [`Traced]).

    Tier 1 is the fused block dispatch with a per-leader entry-heat
    counter and a two-entry successor (edge) profile.  When a leader
    crosses the hot threshold, {!form} grows a superblock along the
    dominant successor path: a bounded run of fused-block shapes, each
    ending in a guardable junction — a conditional branch, a direct
    jump, or a register-indirect jump, all with fusible delay slots —
    and closed by a loop back-edge, an unguardable block, a cold or
    bimodal edge, or the length bound.  The expected path is compiled
    exactly like a fused block, only longer: one instruction-level
    continuation chain whose statically-knowable statistics — including
    the cross-junction delay-slot interlocks that the fused engine must
    probe dynamically, and the annul accounting of squashing branches
    the path falls through — are pre-summed into a single delta applied
    once on trace entry.

    Exactness comes from the guards.  Each junction that can leave the
    expected path compiles a side exit that (a) subtracts the pre-summed
    delta of everything that will now not execute (the off-path
    continuation of this junction plus every later segment), (b) refunds
    the corresponding pre-paid fuel, (c) performs whatever the off path
    genuinely does (run the annulled-on-path slots, charge the annul
    cycles of slots the path expected to run, latch the in-flight load
    register), and (d) hands the off-path pc back to the dispatch loop.
    Dynamic early exits inside the path (division by zero, checked-load
    type traps, resumable generic-arithmetic traps) reuse the fused
    engine's {!Fuse.compile_op} with trace-wide undo deltas and fuel
    refunds.  The result is bit-identical {!Stats.t}, abort codes and
    fuel trajectory — [Out_of_fuel] tail included, because a trace
    pre-pays its retirements like a block does and falls back to block
    granularity when fuel runs short (enforced by the four-way engine
    differential suite). *)

module M = Machine
module Insn = Tagsim_mipsx.Insn
module Reg = Tagsim_mipsx.Reg
module Word = Tagsim_mipsx.Word
module Image = Tagsim_asm.Image

(* Block entries before a leader is considered hot. *)
let default_threshold = 32

(* Superblock length bound, in blocks. *)
let max_segments = 64

(* A trace must span at least two blocks: a single-segment trace is the
   fused block it came from, with an extra guard. *)
let min_segments = 2

(* How a trace segment ends, and which successor the path expects:
   a conditional branch guarded on its condition; J/Jal with a static
   successor, no guard; Jr/Jalr guarded on the latched jump target.
   Re-exported from [Plan] by type equation — the junction is the part
   of a grown segment that persists verbatim in a trace plan. *)
type jct = Plan.jct =
  | Cond of { expect_taken : bool; target : int }
  | Jump of { link : bool }
  | Indirect of { rs : int; link : bool }

type seg = {
  sg_pc : int; (* leader *)
  sg_stop : int; (* terminator address *)
  sg_len : int; (* body length (sg_stop - sg_pc) *)
  sg_term : Image.entry;
  sg_s1 : Image.entry; (* fused delay slots *)
  sg_s2 : Image.entry;
  sg_squash : bool;
  sg_jct : jct;
  sg_next : int; (* expected successor leader (trace exit for the last) *)
  sg_prob : float; (* observed share of the expected successor *)
}

(* --- Growth. --- *)

(* Expected probability of reaching a segment before growth stops: the
   product of the observed junction shares along the path.  Growing
   past a junction only pays off if the path usually survives it; a
   junction that would drop the product below the cutoff still joins
   the trace as its final, guarded segment (a side exit at the last
   junction rolls back nothing), but nothing is grown beyond it. *)
let reach_cutoff = 0.5

(* The leading recorded successor of a junction, with its share of the
   recorded total.  The observation floor adapts to tiny test
   thresholds. *)
let dominant (ts : M.tstate) pc =
  let c1 = ts.M.ts_cnt1.(pc) and c2 = ts.M.ts_cnt2.(pc) in
  let s, c =
    if c1 >= c2 then (ts.M.ts_succ1.(pc), c1) else (ts.M.ts_succ2.(pc), c2)
  in
  let floor = min 4 (max 1 (ts.M.ts_threshold - 1)) in
  if s >= 0 && c >= floor then
    Some (s, float_of_int c /. float_of_int (c1 + c2))
  else None

type candidate = Seg of seg | No_dominant | Unfit

(* The share credited to a [Jr ra] whose return address the growth's
   call-return stack predicts: near-certain — the matching call is on
   the path, and the calling convention restores [ra] before the return
   — but guarded like any expected successor, so a program that returns
   somewhere else only side-exits. *)
let matched_return_prob = 0.99

(* Can the block led by [pc] be a trace segment, and where does its
   expected path go?  [ret] is the innermost unreturned call's return
   address, if the path crossed one — it beats the edge profile for
   [Jr ra], whose profile blurs every call site of the function
   together.  [Unfit] is structural (no junction, unfusible slots);
   [No_dominant] may resolve once more edge profile accumulates. *)
let segment_of (m : M.t) (ts : M.tstate) ~ret pc : candidate =
  let sh = Fuse.shape m pc in
  match (sh.Fuse.sh_term, sh.Fuse.sh_slots) with
  | Some e, Fuse.Fused (s1, s2) -> (
      let stop = sh.Fuse.sh_stop in
      let fall = stop + 3 in
      let mk ?(p = 1.0) jct next =
        Seg
          {
            sg_pc = pc;
            sg_stop = stop;
            sg_len = stop - pc;
            sg_term = e;
            sg_s1 = s1;
            sg_s2 = s2;
            sg_squash = sh.Fuse.sh_squash;
            sg_jct = jct;
            sg_next = next;
            sg_prob = p;
          }
      in
      match e.Image.insn with
      | Insn.J target -> mk (Jump { link = false }) target
      | Insn.Jal target -> mk (Jump { link = true }) target
      | Insn.B (_, target) | Insn.Bi (_, target) | Insn.Btag (_, target) -> (
          if target = fall then
            (* Degenerate branch-to-fall-through: with slots running
               either way there is nothing to guard; an annulling one
               still differs in accounting, so leave it to tier 1. *)
            if sh.Fuse.sh_squash then Unfit
            else mk (Jump { link = false }) target
          else
            match dominant ts pc with
            | Some (d, p) when d = target ->
                mk ~p (Cond { expect_taken = true; target }) target
            | Some (d, p) when d = fall ->
                mk ~p (Cond { expect_taken = false; target }) fall
            | Some _ | None -> No_dominant)
      | Insn.Jr rs -> (
          match ret with
          | Some r when rs = Reg.ra ->
              mk ~p:matched_return_prob (Indirect { rs; link = false }) r
          | _ -> (
              match dominant ts pc with
              | Some (d, p) -> mk ~p (Indirect { rs; link = false }) d
              | None -> No_dominant))
      | Insn.Jalr rs -> (
          match dominant ts pc with
          | Some (d, p) -> mk ~p (Indirect { rs; link = true }) d
          | None -> No_dominant)
      | _ -> Unfit)
  | _ -> Unfit

(* Grow the superblock from [head] along expected successors.  Growth
   closes on a loop back-edge into the path, on a block that cannot be
   a segment, on a junction without a dominant successor, at
   [max_segments], or when the product of junction shares says the tail
   would rarely be reached ([reach_cutoff]).  A back-edge into the
   *head* closes specially: the path is a whole loop body, so it is
   unrolled as many times as the length bound and the iteration's
   completion probability allow, amortising the per-entry costs (one
   delta apply, one dispatch, one entry probe) over several iterations
   while the exit stays head-aligned for self-chaining.  [Ok] carries
   the segments and the exit pc; [Error retryable] reports a head not
   (yet) worth a trace. *)
let grow (m : M.t) (ts : M.tstate) head =
  let n = Array.length m.M.code in
  let blocks = m.M.blocks in
  (* [stack]: return addresses of calls crossed on the path and not yet
     returned from — the call-return hint for [Jr ra] junctions. *)
  let rec go acc count pc reach stack =
    let close retryable =
      if count >= min_segments && pc >= 0 && pc < n then
        Ok (Array.of_list (List.rev acc), pc)
      else Error retryable
    in
    if pc = head && count > 0 then begin
      let body = List.rev acc in
      let by_len = max_segments / count in
      let by_reach =
        (* enough iterations that 95% of entries exit before the end:
           unrolling further buys nothing, stopping earlier re-enters
           mid-run *)
        if reach >= 0.999 then max_segments
        else max 1 (int_of_float (log 0.05 /. log reach))
      in
      let k = max 1 (min by_len by_reach) in
      if k * count >= min_segments then
        Ok (Array.concat (List.init k (fun _ -> Array.of_list body)), head)
      else Error false
    end
    else if List.exists (fun s -> s.sg_pc = pc) acc then close false
    else if count = max_segments then close false
    else if reach < reach_cutoff then close false
    else if pc < 0 || pc >= n || blocks.(pc) = None then close false
    else
      let ret = match stack with r :: _ -> Some r | [] -> None in
      match segment_of m ts ~ret pc with
      | Unfit -> close false
      | No_dominant -> close true
      | Seg s ->
          let stack' =
            match s.sg_jct with
            | Jump { link = true } | Indirect { link = true; _ } ->
                (s.sg_stop + 3) :: stack
            | Indirect { link = false; rs } when rs = Reg.ra -> (
                match stack with _ :: rest -> rest | [] -> [])
            | _ -> stack
          in
          go (s :: acc) (count + 1) s.sg_next (reach *. s.sg_prob) stack'
  in
  go [] 0 head 1.0 []

(* --- Compilation. --- *)

(* The success-path cycle charge a division owes back when it aborts
   (the reference never charges an aborting division, but the pre-sum
   did). *)
let div_extra (e : Image.entry) =
  match e.Image.insn with
  | Insn.Alu (((Insn.Div | Insn.Rem) as op), _, _, _) ->
      Some (Stats.slot e.Image.annot, M.alu_cycles op)
  | _ -> None

let compress_sum accs =
  let a = Fuse.acc_create () in
  List.iter (Fuse.acc_add a) accs;
  Fuse.compress a

(* The guard condition of a conditional branch, pre-resolved with the
   comparison inlined (no indirect evaluator call on the hot path). *)
let cond_test (hw : M.hw) (e : Image.entry) : M.t -> bool =
  match e.Image.insn with
  | Insn.B (b, _) -> (
      let rs = b.Insn.rs and rt = b.Insn.rt in
      match b.Insn.cond with
      | Insn.Eq -> fun t -> t.M.regs.(rs) = t.M.regs.(rt)
      | Insn.Ne -> fun t -> t.M.regs.(rs) <> t.M.regs.(rt)
      | Insn.Lt ->
          fun t -> Word.to_signed t.M.regs.(rs) < Word.to_signed t.M.regs.(rt)
      | Insn.Ge ->
          fun t -> Word.to_signed t.M.regs.(rs) >= Word.to_signed t.M.regs.(rt)
      | Insn.Gt ->
          fun t -> Word.to_signed t.M.regs.(rs) > Word.to_signed t.M.regs.(rt)
      | Insn.Le ->
          fun t -> Word.to_signed t.M.regs.(rs) <= Word.to_signed t.M.regs.(rt))
  | Insn.Bi (b, _) -> (
      let rs = b.Insn.bi_rs in
      let immw = Word.of_int b.Insn.bi_imm in
      let imms = Word.to_signed immw in
      match b.Insn.bi_cond with
      | Insn.Eq -> fun t -> t.M.regs.(rs) = immw
      | Insn.Ne -> fun t -> t.M.regs.(rs) <> immw
      | Insn.Lt -> fun t -> Word.to_signed t.M.regs.(rs) < imms
      | Insn.Ge -> fun t -> Word.to_signed t.M.regs.(rs) >= imms
      | Insn.Gt -> fun t -> Word.to_signed t.M.regs.(rs) > imms
      | Insn.Le -> fun t -> Word.to_signed t.M.regs.(rs) <= imms)
  | Insn.Btag (b, _) ->
      let shift = hw.M.tag_shift and width = hw.M.tag_width in
      let rs = b.Insn.bt_rs in
      let neg = b.Insn.bt_neg and tag = b.Insn.bt_tag in
      if neg then fun t -> Word.field ~shift ~width t.M.regs.(rs) <> tag
      else fun t -> Word.field ~shift ~width t.M.regs.(rs) = tag
  | _ -> assert false

(* Trace-tier operation specialisation: the superblock compiler can
   afford more compile time per instruction than block fusion, so the
   common never-trapping straight-line operations compile to closures
   with the operator inlined — no indirect evaluator call on the hot
   path.  Anything that can trap or touch memory falls back to the
   shared [Fuse.compile_op]; the computations mirror it exactly. *)
let spec_op (e : Image.entry) ~(next : Fuse.chain_fn) : Fuse.chain_fn option =
  match e.Image.insn with
  | Insn.Nop -> Some next
  | Insn.Alu (op, rd, rs, rt) -> (
      match op with
      | Insn.Div | Insn.Rem -> None
      | _ when rd = Reg.zero -> Some next
      | Insn.Add ->
          Some
            (fun t ->
              t.M.regs.(rd) <- Word.of_int (Word.add t.M.regs.(rs) t.M.regs.(rt));
              next t)
      | Insn.Sub ->
          Some
            (fun t ->
              t.M.regs.(rd) <- Word.of_int (Word.sub t.M.regs.(rs) t.M.regs.(rt));
              next t)
      | Insn.And ->
          Some
            (fun t ->
              t.M.regs.(rd) <-
                Word.of_int (Word.logand t.M.regs.(rs) t.M.regs.(rt));
              next t)
      | Insn.Or ->
          Some
            (fun t ->
              t.M.regs.(rd) <-
                Word.of_int (Word.logor t.M.regs.(rs) t.M.regs.(rt));
              next t)
      | Insn.Xor ->
          Some
            (fun t ->
              t.M.regs.(rd) <-
                Word.of_int (Word.logxor t.M.regs.(rs) t.M.regs.(rt));
              next t)
      | Insn.Nor ->
          Some
            (fun t ->
              t.M.regs.(rd) <-
                Word.of_int (Word.lognor t.M.regs.(rs) t.M.regs.(rt));
              next t)
      | Insn.Slt ->
          Some
            (fun t ->
              t.M.regs.(rd) <-
                Word.of_int
                  (if Word.lt_signed t.M.regs.(rs) t.M.regs.(rt) then 1 else 0);
              next t)
      | Insn.Sltu ->
          Some
            (fun t ->
              t.M.regs.(rd) <-
                Word.of_int
                  (if Word.lt_unsigned t.M.regs.(rs) t.M.regs.(rt) then 1
                   else 0);
              next t)
      | Insn.Sll ->
          Some
            (fun t ->
              t.M.regs.(rd) <- Word.of_int (Word.sll t.M.regs.(rs) t.M.regs.(rt));
              next t)
      | Insn.Srl ->
          Some
            (fun t ->
              t.M.regs.(rd) <- Word.of_int (Word.srl t.M.regs.(rs) t.M.regs.(rt));
              next t)
      | Insn.Sra ->
          Some
            (fun t ->
              t.M.regs.(rd) <- Word.of_int (Word.sra t.M.regs.(rs) t.M.regs.(rt));
              next t)
      | Insn.Mul ->
          Some
            (fun t ->
              t.M.regs.(rd) <- Word.of_int (Word.mul t.M.regs.(rs) t.M.regs.(rt));
              next t))
  | Insn.Alui (op, rd, rs, imm) -> (
      if (op = Insn.Div || op = Insn.Rem) && imm = 0 then None
      else if rd = Reg.zero then Some next
      else
        let b = Word.of_int imm in
        match op with
        | Insn.Add ->
            Some
              (fun t ->
                t.M.regs.(rd) <- Word.of_int (Word.add t.M.regs.(rs) b);
                next t)
        | Insn.Sub ->
            Some
              (fun t ->
                t.M.regs.(rd) <- Word.of_int (Word.sub t.M.regs.(rs) b);
                next t)
        | Insn.And ->
            Some
              (fun t ->
                t.M.regs.(rd) <- Word.of_int (Word.logand t.M.regs.(rs) b);
                next t)
        | Insn.Or ->
            Some
              (fun t ->
                t.M.regs.(rd) <- Word.of_int (Word.logor t.M.regs.(rs) b);
                next t)
        | Insn.Xor ->
            Some
              (fun t ->
                t.M.regs.(rd) <- Word.of_int (Word.logxor t.M.regs.(rs) b);
                next t)
        | Insn.Nor ->
            Some
              (fun t ->
                t.M.regs.(rd) <- Word.of_int (Word.lognor t.M.regs.(rs) b);
                next t)
        | Insn.Slt ->
            Some
              (fun t ->
                t.M.regs.(rd) <-
                  Word.of_int (if Word.lt_signed t.M.regs.(rs) b then 1 else 0);
                next t)
        | Insn.Sltu ->
            Some
              (fun t ->
                t.M.regs.(rd) <-
                  Word.of_int (if Word.lt_unsigned t.M.regs.(rs) b then 1 else 0);
                next t)
        | Insn.Sll ->
            Some
              (fun t ->
                t.M.regs.(rd) <- Word.of_int (Word.sll t.M.regs.(rs) b);
                next t)
        | Insn.Srl ->
            Some
              (fun t ->
                t.M.regs.(rd) <- Word.of_int (Word.srl t.M.regs.(rs) b);
                next t)
        | Insn.Sra ->
            Some
              (fun t ->
                t.M.regs.(rd) <- Word.of_int (Word.sra t.M.regs.(rs) b);
                next t)
        | Insn.Mul ->
            Some
              (fun t ->
                t.M.regs.(rd) <- Word.of_int (Word.mul t.M.regs.(rs) b);
                next t)
        | Insn.Div ->
            (* [imm] is a compile-time non-zero constant: no trap. *)
            Some
              (fun t ->
                t.M.regs.(rd) <- Word.of_int (Word.div t.M.regs.(rs) b);
                next t)
        | Insn.Rem ->
            Some
              (fun t ->
                t.M.regs.(rd) <- Word.of_int (Word.rem t.M.regs.(rs) b);
                next t))
  | Insn.Li (rd, imm) ->
      if rd = Reg.zero then Some next
      else
        let v = Word.of_int imm in
        Some
          (fun t ->
            t.M.regs.(rd) <- v;
            next t)
  | Insn.La (rd, addr) ->
      if rd = Reg.zero then Some next
      else
        let v = Word.of_int addr in
        Some
          (fun t ->
            t.M.regs.(rd) <- v;
            next t)
  | Insn.Mv (rd, rs) ->
      if rd = Reg.zero then Some next
      else
        Some
          (fun t ->
            t.M.regs.(rd) <- t.M.regs.(rs);
            next t)
  | _ -> None

(* Compile the expected path of [segs] into one continuation chain with
   one entry delta, building right to left so each junction knows the
   chain, the pre-summed statistics and the pre-paid fuel of everything
   after it. *)
let compile_trace (m : M.t) (segs : seg array) exit_pc : M.trace =
  let hw = m.M.hw in
  let code = m.M.code in
  (* Specialised closure when the operation cannot trap, shared
     compiler otherwise. *)
  let op_of e ~pc ~undo ~refund ~(next : Fuse.chain_fn) =
    match spec_op e ~next with
    | Some f -> f
    | None -> Fuse.compile_op hw e ~pc ~undo ~refund ~next
  in
  let k = Array.length segs in
  let slots_run i =
    (* Annulled only when the expected path falls through a squashing
       branch. *)
    let s = segs.(i) in
    not
      (s.sg_squash
      && match s.sg_jct with Cond { expect_taken; _ } -> not expect_taken | _ -> false)
  in
  (* The cross-junction in-flight load reaching segment [i]'s first
     instruction — statically the previous junction's second delay slot
     (annulled slots leave none).  The trace entry keeps the fused
     engine's one dynamic probe instead. *)
  let cross_prev i =
    if i = 0 then None
    else if slots_run (i - 1) then Some segs.(i - 1).sg_s2
    else None
  in
  let steps_of i = segs.(i).sg_len + 1 in
  let total_steps = ref 0 in
  for i = 0 to k - 1 do
    total_steps := !total_steps + steps_of i
  done;
  (* [chain]: the continuation at the start of the segment after the one
     being compiled; seeded with the trace exit, which latches the
     expected path's in-flight load for the next dispatch. *)
  let final_pl =
    if slots_run (k - 1) then Fuse.exit_pl_of segs.(k - 1).sg_s2.Image.insn
    else -1
  in
  let chain =
    ref
      (fun (t : M.t) ->
        t.M.pending_load <- final_pl;
        exit_pc)
  in
  (* [after]: expected-path statistics of every segment to the right of
     the one being compiled (immutable once captured by a closure — a
     fresh accumulator replaces it each iteration). *)
  let after = ref (Fuse.acc_create ()) in
  let refund_after = ref 0 in
  for i = k - 1 downto 0 do
    let s = segs.(i) in
    let l = s.sg_pc and len = s.sg_len and c = s.sg_stop in
    let suffix = !after in
    let ra_ref = !refund_after in
    let cont = !chain in
    (* Expected-path unit contributions: body, terminator, then the
       delay slots — or the branch's annul accounting when the expected
       path squashes them. *)
    let units =
      Array.init (len + 3) (fun u ->
          if u < len then
            let prev = if u = 0 then cross_prev i else Some code.(l + u - 1) in
            Fuse.contribution prev code.(l + u)
          else if u = len then
            let prev = if len > 0 then Some code.(c - 1) else cross_prev i in
            Fuse.contribution prev s.sg_term
          else if slots_run i then
            if u = len + 1 then Fuse.contribution None s.sg_s1
            else Fuse.contribution (Some s.sg_s1) s.sg_s2
          else if u = len + 1 then begin
            let a = Fuse.acc_create () in
            Fuse.acc_squash a (Stats.slot s.sg_term.Image.annot);
            a
          end
          else Fuse.acc_create ())
    in
    let path_hi = if slots_run i then len + 2 else len + 1 in
    (* Trace-wide undo for a dynamic exit at unit [lo - 1]: the rest of
       this segment's expected path plus every later segment. *)
    let undo_from ?extra lo =
      lazy
        (let a = Fuse.acc_create () in
         for j = lo to path_hi do
           Fuse.acc_add a units.(j)
         done;
         Fuse.acc_add a suffix;
         (match extra with
         | Some (si, cc) -> Fuse.acc_charge a si cc
         | None -> ());
         Fuse.compress a)
    in
    let empty_undo ?extra () =
      lazy
        (let a = Fuse.acc_create () in
         (match extra with
         | Some (si, cc) -> Fuse.acc_charge a si cc
         | None -> ());
         Fuse.compress a)
    in
    (* Slot contributions independent of the expected path (the off path
       of an expected-fall squashing branch runs them even though the
       pre-sum holds the annul accounting instead). *)
    let sc1 = Fuse.contribution None s.sg_s1 in
    let sc2 = Fuse.contribution (Some s.sg_s1) s.sg_s2 in
    let post_pl = Fuse.exit_pl_of s.sg_s2.Image.insn in
    let si = Stats.slot s.sg_term.Image.annot in
    (* On-path slot chain: slots flow into [cont2]; an in-slot dynamic
       exit undoes the slot remainder and every later segment (the
       slots ride the junction's retirement, so only later segments'
       fuel is refunded). *)
    let on_slots cont2 =
      let s2op =
        op_of s.sg_s2 ~pc:c
          ~undo:(undo_from ?extra:(div_extra s.sg_s2) (len + 3))
          ~refund:ra_ref ~next:cont2
      in
      op_of s.sg_s1 ~pc:c
        ~undo:(undo_from ?extra:(div_extra s.sg_s1) (len + 2))
        ~refund:ra_ref ~next:s2op
    in
    (* Off-path slot chain: runs after a guard already rolled back every
       later segment, with the slot pair's own statistics in force, so
       an in-slot exit owes only the unexecuted slot remainder. *)
    let off_slots pc_off =
      let fin (t : M.t) =
        t.M.pending_load <- post_pl;
        pc_off
      in
      let s2op =
        op_of s.sg_s2 ~pc:c
          ~undo:(empty_undo ?extra:(div_extra s.sg_s2) ())
          ~refund:0 ~next:fin
      in
      op_of s.sg_s1 ~pc:c
        ~undo:
          (lazy
            (let a = Fuse.acc_create () in
             Fuse.acc_add a sc2;
             (match div_extra s.sg_s1 with
             | Some (si, cc) -> Fuse.acc_charge a si cc
             | None -> ());
             Fuse.compress a))
        ~refund:0 ~next:s2op
    in
    let jchain : Fuse.chain_fn =
      match s.sg_jct with
      | Jump { link } ->
          let base = on_slots cont in
          if link then
            let ra_v = c + 3 in
            fun t ->
              t.M.regs.(Reg.ra) <- ra_v;
              base t
          else base
      | Indirect { rs; link } ->
          (* Slots run before the target is known; the guard then tests
             the latched target against the expected successor. *)
          let expected = s.sg_next in
          let d_suffix = Fuse.compress suffix in
          let guard (t : M.t) =
            if t.M.jump_target = expected then cont t
            else begin
              Fuse.delta_undo t.M.stats d_suffix;
              if ra_ref <> 0 then t.M.fuel <- t.M.fuel + ra_ref;
              t.M.pending_load <- post_pl;
              t.M.jump_target
            end
          in
          let ch = on_slots guard in
          if link then
            let ra_v = c + 3 in
            fun t ->
              t.M.jump_target <- t.M.regs.(rs);
              t.M.regs.(Reg.ra) <- ra_v;
              ch t
          else
            fun t ->
              t.M.jump_target <- t.M.regs.(rs);
              ch t
      | Cond { expect_taken; target } ->
          let fall = c + 3 in
          let pc_off = if expect_taken then fall else target in
          let test = cond_test hw s.sg_term in
          if not s.sg_squash then begin
            (* Slots run on both paths with identical statistics; the
               side exit only owes the later segments. *)
            let on = on_slots cont in
            let d_suffix = Fuse.compress suffix in
            let off_chain = off_slots pc_off in
            let off (t : M.t) =
              Fuse.delta_undo t.M.stats d_suffix;
              if ra_ref <> 0 then t.M.fuel <- t.M.fuel + ra_ref;
              off_chain t
            in
            if expect_taken then fun t -> if test t then on t else off t
            else fun t -> if test t then off t else on t
          end
          else if expect_taken then begin
            (* Expected taken: slot statistics are pre-summed; falling
               through annuls them — undo slots and later segments, then
               charge the annul cycles the reference charges. *)
            let on = on_slots cont in
            let d_undo = compress_sum [ sc1; sc2; suffix ] in
            let off (t : M.t) =
              Fuse.delta_undo t.M.stats d_undo;
              if ra_ref <> 0 then t.M.fuel <- t.M.fuel + ra_ref;
              let st = t.M.stats in
              st.Stats.squashed <- st.Stats.squashed + 2;
              st.Stats.cycles <- st.Stats.cycles + 2;
              st.Stats.kind_cycles.(si) <- st.Stats.kind_cycles.(si) + 2;
              t.M.pending_load <- -1;
              fall
            in
            fun t -> if test t then on t else off t
          end
          else begin
            (* Expected fall-through: the annul accounting is pre-summed
               and the path continues with nothing dynamic; taking the
               branch undoes it (and the later segments), then runs the
               slots for real — applying their statistics first, since
               the pre-sum deliberately left them out. *)
            let d_undo = compress_sum [ units.(len + 1); suffix ] in
            let slots_apply = Fuse.apply_fn (compress_sum [ sc1; sc2 ]) in
            let off_chain = off_slots target in
            let off (t : M.t) =
              Fuse.delta_undo t.M.stats d_undo;
              if ra_ref <> 0 then t.M.fuel <- t.M.fuel + ra_ref;
              slots_apply t.M.stats;
              off_chain t
            in
            fun t -> if test t then off t else cont t
          end
    in
    (* Thread the body into the junction, innermost first. *)
    let rec body u (next : Fuse.chain_fn) : Fuse.chain_fn =
      if u < 0 then next
      else
        let e = code.(l + u) in
        body (u - 1)
          (op_of e ~pc:(l + u)
             ~undo:(undo_from ?extra:(div_extra e) (u + 1))
             ~refund:(len - u + ra_ref)
             ~next)
    in
    chain := body (len - 1) jchain;
    refund_after := ra_ref + steps_of i;
    let nt = Fuse.acc_create () in
    Fuse.acc_add nt suffix;
    for j = 0 to path_hi do
      Fuse.acc_add nt units.(j)
    done;
    after := nt
  done;
  let head = segs.(0).sg_pc in
  let entry_apply = Fuse.apply_fn (Fuse.compress !after) in
  let body0 = !chain in
  (* The one dynamic interlock probe, as on fused block entry: the
     trace's first instruction against a load in flight from whatever
     ran before it. *)
  let er1, er2 = Fuse.read_regs code.(head).Image.insn in
  let exec =
    if er1 < 0 && er2 < 0 then fun (t : M.t) ->
      entry_apply t.M.stats;
      body0 t
    else fun (t : M.t) ->
      let pl = t.M.pending_load in
      if pl >= 0 && (pl = er1 || pl = er2) then Fuse.interlock_stats t;
      entry_apply t.M.stats;
      body0 t
  in
  {
    M.tr_pc = head;
    M.tr_blocks = k;
    M.tr_steps = !total_steps;
    M.tr_exit = exit_pc;
    M.tr_exec = exec;
    M.tr_next = None;
  }

(* --- Plans: the pure-data projection of a grown superblock, and the
   validating compiler that turns a (possibly persisted) plan back into
   trace closures. --- *)

(* Everything [compile_trace] consumes beyond the planned skeleton —
   instruction entries, body lengths, squash flags — is a function of
   the image, so the projection keeps only the path decisions. *)
let plan_of_segs (segs : seg array) exit_pc : Plan.trace =
  {
    Plan.pt_segs =
      Array.map
        (fun s ->
          {
            Plan.ps_pc = s.sg_pc;
            ps_stop = s.sg_stop;
            ps_jct = s.sg_jct;
            ps_next = s.sg_next;
          })
        segs;
    pt_exit = exit_pc;
  }

(* Rebuild a growth segment from its planned skeleton, re-deriving the
   instruction entries from the live image and validating every claim
   the plan makes: the leader must head a fused block, the shape's
   terminator must sit where the plan says with fusible slots, and the
   junction must describe that terminator exactly (the same cases
   [segment_of] could have produced).  [None] rejects the plan — a
   stale or damaged entry degrades to online formation, never to wrong
   execution. *)
let seg_of_plan (m : M.t) (ps : Plan.seg) : seg option =
  let n = Array.length m.M.code in
  let pc = ps.Plan.ps_pc in
  if pc < 0 || pc >= n || m.M.blocks.(pc) = None then None
  else
    let sh = Fuse.shape m pc in
    match (sh.Fuse.sh_term, sh.Fuse.sh_slots) with
    | Some e, Fuse.Fused (s1, s2) when sh.Fuse.sh_stop = ps.Plan.ps_stop ->
        let stop = sh.Fuse.sh_stop in
        let fall = stop + 3 in
        let jct = ps.Plan.ps_jct and next = ps.Plan.ps_next in
        let ok =
          match (jct, e.Image.insn) with
          | Jump { link = false }, Insn.J target -> next = target
          | Jump { link = true }, Insn.Jal target -> next = target
          | ( Jump { link = false },
              (Insn.B (_, t) | Insn.Bi (_, t) | Insn.Btag (_, t)) ) ->
              (* degenerate branch-to-fall-through, non-squashing *)
              (not sh.Fuse.sh_squash) && t = fall && next = fall
          | ( Cond { expect_taken; target },
              (Insn.B (_, t) | Insn.Bi (_, t) | Insn.Btag (_, t)) ) ->
              target = t && t <> fall
              && next = (if expect_taken then t else fall)
          | Indirect { rs; link = false }, Insn.Jr r -> rs = r
          | Indirect { rs; link = true }, Insn.Jalr r -> rs = r
          | _ -> false
        in
        if ok then
          Some
            {
              sg_pc = pc;
              sg_stop = stop;
              sg_len = stop - pc;
              sg_term = e;
              sg_s1 = s1;
              sg_s2 = s2;
              sg_squash = sh.Fuse.sh_squash;
              sg_jct = jct;
              sg_next = next;
              sg_prob = 1.0; (* growth-only; the compiler never reads it *)
            }
        else None
    | _ -> None

exception Rejected

(* Compile one planned superblock into a trace closure, or [None] when
   the plan does not validate against this machine's image: segment
   count within the growth bounds, exit pc in range, every expected
   successor chaining into the next planned leader (the compiled
   continuation chain is hardwired on that invariant), and every
   segment re-validated by {!seg_of_plan}.  A validated plan compiles
   through the same {!compile_trace} as online formation, so AOT and
   online traces are the same closures over the same data. *)
let compile_plan (m : M.t) (p : Plan.trace) : M.trace option =
  let n = Array.length m.M.code in
  let k = Array.length p.Plan.pt_segs in
  let exit_pc = p.Plan.pt_exit in
  if k < min_segments || k > max_segments || exit_pc < 0 || exit_pc >= n then
    None
  else
    match
      Array.init k (fun i ->
          let ps = p.Plan.pt_segs.(i) in
          let chained =
            if i = k - 1 then exit_pc else p.Plan.pt_segs.(i + 1).Plan.ps_pc
          in
          if ps.Plan.ps_next <> chained then raise Rejected;
          match seg_of_plan m ps with
          | Some s -> s
          | None -> raise Rejected)
    with
    | segs -> Some (compile_trace m segs exit_pc)
    | exception Rejected -> None

(* --- Formation (called by the run loop at the hot threshold). --- *)

let form (t : M.t) head =
  match t.M.tstate with
  | None -> ()
  | Some ts ->
      if ts.M.ts_traces.(head) = None then begin
        match grow t ts head with
        | Ok (segs, exit_pc) -> (
            (* Project the grown path to its plan and compile through
               the plan compiler: online formation and an
               ahead-of-time warm start are one code path, so a
               persisted plan can never mean anything the online
               engine would not have built itself. *)
            let p = plan_of_segs segs exit_pc in
            match compile_plan t p with
            | Some tr ->
                M.note_trace_formed ();
                ts.M.ts_traces.(head) <- Some tr;
                ts.M.ts_plans <- p :: ts.M.ts_plans;
                ts.M.ts_dirty <- true
            | None ->
                (* A freshly grown path always validates; reaching here
                   would be a growth bug — stay saturated, as for a
                   structural failure. *)
                ())
        | Error retryable ->
            (* Retryable heads re-arm the heat counter and try again
               once more edge profile has accumulated; structural
               failures stay saturated so the check never repeats. *)
            if retryable then ts.M.ts_heat.(head) <- 0
      end

(* --- Ahead-of-time warm start. --- *)

(* Install every superblock of a persisted plan whose validation still
   holds on this machine's image, so the run enters the traced engine
   with its hot paths already compiled — no tier-1 profiling, heat
   accumulation or growth for the planned heads.  Traces are recorded
   in [ts_plans] (so a later flush rewrites the full plan) but do not
   mark the state dirty: a fully warm run flushes nothing.  Returns the
   number installed; rejected entries are skipped silently (online
   formation remains as the fallback). *)
let precompile (m : M.t) (plan : Plan.t) =
  match m.M.tstate with
  | None -> 0
  | Some ts ->
      let n = Array.length ts.M.ts_traces in
      let installed = ref 0 in
      List.iter
        (fun (p : Plan.trace) ->
          if Array.length p.Plan.pt_segs > 0 then
            let head = Plan.head p in
            if
              head >= 0 && head < n
              && ts.M.ts_traces.(head) = None
              && Array.length m.M.code = n
            then
              match compile_plan m p with
              | Some tr ->
                  ts.M.ts_traces.(head) <- Some tr;
                  ts.M.ts_plans <- p :: ts.M.ts_plans;
                  incr installed
              | None -> ())
        plan;
      Plan.note_traces_loaded !installed;
      !installed

(* --- Attachment. --- *)

let attach ?(threshold = default_threshold) (m : M.t) =
  Fuse.attach m;
  let n = Array.length m.M.code in
  match m.M.tstate with
  | Some ts when Array.length ts.M.ts_traces = n -> ()
  | _ ->
      m.M.tstate <-
        Some
          {
            M.ts_traces = Array.make n None;
            M.ts_heat = Array.make n 0;
            M.ts_succ1 = Array.make n (-1);
            M.ts_cnt1 = Array.make n 0;
            M.ts_succ2 = Array.make n (-1);
            M.ts_cnt2 = Array.make n 0;
            M.ts_threshold = threshold;
            M.ts_form = form;
            M.ts_plans = [];
            M.ts_dirty = false;
          }

let create ?fuel ?threshold ~hw image =
  let m = M.create ?fuel ~engine:`Traced ~hw image in
  attach ?threshold m;
  m
