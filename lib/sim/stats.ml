(** Execution statistics: cycles classified by annotation (Section 3 of the
    paper) and instruction frequencies classified by instruction class
    (Figure 2). *)

module Annot = Tagsim_mipsx.Annot
module Insn = Tagsim_mipsx.Insn

(* Dense code for annotation kinds. *)
let kind_code (k : Annot.kind) =
  match k with
  | Annot.Plain -> 0
  | Annot.Insert -> 1
  | Annot.Remove -> 2
  | Annot.Extract s -> 3 + Annot.source_index s
  | Annot.Check s -> 9 + Annot.source_index s
  | Annot.Garith -> 15
  | Annot.Alloc -> 16
  | Annot.Gc_work -> 17
  | Annot.Slot_fill -> 18

let n_kind_codes = 19

type t = {
  mutable cycles : int;
  mutable insns : int; (* executed instructions, including slot no-ops *)
  kind_cycles : int array; (* [n_kind_codes * 2]: (kind, checking) *)
  klass_insns : int array; (* Insn.n_klasses *)
  mutable squashed : int; (* annulled slot instructions (cycles) *)
  mutable interlocks : int; (* load-use interlock cycles *)
  mutable traps : int;
  mutable trap_cycles : int;
}

let create () =
  {
    cycles = 0;
    insns = 0;
    kind_cycles = Array.make (n_kind_codes * 2) 0;
    klass_insns = Array.make Insn.n_klasses 0;
    squashed = 0;
    interlocks = 0;
    traps = 0;
    trap_cycles = 0;
  }

let slot (a : Annot.t) =
  (kind_code a.Annot.kind * 2) + if a.Annot.checking then 1 else 0

let charge t (a : Annot.t) cycles =
  t.cycles <- t.cycles + cycles;
  t.kind_cycles.(slot a) <- t.kind_cycles.(slot a) + cycles

let count_insn t klass =
  t.insns <- t.insns + 1;
  let i = Insn.klass_index klass in
  t.klass_insns.(i) <- t.klass_insns.(i) + 1

(** Accumulate [src] into [dst]; used when combining the measurements of
    partitioned work (e.g. the parallel experiment pool). *)
let merge dst src =
  dst.cycles <- dst.cycles + src.cycles;
  dst.insns <- dst.insns + src.insns;
  Array.iteri
    (fun i v -> dst.kind_cycles.(i) <- dst.kind_cycles.(i) + v)
    src.kind_cycles;
  Array.iteri
    (fun i v -> dst.klass_insns.(i) <- dst.klass_insns.(i) + v)
    src.klass_insns;
  dst.squashed <- dst.squashed + src.squashed;
  dst.interlocks <- dst.interlocks + src.interlocks;
  dst.traps <- dst.traps + src.traps;
  dst.trap_cycles <- dst.trap_cycles + src.trap_cycles

let equal a b =
  a.cycles = b.cycles && a.insns = b.insns
  && a.kind_cycles = b.kind_cycles
  && a.klass_insns = b.klass_insns
  && a.squashed = b.squashed
  && a.interlocks = b.interlocks
  && a.traps = b.traps
  && a.trap_cycles = b.trap_cycles

(* --- Accessors used by the analysis layer. --- *)

let total t = t.cycles
let executed_insns t = t.insns

(** Cycles charged to a kind.  [checking] selects instructions that exist
    only because run-time checking is on ([Some true]), only base
    instructions ([Some false]), or both ([None]). *)
let kind ?checking t (k : Annot.kind) =
  let c = kind_code k in
  match checking with
  | Some true -> t.kind_cycles.((c * 2) + 1)
  | Some false -> t.kind_cycles.(c * 2)
  | None -> t.kind_cycles.(c * 2) + t.kind_cycles.((c * 2) + 1)

let sum_kinds ?checking t kinds =
  List.fold_left (fun acc k -> acc + kind ?checking t k) 0 kinds

let insertion ?checking t = kind ?checking t Annot.Insert
let removal ?checking t = kind ?checking t Annot.Remove

let extraction ?checking t =
  sum_kinds ?checking t
    (List.map (fun s -> Annot.Extract s) Annot.all_sources)

(** Cycles of the compare-and-branch part of checks (excluding extraction);
    the paper's "tag checking" cost is [extraction + check_only]. *)
let check_only ?checking ?source t =
  match source with
  | Some s -> kind ?checking t (Annot.Check s)
  | None ->
      sum_kinds ?checking t
        (List.map (fun s -> Annot.Check s) Annot.all_sources)

let extraction_of ?checking t s = kind ?checking t (Annot.Extract s)

(** Full tag-checking cost for a source: extraction plus compare/branch. *)
let checking_of ?checking t s =
  extraction_of ?checking t s + kind ?checking t (Annot.Check s)

let tag_checking ?checking t = extraction ?checking t + check_only ?checking t
let generic_arith ?checking t = kind ?checking t Annot.Garith
let alloc t = kind t Annot.Alloc
let gc t = kind t Annot.Gc_work

let klass_count t k = t.klass_insns.(Insn.klass_index k)

let pp ppf t =
  Fmt.pf ppf
    "@[<v>cycles %d (insns %d, squashed %d, interlocks %d, traps %d)@,\
     insert %d  remove %d  extract %d  check %d  garith %d  alloc %d  gc %d@]"
    t.cycles t.insns t.squashed t.interlocks t.traps (insertion t)
    (removal t) (extraction t) (check_only t) (generic_arith t) (alloc t)
    (gc t)
