(** The basic-block fusion engine: straight-line runs of pre-decoded
    instructions are fused into single block closures with all
    statically-knowable statistics (instruction and class counts,
    per-slot cycle charges, in-block load-use interlocks) pre-summed
    into one delta applied on block entry, and successor blocks chained
    directly through a per-block memo.  [Machine.run] on a [`Fused]
    machine dispatches once per block instead of once per instruction.
    Produces bit-identical {!Stats.t} to the reference interpreter —
    including on dynamic early exits (division by zero, checked-load
    type traps, generic-arithmetic traps, fuel exhaustion), which undo
    the pre-summed statistics and refund the pre-paid fuel of the
    unexecuted block suffix (enforced by the engine differential
    suite).

    The building blocks of fusion — static per-instruction statistics
    accumulation, flattened deltas, and the continuation-chain compiler
    for simple instructions — are exposed below for {!Trace}, which
    reuses them to compile multi-block superblocks; they are not meant
    for use outside [lib/sim]. *)

module Image := Tagsim_asm.Image
module Insn := Tagsim_mipsx.Insn

(** Build the block array for a machine's code (exposed for tests;
    normally use {!attach}).  Index [i] is [Some] iff [i] is a block
    leader: the entry point, a code label, a branch or jump target, the
    fall-through after a control instruction and its two delay slots, or
    the resumption point after a generic-arithmetic instruction. *)
val compile : Machine.t -> Machine.block option array

(** Install the pre-decoded closures (via {!Predecode.attach}) and the
    fused block array on the machine; idempotent.  Required before
    [Machine.run] on a machine created with [~engine:`Fused]. *)
val attach : Machine.t -> unit

(** Convenience: [Machine.create ~engine:`Fused] plus {!attach}. *)
val create : ?fuel:int -> hw:Machine.hw -> Image.t -> Machine.t

(** {1 Fusion building blocks (shared with {!Trace})} *)

(** A fused continuation returns the successor pc, or {!stopped} (any
    negative value) once the outcome is decided. *)
type chain_fn = Machine.t -> int

val stopped : int

(** Dense statistics accumulator used at fuse time. *)
type acc = {
  mutable a_cycles : int;
  mutable a_insns : int;
  mutable a_interlocks : int;
  mutable a_squashed : int;
  a_kind : int array;
  a_klass : int array;
}

val acc_create : unit -> acc
val acc_add : acc -> acc -> unit

(** Mirrors [Stats.charge] with the annotation slot pre-resolved. *)
val acc_charge : acc -> int -> int -> unit

(** The squashed-slot accounting of an annulling branch (two cycles,
    charged to the branch's annotation slot), statically applied when a
    trace's expected path falls through a squashing branch. *)
val acc_squash : acc -> int -> unit

(** The statically-knowable statistics of one instruction: count, the
    unconditional success-path cycle charge (control instructions issue
    in one cycle), and the load-use interlock against the given
    predecessor. *)
val contribution : Image.entry option -> Image.entry -> acc

(** A pre-summed statistics delta, flattened for single-sweep
    application (see the implementation header for the layout). *)
type delta = int array

val compress : acc -> delta

(** A shape-specialised applier for one delta (falls back to the
    generic sweep for large or squash-carrying deltas). *)
val apply_fn : delta -> Stats.t -> unit

val delta_undo : Stats.t -> delta -> unit

(** The dynamic block/trace-entry interlock charge (the one probe fusion
    cannot remove: the previous block may end in a load). *)
val interlock_stats : Machine.t -> unit

(** Registers read by an instruction as a pre-resolved pair (at most
    two; -1 = none). *)
val read_regs : int Insn.t -> int * int

(** The register left with an in-flight load by an instruction at a
    block exit (-1 for anything but a load). *)
val exit_pl_of : int Insn.t -> int

val squash_of : Image.entry -> bool

(** Compile one simple (non-control, possibly trapping) instruction
    into a closure doing only the genuinely dynamic work, tail-calling
    [next] on the success path.  On a dynamic exit it undoes the
    pre-summed statistics of the unexecuted remainder ([undo]), refunds
    [refund] pre-paid fuel, and does not call [next]. *)
val compile_op :
  Machine.hw ->
  Image.entry ->
  pc:int ->
  undo:delta Lazy.t ->
  refund:int ->
  next:chain_fn ->
  chain_fn

(** How a terminator's two delay slots are handled: fused into the
    block, run dynamically through the per-instruction closures, or
    absent (slotless control instructions and blocks falling off the end
    of code). *)
type ctl_slots = No_slots | Fused of Image.entry * Image.entry | Dynamic

(** The static layout of the block led by an address (shared with the
    trace compiler, which walks shapes along the hot path). *)
type shape = {
  sh_stop : int; (* first control instruction at/after the leader *)
  sh_term : Image.entry option; (* None: the block falls off code *)
  sh_slots : ctl_slots;
  sh_squash : bool;
}

val shape : Machine.t -> int -> shape
