(** The basic-block fusion engine: straight-line runs of pre-decoded
    instructions are fused into single block closures with all
    statically-knowable statistics (instruction and class counts,
    per-slot cycle charges, in-block load-use interlocks) pre-summed
    into one delta applied on block entry, and successor blocks chained
    directly through a per-block memo.  [Machine.run] on a [`Fused]
    machine dispatches once per block instead of once per instruction.
    Produces bit-identical {!Stats.t} to the reference interpreter —
    including on dynamic early exits (division by zero, checked-load
    type traps, generic-arithmetic traps, fuel exhaustion), which undo
    the pre-summed statistics and refund the pre-paid fuel of the
    unexecuted block suffix (enforced by the three-way engine
    differential suite). *)

module Image := Tagsim_asm.Image

(** Build the block array for a machine's code (exposed for tests;
    normally use {!attach}).  Index [i] is [Some] iff [i] is a block
    leader: the entry point, a code label, a branch or jump target, the
    fall-through after a control instruction and its two delay slots, or
    the resumption point after a generic-arithmetic instruction. *)
val compile : Machine.t -> Machine.block option array

(** Install the pre-decoded closures (via {!Predecode.attach}) and the
    fused block array on the machine; idempotent.  Required before
    [Machine.run] on a machine created with [~engine:`Fused]. *)
val attach : Machine.t -> unit

(** Convenience: [Machine.create ~engine:`Fused] plus {!attach}. *)
val create : ?fuel:int -> hw:Machine.hw -> Image.t -> Machine.t
