(** The pre-decoded execution engine: compiles each image entry once
    into a closure with operands, cycle costs, annotation slot indices
    and immediate-width charges resolved at decode time, so that
    [Machine.run] on a [`Predecoded] machine retires an instruction with
    one array-indexed closure call.  Produces bit-identical {!Stats.t}
    to the reference interpreter (enforced by the engine differential
    suite). *)

module Image := Tagsim_asm.Image

(** Build the closure array for a machine's code (exposed for tests;
    normally use {!attach}). *)
val compile : Machine.t -> Machine.exec_fn array

(** Compile the machine's code and install the closure array on the
    machine; idempotent.  Required before [Machine.run] on a machine
    created with [~engine:`Predecoded]. *)
val attach : Machine.t -> unit

(** Convenience: [Machine.create ~engine:`Predecoded] plus {!attach}. *)
val create : ?fuel:int -> hw:Machine.hw -> Image.t -> Machine.t
