(** The pre-decoded execution engine: compiles each image entry once
    into a closure with operands, cycle costs, annotation slot indices
    and immediate-width charges resolved at decode time, so that
    [Machine.run] on a [`Predecoded] machine retires an instruction with
    one array-indexed closure call.  Produces bit-identical {!Stats.t}
    to the reference interpreter (enforced by the engine differential
    suite). *)

module Image := Tagsim_asm.Image
module Insn := Tagsim_mipsx.Insn

(** Build the closure array for a machine's code (exposed for tests;
    normally use {!attach}). *)
val compile : Machine.t -> Machine.exec_fn array

(** Compile one non-control instruction into its body closure (no pc
    advance).  Shared with {!Fuse}, which uses it for the delay-slot
    closures of fused block terminators. *)
val compile_simple : Machine.hw -> Image.entry -> Machine.exec_fn

(** Pre-resolved evaluators (mirror {!Machine.alu_eval} and
    {!Machine.cond_eval} with the constructor dispatch done once).
    Shared with {!Fuse} so the engines cannot drift. *)
val alu_fn : Insn.alu -> int -> int -> int

val cond_fn : Insn.cond -> int -> int -> bool

(** Compile the machine's code and install the closure array on the
    machine; idempotent.  Required before [Machine.run] on a machine
    created with [~engine:`Predecoded]. *)
val attach : Machine.t -> unit

(** Convenience: [Machine.create ~engine:`Predecoded] plus {!attach}. *)
val create : ?fuel:int -> hw:Machine.hw -> Image.t -> Machine.t
