(** The basic-block fusion engine.

    [attach] builds the static control-flow graph over a machine's code
    (leaders: the entry point, every code label, branch/jump targets,
    fall-throughs after a control instruction and its two delay slots,
    and the resumption point after each generic-arithmetic instruction)
    and fuses each straight-line run of pre-decoded instruction bodies —
    terminator and delay slots included — into a single block closure;
    [Machine.run] on a [`Fused] machine then dispatches once per block
    instead of once per instruction.

    Inside a block everything statically knowable is pre-summed at fuse
    time into one {!delta} applied in a single shot on block entry:
    instruction and class counts, per-slot annotation cycles, ALU and
    wide-immediate cycle charges, load-use interlocks between adjacent
    in-block instructions (fully determined by the instruction pair),
    and the terminator's own issue cycle.  The remaining per-instruction
    work is threaded as a continuation chain — each closure does only
    the genuinely dynamic part (register writes, memory traffic, trap
    and abort detection) and tail-calls the next; no-ops and writes to
    the zero register vanish entirely.  A dynamic early exit (division
    by zero, a checked-access type trap, a generic-arithmetic trap)
    subtracts the pre-summed statistics of the instructions that did not
    execute and refunds their pre-paid fuel, so the engine stays
    bit-identical to the reference interpreter — statistics, abort
    codes, fuel trajectory and all (enforced by the three-way engine
    differential suite).

    Delay slots are fused into their branch whenever both slot
    instructions are simple (not control, not generic arithmetic): the
    branch's [interlock_check] resets [pending_load], so slot interlocks
    are static — the first slot never interlocks and the second only
    against a load in the first — and a conditional branch compiles two
    slot chains (taken and fall-through) differing only in the final pc
    update.  Register-indirect jumps latch their target in
    [Machine.jump_target] before the slots run (a slot may clobber the
    register).  Slots ride their branch's top-level retirement, so they
    consume no fuel of their own.

    The per-step [pending_load] interlock probe survives only at block
    entry (the previous block may end in a load); everywhere else it is
    resolved statically, and [pending_load] itself is written only at
    block exits. *)

module M = Machine
module Insn = Tagsim_mipsx.Insn
module Annot = Tagsim_mipsx.Annot
module Reg = Tagsim_mipsx.Reg
module Word = Tagsim_mipsx.Word
module Image = Tagsim_asm.Image

(* The fused continuation chain returns the successor pc so the dispatch
   loop never round-trips through [t.pc]; [stopped] (any negative value)
   signals that the outcome has been decided instead. *)
type chain_fn = M.t -> int

let stopped = -1

let nop_klass = Insn.klass_index Insn.K_nop

(* Counter-array geometry, taken from a throwaway Stats value so this
   module cannot drift from the Stats layout. *)
let n_kind_slots = Array.length (Stats.create ()).Stats.kind_cycles
let n_klass_slots = Array.length (Stats.create ()).Stats.klass_insns

(* --- Static statistics: accumulated densely at fuse time, applied
   sparsely at run time. --- *)

type acc = {
  mutable a_cycles : int;
  mutable a_insns : int;
  mutable a_interlocks : int;
  mutable a_squashed : int;
  a_kind : int array; (* n_kind_slots *)
  a_klass : int array; (* n_klass_slots *)
}

let acc_create () =
  {
    a_cycles = 0;
    a_insns = 0;
    a_interlocks = 0;
    a_squashed = 0;
    a_kind = Array.make n_kind_slots 0;
    a_klass = Array.make n_klass_slots 0;
  }

let acc_add dst src =
  dst.a_cycles <- dst.a_cycles + src.a_cycles;
  dst.a_insns <- dst.a_insns + src.a_insns;
  dst.a_interlocks <- dst.a_interlocks + src.a_interlocks;
  dst.a_squashed <- dst.a_squashed + src.a_squashed;
  Array.iteri (fun i v -> dst.a_kind.(i) <- dst.a_kind.(i) + v) src.a_kind;
  Array.iteri (fun i v -> dst.a_klass.(i) <- dst.a_klass.(i) + v) src.a_klass

(* Mirrors [Stats.count_insn] with the class index pre-resolved. *)
let acc_count a ki =
  a.a_insns <- a.a_insns + 1;
  a.a_klass.(ki) <- a.a_klass.(ki) + 1

(* Mirrors [Stats.charge] with the annotation slot pre-resolved. *)
let acc_charge a si c =
  a.a_cycles <- a.a_cycles + c;
  a.a_kind.(si) <- a.a_kind.(si) + c

(* Mirrors [Machine.interlock_check] firing: one no-op cycle. *)
let acc_interlock a =
  a.a_cycles <- a.a_cycles + 1;
  a.a_interlocks <- a.a_interlocks + 1;
  a.a_insns <- a.a_insns + 1;
  a.a_klass.(nop_klass) <- a.a_klass.(nop_klass) + 1

(* Mirrors the reference's squashed-slot accounting: two annulled slot
   cycles charged to the branch's own annotation slot.  Used by the
   trace compiler when the expected path falls through a squashing
   branch, making the annul statically known. *)
let acc_squash a si =
  a.a_cycles <- a.a_cycles + 2;
  a.a_squashed <- a.a_squashed + 2;
  a.a_kind.(si) <- a.a_kind.(si) + 2

(** A pre-summed statistics delta, flattened into one int array so that
    applying it is a single linear sweep: [0..3] hold the cycle,
    instruction, interlock and squashed-slot totals, [4] holds the index
    just past the kind-counter pairs, and the rest are sparse (index,
    amount) pairs — kind-cycle pairs first, class-count pairs after —
    because a block typically touches a handful of the counter slots. *)
type delta = int array

let sparse arr =
  let l = ref [] in
  Array.iteri (fun i v -> if v <> 0 then l := v :: i :: !l) arr;
  List.rev !l

let compress a : delta =
  let kind = sparse a.a_kind and klass = sparse a.a_klass in
  let kind_end = 5 + List.length kind in
  Array.of_list
    (a.a_cycles :: a.a_insns :: a.a_interlocks :: a.a_squashed :: kind_end
    :: kind
    @ klass)

(* The sparse indices come from [Stats.slot]/[Insn.klass_index] by
   construction, so the unchecked accesses below cannot go wrong. *)
let delta_apply (s : Stats.t) (d : delta) =
  s.Stats.cycles <- s.Stats.cycles + Array.unsafe_get d 0;
  s.Stats.insns <- s.Stats.insns + Array.unsafe_get d 1;
  s.Stats.interlocks <- s.Stats.interlocks + Array.unsafe_get d 2;
  s.Stats.squashed <- s.Stats.squashed + Array.unsafe_get d 3;
  let kind_end = Array.unsafe_get d 4 in
  let kc = s.Stats.kind_cycles in
  let i = ref 5 in
  while !i < kind_end do
    let idx = Array.unsafe_get d !i in
    Array.unsafe_set kc idx
      (Array.unsafe_get kc idx + Array.unsafe_get d (!i + 1));
    i := !i + 2
  done;
  let ki = s.Stats.klass_insns in
  let len = Array.length d in
  while !i < len do
    let idx = Array.unsafe_get d !i in
    Array.unsafe_set ki idx
      (Array.unsafe_get ki idx + Array.unsafe_get d (!i + 1));
    i := !i + 2
  done

let delta_undo (s : Stats.t) (d : delta) =
  s.Stats.cycles <- s.Stats.cycles - Array.unsafe_get d 0;
  s.Stats.insns <- s.Stats.insns - Array.unsafe_get d 1;
  s.Stats.interlocks <- s.Stats.interlocks - Array.unsafe_get d 2;
  s.Stats.squashed <- s.Stats.squashed - Array.unsafe_get d 3;
  let kind_end = Array.unsafe_get d 4 in
  let kc = s.Stats.kind_cycles in
  let i = ref 5 in
  while !i < kind_end do
    let idx = Array.unsafe_get d !i in
    Array.unsafe_set kc idx
      (Array.unsafe_get kc idx - Array.unsafe_get d (!i + 1));
    i := !i + 2
  done;
  let ki = s.Stats.klass_insns in
  let len = Array.length d in
  while !i < len do
    let idx = Array.unsafe_get d !i in
    Array.unsafe_set ki idx
      (Array.unsafe_get ki idx - Array.unsafe_get d (!i + 1));
    i := !i + 2
  done

(* Specialised applier for a delta on the hot block-entry path: the
   common small shapes (one or two kind pairs, one or two class pairs)
   compile to straight-line adds through a flat closure, which beats the
   generic header-and-sweep of [delta_apply]; anything larger falls back
   to it.  The indices are trusted for the same reason as above. *)
let apply_fn (d : delta) : Stats.t -> unit =
  let dc = d.(0) and di = d.(1) and dl = d.(2) in
  let ke = d.(4) in
  let n = Array.length d in
  if d.(3) <> 0 then fun s -> delta_apply s d
  else
    match (ke - 5, n - ke) with
  | 2, 2 ->
      let i1 = d.(5) and v1 = d.(6) in
      let j1 = d.(ke) and w1 = d.(ke + 1) in
      fun s ->
        s.Stats.cycles <- s.Stats.cycles + dc;
        s.Stats.insns <- s.Stats.insns + di;
        s.Stats.interlocks <- s.Stats.interlocks + dl;
        let kc = s.Stats.kind_cycles and ki = s.Stats.klass_insns in
        Array.unsafe_set kc i1 (Array.unsafe_get kc i1 + v1);
        Array.unsafe_set ki j1 (Array.unsafe_get ki j1 + w1)
  | 4, 2 ->
      let i1 = d.(5) and v1 = d.(6) and i2 = d.(7) and v2 = d.(8) in
      let j1 = d.(ke) and w1 = d.(ke + 1) in
      fun s ->
        s.Stats.cycles <- s.Stats.cycles + dc;
        s.Stats.insns <- s.Stats.insns + di;
        s.Stats.interlocks <- s.Stats.interlocks + dl;
        let kc = s.Stats.kind_cycles and ki = s.Stats.klass_insns in
        Array.unsafe_set kc i1 (Array.unsafe_get kc i1 + v1);
        Array.unsafe_set kc i2 (Array.unsafe_get kc i2 + v2);
        Array.unsafe_set ki j1 (Array.unsafe_get ki j1 + w1)
  | 2, 4 ->
      let i1 = d.(5) and v1 = d.(6) in
      let j1 = d.(ke) and w1 = d.(ke + 1) in
      let j2 = d.(ke + 2) and w2 = d.(ke + 3) in
      fun s ->
        s.Stats.cycles <- s.Stats.cycles + dc;
        s.Stats.insns <- s.Stats.insns + di;
        s.Stats.interlocks <- s.Stats.interlocks + dl;
        let kc = s.Stats.kind_cycles and ki = s.Stats.klass_insns in
        Array.unsafe_set kc i1 (Array.unsafe_get kc i1 + v1);
        Array.unsafe_set ki j1 (Array.unsafe_get ki j1 + w1);
        Array.unsafe_set ki j2 (Array.unsafe_get ki j2 + w2)
  | 4, 4 ->
      let i1 = d.(5) and v1 = d.(6) and i2 = d.(7) and v2 = d.(8) in
      let j1 = d.(ke) and w1 = d.(ke + 1) in
      let j2 = d.(ke + 2) and w2 = d.(ke + 3) in
      fun s ->
        s.Stats.cycles <- s.Stats.cycles + dc;
        s.Stats.insns <- s.Stats.insns + di;
        s.Stats.interlocks <- s.Stats.interlocks + dl;
        let kc = s.Stats.kind_cycles and ki = s.Stats.klass_insns in
        Array.unsafe_set kc i1 (Array.unsafe_get kc i1 + v1);
        Array.unsafe_set kc i2 (Array.unsafe_get kc i2 + v2);
        Array.unsafe_set ki j1 (Array.unsafe_get ki j1 + w1);
        Array.unsafe_set ki j2 (Array.unsafe_get ki j2 + w2)
  | _ -> fun s -> delta_apply s d

(* Dynamic block-entry interlock (the one probe fusion cannot remove:
   the previous block may end in a load). *)
let interlock_stats (t : M.t) =
  let s = t.M.stats in
  s.Stats.cycles <- s.Stats.cycles + 1;
  s.Stats.interlocks <- s.Stats.interlocks + 1;
  s.Stats.insns <- s.Stats.insns + 1;
  s.Stats.klass_insns.(nop_klass) <- s.Stats.klass_insns.(nop_klass) + 1

(* Registers read by an instruction as a pre-resolved pair (at most two;
   -1 = none). *)
let read_regs (insn : int Insn.t) =
  match Insn.reads insn with
  | [] -> (-1, -1)
  | [ r ] -> (r, -1)
  | [ r1; r2 ] -> (r1, r2)
  | _ -> assert false

(* Statically-resolved load-use dependence: does [next] read the
   destination of a preceding load [prev]?  (Only a load leaves
   [pending_load] set; every other instruction resets it.) *)
let interlocks_after prev_insn next_insn =
  match prev_insn with
  | Insn.Ld (_, rd, _, _) -> List.mem rd (Insn.reads next_insn)
  | _ -> false

let exit_pl_of (insn : int Insn.t) =
  match insn with Insn.Ld (_, rd, _, _) -> rd | _ -> -1

(* --- Block construction. --- *)

let squash_of (e : Image.entry) =
  match e.Image.insn with
  | Insn.B (b, _) -> b.Insn.squash
  | Insn.Bi (b, _) -> b.Insn.bi_squash
  | Insn.Btag (b, _) -> b.Insn.bt_squash
  | _ -> false

type terminator = Ctl of int * Image.entry | Fall of int

(* How the terminator's two delay slots are handled: [No_slots] for the
   slotless control instructions, [Fused] when both slot instructions
   are simple enough to fuse into the block, [Dynamic] otherwise (a slot
   holds a control or generic-arithmetic instruction, or runs off the
   end of code) — then the slots execute through the per-instruction
   pre-decoded closures with the [in_slot] protocol intact. *)
type ctl_slots = No_slots | Fused of Image.entry * Image.entry | Dynamic

(* The static layout of the block led by an address: where the
   straight-line run stops, its terminator (if it does not fall off the
   end of code), and how the terminator's delay slots behave.  Shared
   with the trace compiler, which walks block shapes along the hot path
   instead of re-deriving them. *)
type shape = {
  sh_stop : int; (* first control instruction at/after the leader *)
  sh_term : Image.entry option; (* None: the block falls off code *)
  sh_slots : ctl_slots;
  sh_squash : bool;
}

let shape (m : M.t) l =
  let code = m.M.code in
  let n = Array.length code in
  let rec scan j =
    if j >= n || Insn.is_control code.(j).Image.insn then j else scan (j + 1)
  in
  let stop = scan l in
  let term = if stop < n then Some code.(stop) else None in
  let slots =
    match term with
    | Some e -> (
        match e.Image.insn with
        | Insn.B _ | Insn.Bi _ | Insn.Btag _ | Insn.J _ | Insn.Jal _
        | Insn.Jr _ | Insn.Jalr _ ->
            let fusible (se : Image.entry) =
              match se.Image.insn with
              | Insn.Add_gen _ | Insn.Sub_gen _ -> false
              | i -> not (Insn.is_control i)
            in
            if stop + 2 < n && fusible code.(stop + 1) && fusible code.(stop + 2)
            then Fused (code.(stop + 1), code.(stop + 2))
            else Dynamic
        | _ -> No_slots)
    | None -> No_slots
  in
  let squash = match term with Some e -> squash_of e | None -> false in
  { sh_stop = stop; sh_term = term; sh_slots = slots; sh_squash = squash }

let leaders (m : M.t) =
  let code = m.M.code in
  let n = Array.length code in
  let leader = Array.make n false in
  if n > 0 then leader.(0) <- true;
  let mark i = if i >= 0 && i < n then leader.(i) <- true in
  Array.iter mark m.M.code_entries;
  Array.iteri
    (fun i (e : Image.entry) ->
      match e.Image.insn with
      | Insn.B (_, t) | Insn.Bi (_, t) | Insn.Btag (_, t) ->
          mark t;
          mark (i + 3)
      | Insn.J t | Insn.Jal t ->
          mark t;
          mark (i + 3)
      | Insn.Jr _ | Insn.Jalr _ | Insn.Rett | Insn.Trap _ | Insn.Halt ->
          mark (i + 3)
      | Insn.Add_gen _ | Insn.Sub_gen _ ->
          (* A resumable trap returns to the next instruction ([epc]),
             so it must start a block. *)
          mark (i + 1)
      | Insn.Alu _ | Insn.Alui _ | Insn.Li _ | Insn.La _ | Insn.Mv _
      | Insn.Ld _ | Insn.St _ | Insn.Settd _ | Insn.Nop ->
          ())
    code;
  leader

(* Effective data address, mirroring [Machine.effective] /
   [Predecode.compile_simple] but with the instruction's code address
   resolved statically for the fault message ([t.pc] is stale inside a
   fused body); returns -1 for a type trap. *)
let effective_fn (hw : M.hw) (e : Image.entry) p (mode : Insn.mem_mode) off =
  let offw = Word.of_int off in
  let mem_bytes = hw.M.mem_bytes in
  let mem_mask = mem_bytes - 1 in
  match mode with
  | Insn.Plain ->
      if e.Image.speculative then fun (_ : M.t) base ->
        let addr = Word.add base offw in
        if addr >= mem_bytes then addr land mem_mask else addr
      else fun (_ : M.t) base ->
        let addr = Word.add base offw in
        if addr >= mem_bytes then
          M.errorf "unmasked address 0x%08x at pc %d" addr p
        else addr
  | Insn.Tag_ignoring ->
      let amask = hw.M.addr_mask in
      fun _ base -> Word.add base offw land amask
  | Insn.Checked expected ->
      let shift = hw.M.tag_shift and width = hw.M.tag_width in
      let exp_shifted = expected lsl shift in
      fun _ base ->
        if Word.field ~shift ~width base <> expected then -1
        else Word.sub (Word.add base offw) exp_shifted land mem_mask

(* The statically-knowable statistics of one instruction: its count,
   its cycle charge when the charge is unconditional on the success
   path (control instructions issue in one cycle), and the load-use
   interlock with its predecessor. *)
let contribution (prev : Image.entry option) (e : Image.entry) =
  let insn = e.Image.insn in
  let si = Stats.slot e.Image.annot in
  let a = acc_create () in
  acc_count a (Insn.klass_index (Insn.klass insn));
  (match insn with
  | Insn.Alu (op, _, _, _) -> acc_charge a si (M.alu_cycles op)
  | Insn.Alui ((Insn.Div | Insn.Rem), _, _, 0) ->
      (* Always aborts before charging. *)
      ()
  | Insn.Alui (op, _, _, _) -> acc_charge a si (M.alu_cycles op)
  | Insn.Li (_, v) -> acc_charge a si (Word.imm_cycles v)
  | Insn.La (_, v) -> acc_charge a si (Word.imm_cycles v)
  | Insn.Mv _ | Insn.Ld _ | Insn.St _ | Insn.Add_gen _ | Insn.Sub_gen _
  | Insn.Settd _ | Insn.Nop | Insn.B _ | Insn.Bi _ | Insn.Btag _ | Insn.J _
  | Insn.Jal _ | Insn.Jr _ | Insn.Jalr _ | Insn.Rett | Insn.Trap _
  | Insn.Halt ->
      acc_charge a si 1);
  (match prev with
  | Some pe when interlocks_after pe.Image.insn insn -> acc_interlock a
  | _ -> ());
  a

(* Compile one simple instruction into a closure that does only the
   genuinely dynamic work and tail-calls [next]; no-ops and writes to
   the zero register compile to [next] itself.  On a dynamic exit the
   closure restores the statistics pre-summed for the unexecuted
   remainder of the block ([undo]), refunds its pre-paid fuel, and does
   not call [next]. *)
let compile_op (hw : M.hw) (e : Image.entry) ~pc:p ~undo ~refund
    ~(next : chain_fn) : chain_fn =
  let insn = e.Image.insn in
  let exit_early u (t : M.t) =
    delta_undo t.M.stats u;
    if refund <> 0 then t.M.fuel <- t.M.fuel + refund
  in
  match insn with
  | Insn.Nop -> next
  | Insn.Alu (op, rd, rs, rt) -> (
      let ev = Predecode.alu_fn op in
      match op with
      | Insn.Div | Insn.Rem ->
          (* The charge is pre-summed for the success path; a division
             by zero aborts before charging, so the undo of the suffix
             also takes back this instruction's own cycles. *)
          let u = Lazy.force undo in
          fun t ->
            let b = t.M.regs.(rt) in
            if b = 0 then begin
              exit_early u t;
              M.abort t M.err_div0;
              stopped
            end
            else begin
              if rd <> Reg.zero then
                t.M.regs.(rd) <- Word.of_int (ev t.M.regs.(rs) b);
              next t
            end
      | _ ->
          if rd = Reg.zero then next
          else fun t ->
            t.M.regs.(rd) <- Word.of_int (ev t.M.regs.(rs) t.M.regs.(rt));
            next t)
  | Insn.Alui (op, rd, rs, imm) ->
      if (op = Insn.Div || op = Insn.Rem) && imm = 0 then
        let u = Lazy.force undo in
        fun t ->
          exit_early u t;
          M.abort t M.err_div0;
          stopped
      else if rd = Reg.zero then next
      else
        let ev = Predecode.alu_fn op in
        let immw = Word.of_int imm in
        fun t ->
          t.M.regs.(rd) <- Word.of_int (ev t.M.regs.(rs) immw);
          next t
  | Insn.Li (rd, imm) ->
      if rd = Reg.zero then next
      else
        let v = Word.of_int imm in
        fun t ->
          t.M.regs.(rd) <- v;
          next t
  | Insn.La (rd, addr) ->
      if rd = Reg.zero then next
      else
        let v = Word.of_int addr in
        fun t ->
          t.M.regs.(rd) <- v;
          next t
  | Insn.Mv (rd, rs) ->
      if rd = Reg.zero then next
      else fun t ->
        t.M.regs.(rd) <- t.M.regs.(rs);
        next t
  | Insn.Ld (mode, rd, rs, off) ->
      let eff = effective_fn hw e p mode off in
      let u = Lazy.force undo in
      fun t ->
        let addr = eff t t.M.regs.(rs) in
        if addr < 0 then begin
          exit_early u t;
          M.abort t M.err_type;
          stopped
        end
        else begin
          if rd <> Reg.zero then t.M.regs.(rd) <- M.read_word t addr
          else ignore (M.read_word t addr);
          next t
        end
  | Insn.St (mode, rs, rt, off) ->
      let eff = effective_fn hw e p mode off in
      let u = Lazy.force undo in
      fun t ->
        let addr = eff t t.M.regs.(rs) in
        if addr < 0 then begin
          exit_early u t;
          M.abort t M.err_type;
          stopped
        end
        else begin
          M.write_word t addr t.M.regs.(rt);
          next t
        end
  | Insn.Add_gen (rd, rs, rt) | Insn.Sub_gen (rd, rs, rt) ->
      let is_add = match insn with Insn.Add_gen _ -> true | _ -> false in
      let garith_si =
        Stats.slot
          (Annot.make ~checking:e.Image.annot.Annot.checking Annot.Garith)
      in
      let overhead = hw.M.trap_overhead in
      let is_int = hw.M.is_int_item in
      let overflowed = hw.M.gen_overflowed in
      let u = Lazy.force undo in
      let resume = p + 1 in
      fun t ->
        let a = t.M.regs.(rs) and b = t.M.regs.(rt) in
        let result = if is_add then Word.add a b else Word.sub a b in
        if is_int a && is_int b && not (overflowed a b result) then begin
          if rd <> Reg.zero then t.M.regs.(rd) <- result;
          next t
        end
        else begin
          (* A resumable trap (or a type abort when no handler is
             registered).  The instruction itself retired — its count
             and issue cycle stand — so only the unexecuted suffix is
             undone; the handler's [rett] re-enters at the resumption
             point [p + 1], which is always a block leader. *)
          let handler =
            if is_add then t.M.gen_add_handler else t.M.gen_sub_handler
          in
          exit_early u t;
          if handler < 0 then begin
            M.abort t M.err_type;
            stopped
          end
          else begin
            let s = t.M.stats in
            s.Stats.traps <- s.Stats.traps + 1;
            s.Stats.trap_cycles <- s.Stats.trap_cycles + overhead;
            s.Stats.cycles <- s.Stats.cycles + overhead;
            s.Stats.kind_cycles.(garith_si) <-
              s.Stats.kind_cycles.(garith_si) + overhead;
            t.M.regs.(Reg.tr0) <- a;
            t.M.regs.(Reg.tr1) <- b;
            t.M.trap_dest <- rd;
            t.M.regs.(Reg.epc) <- resume;
            t.M.pending_load <- -1;
            handler
          end
        end
  | Insn.Settd rs ->
      fun t ->
        M.set_reg t t.M.trap_dest t.M.regs.(rs);
        next t
  | Insn.B _ | Insn.Bi _ | Insn.Btag _ | Insn.J _ | Insn.Jal _ | Insn.Jr _
  | Insn.Jalr _ | Insn.Rett | Insn.Trap _ | Insn.Halt ->
      assert false

(* Fuse the block whose leader is [l].  [stop] is the first control
   instruction at or after [l] (or the end of code).  The scan runs
   straight through intermediate leaders — a block reaching a join point
   duplicates the join's tail instead of falling through into it, so
   only control transfers (and running off the end of code) ever return
   to the dispatch loop; the overlapped instructions still get their own
   block for direct entries. *)
let build_block (m : M.t) l : M.block =
  let hw = m.M.hw in
  let code = m.M.code in
  let n = Array.length code in
  let sh = shape m l in
  let stop = sh.sh_stop in
  let len = stop - l in
  let term =
    match sh.sh_term with Some e -> Ctl (stop, e) | None -> Fall stop
  in
  let steps = len + (match term with Ctl _ -> 1 | Fall _ -> 0) in
  let slots = sh.sh_slots in
  let squash = sh.sh_squash in
  (* Per-unit static contributions: body instructions at 0..len-1, the
     terminator at [len] (count, issue cycle, and its statically
     resolved interlock against the body's trailing load), fused delay
     slots at [len+1] and [len+2] (the first slot never interlocks — the
     branch reset [pending_load] — and the second only against a load in
     the first). *)
  let contribs =
    Array.init (len + 3) (fun k ->
        if k < len then
          let prev = if k = 0 then None else Some code.(l + k - 1) in
          contribution prev code.(l + k)
        else if k = len then (
          match term with
          | Fall _ -> acc_create ()
          | Ctl (_, e) ->
              let prev = if len > 0 then Some code.(stop - 1) else None in
              contribution prev e)
        else
          match slots with
          | Fused (s1e, s2e) ->
              if k = len + 1 then contribution None s1e
              else contribution (Some s1e) s2e
          | No_slots | Dynamic -> acc_create ())
  in
  (* The block-entry delta covers every unit that unconditionally
     retires when the block runs to completion: the body and terminator
     always; fused slots only when the branch cannot annul them (a
     squashing branch applies the slot delta on its taken path
     instead). *)
  let entry_hi =
    match slots with Fused _ when not squash -> len + 2 | _ -> len
  in
  let entry_delta =
    let a = acc_create () in
    for i = 0 to entry_hi do
      acc_add a contribs.(i)
    done;
    compress a
  in
  let suffix ?charge lo hi =
    lazy
      (let a = acc_create () in
       for i = lo to hi do
         acc_add a contribs.(i)
       done;
       (match charge with
       | Some (si, c) -> acc_charge a si c
       | None -> ());
       compress a)
  in
  (* The undo for a dynamic exit at unit [k]: the pre-summed suffix
     after it, plus — for a division whose register divisor may be zero
     — the instruction's own success-path charge (the reference never
     charges an aborting division; the always-aborting [Alui ... 0] is
     never charged in the first place, so it takes the plain suffix). *)
  let undo_of (e : Image.entry) ~unit ~hi =
    match e.Image.insn with
    | Insn.Alu ((Insn.Div | Insn.Rem) as op, _, _, _) ->
        suffix
          ~charge:(Stats.slot e.Image.annot, M.alu_cycles op)
          (unit + 1) hi
    | _ -> suffix (unit + 1) hi
  in
  let tail : chain_fn =
    match term with
    | Fall fp ->
        let exit_pl = exit_pl_of code.(stop - 1).Image.insn in
        fun t ->
          t.M.pending_load <- exit_pl;
          fp
    | Ctl (c, e) -> (
        let insn = e.Image.insn in
        let si = Stats.slot e.Image.annot in
        let fall = c + 3 in
        match insn with
        | Insn.Rett ->
            fun t ->
              t.M.pending_load <- -1;
              t.M.regs.(Reg.epc)
        | Insn.Trap tc ->
            let abort_code = M.err_user_base + tc in
            fun t ->
              M.abort t abort_code;
              stopped
        | Insn.Halt ->
            fun t ->
              t.M.outcome <- Some (M.Halted t.M.regs.(Reg.v0));
              stopped
        | _ -> (
            match slots with
            | Fused (s1e, s2e) -> (
                let post_pl = exit_pl_of s2e.Image.insn in
                (* Slot faults report the branch's address, like the
                   reference (pc sits on the branch while slots run);
                   slots ride the branch's retirement, so their pre-paid
                   fuel refund is zero. *)
                let slot_chain (fin : chain_fn) : chain_fn =
                  let s2op =
                    compile_op hw s2e ~pc:c
                      ~undo:(undo_of s2e ~unit:(len + 2) ~hi:(len + 2))
                      ~refund:0 ~next:fin
                  in
                  compile_op hw s1e ~pc:c
                    ~undo:(undo_of s1e ~unit:(len + 1) ~hi:(len + 2))
                    ~refund:0 ~next:s2op
                in
                let goto target : chain_fn =
                 fun t ->
                  t.M.pending_load <- post_pl;
                  target
                in
                let indirect : chain_fn =
                 fun t ->
                  t.M.pending_load <- post_pl;
                  t.M.jump_target
                in
                (* The taken/not-taken continuation pair of a
                   conditional branch: a squashing branch applies the
                   slot delta only when the slots actually run and
                   charges the annulled cycles to its own kind slot
                   otherwise; each condition test below dispatches
                   between the two pre-built closures directly. *)
                let paths target : chain_fn * chain_fn =
                  if squash then
                    let taken_chain = slot_chain (goto target) in
                    let slots_apply =
                      apply_fn (Lazy.force (suffix (len + 1) (len + 2)))
                    in
                    ( (fun t ->
                        slots_apply t.M.stats;
                        taken_chain t),
                      fun t ->
                        let s = t.M.stats in
                        s.Stats.squashed <- s.Stats.squashed + 2;
                        s.Stats.cycles <- s.Stats.cycles + 2;
                        s.Stats.kind_cycles.(si) <-
                          s.Stats.kind_cycles.(si) + 2;
                        t.M.pending_load <- -1;
                        fall )
                  else (slot_chain (goto target), slot_chain (goto fall))
                in
                match insn with
                | Insn.B (b, target) ->
                    let cmp = Predecode.cond_fn b.Insn.cond in
                    let rs = b.Insn.rs and rt = b.Insn.rt in
                    let on_true, on_false = paths target in
                    fun t ->
                      if cmp t.M.regs.(rs) t.M.regs.(rt) then on_true t
                      else on_false t
                | Insn.Bi (b, target) ->
                    let cmp = Predecode.cond_fn b.Insn.bi_cond in
                    let rs = b.Insn.bi_rs in
                    let immw = Word.of_int b.Insn.bi_imm in
                    let on_true, on_false = paths target in
                    fun t ->
                      if cmp t.M.regs.(rs) immw then on_true t else on_false t
                | Insn.Btag (b, target) ->
                    let shift = hw.M.tag_shift and width = hw.M.tag_width in
                    let rs = b.Insn.bt_rs in
                    let neg = b.Insn.bt_neg and tag = b.Insn.bt_tag in
                    let on_true, on_false = paths target in
                    if neg then fun t ->
                      if Word.field ~shift ~width t.M.regs.(rs) <> tag then
                        on_true t
                      else on_false t
                    else fun t ->
                      if Word.field ~shift ~width t.M.regs.(rs) = tag then
                        on_true t
                      else on_false t
                | Insn.J target -> slot_chain (goto target)
                | Insn.Jal target ->
                    let ch = slot_chain (goto target) in
                    let ra_v = c + 3 in
                    fun t ->
                      t.M.regs.(Reg.ra) <- ra_v;
                      ch t
                | Insn.Jr rs ->
                    let ch = slot_chain indirect in
                    fun t ->
                      t.M.jump_target <- t.M.regs.(rs);
                      ch t
                | Insn.Jalr rs ->
                    (* Target read before the link write, like the
                       reference (jalr through ra must jump to the old
                       value). *)
                    let ch = slot_chain indirect in
                    let ra_v = c + 3 in
                    fun t ->
                      t.M.jump_target <- t.M.regs.(rs);
                      t.M.regs.(Reg.ra) <- ra_v;
                      ch t
                | _ -> assert false)
            | No_slots | Dynamic -> (
                (* Dynamic slots: run through the per-instruction
                   pre-decoded closures with the [in_slot] protocol, so
                   in-slot traps and aborts behave exactly as in the
                   reference.  [pending_load] is reset first, as the
                   branch's own [interlock_check] does. *)
                let slot j : M.t -> unit =
                  if j < 0 || j >= n then
                    fun _ -> M.errorf "pc out of range: %d" j
                  else Predecode.compile_simple hw code.(j)
                in
                let s1 = slot (c + 1) and s2 = slot (c + 2) in
                let exec_slots (t : M.t) =
                  t.M.in_slot <- true;
                  s1 t;
                  if t.M.outcome = None then s2 t;
                  t.M.in_slot <- false
                in
                let squash_slots (t : M.t) =
                  let s = t.M.stats in
                  s.Stats.squashed <- s.Stats.squashed + 2;
                  s.Stats.cycles <- s.Stats.cycles + 2;
                  s.Stats.kind_cycles.(si) <- s.Stats.kind_cycles.(si) + 2
                in
                let finish (t : M.t) ~taken target =
                  t.M.pending_load <- -1;
                  if squash && not taken then squash_slots t
                  else exec_slots t;
                  if t.M.outcome = None then
                    if taken then target else fall
                  else stopped
                in
                match insn with
                | Insn.B (b, target) ->
                    let cmp = Predecode.cond_fn b.Insn.cond in
                    let rs = b.Insn.rs and rt = b.Insn.rt in
                    fun t ->
                      finish t ~taken:(cmp t.M.regs.(rs) t.M.regs.(rt)) target
                | Insn.Bi (b, target) ->
                    let cmp = Predecode.cond_fn b.Insn.bi_cond in
                    let rs = b.Insn.bi_rs in
                    let immw = Word.of_int b.Insn.bi_imm in
                    fun t -> finish t ~taken:(cmp t.M.regs.(rs) immw) target
                | Insn.Btag (b, target) ->
                    let shift = hw.M.tag_shift and width = hw.M.tag_width in
                    let rs = b.Insn.bt_rs in
                    let neg = b.Insn.bt_neg and tag = b.Insn.bt_tag in
                    fun t ->
                      let got = Word.field ~shift ~width t.M.regs.(rs) in
                      finish t
                        ~taken:(if neg then got <> tag else got = tag)
                        target
                | Insn.J target -> fun t -> finish t ~taken:true target
                | Insn.Jal target ->
                    let ra_v = c + 3 in
                    fun t ->
                      t.M.regs.(Reg.ra) <- ra_v;
                      finish t ~taken:true target
                | Insn.Jr rs ->
                    fun t ->
                      let target = t.M.regs.(rs) in
                      finish t ~taken:true target
                | Insn.Jalr rs ->
                    let ra_v = c + 3 in
                    fun t ->
                      let target = t.M.regs.(rs) in
                      t.M.regs.(Reg.ra) <- ra_v;
                      finish t ~taken:true target
                | _ -> assert false)))
  in
  (* Thread the body through the terminator as one continuation chain,
     innermost first. *)
  let rec chain k (next : chain_fn) : chain_fn =
    if k < 0 then next
    else
      let e = code.(l + k) in
      chain (k - 1)
        (compile_op hw e ~pc:(l + k)
           ~undo:(undo_of e ~unit:k ~hi:entry_hi)
           ~refund:(steps - (k + 1)) ~next)
  in
  let body = chain (len - 1) tail in
  (* The one dynamic interlock probe: the block's first instruction
     against the previous block's trailing load.  (It does not reset
     [pending_load] — nothing reads it again before a block exit writes
     it.) *)
  let er1, er2 = read_regs code.(l).Image.insn in
  let entry_apply = apply_fn entry_delta in
  let exec =
    if er1 < 0 && er2 < 0 then fun t ->
      entry_apply t.M.stats;
      body t
    else fun t ->
      let pl = t.M.pending_load in
      if pl >= 0 && (pl = er1 || pl = er2) then interlock_stats t;
      entry_apply t.M.stats;
      body t
  in
  {
    M.b_pc = l;
    M.b_steps = steps;
    M.b_exec = exec;
    M.b_next1 = None;
    M.b_next2 = None;
  }

let compile (m : M.t) : M.block option array =
  let n = Array.length m.M.code in
  let leader = leaders m in
  Array.init n (fun l -> if leader.(l) then Some (build_block m l) else None)

(** Attach the fused engine: ensure the pre-decoded closures are
    installed (the fused run loop falls back to them for fuel tails and
    non-leader entry points), then build and install the block array;
    idempotent (see {!Predecode.attach} for why the staleness test is on
    lengths). *)
let attach (m : M.t) =
  Predecode.attach m;
  if Array.length m.M.blocks <> Array.length m.M.code then
    m.M.blocks <- compile m

(** Convenience: a machine created with the fused engine already
    attached. *)
let create ?fuel ~hw image =
  let m = M.create ?fuel ~engine:`Fused ~hw image in
  attach m;
  m
