(** Execution statistics: cycles classified by annotation (Section 3 of
    the paper) and instruction frequencies classified by class
    (Figure 2). *)

module Annot := Tagsim_mipsx.Annot
module Insn := Tagsim_mipsx.Insn

type t = {
  mutable cycles : int;
  mutable insns : int; (* executed instructions, including slot no-ops *)
  kind_cycles : int array; (* (kind, checking)-indexed cycle counters *)
  klass_insns : int array; (* instruction counts per class *)
  mutable squashed : int; (* annulled slot instructions (cycles) *)
  mutable interlocks : int; (* load-use interlock cycles *)
  mutable traps : int;
  mutable trap_cycles : int;
}

val create : unit -> t

(** Index into [kind_cycles] for an annotation. *)
val slot : Annot.t -> int

val charge : t -> Annot.t -> int -> unit
val count_insn : t -> Insn.klass -> unit

(** [merge dst src] accumulates every counter of [src] into [dst]; used
    when combining the measurements of partitioned work (e.g. the
    parallel experiment pool). *)
val merge : t -> t -> unit

(** Field-wise equality of every counter (the differential engine tests
    rely on this being exhaustive). *)
val equal : t -> t -> bool

(** {1 Accessors used by the analysis layer} *)

val total : t -> int
val executed_insns : t -> int

(** Cycles charged to a kind.  [checking] selects instructions that exist
    only because run-time checking is on ([Some true]), only base
    instructions ([Some false]), or both ([None], the default). *)
val kind : ?checking:bool -> t -> Annot.kind -> int

val insertion : ?checking:bool -> t -> int
val removal : ?checking:bool -> t -> int
val extraction : ?checking:bool -> t -> int

(** Compare-and-branch cycles of checks (excluding extraction); the
    paper's "tag checking" cost is [extraction + check_only]. *)
val check_only : ?checking:bool -> ?source:Annot.source -> t -> int

val extraction_of : ?checking:bool -> t -> Annot.source -> int

(** Full tag-checking cost for a source: extraction plus compare/branch. *)
val checking_of : ?checking:bool -> t -> Annot.source -> int

val tag_checking : ?checking:bool -> t -> int
val generic_arith : ?checking:bool -> t -> int
val alloc : t -> int
val gc : t -> int
val klass_count : t -> Insn.klass -> int
val pp : Format.formatter -> t -> unit
