(** The pre-decoded execution engine.

    [attach] compiles each {!Tagsim_asm.Image.entry} of a machine's code
    once into a closure [Machine.t -> unit] with everything that the
    reference interpreter recomputes per retired instruction resolved at
    decode time: operand registers, ALU cycle costs, wide-immediate
    charges ({!Tagsim_mipsx.Word.imm_cycles}), the dense
    {!Stats.slot} index of the annotation, the instruction-class index,
    the registers probed by the load-use interlock check, and the
    delay-slot closures of every branch.  [Machine.run] on a
    [`Predecoded] machine then retires an instruction with one
    array-indexed closure call instead of re-pattern-matching
    {!Tagsim_mipsx.Insn.t}.

    The closures must replicate the reference semantics {e exactly},
    statistics included: the engine differential suite asserts
    bit-identical {!Stats.t} on every registry benchmark.  Each code
    block below names the [Machine] function it mirrors. *)

module M = Machine
module Insn = Tagsim_mipsx.Insn
module Annot = Tagsim_mipsx.Annot
module Reg = Tagsim_mipsx.Reg
module Word = Tagsim_mipsx.Word
module Image = Tagsim_asm.Image

let nop_klass = Insn.klass_index Insn.K_nop

(* Mirrors [Machine.interlock_check]: [r1]/[r2] are the registers the
   instruction reads, resolved at decode time (-1 = none; the [pl >= 0]
   guard keeps -1 from ever matching). *)
let interlock (t : M.t) r1 r2 =
  let pl = t.M.pending_load in
  if pl >= 0 && (pl = r1 || pl = r2) then begin
    let s = t.M.stats in
    s.Stats.cycles <- s.Stats.cycles + 1;
    s.Stats.interlocks <- s.Stats.interlocks + 1;
    s.Stats.insns <- s.Stats.insns + 1;
    s.Stats.klass_insns.(nop_klass) <- s.Stats.klass_insns.(nop_klass) + 1
  end;
  t.M.pending_load <- -1

(* Mirrors [Stats.count_insn] with the class index pre-resolved. *)
let count (t : M.t) ki =
  let s = t.M.stats in
  s.Stats.insns <- s.Stats.insns + 1;
  s.Stats.klass_insns.(ki) <- s.Stats.klass_insns.(ki) + 1

(* Mirrors [Stats.charge] with the annotation slot pre-resolved. *)
let charge (t : M.t) si c =
  let s = t.M.stats in
  s.Stats.cycles <- s.Stats.cycles + c;
  s.Stats.kind_cycles.(si) <- s.Stats.kind_cycles.(si) + c

(* Registers read by an instruction as a pre-resolved pair (at most two;
   -1 = none), replacing the per-retirement [Insn.reads] list. *)
let read_regs (insn : int Insn.t) =
  match Insn.reads insn with
  | [] -> (-1, -1)
  | [ r ] -> (r, -1)
  | [ r1; r2 ] -> (r1, r2)
  | _ -> assert false

(* Pre-resolved ALU evaluator (mirrors [Machine.alu_eval]). *)
let alu_fn (op : Insn.alu) =
  match op with
  | Insn.Add -> Word.add
  | Insn.Sub -> Word.sub
  | Insn.And -> Word.logand
  | Insn.Or -> Word.logor
  | Insn.Xor -> Word.logxor
  | Insn.Nor -> Word.lognor
  | Insn.Slt -> fun a b -> if Word.lt_signed a b then 1 else 0
  | Insn.Sltu -> fun a b -> if Word.lt_unsigned a b then 1 else 0
  | Insn.Sll -> Word.sll
  | Insn.Srl -> Word.srl
  | Insn.Sra -> Word.sra
  | Insn.Mul -> Word.mul
  | Insn.Div -> Word.div
  | Insn.Rem -> Word.rem

(* Pre-resolved branch-condition evaluator (mirrors
   [Machine.cond_eval]). *)
let cond_fn (c : Insn.cond) =
  match c with
  | Insn.Eq -> fun a b -> a = b
  | Insn.Ne -> fun a b -> a <> b
  | Insn.Lt -> fun a b -> Word.to_signed a < Word.to_signed b
  | Insn.Ge -> fun a b -> Word.to_signed a >= Word.to_signed b
  | Insn.Gt -> fun a b -> Word.to_signed a > Word.to_signed b
  | Insn.Le -> fun a b -> Word.to_signed a <= Word.to_signed b

(* --- Non-control bodies (mirror [Machine.exec_simple], without the pc
   advance, so the same closure serves both straight-line execution and
   delay slots). --- *)

let compile_simple (hw : M.hw) (e : Image.entry) : M.exec_fn =
  let insn = e.Image.insn in
  let si = Stats.slot e.Image.annot in
  let ki = Insn.klass_index (Insn.klass insn) in
  let r1, r2 = read_regs insn in
  let mem_bytes = hw.M.mem_bytes in
  let mem_mask = mem_bytes - 1 in
  (* Effective-address computation per memory mode (mirrors
     [Machine.effective]); returns -1 for a type trap. *)
  let effective_fn (mode : Insn.mem_mode) off =
    let offw = Word.of_int off in
    match mode with
    | Insn.Plain ->
        if e.Image.speculative then fun (_t : M.t) base ->
          let addr = Word.add base offw in
          if addr >= mem_bytes then addr land mem_mask else addr
        else fun (t : M.t) base ->
          let addr = Word.add base offw in
          if addr >= mem_bytes then
            M.errorf "unmasked address 0x%08x at pc %d" addr t.M.pc
          else addr
    | Insn.Tag_ignoring ->
        let amask = hw.M.addr_mask in
        fun _t base -> Word.add base offw land amask
    | Insn.Checked expected ->
        let shift = hw.M.tag_shift and width = hw.M.tag_width in
        let exp_shifted = expected lsl shift in
        fun _t base ->
          if Word.field ~shift ~width base <> expected then -1
          else Word.sub (Word.add base offw) exp_shifted land mem_mask
  in
  match insn with
  | Insn.Alu (op, rd, rs, rt) ->
      let cyc = M.alu_cycles op in
      let ev = alu_fn op in
      if op = Insn.Div || op = Insn.Rem then fun t ->
        interlock t r1 r2;
        count t ki;
        let b = t.M.regs.(rt) in
        if b = 0 then M.abort t M.err_div0
        else begin
          charge t si cyc;
          if rd <> Reg.zero then
            t.M.regs.(rd) <- Word.of_int (ev t.M.regs.(rs) b)
        end
      else fun t ->
        interlock t r1 r2;
        count t ki;
        charge t si cyc;
        if rd <> Reg.zero then
          t.M.regs.(rd) <- Word.of_int (ev t.M.regs.(rs) t.M.regs.(rt))
  | Insn.Alui (op, rd, rs, imm) ->
      if (op = Insn.Div || op = Insn.Rem) && imm = 0 then fun t ->
        interlock t r1 r2;
        count t ki;
        M.abort t M.err_div0
      else
        let cyc = M.alu_cycles op in
        let ev = alu_fn op in
        let immw = Word.of_int imm in
        fun t ->
          interlock t r1 r2;
          count t ki;
          charge t si cyc;
          if rd <> Reg.zero then
            t.M.regs.(rd) <- Word.of_int (ev t.M.regs.(rs) immw)
  | Insn.Li (rd, imm) ->
      let cyc = Word.imm_cycles imm in
      let v = Word.of_int imm in
      fun t ->
        interlock t r1 r2;
        count t ki;
        charge t si cyc;
        if rd <> Reg.zero then t.M.regs.(rd) <- v
  | Insn.La (rd, addr) ->
      let cyc = Word.imm_cycles addr in
      let v = Word.of_int addr in
      fun t ->
        interlock t r1 r2;
        count t ki;
        charge t si cyc;
        if rd <> Reg.zero then t.M.regs.(rd) <- v
  | Insn.Mv (rd, rs) ->
      fun t ->
        interlock t r1 r2;
        count t ki;
        charge t si 1;
        if rd <> Reg.zero then t.M.regs.(rd) <- t.M.regs.(rs)
  | Insn.Ld (mode, rd, rs, off) ->
      let eff = effective_fn mode off in
      fun t ->
        interlock t r1 r2;
        count t ki;
        charge t si 1;
        let addr = eff t t.M.regs.(rs) in
        if addr < 0 then M.abort t M.err_type
        else begin
          if rd <> Reg.zero then t.M.regs.(rd) <- M.read_word t addr
          else ignore (M.read_word t addr);
          t.M.pending_load <- rd
        end
  | Insn.St (mode, rs, rt, off) ->
      let eff = effective_fn mode off in
      fun t ->
        interlock t r1 r2;
        count t ki;
        charge t si 1;
        let addr = eff t t.M.regs.(rs) in
        if addr < 0 then M.abort t M.err_type
        else M.write_word t addr t.M.regs.(rt)
  | Insn.Add_gen (rd, rs, rt) | Insn.Sub_gen (rd, rs, rt) ->
      let is_add = match insn with Insn.Add_gen _ -> true | _ -> false in
      let garith_si =
        Stats.slot
          (Annot.make ~checking:e.Image.annot.Annot.checking Annot.Garith)
      in
      let overhead = hw.M.trap_overhead in
      let is_int = hw.M.is_int_item in
      let overflowed = hw.M.gen_overflowed in
      fun t ->
        interlock t r1 r2;
        count t ki;
        charge t si 1;
        let a = t.M.regs.(rs) and b = t.M.regs.(rt) in
        let result = if is_add then Word.add a b else Word.sub a b in
        let ok = is_int a && is_int b && not (overflowed a b result) in
        if ok then begin
          if rd <> Reg.zero then t.M.regs.(rd) <- result
        end
        else if t.M.in_slot then
          M.errorf "generic-arithmetic trap in a delay slot at pc %d" t.M.pc
        else
          let handler =
            if is_add then t.M.gen_add_handler else t.M.gen_sub_handler
          in
          if handler < 0 then M.abort t M.err_type
          else begin
            let s = t.M.stats in
            s.Stats.traps <- s.Stats.traps + 1;
            s.Stats.trap_cycles <- s.Stats.trap_cycles + overhead;
            charge t garith_si overhead;
            t.M.regs.(Reg.tr0) <- a;
            t.M.regs.(Reg.tr1) <- b;
            t.M.trap_dest <- rd;
            t.M.regs.(Reg.epc) <- t.M.pc + 1;
            t.M.pc <- handler - 1
            (* -1: the caller advances pc by one. *)
          end
  | Insn.Settd rs ->
      fun t ->
        interlock t r1 r2;
        count t ki;
        charge t si 1;
        M.set_reg t t.M.trap_dest t.M.regs.(rs)
  | Insn.Nop ->
      fun t ->
        interlock t r1 r2;
        count t ki;
        charge t si 1
  | Insn.B _ | Insn.Bi _ | Insn.Btag _ | Insn.J _ | Insn.Jal _ | Insn.Jr _
  | Insn.Jalr _ | Insn.Rett | Insn.Trap _ | Insn.Halt ->
      fun t -> M.errorf "control instruction in a delay slot at pc %d" t.M.pc

(* --- Step closures (mirror [Machine.step]).  Control instructions
   capture the [compile_simple] closures of their two delay slots. --- *)

let compile_step (hw : M.hw) (simple : M.exec_fn array) i (e : Image.entry) :
    M.exec_fn =
  let insn = e.Image.insn in
  let si = Stats.slot e.Image.annot in
  let ki = Insn.klass_index (Insn.klass insn) in
  let r1, r2 = read_regs insn in
  let n = Array.length simple in
  (* Mirrors [Machine.fetch] failing on a slot past the end of code. *)
  let slot j : M.exec_fn =
    if j < 0 || j >= n then fun _ -> M.errorf "pc out of range: %d" j
    else simple.(j)
  in
  let s1 = slot (i + 1) and s2 = slot (i + 2) in
  let exec_slots (t : M.t) =
    t.M.in_slot <- true;
    s1 t;
    if t.M.outcome = None then s2 t;
    t.M.in_slot <- false
  in
  let squash_slots (t : M.t) =
    let s = t.M.stats in
    s.Stats.squashed <- s.Stats.squashed + 2;
    s.Stats.cycles <- s.Stats.cycles + 2;
    s.Stats.kind_cycles.(si) <- s.Stats.kind_cycles.(si) + 2
  in
  let branch_to (t : M.t) ~taken ~squash target =
    interlock t r1 r2;
    count t ki;
    charge t si 1;
    if squash && not taken then squash_slots t else exec_slots t;
    if t.M.outcome = None then
      t.M.pc <- (if taken then target else t.M.pc + 3)
  in
  match insn with
  | Insn.B (b, target) ->
      let cmp = cond_fn b.Insn.cond in
      let rs = b.Insn.rs and rt = b.Insn.rt and squash = b.Insn.squash in
      fun t ->
        let taken = cmp t.M.regs.(rs) t.M.regs.(rt) in
        branch_to t ~taken ~squash target
  | Insn.Bi (b, target) ->
      let cmp = cond_fn b.Insn.bi_cond in
      let rs = b.Insn.bi_rs and squash = b.Insn.bi_squash in
      let immw = Word.of_int b.Insn.bi_imm in
      fun t ->
        let taken = cmp t.M.regs.(rs) immw in
        branch_to t ~taken ~squash target
  | Insn.Btag (b, target) ->
      let shift = hw.M.tag_shift and width = hw.M.tag_width in
      let rs = b.Insn.bt_rs and squash = b.Insn.bt_squash in
      let neg = b.Insn.bt_neg and tag = b.Insn.bt_tag in
      fun t ->
        let got = Word.field ~shift ~width t.M.regs.(rs) in
        let taken = if neg then got <> tag else got = tag in
        branch_to t ~taken ~squash target
  | Insn.J target -> fun t -> branch_to t ~taken:true ~squash:false target
  | Insn.Jal target ->
      fun t ->
        M.set_reg t Reg.ra (t.M.pc + 3);
        branch_to t ~taken:true ~squash:false target
  | Insn.Jr rs ->
      fun t ->
        let target = t.M.regs.(rs) in
        branch_to t ~taken:true ~squash:false target
  | Insn.Jalr rs ->
      fun t ->
        let target = t.M.regs.(rs) in
        M.set_reg t Reg.ra (t.M.pc + 3);
        branch_to t ~taken:true ~squash:false target
  | Insn.Rett ->
      fun t ->
        interlock t r1 r2;
        count t ki;
        charge t si 1;
        t.M.pc <- t.M.regs.(Reg.epc)
  | Insn.Trap code ->
      let abort_code = M.err_user_base + code in
      fun t ->
        interlock t r1 r2;
        count t ki;
        charge t si 1;
        M.abort t abort_code
  | Insn.Halt ->
      fun t ->
        count t ki;
        charge t si 1;
        t.M.outcome <- Some (M.Halted t.M.regs.(Reg.v0))
  | Insn.Alu _ | Insn.Alui _ | Insn.Li _ | Insn.La _ | Insn.Mv _ | Insn.Ld _
  | Insn.St _ | Insn.Add_gen _ | Insn.Sub_gen _ | Insn.Settd _ | Insn.Nop ->
      let body = simple.(i) in
      fun t ->
        body t;
        t.M.pc <- t.M.pc + 1

let compile (m : M.t) : M.exec_fn array =
  let hw = m.M.hw in
  let simple = Array.map (compile_simple hw) m.M.code in
  Array.mapi (fun i e -> compile_step hw simple i e) m.M.code

(** Compile the machine's code and install the closure array; idempotent.
    The closures capture the machine's hardware configuration, so they
    are attached to (and only valid for) machines sharing it.

    The staleness test must be on array {e lengths} only: [exec] starts
    out as the shared empty atom, and compiling an empty code image
    yields that same atom, so a structural [m.exec = [||]] guard is true
    for every empty-code machine even after a successful attach and
    recompiles it on every call.  A compiled array has the code's length
    by construction (physically distinct from the initial [[||]] exactly
    when the image is non-empty), so a length mismatch is the one
    condition under which compilation is actually missing. *)
let attach (m : M.t) =
  if Array.length m.M.exec <> Array.length m.M.code then m.M.exec <- compile m

(** Convenience: a machine created with the pre-decoded engine already
    attached. *)
let create ?fuel ~hw image =
  let m = M.create ?fuel ~engine:`Predecoded ~hw image in
  attach m;
  m
