(** The benchmark registry: the ten programs of the paper's Appendix,
    with per-program heap sizing and the paper's Table 1 figures for
    comparison in EXPERIMENTS.md. *)

module L = Tagsim_runtime.Layout

type paper_row = {
  p_arith : float; (* Table 1: checking-increase percentages *)
  p_vector : float;
  p_list : float;
  p_total : float;
}

type entry = {
  name : string;
  description : string;
  source : string;
  expected : string;
  sizes : L.sizes;
  paper : paper_row;
}

let default_sizes = { L.stack_bytes = 1 lsl 18; semi_bytes = 1 lsl 19 }

let entries : entry list ref = ref []
let register e = entries := e :: !entries

let () =
  register
    {
      name = "inter";
      description =
        "a simple interpreter for a subset of LISP; computes a Fibonacci \
         number and sorts a list";
      source = Inter.source;
      expected = Inter.expected;
      sizes = default_sizes;
      paper = { p_arith = 0.63; p_vector = 0.0; p_list = 19.04; p_total = 19.68 };
    };
  register
    {
      name = "deduce";
      description = "a deductive information retriever over an indexed database";
      source = Deduce.source;
      expected = Deduce.expected;
      sizes = default_sizes;
      paper = { p_arith = 0.09; p_vector = 0.0; p_list = 12.27; p_total = 12.36 };
    };
  register
    {
      name = "dedgc";
      description =
        "the same program as deduce, with a heap small enough that the \
         copying garbage collector runs continually";
      source = Deduce.source;
      expected = Deduce.expected;
      sizes = { L.stack_bytes = 1 lsl 18; semi_bytes = Deduce.dedgc_semi_bytes };
      paper = { p_arith = 0.04; p_vector = 0.0; p_list = 6.58; p_total = 6.62 };
    };
  register
    {
      name = "rat";
      description = "a rational function evaluator (after the PSL one)";
      source = Rat.source;
      expected = Rat.expected;
      sizes = default_sizes;
      paper = { p_arith = 4.85; p_vector = 0.0; p_list = 13.69; p_total = 18.54 };
    };
  register
    {
      name = "comp";
      description = "the first pass of the front end of a Lisp compiler";
      source = Comp.source;
      expected = Comp.expected;
      sizes = default_sizes;
      paper = { p_arith = 0.05; p_vector = 0.0; p_list = 10.34; p_total = 10.39 };
    };
  register
    {
      name = "opt";
      description = "the optimizer pass added to the compiler; uses lists and vectors";
      source = Opt.source;
      expected = Opt.expected;
      sizes = default_sizes;
      paper = { p_arith = 2.68; p_vector = 11.76; p_list = 27.99; p_total = 42.43 };
    };
  register
    {
      name = "frl";
      description = "a simple inventory system using the frame representation language";
      source = Frl.source;
      expected = Frl.expected;
      sizes = default_sizes;
      paper = { p_arith = 0.45; p_vector = 0.0; p_list = 9.72; p_total = 10.17 };
    };
  register
    {
      name = "boyer";
      description = "a rewrite-rule-based simplifier with a dumb tautology checker";
      source = Boyer.source;
      expected = Boyer.expected;
      sizes = default_sizes;
      paper = { p_arith = 0.0; p_vector = 0.0; p_list = 17.50; p_total = 17.50 };
    };
  register
    {
      name = "brow";
      description = "a short version of the browse benchmark: an AI-like database of units";
      source = Brow.source;
      expected = Brow.expected;
      sizes = default_sizes;
      paper = { p_arith = 0.03; p_vector = 0.0; p_list = 19.91; p_total = 19.94 };
    };
  register
    {
      name = "trav";
      description =
        "a short version of the traverse benchmark: builds and traverses a \
         tree of structures implemented as vectors";
      source = Trav.source;
      expected = Trav.expected;
      sizes = default_sizes;
      paper = { p_arith = 3.09; p_vector = 71.96; p_list = 13.19; p_total = 88.25 };
    }

let all () = List.rev !entries

let find name =
  match List.find_opt (fun e -> e.name = name) (all ()) with
  | Some e -> e
  | None -> invalid_arg ("unknown benchmark: " ^ name)

(* Content identity of an entry for the persistent measurement cache:
   everything that feeds a measurement besides the scheme/support/sched
   configuration — the source text, the heap sizing (dedgc differs from
   deduce only here) and the expected value the run is validated
   against.  Deliberately excludes [name] and [description]: renaming or
   re-describing a benchmark does not invalidate its measurements. *)
let fingerprint (e : entry) =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            e.source;
            e.expected;
            string_of_int e.sizes.L.stack_bytes;
            string_of_int e.sizes.L.semi_bytes;
          ]))

let names () = List.map (fun e -> e.name) (all ())
