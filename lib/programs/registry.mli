(** The benchmark registry: the ten programs of the paper's Appendix,
    with per-program heap sizing and the paper's Table 1 figures for
    comparison in EXPERIMENTS.md. *)

module L := Tagsim_runtime.Layout

(** Table 1 percentages from the paper, for side-by-side reporting. *)
type paper_row = {
  p_arith : float;
  p_vector : float;
  p_list : float;
  p_total : float;
}

type entry = {
  name : string;
  description : string;
  source : string;
  expected : string; (* printed form of the program's result *)
  sizes : L.sizes;
  paper : paper_row;
}

val default_sizes : L.sizes
val all : unit -> entry list

(** Raises [Invalid_argument] for an unknown name. *)
val find : string -> entry

val names : unit -> string list

(** Content identity of an entry for the persistent measurement cache:
    hex digest over source, expected value and heap sizing (name and
    description excluded). *)
val fingerprint : entry -> string
