type counterexample = {
  cx_index : int;
  cx_seed : int;
  cx_source : string;
  cx_shrunk : string;
  cx_nodes : int;
  cx_detail : string;
}

type report = {
  r_generated : int;
  r_skipped : int;
  r_counterexamples : counterexample list;
}

let campaign ?check ?(log = fun _ -> ()) ?(shrink = true)
    ?(shrink_budget = 2000) ~(matrix : Cross.matrix) ~seed ~count ~max_size ()
    : report =
  let check_prog, narrow_check =
    match check with
    | Some f -> (f, fun (_ : Cross.divergence) -> f)
    | None ->
        ( (fun prog -> Cross.check matrix (Gen.render prog)),
          fun d ->
            let m = Cross.narrow matrix d in
            fun prog -> Cross.check m (Gen.render prog) )
  in
  let rng = Rng.create seed in
  let skipped = ref 0 in
  let cexs = ref [] in
  for index = 0 to count - 1 do
    let prog = Gen.program rng ~max_size in
    match check_prog prog with
    | Cross.Agree -> ()
    | Cross.Rejected ->
        (* generator overran a compiler limit — consistently, in every
           configuration; counted so a quiet campaign is
           distinguishable from one that never ran anything *)
        incr skipped
    | Cross.Diverge d ->
        log
          (Fmt.str "program %d DIVERGES (%d nodes): %s" index
             (Gen.size prog) d.Cross.d_detail);
        let reproduces = narrow_check d in
        let still p =
          match reproduces p with
          | Cross.Agree | Cross.Rejected -> false
          | Cross.Diverge _ -> true
        in
        let shrunk =
          if shrink && still prog then
            Shrink.minimize ~check:still ~max_attempts:shrink_budget prog
          else prog
        in
        log
          (Fmt.str "  shrunk to %d nodes: %s" (Gen.size shrunk)
             (Gen.render shrunk));
        cexs :=
          {
            cx_index = index;
            cx_seed = seed;
            cx_source = Gen.render prog;
            cx_shrunk = Gen.render shrunk;
            cx_nodes = Gen.size shrunk;
            cx_detail = d.Cross.d_detail;
          }
          :: !cexs
  done;
  { r_generated = count; r_skipped = !skipped; r_counterexamples = List.rev !cexs }
