(** Seeded, size-bounded random program generator for the supported Lisp
    subset.

    Programs are generated as s-expression trees (so the shrinker can
    work structurally) and rendered to source with {!render}.  Every
    generated program terminates by construction — loops are counted
    down, recursive helpers recurse on strictly smaller arguments — so a
    machine timeout under the fuzzing fuel is always a divergence
    candidate, never an expected outcome.  Coverage, by design:

    - nested [let]s, locals spilling into register locals and stack
      slots, global value cells;
    - generic arithmetic with constants near the narrowest scheme's
      integer boundary (high6: 26 bits), so add/sub overflow into
      boxnums and multiply overflow traps are exercised;
    - list construction and traversal, vectors with occasionally
      out-of-range indices, boxes, property lists;
    - calls through the prelude, user helpers, recursion deep enough to
      force collections in the fuzzer's deliberately small semispace,
      and [funcall] through symbol function cells;
    - error-trapping programs: car/cdr of atoms, division by a value
      that can be zero, [error] calls behind conditions. *)

type program = Tagsim_lisp.Sexp.t list

(** Generate one program.  [max_size] bounds the node count of the
    generated main body (helpers add a bounded constant on top); the
    same [Rng.t] state always yields the same program. *)
val program : Rng.t -> max_size:int -> program

(** Render to compilable source, one toplevel form per line. *)
val render : program -> string

(** Total node count (atoms + list nodes) — the size the shrinker
    minimizes. *)
val size : program -> int

(** The heap/stack sizing every fuzzed configuration runs under: a small
    semispace so list churn forces real collections. *)
val sizes : Tagsim_runtime.Layout.sizes
