(** Delta-debugging shrinker: minimize a counterexample program while a
    reproduction predicate keeps holding.

    Works structurally on the s-expression forms: drop whole
    definitions, hoist a subtree's child over the subtree, delete list
    elements, and collapse atoms toward [0]/[nil].  Candidates that no
    longer reproduce (including ones the compiler now rejects — the
    predicate sees a non-divergent program) are simply discarded, so no
    grammar knowledge is needed here.  Greedy first-improvement passes
    repeat until a fixpoint or the attempt budget runs out. *)

(** [minimize ~check prog] with [check] returning [true] while the
    candidate still reproduces.  [check prog] itself must hold on
    entry.  [max_attempts] bounds total predicate evaluations
    (default 2000). *)
val minimize :
  check:(Gen.program -> bool) ->
  ?max_attempts:int ->
  Gen.program ->
  Gen.program
