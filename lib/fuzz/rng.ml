type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64: one 64-bit draw per call. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L
let choose t l = List.nth l (int t (List.length l))

let weighted t pairs =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 pairs in
  let rec pick n = function
    | [] -> invalid_arg "Rng.weighted: empty"
    | (w, v) :: rest -> if n < w then v else pick (n - w) rest
  in
  pick (int t total) pairs
