module Sexp = Tagsim_lisp.Sexp
module L = Tagsim_runtime.Layout

type program = Sexp.t list

let sizes = { L.stack_bytes = 1 lsl 17; L.semi_bytes = 1 lsl 14 }

let rec size_of = function
  | Sexp.Int _ | Sexp.Sym _ -> 1
  | Sexp.List l -> 1 + List.fold_left (fun acc s -> acc + size_of s) 0 l

let size prog = List.fold_left (fun acc s -> acc + size_of s) 0 prog
let render prog = String.concat "\n" (List.map Sexp.to_string prog)

(* --- generation --- *)

type rty = TInt | TList | TAny

(* Constants near the narrowest scheme's integer boundary (high6:
   26 usable bits, so +/- 2^25).  Larger literals would fail to encode
   under high6 at compile time; these are in range everywhere but push
   add/sub over the edge into boxnum allocation (and multiply into the
   arithmetic trap) on the narrow schemes first. *)
let boundary_ints =
  [ 33554431; 33554430; 33554429; -33554432; -33554431; 16777216; 8388607 ]

let symbols = [ "a"; "b"; "c"; "k1"; "k2"; "probe" ]

type helper = { h_name : string; h_arity : int; h_ret : rty }

type ctx = {
  rng : Rng.t;
  mutable budget : int; (* remaining node allowance *)
  mutable vars : (string * rty) list; (* lexical scope, innermost first *)
  helpers : helper list;
}

let spend ctx n = ctx.budget <- ctx.budget - n
let sym s = Sexp.Sym s
let num n = Sexp.Int n
let app head args = Sexp.List (sym head :: args)
let quote s = Sexp.List [ sym "quote"; s ]

let pick_var ctx ty =
  let cands =
    List.filter (fun (_, t) -> t = ty || t = TAny) ctx.vars
  in
  match cands with
  | [] -> None
  | l -> Some (fst (List.nth l (Rng.int ctx.rng (List.length l))))

let int_const ctx =
  spend ctx 1;
  Rng.weighted ctx.rng
    [
      (6, `Small);
      (2, `Boundary);
      (1, `Medium);
    ]
  |> function
  | `Small -> num (Rng.range ctx.rng (-40) 40)
  | `Boundary -> num (Rng.choose ctx.rng boundary_ints)
  | `Medium -> num (Rng.range ctx.rng (-5000) 5000)

let rec quoted_list ctx depth =
  let n = Rng.int ctx.rng 4 in
  spend ctx (n + 1);
  Sexp.List
    (List.init n (fun _ ->
         match Rng.int ctx.rng 4 with
         | 0 when depth > 0 -> quoted_list ctx (depth - 1)
         | 1 -> sym (Rng.choose ctx.rng symbols)
         | _ -> num (Rng.range ctx.rng (-9) 99)))

let leaf ctx ty =
  match ty with
  | TInt -> (
      match pick_var ctx TInt with
      | Some v when Rng.int ctx.rng 3 < 2 ->
          spend ctx 1;
          sym v
      | _ -> int_const ctx)
  | TList -> (
      match (Rng.int ctx.rng 4, pick_var ctx TList) with
      | 0, Some v | 1, Some v ->
          spend ctx 1;
          sym v
      | 2, _ ->
          spend ctx 1;
          sym "nil"
      | _ -> quote (quoted_list ctx 1))
  | TAny -> (
      match Rng.int ctx.rng 5 with
      | 0 ->
          spend ctx 2;
          quote (sym (Rng.choose ctx.rng symbols))
      | 1 ->
          spend ctx 1;
          sym (if Rng.bool ctx.rng then "t" else "nil")
      | 2 -> (
          match pick_var ctx TAny with
          | Some v ->
              spend ctx 1;
              sym v
          | None -> int_const ctx)
      | _ -> int_const ctx)

let pick_helper ctx ret =
  let cands = List.filter (fun h -> h.h_ret = ret) ctx.helpers in
  match cands with
  | [] -> None
  | l -> Some (List.nth l (Rng.int ctx.rng (List.length l)))

(* [depth] bounds expression nesting: the compiler evaluates into a
   nine-temporary stack and rejects expressions that overrun it, so the
   generator stays safely below (nesting <= 4, call arity <= 3). *)
let rec expr ctx ty depth =
  if depth <= 0 || ctx.budget <= 0 then leaf ctx ty
  else
    match ty with
    | TInt -> int_expr ctx depth
    | TList -> list_expr ctx depth
    | TAny ->
        expr ctx (if Rng.bool ctx.rng then TInt else TList) depth

and int_expr ctx depth =
  spend ctx 1;
  match Rng.int ctx.rng 16 with
  | 0 | 1 -> leaf ctx TInt
  | 2 ->
      app
        (Rng.choose ctx.rng [ "+"; "-"; "min"; "max" ])
        [ expr ctx TInt (depth - 1); expr ctx TInt (depth - 1) ]
  | 3 ->
      (* keep one factor small so products overflow only via the
         boundary constants *)
      app "*" [ num (Rng.range ctx.rng (-9) 9); expr ctx TInt (depth - 1) ]
  | 4 ->
      app
        (Rng.choose ctx.rng [ "quotient"; "remainder" ])
        [ expr ctx TInt (depth - 1); expr ctx TInt (depth - 1) ]
  | 5 ->
      app
        (Rng.choose ctx.rng [ "land"; "lor"; "lxor" ])
        [ expr ctx TInt (depth - 1); expr ctx TInt (depth - 1) ]
  | 6 -> app "length" [ expr ctx TList (depth - 1) ]
  | 7 ->
      app "if"
        [ test ctx (depth - 1); expr ctx TInt (depth - 1);
          expr ctx TInt (depth - 1) ]
  | 8 ->
      (* possibly a run-time type error: car of a maybe-empty list *)
      app (Rng.choose ctx.rng [ "car"; "cadr" ]) [ expr ctx TList (depth - 1) ]
  | 9 -> (
      match pick_helper ctx TInt with
      | Some h ->
          app h.h_name
            (List.init h.h_arity (fun _ -> expr ctx TInt (depth - 1)))
      | None -> app "abs" [ expr ctx TInt (depth - 1) ])
  | 10 ->
      (* funcall through a symbol's function cell *)
      let target =
        match pick_helper ctx TInt with
        | Some h when h.h_arity = 1 -> h.h_name
        | _ -> "abs"
      in
      app "funcall" [ quote (sym target); expr ctx TInt (depth - 1) ]
  | 11 -> app (Rng.choose ctx.rng [ "add1"; "sub1"; "abs" ]) [ expr ctx TInt (depth - 1) ]
  | 12 ->
      app "unbox" [ app "makebox" [ expr ctx TInt (depth - 1) ] ]
  | 13 ->
      (* generic arithmetic over a boxed operand: result is boxed, so
         unbox it back into the int world *)
      app "unbox"
        [
          app
            (Rng.choose ctx.rng [ "+"; "-" ])
            [ app "makebox" [ expr ctx TInt (depth - 1) ];
              expr ctx TInt (depth - 1) ];
        ]
  | 14 -> (
      match pick_var ctx TInt with
      | Some v -> app "setq" [ sym v; expr ctx TInt (depth - 1) ]
      | None -> leaf ctx TInt)
  | _ -> leaf ctx TInt

and list_expr ctx depth =
  spend ctx 1;
  match Rng.int ctx.rng 12 with
  | 0 | 1 -> leaf ctx TList
  | 2 ->
      app "cons" [ expr ctx TAny (depth - 1); expr ctx TList (depth - 1) ]
  | 3 ->
      app "append" [ expr ctx TList (depth - 1); expr ctx TList (depth - 1) ]
  | 4 ->
      app (Rng.choose ctx.rng [ "reverse"; "cdr"; "copy"; "last" ])
        [ expr ctx TList (depth - 1) ]
  | 5 ->
      app
        (Rng.choose ctx.rng [ "memq"; "delq"; "member" ])
        [
          (spend ctx 2;
           quote (sym (Rng.choose ctx.rng symbols)));
          expr ctx TList (depth - 1);
        ]
  | 6 ->
      app "if"
        [ test ctx (depth - 1); expr ctx TList (depth - 1);
          expr ctx TList (depth - 1) ]
  | 7 ->
      app "list"
        (List.init
           (1 + Rng.int ctx.rng 3)
           (fun _ -> expr ctx TAny (depth - 1)))
  | 8 -> (
      match pick_helper ctx TList with
      | Some h ->
          app h.h_name
            (List.init h.h_arity (fun _ ->
                 (* builders take a small positive count *)
                 app "abs" [ app "remainder" [ expr ctx TInt (depth - 1); num 40 ] ]))
      | None -> leaf ctx TList)
  | 9 -> (
      match pick_helper ctx TInt with
      | Some h when h.h_arity = 1 ->
          app "mapcar" [ quote (sym h.h_name); expr ctx TList (depth - 1) ]
      | _ -> app "reverse" [ expr ctx TList (depth - 1) ])
  | 10 ->
      app (Rng.choose ctx.rng [ "assq"; "assoc" ])
        [
          (spend ctx 2;
           quote (sym (Rng.choose ctx.rng symbols)));
          expr ctx TList (depth - 1);
        ]
  | _ -> leaf ctx TList

and test ctx depth =
  spend ctx 1;
  if depth <= 0 then sym (if Rng.bool ctx.rng then "t" else "nil")
  else
    match Rng.int ctx.rng 9 with
    | 0 -> app "pairp" [ expr ctx TList (depth - 1) ]
    | 1 -> app "null" [ expr ctx TList (depth - 1) ]
    | 2 ->
        app
          (Rng.choose ctx.rng [ "lessp"; "greaterp"; "leq"; "geq"; "eqn" ])
          [ expr ctx TInt (depth - 1); expr ctx TInt (depth - 1) ]
    | 3 -> app "eq" [ expr ctx TAny (depth - 1); expr ctx TAny (depth - 1) ]
    | 4 ->
        app
          (Rng.choose ctx.rng [ "atom"; "numberp"; "symbolp"; "boxp" ])
          [ expr ctx TAny (depth - 1) ]
    | 5 -> app "equal" [ expr ctx TList (depth - 1); expr ctx TList (depth - 1) ]
    | 6 -> app (Rng.choose ctx.rng [ "zerop"; "minusp"; "onep" ]) [ expr ctx TInt (depth - 1) ]
    | 7 ->
        app
          (Rng.choose ctx.rng [ "and"; "or" ])
          [ test ctx (depth - 1); test ctx (depth - 1) ]
    | _ -> app "not" [ test ctx (depth - 1) ]

(* --- statements (side effects inside bodies) --- *)

let fresh_name prefix n = Printf.sprintf "%s%d" prefix n

let statement ctx n =
  spend ctx 2;
  match Rng.int ctx.rng 10 with
  | 0 -> (
      match pick_var ctx TInt with
      | Some v -> app "setq" [ sym v; expr ctx TInt 2 ]
      | None -> app "setq" [ sym "gint"; expr ctx TInt 2 ])
  | 1 -> (
      match pick_var ctx TList with
      | Some v -> app "setq" [ sym v; expr ctx TList 2 ]
      | None -> app "setq" [ sym "glist"; expr ctx TList 2 ])
  | 2 ->
      (* global value cell of an otherwise unbound symbol *)
      app "setq" [ sym "gany"; expr ctx TAny 2 ]
  | 3 ->
      app "put"
        [
          quote (sym "probe"); quote (sym (Rng.choose ctx.rng symbols));
          expr ctx TAny 2;
        ]
  | 4 -> (
      match pick_var ctx TList with
      | Some v -> app "push" [ expr ctx TAny 2; sym v ]
      | None -> app "setq" [ sym "glist"; expr ctx TList 2 ])
  | 5 ->
      (* bounded churn: allocate then mostly discard, forcing the small
         semispace through real collections *)
      let i = fresh_name "i" n in
      app "dotimes"
        [
          Sexp.List [ sym i; num (Rng.range ctx.rng 4 120) ];
          app "setq" [ sym "gscratch"; app "cons" [ sym i; app "if" [ app "greaterp" [ sym i; num (Rng.range ctx.rng 2 40) ]; sym "nil"; sym "gscratch" ] ] ];
        ]
  | 6 ->
      (* counted-down while loop; terminating by construction *)
      let w = fresh_name "w" n in
      Sexp.List
        [
          sym "let";
          Sexp.List [ Sexp.List [ sym w; num (Rng.range ctx.rng 1 30) ] ];
          app "while"
            [
              app "greaterp" [ sym w; num 0 ];
              app "setq" [ sym "gint"; app "+" [ expr ctx TInt 1; app "remainder" [ sym "gint"; num 9973 ] ] ];
              app "setq" [ sym w; app "-" [ sym w; num 1 ] ];
            ];
        ]
  | 7 -> (
      (* vectors: store through a maybe-out-of-range index *)
      match pick_var ctx TInt with
      | Some v ->
          app "putv"
            [ sym "gvec"; app "remainder" [ app "abs" [ sym v ]; num 7 ]; expr ctx TAny 2 ]
      | None -> app "putv" [ sym "gvec"; num (Rng.int ctx.rng 8); expr ctx TAny 2 ])
  | 8 ->
      (* explicit collection request *)
      app "progn" [ app "reclaim" []; app "setq" [ sym "gint"; expr ctx TInt 2 ] ]
  | _ -> (
      match pick_var ctx TInt with
      | Some v -> app (Rng.choose ctx.rng [ "incf"; "decf" ]) [ sym v ]
      | None -> app "setq" [ sym "gint"; expr ctx TInt 2 ])

(* --- helper definitions --- *)

let helper_def ctx (h : helper) : Sexp.t =
  let params = List.init h.h_arity (fun i -> fresh_name "p" i) in
  let saved = ctx.vars in
  ctx.vars <- List.map (fun p -> (p, if h.h_ret = TList && h.h_arity = 1 then TInt else TInt)) params;
  let body =
    match (h.h_ret, h.h_arity) with
    | TList, 1 ->
        (* recursive list builder on a strictly decreasing counter *)
        app "if"
          [
            app "greaterp" [ sym "p0"; num 0 ];
            app "cons"
              [ expr ctx TAny 1; app h.h_name [ app "-" [ sym "p0"; num 1 ] ] ];
            sym "nil";
          ]
    | TInt, 1 when Rng.bool ctx.rng ->
        (* recursive countdown sum *)
        app "if"
          [
            app "greaterp" [ sym "p0"; num 0 ];
            app "+"
              [ expr ctx TInt 1; app h.h_name [ app "-" [ sym "p0"; num 1 ] ] ];
            expr ctx TInt 1;
          ]
    | TInt, _ when Rng.int ctx.rng 4 = 0 ->
        (* conditional trapper *)
        app "if"
          [
            app "lessp" [ sym "p0"; num (Rng.range ctx.rng (-20) 0) ];
            app "error" [];
            expr ctx TInt 2;
          ]
    | _ -> expr ctx TInt 2
  in
  ctx.vars <- saved;
  Sexp.List
    [ sym "de"; sym h.h_name; Sexp.List (List.map (fun p -> sym p) params); body ]

(* Deep recursion: a builder invocation with a count high enough to
   recurse a few hundred frames and populate the small heap. *)
let deep_call ctx =
  match pick_helper ctx TList with
  | Some h when h.h_arity = 1 ->
      Some (app "length" [ app h.h_name [ num (Rng.range ctx.rng 120 260) ] ])
  | _ -> None

let program rng ~max_size =
  let n_helpers = Rng.int rng 3 in
  let helpers =
    List.init n_helpers (fun i ->
        {
          h_name = fresh_name "h" i;
          h_arity = 1 + Rng.int rng 2;
          h_ret = (if Rng.int rng 3 = 0 then TList else TInt);
        })
  in
  let ctx = { rng; budget = max_size; vars = []; helpers } in
  let defs = List.map (fun h -> helper_def ctx h) helpers in
  (* main: two nested lets, a statement run, a composite return value *)
  ctx.budget <- max_size;
  let bind ty name = Sexp.List [ sym name; expr ctx ty 2 ] in
  let outer =
    [ bind TInt "gi"; bind TList "gl" ]
  in
  ctx.vars <- [ ("gi", TInt); ("gl", TList) ];
  let inner = [ bind TInt "li"; Sexp.List [ sym "lv"; app "mkvect" [ num (1 + Rng.int rng 6) ] ] ] in
  ctx.vars <- ("li", TInt) :: ctx.vars;
  let n_stmts = 1 + Rng.int rng 3 in
  let stmts = List.init n_stmts (fun n -> statement ctx n) in
  let deep =
    if Rng.int rng 3 = 0 then
      match deep_call ctx with
      | Some c -> [ app "setq" [ sym "gint"; c ] ]
      | None -> []
    else []
  in
  let ret =
    match Rng.int rng 5 with
    | 0 -> app "list" [ sym "gi"; sym "li"; app "get" [ quote (sym "probe"); quote (sym (Rng.choose rng symbols)) ] ]
    | 1 -> app "append" [ sym "gl"; app "list" [ sym "li"; sym "gi" ] ]
    | 2 -> app "cons" [ sym "gint"; expr ctx TList 2 ]
    | 3 -> app "+" [ sym "gi"; app "if" [ app "numberp" [ sym "gany" ]; sym "gany"; sym "li" ] ]
    | _ -> expr ctx TAny 3
  in
  let setup =
    [
      app "setq" [ sym "gvec"; app "mkvect" [ num (2 + Rng.int rng 5) ] ];
      app "setq" [ sym "gint"; num (Rng.int rng 100) ];
    ]
  in
  let main =
    Sexp.List
      [
        sym "de"; sym "main"; Sexp.List [];
        Sexp.List
          (sym "let" :: Sexp.List outer
          :: (setup
             @ [
                 Sexp.List
                   ((sym "let" :: Sexp.List inner :: stmts) @ deep @ [ ret ]);
               ]));
      ]
  in
  defs @ [ main ]
