(** The fuzzing campaign driver: generate [count] programs from [seed],
    check each over the matrix, and delta-debug any counterexample down
    to a small reproducer.

    Reproducibility contract: the same [seed], [count] and [max_size]
    yield the same program sequence and the same verdicts (the
    generator consumes a private splitmix64 stream; checking consumes
    none of it). *)

type counterexample = {
  cx_index : int;  (** which generated program (0-based) *)
  cx_seed : int;
  cx_source : string;  (** as generated *)
  cx_shrunk : string;  (** after delta debugging *)
  cx_nodes : int;  (** node count of the shrunk program *)
  cx_detail : string;  (** the (original) divergence *)
}

type report = {
  r_generated : int;
  r_skipped : int;
      (** programs every configuration refused to compile *)
  r_counterexamples : counterexample list;
}

(** Run a campaign.  [check] defaults to {!Cross.check} over [matrix]
    and is injectable so the driver/shrinker pipeline can be tested
    against a synthetic divergence without breaking a real engine.
    [log] receives one line per event (program verdicts, shrink
    results).  [shrink_budget] bounds predicate evaluations per
    counterexample. *)
val campaign :
  ?check:(Gen.program -> Cross.verdict) ->
  ?log:(string -> unit) ->
  ?shrink:bool ->
  ?shrink_budget:int ->
  matrix:Cross.matrix ->
  seed:int ->
  count:int ->
  max_size:int ->
  unit ->
  report
