(** A self-contained splitmix64 pseudo-random stream.

    The fuzzer's reproducibility contract ([--seed S] replays the exact
    program sequence) must not depend on the OCaml stdlib's [Random]
    implementation, which is free to change between compiler releases;
    this fixes the algorithm to the well-known splitmix64 finalizer so a
    seed printed by CI replays on any toolchain. *)

type t

val create : int -> t

(** Uniform-ish integer in [0, bound); raises [Invalid_argument] when
    [bound <= 0].  (The modulo bias over a 62-bit draw is irrelevant at
    fuzzing bounds.) *)
val int : t -> int -> int

(** Integer in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

val bool : t -> bool

(** Pick a list element; raises on an empty list. *)
val choose : t -> 'a list -> 'a

(** Pick by relative weight from [(weight, value)] pairs. *)
val weighted : t -> (int * 'a) list -> 'a
