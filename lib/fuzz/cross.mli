(** The cross-configuration differential oracle.

    One generated program is compiled and run over a configuration
    matrix — engines x backends x optimization levels over a sample of
    scheme/support pairs — and every observation the harness's cost
    model depends on is compared:

    - both backends must produce byte-identical images at [`None]
      ({!Tagsim_asm.Image.equal}), and must agree on whether the
      program compiles at all;
    - all four engines must produce the same outcome, bit-identical
      {!Tagsim_sim.Stats} and identical GC counters on the same image;
    - [`Checks] must preserve the observable outcome (value or trap)
      whenever run-time checking is on;
    - under full checking, the machine outcome must agree with the
      frozen host reference interpreter ({!Tagsim_compiler.Oracle}). *)

module Scheme := Tagsim_tags.Scheme
module Support := Tagsim_tags.Support
module Machine := Tagsim_sim.Machine
module Program := Tagsim_compiler.Program

type matrix = {
  m_name : string;
  m_pairs : (Scheme.t * Support.t) list;
  m_engines : Machine.engine list;
  m_backends : Program.backend list;
  m_opts : Program.opt list;
}

(** One scheme/support pair (high5, software + full checking), all four
    engines, both backends, both opt levels: the [dune runtest] smoke
    matrix. *)
val smoke : matrix

(** All four schemes x a support sample (software and full checking,
    plus hardware rows under checking), all engines, backends and opt
    levels: the CI fuzz matrix. *)
val full : matrix

val by_name : string -> matrix option
val matrix_names : string list

(** What one configuration observed. *)
type outcome =
  | Value of string  (** printed result *)
  | Abort of string  (** trapped; the abort message *)
  | Fault of string
      (** wild memory fault (e.g. stack overrun): compared exactly
          between engines on the same image, but exempt from cross-image
          comparisons — the message embeds a layout-dependent pc *)
  | Timeout  (** ran out of the fuzzing fuel *)
  | Compile_error of string

val outcome_to_string : outcome -> string

type divergence = {
  d_scheme : Scheme.t;
  d_support : Support.t;
  d_detail : string;  (** which configs disagreed, and on what *)
}

type verdict =
  | Agree
  | Rejected
      (** every configuration refused to compile (generator overran a
          compiler limit); consistently, so not a divergence *)
  | Diverge of divergence

(** Check one program (full source text) over the matrix.  Never raises
    on program behavior: compile failures, traps and fuel exhaustion are
    outcomes.  [fuel] is the per-run cycle budget (generated programs
    terminate by construction, so the default is generous). *)
val check : ?fuel:int -> matrix -> string -> verdict

(** [check] restricted to the scheme/support pair a divergence named:
    the shrinker's fast reproduction predicate. *)
val narrow : matrix -> divergence -> matrix
