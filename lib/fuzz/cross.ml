module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module Machine = Tagsim_sim.Machine
module Stats = Tagsim_sim.Stats
module Image = Tagsim_asm.Image
module Program = Tagsim_compiler.Program
module Codegen = Tagsim_compiler.Codegen
module Oracle = Tagsim_compiler.Oracle
module Expand = Tagsim_lisp.Expand
module Sexp = Tagsim_lisp.Sexp

type matrix = {
  m_name : string;
  m_pairs : (Scheme.t * Support.t) list;
  m_engines : Machine.engine list;
  m_backends : Program.backend list;
  m_opts : Program.opt list;
}

let chk = Support.with_checking Support.software

let smoke =
  {
    m_name = "smoke";
    m_pairs = [ (Scheme.high5, chk) ];
    m_engines = Machine.engine_all;
    m_backends = [ `Monolithic; `Incremental ];
    m_opts = [ `None; `Checks ];
  }

let full =
  {
    m_name = "full";
    m_pairs =
      List.concat_map
        (fun scheme -> [ (scheme, Support.software); (scheme, chk) ])
        Scheme.all
      @ [
          (Scheme.high5, Support.with_checking Support.row2);
          (Scheme.high5, Support.with_checking Support.row4);
          (Scheme.low2, Support.with_checking Support.row7);
          (Scheme.high6, Support.with_checking Support.spur);
        ];
    m_engines = Machine.engine_all;
    m_backends = [ `Monolithic; `Incremental ];
    m_opts = [ `None; `Checks ];
  }

let matrix_names = [ "smoke"; "full" ]

let by_name = function
  | "smoke" -> Some smoke
  | "full" -> Some full
  | _ -> None

type outcome =
  | Value of string
  | Abort of string
  | Fault of string
  | Timeout
  | Compile_error of string

let outcome_to_string = function
  | Value v -> "value " ^ v
  | Abort m -> "abort: " ^ m
  | Fault m -> "machine fault: " ^ m
  | Timeout -> "timeout (out of fuel)"
  | Compile_error m -> "compile error: " ^ m

type divergence = {
  d_scheme : Scheme.t;
  d_support : Support.t;
  d_detail : string;
}

type verdict = Agree | Rejected | Diverge of divergence

let narrow m (d : divergence) =
  {
    m with
    m_name = m.m_name ^ "/narrowed";
    m_pairs = [ (d.d_scheme, d.d_support) ];
  }

(* One engine run: outcome plus the raw statistics and GC counters.
   Fuel exhaustion and memory faults are outcomes, not failures — all
   engines execute the same image cycle for cycle, so they must agree
   even on those. *)
type run = {
  r_outcome : outcome;
  r_stats : Stats.t option;
  r_gc : (int * int) option;
}

let compile ~backend ~opt ~scheme ~support source =
  match
    Program.compile ~backend ~opt ~sizes:Gen.sizes ~scheme ~support source
  with
  | p -> Ok p
  | exception Program.Error m -> Error m
  | exception Codegen.Error m -> Error m
  | exception Expand.Error m -> Error m
  | exception Sexp.Parse_error m -> Error m
  | exception Invalid_argument m -> Error ("invalid: " ^ m)

let run_engine ~fuel ~engine p =
  match Program.run ~fuel ~engine p with
  | { Program.abort = Some msg; stats; gc_collections; gc_bytes_copied; _ } ->
      {
        r_outcome = Abort msg;
        r_stats = Some stats;
        r_gc = Some (gc_collections, gc_bytes_copied);
      }
  | { Program.value = Some v; stats; gc_collections; gc_bytes_copied; _ } ->
      {
        r_outcome = Value (Program.hval_to_string v);
        r_stats = Some stats;
        r_gc = Some (gc_collections, gc_bytes_copied);
      }
  | _ -> { r_outcome = Abort "no value"; r_stats = None; r_gc = None }
  | exception Machine.Out_of_fuel ->
      { r_outcome = Timeout; r_stats = None; r_gc = None }
  | exception Machine.Machine_error m ->
      (* a wild memory fault, as opposed to a checked [Abort]: its
         message embeds the faulting pc, which is layout-dependent, so
         faults are only comparable between runs of the same image *)
      { r_outcome = Fault m; r_stats = None; r_gc = None }
  | exception Invalid_argument m ->
      (* an unchecked run can terminate normally with a garbage word in
         the result register; the host-side value decoder rejects it *)
      { r_outcome = Fault ("undecodable result: " ^ m); r_stats = None; r_gc = None }

let outcome_equal a b =
  match (a, b) with
  | Value x, Value y -> x = y
  | Abort x, Abort y -> x = y
  | Fault x, Fault y -> x = y
  | Timeout, Timeout -> true
  (* compile errors compare by acceptance, not message: the two
     backends word their depth rejections differently *)
  | Compile_error _, Compile_error _ -> true
  | _ -> false

let config_name ~scheme ~support ~opt extra =
  Fmt.str "%s/%s/%s%s" scheme.Scheme.name (Support.describe support)
    (match opt with `None -> "opt:none" | `Checks -> "opt:checks")
    extra

(* Check one (scheme, support) cell; returns the first divergence and
   whether any configuration actually ran the program. *)
let check_cell ~fuel m ~scheme ~support source : string option * bool =
  let diverged = ref None in
  let fail fmt = Fmt.kstr (fun s -> if !diverged = None then diverged := Some s) fmt in
  let name = config_name ~scheme ~support in
  (* per-opt-level representative outcome (reference engine), for the
     cross-level and host-oracle comparisons *)
  let level_outcome : (Program.opt * outcome) list ref = ref [] in
  let ran = ref false in
  List.iter
    (fun (opt : Program.opt) ->
      if !diverged = None then begin
        (* backends: at [`None] both must accept or both reject, and on
           acceptance the images must be byte-identical.  The
           monolithic backend ignores the optimization knob, so at
           [`Checks] only the incremental backend is meaningful. *)
        let backends =
          match opt with
          | `None -> m.m_backends
          | `Checks ->
              List.filter (fun b -> b = `Incremental) m.m_backends
        in
        let compiled =
          List.map
            (fun b -> (b, compile ~backend:b ~opt ~scheme ~support source))
            backends
        in
        (match compiled with
        | (_, Ok p0) :: rest ->
            List.iter
              (fun (b, c) ->
                match c with
                | Ok p ->
                    if not (Image.equal p0.Program.image p.Program.image) then
                      fail "%s: backend images differ (monolithic vs incremental)"
                        (name ~opt "")
                | Error m ->
                    fail "%s: one backend accepts, %s rejects (%s)"
                      (name ~opt "")
                      (match b with
                      | `Monolithic -> "monolithic"
                      | `Incremental -> "incremental")
                      m)
              rest
        | (_, Error m0) :: rest ->
            List.iter
              (fun (_, c) ->
                match c with
                | Ok _ -> fail "%s: one backend rejects (%s), another accepts" (name ~opt "") m0
                | Error _ -> ())
              rest
        | [] -> ());
        (* engines: run the first accepted image under every engine *)
        let runnable =
          List.find_map
            (fun (_, c) -> match c with Ok p -> Some p | Error _ -> None)
            compiled
        in
        (match runnable with
        | None ->
            let msg =
              match compiled with
              | (_, Error m) :: _ -> m
              | _ -> "no backend"
            in
            level_outcome := (opt, Compile_error msg) :: !level_outcome
        | Some p ->
            ran := true;
            let runs =
              List.map (fun e -> (e, run_engine ~fuel ~engine:e p)) m.m_engines
            in
            (match runs with
            | (e0, r0) :: rest ->
                level_outcome := (opt, r0.r_outcome) :: !level_outcome;
                List.iter
                  (fun (e, r) ->
                    if not (outcome_equal r0.r_outcome r.r_outcome) then
                      fail "%s: engine %s %s, engine %s %s" (name ~opt "")
                        (Machine.engine_name e0)
                        (outcome_to_string r0.r_outcome)
                        (Machine.engine_name e)
                        (outcome_to_string r.r_outcome)
                    else begin
                      (match (r0.r_stats, r.r_stats) with
                      | Some s0, Some s ->
                          if not (Stats.equal s0 s) then
                            fail "%s: stats diverge between %s and %s"
                              (name ~opt "") (Machine.engine_name e0)
                              (Machine.engine_name e)
                      | _ -> ());
                      match (r0.r_gc, r.r_gc) with
                      | Some g0, Some g ->
                          if g0 <> g then
                            fail "%s: GC counters diverge between %s and %s"
                              (name ~opt "") (Machine.engine_name e0)
                              (Machine.engine_name e)
                      | _ -> ()
                    end)
                  rest
            | [] -> ()))
      end)
    m.m_opts;
  (* cross-opt-level: [`Checks] deletes checks that can never fire, so
     with run-time checking on, the observable outcome must survive the
     optimizer exactly.  (With checking off an erroneous program's
     behavior is unchecked — both images deterministically compute
     garbage, but not necessarily the same garbage — so the comparison
     is gated on checking.  Timeouts are exempt: the optimized image
     spends fewer cycles, so only one level may exhaust the budget.
     Wild faults are exempt too: a fault — e.g. from unbounded
     recursion overrunning the stack — is outside the checked
     semantics, and what happens after the overrun depends on the
     image layout.) *)
  if !diverged = None && support.Support.runtime_checking then begin
    match (List.assoc_opt `None !level_outcome, List.assoc_opt `Checks !level_outcome) with
    | Some a, Some b ->
        let exempt =
          match (a, b) with
          | Timeout, _ | _, Timeout | Fault _, _ | _, Fault _ -> true
          | _ -> false
        in
        if (not exempt) && not (outcome_equal a b) then
          fail "%s: opt none %s, opt checks %s"
            (name ~opt:`None " vs opt:checks")
            (outcome_to_string a) (outcome_to_string b)
    | _ -> ()
  end;
  (* host oracle: under full checking the machine models exactly the
     checked semantics the reference interpreter implements *)
  if !diverged = None && support.Support.runtime_checking then begin
    match List.assoc_opt `None !level_outcome with
    | Some (Value _ | Abort _) as machine_outcome ->
        let machine = Option.get machine_outcome in
        (match Oracle.run ~scheme source with
        | Oracle.Value v ->
            let host = Value (Oracle.to_string v) in
            if not (outcome_equal machine host) then
              fail "%s: machine %s, host oracle %s" (name ~opt:`None "")
                (outcome_to_string machine) (outcome_to_string host)
        | Oracle.Error "out of fuel" ->
            (* the host interpreter's step budget is not cycle-accurate;
               no comparison possible *)
            ()
        | Oracle.Error e ->
            let host = Abort e in
            if not (outcome_equal machine host) then
              fail "%s: machine %s, host oracle %s" (name ~opt:`None "")
                (outcome_to_string machine) (outcome_to_string host)
        | exception Expand.Error _ -> ()
        | exception Sexp.Parse_error _ -> ())
    | _ ->
        (* compile rejections (expression depth), timeouts and wild
           faults have no host counterpart *)
        ()
  end;
  (!diverged, !ran)

let check ?(fuel = 40_000_000) m source : verdict =
  let any_ran = ref false in
  let rec cells = function
    | [] -> if !any_ran then Agree else Rejected
    | (scheme, support) :: rest -> (
        match check_cell ~fuel m ~scheme ~support source with
        | Some detail, _ ->
            Diverge { d_scheme = scheme; d_support = support; d_detail = detail }
        | None, ran ->
            if ran then any_ran := true;
            cells rest)
  in
  cells m.m_pairs
