module Sexp = Tagsim_lisp.Sexp

(* All ways to shrink one node, smallest-first so greedy passes jump as
   far as they can: replace by a leaf, hoist a child, drop a child,
   shrink in place. *)
let node_candidates (s : Sexp.t) : Sexp.t list =
  match s with
  | Sexp.Int 0 -> []
  | Sexp.Int n ->
      Sexp.Int 0 :: (if abs n > 1 then [ Sexp.Int (n / 2) ] else [])
  | Sexp.Sym "nil" -> []
  | Sexp.Sym _ -> [ Sexp.Sym "nil"; Sexp.Int 0 ]
  | Sexp.List items ->
      [ Sexp.Sym "nil"; Sexp.Int 0 ]
      @ items (* hoist any child over the whole form *)
      @ List.mapi
          (fun i _ ->
            Sexp.List (List.filteri (fun j _ -> j <> i) items))
          items

(* Rebuild [s] with the subtree at [path] (list of child indices)
   replaced. *)
let rec replace_at (s : Sexp.t) path repl =
  match (path, s) with
  | [], _ -> repl
  | i :: rest, Sexp.List items ->
      Sexp.List
        (List.mapi
           (fun j c -> if j = i then replace_at c rest repl else c)
           items)
  | _ -> s

(* Enumerate every (path, candidate) pair of one form, outer nodes
   first: shrinking a big subtree early saves many later attempts. *)
let form_candidates (form : Sexp.t) : (int list * Sexp.t) list =
  let acc = ref [] in
  let rec walk path s =
    List.iter (fun c -> acc := (List.rev path, c) :: !acc) (node_candidates s);
    match s with
    | Sexp.List items -> List.iteri (fun i c -> walk (i :: path) c) items
    | _ -> ()
  in
  walk [] form;
  List.rev !acc

let is_main = function
  | Sexp.List (Sexp.Sym "de" :: Sexp.Sym "main" :: _) -> true
  | _ -> false

let minimize ~check ?(max_attempts = 2000) (prog : Gen.program) : Gen.program =
  let attempts = ref 0 in
  let try_candidate cand =
    if !attempts >= max_attempts then false
    else begin
      incr attempts;
      check cand
    end
  in
  (* one pass: first improvement wins and the pass restarts from it *)
  let step prog =
    (* drop a whole non-main definition *)
    let drops =
      List.filteri (fun _ f -> not (is_main f)) prog
      |> List.map (fun f -> List.filter (fun g -> g != f) prog)
    in
    (* rewrite one node of one form *)
    let rewrites =
      List.concat
        (List.mapi
           (fun i form ->
             List.map
               (fun (path, repl) ->
                 List.mapi
                   (fun j f -> if j = i then replace_at form path repl else f)
                   prog)
               (form_candidates form))
           prog)
    in
    List.find_opt try_candidate (drops @ rewrites)
  in
  let rec fix prog =
    if !attempts >= max_attempts then prog
    else
      match step prog with Some better -> fix better | None -> prog
  in
  fix prog
