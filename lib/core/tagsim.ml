(** Tagsim: a reproduction of Steenkiste & Hennessy, "Tags and Type
    Checking in LISP: Hardware and Software Approaches" (ASPLOS 1987).

    The library bundles a MIPS-X-like instruction-level simulator, a
    PSL-like Lisp compiler and runtime with configurable tag
    implementation schemes, and the measurement machinery that classifies
    execution cycles into the paper's tag-operation categories.

    Typical use:
    {[
      let scheme = Tagsim.Scheme.high5 in
      let support = Tagsim.Support.software in
      let program, result =
        Tagsim.Program.run_source ~scheme ~support
          "(de main () (plus2 1 2))"
      in
      (* result.value = Some (Hint 3); result.stats has the cycle
         breakdown *)
    ]} *)

module Word = Tagsim_mipsx.Word
module Reg = Tagsim_mipsx.Reg
module Annot = Tagsim_mipsx.Annot
module Insn = Tagsim_mipsx.Insn
module Buf = Tagsim_asm.Buf
module Sched = Tagsim_asm.Sched
module Image = Tagsim_asm.Image
module Link = Tagsim_asm.Link
module Machine = Tagsim_sim.Machine
module Predecode = Tagsim_sim.Predecode
module Fuse = Tagsim_sim.Fuse
module Trace = Tagsim_sim.Trace
module Plan = Tagsim_sim.Plan
module Stats = Tagsim_sim.Stats
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module Sexp = Tagsim_lisp.Sexp
module Ast = Tagsim_lisp.Ast
module Expand = Tagsim_lisp.Expand
module Layout = Tagsim_runtime.Layout
module Emit = Tagsim_runtime.Emit
module Rt = Tagsim_runtime.Rt
module Symtab = Tagsim_compiler.Symtab
module Codegen = Tagsim_compiler.Codegen
module Tir = Tagsim_compiler.Tir
module Lower = Tagsim_compiler.Lower
module Select = Tagsim_compiler.Select
module Checkelim = Tagsim_compiler.Checkelim
module Bphase = Tagsim_compiler.Bphase
module Objcache = Tagsim_compiler.Objcache
module Prelude = Tagsim_compiler.Prelude
module Program = Tagsim_compiler.Program
module Oracle = Tagsim_compiler.Oracle
module Benchmarks = Tagsim_programs.Registry
module Fuzz = struct
  module Rng = Tagsim_fuzz.Rng
  module Gen = Tagsim_fuzz.Gen
  module Cross = Tagsim_fuzz.Cross
  module Shrink = Tagsim_fuzz.Shrink
  module Driver = Tagsim_fuzz.Fuzz
end
module Analysis = struct
  module Pool = Tagsim_analysis.Pool
  module Cache = Tagsim_analysis.Cache
  module Instrument = Tagsim_analysis.Instrument
  module Run = Tagsim_analysis.Run
  module Spec = Tagsim_analysis.Spec
  module Planner = Tagsim_analysis.Planner
  module Table1 = Tagsim_analysis.Table1
  module Table2 = Tagsim_analysis.Table2
  module Table3 = Tagsim_analysis.Table3
  module Figure1 = Tagsim_analysis.Figure1
  module Figure2 = Tagsim_analysis.Figure2
  module Garith = Tagsim_analysis.Garith
  module Profile = Tagsim_analysis.Profile
  module Ablations = Tagsim_analysis.Ablations
  module Elision = Tagsim_analysis.Elision
end
