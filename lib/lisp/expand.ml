(** Translation from s-expressions to core AST: special forms, the fixed
    macro set, and desugaring of n-ary arithmetic into the binary
    primitives the code generator knows. *)

exception Error of string

let errorf fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* Atomic: expansions may run concurrently in the experiment pool's
   worker domains, and generated names must stay unique within a
   program.  [program] additionally resets the counter (under a lock
   serialising whole-program expansions), so expanding the same source
   always yields the identical AST — names generated for a definition
   are part of its content-addressed object-cache fingerprint, which
   must be reproducible both within a process and across processes. *)
let gensym_counter = Atomic.make 0
let program_mutex = Mutex.create ()

let gensym prefix =
  Printf.sprintf "%%%s%d" prefix (Atomic.fetch_and_add gensym_counter 1 + 1)

(* Surface names rewritten to binary primitive chains. *)
let nary_binary =
  [
    ("+", "plus2");
    ("plus", "plus2");
    ("*", "times2");
    ("times", "times2");
    ("min", "min2");
    ("max", "max2");
    ("land", "land2");
    ("lor", "lor2");
    ("lxor", "lxor2");
    ("append", "append2");
    ("nconc", "nconc2");
  ]

(* car/cdr composition shorthands. *)
let cxr name =
  let n = String.length name in
  if n >= 3 && n <= 6 && name.[0] = 'c' && name.[n - 1] = 'r' then
    let middle = String.sub name 1 (n - 2) in
    if String.for_all (fun c -> c = 'a' || c = 'd') middle && n > 3 then
      Some middle
    else None
  else None

let rec const_of_sexp (s : Sexp.t) : Ast.const =
  match s with
  | Sexp.Int n -> Ast.Cint n
  | Sexp.Sym s -> Ast.Csym s
  | Sexp.List l -> Ast.Clist (List.map const_of_sexp l)

let rec expr (s : Sexp.t) : Ast.expr =
  match s with
  | Sexp.Int n -> Ast.Const (Ast.Cint n)
  | Sexp.Sym "nil" -> Ast.nil
  | Sexp.Sym "t" -> Ast.t
  | Sexp.Sym v -> Ast.Var v
  | Sexp.List [] -> Ast.nil
  | Sexp.List (Sexp.Sym head :: args) -> form head args
  | Sexp.List (head :: _) ->
      errorf "cannot apply non-symbol %s" (Sexp.to_string head)

and body_exprs = function
  | [] -> Ast.nil
  | [ e ] -> expr e
  | es -> Ast.Progn (List.map expr es)

and form head args =
  match (head, args) with
  | "quote", [ q ] -> Ast.Const (const_of_sexp q)
  | "quote", _ -> errorf "quote expects one argument"
  | "if", [ c; a ] -> Ast.If (expr c, expr a, Ast.nil)
  | "if", c :: a :: rest -> Ast.If (expr c, expr a, body_exprs rest)
  | "if", _ -> errorf "if expects at least two arguments"
  | "progn", es -> body_exprs es
  | "prog1", e :: rest ->
      let v = gensym "p1" in
      Ast.Let ([ (v, expr e) ], List.map expr rest @ [ Ast.Var v ])
  | "setq", [ Sexp.Sym v; e ] -> Ast.Setq (v, expr e)
  | "setq", _ -> errorf "setq expects a symbol and a value"
  | "while", c :: body -> Ast.While (expr c, List.map expr body)
  | "while", [] -> errorf "while expects a condition"
  | ("let" | "let*"), Sexp.List binds :: body ->
      let bind = function
        | Sexp.List [ Sexp.Sym v; e ] -> (v, expr e)
        | Sexp.Sym v -> (v, Ast.nil)
        | b -> errorf "bad let binding %s" (Sexp.to_string b)
      in
      Ast.Let (List.map bind binds, [ body_exprs body ])
  | ("let" | "let*"), _ -> errorf "let expects a binding list"
  | "cond", clauses ->
      let rec build = function
        | [] -> Ast.nil
        | Sexp.List [ c ] :: rest ->
            let v = gensym "c" in
            Ast.Let ([ (v, expr c) ],
                     [ Ast.If (Ast.Var v, Ast.Var v, build rest) ])
        | Sexp.List (Sexp.Sym "t" :: body) :: _ -> body_exprs body
        | Sexp.List (c :: body) :: rest ->
            Ast.If (expr c, body_exprs body, build rest)
        | cl :: _ -> errorf "bad cond clause %s" (Sexp.to_string cl)
      in
      build clauses
  | "and", [] -> Ast.t
  | "and", es ->
      let rec build = function
        | [ e ] -> expr e
        | e :: rest -> Ast.If (expr e, build rest, Ast.nil)
        | [] -> assert false
      in
      build es
  | "or", [] -> Ast.nil
  | "or", es ->
      let rec build = function
        | [ e ] -> expr e
        | e :: rest ->
            let v = gensym "o" in
            Ast.Let ([ (v, expr e) ],
                     [ Ast.If (Ast.Var v, Ast.Var v, build rest) ])
        | [] -> assert false
      in
      build es
  | "when", c :: body -> Ast.If (expr c, body_exprs body, Ast.nil)
  | "unless", c :: body -> Ast.If (expr c, Ast.nil, body_exprs body)
  | "not", [ e ] -> Ast.Call ("null", [ expr e ])
  | "neq", [ a; b ] -> Ast.Call ("null", [ Ast.Call ("eq", [ expr a; expr b ]) ])
  | "list", [] -> Ast.nil
  | "list", es when List.length es <= 4 ->
      List.fold_right
        (fun e acc -> Ast.Call ("cons", [ expr e; acc ]))
        es Ast.nil
  | "list", es ->
      (* Long lists: bind the elements in evaluation order, then build the
         spine with a flat setq chain (bounded expression depth). *)
      let binds = List.map (fun e -> (gensym "le", expr e)) es in
      let acc = gensym "ll" in
      let build =
        List.rev_map
          (fun (v, _) ->
            Ast.Setq (acc, Ast.Call ("cons", [ Ast.Var v; Ast.Var acc ])))
          binds
      in
      Ast.Let (binds @ [ (acc, Ast.nil) ], build @ [ Ast.Var acc ])
  | "push", [ e; Sexp.Sym v ] ->
      Ast.Setq (v, Ast.Call ("cons", [ expr e; Ast.Var v ]))
  | "pop", [ Sexp.Sym v ] ->
      let x = gensym "pp" in
      Ast.Let
        ( [ (x, Ast.Call ("car", [ Ast.Var v ])) ],
          [ Ast.Setq (v, Ast.Call ("cdr", [ Ast.Var v ])); Ast.Var x ] )
  | "incf", [ Sexp.Sym v ] ->
      Ast.Setq (v, Ast.Call ("plus2", [ Ast.Var v; Ast.Const (Ast.Cint 1) ]))
  | "decf", [ Sexp.Sym v ] ->
      Ast.Setq
        (v, Ast.Call ("difference2", [ Ast.Var v; Ast.Const (Ast.Cint 1) ]))
  | "dotimes", Sexp.List [ Sexp.Sym i; n ] :: body ->
      let lim = gensym "n" in
      Ast.Let
        ( [ (i, Ast.Const (Ast.Cint 0)); (lim, expr n) ],
          [
            Ast.While
              ( Ast.Call ("lessp", [ Ast.Var i; Ast.Var lim ]),
                List.map expr body
                @ [
                    Ast.Setq
                      ( i,
                        Ast.Call
                          ("plus2", [ Ast.Var i; Ast.Const (Ast.Cint 1) ]) );
                  ] );
          ] )
  | "dolist", Sexp.List [ Sexp.Sym x; l ] :: body ->
      let rest = gensym "l" in
      Ast.Let
        ( [ (rest, expr l); (x, Ast.nil) ],
          [
            Ast.While
              ( Ast.Call ("pairp", [ Ast.Var rest ]),
                Ast.Setq (x, Ast.Call ("car", [ Ast.Var rest ]))
                :: List.map expr body
                @ [ Ast.Setq (rest, Ast.Call ("cdr", [ Ast.Var rest ])) ] );
          ] )
  | "funcall", f :: args -> Ast.Funcall (expr f, List.map expr args)
  | "funcall", [] -> errorf "funcall expects a function"
  | ("add1" | "1+"), [ e ] ->
      Ast.Call ("plus2", [ expr e; Ast.Const (Ast.Cint 1) ])
  | ("sub1" | "1-"), [ e ] ->
      Ast.Call ("difference2", [ expr e; Ast.Const (Ast.Cint 1) ])
  | "minus", [ e ] ->
      Ast.Call ("difference2", [ Ast.Const (Ast.Cint 0); expr e ])
  | "-", [ e ] ->
      Ast.Call ("difference2", [ Ast.Const (Ast.Cint 0); expr e ])
  | "-", e :: rest ->
      List.fold_left
        (fun acc x -> Ast.Call ("difference2", [ acc; expr x ]))
        (expr e) rest
  | "-", [] -> errorf "- expects arguments"
  | "difference", [ a; b ] -> Ast.Call ("difference2", [ expr a; expr b ])
  | ("zerop" | "onep" | "minusp"), [ e ] ->
      let cmp, k =
        match head with
        | "zerop" -> ("eqn", 0)
        | "onep" -> ("eqn", 1)
        | _ -> ("lessp", 0)
      in
      Ast.Call (cmp, [ expr e; Ast.Const (Ast.Cint k) ])
  | ("=" | "/=" | "<" | ">" | "<=" | ">="), [ a; b ] ->
      let prim =
        match head with
        | "=" -> "eqn"
        | "<" -> "lessp"
        | ">" -> "greaterp"
        | "<=" -> "leq"
        | ">=" -> "geq"
        | _ -> "neqn"
      in
      if prim = "neqn" then
        Ast.Call ("null", [ Ast.Call ("eqn", [ expr a; expr b ]) ])
      else Ast.Call (prim, [ expr a; expr b ])
  | _, args_s -> (
      match List.assoc_opt head nary_binary with
      | Some prim -> (
          match args_s with
          | [] -> errorf "%s expects arguments" head
          | [ a ] -> expr a
          | a :: rest ->
              List.fold_left
                (fun acc x -> Ast.Call (prim, [ acc; expr x ]))
                (expr a) rest)
      | None -> (
          match (cxr head, args_s) with
          | Some middle, [ arg ] ->
              (* (cadr x) = (car (cdr x)) *)
              String.fold_right
                (fun c acc ->
                  Ast.Call ((if c = 'a' then "car" else "cdr"), [ acc ]))
                middle (expr arg)
          | Some _, _ -> errorf "%s expects one argument" head
          | None, _ -> Ast.Call (head, List.map expr args_s)))

(** A toplevel definition: [(de name (params) body...)]. *)
let definition (s : Sexp.t) : Ast.def =
  match s with
  | Sexp.List (Sexp.Sym "de" :: Sexp.Sym name :: Sexp.List params :: body) ->
      let param = function
        | Sexp.Sym p -> p
        | p -> errorf "bad parameter %s in %s" (Sexp.to_string p) name
      in
      let params = List.map param params in
      let seen = Hashtbl.create 8 in
      List.iter
        (fun p ->
          if Hashtbl.mem seen p then errorf "duplicate parameter %s in %s" p name;
          Hashtbl.replace seen p ())
        params;
      { Ast.name; params; body = body_exprs body }
  | _ -> errorf "expected (de name (params) body...), got %s" (Sexp.to_string s)

(** Parse and expand a whole program: a sequence of [de] forms.
    Deterministic: generated names restart from a fixed origin, so the
    same source expands to the same AST in every process. *)
let program src : Ast.def list =
  Mutex.protect program_mutex (fun () ->
      Atomic.set gensym_counter 0;
      let forms = Sexp.parse_all src in
      List.map definition forms)
