(** Memory layout and label-name conventions shared by the code
    generator and the runtime routines (see the implementation header
    for the memory map). *)

(** {1 Symbol cells} *)

val symtab_base : int
val sym_cell_size : int
val sym_off_value : int
val sym_off_function : int
val sym_off_plist : int
val sym_off_name : int

(** Bit position of a function symbol's arity within its name-id word. *)
val sym_arity_shift : int

val sym_addr : int -> int

(** {1 Object headers (vectors, boxed numbers)} *)

val obj_off_subtype : int
val obj_off_length : int
val obj_off_elems : int

(** {1 Well-known symbols} *)

val sym_nil : int
val sym_t : int

(** {1 Labels} *)

val l_symtab : string
val l_symtab_count : string
val l_stack_top : string
val l_heap_a : string
val l_heap_b : string
val l_semi_bytes : string
val l_gc_cur : string
val l_gc_ra : string
val l_gc_regsave : string
val l_gc_count : string
val l_gc_copied : string
val l_gadd_entry : string
val l_gsub_entry : string
val l_gadd_trap : string
val l_gsub_trap : string
val l_gmul_entry : string
val l_gdiv_entry : string
val l_grem_entry : string
val l_gc_entry : string
val l_mkvect : string
val l_makebox : string
val l_err_type : string
val l_err_bounds : string
val l_err_undef : string
val l_err_heap : string
val l_err_arith : string
val l_err_arity : string
val fn_label : string -> string

(** {1 Abort codes (arguments of [Trap])} *)

val trap_type_error : int
val trap_bounds_error : int
val trap_undefined_function : int
val trap_heap_overflow : int
val trap_arith_error : int
val trap_arity_error : int

(** {1 Collection roots} *)

(** Registers saved into the register-save area and forwarded as roots.
    [v0]/[v1] are deliberately excluded (transient scratch); k0..k4 are
    collector scratch. *)
val gc_saved_regs : Tagsim_mipsx.Reg.t list

val gc_regsave_words : int

(** Red zone below the heap limit, covering speculative stores from the
    allocation fast path. *)
val heap_slack : int

(** {1 Run-time sizing} *)

type sizes = { stack_bytes : int; semi_bytes : int }

val default_sizes : sizes

type map = {
  stack_base : int;
  stack_top : int;
  heap_a : int;
  heap_b : int;
  semi_bytes : int;
}

(** Compute the memory map given where static data ends; raises
    [Invalid_argument] when it does not fit. *)
val compute_map : data_end:int -> sizes:sizes -> mem_bytes:int -> map
