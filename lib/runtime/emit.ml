(** Emission helpers for tag operations.

    Everything the paper measures flows through this module: inserting,
    removing, extracting and checking tags, in whichever way the selected
    tag scheme and hardware support allow.  Each helper emits the exact
    instruction sequence the configuration calls for and attaches the
    annotation the statistics machinery needs. *)

module Insn = Tagsim_mipsx.Insn
module Annot = Tagsim_mipsx.Annot
module Reg = Tagsim_mipsx.Reg
module Buf = Tagsim_asm.Buf
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support

type ctx = { b : Buf.t; scheme : Scheme.t; support : Support.t }

let emit ?annot ctx insn = Buf.emit ?annot ctx.b insn
let label ctx l = Buf.label ctx.b l
let fresh ctx prefix = Buf.fresh ctx.b prefix

(* Convenience wrappers. *)
let branch ?annot ?(squash = false) ?(hint = Insn.No_hint) ctx cond rs rt
    target =
  emit ?annot ctx (Insn.B ({ Insn.cond; rs; rt; squash; hint }, target))

let branch_i ?annot ?(squash = false) ?(hint = Insn.No_hint) ctx cond rs imm
    target =
  emit ?annot ctx
    (Insn.Bi
       ( { Insn.bi_cond = cond; bi_rs = rs; bi_imm = imm; bi_squash = squash;
           bi_hint = hint },
         target ))

let branch_tag ?annot ?(squash = false) ?(hint = Insn.No_hint) ctx ~neg rs tag
    target =
  emit ?annot ctx
    (Insn.Btag
       ( { Insn.bt_neg = neg; bt_rs = rs; bt_tag = tag; bt_squash = squash;
           bt_hint = hint },
         target ))

(* --- Constant items. --- *)

let sym_item scheme idx =
  Scheme.encode_ptr scheme Scheme.Symbol (Layout.sym_addr idx)

let nil_item scheme = sym_item scheme Layout.sym_nil
let t_item scheme = sym_item scheme Layout.sym_t

(* --- Tag insertion (Section 3.1). --- *)

(** Build a tagged item from the raw address in [src].  High-tag schemes
    take two cycles (a [lui]-style tag constant plus an [or]); low-tag
    schemes take one; a preshifted pair tag kept in [k5] reduces the pair
    case to one cycle (Section 3.1 ablation). *)
let insert_tag ?(checking = false) ctx ~ty ~src ~dst ~scratch =
  let annot = Annot.make ~checking Annot.Insert in
  let tag = ctx.scheme.Scheme.tag ty in
  if Scheme.is_low ctx.scheme then emit ~annot ctx (Insn.Alui (Insn.Or, dst, src, tag))
  else if ty = Scheme.Pair && ctx.support.Support.preshifted_pair_tag then
    emit ~annot ctx (Insn.Alu (Insn.Or, dst, src, Reg.k5))
  else begin
    emit ~annot ctx (Insn.Li (scratch, tag lsl ctx.scheme.Scheme.tag_shift));
    emit ~annot ctx (Insn.Alu (Insn.Or, dst, src, scratch))
  end

(* --- Tag extraction (Section 3.3). --- *)

let extract_tag ?(checking = false) ctx ~src_kind reg ~dst =
  let annot = Annot.make ~checking (Annot.Extract src_kind) in
  if Scheme.is_low ctx.scheme then
    emit ~annot ctx
      (Insn.Alui (Insn.And, dst, reg, (1 lsl ctx.scheme.Scheme.tag_width) - 1))
  else emit ~annot ctx (Insn.Alui (Insn.Srl, dst, reg, ctx.scheme.Scheme.tag_shift))

(* --- Tag checking (Sections 3.4 and 6). --- *)

(** Branch to [target] according to whether [reg] has the tag of [ty].
    [sense = `Is]: branch when the type matches; [`Is_not]: when it does
    not.  With [tag_branch] hardware this is a single instruction;
    otherwise extraction plus a compare-and-branch.

    For the Low2 scheme, vectors and boxed numbers share the escape tag
    and are discriminated by the header subtype; testing those types costs
    an extra load and compare, which is the honest price of a 2-bit tag. *)
let check_type ?(checking = false) ?(hint = Insn.No_hint) ctx ~src_kind ~ty
    ~sense reg ~scratch target =
  let scheme = ctx.scheme in
  let tag = scheme.Scheme.tag ty in
  let check = Annot.make ~checking (Annot.Check src_kind) in
  let low2_escape =
    scheme.Scheme.layout = Scheme.Low2 && (ty = Scheme.Vector || ty = Scheme.Boxnum)
  in
  if not low2_escape then begin
    if ctx.support.Support.tag_branch then
      branch_tag ~annot:check ~hint ctx ~neg:(sense = `Is_not) reg tag target
    else begin
      extract_tag ~checking ctx ~src_kind reg ~dst:scratch;
      let cond = if sense = `Is_not then Insn.Ne else Insn.Eq in
      branch_i ~annot:check ~hint ctx cond scratch tag target
    end
  end
  else begin
    (* Escape tag, then header subtype. *)
    let subtype =
      if ty = Scheme.Vector then Scheme.subtype_vector else Scheme.subtype_boxnum
    in
    match sense with
    | `Is_not ->
        (* Fail fast on a non-escape tag, then on the wrong subtype. *)
        if ctx.support.Support.tag_branch then
          branch_tag ~annot:check ~hint ctx ~neg:true reg tag target
        else begin
          extract_tag ~checking ctx ~src_kind reg ~dst:scratch;
          branch_i ~annot:check ~hint ctx Insn.Ne scratch tag target
        end;
        emit ~annot:check ctx (Insn.Ld (Insn.Plain, scratch, reg, 0));
        branch_i ~annot:check ~hint ctx Insn.Ne scratch subtype target
    | `Is ->
        let out = fresh ctx "l2t" in
        if ctx.support.Support.tag_branch then
          branch_tag ~annot:check ctx ~neg:true reg tag out
        else begin
          extract_tag ~checking ctx ~src_kind reg ~dst:scratch;
          branch_i ~annot:check ctx Insn.Ne scratch tag out
        end;
        emit ~annot:check ctx (Insn.Ld (Insn.Plain, scratch, reg, 0));
        branch_i ~annot:check ~hint ctx Insn.Eq scratch subtype target;
        label ctx out
  end

(** Integer test: branch to [target] when [reg] is / is not an integer
    item.  High-tag schemes use the paper's method 2 (sign-extend the low
    bits and compare, Section 4.1, 3 cycles); low-tag schemes test the two
    low bits (2 cycles). *)
let int_test ?(checking = false) ?(hint = Insn.No_hint) ctx ~src_kind ~sense
    reg ~scratch target =
  let scheme = ctx.scheme in
  let extract = Annot.make ~checking (Annot.Extract src_kind) in
  let check = Annot.make ~checking (Annot.Check src_kind) in
  if Scheme.is_low scheme then begin
    emit ~annot:extract ctx (Insn.Alui (Insn.And, scratch, reg, 3));
    let cond = if sense = `Is_not then Insn.Ne else Insn.Eq in
    branch_i ~annot:check ~hint ctx cond scratch 0 target
  end
  else begin
    let sh = 32 - scheme.Scheme.int_bits in
    emit ~annot:extract ctx (Insn.Alui (Insn.Sll, scratch, reg, sh));
    emit ~annot:extract ctx (Insn.Alui (Insn.Sra, scratch, scratch, sh));
    let cond = if sense = `Is_not then Insn.Ne else Insn.Eq in
    branch ~annot:check ~hint ctx cond scratch reg target
  end

(** Overflow check on the result of an integer add/sub (Section 4.1): the
    high-tag schemes check that the result is still a valid integer item
    (3 cycles); the low-tag schemes check 32-bit signed overflow directly
    (the items are [n lsl 2]), which needs two scratch registers. *)
let overflow_check ?(checking = false) ?(subtraction = false)
    ?(resumable = false) ctx ~result ~op_a ~op_b ~scratch ~fail =
  let fail_hint = if resumable then Insn.Slow_path else Insn.Unlikely in
  let extract = Annot.make ~checking (Annot.Extract Annot.Arith_op) in
  let check = Annot.make ~checking (Annot.Check Annot.Arith_op) in
  if Scheme.is_low ctx.scheme then begin
    (* 32-bit signed overflow, one scratch register:
       add:  overflow possible only when the operands agree in sign and
             the result's sign differs from theirs;
       sub:  overflow possible only when the operands disagree in sign
             and the result's sign differs from the minuend's. *)
    let ok = fresh ctx "ovok" in
    emit ~annot:extract ctx (Insn.Alu (Insn.Xor, scratch, op_a, op_b));
    (if subtraction then
       branch ~annot:check ctx Insn.Ge scratch Reg.zero ok
     else branch ~annot:check ctx Insn.Lt scratch Reg.zero ok);
    emit ~annot:extract ctx (Insn.Alu (Insn.Xor, scratch, op_a, result));
    branch ~annot:check ~hint:fail_hint ctx Insn.Lt scratch Reg.zero fail;
    label ctx ok
  end
  else begin
    let sh = 32 - ctx.scheme.Scheme.int_bits in
    emit ~annot:extract ctx (Insn.Alui (Insn.Sll, scratch, result, sh));
    emit ~annot:extract ctx (Insn.Alui (Insn.Sra, scratch, scratch, sh));
    branch ~annot:check ~hint:fail_hint ctx Insn.Ne scratch result fail
  end

(** Result-validity check used by the High6 arithmetic encoding
    (Section 4.2): branch to [fail] unless [result] is a valid integer
    item.  The failure target is usually a resumable slow path, so the
    slot filler only moves register work into its slots. *)
let validity_check ?(checking = false) ctx ~result ~scratch ~fail =
  int_test ~checking ~hint:Insn.Slow_path ctx ~src_kind:Annot.Arith_op
    ~sense:`Is_not result ~scratch fail

(** Overflow check on the result of an integer multiply.  The ISA has no
    high-word multiply, so a product that wraps the 32-bit word cannot be
    recognized from its bits alone: wrapping preserves the low tag bits,
    and can even land back inside the integer range (65536 * 65536 wraps
    to 0, a perfectly valid item under every scheme).  The product is
    instead verified by dividing it back: for b <> 0, result / b must
    recover the multiplicand exactly — a wrapped product misses it by at
    least 2^32 / |b| > 1.  [val_a] must hold the untagged multiplicand
    (for the low-tag schemes, the [Sra] scratch; for the high-tag
    schemes, the operand item itself, which is its own value).  On the
    low-tag schemes the quotient overwrites [result], so the product is
    recomputed on the success path; exactness of the division already
    bounds the product within the word, which for items [4ab] is exactly
    the 30-bit value range, so no further test is needed.  The high-tag
    schemes keep [result] intact (the quotient goes to [scratch]) but
    must still range-check the unwrapped product against the scheme's
    narrower integer precision.  The divisor can never be the -1 that
    makes [min_int / -1] trap: low-tag items are multiples of 4, and a
    high-tag product by -1 is a small negation. *)
let mul_overflow_check ?(checking = false) ?(resumable = false) ctx ~result
    ~val_a ~item_b ~scratch ~fail =
  let fail_hint = if resumable then Insn.Slow_path else Insn.Unlikely in
  let extract = Annot.make ~checking (Annot.Extract Annot.Arith_op) in
  let check = Annot.make ~checking (Annot.Check Annot.Arith_op) in
  let ok = fresh ctx "mulok" in
  branch ~annot:check ctx Insn.Eq item_b Reg.zero ok;
  if Scheme.is_low ctx.scheme then begin
    emit ~annot:extract ctx (Insn.Alu (Insn.Div, result, result, item_b));
    branch ~annot:check ~hint:fail_hint ctx Insn.Ne result val_a fail;
    emit ~annot:extract ctx (Insn.Alu (Insn.Mul, result, val_a, item_b))
  end
  else begin
    emit ~annot:extract ctx (Insn.Alu (Insn.Div, scratch, result, item_b));
    branch ~annot:check ~hint:fail_hint ctx Insn.Ne scratch val_a fail;
    let sh = 32 - ctx.scheme.Scheme.int_bits in
    emit ~annot:extract ctx (Insn.Alui (Insn.Sll, scratch, result, sh));
    emit ~annot:extract ctx (Insn.Alui (Insn.Sra, scratch, scratch, sh));
    branch ~annot:check ~hint:fail_hint ctx Insn.Ne scratch result fail
  end;
  label ctx ok

(* --- Memory access to tagged objects (Sections 3.2, 5, 6.2.1). --- *)

type access = { mode : Insn.mem_mode; base : Reg.t; corr : int }

(** Prepare to address into the object that the item in [reg] points to.
    Depending on the configuration this is:
    - a parallel-checked access (tag verified by the hardware, tag bits
      dropped by the hardware): no instructions;
    - a tag-ignoring access: no instructions;
    - a low-tag access: no instructions (offset correction only);
    - a plain high-tag access: one masking instruction into [scratch]. *)
let object_access ?(checking = false) ctx ~ty ~parallel reg ~scratch =
  let scheme = ctx.scheme in
  if parallel then
    { mode = Insn.Checked (scheme.Scheme.tag ty); base = reg; corr = 0 }
  else if ctx.support.Support.tag_ignoring_mem && scheme.Scheme.needs_mask then
    (* Tag-ignoring memory hardware only matters for high-tag schemes; the
       low-tag schemes already access memory without masking. *)
    { mode = Insn.Tag_ignoring; base = reg; corr = 0 }
  else if scheme.Scheme.needs_mask then begin
    emit ~annot:(Annot.make ~checking Annot.Remove) ctx
      (Insn.Alu (Insn.And, scratch, reg, Reg.rmask));
    { mode = Insn.Plain; base = scratch; corr = 0 }
  end
  else
    { mode = Insn.Plain; base = reg; corr = Scheme.offset_correction scheme ty }

let load ?annot ctx access ~dst ~off =
  emit ?annot ctx (Insn.Ld (access.mode, dst, access.base, off + access.corr))

let store ?annot ctx access ~src ~off =
  emit ?annot ctx (Insn.St (access.mode, access.base, src, off + access.corr))

(** Does the configuration check this object type in parallel with the
    memory access (Table 2 rows 5/6)?  Only meaningful when run-time
    checking is on: with checking off there is nothing to check. *)
let parallel_covers ctx (ty : Scheme.ty) =
  ctx.support.Support.runtime_checking
  &&
  match ctx.support.Support.parallel_check with
  | Support.Pc_none -> false
  | Support.Pc_lists -> ty = Scheme.Pair
  | Support.Pc_all ->
      ty = Scheme.Pair || ty = Scheme.Vector || ty = Scheme.Boxnum
      || ty = Scheme.Symbol
