(** Runtime system, emitted as simulated machine code so that its cycles
    (and its tag operations) are measured exactly like user code.

    Contents: error stubs, the vector and boxed-number allocators, the
    generic-arithmetic fallback (with both a call entry and a trap entry
    for the hardware generic-arithmetic option), the two-space copying
    garbage collector, and the startup sequence.

    Register discipline:
    - [rt$gadd]/[rt$gsub] use only [k0..k2], [v0], [v1], [a0], [a1]: they
      can be entered from a hardware trap in the middle of an expression,
      where the temporaries [t0..t8] hold live values.
    - the collector saves all tagged-value roots into a static register
      save area, forwards them, and restores them; only [hp], [hl] and the
      save area change across a collection.
    - values that must survive a collection are kept in root registers as
      tagged items, never as raw addresses. *)

module Insn = Tagsim_mipsx.Insn
module Annot = Tagsim_mipsx.Annot
module Reg = Tagsim_mipsx.Reg
module Buf = Tagsim_asm.Buf
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module L = Layout

let g = Annot.make Annot.Gc_work
let al = Annot.make Annot.Alloc
let ga = Annot.make Annot.Garith

(* Shorthand instruction constructors. *)
let add rd rs rt = Insn.Alu (Insn.Add, rd, rs, rt)
let addi rd rs i = Insn.Alui (Insn.Add, rd, rs, i)
let sub rd rs rt = Insn.Alu (Insn.Sub, rd, rs, rt)
let andi rd rs i = Insn.Alui (Insn.And, rd, rs, i)
let slli rd rs i = Insn.Alui (Insn.Sll, rd, rs, i)
let srai rd rs i = Insn.Alui (Insn.Sra, rd, rs, i)
let ld rd rs off = Insn.Ld (Insn.Plain, rd, rs, off)
let st rs rt off = Insn.St (Insn.Plain, rs, rt, off)

let la_ld ?annot (ctx : Emit.ctx) ~dst lbl =
  (* dst <- memory word at static label lbl *)
  Emit.emit ?annot ctx (Insn.La (dst, lbl));
  Emit.emit ?annot ctx (ld dst dst 0)

let la_st ?annot (ctx : Emit.ctx) ~scratch ~src lbl =
  Emit.emit ?annot ctx (Insn.La (scratch, lbl));
  Emit.emit ?annot ctx (st scratch src 0)

(* --- Error stubs. --- *)

let emit_error_stubs ctx =
  let stub lbl code =
    Emit.label ctx lbl;
    Emit.emit ctx (Insn.Trap code)
  in
  stub L.l_err_type L.trap_type_error;
  stub L.l_err_bounds L.trap_bounds_error;
  stub L.l_err_undef L.trap_undefined_function;
  stub L.l_err_heap L.trap_heap_overflow;
  stub L.l_err_arith L.trap_arith_error;
  stub L.l_err_arity L.trap_arity_error

(* --- Vector allocation. ---

   rt$mkvect: a0 = element count (integer item) -> v0 = vector item.
   Elements are initialised to nil.  May collect. *)

let emit_mkvect ctx =
  let scheme = ctx.Emit.scheme in
  let e ?(a = al) i = Emit.emit ~annot:a ctx i in
  Emit.label ctx L.l_mkvect;
  e (addi Reg.sp Reg.sp (-8));
  e (st Reg.sp Reg.ra 0);
  (* Type-check the count when run-time checking is on. *)
  if ctx.Emit.support.Support.runtime_checking then
    Emit.int_test ~checking:true ~hint:Insn.Unlikely ctx
      ~src_kind:Annot.Vector_op ~sense:`Is_not Reg.a0 ~scratch:Reg.k0
      L.l_err_type;
  (* Sanity: a negative count is always an error. *)
  Emit.branch ~annot:al ~hint:Insn.Unlikely ctx Insn.Lt Reg.a0 Reg.zero
    L.l_err_bounds;
  let retry = Emit.fresh ctx "mkv" in
  let fail = Emit.fresh ctx "mkvfail" in
  (* k3 = number of GC attempts so far. *)
  e (Insn.Li (Reg.k3, 0));
  Emit.label ctx retry;
  (* k1 = size in bytes = 8 + 4*n, aligned. *)
  if Scheme.is_low scheme then e (addi Reg.k1 Reg.a0 8)
    (* low items are n lsl 2 = 4n already *)
  else begin
    e (slli Reg.k1 Reg.a0 2);
    e (addi Reg.k1 Reg.k1 8)
  end;
  if scheme.Scheme.obj_align = 8 then begin
    e (addi Reg.k1 Reg.k1 7);
    e (andi Reg.k1 Reg.k1 (-8))
  end;
  (* Space check. *)
  e (add Reg.k2 Reg.hp Reg.k1);
  let ok = Emit.fresh ctx "mkvok" in
  Emit.branch ~annot:al ctx Insn.Le Reg.k2 Reg.hl ok;
  (* Full: collect once, then fail. *)
  Emit.branch_i ~annot:al ~hint:Insn.Unlikely ctx Insn.Ne Reg.k3 0 fail;
  e (Insn.Li (Reg.k3, 1));
  e (Insn.Jal L.l_gc_entry);
  e (Insn.J retry);
  Emit.label ctx fail;
  e (Insn.J L.l_err_heap);
  Emit.label ctx ok;
  (* Header. *)
  e (Insn.Li (Reg.k0, Scheme.subtype_vector));
  e (st Reg.hp Reg.k0 L.obj_off_subtype);
  e (st Reg.hp Reg.a0 L.obj_off_length);
  (* Initialise elements (and any alignment pad) to nil. *)
  e (addi Reg.k0 Reg.hp L.obj_off_elems);
  let loop = Emit.fresh ctx "mkvinit" in
  let done_ = Emit.fresh ctx "mkvdone" in
  Emit.label ctx loop;
  Emit.branch ~annot:al ctx Insn.Ge Reg.k0 Reg.k2 done_;
  e (st Reg.k0 Reg.rnil 0);
  e (addi Reg.k0 Reg.k0 4);
  Emit.emit ~annot:al ctx (Insn.J loop);
  Emit.label ctx done_;
  (* Tag and bump. *)
  Emit.insert_tag ctx ~ty:Scheme.Vector ~src:Reg.hp ~dst:Reg.v0
    ~scratch:Reg.k0;
  e (Insn.Mv (Reg.hp, Reg.k2));
  e (ld Reg.ra Reg.sp 0);
  e (addi Reg.sp Reg.sp 8);
  e (Insn.Jr Reg.ra)

(* --- Boxed-number allocation. ---

   rt$makebox: a0 = payload (an *integer item*; boxes store their payload
   encoded so that the word-granular Cheney scan can never mistake it for
   a heap pointer) -> v0 = boxnum item.  Uses only k0..k2/v0; callable
   from the generic-arithmetic fallback. *)

let emit_makebox ctx =
  let e ?(a = al) i = Emit.emit ~annot:a ctx i in
  Emit.label ctx L.l_makebox;
  e (addi Reg.sp Reg.sp (-8));
  e (st Reg.sp Reg.ra 0);
  let retry = Emit.fresh ctx "mkb" in
  let fail = Emit.fresh ctx "mkbfail" in
  e (Insn.Li (Reg.k2, 0));
  Emit.label ctx retry;
  e (addi Reg.k0 Reg.hp 8);
  let ok = Emit.fresh ctx "mkbok" in
  Emit.branch ~annot:al ctx Insn.Le Reg.k0 Reg.hl ok;
  Emit.branch_i ~annot:al ~hint:Insn.Unlikely ctx Insn.Ne Reg.k2 0 fail;
  e (Insn.Li (Reg.k2, 1));
  e (Insn.Jal L.l_gc_entry);
  e (Insn.J retry);
  Emit.label ctx fail;
  e (Insn.J L.l_err_heap);
  Emit.label ctx ok;
  e (Insn.Li (Reg.k1, Scheme.subtype_boxnum));
  e (st Reg.hp Reg.k1 L.obj_off_subtype);
  e (st Reg.hp Reg.a0 L.obj_off_length);
  Emit.insert_tag ctx ~ty:Scheme.Boxnum ~src:Reg.hp ~dst:Reg.v0
    ~scratch:Reg.k1;
  e (Insn.Mv (Reg.hp, Reg.k0));
  e (ld Reg.ra Reg.sp 0);
  e (addi Reg.sp Reg.sp 8);
  e (Insn.Jr Reg.ra)

(* --- Generic arithmetic fallback (Sections 2.2, 4, 6.2.2). ---

   rt$gadd / rt$gsub: a0, a1 = operand items -> v0 = result item.
   Reached when the inline integer-biased path fails: at least one operand
   is a boxed number (result is boxed), or both are integers whose result
   overflows (an error in this system, standing for the bignum path).

   rt$gadd_trap / rt$gsub_trap: trap entries for the hardware
   generic-arithmetic option; operands arrive in tr0/tr1 and the result
   returns through the trapped instruction's destination register. *)

let emit_generic_arith ctx =
  let scheme = ctx.Emit.scheme in
  let e ?(a = ga) i = Emit.emit ~annot:a ctx i in
  (* Unbox [reg] into [dst] (an integer item): integers pass through,
     boxnums load their payload, anything else is a type error.  Uses
     [scratch]. *)
  let unbox ~reg ~dst ~scratch =
    let is_int = Emit.fresh ctx "ubi" in
    let done_ = Emit.fresh ctx "ubd" in
    Emit.int_test ctx ~src_kind:Annot.Arith_op ~sense:`Is reg ~scratch is_int;
    Emit.check_type ~hint:Insn.Unlikely ctx ~src_kind:Annot.Arith_op
      ~ty:Scheme.Boxnum ~sense:`Is_not reg ~scratch L.l_err_type;
    (* Boxed: load the payload. *)
    let acc =
      Emit.object_access ctx ~ty:Scheme.Boxnum ~parallel:false reg ~scratch
    in
    Emit.load ~annot:ga ctx acc ~dst ~off:L.obj_off_length;
    e (Insn.J done_);
    Emit.label ctx is_int;
    e (Insn.Mv (dst, reg));
    Emit.label ctx done_
  in
  let body ~name ~op =
    Emit.label ctx name;
    e (addi Reg.sp Reg.sp (-8));
    e (st Reg.sp Reg.ra 0);
    (* Both operands integers: either the caller dispatches here always
       (Section 6.2.2 dispatch-first ablation), in which case the plain
       result is returned, or the inline path overflowed, in which case
       the validity check below fails — that is the (unimplemented)
       bignum path, a run-time error here. *)
    let some_box = Emit.fresh ctx "gbox" in
    Emit.int_test ctx ~src_kind:Annot.Arith_op ~sense:`Is_not Reg.a0
      ~scratch:Reg.k0 some_box;
    Emit.int_test ctx ~src_kind:Annot.Arith_op ~sense:`Is_not Reg.a1
      ~scratch:Reg.k0 some_box;
    e (Insn.Alu (op, Reg.v0, Reg.a0, Reg.a1));
    Emit.overflow_check ~subtraction:(op = Insn.Sub) ctx ~result:Reg.v0
      ~op_a:Reg.a0 ~op_b:Reg.a1 ~scratch:Reg.k0 ~fail:L.l_err_arith;
    e (ld Reg.ra Reg.sp 0);
    e (addi Reg.sp Reg.sp 8);
    e (Insn.Jr Reg.ra);
    Emit.label ctx some_box;
    unbox ~reg:Reg.a0 ~dst:Reg.k1 ~scratch:Reg.k0;
    unbox ~reg:Reg.a1 ~dst:Reg.k2 ~scratch:Reg.k0;
    (* Integer items add/sub directly in both encodings; the result must
       still be a representable integer. *)
    e (Insn.Alu (op, Reg.k0, Reg.k1, Reg.k2));
    Emit.overflow_check ~subtraction:(op = Insn.Sub) ctx ~result:Reg.k0
      ~op_a:Reg.k1 ~op_b:Reg.k2 ~scratch:Reg.v1 ~fail:L.l_err_arith;
    e (Insn.Mv (Reg.a0, Reg.k0));
    e (Insn.Jal L.l_makebox);
    e (ld Reg.ra Reg.sp 0);
    e (addi Reg.sp Reg.sp 8);
    e (Insn.Jr Reg.ra)
  in
  body ~name:L.l_gadd_entry ~op:Insn.Add;
  body ~name:L.l_gsub_entry ~op:Insn.Sub;
  (* Trap entries (hardware generic arithmetic, Table 2 row 4). *)
  let trap_entry ~name ~target =
    Emit.label ctx name;
    e (addi Reg.sp Reg.sp (-8));
    e (st Reg.sp Reg.ra 0);
    e (Insn.Mv (Reg.a0, Reg.tr0));
    e (Insn.Mv (Reg.a1, Reg.tr1));
    e (Insn.Jal target);
    e (ld Reg.ra Reg.sp 0);
    e (addi Reg.sp Reg.sp 8);
    e (Insn.Settd Reg.v0);
    e Insn.Rett
  in
  trap_entry ~name:L.l_gadd_trap ~target:L.l_gadd_entry;
  trap_entry ~name:L.l_gsub_trap ~target:L.l_gsub_entry;
  (* Multiplicative fallbacks: integer operands are handled (needed by
     the dispatch-first ablation of Section 6.2.2); boxed multiplication
     is outside this system's scope and aborts. *)
  let mul_body ~name ~op =
    Emit.label ctx name;
    Emit.int_test ~hint:Insn.Unlikely ctx ~src_kind:Annot.Arith_op
      ~sense:`Is_not Reg.a0 ~scratch:Reg.k0 L.l_err_arith;
    Emit.int_test ~hint:Insn.Unlikely ctx ~src_kind:Annot.Arith_op
      ~sense:`Is_not Reg.a1 ~scratch:Reg.k0 L.l_err_arith;
    (if op = Insn.Mul then begin
       if Scheme.is_low scheme then begin
         e (srai Reg.k0 Reg.a0 2);
         e (Insn.Alu (Insn.Mul, Reg.v0, Reg.k0, Reg.a1))
       end
       else e (Insn.Alu (Insn.Mul, Reg.v0, Reg.a0, Reg.a1));
       Emit.mul_overflow_check ctx ~result:Reg.v0
         ~val_a:(if Scheme.is_low scheme then Reg.k0 else Reg.a0)
         ~item_b:Reg.a1 ~scratch:Reg.k1 ~fail:L.l_err_arith
     end
     else begin
       Emit.branch ~annot:ga ~hint:Insn.Unlikely ctx Insn.Eq Reg.a1 Reg.zero
         L.l_err_arith;
       if Scheme.is_low scheme then begin
         e (srai Reg.k0 Reg.a0 2);
         e (srai Reg.k1 Reg.a1 2);
         e (Insn.Alu (op, Reg.v0, Reg.k0, Reg.k1));
         e (slli Reg.v0 Reg.v0 2)
       end
       else e (Insn.Alu (op, Reg.v0, Reg.a0, Reg.a1))
     end);
    e (Insn.Jr Reg.ra)
  in
  mul_body ~name:L.l_gmul_entry ~op:Insn.Mul;
  mul_body ~name:L.l_gdiv_entry ~op:Insn.Div;
  mul_body ~name:L.l_grem_entry ~op:Insn.Rem

(* --- The copying collector. --- *)

(* gc$fwd: a0 = item -> v0 = forwarded item.
   Preserves k0..k3, t0, t1, t2, a0; clobbers v1, k4, t3, t4, a1.
   Register roles during collection (set up by rt$gc):
     k0 = Cheney scan pointer     k1 = free pointer (to-space)
     k2 = from-space base         k3 = from-space end (old hp)
     t2 = to-space base *)
let emit_fwd ctx =
  let scheme = ctx.Emit.scheme in
  let e ?(a = g) i = Emit.emit ~annot:a ctx i in
  let fwd_ret = "gc$fwd$ret" in
  (* Under Low2 the two tag bits are invisible to the memory system and
     negligible for the range comparisons, so the collector never masks;
     Low3 must clear bit 2, and the high-tag schemes must clear the tag
     field (honest per-scheme costs, as in a PSL-compiled collector). *)
  let address_of ~item ~dst =
    if scheme.Scheme.layout = Scheme.Low2 then item
    else begin
      Emit.emit ~annot:(Annot.make Annot.Remove) ctx
        (Insn.Alu (Insn.And, dst, item, Reg.rmask));
      dst
    end
  in
  Emit.label ctx "gc$fwd";
  e (Insn.Mv (Reg.v0, Reg.a0));
  (* Immediates pass through. *)
  Emit.int_test ctx ~src_kind:Annot.Other_op ~sense:`Is Reg.a0 ~scratch:Reg.k4
    fwd_ret;
  (* Raw address; not from-space -> unchanged. *)
  let addr = address_of ~item:Reg.a0 ~dst:Reg.v1 in
  Emit.branch ~annot:g ctx Insn.Lt addr Reg.k2 fwd_ret;
  Emit.branch ~annot:g ctx Insn.Ge addr Reg.k3 fwd_ret;
  (* Already forwarded?  The first word of a forwarded object is an item
     pointing into to-space; no live item can otherwise point there. *)
  e (ld Reg.k4 addr 0);
  let copy = Emit.fresh ctx "gccopy" in
  Emit.int_test ctx ~src_kind:Annot.Other_op ~sense:`Is Reg.k4
    ~scratch:Reg.t3 copy;
  let fwd_addr = address_of ~item:Reg.k4 ~dst:Reg.t3 in
  Emit.branch ~annot:g ctx Insn.Lt fwd_addr Reg.t2 copy;
  Emit.branch ~annot:g ctx Insn.Ge fwd_addr Reg.k1 copy;
  e (Insn.Mv (Reg.v0, Reg.k4));
  e (Insn.Jr Reg.ra);
  Emit.label ctx copy;
  (* Size in bytes by type. *)
  Emit.extract_tag ctx ~src_kind:Annot.Other_op Reg.a0 ~dst:Reg.t3;
  let vec = Emit.fresh ctx "gcvec" in
  let sized = Emit.fresh ctx "gcsized" in
  (match scheme.Scheme.layout with
  | Scheme.Low2 ->
      (* Escape tag: vector or boxnum, discriminated by subtype. *)
      let escape = Emit.fresh ctx "gcesc" in
      Emit.branch_i ~annot:g ctx Insn.Eq Reg.t3 3 escape;
      (* Pair. *)
      e (Insn.Li (Reg.t4, 8));
      e (Insn.J sized);
      Emit.label ctx escape;
      e (ld Reg.t4 addr L.obj_off_subtype);
      Emit.branch_i ~annot:g ctx Insn.Eq Reg.t4 Scheme.subtype_vector vec;
      e (Insn.Li (Reg.t4, 8));
      e (Insn.J sized)
  | Scheme.Low3 | Scheme.High5 | Scheme.High6 ->
      Emit.branch_i ~annot:g ctx Insn.Eq Reg.t3
        (scheme.Scheme.tag Scheme.Vector) vec;
      e (Insn.Li (Reg.t4, 8));
      e (Insn.J sized));
  Emit.label ctx vec;
  e (ld Reg.t4 addr L.obj_off_length);
  if Scheme.is_low scheme then e (addi Reg.t4 Reg.t4 8)
  else begin
    e (slli Reg.t4 Reg.t4 2);
    e (addi Reg.t4 Reg.t4 8)
  end;
  if scheme.Scheme.obj_align = 8 then begin
    e (addi Reg.t4 Reg.t4 7);
    e (andi Reg.t4 Reg.t4 (-8))
  end;
  Emit.label ctx sized;
  (* Copy [v1, v1+t4) to [k1, ...); a1 remembers the new base. *)
  e (Insn.Mv (Reg.a1, Reg.k1));
  e (Insn.Mv (Reg.t3, addr));
  let cloop = Emit.fresh ctx "gccl" in
  let cdone = Emit.fresh ctx "gccd" in
  Emit.label ctx cloop;
  Emit.branch_i ~annot:g ctx Insn.Le Reg.t4 0 cdone;
  e (ld Reg.k4 Reg.t3 0);
  e (st Reg.k1 Reg.k4 0);
  e (addi Reg.t3 Reg.t3 4);
  e (addi Reg.k1 Reg.k1 4);
  e (addi Reg.t4 Reg.t4 (-4));
  Emit.emit ~annot:g ctx (Insn.J cloop);
  Emit.label ctx cdone;
  (* New item = new base + original tag bits; plant the forwarding item. *)
  (if scheme.Scheme.layout = Scheme.Low2 then
     Emit.emit ~annot:(Annot.make (Annot.Extract Annot.Other_op)) ctx
       (andi Reg.k4 Reg.a0 3)
   else Emit.emit ~annot:g ctx (sub Reg.k4 Reg.a0 addr));
  Emit.emit ~annot:(Annot.make Annot.Insert) ctx (add Reg.v0 Reg.a1 Reg.k4);
  e (st addr Reg.v0 0);
  Emit.label ctx fwd_ret;
  e (Insn.Jr Reg.ra)

let emit_gc ctx =
  let e ?(a = g) i = Emit.emit ~annot:a ctx i in
  Emit.label ctx L.l_gc_entry;
  (* Save return address and all root registers. *)
  la_st ~annot:g ctx ~scratch:Reg.k0 ~src:Reg.ra L.l_gc_ra;
  e (Insn.La (Reg.k0, L.l_gc_regsave));
  List.iteri
    (fun i r -> e (st Reg.k0 r (4 * i)))
    L.gc_saved_regs;
  (* From-space = [gc$cur], end = hp.  To-space = the other semispace. *)
  la_ld ~annot:g ctx ~dst:Reg.k2 L.l_gc_cur;
  e (Insn.Mv (Reg.k3, Reg.hp));
  la_ld ~annot:g ctx ~dst:Reg.k0 L.l_heap_a;
  let use_b = Emit.fresh ctx "gcub" in
  let flipped = Emit.fresh ctx "gcfl" in
  Emit.branch ~annot:g ctx Insn.Eq Reg.k2 Reg.k0 use_b;
  e (Insn.Mv (Reg.t2, Reg.k0));
  e (Insn.J flipped);
  Emit.label ctx use_b;
  la_ld ~annot:g ctx ~dst:Reg.t2 L.l_heap_b;
  Emit.label ctx flipped;
  e (Insn.Mv (Reg.k1, Reg.t2));
  e (Insn.Mv (Reg.k0, Reg.t2));
  (* Forward a root area [t0, t1). *)
  let scan_area () =
    let loop = Emit.fresh ctx "gcra" in
    let done_ = Emit.fresh ctx "gcrd" in
    Emit.label ctx loop;
    Emit.branch ~annot:g ctx Insn.Ge Reg.t0 Reg.t1 done_;
    e (ld Reg.a0 Reg.t0 0);
    e (Insn.Jal "gc$fwd");
    e (st Reg.t0 Reg.v0 0);
    e (addi Reg.t0 Reg.t0 4);
    Emit.emit ~annot:g ctx (Insn.J loop);
    Emit.label ctx done_
  in
  (* 1. The register save area. *)
  e (Insn.La (Reg.t0, L.l_gc_regsave));
  e (addi Reg.t1 Reg.t0 (4 * L.gc_regsave_words));
  scan_area ();
  (* 2. The stack. *)
  e (Insn.Mv (Reg.t0, Reg.sp));
  la_ld ~annot:g ctx ~dst:Reg.t1 L.l_stack_top;
  scan_area ();
  (* 3. Symbol value and property cells. *)
  e (Insn.Mv (Reg.t0, Reg.stb));
  la_ld ~annot:g ctx ~dst:Reg.t1 L.l_symtab_count;
  e (slli Reg.t1 Reg.t1 4);
  e (add Reg.t1 Reg.t0 Reg.t1);
  let sloop = Emit.fresh ctx "gcsy" in
  let sdone = Emit.fresh ctx "gcsd" in
  Emit.label ctx sloop;
  Emit.branch ~annot:g ctx Insn.Ge Reg.t0 Reg.t1 sdone;
  e (ld Reg.a0 Reg.t0 L.sym_off_value);
  e (Insn.Jal "gc$fwd");
  e (st Reg.t0 Reg.v0 L.sym_off_value);
  e (ld Reg.a0 Reg.t0 L.sym_off_plist);
  e (Insn.Jal "gc$fwd");
  e (st Reg.t0 Reg.v0 L.sym_off_plist);
  e (addi Reg.t0 Reg.t0 L.sym_cell_size);
  Emit.emit ~annot:g ctx (Insn.J sloop);
  Emit.label ctx sdone;
  (* 4. Cheney scan of to-space, word-granular (every to-space word is a
     valid item: headers are small integers and box payloads are encoded
     integers). *)
  let cloop = Emit.fresh ctx "gcch" in
  let cdone = Emit.fresh ctx "gcche" in
  Emit.label ctx cloop;
  Emit.branch ~annot:g ctx Insn.Ge Reg.k0 Reg.k1 cdone;
  e (ld Reg.a0 Reg.k0 0);
  e (Insn.Jal "gc$fwd");
  e (st Reg.k0 Reg.v0 0);
  e (addi Reg.k0 Reg.k0 4);
  Emit.emit ~annot:g ctx (Insn.J cloop);
  Emit.label ctx cdone;
  (* Commit the flip: gc$cur = to-space, hp = free, hl = limit. *)
  la_st ~annot:g ctx ~scratch:Reg.k4 ~src:Reg.t2 L.l_gc_cur;
  e (Insn.Mv (Reg.hp, Reg.k1));
  la_ld ~annot:g ctx ~dst:Reg.k4 L.l_semi_bytes;
  e (add Reg.hl Reg.t2 Reg.k4);
  e (addi Reg.hl Reg.hl (-L.heap_slack));
  (* If the collection recovered less than one cons cell of space, the
     retrying allocator would loop forever: give up instead. *)
  e (addi Reg.k4 Reg.hp 8);
  Emit.branch ~annot:g ~hint:Insn.Unlikely ctx Insn.Gt Reg.k4 Reg.hl
    L.l_err_heap;
  (* Counters. *)
  e (Insn.La (Reg.k4, L.l_gc_count));
  e (ld Reg.k3 Reg.k4 0);
  e (addi Reg.k3 Reg.k3 1);
  e (st Reg.k4 Reg.k3 0);
  e (Insn.La (Reg.k4, L.l_gc_copied));
  e (ld Reg.k3 Reg.k4 0);
  e (sub Reg.k2 Reg.k1 Reg.t2);
  e (add Reg.k3 Reg.k3 Reg.k2);
  e (st Reg.k4 Reg.k3 0);
  (* Restore roots and return. *)
  e (Insn.La (Reg.k0, L.l_gc_regsave));
  List.iteri
    (fun i r -> e (ld r Reg.k0 (4 * i)))
    L.gc_saved_regs;
  la_ld ~annot:g ctx ~dst:Reg.ra L.l_gc_ra;
  e (Insn.Jr Reg.ra)

(* --- Startup. --- *)

(** The startup sequence must be the first thing assembled (the machine
    starts at code address 0): establish the register conventions, then
    call [f$main] and halt with its result in v0. *)
let emit_startup ctx ~main_label =
  let scheme = ctx.Emit.scheme in
  let e i = Emit.emit ctx i in
  e (Insn.Li (Reg.rmask, scheme.Scheme.data_mask));
  e (Insn.Li (Reg.rnil, Emit.nil_item scheme));
  e (Insn.La (Reg.stb, L.l_symtab));
  la_ld ctx ~dst:Reg.sp L.l_stack_top;
  la_ld ctx ~dst:Reg.hp "lay$hp_init";
  la_ld ctx ~dst:Reg.hl "lay$hl_init";
  if ctx.Emit.support.Support.preshifted_pair_tag && not (Scheme.is_low scheme)
  then
    e (Insn.Li (Reg.k5, scheme.Scheme.tag Scheme.Pair lsl scheme.Scheme.tag_shift));
  e (Insn.Jal main_label);
  e Insn.Halt

(* --- Static data owned by the runtime. --- *)

let emit_statics ctx =
  let b = ctx.Emit.b in
  let word l = Buf.word ~label:l b 0 in
  word L.l_stack_top;
  word L.l_heap_a;
  word L.l_heap_b;
  word L.l_semi_bytes;
  word "lay$hp_init";
  word "lay$hl_init";
  word L.l_gc_cur;
  word L.l_gc_ra;
  word L.l_gc_count;
  word L.l_gc_copied;
  Buf.space ~label:L.l_gc_regsave b L.gc_regsave_words

(** Emit all runtime routines (call after the user code, so that the
    startup sequence emitted by [emit_startup] stays at address 0). *)
let emit_routines ctx =
  emit_error_stubs ctx;
  emit_mkvect ctx;
  emit_makebox ctx;
  emit_generic_arith ctx;
  emit_fwd ctx;
  emit_gc ctx;
  emit_statics ctx
