(** Memory layout and label-name conventions shared by the code generator
    and the runtime routines.

    Data memory:
    {v
      0 .. 63        reserved (never a valid object address)
      64 ..          symbol table (16 bytes per symbol, 8-aligned)
                     runtime statics (GC register-save area, layout words)
                     quoted constants
      stack_base ..  the stack (grows down from stack_top = initial sp)
      heap_a ..      semispace A
      heap_b ..      semispace B
    v}

    The symbol table is emitted first, so its address is the constant
    {!symtab_base}; symbol items can then be built as compile-time
    constants.  Stack and heap bounds depend on the size of the static
    data, so they are computed by the loader and poked into the layout
    words before the program starts; the startup code loads them from
    there. *)

(* Symbol cells: [value; function; plist; name-id].  For symbols that
   name a compiled function, the name-id word also carries the
   function's arity in its high bits (the [funcall] path checks it
   against the call site's argument count); the GC never reads this
   word, and the host decoder recovers the index from the cell address,
   so the packing is invisible everywhere else. *)
let symtab_base = 64
let sym_cell_size = 16
let sym_off_value = 0
let sym_off_function = 4
let sym_off_plist = 8
let sym_off_name = 12
let sym_arity_shift = 24
let sym_addr idx = symtab_base + (idx * sym_cell_size)

(* Object headers (vectors, boxed numbers): [subtype; length-or-value]. *)
let obj_off_subtype = 0
let obj_off_length = 4
let obj_off_elems = 8

(* Well-known symbol indices (interned first, in this order). *)
let sym_nil = 0
let sym_t = 1

(* Labels. *)
let l_symtab = "symtab"
let l_symtab_count = "symtab$count"
let l_stack_top = "lay$stack_top"
let l_heap_a = "lay$heap_a"
let l_heap_b = "lay$heap_b"
let l_semi_bytes = "lay$semi_bytes"
let l_gc_cur = "gc$cur" (* base of the current (from) semispace *)
let l_gc_ra = "gc$ra"
let l_gc_regsave = "gc$regsave"
let l_gc_count = "gc$count"
let l_gc_copied = "gc$copied" (* bytes copied, cumulative *)
let l_gadd_entry = "rt$gadd"
let l_gsub_entry = "rt$gsub"
let l_gadd_trap = "rt$gadd_trap"
let l_gsub_trap = "rt$gsub_trap"
let l_gmul_entry = "rt$gmul"
let l_gdiv_entry = "rt$gdiv"
let l_grem_entry = "rt$grem"
let l_gc_entry = "rt$gc"
let l_mkvect = "rt$mkvect"
let l_makebox = "rt$makebox"
let l_err_type = "rt$err_type"
let l_err_bounds = "rt$err_bounds"
let l_err_undef = "rt$err_undef"
let l_err_heap = "rt$err_heap"
let l_err_arith = "rt$err_arith"
let l_err_arity = "rt$err_arity"
let fn_label name = "f$" ^ name

(* Abort codes (the argument of [Trap]); the machine adds
   [Machine.err_user_base]. *)
let trap_type_error = 1
let trap_bounds_error = 2
let trap_undefined_function = 3
let trap_heap_overflow = 4
let trap_arith_error = 5
(* 6 is the user-error trap, emitted directly by the code generator. *)
let trap_arity_error = 7

(* Registers saved into the GC register-save area (tagged-value roots).
   [rnil] and [k5] only ever hold static items, so they need no update,
   and k0..k4 are GC scratch.  [v0] and [v1] are deliberately NOT roots:
   they are transient scratch that may hold non-item values (e.g. an
   indexed address that still carries a tag), and the code generator
   guarantees they are never live across a potential collection point. *)
let gc_saved_regs =
  let module Reg = Tagsim_mipsx.Reg in
  [ Reg.a0; Reg.a1; Reg.a2; Reg.a3 ]
  @ List.init Reg.n_temps Reg.temp
  @ [ Reg.tr0; Reg.tr1 ]

let gc_regsave_words = List.length gc_saved_regs

(* Red zone below the heap limit, so that speculative stores from the
   allocation fast path never corrupt anything. *)
let heap_slack = 32

(** Run-time sizing, decided per program run. *)
type sizes = { stack_bytes : int; semi_bytes : int }

let default_sizes = { stack_bytes = 1 lsl 18; semi_bytes = 1 lsl 19 }

(** Compute the memory map given where static data ends. *)
type map = {
  stack_base : int;
  stack_top : int;
  heap_a : int;
  heap_b : int;
  semi_bytes : int;
}

let compute_map ~data_end ~sizes ~mem_bytes =
  let align8 a = (a + 7) land lnot 7 in
  let stack_base = align8 data_end in
  let stack_top = stack_base + sizes.stack_bytes in
  let heap_a = align8 stack_top in
  let heap_b = heap_a + sizes.semi_bytes in
  let heap_end = heap_b + sizes.semi_bytes in
  if heap_end > mem_bytes then
    invalid_arg
      (Printf.sprintf "memory map overflow: need %d bytes, have %d" heap_end
         mem_bytes);
  { stack_base; stack_top; heap_a; heap_b; semi_bytes = sizes.semi_bytes }
