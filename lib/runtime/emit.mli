(** Emission helpers for tag operations: inserting, removing, extracting
    and checking tags, in whichever way the selected tag scheme and
    hardware support allow.  Each helper emits the exact instruction
    sequence the configuration calls for and attaches the annotation the
    statistics machinery needs — everything the paper measures flows
    through here. *)

module Insn := Tagsim_mipsx.Insn
module Annot := Tagsim_mipsx.Annot
module Reg := Tagsim_mipsx.Reg
module Buf := Tagsim_asm.Buf
module Scheme := Tagsim_tags.Scheme

type ctx = { b : Buf.t; scheme : Scheme.t; support : Tagsim_tags.Support.t }

val emit : ?annot:Annot.t -> ctx -> string Insn.t -> unit
val label : ctx -> string -> unit
val fresh : ctx -> string -> string

(** {1 Branch wrappers} *)

val branch :
  ?annot:Annot.t ->
  ?squash:bool ->
  ?hint:Insn.hint ->
  ctx ->
  Insn.cond ->
  Reg.t ->
  Reg.t ->
  string ->
  unit

val branch_i :
  ?annot:Annot.t ->
  ?squash:bool ->
  ?hint:Insn.hint ->
  ctx ->
  Insn.cond ->
  Reg.t ->
  int ->
  string ->
  unit

val branch_tag :
  ?annot:Annot.t ->
  ?squash:bool ->
  ?hint:Insn.hint ->
  ctx ->
  neg:bool ->
  Reg.t ->
  int ->
  string ->
  unit

(** {1 Constant items} *)

val sym_item : Scheme.t -> int -> int
val nil_item : Scheme.t -> int
val t_item : Scheme.t -> int

(** {1 Tag operations} *)

(** Build a tagged item from a raw address: two cycles on the high-tag
    schemes, one on the low-tag schemes, one with a preshifted pair tag
    (Section 3.1). *)
val insert_tag :
  ?checking:bool ->
  ctx ->
  ty:Scheme.ty ->
  src:Reg.t ->
  dst:Reg.t ->
  scratch:Reg.t ->
  unit

val extract_tag :
  ?checking:bool -> ctx -> src_kind:Annot.source -> Reg.t -> dst:Reg.t -> unit

(** Branch according to whether a register's tag matches a type; one
    instruction under tag-branch hardware, extraction plus a
    compare-and-branch otherwise.  Low2's escape-tagged types cost an
    extra header compare. *)
val check_type :
  ?checking:bool ->
  ?hint:Insn.hint ->
  ctx ->
  src_kind:Annot.source ->
  ty:Scheme.ty ->
  sense:[ `Is | `Is_not ] ->
  Reg.t ->
  scratch:Reg.t ->
  string ->
  unit

(** Integer test: 3 cycles on high-tag schemes (method 2 of Section 4.1),
    2 on low-tag schemes. *)
val int_test :
  ?checking:bool ->
  ?hint:Insn.hint ->
  ctx ->
  src_kind:Annot.source ->
  sense:[ `Is | `Is_not ] ->
  Reg.t ->
  scratch:Reg.t ->
  string ->
  unit

(** Overflow check on the result of an integer add/sub.  [resumable]
    marks the failure target as a slow path the scheduler must treat
    conservatively. *)
val overflow_check :
  ?checking:bool ->
  ?subtraction:bool ->
  ?resumable:bool ->
  ctx ->
  result:Reg.t ->
  op_a:Reg.t ->
  op_b:Reg.t ->
  scratch:Reg.t ->
  fail:string ->
  unit

(** Branch to [fail] unless [result] is a valid integer item (the High6
    generic-add check of Section 4.2; also used for multiply). *)
val validity_check :
  ?checking:bool -> ctx -> result:Reg.t -> scratch:Reg.t -> fail:string -> unit

(** Overflow check on an integer multiply's product: verifies the product
    by dividing it back (there is no high-word multiply, and a wrapped
    product can land back on a valid item bit-pattern).  [val_a] holds
    the untagged multiplicand; on low-tag schemes the quotient
    overwrites [result] and the product is recomputed on success. *)
val mul_overflow_check :
  ?checking:bool ->
  ?resumable:bool ->
  ctx ->
  result:Reg.t ->
  val_a:Reg.t ->
  item_b:Reg.t ->
  scratch:Reg.t ->
  fail:string ->
  unit

(** {1 Memory access to tagged objects} *)

type access = { mode : Insn.mem_mode; base : Reg.t; corr : int }

(** Prepare to address into the object a tagged item points to: a
    parallel-checked access, a tag-ignoring access, a low-tag access
    (offset correction only), or a plain high-tag access with one
    masking instruction into [scratch]. *)
val object_access :
  ?checking:bool ->
  ctx ->
  ty:Scheme.ty ->
  parallel:bool ->
  Reg.t ->
  scratch:Reg.t ->
  access

val load : ?annot:Annot.t -> ctx -> access -> dst:Reg.t -> off:int -> unit
val store : ?annot:Annot.t -> ctx -> access -> src:Reg.t -> off:int -> unit

(** Does the configuration check this object type in parallel with the
    memory access (Table 2 rows 5/6)?  Only meaningful with run-time
    checking on. *)
val parallel_covers : ctx -> Scheme.ty -> bool
