(** Two-pass assembler: schedules delay slots, resolves labels and
    produces a loadable image.  Code and data live in separate address
    spaces (code addresses are instruction indices, data addresses byte
    addresses; all data accesses are word-aligned). *)

module Insn := Tagsim_mipsx.Insn
module Annot := Tagsim_mipsx.Annot

exception Error of string

type entry = { insn : int Insn.t; annot : Annot.t; speculative : bool }

type t = {
  code : entry array;
  code_symbols : (string, int) Hashtbl.t;
  data_symbols : (string, int) Hashtbl.t; (* byte addresses *)
  data_words : int array; (* initial data image, starting at address 0 *)
  data_end : int; (* first free byte address after static data *)
  source : Buf.item list; (* scheduled symbolic program, for dumps *)
}

(** The first data address handed out; lower addresses are reserved so
    that 0 is never a valid object address. *)
val data_base : int

val assemble : ?sched:Sched.config -> Buf.t -> t

(** Assemble an {e already-scheduled} item stream and data directive
    list (no delay-slot pass is run): the linker's entry point for
    laying out concatenated per-unit fragments. *)
val of_items : Buf.item list -> (string option * Buf.datum) list -> t

(** Is a label compiler- or linker-generated (a ["$"]-digits fresh
    suffix, e.g. ["qp$3"] or a link-renamed ["u2$qp$3"]) rather than a
    named export like ["f$main"] or ["symtab$count"]? *)
val is_generated_label : string -> bool

(** Byte-identity: same resolved code, same initial data image and
    layout bound, and the same address for every named (non-generated)
    symbol.  Generated label {e names} may differ (e.g. monolithic vs
    linked assembly) without affecting any resolved word. *)
val equal : t -> t -> bool

(** Address of a code label; raises {!Error} if unknown. *)
val code_address : t -> string -> int

(** Byte address of a data label; raises {!Error} if unknown. *)
val data_address : t -> string -> int

val size_in_words : t -> int
val pp : Format.formatter -> t -> unit
