(** Incremental linking of relocatable objects: per-unit, already
    delay-slot-scheduled instruction streams with their static data,
    local (fresh) labels renamed behind a fragment-unique prefix by the
    producer, exports shared, and external references patched by a
    final assembly pass.  Linked output is byte-identical to monolithic
    assembly of the same units because every unit begins with a label,
    which is a scheduler barrier.  See the implementation header for
    the full argument. *)

type fragment = {
  f_code : Buf.item list; (* scheduled: every branch carries its slots *)
  f_data : (string option * Buf.datum) list;
  f_locals : string list; (* defined labels subject to link-time renaming *)
}

(** Is a label unit-local (compiler-generated [prefix$N]) rather than a
    named export? *)
val is_local_label : string -> bool

(** Wrap an already-scheduled stream as a fragment (locals computed). *)
val of_items :
  Buf.item list -> (string option * Buf.datum) list -> fragment

(** Delay-slot-schedule a buffer and wrap it as a fragment. *)
val fragment_of_buf : ?sched:Sched.config -> Buf.t -> fragment

(** The relocation list: labels referenced but not defined, sorted. *)
val externals : fragment -> string list

(** Rename the fragment's locals to ["<prefix>$<local>"] (definitions
    and references alike); exports and externals pass through.  Locals
    of renamed fragments are unique across a link whenever their
    prefixes are — the object cache prefixes with the object's content
    key — and the renamed names keep the generated-label shape. *)
val rename : prefix:string -> fragment -> fragment

(** Lay fragments out in order (code and data concatenated
    independently), resolve every symbol and produce the loadable
    image.  Locals must already be unique across the fragments
    ({!rename}); collisions, duplicate exports and unresolved
    relocations raise {!Image.Error}. *)
val link : fragment list -> Image.t
