(** Two-pass assembler: resolves labels and produces a loadable image.

    Code and data live in separate address spaces (Harvard style, like an
    instruction-level simulator that only counts cycles): code addresses are
    instruction indices, data addresses are byte addresses.  All data
    accesses are word-aligned; the low two address bits are ignored by the
    memory system, which is exactly the property the low-tag schemes of
    Section 5.2 exploit. *)

module Insn = Tagsim_mipsx.Insn
module Annot = Tagsim_mipsx.Annot

exception Error of string

let errorf fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type entry = { insn : int Insn.t; annot : Annot.t; speculative : bool }

type t = {
  code : entry array;
  code_symbols : (string, int) Hashtbl.t;
  data_symbols : (string, int) Hashtbl.t; (* byte addresses *)
  data_words : int array; (* initial data image, starting at address 0 *)
  data_end : int; (* first free byte address after static data *)
  source : Buf.item list; (* scheduled symbolic program, for dumps *)
}

(* The first words of data memory are reserved so that address 0 is never a
   valid object address. *)
let data_base = 64

(* Assemble an already-scheduled item stream and data directive list.
   This is the linker's entry point: fragments are delay-slot-scheduled
   per unit, concatenated, and must NOT be re-scheduled here (that would
   add slots after slots). *)
let of_items (items : Buf.item list)
    (data : (string option * Buf.datum) list) : t =
  (* Pass 1a: code labels. *)
  let code_symbols = Hashtbl.create 256 in
  let n_insns =
    List.fold_left
      (fun idx item ->
        match item with
        | Buf.I _ -> idx + 1
        | Buf.L l ->
            if Hashtbl.mem code_symbols l then errorf "duplicate label %s" l;
            Hashtbl.replace code_symbols l idx;
            idx
        | Buf.C _ -> idx)
      0 items
  in
  (* Pass 1b: data labels and layout. *)
  let data_symbols = Hashtbl.create 256 in
  let layout = ref [] in
  let addr = ref data_base in
  List.iter
    (fun (lbl, datum) ->
      (match datum with
      | Buf.Align bytes ->
          if bytes <= 0 || bytes land (bytes - 1) <> 0 then
            errorf "bad alignment %d" bytes;
          addr := (!addr + bytes - 1) land lnot (bytes - 1)
      | Buf.Word _ | Buf.Addr _ | Buf.Tagged _ | Buf.Space _ -> ());
      (match lbl with
      | Some l ->
          if Hashtbl.mem data_symbols l || Hashtbl.mem code_symbols l then
            errorf "duplicate label %s" l;
          Hashtbl.replace data_symbols l !addr
      | None -> ());
      match datum with
      | Buf.Word w ->
          layout := (!addr, `Word w) :: !layout;
          addr := !addr + 4
      | Buf.Addr l ->
          layout := (!addr, `Addr l) :: !layout;
          addr := !addr + 4
      | Buf.Tagged (l, f) ->
          layout := (!addr, `Tagged (l, f)) :: !layout;
          addr := !addr + 4
      | Buf.Space n -> addr := !addr + (4 * n)
      | Buf.Align _ -> ())
    data;
  let data_end = !addr in
  let resolve_any l =
    match Hashtbl.find_opt data_symbols l with
    | Some a -> a
    | None -> (
        match Hashtbl.find_opt code_symbols l with
        | Some a -> a
        | None -> errorf "undefined label %s" l)
  in
  let resolve_code l =
    match Hashtbl.find_opt code_symbols l with
    | Some a -> a
    | None -> errorf "undefined code label %s" l
  in
  (* Pass 2: resolve instructions. *)
  let code = Array.make n_insns { insn = Insn.Nop; annot = Annot.plain;
                                  speculative = false } in
  let idx = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Buf.I { insn; annot; speculative } ->
          let resolved =
            match insn with
            | Insn.B _ | Insn.Btag _ | Insn.J _ | Insn.Jal _ ->
                Insn.map_label resolve_code insn
            | _ -> Insn.map_label resolve_any insn
          in
          code.(!idx) <- { insn = resolved; annot; speculative };
          incr idx
      | Buf.L _ | Buf.C _ -> ())
    items;
  (* Pass 2b: fill the initial data image. *)
  let data_words = Array.make ((data_end + 3) / 4) 0 in
  List.iter
    (fun (a, v) ->
      let w =
        match v with
        | `Word w -> w
        | `Addr l -> resolve_any l
        | `Tagged (l, t) -> t.Buf.apply (resolve_any l)
      in
      data_words.(a / 4) <- w land Tagsim_mipsx.Word.mask)
    !layout;
  { code; code_symbols; data_symbols; data_words; data_end; source = items }

let assemble ?(sched = Sched.default) (buf : Buf.t) : t =
  let fresh = Buf.fresh buf in
  let items = Sched.run ~config:sched ~fresh (Buf.items buf) in
  of_items items (Buf.data_items buf)

(* Byte-identity of two images: same resolved code entries, same initial
   data image, same layout bound, and the same addresses for every named
   (non-generated) symbol.  Generated labels — a ["$"]-suffix-digits fresh
   label, possibly behind a link-time ["u<k>$"] prefix — may differ in
   name between a monolithically assembled image and a linked one without
   affecting a single resolved word, so they are excluded from the symbol
   comparison. *)
let is_generated_label l =
  match String.rindex_opt l '$' with
  | None -> false
  | Some i ->
      let n = String.length l in
      i + 1 < n
      &&
      let rec digits j = j >= n || ('0' <= l.[j] && l.[j] <= '9' && digits (j + 1)) in
      digits (i + 1)

let equal a b =
  let named_symbols tbl =
    Hashtbl.fold
      (fun l addr acc -> if is_generated_label l then acc else (l, addr) :: acc)
      tbl []
    |> List.sort compare
  in
  a.code = b.code && a.data_words = b.data_words && a.data_end = b.data_end
  && named_symbols a.code_symbols = named_symbols b.code_symbols
  && named_symbols a.data_symbols = named_symbols b.data_symbols

let code_address t l =
  match Hashtbl.find_opt t.code_symbols l with
  | Some a -> a
  | None -> errorf "unknown code symbol %s" l

let data_address t l =
  match Hashtbl.find_opt t.data_symbols l with
  | Some a -> a
  | None -> errorf "unknown data symbol %s" l

let size_in_words t = Array.length t.code

let pp ppf t =
  Fmt.(list ~sep:(any "@\n") Buf.pp_item) ppf t.source
