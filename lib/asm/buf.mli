(** Mutable assembly buffer: the DSL in which the compiler and the
    runtime emit code and static data. *)

module Insn := Tagsim_mipsx.Insn
module Annot := Tagsim_mipsx.Annot

type slot = {
  insn : string Insn.t;
  annot : Annot.t;
  speculative : bool;
      (** placed in a delay slot ahead of a guard; memory faults are
          ignored by the simulator *)
}

type item = I of slot | L of string | C of string (* comment, for dumps *)

(** The transform a [Tagged] datum applies to a resolved address, plus
    the serialisable description it was built from ([ty_code] is a
    {!Tagsim_tags.Scheme.ty_code}): relocatable-object serialisation
    stores the code and rebuilds [apply] against the object's scheme. *)
type tagger = { ty_code : int; apply : int -> int }

type datum =
  | Word of int
  | Addr of string (* resolved address of a label *)
  | Tagged of string * tagger (* address of a label, transformed *)
  | Space of int (* n zero words *)
  | Align of int (* align to n bytes *)

type t

val create : unit -> t

(** Append an instruction. *)
val emit : ?annot:Annot.t -> ?speculative:bool -> t -> string Insn.t -> unit

(** Place a label at the current position. *)
val label : t -> string -> unit

val comment : t -> string -> unit

(** A fresh label with the given prefix, unique within this buffer. *)
val fresh : t -> string -> string

(** {1 Data directives}  [?label] names the datum emitted. *)

val data : ?label:string -> t -> datum -> unit
val word : ?label:string -> t -> int -> unit
val space : ?label:string -> t -> int -> unit
val align : t -> int -> unit

(** {1 Access} *)

val items : t -> item list
val data_items : t -> (string option * datum) list

(** Append the contents of the second buffer after the first (used to
    link compiler output with the runtime). *)
val append : t -> t -> unit

val pp_item : Format.formatter -> item -> unit
val pp : Format.formatter -> t -> unit
