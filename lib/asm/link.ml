(** Incremental linking of relocatable objects.

    A {!fragment} is the unit of incremental compilation: a per-unit
    (one Lisp function, the runtime routine group, the startup stub, the
    symbol-table block) instruction stream that has already been
    delay-slot scheduled, together with its static data directives.
    Per-unit scheduling is equivalent to whole-program scheduling
    because every unit begins with a label — a scheduler barrier — so
    neither hoisting, fall-through filling nor squash copying ever
    crosses a unit boundary.

    Labels defined by a fragment split into two classes:

    - {b locals}: compiler-generated fresh labels ([prefix$N], e.g.
      branch targets, quoted-constant cells, squash retargets).  Their
      names are only unique within the unit, so the producer must
      {!rename} them behind a fragment-unique prefix — the object cache
      uses the object's content key, making the renaming stable — before
      fragments meet in a {!link};
    - {b exports}: named labels ([f$main], [rt$gc], [lay$heap_a],
      [symtab$count], ...), left untouched and visible to every other
      fragment.

    Renaming at object-build time rather than at link time keeps the
    link itself a pure concatenate-and-assemble pass — the hot path of
    a warm-cache matrix run, where every unit is served from the object
    cache and only the link remains.

    References to labels a fragment does not define are its
    {b relocations}: they stay symbolic in the object and are patched by
    the final assembly pass of {!link}, which lays the fragments out in
    order (code and data independently concatenated) and resolves every
    symbol over the combined table. *)

module Insn = Tagsim_mipsx.Insn

type fragment = {
  f_code : Buf.item list; (* scheduled: every branch carries its slots *)
  f_data : (string option * Buf.datum) list;
  f_locals : string list; (* defined labels subject to link-time renaming *)
}

(* Fresh labels have the shape [prefix$N]; everything else is an export.
   (Shared with {!Image.is_generated_label}.) *)
let is_local_label = Image.is_generated_label

let defined_labels (code : Buf.item list)
    (data : (string option * Buf.datum) list) =
  let code_labels =
    List.filter_map (function Buf.L l -> Some l | _ -> None) code
  in
  let data_labels = List.filter_map fst data in
  code_labels @ data_labels

let of_items code data =
  {
    f_code = code;
    f_data = data;
    f_locals = List.filter is_local_label (defined_labels code data);
  }

(** Schedule a buffer's instruction stream and wrap it as a fragment. *)
let fragment_of_buf ?(sched = Sched.default) (buf : Buf.t) =
  let code =
    Sched.run ~config:sched ~fresh:(Buf.fresh buf) (Buf.items buf)
  in
  of_items code (Buf.data_items buf)

(* The relocation list: labels referenced but not defined. *)
let externals (f : fragment) =
  let defined = Hashtbl.create 16 in
  List.iter
    (fun l -> Hashtbl.replace defined l ())
    (defined_labels f.f_code f.f_data);
  let refs = Hashtbl.create 16 in
  let add l = if not (Hashtbl.mem defined l) then Hashtbl.replace refs l () in
  List.iter
    (function
      | Buf.I { insn; _ } -> ignore (Insn.map_label (fun l -> add l; l) insn)
      | Buf.L _ | Buf.C _ -> ())
    f.f_code;
  List.iter
    (fun (_, d) ->
      match d with
      | Buf.Addr l | Buf.Tagged (l, _) -> add l
      | Buf.Word _ | Buf.Space _ | Buf.Align _ -> ())
    f.f_data;
  Hashtbl.fold (fun l () acc -> l :: acc) refs [] |> List.sort compare

(** Rename a fragment's locals to ["<prefix>$<local>"]; exports and
    external references pass through untouched.  The result's locals
    are unique across fragments whenever the prefixes are, which is the
    precondition {!link} relies on (the renamed names keep the
    generated-label shape, so they stay invisible to
    {!Image.is_generated_label}-based image comparison, and stay
    locals if renamed again). *)
let rename ~prefix (f : fragment) =
  match f.f_locals with
  | [] -> f
  | locals ->
      let map = Hashtbl.create 16 in
      List.iter
        (fun l -> Hashtbl.replace map l (prefix ^ "$" ^ l))
        locals;
      let r l = match Hashtbl.find_opt map l with Some l' -> l' | None -> l in
      let code =
        List.map
          (function
            | Buf.I s -> Buf.I { s with Buf.insn = Insn.map_label r s.insn }
            | Buf.L l -> Buf.L (r l)
            | Buf.C _ as c -> c)
          f.f_code
      in
      let data =
        List.map
          (fun (lbl, d) ->
            ( Option.map r lbl,
              match d with
              | Buf.Addr l -> Buf.Addr (r l)
              | Buf.Tagged (l, t) -> Buf.Tagged (r l, t)
              | (Buf.Word _ | Buf.Space _ | Buf.Align _) as d -> d ))
          f.f_data
      in
      { f_code = code; f_data = data; f_locals = List.map r locals }

(** Lay the fragments out in order (code and data concatenated
    independently), patch every relocation over the combined symbol
    table, and assemble the loadable image.  Local labels must already
    be unique across fragments ({!rename}); a collision — like a
    duplicate export or an unresolved relocation — raises
    {!Image.Error}. *)
let link (fragments : fragment list) : Image.t =
  let code = List.concat_map (fun f -> f.f_code) fragments in
  let data = List.concat_map (fun f -> f.f_data) fragments in
  Image.of_items code data
