(** Mutable assembly buffer: the DSL in which the compiler and the runtime
    emit code and static data. *)

module Insn = Tagsim_mipsx.Insn
module Annot = Tagsim_mipsx.Annot

type slot = {
  insn : string Insn.t;
  annot : Annot.t;
  speculative : bool;
      (* placed in a delay slot ahead of a guard; memory faults are ignored *)
}

type item = I of slot | L of string | C of string (* comment, for dumps *)

(* The transform a [Tagged] datum applies to a resolved address, together
   with the serialisable description it was built from ([ty_code] is a
   {!Tagsim_tags.Scheme.ty_code}): the object cache stores the code and
   rebuilds the closure against the object's scheme on reload. *)
type tagger = { ty_code : int; apply : int -> int }

type datum =
  | Word of int
  | Addr of string (* resolved address of a label *)
  | Tagged of string * tagger (* address of a label, transformed *)
  | Space of int (* n zero words *)
  | Align of int (* align to n bytes *)

type t = {
  mutable items : item list; (* reversed *)
  mutable data : (string option * datum) list; (* reversed *)
  mutable next_fresh : int;
}

let create () = { items = []; data = []; next_fresh = 0 }

let emit ?(annot = Annot.plain) ?(speculative = false) t insn =
  t.items <- I { insn; annot; speculative } :: t.items

let label t l = t.items <- L l :: t.items
let comment t c = t.items <- C c :: t.items

let fresh t prefix =
  let n = t.next_fresh in
  t.next_fresh <- n + 1;
  Printf.sprintf "%s$%d" prefix n

(* Data directives. [dlabel] names the *next* datum emitted. *)
let data ?label t d = t.data <- (label, d) :: t.data
let word ?label t w = data ?label t (Word w)
let space ?label t n = data ?label t (Space n)
let align t n = data t (Align n)

let items t = List.rev t.items
let data_items t = List.rev t.data

(** Append the contents of [src] to [dst] (used to link compiler output with
    the runtime).  Fresh-label counters are merged to keep labels unique,
    provided both buffers used [fresh] with distinct prefixes or were
    created from the same counter stream. *)
let append dst src =
  (* Both item lists are stored reversed, so concatenating the reversed
     source in front keeps program order. *)
  dst.items <- src.items @ dst.items;
  dst.data <- src.data @ dst.data;
  dst.next_fresh <- max dst.next_fresh src.next_fresh

let pp_item ppf = function
  | I { insn; annot; _ } ->
      Fmt.pf ppf "        %a" (Insn.pp Fmt.string) insn;
      if annot.Annot.kind <> Annot.Plain || annot.Annot.checking then
        Fmt.pf ppf "  ; %a" Annot.pp annot
  | L l -> Fmt.pf ppf "%s:" l
  | C c -> Fmt.pf ppf "        ; %s" c

let pp ppf t = Fmt.(list ~sep:(any "@\n") pp_item) ppf (items t)
