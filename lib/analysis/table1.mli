(** Table 1: percentage increase in execution time when full run-time
    checking is added, with the arith / vector / list contributions. *)

type row = {
  name : string;
  arith : float;
  vector : float;
  list : float;
  other : float;
  total : float;
  paper_total : float;
}

type t = { rows : row list; average : row }

(** The declarative form: matrix + pure render (see {!Spec}). *)
val artifact : Spec.artifact

(** Convenience: plan and render just this artifact over the full
    suite. *)
val measure : ?scheme:Tagsim_tags.Scheme.t -> unit -> t

val pp : Format.formatter -> t -> unit
