(** The global fan-out planner: unions and deduplicates the
    configuration matrices of any set of {!Spec.artifact}s, fans the
    union out once over the {!Pool} worker domains, and renders every
    artifact from the shared measurement store; plus the structured
    sinks (JSON / CSV) over the rendered results. *)

module Machine := Tagsim_sim.Machine
module Registry := Tagsim_programs.Registry

(** Every artifact of the reproduction, in output order: table1,
    figure1, figure2, table2, table3, garith, ablations. *)
val artifacts : Spec.artifact list

val names : unit -> string list
val find : string -> Spec.artifact option

(** Execute a plan: one deduplicated fan-out over the union of the
    requested artifacts' matrices, then render each from the shared
    store (results in request order).  [entries] restricts the benchmark
    suite (defaults to the full registry); [engine] selects the
    simulator engine for the whole plan (default [`Traced], numerically
    irrelevant); [jobs] defaults to {!Pool.default_jobs}. *)
val plan :
  ?jobs:int ->
  ?engine:Machine.engine ->
  ?entries:Registry.entry list ->
  Spec.artifact list ->
  Spec.rendered list

(** {1 Sinks} *)

(** The machine-readable form of a whole plan (RESULTS.json):
    deterministic fields only, so CI can diff regenerated output against
    the committed file. *)
val json_of : Spec.rendered list -> Spec.json

val json_string : Spec.rendered list -> string

(** All CSV sections of a plan, blank-line separated. *)
val csv_string : Spec.rendered list -> string

val write_json : string -> Spec.rendered list -> unit
val write_csv : string -> Spec.rendered list -> unit
