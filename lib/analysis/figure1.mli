(** Figure 1: percentage of execution time spent on each tag-handling
    operation — without run-time checking, the part added by checking,
    and with checking. *)

type bar = {
  without : float; (* % of no-checking execution time *)
  added : float; (* added by checking, % of with-checking time *)
  with_ : float; (* % of with-checking execution time *)
}

type t = {
  insertion : bar;
  removal : bar;
  extraction : bar;
  checking : bar; (* extraction + compare/branch + unused slots *)
  total_without : float list; (* per-program total shares *)
  total_with : float list;
}

(** The declarative form: matrix + pure render (see {!Spec}). *)
val artifact : Spec.artifact

(** Convenience: plan and render just this artifact over the full
    suite. *)
val measure : ?scheme:Tagsim_tags.Scheme.t -> unit -> t

val pp : Format.formatter -> t -> unit
