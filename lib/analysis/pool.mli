(** A [Domain.spawn]-based worker pool for the experiment matrix
    (OCaml 5 stdlib only).  [map] preserves input order and re-raises
    the first exception in input order, so [map ~jobs:1] is observably
    [List.map]. *)

(** Worker count used when [map] is not given [jobs] explicitly; 1 until
    {!set_default_jobs} is called. *)
val default_jobs : int ref

(** [Domain.recommended_domain_count ()], clamped to [1, 16]. *)
val recommended : unit -> int

(** Install the default worker count; [jobs <= 0] means
    {!recommended}. *)
val set_default_jobs : int -> unit

(** Longest-job-first dispatch order: a stable sort of [items] by
    [weight], heaviest first, so a pool [map] over the result is not
    tail-bound by a heavy job scheduled last. *)
val longest_first : weight:('a -> int) -> 'a list -> 'a list

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
