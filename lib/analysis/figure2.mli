(** Figure 2: reduction in instruction frequencies when tag removal is
    eliminated (tag-ignoring memory operations), without run-time
    checking.  Positive = reductions, negative = increases. *)

type t = {
  and_ : float; (* % of base instructions *)
  move : float;
  noop : float;
  squash : float;
  total : float;
  cycle_speedup : float; (* Section 5.1's 5.7% headline *)
}

(** The declarative form: matrix + pure render (see {!Spec}). *)
val artifact : Spec.artifact

(** Convenience: plan and render just this artifact over the full
    suite. *)
val measure : ?scheme:Tagsim_tags.Scheme.t -> unit -> t

val pp : Format.formatter -> t -> unit
