(** Table 2: percentage of cycles eliminated under the different degrees
    of hardware (and software) tag support, with and without run-time
    checking.  Speedups are aggregated over the total cycles of the ten
    programs, relative to the straightforward High5 software
    implementation of Section 2.1.

    Rows 5 and 6 are decomposed into their check and mask components, and
    the SPUR configuration of Section 7 is included. *)

module Stats = Tagsim_sim.Stats
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support

type speedup = { no_rtc : float; rtc : float }

type decomposed = {
  d_check : speedup; (* from eliminated tag checking *)
  d_mask : speedup; (* from eliminated tag removal *)
  d_total : speedup;
}

type t = {
  row1_software : speedup; (* Low2 scheme: tag in the low bits *)
  row1 : speedup; (* tag-ignoring loads/stores *)
  row2 : speedup; (* tag-field conditional branch *)
  row3 : speedup; (* rows 1+2 *)
  row4 : speedup; (* hardware generic arithmetic *)
  row5 : decomposed; (* parallel checking, lists *)
  row6 : decomposed; (* parallel checking, all types *)
  row7 : decomposed; (* everything *)
  spur : speedup; (* row 7 with lists-only parallel checking *)
}

(* The (scheme, support) cells of this table: the Low2 software variant
   of row 1, plus every named hardware configuration under High5 — each
   measured with and without run-time checking over the whole suite. *)
let cells =
  (Scheme.low2, Support.software)
  :: List.map (fun (_, s) -> (Scheme.high5, s)) Support.all_named

let configs_of entries =
  List.concat_map
    (fun (scheme, support) ->
      List.concat_map
        (fun entry ->
          [
            Run.config ~scheme ~support entry;
            Run.config ~scheme ~support:(Support.with_checking support) entry;
          ])
        entries)
    cells

let render_of entries (lookup : Spec.lookup) =
  let h5 = Scheme.high5 in
  let suite_cycles = Spec.suite_cycles ~entries lookup in
  let suite_metric = Spec.suite_metric ~entries lookup in
  let speedup_vs ~base_scheme ~scheme support =
    let one rtc =
      let wrap s = if rtc then Support.with_checking s else s in
      let base =
        suite_cycles ~scheme:base_scheme ~support:(wrap Support.software)
      in
      let c = suite_cycles ~scheme ~support:(wrap support) in
      Run.pct (base - c) base
    in
    { no_rtc = one false; rtc = one true }
  in
  let decompose ~base_scheme ~scheme support =
    let comp metric rtc =
      let wrap s = if rtc then Support.with_checking s else s in
      let base_total =
        suite_cycles ~scheme:base_scheme ~support:(wrap Support.software)
      in
      let base =
        suite_metric ~scheme:base_scheme ~support:(wrap Support.software)
          metric
      in
      let c = suite_metric ~scheme ~support:(wrap support) metric in
      Run.pct (base - c) base_total
    in
    {
      d_check =
        {
          no_rtc = comp (fun s -> Stats.tag_checking s) false;
          rtc = comp (fun s -> Stats.tag_checking s) true;
        };
      d_mask =
        {
          no_rtc = comp (fun s -> Stats.removal s) false;
          rtc = comp (fun s -> Stats.removal s) true;
        };
      d_total = speedup_vs ~base_scheme ~scheme support;
    }
  in
  {
    row1_software = speedup_vs ~base_scheme:h5 ~scheme:Scheme.low2 Support.software;
    row1 = speedup_vs ~base_scheme:h5 ~scheme:h5 Support.row1_hw;
    row2 = speedup_vs ~base_scheme:h5 ~scheme:h5 Support.row2;
    row3 = speedup_vs ~base_scheme:h5 ~scheme:h5 Support.row3;
    row4 = speedup_vs ~base_scheme:h5 ~scheme:h5 Support.row4;
    row5 = decompose ~base_scheme:h5 ~scheme:h5 Support.row5;
    row6 = decompose ~base_scheme:h5 ~scheme:h5 Support.row6;
    row7 = decompose ~base_scheme:h5 ~scheme:h5 Support.row7;
    spur = speedup_vs ~base_scheme:h5 ~scheme:h5 Support.spur;
  }

let pp ppf t =
  Fmt.pf ppf
    "Table 2: speedup in %% for different degrees of hardware support@\n";
  Fmt.pf ppf "%-44s %12s %12s@\n" "" "no checking" "checking";
  let row name s paper =
    Fmt.pf ppf "%-44s %12.1f %12.1f   (paper: %s)@\n" name s.no_rtc s.rtc paper
  in
  row "1  avoid tag masking (software, low2 tags)" t.row1_software "5.7 / 4.6";
  row "1' avoid tag masking (tag-ignoring mem ops)" t.row1 "5.7 / 4.6";
  row "2  avoid tag extraction (tag branch)" t.row2 "3.6 / 9.3";
  row "3  avoid masking and extraction" t.row3 "9.3 / 13.9";
  row "4  support generic arithmetic" t.row4 "0 / 0.7";
  let dec name d paper_check paper_mask paper_total =
    Fmt.pf ppf "%-44s@\n" name;
    row "     check" d.d_check paper_check;
    row "     mask" d.d_mask paper_mask;
    row "     total" d.d_total paper_total
  in
  dec "5  avoid tag checking on list ops" t.row5 "0 / 12.1" "0 / 4.2"
    "0 / 16.3";
  dec "6  avoid tag checking (lists+vectors)" t.row6 "0 / 13.6" "0 / 4.6"
    "0 / 18.2";
  dec "7  all of the above" t.row7 "3.6+ / ..." "5.7 / ..." "9.3 / 22.1";
  row "   SPUR (row 7, lists-only par. checking)" t.spur "9 / 21"

(* --- sinks --- *)

(* Flat (label, speedup) rows, decomposed rows expanded, for both
   sinks. *)
let flat t =
  let simple label s = [ (label, s) ] in
  let dec label d =
    [
      (label ^ ".check", d.d_check);
      (label ^ ".mask", d.d_mask);
      (label ^ ".total", d.d_total);
    ]
  in
  simple "row1_software" t.row1_software
  @ simple "row1" t.row1 @ simple "row2" t.row2 @ simple "row3" t.row3
  @ simple "row4" t.row4 @ dec "row5" t.row5 @ dec "row6" t.row6
  @ dec "row7" t.row7 @ simple "spur" t.spur

let json_of t =
  Spec.J_obj
    (List.map
       (fun (label, s) ->
         ( label,
           Spec.J_obj
             [
               ("no_rtc", Spec.J_float s.no_rtc);
               ("rtc", Spec.J_float s.rtc);
             ] ))
       (flat t))

let tables_of t =
  [
    {
      Spec.t_name = "table2";
      columns = [ "row"; "no_rtc"; "rtc" ];
      rows =
        List.map
          (fun (label, s) -> [ label; Spec.cell s.no_rtc; Spec.cell s.rtc ])
          (flat t);
    };
  ]

let title = "speedup for degrees of hardware support (suite-aggregate)"

let to_rendered t =
  {
    Spec.r_name = "table2";
    r_title = title;
    r_text = Spec.text_of pp t;
    r_json = json_of t;
    r_tables = tables_of t;
  }

let artifact =
  {
    Spec.a_name = "table2";
    a_title = title;
    a_configs = configs_of;
    a_render = (fun entries lookup -> to_rendered (render_of entries lookup));
  }

let measure () =
  let entries = Run.all_entries () in
  render_of entries (Spec.lookup_of (configs_of entries))
