(** The persistent (L2) measurement cache: a content-addressed on-disk
    store of serialized measurements, keyed by a digest of the program
    content, the tag-scheme/support/scheduler configuration, the prelude
    sources and the {!version} stamp.  Keys are engine-agnostic (all
    simulator engines are bit-identical).  Unreadable, truncated,
    corrupt or stale-version entries are treated as misses, never as
    errors; writes are atomic (temp file + rename).  See the
    implementation header for the full contract. *)

module Stats := Tagsim_sim.Stats
module Scheme := Tagsim_tags.Scheme
module Support := Tagsim_tags.Support
module Sched := Tagsim_asm.Sched
module Registry := Tagsim_programs.Registry
module Program := Tagsim_compiler.Program

(** The cache format/semantics stamp.  Bump it whenever code generation,
    the runtime, scheme semantics, the cost model or the [Stats] layout
    change: any of those alters measurements without changing the key's
    other inputs. *)
val version : string

(** The store is disabled by default (library users, e.g. tests, opt
    in); the CLI and bench front ends enable it unless [--no-cache]. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** Store directory, default ["_tagsim_cache"].  Configure before any
    fan-out starts. *)
val dir : unit -> string

val set_dir : string -> unit

(** The content-addressed key of a configuration.  [opt] (default
    [`None]) is the backend optimization level — it changes the emitted
    code, so it participates in the digest. *)
val key :
  ?sched:Sched.config ->
  ?opt:Tagsim_compiler.Program.opt ->
  scheme:Scheme.t ->
  support:Support.t ->
  Registry.entry ->
  string

(** On-disk path of a key's entry (tests corrupt files through this). *)
val entry_path : string -> string

(** What a cache entry holds: everything a {!Run.measurement} carries
    beyond the configuration itself. *)
type payload = {
  p_stats : Stats.t;
  p_gc_collections : int;
  p_gc_bytes_copied : int;
  p_meta : Program.meta;
}

(** Look a key up; counts a hit or a miss.  [None] when disabled
    (uncounted), missing, unreadable, corrupt or version-stale. *)
val load : string -> payload option

(** Write an entry atomically; no-op when disabled, silent on failure. *)
val store : string -> payload -> unit

(** Delete every cache entry in {!dir}. *)
val wipe : unit -> unit

(** [(hits, misses, writes)] since start or {!reset_counters}. *)
val counters : unit -> int * int * int

val reset_counters : unit -> unit
