(** The declarative experiment-plan layer: artifacts declare their
    configuration matrix as data and a pure [render] reduction over a
    shared measurement store; the {!Planner} executes any set of them
    from one global deduplicated fan-out.  The {!rendered} form carries
    every sink at once (paper-layout text, JSON, CSV tables). *)

module Stats := Tagsim_sim.Stats
module Scheme := Tagsim_tags.Scheme
module Support := Tagsim_tags.Support
module Sched := Tagsim_asm.Sched
module Registry := Tagsim_programs.Registry
module Machine := Tagsim_sim.Machine

(** {1 Structured sink values} *)

(** A minimal JSON tree (the repository has no JSON dependency). *)
type json =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_float of float
  | J_string of string
  | J_list of json list
  | J_obj of (string * json) list

(** Serialise with two-space indentation and deterministic field order;
    floats print with four decimals so RESULTS.json diffs stay
    meaningful.  The result ends in a newline. *)
val json_to_string : json -> string

(** A CSV section: one flat table of an artifact. *)
type table = {
  t_name : string;
  columns : string list;
  rows : string list list;
}

(** Format a float for a CSV cell (same fixed format as JSON floats). *)
val cell : float -> string

val table_to_csv : table -> string

(** {1 Artifacts} *)

(** Engine-agnostic lookup of a declared configuration in the shared
    measurement store.  Raises [Invalid_argument] for a configuration
    outside the declared matrix. *)
type lookup = Run.config -> Run.measurement

type rendered = {
  r_name : string;
  r_title : string;
  r_text : string; (* the paper-layout text, exactly as [pp] printed it *)
  r_json : json;
  r_tables : table list;
}

(** One artifact of the reproduction: its configuration matrix as data
    and a pure reduction from the store, both parameterised by the
    benchmark-entry list (so reduced-size plans stay consistent). *)
type artifact = {
  a_name : string;
  a_title : string;
  a_configs : Registry.entry list -> Run.config list;
  a_render : Registry.entry list -> lookup -> rendered;
}

(** Fan a configuration list out across the pool (deduplicated by
    {!Run.run_many}) and return the store's lookup function.  [engine]
    rewrites every configuration's engine before running. *)
val lookup_of :
  ?jobs:int -> ?engine:Machine.engine -> Run.config list -> lookup

(** {1 Shared reductions} *)

(** Sum a statistics metric over the whole suite under one
    configuration. *)
val suite_metric :
  ?sched:Sched.config ->
  entries:Registry.entry list ->
  lookup ->
  scheme:Scheme.t ->
  support:Support.t ->
  (Stats.t -> int) ->
  int

(** Total suite cycles under one configuration. *)
val suite_cycles :
  ?sched:Sched.config ->
  entries:Registry.entry list ->
  lookup ->
  scheme:Scheme.t ->
  support:Support.t ->
  int

(** Render a classic [pp] into the text sink (byte-identical to printing
    it). *)
val text_of : (Format.formatter -> 'a -> unit) -> 'a -> string
