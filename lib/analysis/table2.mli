(** Table 2: percentage of suite cycles eliminated under the different
    degrees of hardware (and software) tag support, with and without
    run-time checking, relative to the straightforward High5 software
    implementation. *)

type speedup = { no_rtc : float; rtc : float }

type decomposed = {
  d_check : speedup; (* from eliminated tag checking *)
  d_mask : speedup; (* from eliminated tag removal *)
  d_total : speedup;
}

type t = {
  row1_software : speedup; (* Low2 scheme *)
  row1 : speedup; (* tag-ignoring loads/stores *)
  row2 : speedup; (* tag-field conditional branch *)
  row3 : speedup;
  row4 : speedup; (* hardware generic arithmetic *)
  row5 : decomposed; (* parallel checking, lists *)
  row6 : decomposed; (* parallel checking, all types *)
  row7 : decomposed; (* everything *)
  spur : speedup;
}

(** The declarative form: matrix + pure render (see {!Spec}). *)
val artifact : Spec.artifact

(** Convenience: plan and render just this artifact over the full
    suite. *)
val measure : unit -> t

val pp : Format.formatter -> t -> unit
