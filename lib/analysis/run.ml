(** Measurement driver: run a benchmark under a configuration, validate
    its result, and hand back the statistics.  Runs are memoised — the
    experiments share many configurations — behind a mutex, so that
    {!run_many} can fan a configuration matrix out across the worker
    domains of {!Pool} while renderers look measurements up from the
    warmed store. *)

module Stats = Tagsim_sim.Stats
module Machine = Tagsim_sim.Machine
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module Sched = Tagsim_asm.Sched
module Program = Tagsim_compiler.Program
module Registry = Tagsim_programs.Registry
module L = Tagsim_runtime.Layout

exception Wrong_result of string

type measurement = {
  entry : Registry.entry;
  scheme : Scheme.t;
  support : Support.t;
  stats : Stats.t;
  gc_collections : int;
  gc_bytes_copied : int;
  meta : Program.meta;
}

(* A point of the experiment matrix.  The engine is an explicit field
   (not a global): concurrent planners with different engines cannot
   race each other.  All engines produce bit-identical statistics (the
   engine suite enforces it), so [c_engine] only selects the speed of
   reproduction and is excluded from {!matrix_key}. *)
type config = {
  c_sched : Sched.config;
  c_scheme : Scheme.t;
  c_support : Support.t;
  c_entry : Registry.entry;
  c_engine : Machine.engine;
}

let cache : (string, measurement) Hashtbl.t = Hashtbl.create 64
let cache_mutex = Mutex.create ()

let clear_cache () =
  Mutex.protect cache_mutex (fun () -> Hashtbl.reset cache)

(* Count of actual simulations performed (memo-cache misses), for tests
   that assert the planner simulates each distinct configuration exactly
   once.  Under concurrent workers a configuration may be simulated
   twice (the computation is deliberately outside the cache lock), so
   exact-count tests must use [jobs:1]. *)
let simulation_count = Atomic.make 0
let simulations () = Atomic.get simulation_count
let reset_simulations () = Atomic.set simulation_count 0

let sched_key (s : Sched.config) =
  Printf.sprintf "%b%b%b" s.Sched.hoist s.Sched.fill_unlikely
    s.Sched.squash_likely

(* Engine-agnostic identity of a configuration: what the measurement
   means, not how fast it was obtained. *)
let matrix_key c =
  String.concat "/"
    [
      c.c_entry.Registry.name;
      c.c_scheme.Scheme.name;
      Support.describe c.c_support;
      sched_key c.c_sched;
    ]

(* Memo key: engine-qualified, so engine-differential tests can hold
   measurements from several engines at once. *)
let config_key c =
  (match c.c_engine with
  | `Reference -> "ref"
  | `Predecoded -> "pre"
  | `Fused -> "fus")
  ^ "/" ^ matrix_key c

(* The computation is deliberately outside the cache lock: concurrent
   workers may duplicate a measurement (it is deterministic, so the
   last [replace] wins harmlessly), but they never serialise on the
   simulator.  [run_many] de-duplicates its matrix up front, so in
   practice each configuration is simulated once. *)
let run_config c =
  let k = config_key c in
  let cached = Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache k) in
  match cached with
  | Some m -> m
  | None ->
      Atomic.incr simulation_count;
      let entry = c.c_entry and scheme = c.c_scheme and support = c.c_support in
      let program =
        Program.compile ~sched:c.c_sched ~sizes:entry.Registry.sizes ~scheme
          ~support entry.Registry.source
      in
      let result = Program.run ~engine:c.c_engine program in
      (match result.Program.abort with
      | Some msg ->
          raise
            (Wrong_result
               (Printf.sprintf "%s [%s]: aborted: %s" entry.Registry.name
                  scheme.Scheme.name msg))
      | None -> ());
      let got = Program.hval_to_string (Option.get result.Program.value) in
      if got <> entry.Registry.expected then
        raise
          (Wrong_result
             (Printf.sprintf "%s [%s/%s]: got %s, expected %s"
                entry.Registry.name scheme.Scheme.name
                (Support.describe support) got entry.Registry.expected));
      let m =
        {
          entry;
          scheme;
          support;
          stats = result.Program.stats;
          gc_collections = result.Program.gc_collections;
          gc_bytes_copied = result.Program.gc_bytes_copied;
          meta = program.Program.meta;
        }
      in
      Mutex.protect cache_mutex (fun () -> Hashtbl.replace cache k m);
      m

let config ?(sched = Sched.default) ?(engine = `Fused) ~scheme ~support entry =
  {
    c_sched = sched;
    c_scheme = scheme;
    c_support = support;
    c_entry = entry;
    c_engine = engine;
  }

let run ?sched ?engine ~scheme ~support (entry : Registry.entry) =
  run_config (config ?sched ?engine ~scheme ~support entry)

(** Fan a configuration matrix out across the pool's worker domains and
    return the measurements in input order.  Duplicated configurations
    are simulated once: the pool maps over the distinct configurations
    and the results are collected through a keyed map, with no second
    simulation pass (the memo cache still gets warmed for later
    callers). *)
let run_many ?jobs (configs : config list) =
  let seen = Hashtbl.create 64 in
  let distinct =
    List.filter
      (fun c ->
        let k = config_key c in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.replace seen k ();
          true
        end)
      configs
  in
  let measured = Pool.map ?jobs run_config distinct in
  let by_key = Hashtbl.create 64 in
  List.iter2
    (fun c m -> Hashtbl.replace by_key (config_key c) m)
    distinct measured;
  List.map (fun c -> Hashtbl.find by_key (config_key c)) configs

let all_entries () = Registry.all ()

(* Percentage helpers. *)
let pct part whole = 100.0 *. float_of_int part /. float_of_int whole

let mean l =
  match l with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev l =
  let m = mean l in
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
      sqrt
        (List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 l
        /. float_of_int (List.length l))
