(** Measurement driver: run a benchmark under a configuration, validate
    its result, and hand back the statistics.  Runs are memoised — the
    experiments share many configurations — behind a mutex, so that
    {!run_many} can fan a configuration matrix out across the worker
    domains of {!Pool} while renderers look measurements up from the
    warmed store. *)

module Stats = Tagsim_sim.Stats
module Machine = Tagsim_sim.Machine
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module Sched = Tagsim_asm.Sched
module Program = Tagsim_compiler.Program
module Registry = Tagsim_programs.Registry
module L = Tagsim_runtime.Layout

exception Wrong_result of string

type measurement = {
  entry : Registry.entry;
  scheme : Scheme.t;
  support : Support.t;
  stats : Stats.t;
  gc_collections : int;
  gc_bytes_copied : int;
  meta : Program.meta;
}

(* A point of the experiment matrix.  The engine is an explicit field
   (not a global): concurrent planners with different engines cannot
   race each other.  All engines produce bit-identical statistics (the
   engine suite enforces it), so [c_engine] only selects the speed of
   reproduction and is excluded from {!matrix_key}. *)
type config = {
  c_sched : Sched.config;
  c_opt : Program.opt;
  c_scheme : Scheme.t;
  c_support : Support.t;
  c_entry : Registry.entry;
  c_engine : Machine.engine;
}

let cache : (string, measurement) Hashtbl.t = Hashtbl.create 64
let cache_mutex = Mutex.create ()

let clear_cache () =
  Mutex.protect cache_mutex (fun () -> Hashtbl.reset cache)

(* Shared compiler front ends: parse/expand/prune is independent of the
   scheme, support and scheduler configuration, so each distinct source
   is analyzed once per process and the result shared across the whole
   configuration matrix (frontends are immutable).  Keyed by source
   digest, so entries that alias one source (deduce/dedgc) share one
   front end.  The analysis runs under the lock: it is cheap relative
   to one simulation and runs once per program. *)
let frontends : (string, Program.frontend) Hashtbl.t = Hashtbl.create 16
let frontend_mutex = Mutex.create ()

let frontend_of (entry : Registry.entry) =
  let k = Digest.string entry.Registry.source in
  Mutex.protect frontend_mutex (fun () ->
      match Hashtbl.find_opt frontends k with
      | Some fe -> fe
      | None ->
          let fe = Program.analyze entry.Registry.source in
          Hashtbl.replace frontends k fe;
          fe)

let reset_frontends () =
  Mutex.protect frontend_mutex (fun () -> Hashtbl.reset frontends)

(* Count of actual simulations performed (memo-cache misses), for tests
   that assert the planner simulates each distinct configuration exactly
   once.  Under concurrent workers a configuration may be simulated
   twice (the computation is deliberately outside the cache lock), so
   exact-count tests must use [jobs:1]. *)
(* Observed cycle totals per program, fed by every materialised
   measurement (computed or loaded from the persistent store): the
   longest-job-first dispatch estimate of {!run_many}.  The maximum
   across configurations is kept — an LPT schedule only needs relative
   magnitudes, and a program's cycle counts vary far less across the
   scheme matrix than across programs. *)
let known_cycles : (string, int) Hashtbl.t = Hashtbl.create 16
let known_mutex = Mutex.create ()

let note_cycles entry_name (stats : Stats.t) =
  let c = Stats.total stats in
  Mutex.protect known_mutex (fun () ->
      match Hashtbl.find_opt known_cycles entry_name with
      | Some c' when c' >= c -> ()
      | _ -> Hashtbl.replace known_cycles entry_name c)

(* [(weight, known)]: cached cycles when any configuration of the
   program has been measured before (this process or a warm store),
   source size as the cold fallback.  Sizes are orders of magnitude
   below cycle counts, so unknown programs sort after known ones —
   acceptable: on a fully cold matrix everything is size-ranked, and on
   a mixed one the known jobs are the ones worth front-loading. *)
let cost_estimate c =
  let name = c.c_entry.Registry.name in
  match
    Mutex.protect known_mutex (fun () -> Hashtbl.find_opt known_cycles name)
  with
  | Some cy -> (cy, true)
  | None -> (String.length c.c_entry.Registry.source, false)

(* The last {!run_many} dispatch-ordering decision, for [--verbose]. *)
let last_dispatch = ref None
let dispatch_summary () = !last_dispatch

let simulation_count = Atomic.make 0
let simulations () = Atomic.get simulation_count
let reset_simulations () = Atomic.set simulation_count 0

let sched_key (s : Sched.config) =
  Printf.sprintf "%b%b%b" s.Sched.hoist s.Sched.fill_unlikely
    s.Sched.squash_likely

(* Engine-agnostic identity of a configuration: what the measurement
   means, not how fast it was obtained. *)
let matrix_key c =
  String.concat "/"
    [
      c.c_entry.Registry.name;
      c.c_scheme.Scheme.name;
      Support.describe c.c_support;
      sched_key c.c_sched;
      Tagsim_compiler.Tir.opt_token c.c_opt;
    ]

(* Memo key: engine-qualified, so engine-differential tests can hold
   measurements from several engines at once. *)
let config_key c =
  (match c.c_engine with
  | `Reference -> "ref"
  | `Predecoded -> "pre"
  | `Fused -> "fus"
  | `Traced -> "tra")
  ^ "/" ^ matrix_key c

(* The persistent-store key of a configuration: engine-agnostic, like
   [matrix_key], but content-addressed (see {!Cache.key}). *)
let cache_key c =
  Cache.key ~sched:c.c_sched ~opt:c.c_opt ~scheme:c.c_scheme
    ~support:c.c_support c.c_entry

let memo_find k = Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache k)
let memo_add k m = Mutex.protect cache_mutex (fun () -> Hashtbl.replace cache k m)

(* Consult the caches, L1 (in-process memo) then L2 (persistent store),
   without computing anything.  An L2 hit is promoted into the memo
   under the engine-qualified key, so later lookups under the same
   engine are lock-only. *)
let lookup_cached c =
  let k = config_key c in
  match memo_find k with
  | Some m -> Some m
  | None -> (
      match Cache.load (cache_key c) with
      | None -> None
      | Some p ->
          let m =
            {
              entry = c.c_entry;
              scheme = c.c_scheme;
              support = c.c_support;
              stats = p.Cache.p_stats;
              gc_collections = p.Cache.p_gc_collections;
              gc_bytes_copied = p.Cache.p_gc_bytes_copied;
              meta = p.Cache.p_meta;
            }
          in
          memo_add k m;
          note_cycles c.c_entry.Registry.name m.stats;
          Some m)

(* The computation is deliberately outside the cache lock: concurrent
   workers may duplicate a measurement (it is deterministic, so the
   last [replace] wins harmlessly), but they never serialise on the
   simulator.  [run_many] de-duplicates its matrix up front, so in
   practice each configuration is simulated once. *)
let compute_config c =
  Atomic.incr simulation_count;
  let entry = c.c_entry and scheme = c.c_scheme and support = c.c_support in
  let program =
    Instrument.time Instrument.Compile (fun () ->
        Program.compile_frontend ~opt:c.c_opt ~sched:c.c_sched
          ~sizes:entry.Registry.sizes ~scheme ~support (frontend_of entry))
  in
  let result =
    Instrument.time Instrument.Simulate (fun () ->
        Program.run ~engine:c.c_engine program)
  in
  (match result.Program.abort with
  | Some msg ->
      raise
        (Wrong_result
           (Printf.sprintf "%s [%s]: aborted: %s" entry.Registry.name
              scheme.Scheme.name msg))
  | None -> ());
  let got = Program.hval_to_string (Option.get result.Program.value) in
  if got <> entry.Registry.expected then
    raise
      (Wrong_result
         (Printf.sprintf "%s [%s/%s]: got %s, expected %s"
            entry.Registry.name scheme.Scheme.name (Support.describe support)
            got entry.Registry.expected));
  let m =
    {
      entry;
      scheme;
      support;
      stats = result.Program.stats;
      gc_collections = result.Program.gc_collections;
      gc_bytes_copied = result.Program.gc_bytes_copied;
      meta = program.Program.meta;
    }
  in
  Cache.store (cache_key c)
    {
      Cache.p_stats = m.stats;
      p_gc_collections = m.gc_collections;
      p_gc_bytes_copied = m.gc_bytes_copied;
      p_meta = m.meta;
    };
  memo_add (config_key c) m;
  note_cycles c.c_entry.Registry.name m.stats;
  m

let run_config c =
  match lookup_cached c with Some m -> m | None -> compute_config c

let config ?(sched = Sched.default) ?(opt = `None) ?(engine = `Traced) ~scheme
    ~support entry =
  {
    c_sched = sched;
    c_opt = opt;
    c_scheme = scheme;
    c_support = support;
    c_entry = entry;
    c_engine = engine;
  }

let run ?sched ?opt ?engine ~scheme ~support (entry : Registry.entry) =
  run_config (config ?sched ?opt ?engine ~scheme ~support entry)

(** Fan a configuration matrix out across the pool's worker domains and
    return the measurements in input order.  Duplicated configurations
    are simulated once: the pool maps over the distinct configurations
    and the results are collected through a keyed map, with no second
    simulation pass (the memo cache still gets warmed for later
    callers).  The caches are consulted on the calling domain {e before}
    dispatch — only genuinely missing configurations reach the pool, so
    a fully warm run spawns no workers and simulates nothing. *)
let run_many ?jobs (configs : config list) =
  let seen = Hashtbl.create 64 in
  let distinct =
    List.filter
      (fun c ->
        let k = config_key c in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.replace seen k ();
          true
        end)
      configs
  in
  let by_key = Hashtbl.create 64 in
  let missing =
    List.filter
      (fun c ->
        match lookup_cached c with
        | Some m ->
            Hashtbl.replace by_key (config_key c) m;
            false
        | None -> true)
      distinct
  in
  (* Longest-job-first dispatch: with workers pulling off a shared
     counter, the matrix's makespan is tail-bound by whatever is
     scheduled last, so the missing configurations are ordered by
     estimated cost — cycles observed for the program in any earlier
     configuration, source size as the cold fallback — heaviest first.
     [measured] comes back in the same (reordered) list order, so the
     keyed collection below is unaffected. *)
  let missing =
    match missing with
    | [] | [ _ ] -> missing
    | _ ->
        let decorated = List.map (fun c -> (c, cost_estimate c)) missing in
        let ordered =
          Pool.longest_first ~weight:(fun (_, (w, _)) -> w) decorated
        in
        let by_cycles =
          List.length (List.filter (fun (_, (_, known)) -> known) decorated)
        in
        let n = List.length decorated in
        (match ordered with
        | (head, (w, known)) :: _ ->
            last_dispatch :=
              Some
                (Printf.sprintf
                   "longest-first over %d configs (%d by cached cycles, %d by \
                    source size); first %s/%s (%s %d)"
                   n by_cycles (n - by_cycles) head.c_entry.Registry.name
                   head.c_scheme.Scheme.name
                   (if known then "cycles" else "bytes")
                   w)
        | [] -> ());
        List.map fst ordered
  in
  let measured = Pool.map ?jobs compute_config missing in
  List.iter2
    (fun c m -> Hashtbl.replace by_key (config_key c) m)
    missing measured;
  List.map (fun c -> Hashtbl.find by_key (config_key c)) configs

let all_entries () = Registry.all ()

(* Percentage helpers. *)
let pct part whole = 100.0 *. float_of_int part /. float_of_int whole

let mean l =
  match l with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev l =
  let m = mean l in
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
      sqrt
        (List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 l
        /. float_of_int (List.length l))
