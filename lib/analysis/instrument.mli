(** Wall-clock phase accounting for the measurement pipeline: compile,
    simulate and render seconds accumulated across all worker domains,
    printed by the CLI under [--verbose]. *)

type phase = Compile | Simulate | Render

(** [Unix.gettimeofday]. *)
val now : unit -> float

(** Accumulate [dt] seconds into a phase total (thread-safe). *)
val add : phase -> float -> unit

(** Run [f] and charge its wall-clock duration to [phase] (also on
    exception). *)
val time : phase -> (unit -> 'a) -> 'a

(** [(compile, simulate, render)] seconds since start or {!reset}. *)
val totals : unit -> float * float * float

(** Backend breakdown of the [Compile] phase, re-exported from
    {!Tagsim_compiler.Bphase}: per-phase seconds (monolithic codegen,
    incremental lower/opt/select, scheduling, assembly, linking). *)
val backend_totals : unit -> Tagsim_compiler.Bphase.totals

(** The traced engine's superblock counters, re-exported from
    {!Tagsim_sim.Machine.trace_counters}. *)
val trace_totals : unit -> Tagsim_sim.Machine.trace_totals

(** The persistent plan store's counters, [(hits, misses, writes,
    traces_loaded)]: plan files hit/missed/written, plus individual
    superblocks pre-compiled from loaded plans. *)
val plan_totals : unit -> int * int * int * int

(** Clears the pipeline totals, the backend breakdown, the trace
    counters and the plan-store counters. *)
val reset : unit -> unit
