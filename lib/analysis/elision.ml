(** Elision: what the tag-knowledge check-elimination pass buys back of
    Table 1's checking overhead.  Each program is measured three ways
    under the software-checked configuration: without checking (the
    base), with checking unoptimized, and with checking plus the
    [`Checks] optimization.  The artifact reports the static count of
    deleted checks and the checking-overhead percentage before and
    after, next to Table 1's numbers.  Declared as a {!Spec.artifact}:
    the matrix is three configurations per program; the render is a pure
    reduction over the store. *)

module Stats = Tagsim_sim.Stats
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module Program = Tagsim_compiler.Program
module Registry = Tagsim_programs.Registry

type row = {
  name : string;
  checks_eliminated : int; (* static: checks the optimizer deleted *)
  cycles_off : int; (* total cycles, checking on, opt none *)
  cycles_on : int; (* total cycles, checking on, opt checks *)
  added_off : int; (* checking-attributed cycles, opt none *)
  added_on : int; (* checking-attributed cycles, opt checks *)
  overhead_off : float; (* % over the unchecked base, opt none *)
  overhead_on : float; (* % over the unchecked base, opt checks *)
  delta : float; (* overhead_off - overhead_on: points recovered *)
}

type t = { rows : row list; average : row }

let base_support = Support.software
let chk_support = Support.with_checking Support.software

(* Cycles that exist only because checking is on: every
   checking-annotated tag-handling cycle plus the generic-arithmetic
   dispatch the checked arithmetic falls back to. *)
let added_cycles stats =
  Stats.tag_checking ~checking:true stats
  + Stats.generic_arith ~checking:true stats

let configs_for scheme entries =
  List.concat_map
    (fun entry ->
      [
        Run.config ~scheme ~support:base_support entry;
        Run.config ~scheme ~support:chk_support entry;
        Run.config ~scheme ~support:chk_support ~opt:`Checks entry;
      ])
    entries

let render_for scheme entries (lookup : Spec.lookup) =
  let rows =
    List.map
      (fun entry ->
        let base = lookup (Run.config ~scheme ~support:base_support entry) in
        let chk = lookup (Run.config ~scheme ~support:chk_support entry) in
        let opt =
          lookup (Run.config ~scheme ~support:chk_support ~opt:`Checks entry)
        in
        let b = Stats.total base.Run.stats in
        let off = Stats.total chk.Run.stats in
        let on = Stats.total opt.Run.stats in
        let overhead_off = Run.pct (off - b) b in
        let overhead_on = Run.pct (on - b) b in
        {
          name = entry.Registry.name;
          checks_eliminated = opt.Run.meta.Program.checks_eliminated;
          cycles_off = off;
          cycles_on = on;
          added_off = added_cycles chk.Run.stats;
          added_on = added_cycles opt.Run.stats;
          overhead_off;
          overhead_on;
          delta = overhead_off -. overhead_on;
        })
      entries
  in
  let avg f = Run.mean (List.map f rows) in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let average =
    {
      name = "average";
      checks_eliminated = sum (fun r -> r.checks_eliminated);
      cycles_off = sum (fun r -> r.cycles_off);
      cycles_on = sum (fun r -> r.cycles_on);
      added_off = sum (fun r -> r.added_off);
      added_on = sum (fun r -> r.added_on);
      overhead_off = avg (fun r -> r.overhead_off);
      overhead_on = avg (fun r -> r.overhead_on);
      delta = avg (fun r -> r.delta);
    }
  in
  { rows; average }

let pp ppf t =
  Fmt.pf ppf
    "Elision: checking overhead before/after tag-knowledge check \
     elimination (high5/software)@\n";
  Fmt.pf ppf "%-8s %7s %10s %10s %9s %9s %8s %8s %7s@\n" "" "elided"
    "cyc(off)" "cyc(on)" "add(off)" "add(on)" "ovh.off" "ovh.on" "delta";
  let row ppf r =
    Fmt.pf ppf "%-8s %7d %10d %10d %9d %9d %7.2f%% %7.2f%% %6.2f%%" r.name
      r.checks_eliminated r.cycles_off r.cycles_on r.added_off r.added_on
      r.overhead_off r.overhead_on r.delta
  in
  List.iter (fun r -> Fmt.pf ppf "%a@\n" row r) t.rows;
  Fmt.pf ppf "%a@\n" row t.average

(* --- sinks --- *)

let json_of_row r =
  Spec.J_obj
    [
      ("name", Spec.J_string r.name);
      ("checks_eliminated", Spec.J_int r.checks_eliminated);
      ("cycles_off", Spec.J_int r.cycles_off);
      ("cycles_on", Spec.J_int r.cycles_on);
      ("added_off", Spec.J_int r.added_off);
      ("added_on", Spec.J_int r.added_on);
      ("overhead_off", Spec.J_float r.overhead_off);
      ("overhead_on", Spec.J_float r.overhead_on);
      ("delta", Spec.J_float r.delta);
    ]

let json_of t =
  Spec.J_obj
    [
      ("rows", Spec.J_list (List.map json_of_row t.rows));
      ("average", json_of_row t.average);
    ]

let tables_of t =
  let cells r =
    [
      r.name;
      string_of_int r.checks_eliminated;
      string_of_int r.cycles_off;
      string_of_int r.cycles_on;
      string_of_int r.added_off;
      string_of_int r.added_on;
      Spec.cell r.overhead_off;
      Spec.cell r.overhead_on;
      Spec.cell r.delta;
    ]
  in
  [
    {
      Spec.t_name = "elision";
      columns =
        [
          "name"; "checks_eliminated"; "cycles_off"; "cycles_on"; "added_off";
          "added_on"; "overhead_off"; "overhead_on"; "delta";
        ];
      rows = List.map cells (t.rows @ [ t.average ]);
    };
  ]

let title = "checking overhead recovered by check elimination"

let to_rendered t =
  {
    Spec.r_name = "elision";
    r_title = title;
    r_text = Spec.text_of pp t;
    r_json = json_of t;
    r_tables = tables_of t;
  }

let artifact =
  {
    Spec.a_name = "elision";
    a_title = title;
    a_configs = configs_for Scheme.high5;
    a_render =
      (fun entries lookup ->
        to_rendered (render_for Scheme.high5 entries lookup));
  }

let measure ?(scheme = Scheme.high5) () =
  let entries = Run.all_entries () in
  render_for scheme entries (Spec.lookup_of (configs_for scheme entries))
