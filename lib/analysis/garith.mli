(** Section 4.2 and related ablations: generic-arithmetic cost under the
    High5 vs. High6 encodings, the dispatch-first ablation, the
    preshifted-pair-tag ablation (Section 3.1), and the low-tag
    equivalence claim (Section 5.2). *)

type row = { name : string; high5 : float; high6 : float }

type t = {
  rows : row list; (* generic-arith share of execution time, rtc on *)
  avg_high5 : float;
  avg_high6 : float;
  rat_high5 : float;
  rat_high6 : float;
  dispatch_increase : float;
  preshift_speedup : float;
  insertion_share : float;
  low2_speedup : float;
  low3_speedup : float;
  row1_hw_speedup : float;
}

(** The declarative form: matrix + pure render (see {!Spec}). *)
val artifact : Spec.artifact

(** Convenience: plan and render just this artifact over the full
    suite. *)
val measure : unit -> t

val pp : Format.formatter -> t -> unit
