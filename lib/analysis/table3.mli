(** Table 3: static information on the ten test programs. *)

type row = {
  name : string;
  procedures : int;
  source_lines : int;
  object_words : int;
}

type t = row list

(** The declarative form: matrix + pure render (see {!Spec}). *)
val artifact : Spec.artifact

(** Convenience: plan and render just this artifact over the full
    suite. *)
val measure : ?scheme:Tagsim_tags.Scheme.t -> unit -> t

val pp : Format.formatter -> t -> unit
