(** Wall-clock phase accounting for the measurement pipeline.

    The driver's work divides into three phases — compiling benchmark
    programs, simulating them, and rendering artifacts from the
    measurement store — and the cache layer's whole point is to move
    time out of the first two.  Workers on any domain accumulate into
    the shared totals (mutex-protected; the amounts are seconds-coarse,
    so one lock is irrelevant), and the CLI prints the totals under
    [--verbose] so the effect of a warm cache is observable. *)

type phase = Compile | Simulate | Render

let now () = Unix.gettimeofday ()

let mutex = Mutex.create ()
let compile_s = ref 0.0
let simulate_s = ref 0.0
let render_s = ref 0.0

let slot = function
  | Compile -> compile_s
  | Simulate -> simulate_s
  | Render -> render_s

let add phase dt =
  Mutex.protect mutex (fun () ->
      let r = slot phase in
      r := !r +. dt)

let time phase f =
  let t0 = now () in
  Fun.protect ~finally:(fun () -> add phase (now () -. t0)) f

(** [(compile, simulate, render)] seconds accumulated since start or the
    last {!reset}. *)
let totals () =
  Mutex.protect mutex (fun () -> (!compile_s, !simulate_s, !render_s))

(** The backend's internal breakdown of the [Compile] phase — monolithic
    codegen, incremental lower/opt/select, per-unit scheduling,
    monolithic assembly, incremental linking — re-exported from the
    compiler layer's accumulator so CLI reporting has a single
    instrumentation entry point. *)
let backend_totals () = Tagsim_compiler.Bphase.totals ()

(** The traced engine's tier-2 counters — traces formed, trace entries,
    side exits, instructions retired inside traces, total retired —
    re-exported from the simulator layer so CLI reporting has a single
    instrumentation entry point. *)
let trace_totals () = Tagsim_sim.Machine.trace_counters ()

(** The plan store's counters — plan files hit/missed/written plus
    superblocks pre-compiled from loaded plans — re-exported from the
    simulator layer, same single-entry-point rationale. *)
let plan_totals () =
  let hits, misses, writes = Tagsim_sim.Plan.counters () in
  (hits, misses, writes, Tagsim_sim.Plan.traces_loaded ())

let reset () =
  Mutex.protect mutex (fun () ->
      compile_s := 0.0;
      simulate_s := 0.0;
      render_s := 0.0);
  Tagsim_compiler.Bphase.reset ();
  Tagsim_sim.Machine.reset_trace_counters ();
  Tagsim_sim.Plan.reset_counters ()
