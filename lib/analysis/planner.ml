(** The global fan-out planner: takes any set of requested artifacts,
    unions and deduplicates their configuration matrices, fans the union
    out {e once} over the {!Pool} worker domains, and renders every
    artifact from the shared measurement store.  The per-artifact serial
    measurement loops this replaces simulated overlapping cells once per
    artifact (or relied on the memo cache being pre-warmed in the right
    order); here the overlap is deduplicated globally before any
    simulation starts. *)

module Machine = Tagsim_sim.Machine
module Registry = Tagsim_programs.Registry

(* The reproduction's artifacts, in the paper-output order of
   [tagsim experiments] and [bench/main.exe]. *)
let artifacts : Spec.artifact list =
  [
    Table1.artifact;
    Figure1.artifact;
    Figure2.artifact;
    Table2.artifact;
    Table3.artifact;
    Garith.artifact;
    Ablations.artifact;
    Elision.artifact;
  ]

let names () = List.map (fun a -> a.Spec.a_name) artifacts
let find name = List.find_opt (fun a -> a.Spec.a_name = name) artifacts

(** Execute a plan: one deduplicated fan-out over the union of the
    requested artifacts' matrices, then render each artifact from the
    shared store.  [entries] restricts the benchmark suite (tests);
    [engine] selects the simulator engine for the whole plan (default
    [`Traced]); [jobs] defaults to {!Pool.default_jobs}. *)
let plan ?jobs ?(engine = `Traced) ?entries (requested : Spec.artifact list) =
  let entries =
    match entries with Some es -> es | None -> Run.all_entries ()
  in
  let union = List.concat_map (fun a -> a.Spec.a_configs entries) requested in
  let lookup = Spec.lookup_of ?jobs ~engine union in
  Instrument.time Instrument.Render (fun () ->
      List.map (fun a -> a.Spec.a_render entries lookup) requested)

(** {1 Sinks} *)

(* The machine-readable form of a whole plan: what RESULTS.json holds.
   Only stable, deterministic fields — no timestamps, no engine or job
   count (neither affects a single number) — so CI can diff a
   regenerated file against the committed one. *)
let json_of (rendered : Spec.rendered list) =
  Spec.J_obj
    [
      ("schema_version", Spec.J_int 1);
      ( "paper",
        Spec.J_string
          "Steenkiste & Hennessy, \"Tags and Type Checking in LISP: \
           Hardware and Software Approaches\" (ASPLOS 1987)" );
      ("generator", Spec.J_string "tagsim experiments");
      ( "artifacts",
        Spec.J_obj
          (List.map
             (fun r ->
               ( r.Spec.r_name,
                 Spec.J_obj
                   [
                     ("title", Spec.J_string r.Spec.r_title);
                     ("data", r.Spec.r_json);
                   ] ))
             rendered) );
    ]

let json_string rendered = Spec.json_to_string (json_of rendered)

(* All CSV sections of a plan, concatenated with one blank line between
   sections (each section is introduced by a ["# name"] comment line). *)
let csv_string (rendered : Spec.rendered list) =
  rendered
  |> List.concat_map (fun r -> r.Spec.r_tables)
  |> List.map Spec.table_to_csv
  |> String.concat "\n"

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let write_json path rendered = write_file path (json_string rendered)
let write_csv path rendered = write_file path (csv_string rendered)
