(** Ablations of this implementation's delay-slot scheduler (DESIGN.md):
    suite cycles under each feature level, with run-time checking on. *)

type t = {
  none : int; (* all scheduling off *)
  hoist_only : int;
  hoist_fill : int;
  full : int; (* + squashing likely branches *)
}

(** The declarative form: matrix + pure render (see {!Spec}). *)
val artifact : Spec.artifact

(** Convenience: plan and render just this artifact over the full
    suite. *)
val measure : unit -> t

val pp : Format.formatter -> t -> unit
