(** A flat execution profiler: attributes every cycle to the function
    whose code region the program counter is in — user functions
    ([f$...]), runtime routines ([rt$...]) and the collector ([gc$...]).
    This is how one verifies claims like "dedgc spends half its time in
    the collector" at function granularity. *)

module Machine = Tagsim_sim.Machine
module Stats = Tagsim_sim.Stats
module Image = Tagsim_asm.Image
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module Sched = Tagsim_asm.Sched
module Program = Tagsim_compiler.Program
module Registry = Tagsim_programs.Registry

type row = { label : string; cycles : int; share : float }

(* Function-granularity regions: the startup block plus every label with
   a function-like prefix, each owning the addresses up to the next
   region. *)
let regions (image : Image.t) =
  let named =
    Hashtbl.fold
      (fun name addr acc ->
        let keep =
          String.length name > 2
          && (String.sub name 0 2 = "f$"
             || (String.length name > 3 && String.sub name 0 3 = "rt$")
             || (String.length name > 3 && String.sub name 0 3 = "gc$"))
        in
        if keep then (addr, name) :: acc else acc)
      image.Image.code_symbols []
  in
  let sorted = List.sort compare ((0, "startup") :: named) in
  Array.of_list sorted

let region_of regions pc =
  (* Greatest region start <= pc. *)
  let n = Array.length regions in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if fst regions.(mid) <= pc then search mid hi else search lo (mid - 1)
  in
  snd regions.(search 0 (n - 1))

let measure ?(sched = Sched.default) ~scheme ~support
    (entry : Registry.entry) =
  let program =
    Program.compile ~sched ~sizes:entry.Registry.sizes ~scheme ~support
      entry.Registry.source
  in
  let m, _map = Program.load program in
  let regs = regions program.Program.image in
  let counts : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let rec loop last_cycles =
    let stats = Machine.stats m in
    let here = region_of regs (Machine.pc m) in
    Machine.step m;
    let now = (Machine.stats m).Stats.cycles in
    Hashtbl.replace counts here
      ((try Hashtbl.find counts here with Not_found -> 0) + now - last_cycles);
    ignore stats;
    match Machine.outcome m with Some _ -> () | None -> loop now
  in
  loop 0;
  let total = (Machine.stats m).Stats.cycles in
  (* Descending by cycles, with the label breaking ties: the fold's
     hash order must not leak into the report. *)
  Hashtbl.fold (fun label cycles acc -> (label, cycles) :: acc) counts []
  |> List.sort (fun (la, a) (lb, b) ->
         match compare b a with 0 -> compare la lb | c -> c)
  |> List.map (fun (label, cycles) ->
         { label; cycles; share = 100.0 *. float_of_int cycles /. float_of_int total })

let pp ppf rows =
  Fmt.pf ppf "%-28s %10s %8s@\n" "function" "cycles" "share";
  List.iter
    (fun r ->
      if r.share >= 0.05 then
        Fmt.pf ppf "%-28s %10d %7.2f%%@\n" r.label r.cycles r.share)
    rows
