(** Figure 1: percentage of execution time spent on each tag-handling
    operation — without run-time checking, the part added by run-time
    checking, and with run-time checking.  "Checking" includes the cost of
    the extractions feeding the checks plus the unused delay slots of
    check branches, exactly as the paper charges them (Section 3.4). *)

module Stats = Tagsim_sim.Stats
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support

type bar = {
  without : float; (* % of no-checking execution time *)
  added : float; (* part added by checking, % of with-checking time *)
  with_ : float; (* % of with-checking execution time *)
}

type t = {
  insertion : bar;
  removal : bar;
  extraction : bar;
  checking : bar; (* extraction + compare/branch + unused slots *)
  (* per-program shares used for the standard-deviation claim of 3.5 *)
  total_without : float list;
  total_with : float list;
}

let base_support = Support.software
let chk_support = Support.with_checking Support.software

let configs_for scheme entries =
  List.concat_map
    (fun entry ->
      [
        Run.config ~scheme ~support:base_support entry;
        Run.config ~scheme ~support:chk_support entry;
      ])
    entries

let render_for scheme entries (lookup : Spec.lookup) =
  let pairs =
    List.map
      (fun entry ->
        ( lookup (Run.config ~scheme ~support:base_support entry),
          lookup (Run.config ~scheme ~support:chk_support entry) ))
      entries
  in
  let bar_of metric =
    let without =
      Run.mean
        (List.map
           (fun (b, _) ->
             Run.pct (metric b.Run.stats None) (Stats.total b.Run.stats))
           pairs)
    in
    let added =
      Run.mean
        (List.map
           (fun (_, c) ->
             Run.pct
               (metric c.Run.stats (Some true))
               (Stats.total c.Run.stats))
           pairs)
    in
    let with_ =
      Run.mean
        (List.map
           (fun (_, c) ->
             Run.pct (metric c.Run.stats None) (Stats.total c.Run.stats))
           pairs)
    in
    { without; added; with_ }
  in
  let insertion s checking = Stats.insertion ?checking s in
  let removal s checking = Stats.removal ?checking s in
  let extraction s checking = Stats.extraction ?checking s in
  let check s checking = Stats.tag_checking ?checking s in
  let total_share (b, c) =
    let share m =
      Run.pct
        (Stats.insertion m.Run.stats + Stats.removal m.Run.stats
        + Stats.tag_checking m.Run.stats)
        (Stats.total m.Run.stats)
    in
    (share b, share c)
  in
  let shares = List.map total_share pairs in
  {
    insertion = bar_of insertion;
    removal = bar_of removal;
    extraction = bar_of extraction;
    checking = bar_of check;
    total_without = List.map fst shares;
    total_with = List.map snd shares;
  }

let pp ppf t =
  Fmt.pf ppf "Figure 1: %% of time spent on tag handling operations@\n";
  Fmt.pf ppf "%-12s %10s %14s %10s@\n" "" "no checking" "added by rtc"
    "with rtc";
  let row name (b : bar) paper =
    Fmt.pf ppf "%-12s %10.2f %14.2f %10.2f   (paper: %s)@\n" name b.without
      b.added b.with_ paper
  in
  row "insertion" t.insertion "1.5%";
  row "removal" t.removal "8.7% / 7%";
  row "extraction" t.extraction "4% / ~10%";
  row "checking" t.checking "11% / 24%";
  Fmt.pf ppf
    "total tag handling: %.1f%% (no rtc, sd %.1f) ... %.1f%% (rtc, sd %.1f)   \
     (paper: 22%% sd 5.6 ... 32%% sd 7.5)@\n"
    (Run.mean t.total_without) (Run.stddev t.total_without)
    (Run.mean t.total_with) (Run.stddev t.total_with)

(* --- sinks --- *)

let operations t =
  [
    ("insertion", t.insertion);
    ("removal", t.removal);
    ("extraction", t.extraction);
    ("checking", t.checking);
  ]

let json_of t =
  let bar (name, b) =
    ( name,
      Spec.J_obj
        [
          ("without", Spec.J_float b.without);
          ("added", Spec.J_float b.added);
          ("with", Spec.J_float b.with_);
        ] )
  in
  Spec.J_obj
    [
      ("operations", Spec.J_obj (List.map bar (operations t)));
      ( "total_tag_handling",
        Spec.J_obj
          [
            ("mean_without", Spec.J_float (Run.mean t.total_without));
            ("sd_without", Spec.J_float (Run.stddev t.total_without));
            ("mean_with", Spec.J_float (Run.mean t.total_with));
            ("sd_with", Spec.J_float (Run.stddev t.total_with));
            ( "per_program_without",
              Spec.J_list (List.map (fun f -> Spec.J_float f) t.total_without)
            );
            ( "per_program_with",
              Spec.J_list (List.map (fun f -> Spec.J_float f) t.total_with) );
          ] );
    ]

let tables_of t =
  [
    {
      Spec.t_name = "figure1.bars";
      columns = [ "operation"; "without"; "added"; "with" ];
      rows =
        List.map
          (fun (name, b) ->
            [ name; Spec.cell b.without; Spec.cell b.added; Spec.cell b.with_ ])
          (operations t);
    };
  ]

let title = "% of time on tag handling operations"

let to_rendered t =
  {
    Spec.r_name = "figure1";
    r_title = title;
    r_text = Spec.text_of pp t;
    r_json = json_of t;
    r_tables = tables_of t;
  }

let artifact =
  {
    Spec.a_name = "figure1";
    a_title = title;
    a_configs = configs_for Scheme.high5;
    a_render =
      (fun entries lookup ->
        to_rendered (render_for Scheme.high5 entries lookup));
  }

let measure ?(scheme = Scheme.high5) () =
  let entries = Run.all_entries () in
  render_for scheme entries (Spec.lookup_of (configs_for scheme entries))
