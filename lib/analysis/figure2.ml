(** Figure 2: reduction in instruction frequencies when tag removal is
    eliminated (tag-ignoring memory operations), for programs without
    run-time checking.  Positive numbers are reductions, negative numbers
    increases (no-ops and squashed slots go up because the masking
    instructions are no longer available to fill delay slots). *)

module Stats = Tagsim_sim.Stats
module Insn = Tagsim_mipsx.Insn
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support

type t = {
  and_ : float; (* reduction in AND instructions, % of base instructions *)
  move : float;
  noop : float;
  squash : float;
  total : float; (* total instruction (≈cycle) reduction *)
  cycle_speedup : float; (* the 5.7% headline of Section 5.1 *)
}

let base_support = Support.software
let ti_support = Support.row1_hw

let configs_for scheme entries =
  List.concat_map
    (fun entry ->
      [
        Run.config ~scheme ~support:base_support entry;
        Run.config ~scheme ~support:ti_support entry;
      ])
    entries

let render_for scheme entries (lookup : Spec.lookup) =
  let deltas =
    List.map
      (fun entry ->
        let b = lookup (Run.config ~scheme ~support:base_support entry) in
        let t = lookup (Run.config ~scheme ~support:ti_support entry) in
        let bi = Stats.executed_insns b.Run.stats in
        let kl k =
          Run.pct
            (Stats.klass_count b.Run.stats k - Stats.klass_count t.Run.stats k)
            bi
        in
        let squash =
          Run.pct
            (b.Run.stats.Stats.squashed - t.Run.stats.Stats.squashed)
            bi
        in
        let total =
          Run.pct (bi - Stats.executed_insns t.Run.stats) bi
        in
        let speedup =
          Run.pct
            (Stats.total b.Run.stats - Stats.total t.Run.stats)
            (Stats.total b.Run.stats)
        in
        (kl Insn.K_and, kl Insn.K_move, kl Insn.K_nop, squash, total, speedup))
      entries
  in
  let avg f = Run.mean (List.map f deltas) in
  {
    and_ = avg (fun (a, _, _, _, _, _) -> a);
    move = avg (fun (_, m, _, _, _, _) -> m);
    noop = avg (fun (_, _, n, _, _, _) -> n);
    squash = avg (fun (_, _, _, s, _, _) -> s);
    total = avg (fun (_, _, _, _, t, _) -> t);
    cycle_speedup = avg (fun (_, _, _, _, _, s) -> s);
  }

let pp ppf t =
  Fmt.pf ppf
    "Figure 2: reduction in instruction frequencies when tag removal is \
     eliminated@\n(positive = fewer, negative = more; %% of base \
     instructions)@\n";
  Fmt.pf ppf "  and    %+6.2f   (paper: ~ +8)@\n" t.and_;
  Fmt.pf ppf "  move   %+6.2f   (paper: ~ -1)@\n" t.move;
  Fmt.pf ppf "  noop   %+6.2f   (paper: ~ -0.5)@\n" t.noop;
  Fmt.pf ppf "  squash %+6.2f   (paper: ~ -0.5)@\n" t.squash;
  Fmt.pf ppf "  total  %+6.2f   (paper: ~ +6)@\n" t.total;
  Fmt.pf ppf "  cycle speedup: %.2f%%   (paper: 5.7%%)@\n" t.cycle_speedup

(* --- sinks --- *)

let fields t =
  [
    ("and", t.and_);
    ("move", t.move);
    ("noop", t.noop);
    ("squash", t.squash);
    ("total", t.total);
    ("cycle_speedup", t.cycle_speedup);
  ]

let json_of t =
  Spec.J_obj (List.map (fun (k, v) -> (k, Spec.J_float v)) (fields t))

let tables_of t =
  [
    {
      Spec.t_name = "figure2";
      columns = [ "metric"; "value" ];
      rows = List.map (fun (k, v) -> [ k; Spec.cell v ]) (fields t);
    };
  ]

let title = "instruction-frequency change when tag masking is eliminated"

let to_rendered t =
  {
    Spec.r_name = "figure2";
    r_title = title;
    r_text = Spec.text_of pp t;
    r_json = json_of t;
    r_tables = tables_of t;
  }

let artifact =
  {
    Spec.a_name = "figure2";
    a_title = title;
    a_configs = configs_for Scheme.high5;
    a_render =
      (fun entries lookup ->
        to_rendered (render_for Scheme.high5 entries lookup));
  }

let measure ?(scheme = Scheme.high5) () =
  let entries = Run.all_entries () in
  render_for scheme entries (Spec.lookup_of (configs_for scheme entries))
