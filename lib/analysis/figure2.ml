(** Figure 2: reduction in instruction frequencies when tag removal is
    eliminated (tag-ignoring memory operations), for programs without
    run-time checking.  Positive numbers are reductions, negative numbers
    increases (no-ops and squashed slots go up because the masking
    instructions are no longer available to fill delay slots). *)

module Stats = Tagsim_sim.Stats
module Insn = Tagsim_mipsx.Insn
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support

type t = {
  and_ : float; (* reduction in AND instructions, % of base instructions *)
  move : float;
  noop : float;
  squash : float;
  total : float; (* total instruction (≈cycle) reduction *)
  cycle_speedup : float; (* the 5.7% headline of Section 5.1 *)
}

let measure ?(scheme = Scheme.high5) () =
  let base_support = Support.software in
  let ti_support = Support.row1_hw in
  ignore
    (Run.run_many
       (List.concat_map
          (fun entry ->
            [
              Run.config ~scheme ~support:base_support entry;
              Run.config ~scheme ~support:ti_support entry;
            ])
          (Run.all_entries ())));
  let deltas =
    List.map
      (fun entry ->
        let b = Run.run ~scheme ~support:base_support entry in
        let t = Run.run ~scheme ~support:ti_support entry in
        let bi = Stats.executed_insns b.Run.stats in
        let kl k =
          Run.pct
            (Stats.klass_count b.Run.stats k - Stats.klass_count t.Run.stats k)
            bi
        in
        let squash =
          Run.pct
            (b.Run.stats.Stats.squashed - t.Run.stats.Stats.squashed)
            bi
        in
        let total =
          Run.pct (bi - Stats.executed_insns t.Run.stats) bi
        in
        let speedup =
          Run.pct
            (Stats.total b.Run.stats - Stats.total t.Run.stats)
            (Stats.total b.Run.stats)
        in
        (kl Insn.K_and, kl Insn.K_move, kl Insn.K_nop, squash, total, speedup))
      (Run.all_entries ())
  in
  let avg f = Run.mean (List.map f deltas) in
  {
    and_ = avg (fun (a, _, _, _, _, _) -> a);
    move = avg (fun (_, m, _, _, _, _) -> m);
    noop = avg (fun (_, _, n, _, _, _) -> n);
    squash = avg (fun (_, _, _, s, _, _) -> s);
    total = avg (fun (_, _, _, _, t, _) -> t);
    cycle_speedup = avg (fun (_, _, _, _, _, s) -> s);
  }

let pp ppf t =
  Fmt.pf ppf
    "Figure 2: reduction in instruction frequencies when tag removal is \
     eliminated@\n(positive = fewer, negative = more; %% of base \
     instructions)@\n";
  Fmt.pf ppf "  and    %+6.2f   (paper: ~ +8)@\n" t.and_;
  Fmt.pf ppf "  move   %+6.2f   (paper: ~ -1)@\n" t.move;
  Fmt.pf ppf "  noop   %+6.2f   (paper: ~ -0.5)@\n" t.noop;
  Fmt.pf ppf "  squash %+6.2f   (paper: ~ -0.5)@\n" t.squash;
  Fmt.pf ppf "  total  %+6.2f   (paper: ~ +6)@\n" t.total;
  Fmt.pf ppf "  cycle speedup: %.2f%%   (paper: 5.7%%)@\n" t.cycle_speedup
