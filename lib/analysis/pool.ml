(** A [Domain.spawn]-based worker pool for the experiment matrix
    (OCaml 5 stdlib only).

    [map] preserves input order and exception behaviour: items are pulled
    off a shared atomic counter by [jobs] workers (the calling domain is
    one of them), results land in a per-index slot, and the first
    exception in input order is re-raised after all workers have joined —
    so [map ~jobs:1 f l] is observably [List.map f l].

    The pool is deliberately dumb: no work stealing, no futures, just a
    fan-out over an index range, because every task (one compile+simulate
    of a benchmark configuration) is seconds-coarse. *)

(* Number of workers used when [map] is not given an explicit [jobs]:
   set once by the CLI/bench [--jobs] flag.  1 (strictly serial) until
   then. *)
let default_jobs = ref 1

(* The recommended count, clamped to [1, 16]: every task is a
   seconds-coarse compile+simulate, so past ~16 workers the matrix
   (a few hundred cells at most) stops scaling while memory cost
   (one ~4 MiB machine per in-flight task) keeps growing. *)
let recommended () = max 1 (min 16 (Domain.recommended_domain_count ()))

(** Clamp and install the default worker count; [jobs <= 0] means
    {!recommended}. *)
let set_default_jobs jobs =
  default_jobs := (if jobs <= 0 then recommended () else jobs)

(* Longest-job-first dispatch order: a stable sort by [weight],
   heaviest first.  With the pool pulling tasks off a shared counter,
   the makespan is tail-bound by whatever runs last — scheduling the
   big jobs first keeps the tail short (classic LPT list scheduling).
   Only the caller's input order changes; [map] still returns results
   in that (new) input order. *)
let longest_first ~weight items =
  List.stable_sort (fun a b -> compare (weight b : int) (weight a)) items

let map ?jobs f items =
  let jobs = match jobs with Some j -> j | None -> !default_jobs in
  let jobs = if jobs <= 0 then recommended () else jobs in
  match items with
  (* Inline fast path: a strictly serial map, or a single task, gains
     nothing from the counter/slot machinery — and a warm-cache run
     whose misses all dedup away should not pay any pool overhead on
     its (empty or singleton) remainder. *)
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs = 1 -> List.map f items
  | _ ->
  let tasks = Array.of_list items in
  let n = Array.length tasks in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (* Each slot is written by exactly one domain and read only
           after the join, so the plain array is race-free. *)
        results.(i) <- Some (try Ok (f tasks.(i)) with e -> Error e);
        go ()
      end
    in
    go ()
  in
  let spawned =
    List.init (min jobs n - 1 |> max 0) (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join spawned;
  Array.to_list results
  |> List.map (function
       | Some (Ok v) -> v
       | Some (Error e) -> raise e
       | None -> assert false)
