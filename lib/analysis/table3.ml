(** Table 3: static information on the ten test programs — number of
    procedures (after pruning to the reachable set, i.e. including the
    prelude "system modules" each program actually uses), source lines,
    and object-code words. *)

module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module Registry = Tagsim_programs.Registry

type row = {
  name : string;
  procedures : int;
  source_lines : int;
  object_words : int;
}

type t = row list

let configs_for scheme entries =
  List.map
    (fun entry -> Run.config ~scheme ~support:Support.software entry)
    entries

let render_for scheme entries (lookup : Spec.lookup) =
  List.map
    (fun entry ->
      let m = lookup (Run.config ~scheme ~support:Support.software entry) in
      {
        name = entry.Registry.name;
        procedures = m.Run.meta.Tagsim_compiler.Program.procedures;
        source_lines = m.Run.meta.Tagsim_compiler.Program.source_lines;
        object_words = m.Run.meta.Tagsim_compiler.Program.object_words;
      })
    entries

let pp ppf t =
  Fmt.pf ppf "Table 3: information on the 10 test programs@\n";
  Fmt.pf ppf "%-8s %12s %8s %12s@\n" "" "procedures" "lines" "object words";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-8s %12d %8d %12d@\n" r.name r.procedures r.source_lines
        r.object_words)
    t

(* --- sinks --- *)

let json_of t =
  Spec.J_list
    (List.map
       (fun r ->
         Spec.J_obj
           [
             ("name", Spec.J_string r.name);
             ("procedures", Spec.J_int r.procedures);
             ("source_lines", Spec.J_int r.source_lines);
             ("object_words", Spec.J_int r.object_words);
           ])
       t)

let tables_of t =
  [
    {
      Spec.t_name = "table3";
      columns = [ "name"; "procedures"; "source_lines"; "object_words" ];
      rows =
        List.map
          (fun r ->
            [
              r.name; string_of_int r.procedures;
              string_of_int r.source_lines; string_of_int r.object_words;
            ])
          t;
    };
  ]

let title = "static information on the test programs"

let to_rendered t =
  {
    Spec.r_name = "table3";
    r_title = title;
    r_text = Spec.text_of pp t;
    r_json = json_of t;
    r_tables = tables_of t;
  }

let artifact =
  {
    Spec.a_name = "table3";
    a_title = title;
    a_configs = configs_for Scheme.high5;
    a_render =
      (fun entries lookup ->
        to_rendered (render_for Scheme.high5 entries lookup));
  }

let measure ?(scheme = Scheme.high5) () =
  let entries = Run.all_entries () in
  render_for scheme entries (Spec.lookup_of (configs_for scheme entries))
