(** Table 3: static information on the ten test programs — number of
    procedures (after pruning to the reachable set, i.e. including the
    prelude "system modules" each program actually uses), source lines,
    and object-code words. *)

module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module Registry = Tagsim_programs.Registry

type row = {
  name : string;
  procedures : int;
  source_lines : int;
  object_words : int;
}

type t = row list

let measure ?(scheme = Scheme.high5) () =
  ignore
    (Run.run_many
       (List.map
          (fun entry -> Run.config ~scheme ~support:Support.software entry)
          (Run.all_entries ())));
  List.map
    (fun entry ->
      let m = Run.run ~scheme ~support:Support.software entry in
      {
        name = entry.Registry.name;
        procedures = m.Run.meta.Tagsim_compiler.Program.procedures;
        source_lines = m.Run.meta.Tagsim_compiler.Program.source_lines;
        object_words = m.Run.meta.Tagsim_compiler.Program.object_words;
      })
    (Run.all_entries ())

let pp ppf t =
  Fmt.pf ppf "Table 3: information on the 10 test programs@\n";
  Fmt.pf ppf "%-8s %12s %8s %12s@\n" "" "procedures" "lines" "object words";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-8s %12d %8d %12d@\n" r.name r.procedures r.source_lines
        r.object_words)
    t
