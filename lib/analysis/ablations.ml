(** Ablations of this implementation's own design choices (DESIGN.md):
    the delay-slot scheduler features.  The paper's Figure 2 accounting
    only makes sense because delay slots exist and are imperfectly
    filled; these numbers show how much each scheduler feature
    contributes. *)

module Stats = Tagsim_sim.Stats
module Sched = Tagsim_asm.Sched
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support

type t = {
  none : int; (* suite cycles, all scheduling off *)
  hoist_only : int;
  hoist_fill : int;
  full : int; (* + squashing likely branches *)
}

let suite_cycles sched =
  List.fold_left
    (fun acc entry ->
      let m =
        Run.run ~sched ~scheme:Scheme.high5
          ~support:(Support.with_checking Support.software) entry
      in
      acc + Stats.total m.Run.stats)
    0 (Run.all_entries ())

let sched_variants =
  [
    Sched.off;
    { Sched.hoist = true; fill_unlikely = false; squash_likely = false };
    { Sched.hoist = true; fill_unlikely = true; squash_likely = false };
    Sched.default;
  ]

let measure () =
  ignore
    (Run.run_many
       (List.concat_map
          (fun sched ->
            List.map
              (fun entry ->
                Run.config ~sched ~scheme:Scheme.high5
                  ~support:(Support.with_checking Support.software)
                  entry)
              (Run.all_entries ()))
          sched_variants));
  {
    none = suite_cycles Sched.off;
    hoist_only =
      suite_cycles
        { Sched.hoist = true; fill_unlikely = false; squash_likely = false };
    hoist_fill =
      suite_cycles
        { Sched.hoist = true; fill_unlikely = true; squash_likely = false };
    full = suite_cycles Sched.default;
  }

let pp ppf t =
  let base = float_of_int t.none in
  let pct n = 100.0 *. (base -. float_of_int n) /. base in
  Fmt.pf ppf "Scheduler ablation (suite cycles saved vs. no scheduling):@\n";
  Fmt.pf ppf "  hoisting only                 %6.2f%%@\n" (pct t.hoist_only);
  Fmt.pf ppf "  + fall-through filling        %6.2f%%@\n" (pct t.hoist_fill);
  Fmt.pf ppf "  + squashing likely branches   %6.2f%%@\n" (pct t.full)
