(** Ablations of this implementation's own design choices (DESIGN.md):
    the delay-slot scheduler features.  The paper's Figure 2 accounting
    only makes sense because delay slots exist and are imperfectly
    filled; these numbers show how much each scheduler feature
    contributes. *)

module Sched = Tagsim_asm.Sched
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support

type t = {
  none : int; (* suite cycles, all scheduling off *)
  hoist_only : int;
  hoist_fill : int;
  full : int; (* + squashing likely branches *)
}

let chk = Support.with_checking Support.software

let sched_variants =
  [
    Sched.off;
    { Sched.hoist = true; fill_unlikely = false; squash_likely = false };
    { Sched.hoist = true; fill_unlikely = true; squash_likely = false };
    Sched.default;
  ]

let configs_of entries =
  List.concat_map
    (fun sched ->
      List.map
        (fun entry ->
          Run.config ~sched ~scheme:Scheme.high5 ~support:chk entry)
        entries)
    sched_variants

let render_of entries (lookup : Spec.lookup) =
  let suite_cycles sched =
    Spec.suite_cycles ~sched ~entries lookup ~scheme:Scheme.high5 ~support:chk
  in
  {
    none = suite_cycles Sched.off;
    hoist_only =
      suite_cycles
        { Sched.hoist = true; fill_unlikely = false; squash_likely = false };
    hoist_fill =
      suite_cycles
        { Sched.hoist = true; fill_unlikely = true; squash_likely = false };
    full = suite_cycles Sched.default;
  }

let pp ppf t =
  let base = float_of_int t.none in
  let pct n = 100.0 *. (base -. float_of_int n) /. base in
  Fmt.pf ppf "Scheduler ablation (suite cycles saved vs. no scheduling):@\n";
  Fmt.pf ppf "  hoisting only                 %6.2f%%@\n" (pct t.hoist_only);
  Fmt.pf ppf "  + fall-through filling        %6.2f%%@\n" (pct t.hoist_fill);
  Fmt.pf ppf "  + squashing likely branches   %6.2f%%@\n" (pct t.full)

(* --- sinks --- *)

let fields t =
  [
    ("none", t.none);
    ("hoist_only", t.hoist_only);
    ("hoist_fill", t.hoist_fill);
    ("full", t.full);
  ]

let json_of t =
  Spec.J_obj
    [
      ( "suite_cycles",
        Spec.J_obj (List.map (fun (k, v) -> (k, Spec.J_int v)) (fields t)) );
    ]

let tables_of t =
  [
    {
      Spec.t_name = "ablations";
      columns = [ "scheduler"; "suite_cycles" ];
      rows = List.map (fun (k, v) -> [ k; string_of_int v ]) (fields t);
    };
  ]

let title = "delay-slot scheduler ablation (suite cycles)"

let to_rendered t =
  {
    Spec.r_name = "ablations";
    r_title = title;
    r_text = Spec.text_of pp t;
    r_json = json_of t;
    r_tables = tables_of t;
  }

let artifact =
  {
    Spec.a_name = "ablations";
    a_title = title;
    a_configs = configs_of;
    a_render = (fun entries lookup -> to_rendered (render_of entries lookup));
  }

let measure () =
  let entries = Run.all_entries () in
  render_of entries (Spec.lookup_of (configs_of entries))
