(** The declarative experiment-plan layer.

    Every artifact of the reproduction (a table, a figure, an ablation
    study) is a value of {!type:artifact}: it declares (a) its
    configuration matrix as plain data and (b) a pure [render] reduction
    from a measurement store to a {!rendered} result.  Nothing in an
    artifact runs the simulator — the {!Planner} unions the matrices of
    the requested artifacts, fans the union out once over the
    {!Pool} worker domains, and renders every artifact from the shared
    store.

    The {!rendered} form carries every sink at once: the paper-layout
    text, a structured {!json} value and CSV {!table}s, so one plan
    execution can feed the terminal, [RESULTS.json] and CSV exports. *)

module Stats = Tagsim_sim.Stats
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module Sched = Tagsim_asm.Sched
module Registry = Tagsim_programs.Registry

(** {1 Structured sink values} *)

(* A minimal JSON tree: the repository deliberately has no JSON
   dependency, and the emitter below is all the experiments need. *)
type json =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_float of float
  | J_string of string
  | J_list of json list
  | J_obj of (string * json) list

(* Fixed four-decimal float formatting: all our floats are percentages
   or small ratios, and a fixed format keeps RESULTS.json diffs
   meaningful (a drifted number changes visibly, nothing else does). *)
let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.4f" f

let escape_string s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Two-space-indented emitter, deterministic field order (the order of
   the [J_obj] lists), so the committed RESULTS.json diffs line by
   line. *)
let json_to_string (j : json) =
  let b = Buffer.create 4096 in
  let pad n = Buffer.add_string b (String.make (2 * n) ' ') in
  let rec go depth = function
    | J_null -> Buffer.add_string b "null"
    | J_bool x -> Buffer.add_string b (string_of_bool x)
    | J_int i -> Buffer.add_string b (string_of_int i)
    | J_float f -> Buffer.add_string b (json_float f)
    | J_string s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape_string s);
        Buffer.add_char b '"'
    | J_list [] -> Buffer.add_string b "[]"
    | J_list items ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (depth + 1);
            go (depth + 1) item)
          items;
        Buffer.add_char b '\n';
        pad depth;
        Buffer.add_char b ']'
    | J_obj [] -> Buffer.add_string b "{}"
    | J_obj fields ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (depth + 1);
            Buffer.add_char b '"';
            Buffer.add_string b (escape_string k);
            Buffer.add_string b "\": ";
            go (depth + 1) v)
          fields;
        Buffer.add_char b '\n';
        pad depth;
        Buffer.add_char b '}'
  in
  go 0 j;
  Buffer.add_char b '\n';
  Buffer.contents b

(** A CSV section: one flat table of an artifact (an artifact may emit
    several, e.g. per-program rows and a summary). *)
type table = {
  t_name : string; (* e.g. "table2.rows" *)
  columns : string list;
  rows : string list list;
}

let cell f = json_float f

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let table_to_csv t =
  let line fields = String.concat "," (List.map csv_field fields) ^ "\n" in
  "# " ^ t.t_name ^ "\n" ^ line t.columns
  ^ String.concat "" (List.map line t.rows)

(** {1 Artifacts} *)

(** The measurement store handed to [render]: engine-agnostic lookup of
    a declared configuration.  Raises [Invalid_argument] for a
    configuration the artifact did not declare in its matrix — renders
    cannot sneak in extra simulations. *)
type lookup = Run.config -> Run.measurement

(** All sinks of one artifact, rendered from the shared store. *)
type rendered = {
  r_name : string;
  r_title : string;
  r_text : string; (* the paper-layout text, exactly as [pp] printed it *)
  r_json : json;
  r_tables : table list;
}

(** One artifact of the reproduction, declaratively: its configuration
    matrix as data, and a pure reduction from the measurement store.
    Both take the benchmark-entry list so reduced-size plans (tests,
    golden numbers) stay consistent between matrix and render. *)
type artifact = {
  a_name : string;
  a_title : string;
  a_configs : Registry.entry list -> Run.config list;
  a_render : Registry.entry list -> lookup -> rendered;
}

(** Build a store over a (not yet deduplicated) configuration list:
    fan it out across the pool ({!Run.run_many} dedups), key the results
    engine-agnostically, and return the lookup function.  [engine]
    rewrites every configuration's engine before running. *)
let lookup_of ?jobs ?engine (configs : Run.config list) : lookup =
  let configs =
    match engine with
    | None -> configs
    | Some e -> List.map (fun c -> { c with Run.c_engine = e }) configs
  in
  let measured = Run.run_many ?jobs configs in
  let store = Hashtbl.create (2 * List.length configs) in
  List.iter2
    (fun c m -> Hashtbl.replace store (Run.matrix_key c) m)
    configs measured;
  fun c ->
    match Hashtbl.find_opt store (Run.matrix_key c) with
    | Some m -> m
    | None ->
        invalid_arg
          ("Spec.lookup: configuration not declared in the plan: "
         ^ Run.matrix_key c)

(** {1 Shared reductions}

    The suite-aggregate folds previously duplicated across [table2.ml],
    [garith.ml] and [ablations.ml], now over the store. *)

(** Sum [metric] of the statistics over the whole suite under one
    configuration. *)
let suite_metric ?sched ~entries (lookup : lookup) ~scheme ~support metric =
  List.fold_left
    (fun acc entry ->
      let m = lookup (Run.config ?sched ~scheme ~support entry) in
      acc + metric m.Run.stats)
    0 entries

(** Total suite cycles under one configuration. *)
let suite_cycles ?sched ~entries lookup ~scheme ~support =
  suite_metric ?sched ~entries lookup ~scheme ~support Stats.total

(** Render the text sink of a classic [pp] into a string (byte-identical
    to printing it: the pretty-printers use forced newlines only). *)
let text_of pp v = Fmt.str "%a" pp v
