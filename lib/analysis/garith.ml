(** Section 4.2 (and related ablations):

    - the cost of integer-biased generic arithmetic under the
      straightforward High5 encoding vs. the arithmetic-friendly High6
      encoding (paper: 2% average falling to 1.6%; about 8% -> 6% for
      rat);
    - the dispatch-first ablation of Section 6.2.2 (paper: a type dispatch
      on every arithmetic operation would add 2.7% average execution
      time);
    - the preshifted-pair-tag ablation of Section 3.1 (paper: about 0.5%);
    - the Section 5.2 claim that the low-tag software schemes match the
      tag-ignoring hardware (Table 2 row 1). *)

module Stats = Tagsim_sim.Stats
module Annot = Tagsim_mipsx.Annot
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module Registry = Tagsim_programs.Registry

type row = { name : string; high5 : float; high6 : float }

type t = {
  rows : row list; (* generic-arithmetic share of execution time, rtc on *)
  avg_high5 : float;
  avg_high6 : float;
  rat_high5 : float;
  rat_high6 : float;
  dispatch_increase : float; (* avg % increase with dispatch-first arith *)
  preshift_speedup : float; (* avg % speedup from a preshifted pair tag *)
  insertion_share : float; (* Section 3.1: avg % of time on insertion *)
  low2_speedup : float; (* vs high5, no rtc *)
  low3_speedup : float;
  row1_hw_speedup : float;
}

(* Generic-arithmetic cost: the inline integer tests and overflow checks,
   the out-of-line dispatch, and trap overhead. *)
let garith_cycles stats =
  Stats.extraction_of ~checking:true stats Annot.Arith_op
  + Stats.check_only ~checking:true ~source:Annot.Arith_op stats
  + Stats.generic_arith stats

let chk = Support.with_checking Support.software

let dispatch_support =
  Support.with_checking
    { Support.software with Support.int_biased_arith = false }

let preshift_support =
  { Support.software with Support.preshifted_pair_tag = true }

(* The (scheme, support) cells of this study. *)
let cells =
  [
    (Scheme.high5, chk);
    (Scheme.high6, chk);
    (Scheme.high5, Support.software);
    (Scheme.high5, dispatch_support);
    (Scheme.high5, preshift_support);
    (Scheme.low2, Support.software);
    (Scheme.low3, Support.software);
    (Scheme.high5, Support.row1_hw);
  ]

let configs_of entries =
  List.concat_map
    (fun entry ->
      List.map
        (fun (scheme, support) -> Run.config ~scheme ~support entry)
        cells)
    entries

let render_of entries (lookup : Spec.lookup) =
  let share scheme entry =
    let m = lookup (Run.config ~scheme ~support:chk entry) in
    Run.pct (garith_cycles m.Run.stats) (Stats.total m.Run.stats)
  in
  let rows =
    List.map
      (fun entry ->
        {
          name = entry.Registry.name;
          high5 = share Scheme.high5 entry;
          high6 = share Scheme.high6 entry;
        })
      entries
  in
  (* Absent from reduced-size plans (tests): report zeros rather than
     fail the whole plan. *)
  let rat =
    match List.find_opt (fun r -> r.name = "rat") rows with
    | Some r -> r
    | None -> { name = "rat"; high5 = 0.0; high6 = 0.0 }
  in
  let suite scheme support =
    Spec.suite_cycles ~entries lookup ~scheme ~support
  in
  let base = suite Scheme.high5 Support.software in
  let base_rtc = suite Scheme.high5 chk in
  let dispatch = suite Scheme.high5 dispatch_support in
  let preshift = suite Scheme.high5 preshift_support in
  let insertion_share =
    Run.mean
      (List.map
         (fun e ->
           let m =
             lookup
               (Run.config ~scheme:Scheme.high5 ~support:Support.software e)
           in
           Run.pct (Stats.insertion m.Run.stats) (Stats.total m.Run.stats))
         entries)
  in
  {
    rows;
    avg_high5 = Run.mean (List.map (fun r -> r.high5) rows);
    avg_high6 = Run.mean (List.map (fun r -> r.high6) rows);
    rat_high5 = rat.high5;
    rat_high6 = rat.high6;
    dispatch_increase = Run.pct (dispatch - base_rtc) base_rtc;
    preshift_speedup = Run.pct (base - preshift) base;
    insertion_share;
    low2_speedup =
      Run.pct (base - suite Scheme.low2 Support.software) base;
    low3_speedup =
      Run.pct (base - suite Scheme.low3 Support.software) base;
    row1_hw_speedup =
      Run.pct (base - suite Scheme.high5 Support.row1_hw) base;
  }

let pp ppf t =
  Fmt.pf ppf
    "Section 4.2: generic-arithmetic cost (%% of execution time, checking \
     on)@\n";
  Fmt.pf ppf "%-8s %8s %8s@\n" "" "high5" "high6";
  List.iter
    (fun r -> Fmt.pf ppf "%-8s %8.2f %8.2f@\n" r.name r.high5 r.high6)
    t.rows;
  Fmt.pf ppf "%-8s %8.2f %8.2f   (paper: 2%% -> 1.6%% average)@\n" "average"
    t.avg_high5 t.avg_high6;
  Fmt.pf ppf "rat: %.2f -> %.2f   (paper: ~8%% -> ~6%%)@\n" t.rat_high5
    t.rat_high6;
  Fmt.pf ppf
    "dispatch-first arithmetic adds %.2f%% execution time (paper: 2.7%%)@\n"
    t.dispatch_increase;
  Fmt.pf ppf
    "Section 3.1: insertion share %.2f%% (paper: 1.5%%); preshifted pair \
     tag saves %.2f%% (paper: ~0.5%%)@\n"
    t.insertion_share t.preshift_speedup;
  Fmt.pf ppf
    "Section 5.2: low2 %.2f%%, low3 %.2f%%, tag-ignoring hw %.2f%% speedup \
     (paper: all ~5.7%%)@\n"
    t.low2_speedup t.low3_speedup t.row1_hw_speedup

(* --- sinks --- *)

let summary t =
  [
    ("avg_high5", t.avg_high5);
    ("avg_high6", t.avg_high6);
    ("rat_high5", t.rat_high5);
    ("rat_high6", t.rat_high6);
    ("dispatch_increase", t.dispatch_increase);
    ("preshift_speedup", t.preshift_speedup);
    ("insertion_share", t.insertion_share);
    ("low2_speedup", t.low2_speedup);
    ("low3_speedup", t.low3_speedup);
    ("row1_hw_speedup", t.row1_hw_speedup);
  ]

let json_of t =
  Spec.J_obj
    (( "rows",
       Spec.J_list
         (List.map
            (fun r ->
              Spec.J_obj
                [
                  ("name", Spec.J_string r.name);
                  ("high5", Spec.J_float r.high5);
                  ("high6", Spec.J_float r.high6);
                ])
            t.rows) )
    :: List.map (fun (k, v) -> (k, Spec.J_float v)) (summary t))

let tables_of t =
  [
    {
      Spec.t_name = "garith.rows";
      columns = [ "name"; "high5"; "high6" ];
      rows =
        List.map
          (fun r -> [ r.name; Spec.cell r.high5; Spec.cell r.high6 ])
          t.rows;
    };
    {
      Spec.t_name = "garith.summary";
      columns = [ "metric"; "value" ];
      rows = List.map (fun (k, v) -> [ k; Spec.cell v ]) (summary t);
    };
  ]

let title = "generic-arithmetic cost and encoding/scheme ablations"

let to_rendered t =
  {
    Spec.r_name = "garith";
    r_title = title;
    r_text = Spec.text_of pp t;
    r_json = json_of t;
    r_tables = tables_of t;
  }

let artifact =
  {
    Spec.a_name = "garith";
    a_title = title;
    a_configs = configs_of;
    a_render = (fun entries lookup -> to_rendered (render_of entries lookup));
  }

let measure () =
  let entries = Run.all_entries () in
  render_of entries (Spec.lookup_of (configs_of entries))
