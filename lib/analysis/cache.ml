(** The persistent (L2) measurement cache.

    Experiment re-runs are dominated by re-deriving byte-identical
    measurements: the same ten registry programs compiled and simulated
    under the same tag-scheme/support configurations as the previous
    invocation.  This module stores each measurement on disk under a
    content-addressed key, so a warm [tagsim experiments] run performs
    zero compilations and zero simulations.

    {b Key.} The hex digest of everything a measurement depends on:

    - the program's content {!Registry.fingerprint} (source, expected
      value, heap sizing);
    - the tag scheme (by name) and the support configuration (by its
      injective {!Support.describe} flag string);
    - the delay-slot scheduler configuration;
    - a digest of the prelude sources (edits to prelude Lisp invalidate
      automatically);
    - the {!version} stamp.

    Keys are engine-agnostic: all simulator engines are bit-identical
    (the differential suite enforces it), so a measurement produced by
    one engine is valid for every other.

    {b Version stamp.} [version] must be bumped on any change that can
    alter a measurement without changing the key's other inputs: code
    generation, runtime assembly, scheme semantics, the cost model, or
    the {!Stats.t} layout.  The stamp participates in the key digest
    {e and} heads the entry payload, so stale entries from either side
    of a bump are simply never hit.

    {b Robustness.} A cache entry is an optimisation, never an
    authority: unreadable, truncated, corrupt or stale-version entries
    are treated as misses (recompute), and write failures are ignored.
    Writes are atomic (unique temp file, then [rename]), so concurrent
    processes and worker domains can share one store. *)

module Stats = Tagsim_sim.Stats
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module Sched = Tagsim_asm.Sched
module Registry = Tagsim_programs.Registry
module Program = Tagsim_compiler.Program
module Prelude = Tagsim_compiler.Prelude

(* Bump on any measurement-affecting change: codegen, runtime, scheme
   semantics, cost model, or Stats layout (see the header comment).
   2: the optimization level joined the key and the payload meta line
   gained the eliminated-check count.
   3: the funcall path gained a dynamic arity check.
   4: checked multiplies verify their product by dividing it back. *)
let version = "4"

(* Configured once by the CLI/bench entry point before any fan-out;
   plain refs because workers only read them. Disabled by default so
   that library users (tests above all) opt in explicitly. *)
let enabled_flag = ref false
let dir_ref = ref "_tagsim_cache"

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b
let dir () = !dir_ref
let set_dir d = dir_ref := d

let hit_count = Atomic.make 0
let miss_count = Atomic.make 0
let write_count = Atomic.make 0

let counters () =
  (Atomic.get hit_count, Atomic.get miss_count, Atomic.get write_count)

let reset_counters () =
  Atomic.set hit_count 0;
  Atomic.set miss_count 0;
  Atomic.set write_count 0

(* --- Keys. --- *)

let prelude_digest =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          (List.concat_map (fun (name, src) -> [ name; src ])
             Prelude.functions)))

let sched_token (s : Sched.config) =
  Printf.sprintf "%b/%b/%b" s.Sched.hoist s.Sched.fill_unlikely
    s.Sched.squash_likely

let key ?(sched = Sched.default) ?(opt = `None) ~scheme ~support
    (entry : Registry.entry) =
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          [
            "tagsim-cache";
            version;
            prelude_digest;
            Registry.fingerprint entry;
            scheme.Scheme.name;
            Support.describe support;
            sched_token sched;
            Tagsim_compiler.Tir.opt_token opt;
          ]))

let entry_path k = Filename.concat !dir_ref (k ^ ".entry")

(* --- Payload (de)serialisation. --- *)

type payload = {
  p_stats : Stats.t;
  p_gc_collections : int;
  p_gc_bytes_copied : int;
  p_meta : Program.meta;
}

(* A plain line-oriented integer format rather than [Marshal]: it is
   stable across compiler versions, trivially diffable when debugging,
   and a truncation is detectable (the ["end"] trailer). *)
let serialize (p : payload) =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let ints name a =
    line "%s %d %s" name (Array.length a)
      (String.concat " " (Array.to_list (Array.map string_of_int a)))
  in
  let s = p.p_stats in
  line "tagsim-cache %s" version;
  line "cycles %d" s.Stats.cycles;
  line "insns %d" s.Stats.insns;
  ints "kind_cycles" s.Stats.kind_cycles;
  ints "klass_insns" s.Stats.klass_insns;
  line "squashed %d" s.Stats.squashed;
  line "interlocks %d" s.Stats.interlocks;
  line "traps %d" s.Stats.traps;
  line "trap_cycles %d" s.Stats.trap_cycles;
  line "gc %d %d" p.p_gc_collections p.p_gc_bytes_copied;
  line "meta %d %d %d %d" p.p_meta.Program.procedures
    p.p_meta.Program.source_lines p.p_meta.Program.object_words
    p.p_meta.Program.checks_eliminated;
  line "end";
  Buffer.contents b

exception Malformed

let parse (text : string) : payload =
  let lines = String.split_on_char '\n' text in
  let fields l = String.split_on_char ' ' l |> List.filter (( <> ) "") in
  let expect tag l =
    match fields l with
    | t :: rest when t = tag -> rest
    | _ -> raise Malformed
  in
  let int1 tag l =
    match expect tag l with [ v ] -> int_of_string v | _ -> raise Malformed
  in
  let ints tag l =
    match expect tag l with
    | n :: vs ->
        let n = int_of_string n in
        if List.length vs <> n then raise Malformed;
        Array.of_list (List.map int_of_string vs)
    | [] -> raise Malformed
  in
  match lines with
  | header :: cycles :: insns :: kinds :: klasses :: squashed :: interlocks
    :: traps :: trap_cycles :: gc :: meta :: trailer :: _ ->
      (match expect "tagsim-cache" header with
      | [ v ] when v = version -> ()
      | _ -> raise Malformed);
      if String.trim trailer <> "end" then raise Malformed;
      let gc_c, gc_b =
        match expect "gc" gc with
        | [ c; b ] -> (int_of_string c, int_of_string b)
        | _ -> raise Malformed
      in
      let procedures, source_lines, object_words, checks_eliminated =
        match expect "meta" meta with
        | [ p; s; o; e ] ->
            (int_of_string p, int_of_string s, int_of_string o,
             int_of_string e)
        | _ -> raise Malformed
      in
      {
        p_stats =
          {
            Stats.cycles = int1 "cycles" cycles;
            insns = int1 "insns" insns;
            kind_cycles = ints "kind_cycles" kinds;
            klass_insns = ints "klass_insns" klasses;
            squashed = int1 "squashed" squashed;
            interlocks = int1 "interlocks" interlocks;
            traps = int1 "traps" traps;
            trap_cycles = int1 "trap_cycles" trap_cycles;
          };
        p_gc_collections = gc_c;
        p_gc_bytes_copied = gc_b;
        p_meta =
          { Program.procedures; source_lines; object_words;
            checks_eliminated };
      }
  | _ -> raise Malformed

(* --- Store operations. --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load k =
  if not !enabled_flag then None
  else
    let result =
      (* Any failure mode — missing file, permission error, truncation,
         corruption, stale version — is a miss, never an error. *)
      match read_file (entry_path k) with
      | exception _ -> None
      | text -> ( match parse text with p -> Some p | exception _ -> None)
    in
    (match result with
    | Some _ -> Atomic.incr hit_count
    | None -> Atomic.incr miss_count);
    result

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Sys.mkdir p 0o777 with Sys_error _ -> ()
    end
  in
  go path

let store k (p : payload) =
  if !enabled_flag then
    (* Atomic publish: unique temp name (pid + domain id, so concurrent
       writers never share one), then rename.  A failure anywhere just
       forfeits the cache entry. *)
    try
      mkdir_p !dir_ref;
      let tmp =
        Printf.sprintf "%s.tmp.%d.%d" (entry_path k) (Unix.getpid ())
          (Domain.self () :> int)
      in
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (serialize p));
      Sys.rename tmp (entry_path k);
      Atomic.incr write_count
    with _ -> ()

(* Remove every cache entry (and stray temp file) from the store; only
   files this module created — name contains ".entry" — are touched. *)
let wipe () =
  let is_ours name =
    let pat = ".entry" and n = String.length name in
    let m = String.length pat in
    let rec at i = i + m <= n && (String.sub name i m = pat || at (i + 1)) in
    at 0
  in
  match Sys.readdir !dir_ref with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          if is_ours name then
            try Sys.remove (Filename.concat !dir_ref name) with _ -> ())
        names
