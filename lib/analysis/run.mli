(** Measurement driver: run a benchmark under a configuration, validate
    its result against the registry's expected value, and hand back the
    statistics.  Runs are memoised behind a mutex (the experiments share
    many configurations), and {!run_many} fans a configuration matrix
    out across the {!Pool} worker domains. *)

module Stats := Tagsim_sim.Stats
module Machine := Tagsim_sim.Machine
module Scheme := Tagsim_tags.Scheme
module Support := Tagsim_tags.Support
module Sched := Tagsim_asm.Sched
module Program := Tagsim_compiler.Program
module Registry := Tagsim_programs.Registry

exception Wrong_result of string

type measurement = {
  entry : Registry.entry;
  scheme : Scheme.t;
  support : Support.t;
  stats : Stats.t;
  gc_collections : int;
  gc_bytes_copied : int;
  meta : Program.meta;
}

(** A point of the experiment matrix, as submitted to {!run_many}.  The
    simulator engine is an explicit field (no global state); all engines
    produce bit-identical statistics, so it only selects the speed of
    reproduction. *)
type config = {
  c_sched : Sched.config;
  c_opt : Program.opt; (* backend optimization level; changes code *)
  c_scheme : Scheme.t;
  c_support : Support.t;
  c_entry : Registry.entry;
  c_engine : Machine.engine;
}

(** Empty the in-process memo cache (tests; the persistent store is
    {!Cache}'s and is untouched). *)
val clear_cache : unit -> unit

(** Drop the shared compiler front ends (cold-run benchmarking). *)
val reset_frontends : unit -> unit

(** The persistent-store key of a configuration: engine-agnostic
    content-addressed digest (see {!Cache.key}). *)
val cache_key : config -> string

(** Number of actual simulations performed since start (or the last
    {!reset_simulations}): memo-cache misses only.  Exact only for
    serial fan-outs ([jobs:1]) — concurrent workers may duplicate a
    computation. *)
val simulations : unit -> int

val reset_simulations : unit -> unit

(** Engine-agnostic identity of a configuration (entry, scheme, support,
    scheduler, optimization level): the key of the planner's measurement
    store. *)
val matrix_key : config -> string

(** Engine-qualified memo key. *)
val config_key : config -> string

val run :
  ?sched:Sched.config ->
  ?opt:Program.opt ->
  ?engine:Machine.engine ->
  scheme:Scheme.t ->
  support:Support.t ->
  Registry.entry ->
  measurement

(** Build a configuration; [opt] defaults to [`None], [engine] to
    [`Traced]. *)
val config :
  ?sched:Sched.config ->
  ?opt:Program.opt ->
  ?engine:Machine.engine ->
  scheme:Scheme.t ->
  support:Support.t ->
  Registry.entry ->
  config

val run_config : config -> measurement

(** Run a configuration matrix on the pool's worker domains ([jobs]
    defaults to {!Pool.default_jobs}) and return the measurements in
    input order.  Duplicated configurations are simulated once, and the
    memo + persistent caches are consulted before dispatch: only missing
    configurations reach the pool. *)
val run_many : ?jobs:int -> config list -> measurement list

(** The last {!run_many} dispatch-ordering decision (longest-job-first
    over the missing configurations, weighted by previously observed
    cycle counts with source size as the cold fallback), for
    [--verbose]; [None] until a dispatch actually fanned out. *)
val dispatch_summary : unit -> string option

val all_entries : unit -> Registry.entry list

(** {1 Aggregation helpers} *)

val pct : int -> int -> float
val mean : float list -> float
val stddev : float list -> float
