(** Table 1: percentage increase in execution time when full run-time
    checking is added, with the arith / vector / list contributions.
    Declared as a {!Spec.artifact}: the matrix is the suite with and
    without checking; the render is a pure reduction over the store. *)

module Stats = Tagsim_sim.Stats
module Annot = Tagsim_mipsx.Annot
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module Registry = Tagsim_programs.Registry

type row = {
  name : string;
  arith : float; (* added arithmetic-checking cycles, % of base time *)
  vector : float;
  list : float;
  other : float; (* symbol/other checks added by checking *)
  total : float; (* measured total increase *)
  paper_total : float;
}

type t = { rows : row list; average : row }

(* Cycles that exist only because checking is on, attributed to a source:
   extraction + compare/branch, plus (for arithmetic) the generic-arith
   dispatch and trap overhead. *)
let added_cycles stats (src : Annot.source) =
  Stats.extraction_of ~checking:true stats src
  + Stats.check_only ~checking:true ~source:src stats
  + if src = Annot.Arith_op then Stats.generic_arith ~checking:true stats else 0

let base_support = Support.software
let chk_support = Support.with_checking Support.software

let configs_for scheme entries =
  List.concat_map
    (fun entry ->
      [
        Run.config ~scheme ~support:base_support entry;
        Run.config ~scheme ~support:chk_support entry;
      ])
    entries

let render_for scheme entries (lookup : Spec.lookup) =
  let rows =
    List.map
      (fun entry ->
        let base = lookup (Run.config ~scheme ~support:base_support entry) in
        let chk = lookup (Run.config ~scheme ~support:chk_support entry) in
        let b = Stats.total base.Run.stats in
        let s = chk.Run.stats in
        {
          name = entry.Registry.name;
          arith = Run.pct (added_cycles s Annot.Arith_op) b;
          vector = Run.pct (added_cycles s Annot.Vector_op) b;
          list = Run.pct (added_cycles s Annot.List_op) b;
          other =
            Run.pct
              (added_cycles s Annot.Symbol_op + added_cycles s Annot.Other_op)
              b;
          total = Run.pct (Stats.total s - b) b;
          paper_total = entry.Registry.paper.Registry.p_total;
        })
      entries
  in
  let avg f = Run.mean (List.map f rows) in
  let average =
    {
      name = "average";
      arith = avg (fun r -> r.arith);
      vector = avg (fun r -> r.vector);
      list = avg (fun r -> r.list);
      other = avg (fun r -> r.other);
      total = avg (fun r -> r.total);
      paper_total = 24.59;
    }
  in
  { rows; average }

let pp ppf t =
  Fmt.pf ppf
    "Table 1: %% increase in execution time when run-time checking is added@\n";
  Fmt.pf ppf "%-8s %8s %8s %8s %8s %8s   %s@\n" "" "arith" "vector" "list"
    "other" "total" "(paper total)";
  let row ppf r =
    Fmt.pf ppf "%-8s %8.2f %8.2f %8.2f %8.2f %8.2f   (%.2f)" r.name r.arith
      r.vector r.list r.other r.total r.paper_total
  in
  List.iter (fun r -> Fmt.pf ppf "%a@\n" row r) t.rows;
  Fmt.pf ppf "%a@\n" row t.average

(* --- sinks --- *)

let json_of_row r =
  Spec.J_obj
    [
      ("name", Spec.J_string r.name);
      ("arith", Spec.J_float r.arith);
      ("vector", Spec.J_float r.vector);
      ("list", Spec.J_float r.list);
      ("other", Spec.J_float r.other);
      ("total", Spec.J_float r.total);
      ("paper_total", Spec.J_float r.paper_total);
    ]

let json_of t =
  Spec.J_obj
    [
      ("rows", Spec.J_list (List.map json_of_row t.rows));
      ("average", json_of_row t.average);
    ]

let tables_of t =
  let cells r =
    [
      r.name; Spec.cell r.arith; Spec.cell r.vector; Spec.cell r.list;
      Spec.cell r.other; Spec.cell r.total; Spec.cell r.paper_total;
    ]
  in
  [
    {
      Spec.t_name = "table1";
      columns =
        [ "name"; "arith"; "vector"; "list"; "other"; "total"; "paper_total" ];
      rows = List.map cells (t.rows @ [ t.average ]);
    };
  ]

let title = "% increase in execution time from full run-time checking"

let to_rendered t =
  {
    Spec.r_name = "table1";
    r_title = title;
    r_text = Spec.text_of pp t;
    r_json = json_of t;
    r_tables = tables_of t;
  }

let artifact =
  {
    Spec.a_name = "table1";
    a_title = title;
    a_configs = configs_for Scheme.high5;
    a_render =
      (fun entries lookup -> to_rendered (render_for Scheme.high5 entries lookup));
  }

let measure ?(scheme = Scheme.high5) () =
  let entries = Run.all_entries () in
  render_for scheme entries (Spec.lookup_of (configs_for scheme entries))
