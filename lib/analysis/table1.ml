(** Table 1: percentage increase in execution time when full run-time
    checking is added, with the arith / vector / list contributions. *)

module Stats = Tagsim_sim.Stats
module Annot = Tagsim_mipsx.Annot
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module Registry = Tagsim_programs.Registry

type row = {
  name : string;
  arith : float; (* added arithmetic-checking cycles, % of base time *)
  vector : float;
  list : float;
  other : float; (* symbol/other checks added by checking *)
  total : float; (* measured total increase *)
  paper_total : float;
}

type t = { rows : row list; average : row }

(* Cycles that exist only because checking is on, attributed to a source:
   extraction + compare/branch, plus (for arithmetic) the generic-arith
   dispatch and trap overhead. *)
let added_cycles stats (src : Annot.source) =
  Stats.extraction_of ~checking:true stats src
  + Stats.check_only ~checking:true ~source:src stats
  + if src = Annot.Arith_op then Stats.generic_arith ~checking:true stats else 0

let measure ?(scheme = Scheme.high5) () =
  let base_support = Support.software in
  let chk_support = Support.with_checking Support.software in
  (* Warm the measurement cache in parallel before the serial
     aggregation below. *)
  ignore
    (Run.run_many
       (List.concat_map
          (fun entry ->
            [
              Run.config ~scheme ~support:base_support entry;
              Run.config ~scheme ~support:chk_support entry;
            ])
          (Run.all_entries ())));
  let rows =
    List.map
      (fun entry ->
        let base = Run.run ~scheme ~support:base_support entry in
        let chk = Run.run ~scheme ~support:chk_support entry in
        let b = Stats.total base.Run.stats in
        let s = chk.Run.stats in
        {
          name = entry.Registry.name;
          arith = Run.pct (added_cycles s Annot.Arith_op) b;
          vector = Run.pct (added_cycles s Annot.Vector_op) b;
          list = Run.pct (added_cycles s Annot.List_op) b;
          other =
            Run.pct
              (added_cycles s Annot.Symbol_op + added_cycles s Annot.Other_op)
              b;
          total = Run.pct (Stats.total s - b) b;
          paper_total = entry.Registry.paper.Registry.p_total;
        })
      (Run.all_entries ())
  in
  let avg f = Run.mean (List.map f rows) in
  let average =
    {
      name = "average";
      arith = avg (fun r -> r.arith);
      vector = avg (fun r -> r.vector);
      list = avg (fun r -> r.list);
      other = avg (fun r -> r.other);
      total = avg (fun r -> r.total);
      paper_total = 24.59;
    }
  in
  { rows; average }

let pp ppf t =
  Fmt.pf ppf
    "Table 1: %% increase in execution time when run-time checking is added@\n";
  Fmt.pf ppf "%-8s %8s %8s %8s %8s %8s   %s@\n" "" "arith" "vector" "list"
    "other" "total" "(paper total)";
  let row ppf r =
    Fmt.pf ppf "%-8s %8.2f %8.2f %8.2f %8.2f %8.2f   (%.2f)" r.name r.arith
      r.vector r.list r.other r.total r.paper_total
  in
  List.iter (fun r -> Fmt.pf ppf "%a@\n" row r) t.rows;
  Fmt.pf ppf "%a@\n" row t.average
