(** Hardware/software support configuration: which of the paper's
    mechanisms the generated code may rely on.  Together with a
    {!Scheme.t}, this determines the code the compiler emits; the rows of
    Table 2 are particular values of this record. *)

type parallel_check = Pc_none | Pc_lists | Pc_all

type t = {
  runtime_checking : bool;
      (** full run-time error checking on primitive operations (Section 3) *)
  tag_ignoring_mem : bool;
      (** loads/stores that drop the tag bits of the address: no software
          tag removal needed (Table 2 row 1, hardware variant) *)
  tag_branch : bool;
      (** conditional branch on the tag field, without extraction
          (Section 6.1, Table 2 row 2) *)
  hw_generic_arith : bool;
      (** add/sub that check tags and overflow in parallel and trap to a
          software fallback (Section 6.2.2, Table 2 row 4) *)
  parallel_check : parallel_check;
      (** memory operations that check the tag of the address operand in
          parallel with the address calculation (Section 6.2.1, Table 2
          rows 5 and 6) *)
  preshifted_pair_tag : bool;
      (** Section 3.1 ablation: keep a preshifted pair tag in a register,
          reducing cons tag insertion from two cycles to one *)
  int_biased_arith : bool;
      (** integer-biased generic arithmetic (Section 2.2); when false,
          arithmetic always calls the general dispatch routine *)
}

let software =
  {
    runtime_checking = false;
    tag_ignoring_mem = false;
    tag_branch = false;
    hw_generic_arith = false;
    parallel_check = Pc_none;
    preshifted_pair_tag = false;
    int_biased_arith = true;
  }

let with_checking t = { t with runtime_checking = true }

(* The rows of Table 2 (applied on top of the base scheme; row 1's software
   variant is expressed by compiling with a low-tag scheme instead). *)
let row1_hw = { software with tag_ignoring_mem = true }
let row2 = { software with tag_branch = true }
let row3 = { software with tag_ignoring_mem = true; tag_branch = true }
let row4 = { software with hw_generic_arith = true }
let row5 = { software with parallel_check = Pc_lists }
let row6 = { software with parallel_check = Pc_all }

let row7 =
  {
    software with
    tag_ignoring_mem = true;
    tag_branch = true;
    hw_generic_arith = true;
    parallel_check = Pc_all;
  }

(* SPUR (Section 7): row 7 but with parallel checking on list accesses
   only. *)
let spur = { row7 with parallel_check = Pc_lists }

(* The named configurations, in Table 2 order: the single source of
   truth for the CLI's [--hw] parser and the spec layer's Table 2
   matrix. *)
let all_named =
  [
    ("software", software);
    ("row1", row1_hw);
    ("row2", row2);
    ("row3", row3);
    ("row4", row4);
    ("row5", row5);
    ("row6", row6);
    ("row7", row7);
    ("spur", spur);
  ]

let by_name name = List.assoc_opt name all_named

let describe t =
  let flags =
    [
      (t.runtime_checking, "rtc");
      (t.tag_ignoring_mem, "ti-mem");
      (t.tag_branch, "tag-branch");
      (t.hw_generic_arith, "hw-garith");
      (t.parallel_check = Pc_lists, "pc-lists");
      (t.parallel_check = Pc_all, "pc-all");
      (t.preshifted_pair_tag, "preshift");
      (not t.int_biased_arith, "dispatch-arith");
    ]
  in
  match List.filter_map (fun (b, s) -> if b then Some s else None) flags with
  | [] -> "software"
  | l -> String.concat "+" l
