(** Hardware/software support configuration: which of the paper's
    mechanisms the generated code may rely on.  Together with a
    {!Scheme.t} this determines the code the compiler emits; the rows of
    Table 2 are particular values of this record. *)

type parallel_check = Pc_none | Pc_lists | Pc_all

type t = {
  runtime_checking : bool;
      (** full run-time error checking on primitive operations *)
  tag_ignoring_mem : bool;
      (** loads/stores that drop the tag bits of the address (row 1) *)
  tag_branch : bool;
      (** conditional branch on the tag field, without extraction (row 2) *)
  hw_generic_arith : bool;
      (** add/sub that check tags and overflow in parallel and trap (row 4) *)
  parallel_check : parallel_check;
      (** memory operations that check the address operand's tag in
          parallel with the address calculation (rows 5 and 6) *)
  preshifted_pair_tag : bool;
      (** Section 3.1 ablation: a preshifted pair tag in a register *)
  int_biased_arith : bool;
      (** integer-biased generic arithmetic (Section 2.2); when false,
          every arithmetic operation calls the general dispatch routine *)
}

val software : t
val with_checking : t -> t

(** {1 The rows of Table 2} *)

val row1_hw : t
val row2 : t
val row3 : t
val row4 : t
val row5 : t
val row6 : t
val row7 : t

(** Section 7: row 7 but with parallel checking on list accesses only. *)
val spur : t

(** The named configurations above, in Table 2 order ([software],
    [row1] .. [row7], [spur]): the single source of truth for the CLI's
    [--hw] parser and the experiment-plan layer. *)
val all_named : (string * t) list

(** Look a configuration up in {!all_named}. *)
val by_name : string -> t option

val describe : t -> string
