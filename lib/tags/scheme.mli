(** Tag implementation schemes: where the tag lives in a 32-bit word,
    which tag values denote which Lisp types, and how integers are
    represented.  The four schemes are the ones the paper evaluates —
    High5 (Section 2.1), High6 (Section 4.2), Low2 and Low3
    (Section 5.2); see the implementation header for their layouts. *)

type ty = Int | Pair | Symbol | Vector | Boxnum

val ty_name : ty -> string

(** Dense, stable codes for {!ty} (and back), used by the
    relocatable-object serialisation format. *)
val ty_code : ty -> int

(** Raises [Invalid_argument] on an unknown code. *)
val ty_of_code : int -> ty

type layout = High5 | High6 | Low2 | Low3

(** Header subtypes for objects behind the Low2 escape tag (present in
    every scheme for layout uniformity). *)
val subtype_vector : int

val subtype_boxnum : int

type t = {
  name : string;
  layout : layout;
  tag_shift : int;
  tag_width : int;
  addr_mask : int; (* word -> address bits actually used by memory *)
  data_mask : int; (* mask-register contents for software tag removal *)
  obj_align : int; (* object alignment in bytes *)
  int_bits : int; (* usable integer precision *)
  int_min : int;
  int_max : int;
  tag : ty -> int; (* tag value of a non-integer type *)
  needs_mask : bool; (* software tag removal required (High5/High6) *)
}

val tag_of_word : t -> int -> int
val high5 : t
val high6 : t
val low2 : t
val low3 : t
val all : t list

(** Look a scheme up by name; raises [Invalid_argument] if unknown. *)
val by_name : string -> t

val is_low : t -> bool

(** {1 Host-side encoding and decoding} *)

(** Encode an OCaml integer as a Lisp integer item; raises
    [Invalid_argument] when out of the scheme's range. *)
val encode_int : t -> int -> int

(** Decode a Lisp integer item (assumes the item is an integer). *)
val decode_int : t -> int -> int

(** Is a word a valid integer item?  Also the semantics of the hardware
    integer test used by [Add_gen]. *)
val is_int_item : t -> int -> bool

(** Did an integer add/sub overflow, given both operands were integers?
    The third argument is the 32-bit wrapped result. *)
val gen_overflowed : t -> int -> int -> int -> bool

(** Encode a pointer with the tag of the given type; the address must be
    [obj_align]-aligned. *)
val encode_ptr : t -> ty -> int -> int

(** Address of the object a pointer item refers to. *)
val ptr_addr : t -> int -> int

(** Classify an item.  [peek] reads a data-memory word; Low2 needs it to
    discriminate the escape tag via the header subtype. *)
val classify : t -> peek:(int -> int) -> int -> ty

(** Offset correction the compiler must fold into accesses through a
    tagged pointer of the given type (non-zero only for Low3). *)
val offset_correction : t -> ty -> int

(** Machine hardware description for this scheme. *)
val machine_hw :
  ?mem_bytes:int -> ?trap_overhead:int -> t -> Tagsim_sim.Machine.hw
