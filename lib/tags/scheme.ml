(** Tag implementation schemes.

    A scheme fixes where the tag lives in a 32-bit word, which tag values
    denote which Lisp types, and how integers are represented.  The four
    schemes are the ones the paper evaluates:

    - {b High5} (Section 2.1): a 5-bit tag in bits 31..27.  Positive
      integers have tag 0 and negative integers tag 31, so a Lisp integer
      {e is} its two's-complement machine representation (27-bit range).
      The data part of pointers must be masked before use.
    - {b High6} (Section 4.2): a 6-bit tag chosen so that the sum of two
      non-integer tags (with carry-in) can never look like a valid integer
      item; a generic add can then do all its type and overflow checking
      with a single check on the result.
    - {b Low2} (Section 5.2): the tag is the two low-order bits, which the
      word-addressed memory system ignores; integers are [n lsl 2] with tag
      00, and no tag removal is ever needed.  Only pairs and symbols get
      their own tag values; everything else shares the escape tag 11 and is
      discriminated by a header word.
    - {b Low3} (Section 5.2): three low-order bits; even and odd integers
      take 000 and 100 (so integers are again [n lsl 2]); pairs, symbols,
      vectors and boxed numbers get their own tags; objects are aligned on
      8-byte boundaries and the compiler folds the remaining tag bit into
      the load/store offset, so tag removal again costs nothing. *)

module Word = Tagsim_mipsx.Word

type ty = Int | Pair | Symbol | Vector | Boxnum

let ty_name = function
  | Int -> "int"
  | Pair -> "pair"
  | Symbol -> "symbol"
  | Vector -> "vector"
  | Boxnum -> "boxnum"

(* Dense codes, stable across runs: the relocatable-object format stores
   them to rebuild tagged-datum closures on reload. *)
let ty_code = function Int -> 0 | Pair -> 1 | Symbol -> 2 | Vector -> 3 | Boxnum -> 4

let ty_of_code = function
  | 0 -> Int
  | 1 -> Pair
  | 2 -> Symbol
  | 3 -> Vector
  | 4 -> Boxnum
  | n -> invalid_arg (Printf.sprintf "Scheme.ty_of_code: %d" n)

type layout = High5 | High6 | Low2 | Low3

(* Header subtypes for objects behind the Low2 escape tag (and present,
   for layout uniformity, in every scheme). *)
let subtype_vector = 1
let subtype_boxnum = 2

type t = {
  name : string;
  layout : layout;
  tag_shift : int;
  tag_width : int;
  addr_mask : int; (* word -> address bits actually used by memory *)
  data_mask : int; (* mask register contents for software tag removal *)
  obj_align : int; (* object alignment in bytes *)
  int_bits : int; (* usable integer precision *)
  int_min : int;
  int_max : int;
  tag : ty -> int; (* tag value of a non-integer type *)
  needs_mask : bool; (* software tag removal required (High5/High6) *)
}

let tag_of_word t w = Word.field ~shift:t.tag_shift ~width:t.tag_width w

(* --- High-tag schemes. --- *)

let high_tag ~name ~layout ~width ~tags () =
  let shift = 32 - width in
  let int_bits = shift in
  {
    name;
    layout;
    tag_shift = shift;
    tag_width = width;
    addr_mask = (1 lsl shift) - 1;
    data_mask = (1 lsl shift) - 1;
    obj_align = 4;
    int_bits;
    int_min = -(1 lsl (int_bits - 1));
    int_max = (1 lsl (int_bits - 1)) - 1;
    tag = tags;
    needs_mask = true;
  }

let high5 =
  let tags = function
    | Pair -> 1
    | Symbol -> 2
    | Vector -> 3
    | Boxnum -> 4
    | Int -> invalid_arg "integers have tags 0 and 31"
  in
  high_tag ~name:"high5" ~layout:High5 ~width:5 ~tags ()

(* High6 non-integer tags are drawn from [17, 21] (binary 01xxxx): the sum
   of any two items at least one of which is a non-integer can never have
   its top seven bits uniform, so a single validity check on the result of
   an add performs the whole generic-add type-and-overflow test
   (Section 4.2). *)
let high6 =
  let tags = function
    | Pair -> 17
    | Symbol -> 18
    | Vector -> 19
    | Boxnum -> 20
    | Int -> invalid_arg "integers have tags 0 and 63"
  in
  high_tag ~name:"high6" ~layout:High6 ~width:6 ~tags ()

(* --- Low-tag schemes. --- *)

let low2 =
  let tags = function
    | Pair -> 1
    | Symbol -> 2
    | Vector -> 3 (* escape tag; discriminated by header subtype *)
    | Boxnum -> 3
    | Int -> invalid_arg "integers have tag 0"
  in
  {
    name = "low2";
    layout = Low2;
    tag_shift = 0;
    tag_width = 2;
    addr_mask = lnot 3 land Word.mask;
    data_mask = lnot 3 land Word.mask;
    obj_align = 4;
    int_bits = 30;
    int_min = -(1 lsl 29);
    int_max = (1 lsl 29) - 1;
    tag = tags;
    needs_mask = false;
  }

let low3 =
  let tags = function
    | Pair -> 1 (* 001 *)
    | Symbol -> 2 (* 010 *)
    | Vector -> 5 (* 101: bit 2 folded into the access offset *)
    | Boxnum -> 6 (* 110 *)
    | Int -> invalid_arg "integers have tags 0 and 4"
  in
  {
    name = "low3";
    layout = Low3;
    tag_shift = 0;
    tag_width = 3;
    addr_mask = lnot 7 land Word.mask;
    data_mask = lnot 7 land Word.mask;
    obj_align = 8;
    int_bits = 30;
    int_min = -(1 lsl 29);
    int_max = (1 lsl 29) - 1;
    tag = tags;
    needs_mask = false;
  }

let all = [ high5; high6; low2; low3 ]

let by_name name =
  match List.find_opt (fun s -> s.name = name) all with
  | Some s -> s
  | None -> invalid_arg ("unknown tag scheme: " ^ name)

(* --- Host-side encoding and decoding. --- *)

let is_low t = match t.layout with Low2 | Low3 -> true | High5 | High6 -> false

(** Encode an OCaml integer as a Lisp integer item. *)
let encode_int t n =
  if n < t.int_min || n > t.int_max then
    invalid_arg (Printf.sprintf "%d out of the %d-bit integer range" n t.int_bits);
  if is_low t then Word.of_int (n lsl 2) else Word.of_int n

(** Decode a Lisp integer item to an OCaml integer (assumes the item is an
    integer). *)
let decode_int t w =
  if is_low t then Word.to_signed w asr 2
  else Word.to_signed (Word.sra (Word.sll w (32 - t.int_bits)) (32 - t.int_bits))

(** Is a word a valid integer item?  This is also the semantics of the
    hardware integer test used by [Add_gen]. *)
let is_int_item t w =
  if is_low t then w land 3 = 0
  else Word.sra (Word.sll w (32 - t.int_bits)) (32 - t.int_bits) = w

(** Did an integer add/sub overflow, given both operands were integers?
    [result] is the 32-bit wrapped result. *)
let gen_overflowed t a b result =
  if is_low t then
    (* Integers are n lsl 2, so Lisp overflow is exactly 32-bit signed
       overflow of the items. *)
    (a lxor result) land (b lxor result) land 0x80000000 <> 0
  else not (is_int_item t result)

(** Encode a pointer to [addr] with the tag of [ty]. *)
let encode_ptr t ty addr =
  if ty = Int then invalid_arg "encode_ptr: Int";
  if addr land (t.obj_align - 1) <> 0 then
    invalid_arg (Printf.sprintf "unaligned address %d for %s" addr (ty_name ty));
  match t.layout with
  | High5 | High6 -> Word.of_int ((t.tag ty lsl t.tag_shift) lor addr)
  | Low2 | Low3 -> Word.of_int (addr lor t.tag ty)

(** Address of the object a pointer item refers to. *)
let ptr_addr t w =
  match t.layout with
  | High5 | High6 -> w land t.addr_mask
  | Low2 | Low3 -> w land t.addr_mask

(** Classify an item.  [peek] reads a data-memory word; Low2 needs it to
    discriminate the escape tag via the header subtype. *)
let classify t ~peek w =
  if is_int_item t w then Int
  else
    let tag = tag_of_word t w in
    match t.layout with
    | High5 | High6 ->
        if tag = t.tag Pair then Pair
        else if tag = t.tag Symbol then Symbol
        else if tag = t.tag Vector then Vector
        else if tag = t.tag Boxnum then Boxnum
        else invalid_arg (Printf.sprintf "unknown tag %d" tag)
    | Low2 ->
        if tag = 1 then Pair
        else if tag = 2 then Symbol
        else
          let subtype = peek (ptr_addr t w) in
          if subtype = subtype_vector then Vector
          else if subtype = subtype_boxnum then Boxnum
          else invalid_arg (Printf.sprintf "unknown escape subtype %d" subtype)
    | Low3 ->
        if tag = 1 then Pair
        else if tag = 2 then Symbol
        else if tag = 5 then Vector
        else if tag = 6 then Boxnum
        else invalid_arg (Printf.sprintf "unknown tag %d" tag)

(** For low-tag pointer accesses the architecture drops the low two address
    bits for free; any remaining tag contribution (bit 2 in Low3) must be
    cancelled by the compiler in the access offset.  Returns the offset
    correction to add when indexing off a tagged pointer of type [ty]. *)
let offset_correction t ty =
  match t.layout with
  | High5 | High6 -> 0 (* pointer is masked (or the access ignores tags) *)
  | Low2 -> 0
  | Low3 -> -(t.tag ty land lnot 3)

(** Machine hardware description for this scheme. *)
let machine_hw ?(mem_bytes = 1 lsl 22) ?(trap_overhead = 16) t :
    Tagsim_sim.Machine.hw =
  {
    Tagsim_sim.Machine.mem_bytes;
    tag_shift = t.tag_shift;
    tag_width = t.tag_width;
    addr_mask = t.addr_mask land (mem_bytes - 1);
    is_int_item = is_int_item t;
    gen_overflowed = gen_overflowed t;
    trap_overhead;
  }
