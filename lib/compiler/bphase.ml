(** Wall-clock accounting for the backend's internal phases, mirroring
    the pipeline-level {!Tagsim_analysis.Instrument} (which re-exports
    these totals): monolithic code generation, the incremental path's
    lowering / optimization / selection split, per-unit delay-slot
    scheduling, monolithic assembly, and incremental linking.  The
    monolithic path schedules inside {!Tagsim_asm.Image.assemble}, so
    its scheduling time lands in [Assemble]; the incremental path
    charges [Lower]/[Opt]/[Select] per unit, [Schedule] per unit and
    [Link] for layout plus relocation patching.  Workers on any domain
    accumulate into the shared totals (mutex-protected; the amounts are
    milliseconds-coarse, so one lock is irrelevant). *)

type phase = Codegen | Lower | Opt | Select | Schedule | Assemble | Link

type totals = {
  codegen_s : float;
  lower_s : float;
  opt_s : float;
  select_s : float;
  schedule_s : float;
  assemble_s : float;
  link_s : float;
}

let now () = Unix.gettimeofday ()

let mutex = Mutex.create ()
let codegen_s = ref 0.0
let lower_s = ref 0.0
let opt_s = ref 0.0
let select_s = ref 0.0
let schedule_s = ref 0.0
let assemble_s = ref 0.0
let link_s = ref 0.0

let slot = function
  | Codegen -> codegen_s
  | Lower -> lower_s
  | Opt -> opt_s
  | Select -> select_s
  | Schedule -> schedule_s
  | Assemble -> assemble_s
  | Link -> link_s

let add phase dt =
  Mutex.protect mutex (fun () ->
      let r = slot phase in
      r := !r +. dt)

let time phase f =
  let t0 = now () in
  Fun.protect ~finally:(fun () -> add phase (now () -. t0)) f

let totals () =
  Mutex.protect mutex (fun () ->
      {
        codegen_s = !codegen_s;
        lower_s = !lower_s;
        opt_s = !opt_s;
        select_s = !select_s;
        schedule_s = !schedule_s;
        assemble_s = !assemble_s;
        link_s = !link_s;
      })

let reset () =
  Mutex.protect mutex (fun () ->
      codegen_s := 0.0;
      lower_s := 0.0;
      opt_s := 0.0;
      select_s := 0.0;
      schedule_s := 0.0;
      assemble_s := 0.0;
      link_s := 0.0)
