(** Compile-time symbol table.  Symbols are interned to dense indices;
    the table is emitted as the first static datum, so it sits at the
    fixed address {!Tagsim_runtime.Layout.symtab_base} and symbol items
    are compile-time constants. *)

type t

(** A table with [nil] and [t] pre-interned at their fixed indices. *)
val with_builtins : unit -> t

val intern : t -> string -> int

(** Mark a symbol as naming a compiled function of the given arity (its
    function cell will hold the code address, and its name-id word will
    carry the arity for the [funcall] arity check). *)
val mark_function : t -> string -> arity:int -> unit

(** Does the symbol name a compiled function? *)
val is_function : t -> string -> bool

(** The arity recorded by {!mark_function}, if the symbol names a
    compiled function. *)
val arity_of : t -> string -> int option

val count : t -> int
val names : t -> string list

(** Names interned at index [from] or later, in intern order (the
    intern effect of a compilation unit). *)
val names_from : t -> int -> string list
val name_of : t -> int -> string
val find_opt : t -> string -> int option

(** Emit the table; must be the first data emitted into the buffer. *)
val emit_data : t -> Tagsim_tags.Scheme.t -> Tagsim_asm.Buf.t -> unit
