(** Check elimination: a forward tag-knowledge dataflow pass over
    {!Tir}.

    The analysis tracks, per storage key (temporary register, frame
    slot, global value cell), the type its current value is known to
    have.  Knowledge is seeded by literals, allocator results and
    dominating checks, intersected at control-flow joins, and killed
    when a value may change.  It is then used to delete redundant
    [Checkty]/[Checkint] operations and to downgrade generic
    arithmetic whose operands are known fixnums (setting
    [a_int]/[b_int], which elide the inline operand tests).

    Soundness invariants (see DESIGN.md):

    - Every elidable operation is checking-gated: under a
      non-checking support it emits nothing, so knowledge may assume
      checking-on semantics — on the fall-through edge of a check (or
      of a typed field access, whose own check dominates it) the value
      {e is} of the checked type, because the other path trapped.
    - [Tybranch]/[Intbranch] (type predicates) are semantics-bearing
      and are never deleted; they only contribute edge knowledge.
    - Vector bounds checks are value checks, not type checks, and are
      never deleted.
    - Temporaries and locals survive calls and GC points: calls
      spill/reload every live temporary and cached local, and the
      copying collector preserves the type of every relocated item.
    - Globals are killed at user calls ([Calluser]/[Funcall]) — the
      callee may assign any symbol's value cell — but survive pure GC
      points ([Consop]/[Mkvect]/[Makebox]/[Reclaim]): collection moves
      objects without changing any value's type.
    - Temporaries above the call base are clobbered by the callee (only
      temps below the base and the listed register-cached locals are
      spilled), so they are killed too.
    - Arithmetic results are {e not} known fixnums: the generic
      fallback may return a boxnum on overflow. *)

module Reg = Tagsim_mipsx.Reg
module Scheme = Tagsim_tags.Scheme
module Ast = Tagsim_lisp.Ast

module Key = struct
  type t = Kreg of int | Kslot of int | Kglob of string

  let compare = compare
end

module KM = Map.Make (Key)

(* [know] maps a key to the type its value is known to have; [orig]
   maps a key holding a copy to the key it was copied from (one level),
   so a dominating check on the copy also refines the source — the
   common [(if (pairp x) (car x))] shape checks the temporary loaded
   from [x]. *)
type state = { know : Scheme.ty KM.t; orig : Key.t KM.t }

let empty = { know = KM.empty; orig = KM.empty }

let key_of_loc = function
  | Tir.Lreg (r, _) -> Key.Kreg r
  | Tir.Lslot off -> Key.Kslot off
  | Tir.Lglobal v -> Key.Kglob v

(* The value at [k] changed: drop its knowledge, its copy-origin, and
   every copy-origin pointing at it. *)
let write st k ty_opt =
  let know =
    match ty_opt with
    | Some ty -> KM.add k ty st.know
    | None -> KM.remove k st.know
  in
  let orig = KM.remove k st.orig in
  let orig = KM.filter (fun _ src -> src <> k) orig in
  { know; orig }

let copy_from st dst src =
  let st = write st dst (KM.find_opt src st.know) in
  { st with orig = KM.add dst src st.orig }

(* [v] (a register) is now known to be [ty]; propagate through its
   copy-origin. *)
let refine st v ty =
  let k = Key.Kreg v in
  let know = KM.add k ty st.know in
  let know =
    match KM.find_opt k st.orig with
    | Some src -> KM.add src ty know
    | None -> know
  in
  { st with know }

let kill_globals st =
  let not_glob = function Key.Kglob _ -> false | _ -> true in
  {
    know = KM.filter (fun k _ -> not_glob k) st.know;
    orig = KM.filter (fun k src -> not_glob k && not_glob src) st.orig;
  }

(* A call clobbers every temporary register at or above the base except
   the spilled-and-reloaded register-cached locals. *)
let kill_call_temps st ~base ~saves =
  let lo = Reg.temp base in
  let clobbered = function
    | Key.Kreg r -> r >= lo && not (List.mem_assoc r saves)
    | Key.Kslot _ | Key.Kglob _ -> false
  in
  {
    know = KM.filter (fun k _ -> not (clobbered k)) st.know;
    orig =
      KM.filter (fun k src -> not (clobbered k || clobbered src)) st.orig;
  }

let const_ty = function
  | Ast.Cint _ -> Scheme.Int
  | Ast.Csym _ -> Scheme.Symbol
  | Ast.Clist [] -> Scheme.Symbol (* nil *)
  | Ast.Clist _ -> Scheme.Pair

(* State after executing a non-branching op from state [st]. *)
let transfer st (op : Tir.op) =
  match op with
  | Tir.Label _ -> st
  | Tir.Constop { dst; c } -> write st (Key.Kreg dst) (Some (const_ty c))
  | Tir.Consttrue { dst } -> write st (Key.Kreg dst) (Some Scheme.Symbol)
  | Tir.Loadvar { dst; src } -> copy_from st (Key.Kreg dst) (key_of_loc src)
  | Tir.Storevar { dst; src } | Tir.Bind { dst; src } ->
      write st (key_of_loc dst) (KM.find_opt (Key.Kreg src) st.know)
  | Tir.Checkty { v; ty; _ } -> refine st v ty
  | Tir.Checkint { v; _ } -> refine st v Scheme.Int
  | Tir.Fieldload { r; ty; result_int; _ } ->
      let st = refine st r ty in
      write st (Key.Kreg r) (if result_int then Some Scheme.Int else None)
  | Tir.Fieldstore { robj; rval; ty; result_obj; _ } ->
      let st = refine st robj ty in
      if result_obj then st
      else write st (Key.Kreg robj) (KM.find_opt (Key.Kreg rval) st.know)
  | Tir.Consop { rd; scratch; _ } ->
      let st = write st (Key.Kreg rd) (Some Scheme.Pair) in
      write st (Key.Kreg scratch) None
  | Tir.Arith { ra; _ } ->
      (* The result may be a boxnum (generic fallback on overflow). *)
      write st (Key.Kreg ra) None
  | Tir.Logic { ra; _ } -> write st (Key.Kreg ra) (Some Scheme.Int)
  | Tir.Mkvect { r } -> write st (Key.Kreg r) (Some Scheme.Vector)
  | Tir.Makebox { r } -> write st (Key.Kreg r) (Some Scheme.Boxnum)
  | Tir.Vecref { rv; relt; scratch; store; _ } ->
      let st = refine st rv Scheme.Vector in
      let st = write st (Key.Kreg scratch) None in
      if store then
        write st (Key.Kreg rv) (KM.find_opt (Key.Kreg relt) st.know)
      else write st (Key.Kreg rv) None
  | Tir.Gccount { r } -> write st (Key.Kreg r) (Some Scheme.Int)
  | Tir.Reclaim { r } -> write st (Key.Kreg r) (Some Scheme.Symbol) (* nil *)
  | Tir.Calluser { base; saves; _ } | Tir.Funcall { base; saves; _ } ->
      let st = kill_globals st in
      let st = kill_call_temps st ~base ~saves in
      write st (Key.Kreg (Reg.temp base)) None
  | Tir.Jump _ | Tir.Branch _ | Tir.Tybranch _ | Tir.Intbranch _
  | Tir.Traperror ->
      st

(* Pointwise intersection: keep only facts both predecessors agree
   on. *)
let join a b =
  {
    know =
      KM.merge
        (fun _ x y ->
          match (x, y) with
          | Some tx, Some ty when tx = ty -> Some tx
          | _ -> None)
        a.know b.know;
    orig =
      KM.merge
        (fun _ x y ->
          match (x, y) with
          | Some kx, Some ky when kx = ky -> Some kx
          | _ -> None)
        a.orig b.orig;
  }

let equal_state a b =
  KM.equal ( = ) a.know b.know && KM.equal ( = ) a.orig b.orig

(* Successor edges of op [i] as (index, state-at-entry) pairs. *)
let edges ops label_ix i st =
  let op = ops.(i) in
  let target l : int = Hashtbl.find label_ix l in
  match op with
  | Tir.Jump l -> [ (target l, st) ]
  | Tir.Branch { target = l; _ } -> [ (i + 1, st); (target l, st) ]
  | Tir.Tybranch { v; ty; sense; target = l } -> (
      match sense with
      | `Is -> [ (i + 1, st); (target l, refine st v ty) ]
      | `Is_not -> [ (i + 1, refine st v ty); (target l, st) ] )
  | Tir.Intbranch { v; sense; target = l } -> (
      match sense with
      | `Is -> [ (i + 1, st); (target l, refine st v Scheme.Int) ]
      | `Is_not -> [ (i + 1, refine st v Scheme.Int); (target l, st) ] )
  | Tir.Traperror -> []
  | op -> [ (i + 1, transfer st op) ]

(* Compute the state at entry to every op (None = unreachable). *)
let analyze (ops : Tir.op array) =
  let n = Array.length ops in
  let label_ix = Hashtbl.create 16 in
  Array.iteri
    (fun i op ->
      match op with Tir.Label l -> Hashtbl.replace label_ix l i | _ -> ())
    ops;
  let states = Array.make n None in
  let work = Queue.create () in
  let push i st =
    if i < n then begin
      let merged =
        match states.(i) with None -> st | Some old -> join old st
      in
      match states.(i) with
      | Some old when equal_state old merged -> ()
      | _ ->
          states.(i) <- Some merged;
          Queue.add i work
    end
  in
  if n > 0 then push 0 empty;
  while not (Queue.is_empty work) do
    let i = Queue.pop work in
    match states.(i) with
    | None -> ()
    | Some st -> List.iter (fun (j, s) -> push j s) (edges ops label_ix i st)
  done;
  states

(* Delete proven checks and downgrade arithmetic; returns the rewritten
   function and the number of checks eliminated (a static count,
   independent of scheme and support). *)
let run (tf : Tir.fn) : Tir.fn * int =
  let ops = Array.of_list tf.Tir.f_ops in
  let states = analyze ops in
  let eliminated = ref 0 in
  let known st k ty = KM.find_opt k st.know = Some ty in
  let out = ref [] in
  Array.iteri
    (fun i op ->
      match states.(i) with
      | None -> out := op :: !out
      | Some st -> (
          match op with
          | Tir.Checkty { v; ty; _ } when known st (Key.Kreg v) ty ->
              incr eliminated
          | Tir.Checkint { v; _ } when known st (Key.Kreg v) Scheme.Int ->
              incr eliminated
          | Tir.Arith ({ ra; rb; a_int; b_int; _ } as a) ->
              let a_int' = a_int || known st (Key.Kreg ra) Scheme.Int in
              let b_int' = b_int || known st (Key.Kreg rb) Scheme.Int in
              if a_int' && not a_int then incr eliminated;
              if b_int' && not b_int then incr eliminated;
              out :=
                Tir.Arith { a with a_int = a_int'; b_int = b_int' } :: !out
          | op -> out := op :: !out))
    ops;
  ({ tf with Tir.f_ops = List.rev !out }, !eliminated)
