(** Lowering: core AST to the typed tag-operation IR ({!Tir}).

    This pass owns every scheme-agnostic shape decision the monolithic
    generator ({!Codegen}) makes — expression-temporary assignment,
    register-cached locals, frame slots, control-flow labels, literal
    exemptions — and none of the scheme x support instruction
    sequences, which belong to {!Select}.  It is a faithful
    transliteration of {!Codegen.compile_def}: with optimization off,
    [Select.fn (Lower.def ...)] reproduces the monolithic output byte
    for byte (modulo generated label names, which {!Tagsim_asm.Image.equal}
    ignores).

    Symbols are interned here, in the same order the monolithic
    generator interns them while emitting, so the symbol-table
    evolution (and hence every baked-in symbol index) is identical. *)

module Insn = Tagsim_mipsx.Insn
module Annot = Tagsim_mipsx.Annot
module Reg = Tagsim_mipsx.Reg
module Scheme = Tagsim_tags.Scheme
module Ast = Tagsim_lisp.Ast

let errorf fmt = Fmt.kstr (fun s -> raise (Codegen.Error s)) fmt

let max_args = Codegen.max_args
let n_temp_pool = Reg.n_temps
let n_reg_locals = 3

type st = {
  symtab : Symtab.t;
  funcs : (string, int) Hashtbl.t; (* user function -> arity *)
  fname : string;
  mutable env : (string * Tir.loc) list;
  mutable next_slot : int; (* next frame slot byte offset *)
  mutable reg_locals : int; (* how many pool-top registers are in use *)
  mutable next_fresh : int;
  mutable ops : Tir.op list; (* reversed *)
}

let emit st op = st.ops <- op :: st.ops

(* Local labels use lowering-private prefixes (disjoint from every
   prefix {!Select} and {!Tagsim_runtime.Emit} generate through
   [Buf.fresh]), so a unit's label set stays collision-free. *)
let fresh st p =
  let n = st.next_fresh in
  st.next_fresh <- n + 1;
  p ^ "$" ^ string_of_int n

(* Expression temporaries grow from t0 upward; register-cached locals
   are allocated from the top of the same pool downward. *)
let temp st d =
  if d >= n_temp_pool - st.reg_locals then
    errorf
      "expression too deep in %s (more than %d live temporaries); \
       restructure with let"
      st.fname
      (n_temp_pool - st.reg_locals)
  else Reg.temp d

let check_spillable st d =
  if d > n_temp_pool then
    errorf "call at expression depth %d in %s exceeds the spill area" d
      st.fname

(* Upper bound on the number of local slots a function needs (must match
   the monolithic generator's count exactly: it sizes the frame). *)
let rec count_bindings (e : Ast.expr) =
  match e with
  | Ast.Const _ | Ast.Var _ -> 0
  | Ast.If (c, a, b) -> count_bindings c + count_bindings a + count_bindings b
  | Ast.Progn es -> List.fold_left (fun n e -> n + count_bindings e) 0 es
  | Ast.Setq (_, e) -> count_bindings e
  | Ast.While (c, body) ->
      count_bindings c + List.fold_left (fun n e -> n + count_bindings e) 0 body
  | Ast.Let (binds, body) ->
      List.length binds
      + List.fold_left (fun n (_, e) -> n + count_bindings e) 0 binds
      + List.fold_left (fun n e -> n + count_bindings e) 0 body
  | Ast.Call (_, args) ->
      List.fold_left (fun n e -> n + count_bindings e) 0 args
  | Ast.Funcall (f, args) ->
      count_bindings f
      + List.fold_left (fun n e -> n + count_bindings e) 0 args

let lookup st v = List.assoc_opt v st.env

(* Resolve a variable; globals are interned here so the symbol table
   evolves exactly as under the monolithic generator. *)
let var_loc st v =
  match lookup st v with
  | Some l -> l
  | None ->
      ignore (Symtab.intern st.symtab v);
      Tir.Lglobal v

(* Replicate the intern effect of the monolithic generator's
   [const_value] walk (car before cdr, i.e. list order), including the
   top-level nil shortcut that interns nothing. *)
let intern_const st (c : Ast.const) =
  match c with
  | Ast.Csym "nil" | Ast.Clist [] -> ()
  | c ->
      let rec walk = function
        | Ast.Cint _ -> ()
        | Ast.Csym s -> ignore (Symtab.intern st.symtab s)
        | Ast.Clist l -> List.iter walk l
      in
      walk c

(* Innermost binding of each cached register (shadowed bindings of the
   same register must not be spilled twice at calls). *)
let active_reg_locals st =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (_, l) ->
      match l with
      | Tir.Lreg (r, home) when not (Hashtbl.mem seen r) ->
          Hashtbl.replace seen r ();
          Some (r, home)
      | Tir.Lreg _ | Tir.Lslot _ | Tir.Lglobal _ -> None)
    st.env

let truthy (c : Ast.const) =
  match c with Ast.Csym "nil" | Ast.Clist [] -> false | _ -> true

let type_pred = function
  | "pairp" -> Some (`Ty Scheme.Pair)
  | "atom" -> Some `Atom
  | "symbolp" -> Some (`Ty Scheme.Symbol)
  | "vectorp" -> Some (`Ty Scheme.Vector)
  | "boxp" -> Some (`Ty Scheme.Boxnum)
  | "numberp" -> Some `Number
  | _ -> None

let comparison = function
  | "lessp" -> Some Insn.Lt
  | "greaterp" -> Some Insn.Gt
  | "leq" -> Some Insn.Le
  | "geq" -> Some Insn.Ge
  | _ -> None

let known_int = function Ast.Const (Ast.Cint _) -> true | _ -> false

let rec eval st d (e : Ast.expr) : unit =
  match e with
  | Ast.Const c ->
      let dst = temp st d in
      intern_const st c;
      emit st (Tir.Constop { dst; c })
  | Ast.Var v ->
      let dst = temp st d in
      let src = var_loc st v in
      emit st (Tir.Loadvar { dst; src })
  | Ast.Setq (v, e) ->
      eval st d e;
      let src = temp st d in
      emit st (Tir.Storevar { dst = var_loc st v; src })
  | Ast.Progn [] ->
      let dst = temp st d in
      emit st (Tir.Constop { dst; c = Ast.Csym "nil" })
  | Ast.Progn es ->
      let rec go = function
        | [] -> assert false
        | [ last ] -> eval st d last
        | e :: rest ->
            eval st d e;
            go rest
      in
      go es
  | Ast.If (c, a, b) ->
      let lt = fresh st "ift" and lf = fresh st "iff" and le = fresh st "ife" in
      eval_test st d c ~ltrue:lt ~lfalse:lf ~next:lt;
      emit st (Tir.Label lt);
      eval st d a;
      emit st (Tir.Jump le);
      emit st (Tir.Label lf);
      eval st d b;
      emit st (Tir.Label le)
  | Ast.While (c, body) ->
      let lbody = fresh st "wb"
      and ltest = fresh st "wt"
      and lend = fresh st "we" in
      emit st (Tir.Jump ltest);
      emit st (Tir.Label lbody);
      List.iter (fun e -> eval st d e) body;
      emit st (Tir.Label ltest);
      eval_test ~likely:true st d c ~ltrue:lbody ~lfalse:lend ~next:lend;
      emit st (Tir.Label lend);
      let dst = temp st d in
      emit st (Tir.Constop { dst; c = Ast.Csym "nil" })
  | Ast.Let (binds, body) ->
      let saved_env = st.env and saved_regs = st.reg_locals in
      List.iter
        (fun (v, init) ->
          eval st d init;
          let loc =
            let slot = st.next_slot in
            st.next_slot <- st.next_slot + 4;
            let candidate = n_temp_pool - 1 - st.reg_locals in
            if st.reg_locals < n_reg_locals && candidate > d then begin
              let r = Reg.temp candidate in
              st.reg_locals <- st.reg_locals + 1;
              Tir.Lreg (r, slot)
            end
            else Tir.Lslot slot
          in
          emit st (Tir.Bind { dst = loc; src = temp st d });
          st.env <- (v, loc) :: st.env)
        binds;
      List.iter
        (fun e -> eval st d e)
        (match body with [] -> [ Ast.nil ] | b -> b);
      st.env <- saved_env;
      st.reg_locals <- saved_regs
  | Ast.Funcall (fe, args) ->
      if List.length args > max_args then
        errorf "funcall with more than %d arguments" max_args;
      eval st d fe;
      List.iteri (fun i a -> eval st (d + 1 + i) a) args;
      check_spillable st d;
      let rf = temp st d in
      emit st
        (Tir.Checkty
           {
             v = rf;
             ty = Scheme.Symbol;
             kind = Annot.Symbol_op;
             unless_parallel = false;
           });
      emit st
        (Tir.Funcall
           {
             base = d;
             nargs = List.length args;
             saves = active_reg_locals st;
           })
  | Ast.Call (name, args) -> call_or_prim st d name args

and call_user st d name args =
  (match Hashtbl.find_opt st.funcs name with
  | None -> errorf "undefined function %s (called from %s)" name st.fname
  | Some arity ->
      if arity <> List.length args then
        errorf "%s expects %d arguments, got %d (in %s)" name arity
          (List.length args) st.fname);
  if List.length args > max_args then
    errorf "%s: more than %d arguments" name max_args;
  check_spillable st d;
  List.iteri (fun i a -> eval st (d + i) a) args;
  ignore (temp st d) (* the result move targets [temp d] *);
  emit st
    (Tir.Calluser
       {
         name;
         base = d;
         nargs = List.length args;
         saves = active_reg_locals st;
       })

and boolean_result st d test =
  let lt = fresh st "bt" and lf = fresh st "bf" and le = fresh st "be" in
  test ~ltrue:lt ~lfalse:lf ~next:lt;
  emit st (Tir.Label lt);
  let dst = temp st d in
  emit st (Tir.Consttrue { dst });
  emit st (Tir.Jump le);
  emit st (Tir.Label lf);
  emit st (Tir.Constop { dst; c = Ast.Csym "nil" });
  emit st (Tir.Label le)

and call_or_prim st d name args =
  let rd = temp st d in
  let unary () =
    match args with
    | [ a ] -> eval st d a
    | _ -> errorf "%s expects one argument" name
  in
  let binary () =
    match args with
    | [ a; b ] ->
        eval st d a;
        eval st (d + 1) b
    | _ -> errorf "%s expects two arguments" name
  in
  let ternary () =
    match args with
    | [ a; b; c ] ->
        eval st d a;
        eval st (d + 1) b;
        eval st (d + 2) c
    | _ -> errorf "%s expects three arguments" name
  in
  let field_load ~ty ~src_kind ~off ~result_int =
    unary ();
    emit st
      (Tir.Checkty { v = rd; ty; kind = src_kind; unless_parallel = true });
    emit st (Tir.Fieldload { r = rd; ty; off; result_int })
  in
  let field_store ~ty ~src_kind ~off ~result_obj =
    binary ();
    emit st
      (Tir.Checkty { v = rd; ty; kind = src_kind; unless_parallel = true });
    emit st
      (Tir.Fieldstore
         { robj = rd; rval = temp st (d + 1); ty; off; result_obj })
  in
  match (name, args) with
  | "car", _ ->
      field_load ~ty:Scheme.Pair ~src_kind:Annot.List_op ~off:0
        ~result_int:false
  | "cdr", _ ->
      field_load ~ty:Scheme.Pair ~src_kind:Annot.List_op ~off:4
        ~result_int:false
  | "rplaca", _ ->
      field_store ~ty:Scheme.Pair ~src_kind:Annot.List_op ~off:0
        ~result_obj:true
  | "rplacd", _ ->
      field_store ~ty:Scheme.Pair ~src_kind:Annot.List_op ~off:4
        ~result_obj:true
  | "cons", _ ->
      binary ();
      emit st
        (Tir.Consop { rd; rcdr = temp st (d + 1); scratch = temp st (d + 2) })
  | "plist", _ ->
      field_load ~ty:Scheme.Symbol ~src_kind:Annot.Symbol_op
        ~off:Tagsim_runtime.Layout.sym_off_plist ~result_int:false
  | "setplist", _ ->
      field_store ~ty:Scheme.Symbol ~src_kind:Annot.Symbol_op
        ~off:Tagsim_runtime.Layout.sym_off_plist ~result_obj:false
  | "unbox", _ ->
      field_load ~ty:Scheme.Boxnum ~src_kind:Annot.Arith_op
        ~off:Tagsim_runtime.Layout.obj_off_length ~result_int:true
  | ("plus2" | "difference2" | "times2" | "quotient" | "remainder"), _ ->
      binary ();
      let kind =
        match name with
        | "plus2" -> Tir.A_add
        | "difference2" -> Tir.A_sub
        | "times2" -> Tir.A_mul
        | "quotient" -> Tir.A_div
        | _ -> Tir.A_rem
      in
      let a_int, b_int =
        match args with
        | [ a; b ] -> (known_int a, known_int b)
        | _ -> (false, false)
      in
      emit st
        (Tir.Arith { kind; ra = rd; rb = temp st (d + 1); a_int; b_int })
  | ("land2" | "lor2" | "lxor2"), _ ->
      binary ();
      emit st (Tir.Checkint { v = rd; kind = Annot.Arith_op });
      emit st (Tir.Checkint { v = temp st (d + 1); kind = Annot.Arith_op });
      let aluop =
        match name with
        | "land2" -> Insn.And
        | "lor2" -> Insn.Or
        | _ -> Insn.Xor
      in
      emit st (Tir.Logic { aluop; ra = rd; rb = temp st (d + 1) })
  | "mkvect", _ ->
      unary ();
      emit st (Tir.Mkvect { r = rd })
  | "makebox", _ ->
      unary ();
      emit st (Tir.Checkint { v = rd; kind = Annot.Arith_op });
      emit st (Tir.Makebox { r = rd })
  | "getv", _ ->
      binary ();
      let idx_int =
        match args with [ _; Ast.Const (Ast.Cint _) ] -> true | _ -> false
      in
      vector_access st d ~store:false ~idx_int
  | "putv", _ ->
      ternary ();
      let idx_int =
        match args with
        | [ _; Ast.Const (Ast.Cint _); _ ] -> true
        | _ -> false
      in
      vector_access st d ~store:true ~idx_int
  | "vlen", _ ->
      field_load ~ty:Scheme.Vector ~src_kind:Annot.Vector_op
        ~off:Tagsim_runtime.Layout.obj_off_length ~result_int:true
  | "reclaim", [] -> emit st (Tir.Reclaim { r = rd })
  | "error", [] -> emit st Tir.Traperror
  | "gccount", [] -> emit st (Tir.Gccount { r = rd })
  | ( ( "eq" | "null" | "pairp" | "atom" | "symbolp" | "vectorp" | "boxp"
      | "numberp" | "lessp" | "greaterp" | "leq" | "geq" | "eqn" ),
      _ ) ->
      boolean_result st d (fun ~ltrue ~lfalse ~next ->
          eval_test st d (Ast.Call (name, args)) ~ltrue ~lfalse ~next)
  | _, _ -> call_user st d name args

and vector_access st d ~store ~idx_int =
  let rv = temp st d and ri = temp st (d + 1) in
  (* The masked base must survive the bounds check, so it gets its own
     temporary. *)
  let base_scratch = temp st (d + if store then 3 else 2) in
  emit st
    (Tir.Checkty
       {
         v = rv;
         ty = Scheme.Vector;
         kind = Annot.Vector_op;
         unless_parallel = true;
       });
  if not idx_int then
    emit st (Tir.Checkint { v = ri; kind = Annot.Vector_op });
  emit st
    (Tir.Vecref
       {
         rv;
         ri;
         relt = (if store then temp st (d + 2) else 0);
         scratch = base_scratch;
         store;
       })

and eval_test ?(likely = false) st d (e : Ast.expr) ~ltrue ~lfalse ~next =
  let hint = if likely then Insn.Likely else Insn.No_hint in
  let finish_jump target = if target <> next then emit st (Tir.Jump target) in
  let finish ~branch_true ~branch_false =
    if next = lfalse then branch_true ()
    else if next = ltrue then branch_false ()
    else begin
      branch_true ();
      emit st (Tir.Jump lfalse)
    end
  in
  let user_branch cond ra rb =
    let neg =
      match cond with
      | Insn.Eq -> Insn.Ne
      | Insn.Ne -> Insn.Eq
      | Insn.Lt -> Insn.Ge
      | Insn.Ge -> Insn.Lt
      | Insn.Gt -> Insn.Le
      | Insn.Le -> Insn.Gt
    in
    finish
      ~branch_true:(fun () ->
        emit st (Tir.Branch { cond; ra; rb; hint; target = ltrue }))
      ~branch_false:(fun () ->
        emit st (Tir.Branch { cond = neg; ra; rb; hint; target = lfalse }))
  in
  match e with
  | Ast.Const c -> finish_jump (if truthy c then ltrue else lfalse)
  | Ast.If (c, a, b) ->
      let la = fresh st "tta" and lb = fresh st "ttb" in
      eval_test st d c ~ltrue:la ~lfalse:lb ~next:la;
      emit st (Tir.Label la);
      eval_test st d a ~ltrue ~lfalse ~next:lb;
      emit st (Tir.Label lb);
      eval_test st d b ~ltrue ~lfalse ~next
  | Ast.Call ("null", [ x ]) ->
      eval_test ~likely st d x ~ltrue:lfalse ~lfalse:ltrue ~next
  | Ast.Call (("eq" | "eqn"), [ a; b ]) ->
      eval st d a;
      eval st (d + 1) b;
      user_branch Insn.Eq (temp st d) (temp st (d + 1))
  | Ast.Call (p, [ x ]) when type_pred p <> None -> (
      eval st d x;
      let rx = temp st d in
      match type_pred p with
      | Some (`Ty ty) ->
          finish
            ~branch_true:(fun () ->
              emit st
                (Tir.Tybranch { v = rx; ty; sense = `Is; target = ltrue }))
            ~branch_false:(fun () ->
              emit st
                (Tir.Tybranch { v = rx; ty; sense = `Is_not; target = lfalse }))
      | Some `Atom ->
          finish
            ~branch_true:(fun () ->
              emit st
                (Tir.Tybranch
                   { v = rx; ty = Scheme.Pair; sense = `Is_not; target = ltrue }))
            ~branch_false:(fun () ->
              emit st
                (Tir.Tybranch
                   { v = rx; ty = Scheme.Pair; sense = `Is; target = lfalse }))
      | Some `Number ->
          emit st (Tir.Intbranch { v = rx; sense = `Is; target = ltrue });
          finish
            ~branch_true:(fun () ->
              emit st
                (Tir.Tybranch
                   { v = rx; ty = Scheme.Boxnum; sense = `Is; target = ltrue }))
            ~branch_false:(fun () ->
              emit st
                (Tir.Tybranch
                   {
                     v = rx;
                     ty = Scheme.Boxnum;
                     sense = `Is_not;
                     target = lfalse;
                   }))
      | None -> assert false)
  | Ast.Call (cmp, [ a; b ]) when comparison cmp <> None ->
      eval st d a;
      eval st (d + 1) b;
      if not (known_int a) then
        emit st (Tir.Checkint { v = temp st d; kind = Annot.Arith_op });
      if not (known_int b) then
        emit st (Tir.Checkint { v = temp st (d + 1); kind = Annot.Arith_op });
      let cond = Option.get (comparison cmp) in
      user_branch cond (temp st d) (temp st (d + 1))
  | Ast.Progn [] -> finish_jump lfalse
  | Ast.Progn es ->
      let rec go = function
        | [] -> assert false
        | [ last ] -> eval_test ~likely st d last ~ltrue ~lfalse ~next
        | e :: rest ->
            eval st d e;
            go rest
      in
      go es
  | Ast.Var _ | Ast.Setq _ | Ast.While _ | Ast.Let _ | Ast.Call _
  | Ast.Funcall _ ->
      eval st d e;
      user_branch Insn.Ne (temp st d) Reg.rnil

(* --- Function lowering. --- *)

let def symtab funcs (def : Ast.def) : Tir.fn =
  if List.length def.Ast.params > max_args then
    errorf "%s: more than %d parameters" def.Ast.name max_args;
  let nslots = List.length def.Ast.params + count_bindings def.Ast.body in
  let frame_bytes =
    (Tir.off_locals n_temp_pool + (4 * nslots) + 7) land lnot 7
  in
  let st =
    {
      symtab;
      funcs;
      fname = def.Ast.name;
      env = [];
      next_slot = Tir.off_locals n_temp_pool;
      reg_locals = 0;
      next_fresh = 0;
      ops = [];
    }
  in
  let params =
    List.map
      (fun p ->
        let slot = st.next_slot in
        st.next_slot <- st.next_slot + 4;
        let loc =
          if st.reg_locals < n_reg_locals then begin
            let r = Reg.temp (n_temp_pool - 1 - st.reg_locals) in
            st.reg_locals <- st.reg_locals + 1;
            Tir.Lreg (r, slot)
          end
          else Tir.Lslot slot
        in
        st.env <- (p, loc) :: st.env;
        loc)
      def.Ast.params
  in
  eval st 0 def.Ast.body;
  ignore (temp st 0) (* the epilogue moves [temp 0] to [v0] *);
  {
    Tir.f_name = def.Ast.name;
    f_frame_bytes = frame_bytes;
    f_params = params;
    f_ops = List.rev st.ops;
  }
