(** Instruction selection: typed tag-operation IR ({!Tir}) to annotated
    assembly.

    This pass owns every scheme x support instruction sequence —
    tag insertion/removal/extraction, type checks, generic-arith
    dispatch, allocation — via {!Tagsim_runtime.Emit}, and none of the
    shape decisions, which {!Lower} already froze into the IR.  Each
    sequence is a faithful transliteration of the corresponding
    fragment of {!Codegen}, so [Select.fn] over unoptimized TIR
    reproduces the monolithic output byte for byte. *)

module Insn = Tagsim_mipsx.Insn
module Annot = Tagsim_mipsx.Annot
module Reg = Tagsim_mipsx.Reg
module Buf = Tagsim_asm.Buf
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module Emit = Tagsim_runtime.Emit
module L = Tagsim_runtime.Layout
module Ast = Tagsim_lisp.Ast

let errorf fmt = Fmt.kstr (fun s -> raise (Codegen.Error s)) fmt

type sel = {
  ctx : Emit.ctx;
  symtab : Symtab.t;
  mutable stubs : (unit -> unit) list; (* emitted after the body *)
}

let e_ ?annot f insn = Emit.emit ?annot f.ctx insn
let fresh f p = Emit.fresh f.ctx p
let label f l = Emit.label f.ctx l
let scheme f = f.ctx.Emit.scheme
let support f = f.ctx.Emit.support
let checking f = (support f).Support.runtime_checking

let mv ?annot f rd rs = if rd <> rs then e_ ?annot f (Insn.Mv (rd, rs))

let global_offset f v =
  let idx = Symtab.intern f.symtab v in
  idx * L.sym_cell_size

let load_loc f rd (l : Tir.loc) =
  match l with
  | Tir.Lreg (r, _) -> mv f rd r
  | Tir.Lslot off -> e_ f (Insn.Ld (Insn.Plain, rd, Reg.sp, off))
  | Tir.Lglobal v ->
      e_ f (Insn.Ld (Insn.Plain, rd, Reg.stb, global_offset f v + L.sym_off_value))

let store_loc f (l : Tir.loc) ~src =
  match l with
  | Tir.Lreg (r, _) -> mv f r src
  | Tir.Lslot off -> e_ f (Insn.St (Insn.Plain, Reg.sp, src, off))
  | Tir.Lglobal v ->
      e_ f (Insn.St (Insn.Plain, Reg.stb, src, global_offset f v + L.sym_off_value))

(* --- Spilling around user calls. --- *)

let spill_for_call f ~live_temps ~saves =
  for i = 0 to live_temps - 1 do
    e_ f (Insn.St (Insn.Plain, Reg.sp, Reg.temp i, Tir.off_temp_spill i))
  done;
  List.iter (fun (r, home) -> e_ f (Insn.St (Insn.Plain, Reg.sp, r, home))) saves

let reload_after_call f ~live_temps ~saves =
  for i = 0 to live_temps - 1 do
    e_ f (Insn.Ld (Insn.Plain, Reg.temp i, Reg.sp, Tir.off_temp_spill i))
  done;
  List.iter (fun (r, home) -> e_ f (Insn.Ld (Insn.Plain, r, Reg.sp, home))) saves

(* --- Constants. --- *)

let encode_const_int f n =
  let s = scheme f in
  if n < s.Scheme.int_min || n > s.Scheme.int_max then
    errorf "integer literal %d out of range for scheme %s" n s.Scheme.name;
  Scheme.encode_int s n

let tagger f ty =
  {
    Buf.ty_code = Scheme.ty_code ty;
    apply = (fun a -> Scheme.encode_ptr (scheme f) ty a);
  }

let rec const_value f (c : Ast.const) :
    [ `Word of int | `Ref of string * Scheme.ty ] =
  match c with
  | Ast.Cint n -> `Word (encode_const_int f n)
  | Ast.Csym s -> `Word (Emit.sym_item (scheme f) (Symtab.intern f.symtab s))
  | Ast.Clist [] -> `Word (Emit.nil_item (scheme f))
  | Ast.Clist (x :: rest) ->
      let car = const_value f x in
      let cdr = const_value f (Ast.Clist rest) in
      let b = f.ctx.Emit.b in
      Buf.data b (Buf.Align (scheme f).Scheme.obj_align);
      let lbl = fresh f "qp" in
      let emit_word ?label v =
        match v with
        | `Word w -> Buf.data ?label b (Buf.Word w)
        | `Ref (l, ty) -> Buf.data ?label b (Buf.Tagged (l, tagger f ty))
      in
      emit_word ~label:lbl car;
      emit_word cdr;
      `Ref (lbl, Scheme.Pair)

let load_const f rd (c : Ast.const) =
  match c with
  | Ast.Csym "nil" | Ast.Clist [] -> mv f rd Reg.rnil
  | _ -> (
      match const_value f c with
      | `Word w -> e_ f (Insn.Li (rd, w))
      | `Ref (lbl, ty) ->
          let b = f.ctx.Emit.b in
          let cell = fresh f "qc" in
          Buf.data ~label:cell b (Buf.Tagged (lbl, tagger f ty));
          e_ f (Insn.La (rd, cell));
          e_ f (Insn.Ld (Insn.Plain, rd, rd, 0)))

(* --- Allocation. --- *)

let alloc_pair f ~rcar ~rcdr ~rd ~scratch =
  let al = Annot.make Annot.Alloc in
  let retry = fresh f "cons" in
  let stub = fresh f "consgc" in
  label f retry;
  e_ ~annot:al f (Insn.Alui (Insn.Add, scratch, Reg.hp, 8));
  Emit.branch ~annot:al ~hint:Insn.Unlikely f.ctx Insn.Gt scratch Reg.hl stub;
  e_ f (Insn.St (Insn.Plain, Reg.hp, rcar, 0));
  e_ f (Insn.St (Insn.Plain, Reg.hp, rcdr, 4));
  Emit.insert_tag f.ctx ~ty:Scheme.Pair ~src:Reg.hp ~dst:rd ~scratch:Reg.v1;
  e_ ~annot:al f (Insn.Mv (Reg.hp, scratch));
  f.stubs <-
    (fun () ->
      label f stub;
      e_ ~annot:al f (Insn.Jal L.l_gc_entry);
      e_ ~annot:al f (Insn.J retry))
    :: f.stubs

(* --- Generic arithmetic. --- *)

let arith_insn = function
  | Tir.A_add -> Insn.Add
  | Tir.A_sub -> Insn.Sub
  | Tir.A_mul -> Insn.Mul
  | Tir.A_div -> Insn.Div
  | Tir.A_rem -> Insn.Rem

let fallback_label = function
  | Tir.A_add -> L.l_gadd_entry
  | Tir.A_sub -> L.l_gsub_entry
  | Tir.A_mul -> L.l_gmul_entry
  | Tir.A_div -> L.l_gdiv_entry
  | Tir.A_rem -> L.l_grem_entry

let arith_stub f ~kind ~ra_ ~rb ~rd ~join =
  let ga = Annot.make ~checking:true Annot.Garith in
  let stub = fresh f "gar" in
  f.stubs <-
    (fun () ->
      label f stub;
      e_ ~annot:ga f (Insn.Mv (Reg.a0, ra_));
      e_ ~annot:ga f (Insn.Mv (Reg.a1, rb));
      e_ ~annot:ga f (Insn.Jal (fallback_label kind));
      e_ ~annot:ga f (Insn.Mv (rd, Reg.v0));
      e_ ~annot:ga f (Insn.J join))
    :: f.stubs;
  stub

let emit_arith f ~kind ~ra_ ~rb ~rd ~a_int ~b_int =
  let s = scheme f in
  let sup = support f in
  let rm = Annot.make Annot.Remove in
  let ins = Annot.make Annot.Insert in
  let raw_op dst =
    match kind with
    | Tir.A_add | Tir.A_sub -> e_ f (Insn.Alu (arith_insn kind, dst, ra_, rb))
    | Tir.A_mul ->
        if Scheme.is_low s then begin
          e_ ~annot:rm f (Insn.Alui (Insn.Sra, Reg.v1, ra_, 2));
          e_ f (Insn.Alu (Insn.Mul, dst, Reg.v1, rb))
        end
        else e_ f (Insn.Alu (Insn.Mul, dst, ra_, rb))
    | Tir.A_div | Tir.A_rem ->
        if Scheme.is_low s then begin
          e_ ~annot:rm f (Insn.Alui (Insn.Sra, Reg.v1, ra_, 2));
          e_ ~annot:rm f (Insn.Alui (Insn.Sra, dst, rb, 2));
          e_ f (Insn.Alu (arith_insn kind, dst, Reg.v1, dst));
          e_ ~annot:ins f (Insn.Alui (Insn.Sll, dst, dst, 2))
        end
        else e_ f (Insn.Alu (arith_insn kind, dst, ra_, rb))
  in
  if not (checking f) then raw_op rd
  else if sup.Support.hw_generic_arith && (kind = Tir.A_add || kind = Tir.A_sub)
  then
    e_ f
      (match kind with
      | Tir.A_add -> Insn.Add_gen (rd, ra_, rb)
      | _ -> Insn.Sub_gen (rd, ra_, rb))
  else begin
    let join = fresh f "garj" in
    let slow = arith_stub f ~kind ~ra_ ~rb ~rd ~join in
    (if not sup.Support.int_biased_arith then
       let ga = Annot.make ~checking:true Annot.Garith in
       e_ ~annot:ga f (Insn.J slow)
     else if s.Scheme.layout = Scheme.High6 && kind = Tir.A_add then begin
       raw_op Reg.v0;
       Emit.validity_check ~checking:true f.ctx ~result:Reg.v0 ~scratch:Reg.v1
         ~fail:slow;
       mv f rd Reg.v0
     end
     else begin
       if not a_int then
         Emit.int_test ~checking:true ~hint:Insn.Slow_path f.ctx
           ~src_kind:Annot.Arith_op ~sense:`Is_not ra_ ~scratch:Reg.v1 slow;
       if not b_int then
         Emit.int_test ~checking:true ~hint:Insn.Slow_path f.ctx
           ~src_kind:Annot.Arith_op ~sense:`Is_not rb ~scratch:Reg.v1 slow;
       (match kind with
       | Tir.A_div | Tir.A_rem ->
           Emit.branch
             ~annot:(Annot.make ~checking:true (Annot.Check Annot.Arith_op))
             ~hint:Insn.Unlikely f.ctx Insn.Eq rb Reg.zero L.l_err_arith
       | Tir.A_add | Tir.A_sub | Tir.A_mul -> ());
       raw_op Reg.v0;
       (match kind with
       | Tir.A_add | Tir.A_sub ->
           Emit.overflow_check ~checking:true ~subtraction:(kind = Tir.A_sub)
             f.ctx ~result:Reg.v0 ~op_a:ra_ ~op_b:rb ~scratch:Reg.v1 ~fail:slow
             ~resumable:true
       | Tir.A_mul ->
           (* [v1] still holds the untagged multiplicand from [raw_op]
              on the low schemes; high-scheme items are their values. *)
           Emit.mul_overflow_check ~checking:true ~resumable:true f.ctx
             ~result:Reg.v0
             ~val_a:(if Scheme.is_low s then Reg.v1 else ra_)
             ~item_b:rb ~scratch:Reg.v1 ~fail:slow
       | Tir.A_div | Tir.A_rem -> ());
       mv f rd Reg.v0
     end);
    label f join
  end

(* --- Per-operation selection. --- *)

let exec_op f (op : Tir.op) =
  match op with
  | Tir.Label l -> label f l
  | Tir.Jump l -> e_ f (Insn.J l)
  | Tir.Branch { cond; ra; rb; hint; target } ->
      Emit.branch ~hint f.ctx cond ra rb target
  | Tir.Tybranch { v; ty; sense; target } ->
      Emit.check_type f.ctx ~src_kind:Annot.User_pred ~ty ~sense v
        ~scratch:Reg.v1 target
  | Tir.Intbranch { v; sense; target } ->
      Emit.int_test f.ctx ~src_kind:Annot.User_pred ~sense v ~scratch:Reg.v1
        target
  | Tir.Constop { dst; c } -> load_const f dst c
  | Tir.Consttrue { dst } -> e_ f (Insn.Li (dst, Emit.t_item (scheme f)))
  | Tir.Loadvar { dst; src } -> load_loc f dst src
  | Tir.Storevar { dst; src } -> store_loc f dst ~src
  | Tir.Bind { dst; src } -> store_loc f dst ~src
  | Tir.Checkty { v; ty; kind; unless_parallel } ->
      if
        checking f
        && not (unless_parallel && Emit.parallel_covers f.ctx ty)
      then
        Emit.check_type ~checking:true ~hint:Insn.Unlikely f.ctx
          ~src_kind:kind ~ty ~sense:`Is_not v ~scratch:Reg.v1 L.l_err_type
  | Tir.Checkint { v; kind } ->
      if checking f then
        Emit.int_test ~checking:true ~hint:Insn.Unlikely f.ctx ~src_kind:kind
          ~sense:`Is_not v ~scratch:Reg.v1 L.l_err_type
  | Tir.Fieldload { r; ty; off; result_int = _ } ->
      let parallel = Emit.parallel_covers f.ctx ty in
      let acc = Emit.object_access f.ctx ~ty ~parallel r ~scratch:Reg.v1 in
      Emit.load f.ctx acc ~dst:r ~off
  | Tir.Fieldstore { robj; rval; ty; off; result_obj } ->
      let parallel = Emit.parallel_covers f.ctx ty in
      let acc = Emit.object_access f.ctx ~ty ~parallel robj ~scratch:Reg.v1 in
      Emit.store f.ctx acc ~src:rval ~off;
      if not result_obj then mv f robj rval
  | Tir.Consop { rd; rcdr; scratch } ->
      alloc_pair f ~rcar:rd ~rcdr ~rd ~scratch
  | Tir.Arith { kind; ra; rb; a_int; b_int } ->
      emit_arith f ~kind ~ra_:ra ~rb ~rd:ra ~a_int ~b_int
  | Tir.Logic { aluop; ra; rb } -> e_ f (Insn.Alu (aluop, ra, ra, rb))
  | Tir.Mkvect { r } ->
      mv f Reg.a0 r;
      e_ ~annot:(Annot.make Annot.Alloc) f (Insn.Jal L.l_mkvect);
      mv f r Reg.v0
  | Tir.Makebox { r } ->
      mv f Reg.a0 r;
      e_ ~annot:(Annot.make Annot.Alloc) f (Insn.Jal L.l_makebox);
      mv f r Reg.v0
  | Tir.Vecref { rv; ri; relt; scratch; store } ->
      let s = scheme f in
      let chk = checking f in
      let parallel = Emit.parallel_covers f.ctx Scheme.Vector in
      let acc =
        Emit.object_access f.ctx ~ty:Scheme.Vector ~parallel rv ~scratch
      in
      if chk then begin
        let ck = Annot.make ~checking:true (Annot.Check Annot.Vector_op) in
        Emit.load ~annot:ck f.ctx acc ~dst:Reg.v1 ~off:L.obj_off_length;
        e_ ~annot:ck f (Insn.Alu (Insn.Sltu, Reg.v1, ri, Reg.v1));
        Emit.branch ~annot:ck ~hint:Insn.Unlikely f.ctx Insn.Eq Reg.v1
          Reg.zero L.l_err_bounds
      end;
      let scaled =
        if Scheme.is_low s then ri
        else begin
          e_ f (Insn.Alui (Insn.Sll, Reg.v1, ri, 2));
          Reg.v1
        end
      in
      e_ f (Insn.Alu (Insn.Add, Reg.v1, acc.Emit.base, scaled));
      let acc_idx =
        if parallel && Scheme.is_low s then
          {
            Emit.mode = Insn.Plain;
            base = Reg.v1;
            corr = Scheme.offset_correction s Scheme.Vector;
          }
        else { acc with Emit.base = Reg.v1 }
      in
      if store then begin
        Emit.store f.ctx acc_idx ~src:relt ~off:L.obj_off_elems;
        mv f rv relt
      end
      else Emit.load f.ctx acc_idx ~dst:rv ~off:L.obj_off_elems
  | Tir.Gccount { r } ->
      e_ f (Insn.La (r, L.l_gc_count));
      e_ f (Insn.Ld (Insn.Plain, r, r, 0));
      if Scheme.is_low (scheme f) then e_ f (Insn.Alui (Insn.Sll, r, r, 2))
  | Tir.Reclaim { r } ->
      e_ ~annot:(Annot.make Annot.Alloc) f (Insn.Jal L.l_gc_entry);
      mv f r Reg.rnil
  | Tir.Traperror -> e_ f (Insn.Trap 6)
  | Tir.Calluser { name; base; nargs; saves } ->
      spill_for_call f ~live_temps:base ~saves;
      for i = 0 to nargs - 1 do
        mv f (Reg.a0 + i) (Reg.temp (base + i))
      done;
      e_ f (Insn.Jal (L.fn_label name));
      mv f (Reg.temp base) Reg.v0;
      reload_after_call f ~live_temps:base ~saves
  | Tir.Funcall { base; nargs; saves } ->
      let rf = Reg.temp base in
      let acc =
        Emit.object_access f.ctx ~ty:Scheme.Symbol
          ~parallel:(Emit.parallel_covers f.ctx Scheme.Symbol) rf
          ~scratch:Reg.v1
      in
      let chk = Annot.make ~checking:true (Annot.Check Annot.Symbol_op) in
      (* The name-id word (arity in its high bits) must be read before
         the function cell: the access base may be the scratch [v1]. *)
      if checking f then
        Emit.load ~annot:chk f.ctx acc ~dst:Reg.v0 ~off:L.sym_off_name;
      Emit.load f.ctx acc ~dst:Reg.v1 ~off:L.sym_off_function;
      if checking f then begin
        Emit.branch ~annot:chk ~hint:Insn.Unlikely f.ctx Insn.Eq Reg.v1
          Reg.zero L.l_err_undef;
        e_ ~annot:chk f
          (Insn.Alui (Insn.Srl, Reg.v0, Reg.v0, L.sym_arity_shift));
        Emit.branch_i ~annot:chk ~hint:Insn.Unlikely f.ctx Insn.Ne Reg.v0
          nargs L.l_err_arity
      end;
      spill_for_call f ~live_temps:base ~saves;
      for i = 0 to nargs - 1 do
        mv f (Reg.a0 + i) (Reg.temp (base + 1 + i))
      done;
      e_ f (Insn.Jalr Reg.v1);
      mv f (Reg.temp base) Reg.v0;
      reload_after_call f ~live_temps:base ~saves

(* --- Function selection. --- *)

let fn (ctx : Emit.ctx) symtab (tf : Tir.fn) =
  let f = { ctx; symtab; stubs = [] } in
  label f (L.fn_label tf.Tir.f_name);
  e_ f (Insn.Alui (Insn.Add, Reg.sp, Reg.sp, -tf.Tir.f_frame_bytes));
  e_ f (Insn.St (Insn.Plain, Reg.sp, Reg.ra, Tir.off_ra));
  List.iteri
    (fun i loc ->
      match loc with
      | Tir.Lreg (r, _) -> mv f r (Reg.a0 + i)
      | Tir.Lslot slot -> e_ f (Insn.St (Insn.Plain, Reg.sp, Reg.a0 + i, slot))
      | Tir.Lglobal _ -> assert false)
    tf.Tir.f_params;
  List.iter (fun op -> exec_op f op) tf.Tir.f_ops;
  mv f Reg.v0 (Reg.temp 0);
  e_ f (Insn.Ld (Insn.Plain, Reg.ra, Reg.sp, Tir.off_ra));
  e_ f (Insn.Alui (Insn.Add, Reg.sp, Reg.sp, tf.Tir.f_frame_bytes));
  e_ f (Insn.Jr Reg.ra);
  List.iter (fun emit_stub -> emit_stub ()) (List.rev f.stubs)
