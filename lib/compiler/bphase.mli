(** Wall-clock accounting for the backend's internal phases — code
    generation, per-unit delay-slot scheduling, monolithic assembly,
    incremental linking — accumulated across all worker domains and
    printed by the CLI under [--verbose] (via the pipeline-level
    [Instrument], which re-exports these totals). *)

type phase = Codegen | Schedule | Assemble | Link

(** Accumulate [dt] seconds into a phase total (thread-safe). *)
val add : phase -> float -> unit

(** Run [f] and charge its wall-clock duration to [phase] (also on
    exception). *)
val time : phase -> (unit -> 'a) -> 'a

(** [(codegen, schedule, assemble, link)] seconds since start or
    {!reset}. *)
val totals : unit -> float * float * float * float

val reset : unit -> unit
