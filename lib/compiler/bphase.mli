(** Wall-clock accounting for the backend's internal phases — monolithic
    code generation; the incremental path's AST->TIR lowering,
    check-elimination optimization and TIR->assembly selection; per-unit
    delay-slot scheduling; monolithic assembly; incremental linking —
    accumulated across all worker domains and printed by the CLI under
    [--verbose] (via the pipeline-level [Instrument], which re-exports
    these totals). *)

type phase = Codegen | Lower | Opt | Select | Schedule | Assemble | Link

(** Per-phase seconds since start or {!reset}. *)
type totals = {
  codegen_s : float;
  lower_s : float;
  opt_s : float;
  select_s : float;
  schedule_s : float;
  assemble_s : float;
  link_s : float;
}

(** Accumulate [dt] seconds into a phase total (thread-safe). *)
val add : phase -> float -> unit

(** Run [f] and charge its wall-clock duration to [phase] (also on
    exception). *)
val time : phase -> (unit -> 'a) -> 'a

val totals : unit -> totals
val reset : unit -> unit
