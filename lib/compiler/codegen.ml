(** Code generation: core AST to annotated assembly.

    Compilation model (deliberately close to a period RISC Lisp compiler):

    - arguments arrive in [a0..a3] (at most four);
    - expression temporaries are [t0..t5], used as a stack; the first three
      live locals are cached in [t6..t8], the rest live in the frame;
    - all registers are caller-save: at a user call, live temporaries and
      cached locals are spilled to the frame and reloaded after (runtime
      routines preserve the temporaries, so calls to them do not spill);
    - every stack word is a tagged item or a code address (which looks like
      an integer), so the collector can scan frames blindly;
    - allocation is inline (bump-and-compare) with a per-site out-of-line
      stub that calls the collector and retries;
    - the failure path of integer-biased generic arithmetic is a per-site
      stub that calls the runtime fallback. *)

module Insn = Tagsim_mipsx.Insn
module Annot = Tagsim_mipsx.Annot
module Reg = Tagsim_mipsx.Reg
module Buf = Tagsim_asm.Buf
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module Emit = Tagsim_runtime.Emit
module L = Tagsim_runtime.Layout
module Ast = Tagsim_lisp.Ast

exception Error of string

let errorf fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let max_args = 4
let n_temp_pool = Reg.n_temps (* shared by expression temps and locals *)
let n_reg_locals = 3

type loc =
  | Lreg of Reg.t * int (* cached in a register; its frame spill home *)
  | Lslot of int (* frame byte offset *)

type fn = {
  ctx : Emit.ctx;
  symtab : Symtab.t;
  funcs : (string, int) Hashtbl.t; (* user function -> arity *)
  fname : string;
  mutable env : (string * loc) list;
  mutable next_slot : int; (* next frame slot byte offset *)
  frame_bytes : int;
  mutable reg_locals : int; (* how many of t6..t8 are in use *)
  mutable stubs : (unit -> unit) list; (* emitted after the body *)
}

(* Frame layout: [0] saved ra; then one spill slot per pool temporary;
   then the local slots. *)
let off_ra = 0
let off_temp_spill i = 4 + (4 * i)
let off_locals = 4 + (4 * n_temp_pool)

(* Upper bound on the number of local slots a function needs: parameters
   plus every let binding (register-cached locals keep their slot reserved
   as their spill home). *)
let rec count_bindings (e : Ast.expr) =
  match e with
  | Ast.Const _ | Ast.Var _ -> 0
  | Ast.If (c, a, b) -> count_bindings c + count_bindings a + count_bindings b
  | Ast.Progn es -> List.fold_left (fun n e -> n + count_bindings e) 0 es
  | Ast.Setq (_, e) -> count_bindings e
  | Ast.While (c, body) ->
      count_bindings c + List.fold_left (fun n e -> n + count_bindings e) 0 body
  | Ast.Let (binds, body) ->
      List.length binds
      + List.fold_left (fun n (_, e) -> n + count_bindings e) 0 binds
      + List.fold_left (fun n e -> n + count_bindings e) 0 body
  | Ast.Call (_, args) ->
      List.fold_left (fun n e -> n + count_bindings e) 0 args
  | Ast.Funcall (f, args) ->
      count_bindings f
      + List.fold_left (fun n e -> n + count_bindings e) 0 args

let e_ ?annot f insn = Emit.emit ?annot f.ctx insn
let fresh f p = Emit.fresh f.ctx p
let label f l = Emit.label f.ctx l
let scheme f = f.ctx.Emit.scheme
let support f = f.ctx.Emit.support
let checking f = (support f).Support.runtime_checking

let mv ?annot f rd rs = if rd <> rs then e_ ?annot f (Insn.Mv (rd, rs))

(* Expression temporaries grow from t0 upward; register-cached locals are
   allocated from the top of the same pool downward.  Deep expressions that
   would collide with an active cached local are a compile-time error
   (restructure the Lisp source with a let). *)
let temp f d =
  if d >= n_temp_pool - f.reg_locals then
    errorf
      "expression too deep in %s (more than %d live temporaries); \
       restructure with let"
      f.fname
      (n_temp_pool - f.reg_locals)
  else Reg.temp d

(* Every pool temporary has a spill slot, so any valid depth is
   spillable; kept as a guard against future layout changes. *)
let check_spillable f d =
  if d > n_temp_pool then
    errorf "call at expression depth %d in %s exceeds the spill area" d
      f.fname

(* --- Variable access. --- *)

let lookup f v = List.assoc_opt v f.env

let global_offset f v =
  let idx = Symtab.intern f.symtab v in
  idx * L.sym_cell_size

let load_var f d v =
  let rd = temp f d in
  match lookup f v with
  | Some (Lreg (r, _)) -> mv f rd r
  | Some (Lslot off) -> e_ f (Insn.Ld (Insn.Plain, rd, Reg.sp, off))
  | None ->
      (* Global: the symbol's value cell. *)
      e_ f (Insn.Ld (Insn.Plain, rd, Reg.stb, global_offset f v + L.sym_off_value))

let store_var f v ~src =
  match lookup f v with
  | Some (Lreg (r, _)) -> mv f r src
  | Some (Lslot off) -> e_ f (Insn.St (Insn.Plain, Reg.sp, src, off))
  | None ->
      e_ f (Insn.St (Insn.Plain, Reg.stb, src, global_offset f v + L.sym_off_value))

(* --- Spilling around user calls. --- *)

(* Innermost binding of each cached register (shadowed bindings of the
   same register must not be spilled twice). *)
let active_reg_locals f =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (_, l) ->
      match l with
      | Lreg (r, home) when not (Hashtbl.mem seen r) ->
          Hashtbl.replace seen r ();
          Some (r, home)
      | Lreg _ | Lslot _ -> None)
    f.env

let spill_for_call f ~live_temps =
  for i = 0 to live_temps - 1 do
    e_ f (Insn.St (Insn.Plain, Reg.sp, Reg.temp i, off_temp_spill i))
  done;
  List.iter
    (fun (r, home) -> e_ f (Insn.St (Insn.Plain, Reg.sp, r, home)))
    (active_reg_locals f)

let reload_after_call f ~live_temps =
  for i = 0 to live_temps - 1 do
    e_ f (Insn.Ld (Insn.Plain, Reg.temp i, Reg.sp, off_temp_spill i))
  done;
  List.iter
    (fun (r, home) -> e_ f (Insn.Ld (Insn.Plain, r, Reg.sp, home)))
    (active_reg_locals f)

(* --- Constants. --- *)

let encode_const_int f n =
  let s = scheme f in
  if n < s.Scheme.int_min || n > s.Scheme.int_max then
    errorf "integer literal %d out of range for scheme %s" n s.Scheme.name;
  Scheme.encode_int s n

(* The tagged-datum transform for a pointer of type [ty] under the
   function's scheme, with the serialisable type code the object cache
   needs to rebuild it on reload. *)
let tagger f ty =
  {
    Buf.ty_code = Scheme.ty_code ty;
    apply = (fun a -> Scheme.encode_ptr (scheme f) ty a);
  }

(* Emit a quoted structure into static data; returns the item, either as a
   compile-time constant or as a data label to load through. *)
let rec const_value f (c : Ast.const) :
    [ `Word of int | `Ref of string * Scheme.ty ] =
  match c with
  | Ast.Cint n -> `Word (encode_const_int f n)
  | Ast.Csym s -> `Word (Emit.sym_item (scheme f) (Symtab.intern f.symtab s))
  | Ast.Clist [] -> `Word (Emit.nil_item (scheme f))
  | Ast.Clist (x :: rest) ->
      let car = const_value f x in
      let cdr = const_value f (Ast.Clist rest) in
      let b = f.ctx.Emit.b in
      Buf.data b (Buf.Align (scheme f).Scheme.obj_align);
      let lbl = fresh f "qp" in
      let emit_word ?label v =
        match v with
        | `Word w -> Buf.data ?label b (Buf.Word w)
        | `Ref (l, ty) -> Buf.data ?label b (Buf.Tagged (l, tagger f ty))
      in
      emit_word ~label:lbl car;
      emit_word cdr;
      `Ref (lbl, Scheme.Pair)

let load_const f d (c : Ast.const) =
  let rd = temp f d in
  match c with
  | Ast.Csym "nil" | Ast.Clist [] -> mv f rd Reg.rnil
  | _ -> (
      match const_value f c with
      | `Word w -> e_ f (Insn.Li (rd, w))
      | `Ref (lbl, ty) ->
          (* Load through a constant cell holding the tagged item. *)
          let b = f.ctx.Emit.b in
          let cell = fresh f "qc" in
          Buf.data ~label:cell b (Buf.Tagged (lbl, tagger f ty));
          e_ f (Insn.La (rd, cell));
          e_ f (Insn.Ld (Insn.Plain, rd, rd, 0)))

(* --- Allocation. --- *)

(* Inline cons: car in [rcar], cdr in [rcdr], result in [rd]; [scratch] is
   a free temp.  The GC stub is emitted out of line. *)
let alloc_pair f ~rcar ~rcdr ~rd ~scratch =
  let al = Annot.make Annot.Alloc in
  let retry = fresh f "cons" in
  let stub = fresh f "consgc" in
  label f retry;
  e_ ~annot:al f (Insn.Alui (Insn.Add, scratch, Reg.hp, 8));
  Emit.branch ~annot:al ~hint:Insn.Unlikely f.ctx Insn.Gt scratch Reg.hl stub;
  e_ f (Insn.St (Insn.Plain, Reg.hp, rcar, 0));
  e_ f (Insn.St (Insn.Plain, Reg.hp, rcdr, 4));
  Emit.insert_tag f.ctx ~ty:Scheme.Pair ~src:Reg.hp ~dst:rd ~scratch:Reg.v1;
  e_ ~annot:al f (Insn.Mv (Reg.hp, scratch));
  f.stubs <-
    (fun () ->
      label f stub;
      e_ ~annot:al f (Insn.Jal L.l_gc_entry);
      e_ ~annot:al f (Insn.J retry))
    :: f.stubs

(* --- Generic arithmetic (Sections 2.2, 4, 6.2.2). --- *)

type arith_kind = A_add | A_sub | A_mul | A_div | A_rem

let arith_insn = function
  | A_add -> Insn.Add
  | A_sub -> Insn.Sub
  | A_mul -> Insn.Mul
  | A_div -> Insn.Div
  | A_rem -> Insn.Rem

let fallback_label = function
  | A_add -> L.l_gadd_entry
  | A_sub -> L.l_gsub_entry
  | A_mul -> L.l_gmul_entry
  | A_div -> L.l_gdiv_entry
  | A_rem -> L.l_grem_entry

(* Out-of-line call to the generic fallback; the runtime preserves the
   expression temporaries, so no spilling is needed. *)
let arith_stub f ~kind ~ra_ ~rb ~rd ~join =
  let ga = Annot.make ~checking:true Annot.Garith in
  let stub = fresh f "gar" in
  f.stubs <-
    (fun () ->
      label f stub;
      e_ ~annot:ga f (Insn.Mv (Reg.a0, ra_));
      e_ ~annot:ga f (Insn.Mv (Reg.a1, rb));
      e_ ~annot:ga f (Insn.Jal (fallback_label kind));
      e_ ~annot:ga f (Insn.Mv (rd, Reg.v0));
      e_ ~annot:ga f (Insn.J join))
    :: f.stubs;
  stub

(* Emit one generic arithmetic operation.  Operand registers [ra_]/[rb]
   must stay intact until all inline checks are done (the slow path needs
   them), so on checked paths the result is computed into [v0], with [v1]
   as the transient scratch, and moved to [rd] at the end.  This keeps the
   expression-temporary footprint at two registers per operation. *)
let emit_arith f ~kind ~ra_ ~rb ~rd ~a_int ~b_int =
  let s = scheme f in
  let sup = support f in
  let rm = Annot.make Annot.Remove in
  let ins = Annot.make Annot.Insert in
  (* Compute the raw operation into [dst], using [v1] as scratch. *)
  let raw_op dst =
    match kind with
    | A_add | A_sub -> e_ f (Insn.Alu (arith_insn kind, dst, ra_, rb))
    | A_mul ->
        if Scheme.is_low s then begin
          e_ ~annot:rm f (Insn.Alui (Insn.Sra, Reg.v1, ra_, 2));
          e_ f (Insn.Alu (Insn.Mul, dst, Reg.v1, rb))
        end
        else e_ f (Insn.Alu (Insn.Mul, dst, ra_, rb))
    | A_div | A_rem ->
        if Scheme.is_low s then begin
          e_ ~annot:rm f (Insn.Alui (Insn.Sra, Reg.v1, ra_, 2));
          e_ ~annot:rm f (Insn.Alui (Insn.Sra, dst, rb, 2));
          e_ f (Insn.Alu (arith_insn kind, dst, Reg.v1, dst));
          e_ ~annot:ins f (Insn.Alui (Insn.Sll, dst, dst, 2))
        end
        else e_ f (Insn.Alu (arith_insn kind, dst, ra_, rb))
  in
  if not (checking f) then raw_op rd
  else if sup.Support.hw_generic_arith && (kind = A_add || kind = A_sub) then
    (* Hardware generic arithmetic: single instruction, traps on non-int
       operands or overflow (Table 2 row 4). *)
    e_ f
      (match kind with
      | A_add -> Insn.Add_gen (rd, ra_, rb)
      | _ -> Insn.Sub_gen (rd, ra_, rb))
  else begin
    let join = fresh f "garj" in
    let slow = arith_stub f ~kind ~ra_ ~rb ~rd ~join in
    (if not sup.Support.int_biased_arith then
       (* Dispatch-first ablation (Section 6.2.2): always call the
          general routine. *)
       let ga = Annot.make ~checking:true Annot.Garith in
       e_ ~annot:ga f (Insn.J slow)
     else if s.Scheme.layout = Scheme.High6 && kind = A_add then begin
       (* Section 4.2: operate first, then a single validity check on the
          result covers both operand types and overflow.  This only works
          for addition — the paper's tag-assignment property is about tag
          *sums*; subtracting two identically-tagged pointers cancels the
          tags and forges a valid-looking integer, so subtraction keeps
          the standard operand tests.  Branches to the slow path are
          resumable: the scheduler must not speculate fall-through work
          into their slots. *)
       raw_op Reg.v0;
       Emit.validity_check ~checking:true f.ctx ~result:Reg.v0
         ~scratch:Reg.v1 ~fail:slow;
       mv f rd Reg.v0
     end
     else begin
       (* Operands the compiler knows to be integers (literals) need no
          run-time test — Section 3: checks removable from program
          context. *)
       if not a_int then
         Emit.int_test ~checking:true ~hint:Insn.Slow_path f.ctx
           ~src_kind:Annot.Arith_op ~sense:`Is_not ra_ ~scratch:Reg.v1 slow;
       if not b_int then
         Emit.int_test ~checking:true ~hint:Insn.Slow_path f.ctx
           ~src_kind:Annot.Arith_op ~sense:`Is_not rb ~scratch:Reg.v1 slow;
       (match kind with
       | A_div | A_rem ->
           (* Division by zero (the zero item is the word 0). *)
           Emit.branch
             ~annot:(Annot.make ~checking:true (Annot.Check Annot.Arith_op))
             ~hint:Insn.Unlikely f.ctx Insn.Eq rb Reg.zero L.l_err_arith
       | A_add | A_sub | A_mul -> ());
       raw_op Reg.v0;
       (match kind with
       | A_add | A_sub ->
           Emit.overflow_check ~checking:true ~subtraction:(kind = A_sub)
             f.ctx ~result:Reg.v0 ~op_a:ra_ ~op_b:rb ~scratch:Reg.v1
             ~fail:slow ~resumable:true
       | A_mul ->
           (* [v1] still holds the untagged multiplicand from [raw_op]
              on the low schemes; high-scheme items are their values. *)
           Emit.mul_overflow_check ~checking:true ~resumable:true f.ctx
             ~result:Reg.v0
             ~val_a:(if Scheme.is_low s then Reg.v1 else ra_)
             ~item_b:rb ~scratch:Reg.v1 ~fail:slow
       | A_div | A_rem -> ());
       mv f rd Reg.v0
     end);
    label f join
  end

(* --- Expression evaluation. --- *)

let truthy (c : Ast.const) = match c with Ast.Csym "nil" | Ast.Clist [] -> false | _ -> true

(* Type predicates usable directly in test position. *)
let type_pred = function
  | "pairp" -> Some (`Ty Scheme.Pair)
  | "atom" -> Some `Atom
  | "symbolp" -> Some (`Ty Scheme.Symbol)
  | "vectorp" -> Some (`Ty Scheme.Vector)
  | "boxp" -> Some (`Ty Scheme.Boxnum)
  | "numberp" -> Some `Number
  | _ -> None

(* [eqn] is deliberately absent: in PSL, eqn on fixnums is pointer
   equality (eq) and performs no type test. *)
let comparison = function
  | "lessp" -> Some Insn.Lt
  | "greaterp" -> Some Insn.Gt
  | "leq" -> Some Insn.Le
  | "geq" -> Some Insn.Ge
  | _ -> None

let rec eval f d (e : Ast.expr) : unit =
  match e with
  | Ast.Const c -> load_const f d c
  | Ast.Var v -> load_var f d v
  | Ast.Setq (v, e) ->
      eval f d e;
      store_var f v ~src:(temp f d)
  | Ast.Progn [] -> mv f (temp f d) Reg.rnil
  | Ast.Progn es ->
      let rec go = function
        | [] -> assert false
        | [ last ] -> eval f d last
        | e :: rest ->
            eval f d e;
            go rest
      in
      go es
  | Ast.If (c, a, b) ->
      let lt = fresh f "ift" and lf = fresh f "iff" and le = fresh f "ife" in
      eval_test f d c ~ltrue:lt ~lfalse:lf ~next:lt;
      label f lt;
      eval f d a;
      e_ f (Insn.J le);
      label f lf;
      eval f d b;
      label f le
  | Ast.While (c, body) ->
      (* test at the bottom: j Ltest; Lbody: ...; Ltest: c -> Lbody *)
      let lbody = fresh f "wb" and ltest = fresh f "wt" and lend = fresh f "we" in
      e_ f (Insn.J ltest);
      label f lbody;
      List.iter (fun e -> eval f d e) body;
      label f ltest;
      eval_test ~likely:true f d c ~ltrue:lbody ~lfalse:lend ~next:lend;
      label f lend;
      mv f (temp f d) Reg.rnil
  | Ast.Let (binds, body) ->
      let saved_env = f.env and saved_regs = f.reg_locals in
      List.iter
        (fun (v, init) ->
          eval f d init;
          let loc =
            let slot = f.next_slot in
            f.next_slot <- f.next_slot + 4;
            let candidate = n_temp_pool - 1 - f.reg_locals in
            if f.reg_locals < n_reg_locals && candidate > d then begin
              let r = Reg.temp candidate in
              f.reg_locals <- f.reg_locals + 1;
              Lreg (r, slot)
            end
            else Lslot slot
          in
          (match loc with
          | Lreg (r, _) -> mv f r (temp f d)
          | Lslot off -> e_ f (Insn.St (Insn.Plain, Reg.sp, temp f d, off)));
          f.env <- (v, loc) :: f.env)
        binds;
      List.iter (fun e -> eval f d e) (match body with [] -> [ Ast.nil ] | b -> b);
      (* Result of the last body form is in temp f d already. *)
      f.env <- saved_env;
      f.reg_locals <- saved_regs
  | Ast.Funcall (fe, args) ->
      if List.length args > max_args then
        errorf "funcall with more than %d arguments" max_args;
      eval f d fe;
      List.iteri (fun i a -> eval f (d + 1 + i) a) args;
      check_spillable f d;
      let rf = temp f d in
      (* Check that it is a symbol with a function. *)
      if checking f then
        Emit.check_type ~checking:true ~hint:Insn.Unlikely f.ctx
          ~src_kind:Annot.Symbol_op ~ty:Scheme.Symbol ~sense:`Is_not rf
          ~scratch:Reg.v1 L.l_err_type;
      let acc =
        Emit.object_access f.ctx ~ty:Scheme.Symbol
          ~parallel:(Emit.parallel_covers f.ctx Scheme.Symbol) rf
          ~scratch:Reg.v1
      in
      let chk = Annot.make ~checking:true (Annot.Check Annot.Symbol_op) in
      (* The name-id word (arity in its high bits) must be read before
         the function cell: the access base may be the scratch [v1]. *)
      if checking f then
        Emit.load ~annot:chk f.ctx acc ~dst:Reg.v0 ~off:L.sym_off_name;
      Emit.load f.ctx acc ~dst:Reg.v1 ~off:L.sym_off_function;
      if checking f then begin
        Emit.branch ~annot:chk ~hint:Insn.Unlikely f.ctx Insn.Eq Reg.v1
          Reg.zero L.l_err_undef;
        e_ ~annot:chk f
          (Insn.Alui (Insn.Srl, Reg.v0, Reg.v0, L.sym_arity_shift));
        Emit.branch_i ~annot:chk ~hint:Insn.Unlikely f.ctx Insn.Ne Reg.v0
          (List.length args) L.l_err_arity
      end;
      spill_for_call f ~live_temps:d;
      List.iteri (fun i _ -> mv f (Reg.a0 + i) (Reg.temp (d + 1 + i))) args;
      e_ f (Insn.Jalr Reg.v1);
      mv f (temp f d) Reg.v0;
      reload_after_call f ~live_temps:d
  | Ast.Call (name, args) -> call_or_prim f d name args

and call_user f d name args =
  (match Hashtbl.find_opt f.funcs name with
  | None -> errorf "undefined function %s (called from %s)" name f.fname
  | Some arity ->
      if arity <> List.length args then
        errorf "%s expects %d arguments, got %d (in %s)" name arity
          (List.length args) f.fname);
  if List.length args > max_args then
    errorf "%s: more than %d arguments" name max_args;
  check_spillable f d;
  List.iteri (fun i a -> eval f (d + i) a) args;
  spill_for_call f ~live_temps:d;
  List.iteri (fun i _ -> mv f (Reg.a0 + i) (Reg.temp (d + i))) args;
  e_ f (Insn.Jal (L.fn_label name));
  mv f (temp f d) Reg.v0;
  reload_after_call f ~live_temps:d

(* Materialise a boolean result out of a test. *)
and boolean_result f d test =
  let lt = fresh f "bt" and lf = fresh f "bf" and le = fresh f "be" in
  test ~ltrue:lt ~lfalse:lf ~next:lt;
  label f lt;
  e_ f (Insn.Li (temp f d, Emit.t_item (scheme f)));
  e_ f (Insn.J le);
  label f lf;
  mv f (temp f d) Reg.rnil;
  label f le

and call_or_prim f d name args =
  let rd = temp f d in
  let s = scheme f in
  let chk = checking f in
  let unary () =
    match args with
    | [ a ] -> eval f d a
    | _ -> errorf "%s expects one argument" name
  in
  let binary () =
    match args with
    | [ a; b ] ->
        eval f d a;
        eval f (d + 1) b
    | _ -> errorf "%s expects two arguments" name
  in
  let ternary () =
    match args with
    | [ a; b; c ] ->
        eval f d a;
        eval f (d + 1) b;
        eval f (d + 2) c
    | _ -> errorf "%s expects three arguments" name
  in
  (* car/cdr-style access to a typed object. *)
  let field_load ~ty ~src_kind ~off =
    unary ();
    let parallel = Emit.parallel_covers f.ctx ty in
    if chk && not parallel then
      Emit.check_type ~checking:true ~hint:Insn.Unlikely f.ctx ~src_kind ~ty
        ~sense:`Is_not rd ~scratch:Reg.v1 L.l_err_type;
    let acc = Emit.object_access f.ctx ~ty ~parallel rd ~scratch:Reg.v1 in
    Emit.load f.ctx acc ~dst:rd ~off
  in
  let field_store ~ty ~src_kind ~off ~result_obj =
    binary ();
    let parallel = Emit.parallel_covers f.ctx ty in
    if chk && not parallel then
      Emit.check_type ~checking:true ~hint:Insn.Unlikely f.ctx ~src_kind ~ty
        ~sense:`Is_not rd ~scratch:Reg.v1 L.l_err_type;
    let acc = Emit.object_access f.ctx ~ty ~parallel rd ~scratch:Reg.v1 in
    Emit.store f.ctx acc ~src:(temp f (d + 1)) ~off;
    if not result_obj then mv f rd (temp f (d + 1))
  in
  match (name, args) with
  | "car", _ -> field_load ~ty:Scheme.Pair ~src_kind:Annot.List_op ~off:0
  | "cdr", _ -> field_load ~ty:Scheme.Pair ~src_kind:Annot.List_op ~off:4
  | "rplaca", _ ->
      field_store ~ty:Scheme.Pair ~src_kind:Annot.List_op ~off:0
        ~result_obj:true
  | "rplacd", _ ->
      field_store ~ty:Scheme.Pair ~src_kind:Annot.List_op ~off:4
        ~result_obj:true
  | "cons", _ ->
      binary ();
      alloc_pair f ~rcar:rd ~rcdr:(temp f (d + 1)) ~rd ~scratch:(temp f (d + 2))
  | "plist", _ ->
      field_load ~ty:Scheme.Symbol ~src_kind:Annot.Symbol_op
        ~off:L.sym_off_plist
  | "setplist", _ ->
      field_store ~ty:Scheme.Symbol ~src_kind:Annot.Symbol_op
        ~off:L.sym_off_plist ~result_obj:false
  | "unbox", _ ->
      field_load ~ty:Scheme.Boxnum ~src_kind:Annot.Arith_op
        ~off:L.obj_off_length
  | ("plus2" | "difference2" | "times2" | "quotient" | "remainder"), _ ->
      binary ();
      let kind =
        match name with
        | "plus2" -> A_add
        | "difference2" -> A_sub
        | "times2" -> A_mul
        | "quotient" -> A_div
        | _ -> A_rem
      in
      let known_int = function Ast.Const (Ast.Cint _) -> true | _ -> false in
      let a_int, b_int =
        match args with
        | [ a; b ] -> (known_int a, known_int b)
        | _ -> (false, false)
      in
      emit_arith f ~kind ~ra_:rd ~rb:(temp f (d + 1)) ~rd ~a_int ~b_int
  | ("land2" | "lor2" | "lxor2"), _ ->
      binary ();
      if chk then begin
        Emit.int_test ~checking:true ~hint:Insn.Unlikely f.ctx
          ~src_kind:Annot.Arith_op ~sense:`Is_not rd ~scratch:Reg.v1
          L.l_err_type;
        Emit.int_test ~checking:true ~hint:Insn.Unlikely f.ctx
          ~src_kind:Annot.Arith_op ~sense:`Is_not (temp f (d + 1)) ~scratch:Reg.v1
          L.l_err_type
      end;
      let op =
        match name with
        | "land2" -> Insn.And
        | "lor2" -> Insn.Or
        | _ -> Insn.Xor
      in
      e_ f (Insn.Alu (op, rd, rd, temp f (d + 1)))
  | "mkvect", _ ->
      unary ();
      mv f Reg.a0 rd;
      e_ ~annot:(Annot.make Annot.Alloc) f (Insn.Jal L.l_mkvect);
      mv f rd Reg.v0
  | "makebox", _ ->
      unary ();
      if chk then
        Emit.int_test ~checking:true ~hint:Insn.Unlikely f.ctx
          ~src_kind:Annot.Arith_op ~sense:`Is_not rd ~scratch:Reg.v1
          L.l_err_type;
      mv f Reg.a0 rd;
      e_ ~annot:(Annot.make Annot.Alloc) f (Insn.Jal L.l_makebox);
      mv f rd Reg.v0
  | "getv", _ ->
      binary ();
      let idx_int =
        match args with
        | [ _; Ast.Const (Ast.Cint _) ] -> true
        | _ -> false
      in
      vector_access f d ~store:false ~idx_int
  | "putv", _ ->
      ternary ();
      let idx_int =
        match args with
        | [ _; Ast.Const (Ast.Cint _); _ ] -> true
        | _ -> false
      in
      vector_access f d ~store:true ~idx_int
  | "vlen", _ ->
      field_load ~ty:Scheme.Vector ~src_kind:Annot.Vector_op
        ~off:L.obj_off_length
  | "reclaim", [] ->
      e_ ~annot:(Annot.make Annot.Alloc) f (Insn.Jal L.l_gc_entry);
      mv f rd Reg.rnil
  | "error", [] -> e_ f (Insn.Trap 6)
  | "gccount", [] ->
      (* Diagnostic: number of collections so far, as an integer item. *)
      e_ f (Insn.La (rd, L.l_gc_count));
      e_ f (Insn.Ld (Insn.Plain, rd, rd, 0));
      if Scheme.is_low s then e_ f (Insn.Alui (Insn.Sll, rd, rd, 2))
  | ("eq" | "null" | "pairp" | "atom" | "symbolp" | "vectorp" | "boxp"
    | "numberp" | "lessp" | "greaterp" | "leq" | "geq" | "eqn"), _ ->
      boolean_result f d (fun ~ltrue ~lfalse ~next ->
          eval_test f d (Ast.Call (name, args)) ~ltrue ~lfalse ~next)
  | _, _ -> call_user f d name args

(* getv/putv.  Value in temp f d = vector, d+1 = index, (d+2 = element). *)
and vector_access f d ~store ~idx_int =
  let s = scheme f in
  let chk = checking f in
  let rv = temp f d and ri = temp f (d + 1) in
  (* The masked base must survive the bounds check, so it gets its own
     temporary; [v1] serves the transient roles. *)
  let base_scratch = temp f (d + if store then 3 else 2) in
  let parallel = Emit.parallel_covers f.ctx Scheme.Vector in
  if chk && not parallel then
    Emit.check_type ~checking:true ~hint:Insn.Unlikely f.ctx
      ~src_kind:Annot.Vector_op ~ty:Scheme.Vector ~sense:`Is_not rv
      ~scratch:Reg.v1 L.l_err_type;
  if chk && not idx_int then
    (* The indexing type must be legal (Section 2.2). *)
    Emit.int_test ~checking:true ~hint:Insn.Unlikely f.ctx
      ~src_kind:Annot.Vector_op ~sense:`Is_not ri ~scratch:Reg.v1 L.l_err_type;
  let acc =
    Emit.object_access f.ctx ~ty:Scheme.Vector ~parallel rv
      ~scratch:base_scratch
  in
  if chk then begin
    (* Bounds: unsigned compare of the encoded index against the encoded
       length (order-preserving in every scheme). *)
    let ck = Annot.make ~checking:true (Annot.Check Annot.Vector_op) in
    Emit.load ~annot:ck f.ctx acc ~dst:Reg.v1 ~off:L.obj_off_length;
    e_ ~annot:ck f (Insn.Alu (Insn.Sltu, Reg.v1, ri, Reg.v1));
    Emit.branch ~annot:ck ~hint:Insn.Unlikely f.ctx Insn.Eq Reg.v1 Reg.zero
      L.l_err_bounds
  end;
  (* Effective address: base + scaled index. *)
  let scaled =
    if Scheme.is_low s then ri (* encoded index is already 4n *)
    else begin
      e_ f (Insn.Alui (Insn.Sll, Reg.v1, ri, 2));
      Reg.v1
    end
  in
  e_ f (Insn.Alu (Insn.Add, Reg.v1, acc.Emit.base, scaled));
  (* Under the low-tag schemes an index addition can carry into the upper
     tag bit, so a parallel-checked *indexed* access would see a corrupted
     tag; the check already happened on the (unindexed) length load above,
     and the element access reverts to a plain offset-corrected one. *)
  let acc_idx =
    if parallel && Scheme.is_low s then
      {
        Emit.mode = Tagsim_mipsx.Insn.Plain;
        base = Reg.v1;
        corr = Scheme.offset_correction s Scheme.Vector;
      }
    else { acc with Emit.base = Reg.v1 }
  in
  if store then begin
    Emit.store f.ctx acc_idx ~src:(temp f (d + 2)) ~off:L.obj_off_elems;
    mv f (temp f d) (temp f (d + 2))
  end
  else Emit.load f.ctx acc_idx ~dst:(temp f d) ~off:L.obj_off_elems

(* Test-position evaluation: jump to [ltrue] when the expression is
   non-nil, [lfalse] otherwise.  [next] is the label that immediately
   follows the emitted code. *)
and eval_test ?(likely = false) f d (e : Ast.expr) ~ltrue ~lfalse ~next =
  let s = scheme f in
  let chk = checking f in
  let hint = if likely then Insn.Likely else Insn.No_hint in
  let finish_jump target = if target <> next then e_ f (Insn.J target) in
  (* Emit a leaf test so that control reaches [ltrue]/[lfalse] correctly
     given that [next] is the label emitted right after this code.
     [branch_true] must branch to [ltrue] when the test holds;
     [branch_false] must branch to [lfalse] when it does not. *)
  let finish ~branch_true ~branch_false =
    if next = lfalse then branch_true ()
    else if next = ltrue then branch_false ()
    else begin
      branch_true ();
      e_ f (Insn.J lfalse)
    end
  in
  let user_branch ?annot cond rs rt =
    let neg =
      match cond with
      | Insn.Eq -> Insn.Ne
      | Insn.Ne -> Insn.Eq
      | Insn.Lt -> Insn.Ge
      | Insn.Ge -> Insn.Lt
      | Insn.Gt -> Insn.Le
      | Insn.Le -> Insn.Gt
    in
    finish
      ~branch_true:(fun () -> Emit.branch ?annot ~hint f.ctx cond rs rt ltrue)
      ~branch_false:(fun () ->
        Emit.branch ?annot ~hint f.ctx neg rs rt lfalse)
  in
  match e with
  | Ast.Const c -> finish_jump (if truthy c then ltrue else lfalse)
  | Ast.If (c, a, b) ->
      let la = fresh f "tta" and lb = fresh f "ttb" in
      eval_test f d c ~ltrue:la ~lfalse:lb ~next:la;
      label f la;
      eval_test f d a ~ltrue ~lfalse ~next:lb;
      label f lb;
      eval_test f d b ~ltrue ~lfalse ~next
  | Ast.Call ("null", [ x ]) ->
      eval_test ~likely f d x ~ltrue:lfalse ~lfalse:ltrue ~next
  | Ast.Call (("eq" | "eqn"), [ a; b ]) ->
      (* eqn compiles as eq: PSL numeric equality on fixnums is pointer
         equality and is never type-checked. *)
      eval f d a;
      eval f (d + 1) b;
      user_branch Insn.Eq (temp f d) (temp f (d + 1))
  | Ast.Call (p, [ x ]) when type_pred p <> None -> (
      eval f d x;
      let rx = temp f d in
      match type_pred p with
      | Some (`Ty ty) ->
          finish
            ~branch_true:(fun () ->
              Emit.check_type f.ctx ~src_kind:Annot.User_pred ~ty ~sense:`Is
                rx ~scratch:Reg.v1 ltrue)
            ~branch_false:(fun () ->
              Emit.check_type f.ctx ~src_kind:Annot.User_pred ~ty
                ~sense:`Is_not rx ~scratch:Reg.v1 lfalse)
      | Some `Atom ->
          (* atom = not pairp *)
          finish
            ~branch_true:(fun () ->
              Emit.check_type f.ctx ~src_kind:Annot.User_pred ~ty:Scheme.Pair
                ~sense:`Is_not rx ~scratch:Reg.v1 ltrue)
            ~branch_false:(fun () ->
              Emit.check_type f.ctx ~src_kind:Annot.User_pred ~ty:Scheme.Pair
                ~sense:`Is rx ~scratch:Reg.v1 lfalse)
      | Some `Number ->
          (* Integer or boxnum (Section 3.4: the non-simple checks). *)
          Emit.int_test f.ctx ~src_kind:Annot.User_pred ~sense:`Is rx
            ~scratch:Reg.v1 ltrue;
          finish
            ~branch_true:(fun () ->
              Emit.check_type f.ctx ~src_kind:Annot.User_pred
                ~ty:Scheme.Boxnum ~sense:`Is rx ~scratch:Reg.v1 ltrue)
            ~branch_false:(fun () ->
              Emit.check_type f.ctx ~src_kind:Annot.User_pred
                ~ty:Scheme.Boxnum ~sense:`Is_not rx ~scratch:Reg.v1 lfalse)
      | None -> assert false)
  | Ast.Call (cmp, [ a; b ]) when comparison cmp <> None ->
      eval f d a;
      eval f (d + 1) b;
      let known_int = function Ast.Const (Ast.Cint _) -> true | _ -> false in
      if chk then begin
        if not (known_int a) then
          Emit.int_test ~checking:true ~hint:Insn.Unlikely f.ctx
            ~src_kind:Annot.Arith_op ~sense:`Is_not (temp f d) ~scratch:Reg.v1
            L.l_err_type;
        if not (known_int b) then
          Emit.int_test ~checking:true ~hint:Insn.Unlikely f.ctx
            ~src_kind:Annot.Arith_op ~sense:`Is_not
            (temp f (d + 1))
            ~scratch:Reg.v1 L.l_err_type
      end;
      let cond = Option.get (comparison cmp) in
      user_branch cond (temp f d) (temp f (d + 1))
  | Ast.Progn [] -> finish_jump lfalse
  | Ast.Progn es ->
      let rec go = function
        | [] -> assert false
        | [ last ] -> eval_test ~likely f d last ~ltrue ~lfalse ~next
        | e :: rest ->
            eval f d e;
            go rest
      in
      go es
  | Ast.Var _ | Ast.Setq _ | Ast.While _ | Ast.Let _ | Ast.Call _
  | Ast.Funcall _ ->
      eval f d e;
      user_branch Insn.Ne (temp f d) Reg.rnil;
      ignore s

(* --- Function compilation. --- *)

let compile_def (ctx : Emit.ctx) symtab funcs (def : Ast.def) =
  if List.length def.Ast.params > max_args then
    errorf "%s: more than %d parameters" def.Ast.name max_args;
  let nslots = List.length def.Ast.params + count_bindings def.Ast.body in
  let frame_bytes = (off_locals + (4 * nslots) + 7) land lnot 7 in
  let f =
    {
      ctx;
      symtab;
      funcs;
      fname = def.Ast.name;
      env = [];
      next_slot = off_locals;
      frame_bytes;
      reg_locals = 0;
      stubs = [];
    }
  in
  label f (L.fn_label def.Ast.name);
  e_ f (Insn.Alui (Insn.Add, Reg.sp, Reg.sp, -frame_bytes));
  e_ f (Insn.St (Insn.Plain, Reg.sp, Reg.ra, off_ra));
  (* Bind parameters: cache the first few in registers. *)
  List.iteri
    (fun i p ->
      let slot = f.next_slot in
      f.next_slot <- f.next_slot + 4;
      let loc =
        if f.reg_locals < n_reg_locals then begin
          let r = Reg.temp (n_temp_pool - 1 - f.reg_locals) in
          f.reg_locals <- f.reg_locals + 1;
          mv f r (Reg.a0 + i);
          Lreg (r, slot)
        end
        else begin
          e_ f (Insn.St (Insn.Plain, Reg.sp, Reg.a0 + i, slot));
          Lslot slot
        end
      in
      f.env <- (p, loc) :: f.env)
    def.Ast.params;
  eval f 0 def.Ast.body;
  mv f Reg.v0 (temp f 0);
  e_ f (Insn.Ld (Insn.Plain, Reg.ra, Reg.sp, off_ra));
  e_ f (Insn.Alui (Insn.Add, Reg.sp, Reg.sp, frame_bytes));
  e_ f (Insn.Jr Reg.ra);
  (* Out-of-line stubs (allocation retries, generic-arith slow paths). *)
  List.iter (fun emit_stub -> emit_stub ()) (List.rev f.stubs)
