(** The two-level content-addressed object cache of the incremental
    backend.

    A compilation unit (one Lisp function, the runtime routine group,
    the startup stub) compiles to a relocatable object: its scheduled
    {!Tagsim_asm.Link.fragment} plus the unit's intern effect on the
    symbol table.  Objects are memoised in-process (L1, always on) and,
    when enabled, persisted under [_tagsim_cache/obj/] (L2, mirroring
    the measurement cache {!Tagsim_analysis.Cache}): a full
    Table-2-style matrix compiles each invariant function once instead
    of once per row, and a second cold process reuses objects on disk.

    {b Key.}  The hex digest of everything the emitted unit depends on:

    - the unit kind and its content fingerprint (for a function, an
      injective serialisation of the post-expansion AST — name,
      parameters, body);
    - the symbol-table environment at the unit's start (interned names
      in index order with their function marks, plus the program's
      function-arity table): symbol indices are baked into the emitted
      code as immediates and [stb]-relative offsets;
    - the tag scheme (by name) and the {e projected} support
      configuration: the generic-arithmetic flags
      ([hw_generic_arith]/[int_biased_arith]) only reach the emitted
      code through the five arithmetic primitives, so a function that
      calls none of them drops them from its key and is shared across
      support rows that differ only there (e.g. Table 2 rows 3 and 4);
    - the delay-slot scheduler configuration;
    - the {!version} stamp.

    {b Intern replay.}  Compiling a unit may intern new symbols (quoted
    constants, globals); their dense indices feed every later unit.  The
    object records the interned suffix, and {!find_or_build} callers
    replay it on a hit — interning is idempotent, so replaying after a
    miss (where the build already interned) is a no-op — keeping the
    symbol-table evolution identical whether units come from the cache
    or from the compiler.

    {b Robustness.}  As with the measurement cache, an entry is an
    optimisation, never an authority: unreadable, truncated, corrupt or
    stale-version objects are silent misses, write failures are
    ignored, and writes are atomic (unique temp file + [rename]). *)

module Insn = Tagsim_mipsx.Insn
module Annot = Tagsim_mipsx.Annot
module Buf = Tagsim_asm.Buf
module Sched = Tagsim_asm.Sched
module Image = Tagsim_asm.Image
module Link = Tagsim_asm.Link
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module Ast = Tagsim_lisp.Ast

(* Bump on any change to emitted code or to this serialisation format:
   code generation, runtime emission, delay-slot scheduling, the
   instruction set, or the object layout below.  (Changes that alter
   emitted code also alter measurements, so they bump the measurement
   cache's [Cache.version] as well; a format-only change here bumps
   this stamp alone.)
   2: the optimization level joined the key, and objects record their
   eliminated-check count — a pre-refactor entry can never satisfy a
   post-refactor lookup.
   3: the funcall path gained a dynamic arity check (and the symbol
   table's name-id words carry arities), so pre-change objects emit
   different code.
   4: checked multiplies verify their product by dividing it back
   (word-wrapped products used to escape the validity test). *)
let version = "4"

(* L2 configuration, set once by the CLI/bench entry point before any
   fan-out.  Disabled by default: library users (tests above all) opt
   in explicitly.  The L1 memo is always on — objects are immutable and
   content-addressed, so sharing them is semantics-free. *)
let enabled_flag = ref false
let dir_ref = ref (Filename.concat "_tagsim_cache" "obj")

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b
let dir () = !dir_ref
let set_dir d = dir_ref := d

let hit_count = Atomic.make 0
let miss_count = Atomic.make 0
let write_count = Atomic.make 0

let counters () =
  (Atomic.get hit_count, Atomic.get miss_count, Atomic.get write_count)

let reset_counters () =
  Atomic.set hit_count 0;
  Atomic.set miss_count 0;
  Atomic.set write_count 0

(* --- Objects. --- *)

type obj = {
  o_frag : Link.fragment;
  o_interned : string list; (* intern effect, in intern order *)
  o_elided : int; (* checks the optimizer deleted building this unit *)
}

(* --- Keys. --- *)

(* Injective fingerprint of a definition's post-expansion AST: symbols
   are length-prefixed, every node carries a distinct head letter, so
   two distinct definitions can never collide. *)
let def_fingerprint (d : Ast.def) =
  let b = Buffer.create 256 in
  let str s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  in
  let rec const (c : Ast.const) =
    match c with
    | Ast.Cint n ->
        Buffer.add_char b 'i';
        Buffer.add_string b (string_of_int n)
    | Ast.Csym s ->
        Buffer.add_char b 'y';
        str s
    | Ast.Clist l ->
        Buffer.add_char b '(';
        List.iter const l;
        Buffer.add_char b ')'
  in
  let rec expr (e : Ast.expr) =
    match e with
    | Ast.Const c ->
        Buffer.add_char b 'q';
        const c
    | Ast.Var v ->
        Buffer.add_char b 'v';
        str v
    | Ast.If (c, t, f) ->
        Buffer.add_char b '?';
        expr c;
        expr t;
        expr f;
        Buffer.add_char b '.'
    | Ast.Progn es ->
        Buffer.add_char b 'p';
        List.iter expr es;
        Buffer.add_char b '.'
    | Ast.Setq (v, e) ->
        Buffer.add_char b '=';
        str v;
        expr e
    | Ast.While (c, body) ->
        Buffer.add_char b 'w';
        expr c;
        List.iter expr body;
        Buffer.add_char b '.'
    | Ast.Let (binds, body) ->
        Buffer.add_char b 'l';
        List.iter
          (fun (v, e) ->
            str v;
            expr e)
          binds;
        Buffer.add_char b ';';
        List.iter expr body;
        Buffer.add_char b '.'
    | Ast.Call (name, args) ->
        Buffer.add_char b 'c';
        str name;
        List.iter expr args;
        Buffer.add_char b '.'
    | Ast.Funcall (f, args) ->
        Buffer.add_char b 'f';
        expr f;
        List.iter expr args;
        Buffer.add_char b '.'
  in
  Buffer.add_char b 'd';
  str d.Ast.name;
  List.iter str d.Ast.params;
  Buffer.add_char b ';';
  expr d.Ast.body;
  Buffer.contents b

(* The five primitives whose emitted code reads the generic-arithmetic
   support flags (they all route through [Codegen.emit_arith]; nothing
   else does). *)
let arith_prims =
  [ "plus2"; "difference2"; "times2"; "quotient"; "remainder" ]

let rec expr_uses_arith (e : Ast.expr) =
  match e with
  | Ast.Const _ | Ast.Var _ -> false
  | Ast.If (a, b, c) ->
      expr_uses_arith a || expr_uses_arith b || expr_uses_arith c
  | Ast.Progn es -> List.exists expr_uses_arith es
  | Ast.Setq (_, e) -> expr_uses_arith e
  | Ast.While (c, body) ->
      expr_uses_arith c || List.exists expr_uses_arith body
  | Ast.Let (binds, body) ->
      List.exists (fun (_, e) -> expr_uses_arith e) binds
      || List.exists expr_uses_arith body
  | Ast.Call (name, args) ->
      List.mem name arith_prims || List.exists expr_uses_arith args
  | Ast.Funcall (f, args) ->
      expr_uses_arith f || List.exists expr_uses_arith args

let def_uses_arith (d : Ast.def) = expr_uses_arith d.Ast.body

(* The support axes a unit's emitted code can actually depend on: a
   function that calls no arithmetic primitive normalises the
   generic-arithmetic flags away (to the software defaults), so rows
   differing only there share its object.  [Support.describe] is
   injective, so the token separates every remaining configuration. *)
let support_token ?(uses_arith = true) (support : Support.t) =
  let s =
    if uses_arith then support
    else
      { support with Support.hw_generic_arith = false; int_biased_arith = true }
  in
  Support.describe s

let sched_token (s : Sched.config) =
  Printf.sprintf "%b/%b/%b" s.Sched.hoist s.Sched.fill_unlikely
    s.Sched.squash_likely

(* The symbol-table environment a unit compiles against: interned names
   in index order with their function marks, plus the function-arity
   table.  Symbol indices are baked into emitted code, so two units are
   interchangeable only when compiled against identical environments. *)
let env_fingerprint symtab funcs =
  let cells =
    List.map
      (fun n -> if Symtab.is_function symtab n then n ^ "/f" else n)
      (Symtab.names symtab)
  in
  let arities =
    Hashtbl.fold (fun n a acc -> (n, a) :: acc) funcs []
    |> List.sort compare
    |> List.map (fun (n, a) -> Printf.sprintf "%s/%d" n a)
  in
  Digest.to_hex
    (Digest.string (String.concat "\x00" (cells @ ("|" :: arities))))

let key ~kind ~fingerprint ~env ~(scheme : Scheme.t) ~support_token ~sched
    ~(opt : Tir.opt) =
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          [
            "tagsim-obj"; version; kind; fingerprint; env;
            scheme.Scheme.name; support_token; sched_token sched;
            Tir.opt_token opt;
          ]))

let entry_path k = Filename.concat !dir_ref (k ^ ".obj")

(* --- Serialisation (line-oriented text, like the measurement cache:
   stable across compiler versions, diffable, truncation-detectable via
   the ["end"] trailer). --- *)

exception Malformed

let alu_tokens : (Insn.alu * string) list =
  [
    (Insn.Add, "add"); (Insn.Sub, "sub"); (Insn.And, "and"); (Insn.Or, "or");
    (Insn.Xor, "xor"); (Insn.Nor, "nor"); (Insn.Slt, "slt");
    (Insn.Sltu, "sltu"); (Insn.Sll, "sll"); (Insn.Srl, "srl");
    (Insn.Sra, "sra"); (Insn.Mul, "mul"); (Insn.Div, "div"); (Insn.Rem, "rem");
  ]

let cond_tokens : (Insn.cond * string) list =
  [
    (Insn.Eq, "eq"); (Insn.Ne, "ne"); (Insn.Lt, "lt"); (Insn.Ge, "ge");
    (Insn.Gt, "gt"); (Insn.Le, "le");
  ]

let hint_tokens : (Insn.hint * string) list =
  [
    (Insn.No_hint, "n"); (Insn.Unlikely, "u"); (Insn.Slow_path, "s");
    (Insn.Likely, "l");
  ]

let to_token table v = List.assoc v table

let of_token table tok =
  match List.find_opt (fun (_, t) -> t = tok) table with
  | Some (v, _) -> v
  | None -> raise Malformed

let mode_token = function
  | Insn.Plain -> "p"
  | Insn.Tag_ignoring -> "t"
  | Insn.Checked n -> "c" ^ string_of_int n

let mode_of_token tok =
  match tok with
  | "p" -> Insn.Plain
  | "t" -> Insn.Tag_ignoring
  | _ when String.length tok > 1 && tok.[0] = 'c' -> (
      match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
      | Some n -> Insn.Checked n
      | None -> raise Malformed)
  | _ -> raise Malformed

let source_of_index i =
  match List.nth_opt Annot.all_sources i with
  | Some s -> s
  | None -> raise Malformed

let annot_token (a : Annot.t) =
  let kind =
    match a.Annot.kind with
    | Annot.Plain -> "p"
    | Annot.Insert -> "i"
    | Annot.Remove -> "r"
    | Annot.Extract s -> "e" ^ string_of_int (Annot.source_index s)
    | Annot.Check s -> "c" ^ string_of_int (Annot.source_index s)
    | Annot.Garith -> "g"
    | Annot.Alloc -> "a"
    | Annot.Gc_work -> "w"
    | Annot.Slot_fill -> "f"
  in
  if a.Annot.checking then kind ^ "!" else kind

let annot_of_token tok =
  let n = String.length tok in
  if n = 0 then raise Malformed;
  let checking = tok.[n - 1] = '!' in
  let tok = if checking then String.sub tok 0 (n - 1) else tok in
  let idx () =
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some i -> source_of_index i
    | None -> raise Malformed
  in
  let kind =
    match tok with
    | "p" -> Annot.Plain
    | "i" -> Annot.Insert
    | "r" -> Annot.Remove
    | "g" -> Annot.Garith
    | "a" -> Annot.Alloc
    | "w" -> Annot.Gc_work
    | "f" -> Annot.Slot_fill
    | _ when tok.[0] = 'e' -> Annot.Extract (idx ())
    | _ when tok.[0] = 'c' -> Annot.Check (idx ())
    | _ -> raise Malformed
  in
  Annot.make ~checking kind

let insn_tokens (insn : string Insn.t) =
  let i = string_of_int in
  match insn with
  | Insn.Alu (op, rd, rs, rt) ->
      [ "alu"; to_token alu_tokens op; i rd; i rs; i rt ]
  | Insn.Alui (op, rd, rs, imm) ->
      [ "alui"; to_token alu_tokens op; i rd; i rs; i imm ]
  | Insn.Li (rd, imm) -> [ "li"; i rd; i imm ]
  | Insn.La (rd, l) -> [ "la"; i rd; l ]
  | Insn.Mv (rd, rs) -> [ "mv"; i rd; i rs ]
  | Insn.Ld (m, rd, rs, off) -> [ "ld"; mode_token m; i rd; i rs; i off ]
  | Insn.St (m, rs, rt, off) -> [ "st"; mode_token m; i rs; i rt; i off ]
  | Insn.B (b, l) ->
      [
        "b"; to_token cond_tokens b.Insn.cond; i b.Insn.rs; i b.Insn.rt;
        (if b.Insn.squash then "1" else "0");
        to_token hint_tokens b.Insn.hint; l;
      ]
  | Insn.Bi (b, l) ->
      [
        "bi"; to_token cond_tokens b.Insn.bi_cond; i b.Insn.bi_rs;
        i b.Insn.bi_imm;
        (if b.Insn.bi_squash then "1" else "0");
        to_token hint_tokens b.Insn.bi_hint; l;
      ]
  | Insn.Btag (b, l) ->
      [
        "btag";
        (if b.Insn.bt_neg then "1" else "0");
        i b.Insn.bt_rs; i b.Insn.bt_tag;
        (if b.Insn.bt_squash then "1" else "0");
        to_token hint_tokens b.Insn.bt_hint; l;
      ]
  | Insn.J l -> [ "j"; l ]
  | Insn.Jal l -> [ "jal"; l ]
  | Insn.Jr r -> [ "jr"; i r ]
  | Insn.Jalr r -> [ "jalr"; i r ]
  | Insn.Add_gen (rd, rs, rt) -> [ "addg"; i rd; i rs; i rt ]
  | Insn.Sub_gen (rd, rs, rt) -> [ "subg"; i rd; i rs; i rt ]
  | Insn.Settd r -> [ "settd"; i r ]
  | Insn.Rett -> [ "rett" ]
  | Insn.Trap n -> [ "trap"; i n ]
  | Insn.Halt -> [ "halt" ]
  | Insn.Nop -> [ "nop" ]

let num tok =
  match int_of_string_opt tok with Some n -> n | None -> raise Malformed

let flag tok =
  match tok with "0" -> false | "1" -> true | _ -> raise Malformed

let insn_of_tokens toks : string Insn.t =
  match toks with
  | [ "alu"; op; rd; rs; rt ] ->
      Insn.Alu (of_token alu_tokens op, num rd, num rs, num rt)
  | [ "alui"; op; rd; rs; imm ] ->
      Insn.Alui (of_token alu_tokens op, num rd, num rs, num imm)
  | [ "li"; rd; imm ] -> Insn.Li (num rd, num imm)
  | [ "la"; rd; l ] -> Insn.La (num rd, l)
  | [ "mv"; rd; rs ] -> Insn.Mv (num rd, num rs)
  | [ "ld"; m; rd; rs; off ] ->
      Insn.Ld (mode_of_token m, num rd, num rs, num off)
  | [ "st"; m; rs; rt; off ] ->
      Insn.St (mode_of_token m, num rs, num rt, num off)
  | [ "b"; c; rs; rt; sq; h; l ] ->
      Insn.B
        ( {
            Insn.cond = of_token cond_tokens c;
            rs = num rs;
            rt = num rt;
            squash = flag sq;
            hint = of_token hint_tokens h;
          },
          l )
  | [ "bi"; c; rs; imm; sq; h; l ] ->
      Insn.Bi
        ( {
            Insn.bi_cond = of_token cond_tokens c;
            bi_rs = num rs;
            bi_imm = num imm;
            bi_squash = flag sq;
            bi_hint = of_token hint_tokens h;
          },
          l )
  | [ "btag"; neg; rs; tag; sq; h; l ] ->
      Insn.Btag
        ( {
            Insn.bt_neg = flag neg;
            bt_rs = num rs;
            bt_tag = num tag;
            bt_squash = flag sq;
            bt_hint = of_token hint_tokens h;
          },
          l )
  | [ "j"; l ] -> Insn.J l
  | [ "jal"; l ] -> Insn.Jal l
  | [ "jr"; r ] -> Insn.Jr (num r)
  | [ "jalr"; r ] -> Insn.Jalr (num r)
  | [ "addg"; rd; rs; rt ] -> Insn.Add_gen (num rd, num rs, num rt)
  | [ "subg"; rd; rs; rt ] -> Insn.Sub_gen (num rd, num rs, num rt)
  | [ "settd"; r ] -> Insn.Settd (num r)
  | [ "rett" ] -> Insn.Rett
  | [ "trap"; n ] -> Insn.Trap (num n)
  | [ "halt" ] -> Insn.Halt
  | [ "nop" ] -> Insn.Nop
  | _ -> raise Malformed

let serialize (o : obj) =
  let b = Buffer.create 4096 in
  let line s = Buffer.add_string b s; Buffer.add_char b '\n' in
  line ("tagsim-obj " ^ version);
  line ("elided " ^ string_of_int o.o_elided);
  List.iter (fun l -> line ("local " ^ l)) o.o_frag.Link.f_locals;
  List.iter (fun s -> line ("sym " ^ s)) o.o_interned;
  List.iter
    (function
      | Buf.L l -> line ("L " ^ l)
      | Buf.C c -> line ("C " ^ String.escaped c)
      | Buf.I s ->
          line
            (String.concat " "
               ("I"
               :: (if s.Buf.speculative then "1" else "0")
               :: annot_token s.Buf.annot
               :: insn_tokens s.Buf.insn)))
    o.o_frag.Link.f_code;
  List.iter
    (fun (lbl, d) ->
      let l = Option.value lbl ~default:"-" in
      line
        (match d with
        | Buf.Word w -> Printf.sprintf "D %s w %d" l w
        | Buf.Addr t -> Printf.sprintf "D %s a %s" l t
        | Buf.Tagged (t, tg) -> Printf.sprintf "D %s t %s %d" l t tg.Buf.ty_code
        | Buf.Space n -> Printf.sprintf "D %s s %d" l n
        | Buf.Align n -> Printf.sprintf "D %s l %d" l n))
    o.o_frag.Link.f_data;
  line "end";
  Buffer.contents b

(* Rebuilding a [Tagged] datum's closure needs the object's scheme: the
   stored type code plus [Scheme.encode_ptr] reproduce exactly what
   [Codegen] built. *)
let parse ~(scheme : Scheme.t) (text : string) : obj =
  let lines = String.split_on_char '\n' text in
  let split l = String.split_on_char ' ' l |> List.filter (( <> ) "") in
  let rest_after l =
    (* Everything after the first space: comments may contain spaces. *)
    match String.index_opt l ' ' with
    | None -> raise Malformed
    | Some i -> String.sub l (i + 1) (String.length l - i - 1)
  in
  let lines =
    match lines with
    | header :: rest when header = "tagsim-obj " ^ version -> rest
    | _ -> raise Malformed
  in
  let locals = ref [] and syms = ref [] and code = ref [] and data = ref [] in
  let elided = ref 0 in
  let saw_end = ref false in
  let rec go = function
    | [] -> ()
    | line :: rest ->
        if !saw_end then (if String.trim line <> "" then raise Malformed)
        else
          (match split line with
          | [ "end" ] -> saw_end := true
          | [ "elided"; n ] -> elided := num n
          | "local" :: [ l ] -> locals := l :: !locals
          | "sym" :: [ s ] -> syms := s :: !syms
          | "L" :: [ l ] -> code := Buf.L l :: !code
          | "C" :: _ ->
              let c =
                match Scanf.unescaped (rest_after line) with
                | c -> c
                | exception _ -> raise Malformed
              in
              code := Buf.C c :: !code
          | "I" :: spec :: annot :: insn ->
              code :=
                Buf.I
                  {
                    Buf.insn = insn_of_tokens insn;
                    annot = annot_of_token annot;
                    speculative = flag spec;
                  }
                :: !code
          | "D" :: lbl :: d ->
              let label = if lbl = "-" then None else Some lbl in
              let datum =
                match d with
                | [ "w"; w ] -> Buf.Word (num w)
                | [ "a"; t ] -> Buf.Addr t
                | [ "t"; t; code ] ->
                    let ty =
                      match Scheme.ty_of_code (num code) with
                      | ty -> ty
                      | exception Invalid_argument _ -> raise Malformed
                    in
                    Buf.Tagged
                      ( t,
                        {
                          Buf.ty_code = Scheme.ty_code ty;
                          apply = (fun a -> Scheme.encode_ptr scheme ty a);
                        } )
                | [ "s"; n ] -> Buf.Space (num n)
                | [ "l"; n ] -> Buf.Align (num n)
                | _ -> raise Malformed
              in
              data := (label, datum) :: !data
          | _ -> raise Malformed);
          go rest
  in
  go lines;
  if not !saw_end then raise Malformed;
  {
    o_frag =
      {
        Link.f_code = List.rev !code;
        f_data = List.rev !data;
        f_locals = List.rev !locals;
      };
    o_interned = List.rev !syms;
    o_elided = !elided;
  }

(* --- Store operations (same discipline as the measurement cache). --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let disk_load ~scheme k =
  if not !enabled_flag then None
  else
    match read_file (entry_path k) with
    | exception _ -> None
    | text -> ( match parse ~scheme text with o -> Some o | exception _ -> None)

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Sys.mkdir p 0o777 with Sys_error _ -> ()
    end
  in
  go path

let disk_store k (o : obj) =
  if !enabled_flag then
    try
      mkdir_p !dir_ref;
      let tmp =
        Printf.sprintf "%s.tmp.%d.%d" (entry_path k) (Unix.getpid ())
          (Domain.self () :> int)
      in
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (serialize o));
      Sys.rename tmp (entry_path k);
      Atomic.incr write_count
    with _ -> ()

(* Remove every object (and stray temp file) from the store; only files
   this module created — name contains ".obj" — are touched. *)
let wipe () =
  let is_ours name =
    let pat = ".obj" and n = String.length name in
    let m = String.length pat in
    let rec at i = i + m <= n && (String.sub name i m = pat || at (i + 1)) in
    at 0
  in
  match Sys.readdir !dir_ref with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          if is_ours name then
            try Sys.remove (Filename.concat !dir_ref name) with _ -> ())
        names

(* --- The L1 memo and the lookup protocol. --- *)

let memo : (string, obj) Hashtbl.t = Hashtbl.create 256
let image_memo : (string, Image.t) Hashtbl.t = Hashtbl.create 64
let memo_mutex = Mutex.create ()

let memo_find k = Mutex.protect memo_mutex (fun () -> Hashtbl.find_opt memo k)
let memo_add k o = Mutex.protect memo_mutex (fun () -> Hashtbl.replace memo k o)

let clear_memo () =
  Mutex.protect memo_mutex (fun () ->
      Hashtbl.reset memo;
      Hashtbl.reset image_memo)

(* Linked-image memo (in-process only; images are never persisted —
   the per-unit objects are).  Sound because a linked image is a pure
   function of its ordered unit-key list: each key pins its unit's
   code, data and intern effect, the symbol-table block is determined
   by the initial environment (inside every key) plus the units' intern
   effects, and layout is the list order.  Images are immutable after
   assembly (the simulator blits the data image and only reads the code
   array), so sharing one across compiles is safe. *)
let find_image ~keys ~build =
  let k = Digest.to_hex (Digest.string (String.concat "\n" keys)) in
  match
    Mutex.protect memo_mutex (fun () -> Hashtbl.find_opt image_memo k)
  with
  | Some image -> image
  | None ->
      let image = build () in
      Mutex.protect memo_mutex (fun () -> Hashtbl.replace image_memo k image);
      image

(* The build runs outside the lock: concurrent workers may duplicate a
   build (deterministic, so the last [replace] wins harmlessly) but
   never serialise on the compiler. *)
let find_or_build ~scheme ~key:k ~build =
  match memo_find k with
  | Some o ->
      Atomic.incr hit_count;
      o
  | None -> (
      match disk_load ~scheme k with
      | Some o ->
          Atomic.incr hit_count;
          memo_add k o;
          o
      | None ->
          Atomic.incr miss_count;
          let o = build () in
          (* Rename the unit's local labels behind its content key,
             once, at build time: keys are unique across the distinct
             units of any link, so linking needs no renaming pass — a
             warm-cache compile is pure concatenation and assembly.
             (Persisted objects store the renamed form.) *)
          let o = { o with o_frag = Link.rename ~prefix:("o" ^ k) o.o_frag } in
          memo_add k o;
          disk_store k o;
          o)
