(** Whole-program compilation, loading and execution.

    A program is a Lisp source defining [(de main () ...)] plus any number
    of helper functions.  It is compiled together with the prelude
    (unreachable functions pruned), linked with the runtime, assembled,
    loaded into a simulator instance and run; the decoded result and the
    cycle statistics come back. *)

module Insn = Tagsim_mipsx.Insn
module Reg = Tagsim_mipsx.Reg
module Buf = Tagsim_asm.Buf
module Sched = Tagsim_asm.Sched
module Image = Tagsim_asm.Image
module Link = Tagsim_asm.Link
module Machine = Tagsim_sim.Machine
module Predecode = Tagsim_sim.Predecode
module Fuse = Tagsim_sim.Fuse
module Trace = Tagsim_sim.Trace
module Plan = Tagsim_sim.Plan
module Stats = Tagsim_sim.Stats
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module Emit = Tagsim_runtime.Emit
module Rt = Tagsim_runtime.Rt
module L = Tagsim_runtime.Layout
module Ast = Tagsim_lisp.Ast
module Expand = Tagsim_lisp.Expand

exception Error of string

let errorf fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* Primitive names: calls to these never create a dependency on a user
   function. *)
let primitives =
  [
    "car"; "cdr"; "cons"; "rplaca"; "rplacd"; "plist"; "setplist"; "unbox";
    "plus2"; "difference2"; "times2"; "quotient"; "remainder"; "land2";
    "lor2"; "lxor2"; "mkvect"; "makebox"; "getv"; "putv"; "vlen"; "reclaim";
    "error"; "gccount"; "eq"; "null"; "pairp"; "atom"; "symbolp"; "vectorp";
    "boxp"; "numberp"; "lessp"; "greaterp"; "leq"; "geq"; "eqn";
  ]

let is_primitive name = List.mem name primitives

(* --- Reachability over the call graph (quoted symbols that name
   functions count as uses, because of funcall). --- *)

let rec expr_uses acc (e : Ast.expr) =
  match e with
  | Ast.Const c -> const_uses acc c
  | Ast.Var _ -> acc
  | Ast.If (a, b, c) -> expr_uses (expr_uses (expr_uses acc a) b) c
  | Ast.Progn es -> List.fold_left expr_uses acc es
  | Ast.Setq (_, e) -> expr_uses acc e
  | Ast.While (c, body) -> List.fold_left expr_uses (expr_uses acc c) body
  | Ast.Let (binds, body) ->
      let acc = List.fold_left (fun a (_, e) -> expr_uses a e) acc binds in
      List.fold_left expr_uses acc body
  | Ast.Call (name, args) ->
      let acc = if is_primitive name then acc else name :: acc in
      List.fold_left expr_uses acc args
  | Ast.Funcall (f, args) -> List.fold_left expr_uses (expr_uses acc f) args

and const_uses acc (c : Ast.const) =
  match c with
  | Ast.Cint _ -> acc
  | Ast.Csym s -> s :: acc
  | Ast.Clist l -> List.fold_left const_uses acc l

let reachable (defs : (string * Ast.def) list) ~roots =
  let table = Hashtbl.create 64 in
  List.iter (fun (n, d) -> Hashtbl.replace table n d) defs;
  let seen = Hashtbl.create 64 in
  let rec visit n =
    if (not (Hashtbl.mem seen n)) && Hashtbl.mem table n then begin
      Hashtbl.replace seen n ();
      let d = Hashtbl.find table n in
      List.iter visit (expr_uses [] d.Ast.body)
    end
  in
  List.iter visit roots;
  seen

(* --- Compiled program. --- *)

type meta = {
  procedures : int;
  source_lines : int; (* non-blank lines of retained source *)
  object_words : int;
  checks_eliminated : int;
      (* checks deleted by the optimizer across all functions (0 with
         optimization off or under the monolithic backend) *)
}

(** The config-independent front half of the pipeline: the pruned
    definition list that every tag-scheme/support configuration compiles
    from, plus the static metadata that does not depend on the emitted
    code.  Parsing, macro-expansion and reachability pruning see neither
    the scheme nor the support flags, so a front end is computed once per
    source and shared across the whole configuration matrix (the
    structures are immutable, hence safe to read from worker domains). *)
type frontend = {
  fe_retained : (string * Ast.def) list;
  fe_procedures : int;
  fe_source_lines : int; (* user + retained prelude, non-blank lines *)
}

type t = {
  image : Image.t;
  scheme : Scheme.t;
  support : Support.t;
  symtab : Symtab.t;
  sizes : L.sizes;
  mem_bytes : int;
  meta : meta;
  (* Engine-attachment caches: the pre-decoded closure array and the
     fused block array compiled on the first [load] and installed
     directly on every later machine for this program (they capture only
     the image and the hardware configuration, both fixed per program,
     never the machine).  [[||]] until first use; guarded by length, as
     in [Predecode.attach]. *)
  mutable exec_cache : Machine.exec_fn array;
  mutable blocks_cache : Machine.block option array;
  mutable tstate_cache : Machine.tstate option;
      (* the traced engine's heat/edge profile and formed traces,
         likewise shared across machines so traces learned by one run
         serve the next *)
  mutable plan_key_cache : string option;
      (* memoised persistent plan-store key (digesting the code array
         is not free; the key is fixed per program) *)
}

let count_lines src =
  String.split_on_char '\n' src
  |> List.filter (fun l ->
         let l = String.trim l in
         String.length l > 0 && l.[0] <> ';')
  |> List.length

(* The prelude's parse+expand result is program- and config-independent:
   computed once at module initialisation (on the main domain, before
   any worker spawns) and shared by every front end. *)
let prelude_defs =
  List.map
    (fun (name, src) ->
      match Expand.program src with
      | [ d ] -> (name, d, src)
      | _ -> errorf "prelude %s: expected one definition" name)
    Prelude.functions

let analyze source : frontend =
  (* 1. Parse and expand the user program (the prelude is pre-expanded
     above). *)
  let user_defs = Expand.program source in
  let user_names = List.map (fun d -> d.Ast.name) user_defs in
  (* User definitions shadow prelude ones. *)
  let defs =
    List.filter_map
      (fun (name, d, _) ->
        if List.mem name user_names then None else Some (name, d))
      prelude_defs
    @ List.map (fun d -> (d.Ast.name, d)) user_defs
  in
  (match List.assoc_opt "main" defs with
  | Some d when d.Ast.params = [] -> ()
  | Some _ -> errorf "main must take no arguments"
  | None -> errorf "program has no (de main () ...)");
  (* Detect duplicate user definitions. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then errorf "duplicate definition of %s" n;
      Hashtbl.replace seen n ())
    user_names;
  (* 2. Prune to the reachable set. *)
  let live = reachable defs ~roots:[ "main" ] in
  let retained = List.filter (fun (n, _) -> Hashtbl.mem live n) defs in
  (* Static metadata for Table 3 that only depends on the retained
     source, never on the emitted code. *)
  let retained_prelude_lines =
    List.fold_left
      (fun n (name, _, src) ->
        if Hashtbl.mem live name && not (List.mem name user_names) then
          n + count_lines src
        else n)
      0 prelude_defs
  in
  {
    fe_retained = retained;
    fe_procedures = List.length retained;
    fe_source_lines = count_lines source + retained_prelude_lines;
  }

type backend = [ `Monolithic | `Incremental ]
type opt = Tir.opt

(* The monolithic backend: one buffer, whole-program scheduling inside
   [Image.assemble].  Kept verbatim as the incremental backend's
   differential oracle (see [test/suite_link.ml]). *)
let backend_monolithic ~sched ~scheme ~support ~symtab ~funcs retained =
  let buf = Buf.create () in
  let ctx = { Emit.b = buf; scheme; support } in
  Bphase.time Bphase.Codegen (fun () ->
      Rt.emit_startup ctx ~main_label:(L.fn_label "main");
      List.iter (fun (_, d) -> Codegen.compile_def ctx symtab funcs d) retained;
      Rt.emit_routines ctx);
  (* The symbol table must be the first static datum. *)
  let final = Buf.create () in
  Symtab.emit_data symtab scheme final;
  Buf.append final buf;
  Bphase.time Bphase.Assemble (fun () -> Image.assemble ~sched final)

(* The incremental backend: one relocatable object per unit — startup
   stub, each Lisp function, the runtime routine group — each emitted
   into a private buffer and delay-slot-scheduled independently, then
   linked.  Per-unit scheduling is exact, not approximate: every unit
   starts with a label, and labels are scheduler barriers (both for
   hoisting and for fall-through pulls), so concatenating
   unit-scheduled streams yields the very stream whole-program
   scheduling would produce; [Link.link] then resolves cross-unit
   references.  Units come from the content-addressed {!Objcache}
   whenever an identical unit (same content, symbol-table environment,
   scheme, projected support, scheduler config, optimization level) was
   compiled before — in this process or, with the persistent store
   enabled, by an earlier one.  Cache hits skip compilation and
   scheduling entirely; only the cheap link pass remains.

   Function units run the staged pipeline — {!Lower} (AST -> TIR),
   optionally {!Checkelim}, then {!Select} — whose opt-off output is
   byte-identical to {!Codegen.compile_def} (the monolithic oracle
   above; [test/suite_tir.ml] proves it differentially).  The startup
   and runtime units contain no user code, so [opt] is projected to
   [`None] in their keys and they share objects across optimization
   levels.  Returns the image plus the total number of checks the
   optimizer eliminated (preserved across cache hits via the objects'
   [o_elided]). *)
let backend_incremental ~sched ~scheme ~support ~symtab ~funcs ~opt retained =
  let build_unit emit =
    let before = Symtab.count symtab in
    let buf = Buf.create () in
    let ctx = { Emit.b = buf; scheme; support } in
    let elided = emit ctx in
    let frag =
      Bphase.time Bphase.Schedule (fun () -> Link.fragment_of_buf ~sched buf)
    in
    {
      Objcache.o_frag = frag;
      o_interned = Symtab.names_from symtab before;
      o_elided = elided;
    }
  in
  (* The environment fingerprint is taken at the unit's start, and the
     unit's intern effect is replayed after every lookup (idempotent
     when the build just performed it), so the symbol table evolves
     identically on hits and misses and later units key against the
     same environment either way. *)
  let cached ~kind ~fingerprint ~support_token ~opt emit =
    let env = Objcache.env_fingerprint symtab funcs in
    let k =
      Objcache.key ~kind ~fingerprint ~env ~scheme ~support_token ~sched ~opt
    in
    let o = Objcache.find_or_build ~scheme ~key:k ~build:(fun () -> build_unit emit) in
    List.iter (fun s -> ignore (Symtab.intern symtab s)) o.Objcache.o_interned;
    (k, o)
  in
  let full_token = Objcache.support_token support in
  let startup =
    cached ~kind:"startup" ~fingerprint:(L.fn_label "main")
      ~support_token:full_token ~opt:`None (fun ctx ->
        Bphase.time Bphase.Codegen (fun () ->
            Rt.emit_startup ctx ~main_label:(L.fn_label "main"));
        0)
  in
  let fn_frags =
    List.map
      (fun (_, d) ->
        cached ~kind:"fn" ~fingerprint:(Objcache.def_fingerprint d)
          ~support_token:
            (Objcache.support_token ~uses_arith:(Objcache.def_uses_arith d)
               support)
          ~opt
          (fun ctx ->
            let tf =
              Bphase.time Bphase.Lower (fun () -> Lower.def symtab funcs d)
            in
            let tf, elided =
              match opt with
              | `None -> (tf, 0)
              | `Checks -> Bphase.time Bphase.Opt (fun () -> Checkelim.run tf)
            in
            Bphase.time Bphase.Select (fun () -> Select.fn ctx symtab tf);
            elided))
      retained
  in
  let rt =
    cached ~kind:"rt" ~fingerprint:"routines" ~support_token:full_token
      ~opt:`None (fun ctx ->
        Bphase.time Bphase.Codegen (fun () -> Rt.emit_routines ctx);
        0)
  in
  let units = (startup :: fn_frags) @ [ rt ] in
  let keys = List.map fst units in
  let frags = List.map (fun (_, o) -> o.Objcache.o_frag) units in
  let elided =
    List.fold_left (fun n (_, o) -> n + o.Objcache.o_elided) 0 units
  in
  (* The whole linked image is memoised under the ordered unit-key
     list: a configuration seen before (the steady state of a matrix
     run) skips even the link.  On a miss, the symbol-table block —
     pure data derived from the final table, trivially re-emitted, so
     never cached itself — leads the layout (code starts with the
     startup unit, since the block has no code): the table stays the
     first static datum, at [L.symtab_base]. *)
  let image =
    Objcache.find_image ~keys ~build:(fun () ->
        let symtab_frag =
          let b = Buf.create () in
          Symtab.emit_data symtab scheme b;
          Link.fragment_of_buf ~sched b
        in
        Bphase.time Bphase.Link (fun () -> Link.link (symtab_frag :: frags)))
  in
  (image, elided)

let compile_frontend ?(backend = `Incremental) ?(opt = `None)
    ?(sched = Sched.default) ?(sizes = L.default_sizes)
    ?(mem_bytes = 1 lsl 22) ~scheme ~support (fe : frontend) : t =
  let retained = fe.fe_retained in
  (* 3. Compile. *)
  let symtab = Symtab.with_builtins () in
  let funcs = Hashtbl.create 64 in
  List.iter
    (fun (n, d) ->
      Hashtbl.replace funcs n (List.length d.Ast.params);
      Symtab.mark_function symtab n ~arity:(List.length d.Ast.params);
      ignore (Symtab.intern symtab n))
    retained;
  let image, checks_eliminated =
    match backend with
    | `Monolithic ->
        (* The differential oracle ignores [opt]: it always emits the
           unoptimized, fully checked code. *)
        (backend_monolithic ~sched ~scheme ~support ~symtab ~funcs retained, 0)
    | `Incremental ->
        backend_incremental ~sched ~scheme ~support ~symtab ~funcs ~opt
          retained
  in
  assert (Image.data_address image L.l_symtab = L.symtab_base);
  (* 5. Metadata for Table 3. *)
  let meta =
    {
      procedures = fe.fe_procedures;
      source_lines = fe.fe_source_lines;
      object_words = Image.size_in_words image;
      checks_eliminated;
    }
  in
  {
    image;
    scheme;
    support;
    symtab;
    sizes;
    mem_bytes;
    meta;
    exec_cache = [||];
    blocks_cache = [||];
    tstate_cache = None;
    plan_key_cache = None;
  }

let compile ?backend ?opt ?sched ?sizes ?mem_bytes ~scheme ~support source : t =
  compile_frontend ?backend ?opt ?sched ?sizes ?mem_bytes ~scheme ~support
    (analyze source)

(* --- Loading and running. --- *)

type hval =
  | Hint of int
  | Hsym of string
  | Hpair of hval * hval
  | Hvec of hval array
  | Hbox of int

let rec pp_hval ppf = function
  | Hint n -> Fmt.int ppf n
  | Hsym s -> Fmt.string ppf s
  | Hvec a -> Fmt.pf ppf "#(%a)" Fmt.(array ~sep:(any " ") pp_hval) a
  | Hbox n -> Fmt.pf ppf "#box(%d)" n
  | Hpair _ as p ->
      (* Print proper lists nicely. *)
      let rec elements acc = function
        | Hpair (a, rest) -> elements (a :: acc) rest
        | Hsym "nil" -> (List.rev acc, None)
        | other -> (List.rev acc, Some other)
      in
      let items, tail = elements [] p in
      (match tail with
      | None -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " ") pp_hval) items
      | Some tl ->
          Fmt.pf ppf "(%a . %a)"
            Fmt.(list ~sep:(any " ") pp_hval)
            items pp_hval tl)

let hval_to_string v = Fmt.str "%a" pp_hval v

(* Build an hval from a machine word (bounded depth to survive cycles). *)
let decode t machine w : hval =
  let scheme = t.scheme in
  let peek a = Machine.peek machine a in
  let rec go depth w =
    if depth > 100000 then Hsym "..."
    else
      match Scheme.classify scheme ~peek w with
      | Scheme.Int -> Hint (Scheme.decode_int scheme w)
      | Scheme.Symbol ->
          let idx = (Scheme.ptr_addr scheme w - L.symtab_base) / L.sym_cell_size in
          Hsym (Symtab.name_of t.symtab idx)
      | Scheme.Pair ->
          let a = Scheme.ptr_addr scheme w in
          Hpair (go (depth + 1) (peek a), go (depth + 1) (peek (a + 4)))
      | Scheme.Vector ->
          let a = Scheme.ptr_addr scheme w in
          let len = Scheme.decode_int scheme (peek (a + L.obj_off_length)) in
          Hvec
            (Array.init len (fun i ->
                 go (depth + 1) (peek (a + L.obj_off_elems + (4 * i)))))
      | Scheme.Boxnum ->
          let a = Scheme.ptr_addr scheme w in
          Hbox (Scheme.decode_int scheme (peek (a + L.obj_off_length)))
  in
  go 0 w

type result = {
  value : hval option; (* Some v on normal termination *)
  abort : string option;
  stats : Stats.t;
  gc_collections : int;
  gc_bytes_copied : int;
  map : L.map;
}

let abort_message code =
  let user = code - Machine.err_user_base in
  if user = L.trap_type_error then "type error"
  else if user = L.trap_bounds_error then "bounds error"
  else if user = L.trap_undefined_function then "undefined function"
  else if user = L.trap_heap_overflow then "heap overflow"
  else if user = L.trap_arith_error then "arithmetic error (overflow or bad type)"
  else if user = 6 then "user error"
  else if user = L.trap_arity_error then "arity"
  (* Hardware-detected failures abort with the machine's own codes: a
     tagged access whose parallel check fails is the same observable
     error as the software stub's [Trap]. *)
  else if code = Machine.err_type then "type error"
  else if code = Machine.err_bounds then "bounds error"
  else if code = Machine.err_div0 then "division by zero"
  else Printf.sprintf "abort %d" code

(* The plan-store key: the image fingerprint already separates every
   code-affecting axis (program, scheme, support, sched, opt); the
   scheme/memory token additionally pins the hardware the traces were
   grown for.  Memoised — the fingerprint digests the code array. *)
let plan_key t =
  match t.plan_key_cache with
  | Some k -> k
  | None ->
      let token = Printf.sprintf "%s/%d" t.scheme.Scheme.name t.mem_bytes in
      let k = Plan.key ~fingerprint:(Plan.image_fingerprint t.image) ~token in
      t.plan_key_cache <- Some k;
      k

let drop_tstate t = t.tstate_cache <- None

let load ?fuel ?(engine = `Traced) t =
  let hw = Scheme.machine_hw ~mem_bytes:t.mem_bytes t.scheme in
  let m = Machine.create ?fuel ~engine ~hw t.image in
  let code_len = Array.length t.image.Image.code in
  (match engine with
  | `Reference -> ()
  | `Predecoded ->
      if Array.length t.exec_cache = code_len then
        m.Machine.exec <- t.exec_cache
      else begin
        Predecode.attach m;
        t.exec_cache <- m.Machine.exec
      end
  | `Fused ->
      if Array.length t.exec_cache = code_len then
        m.Machine.exec <- t.exec_cache;
      if Array.length t.blocks_cache = code_len then
        m.Machine.blocks <- t.blocks_cache
      else begin
        Fuse.attach m;
        t.exec_cache <- m.Machine.exec;
        t.blocks_cache <- m.Machine.blocks
      end
  | `Traced ->
      if Array.length t.exec_cache = code_len then
        m.Machine.exec <- t.exec_cache;
      if Array.length t.blocks_cache = code_len then
        m.Machine.blocks <- t.blocks_cache;
      let fresh =
        match t.tstate_cache with
        | Some ts when Array.length ts.Machine.ts_traces = code_len ->
            m.Machine.tstate <- Some ts;
            false
        | _ -> true
      in
      Trace.attach m;
      (* Ahead-of-time warm start: a freshly attached tstate picks up
         every persisted superblock that still validates, so the run
         needs no tier-1 profiling on the planned heads.  A shared
         (non-fresh) tstate already carries its traces. *)
      if fresh && Plan.enabled () then (
        match Plan.load (plan_key t) with
        | Some plan -> ignore (Trace.precompile m plan)
        | None -> ());
      t.exec_cache <- m.Machine.exec;
      t.blocks_cache <- m.Machine.blocks;
      t.tstate_cache <- m.Machine.tstate);
  let map =
    L.compute_map ~data_end:t.image.Image.data_end ~sizes:t.sizes
      ~mem_bytes:t.mem_bytes
  in
  let poke lbl v = Machine.poke m (Image.data_address t.image lbl) v in
  poke L.l_stack_top map.L.stack_top;
  poke L.l_heap_a map.L.heap_a;
  poke L.l_heap_b map.L.heap_b;
  poke L.l_semi_bytes map.L.semi_bytes;
  poke "lay$hp_init" map.L.heap_a;
  poke "lay$hl_init" (map.L.heap_a + map.L.semi_bytes - L.heap_slack);
  poke L.l_gc_cur map.L.heap_a;
  if t.support.Support.hw_generic_arith then
    Machine.set_gen_handlers m
      ~add:(Image.code_address t.image L.l_gadd_trap)
      ~sub:(Image.code_address t.image L.l_gsub_trap);
  (m, map)

let run ?fuel ?engine t : result =
  let m, map = load ?fuel ?engine t in
  let outcome = Machine.run m in
  (* Flush newly formed trace plans: when this run's online formation
     added anything, rewrite the full plan (pre-loaded + formed) so the
     next cold process warm-starts with everything known so far. *)
  (match m.Machine.tstate with
  | Some ts when ts.Machine.ts_dirty && Plan.enabled () ->
      Plan.store (plan_key t) (List.rev ts.Machine.ts_plans);
      ts.Machine.ts_dirty <- false
  | _ -> ());
  let peek_lbl lbl = Machine.peek m (Image.data_address t.image lbl) in
  let value, abort =
    match outcome with
    | Machine.Halted w -> (Some (decode t m w), None)
    | Machine.Aborted code -> (None, Some (abort_message code))
  in
  {
    value;
    abort;
    stats = Machine.stats m;
    gc_collections = peek_lbl L.l_gc_count;
    gc_bytes_copied = peek_lbl L.l_gc_copied;
    map;
  }

(** Compile and run in one step. *)
let run_source ?opt ?sched ?sizes ?mem_bytes ?fuel ?engine ~scheme ~support
    source =
  let t = compile ?opt ?sched ?sizes ?mem_bytes ~scheme ~support source in
  (t, run ?fuel ?engine t)
