(** Compile-time symbol table.

    Symbols are interned to dense indices; the table is emitted as the
    first static datum, so it sits at the fixed address
    {!Tagsim_runtime.Layout.symtab_base} and symbol items are compile-time
    constants.  Each cell holds a value (initially nil), a function-cell
    (the code address, when the symbol names a compiled function), a
    property list (initially nil) and the symbol's index. *)

module Buf = Tagsim_asm.Buf
module Scheme = Tagsim_tags.Scheme
module L = Tagsim_runtime.Layout

type t = {
  index : (string, int) Hashtbl.t;
  mutable names : string list; (* reversed *)
  mutable count : int;
  functions : (string, int) Hashtbl.t; (* symbols with a function cell, to arity *)
}

let create () =
  let t =
    {
      index = Hashtbl.create 64;
      names = [];
      count = 0;
      functions = Hashtbl.create 16;
    }
  in
  t

let intern t name =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None ->
      let i = t.count in
      Hashtbl.replace t.index name i;
      t.names <- name :: t.names;
      t.count <- t.count + 1;
      i

(** Create a table with nil and t pre-interned at their fixed indices. *)
let with_builtins () =
  let t = create () in
  assert (intern t "nil" = L.sym_nil);
  assert (intern t "t" = L.sym_t);
  t

let mark_function t name ~arity = Hashtbl.replace t.functions name arity
let is_function t name = Hashtbl.mem t.functions name
let arity_of t name = Hashtbl.find_opt t.functions name
let count t = t.count
let names t = List.rev t.names

(** Names interned at index [from] or later, in intern order: the
    intern effect of a compilation unit, recorded into its relocatable
    object and replayed on a cache hit so that later units see an
    identical symbol-table environment. *)
let names_from t from =
  let rec take n l acc =
    if n = 0 then acc
    else match l with [] -> acc | x :: rest -> take (n - 1) rest (x :: acc)
  in
  take (t.count - from) t.names []

let name_of t idx =
  match List.nth_opt (names t) idx with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "no symbol with index %d" idx)

let find_opt t name = Hashtbl.find_opt t.index name

(** Emit the table.  Must be the first data emitted into [b], so that it
    lands at {!L.symtab_base}. *)
let emit_data t (scheme : Scheme.t) b =
  let nil_item = Scheme.encode_ptr scheme Scheme.Symbol (L.sym_addr L.sym_nil) in
  Buf.data b (Buf.Align 8);
  List.iteri
    (fun idx name ->
      let label = if idx = 0 then Some L.l_symtab else None in
      Buf.data ?label b (Buf.Word nil_item) (* value cell *);
      (match Hashtbl.find_opt t.functions name with
      | Some _ -> Buf.data b (Buf.Addr (L.fn_label name))
      | None -> Buf.data b (Buf.Word 0));
      Buf.data b (Buf.Word nil_item) (* property list *);
      (* Name-id word; for function symbols the arity rides in the high
         bits, where the [funcall] arity check reads it. *)
      let arity =
        match Hashtbl.find_opt t.functions name with Some a -> a | None -> 0
      in
      Buf.data b (Buf.Word ((arity lsl L.sym_arity_shift) lor idx)))
    (names t);
  Buf.word ~label:L.l_symtab_count b (count t)
