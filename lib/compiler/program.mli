(** Whole-program compilation, loading and execution: a Lisp source
    defining [(de main () ...)] is compiled with the prelude (unreachable
    functions pruned), linked with the runtime, assembled, loaded into a
    simulator instance and run. *)

module Image := Tagsim_asm.Image
module Sched := Tagsim_asm.Sched
module Machine := Tagsim_sim.Machine
module Stats := Tagsim_sim.Stats
module Scheme := Tagsim_tags.Scheme
module Support := Tagsim_tags.Support
module L := Tagsim_runtime.Layout

exception Error of string

(** Static metadata, for Table 3 (and the elision artifact). *)
type meta = {
  procedures : int; (* retained definitions, prelude included *)
  source_lines : int; (* non-blank lines of retained source *)
  object_words : int;
  checks_eliminated : int;
      (* checks the optimizer deleted across all units; 0 under
         [`None] and for the monolithic oracle *)
}

type t = {
  image : Image.t;
  scheme : Scheme.t;
  support : Support.t;
  symtab : Symtab.t;
  sizes : L.sizes;
  mem_bytes : int;
  meta : meta;
  (* Engine-attachment caches, compiled on first [load] and shared by
     every later machine for this program (the closures capture only the
     image and hardware configuration, never a machine). *)
  mutable exec_cache : Machine.exec_fn array;
  mutable blocks_cache : Machine.block option array;
  mutable tstate_cache : Machine.tstate option;
  mutable plan_key_cache : string option;
      (* memoised persistent plan-store key (digesting the code array
         is not free; the key is fixed per program) *)
}

(** {1 Staged pipeline}

    Parsing, macro-expansion and reachability pruning are independent of
    the tag scheme, the support flags and the scheduler configuration, so
    when one source is compiled under a whole configuration matrix the
    front half runs once ({!analyze}) and only the tag-dependent back
    half ({!compile_frontend}) re-runs per configuration.  A [frontend]
    is immutable and safe to share across worker domains. *)

type frontend = {
  fe_retained : (string * Tagsim_lisp.Ast.def) list;
      (* pruned, prelude included, definition order *)
  fe_procedures : int;
  fe_source_lines : int; (* user + retained prelude, non-blank lines *)
}

(** Parse, expand and prune a program (with the pre-expanded prelude);
    raises {!Error} on malformed sources. *)
val analyze : string -> frontend

(** Backend selection.  [`Incremental] (the default) compiles one
    relocatable object per unit — startup stub, each function, the
    runtime group — schedules each independently, consults the
    content-addressed {!Objcache}, and links with
    {!Tagsim_asm.Link.link}; [`Monolithic] is the original
    single-buffer whole-program path, kept as the differential oracle.
    Both produce byte-identical images ({!Tagsim_asm.Image.equal}). *)
type backend = [ `Monolithic | `Incremental ]

(** Optimization level for the incremental backend's TIR pipeline:
    [`None] (default) selects straight from the lowered IR and is
    byte-identical to the monolithic oracle; [`Checks] runs the
    tag-knowledge check-elimination pass ({!Checkelim}) first.  The
    monolithic oracle ignores the knob (always unoptimized). *)
type opt = Tir.opt

(** The config-dependent back half: lowering, optimization, selection,
    scheduling, linking (or, for the monolithic backend, whole-program
    codegen and assembly). *)
val compile_frontend :
  ?backend:backend ->
  ?opt:opt ->
  ?sched:Sched.config ->
  ?sizes:L.sizes ->
  ?mem_bytes:int ->
  scheme:Scheme.t ->
  support:Support.t ->
  frontend ->
  t

(** [compile_frontend] of [analyze]: the one-shot pipeline. *)
val compile :
  ?backend:backend ->
  ?opt:opt ->
  ?sched:Sched.config ->
  ?sizes:L.sizes ->
  ?mem_bytes:int ->
  scheme:Scheme.t ->
  support:Support.t ->
  string ->
  t

(** {1 Results} *)

(** Host-side view of a Lisp value. *)
type hval =
  | Hint of int
  | Hsym of string
  | Hpair of hval * hval
  | Hvec of hval array
  | Hbox of int

val pp_hval : Format.formatter -> hval -> unit
val hval_to_string : hval -> string

(** Decode a machine word into a host value (bounded depth). *)
val decode : t -> Machine.t -> int -> hval

type result = {
  value : hval option; (* Some v on normal termination *)
  abort : string option;
  stats : Stats.t;
  gc_collections : int;
  gc_bytes_copied : int;
  map : L.map;
}

val abort_message : int -> string

(** The persistent plan-store key of this program's image
    ({!Tagsim_sim.Plan.key} over the image fingerprint and a
    scheme/memory token); memoised per program. *)
val plan_key : t -> string

(** Drop the shared traced-engine state (heat, edge profile, formed
    traces), so the next [load] attaches a cold tstate — and, when the
    plan store is enabled, warm-starts it from the persisted plan.
    Benchmarks and the warm-start tests use this to separate
    cold-profile from warm-plan runs; the predecode/fuse caches are
    kept (they carry no profile). *)
val drop_tstate : t -> unit

(** Create a machine, poke the memory-map words and register the trap
    handlers; ready to run from address 0.  [engine] selects the
    simulator engine (default [`Traced], the fast path; all engines
    produce bit-identical statistics).  Under [`Traced], a freshly
    attached tstate is warm-started from the persistent plan store when
    {!Tagsim_sim.Plan.enabled}: every stored superblock that still
    validates is pre-compiled, so the run starts with zero tier-1
    profiling on the planned heads. *)
val load : ?fuel:int -> ?engine:Machine.engine -> t -> Machine.t * L.map

(** [run] is [load] + [Machine.run] + result decoding.  At run end,
    newly formed trace plans are flushed back to the plan store (the
    full plan is rewritten; a fully warm run flushes nothing). *)
val run : ?fuel:int -> ?engine:Machine.engine -> t -> result

(** Compile and run in one step. *)
val run_source :
  ?opt:opt ->
  ?sched:Sched.config ->
  ?sizes:L.sizes ->
  ?mem_bytes:int ->
  ?fuel:int ->
  ?engine:Machine.engine ->
  scheme:Scheme.t ->
  support:Support.t ->
  string ->
  t * result
