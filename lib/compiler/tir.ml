(* Typed mid-level tag-operation IR.

   Every tag insertion, removal, extraction, check, generic-arith
   dispatch and allocation in the compiled program appears here as an
   explicit typed operation carrying enough classification to
   reconstruct its [Annot] at selection time.  The IR is
   scheme-agnostic: [Lower] makes all shape decisions (register
   assignment, frame layout, control-flow labels) while the selector
   ([Select]) owns every scheme x support instruction sequence via
   [Runtime.Emit].

   Values are virtual only in the sense that register-cached locals
   carry their spill home alongside the register number; the register
   assignment itself is fixed by lowering so that, with optimization
   off, selection reproduces the monolithic code generator's output
   byte for byte. *)

module Insn = Tagsim_mipsx.Insn
module Annot = Tagsim_mipsx.Annot
module Scheme = Tagsim_tags.Scheme
module Ast = Tagsim_lisp.Ast

type opt = [ `None | `Checks ]

let opt_token = function `None -> "none" | `Checks -> "checks"

(* Where a variable lives.  [Lreg (r, home)] is a register-cached local
   with its frame spill slot; [Lslot off] is a frame slot; [Lglobal s]
   is a symbol's value cell. *)
type loc = Lreg of int * int | Lslot of int | Lglobal of string

type arith_kind = A_add | A_sub | A_mul | A_div | A_rem

type op =
  | Label of string
  | Jump of string
  | Branch of {
      cond : Insn.cond;
      ra : int;
      rb : int;
      hint : Insn.hint;
      target : string;
    }
  (* Type-dispatch branch: semantics-bearing (type predicates), never
     elided by optimization. *)
  | Tybranch of {
      v : int;
      ty : Scheme.ty;
      sense : [ `Is | `Is_not ];
      target : string;
    }
  (* Fixnum-dispatch branch (numberp): semantics-bearing, never
     elided. *)
  | Intbranch of { v : int; sense : [ `Is | `Is_not ]; target : string }
  | Constop of { dst : int; c : Ast.const }
  | Consttrue of { dst : int }
  | Loadvar of { dst : int; src : loc }
  | Storevar of { dst : loc; src : int }
  (* Let-binding initialisation: like Storevar but the destination is
     being created, not mutated. *)
  | Bind of { dst : loc; src : int }
  (* A checking-gated type check that traps to the error handler when
     [v] is not of type [ty].  [unless_parallel] marks checks that the
     monolithic generator suppresses when the support's
     parallel-checking hardware covers [ty] (field and vector access);
     funcall's symbol check is emitted regardless.  These are the ops
     the check-elimination pass may delete. *)
  | Checkty of {
      v : int;
      ty : Scheme.ty;
      kind : Annot.source;
      unless_parallel : bool;
    }
  (* A checking-gated fixnum check on [v]. *)
  | Checkint of { v : int; kind : Annot.source }
  (* Tag-stripped field load: car/cdr/plist/unbox/vlen.  [result_int]
     marks loads whose result is a raw word (lengths), not an object. *)
  | Fieldload of { r : int; ty : Scheme.ty; off : int; result_int : bool }
  (* Tag-stripped field store: rplaca/rplacd/setplist.  [result_obj]
     leaves the object (not the stored value) in [robj]. *)
  | Fieldstore of {
      robj : int;
      rval : int;
      ty : Scheme.ty;
      off : int;
      result_obj : bool;
    }
  (* Inline pair allocation (cons) with heap-limit branch to the GC
     stub; [rd] holds the car on entry and the tagged pair on exit. *)
  | Consop of { rd : int; rcdr : int; scratch : int }
  (* Generic arithmetic.  [a_int]/[b_int] record operands statically
     known to be fixnums (literals at lowering time; refined by the
     check-elimination pass), which elide the corresponding dynamic
     tests. *)
  | Arith of {
      kind : arith_kind;
      ra : int;
      rb : int;
      a_int : bool;
      b_int : bool;
    }
  | Logic of { aluop : Insn.alu; ra : int; rb : int }
  | Mkvect of { r : int }
  | Makebox of { r : int }
  (* Vector read/write with bounds check; [relt] is meaningful only
     when [store]. *)
  | Vecref of {
      rv : int;
      ri : int;
      relt : int;
      scratch : int;
      store : bool;
    }
  | Gccount of { r : int }
  | Reclaim of { r : int }
  | Traperror
  (* Direct call to a user function; [saves] are the register-cached
     locals (reg, spill home) live across the call. *)
  | Calluser of {
      name : string;
      base : int;
      nargs : int;
      saves : (int * int) list;
    }
  (* Indirect call through a symbol's function cell at [base]. *)
  | Funcall of { base : int; nargs : int; saves : (int * int) list }

type fn = {
  f_name : string;
  f_frame_bytes : int;
  f_params : loc list;
  f_ops : op list;
}

(* Frame layout, shared by lowering (slot assignment) and selection
   (prologue/epilogue and call spills).  Must match the monolithic
   generator exactly. *)

let off_ra = 0
let off_temp_spill i = 4 + (4 * i)
let off_locals n_temp_pool = 4 + (4 * n_temp_pool)
