(** Two-level content-addressed object cache for the incremental
    backend.

    A compilation unit (one Lisp function, the runtime routine group,
    the startup stub) compiles to a relocatable object: its scheduled
    {!Tagsim_asm.Link.fragment} plus the names it interned into the
    symbol table.  Objects are memoised in-process (always on) and,
    when {!enabled}, persisted as text files under {!dir} — keyed by a
    digest of the unit's content, its symbol-table environment, the tag
    scheme, the (projected) support configuration, the scheduler
    configuration and the format {!version}.  Damaged or stale entries
    are silent misses; see the implementation header for the full key
    and robustness story. *)

(** Format/semantics stamp baked into every key and entry header.  Bump
    on any change to emitted code (code generation, runtime emission,
    scheduling, ISA) or to the object format itself; code-changing
    bumps pair with a [Cache.version] bump, format-only bumps do not. *)
val version : string

(** {1 Store configuration (L2; the in-process memo is always on)} *)

val enabled : unit -> bool
val set_enabled : bool -> unit
val dir : unit -> string
val set_dir : string -> unit

(** {1 Counters}  ([hits], [misses], [writes] — a hit is an object
    served from either level; a write is a persisted store.) *)

val counters : unit -> int * int * int
val reset_counters : unit -> unit

(** {1 Objects} *)

type obj = {
  o_frag : Tagsim_asm.Link.fragment;
  o_interned : string list;
      (** Names the unit's compilation interned, in intern order.
          Replay (re-intern) after every {!find_or_build} so later
          units see the same symbol-table whether the object was built
          or cached; interning is idempotent, so replaying after a
          fresh build is a no-op. *)
  o_elided : int;
      (** How many checks the check-elimination pass deleted while
          building this unit (0 unless the unit was compiled with
          [`Checks]); preserved across cache hits so artifact reporting
          survives warm compiles. *)
}

(** {1 Keys} *)

(** Injective serialisation of a definition's post-expansion AST (name,
    parameters, body). *)
val def_fingerprint : Tagsim_lisp.Ast.def -> string

(** Does the definition call an arithmetic primitive?  Only those
    routes reach [Codegen.emit_arith], the sole reader of the
    generic-arithmetic support flags. *)
val def_uses_arith : Tagsim_lisp.Ast.def -> bool

(** Token for the support axes the unit's code can depend on.  With
    [~uses_arith:false] the generic-arithmetic flags are normalised
    away, so support rows differing only there share the object.
    Default [true] (the conservative full token — used for the startup
    and runtime units). *)
val support_token : ?uses_arith:bool -> Tagsim_tags.Support.t -> string

(** Digest of the symbol-table environment a unit compiles against:
    interned names in index order with their function marks, plus the
    program's function-arity table. *)
val env_fingerprint : Symtab.t -> (string, int) Hashtbl.t -> string

(** Cache key (hex digest).  [kind] distinguishes unit flavours
    (["fn"], ["rt"], ["startup"]); [fingerprint] is the unit's content
    fingerprint; [env] the {!env_fingerprint}; [support_token] the
    projected {!support_token}; [opt] the optimization level the unit
    was compiled under (projected to [`None] for the startup and
    runtime units, which the optimizer never sees). *)
val key :
  kind:string ->
  fingerprint:string ->
  env:string ->
  scheme:Tagsim_tags.Scheme.t ->
  support_token:string ->
  sched:Tagsim_asm.Sched.config ->
  opt:Tir.opt ->
  string

(** {1 Lookup} *)

(** Look the key up (memo, then disk when enabled); on a miss run
    [build], memoise and persist its result.  [scheme] rebuilds the
    encode closures of [Tagged] data loaded from disk. *)
val find_or_build : scheme:Tagsim_tags.Scheme.t -> key:string -> build:(unit -> obj) -> obj

(** Memoise a linked image under the ordered unit-key list of its
    fragments (in-process only): a linked image is a pure function of
    its unit keys, so a repeated configuration skips even the link. *)
val find_image :
  keys:string list -> build:(unit -> Tagsim_asm.Image.t) -> Tagsim_asm.Image.t

(** Drop the in-process memos — per-unit objects and linked images
    (cold-compile benchmarking/tests). *)
val clear_memo : unit -> unit

(** Delete all persisted objects (and stray temp files) under {!dir};
    only files this module created are touched. *)
val wipe : unit -> unit
