(* The persistent trace-plan store: ahead-of-time superblock warm start
   for the traced engine.  Plans are pure data (ISSUE: the compiled
   trace is re-derived from the image on load), so the properties under
   test are: byte-identical serialization across fresh processes of the
   same image, bit-identical statistics between online formation and the
   AOT warm start over the whole program x scheme matrix, convergence to
   zero online formations once the store reaches its fixed point, silent
   fallback to online formation on damaged or stale entries, the bypass
   switch, and key sensitivity. *)

module B = Tagsim.Benchmarks
module Program = Tagsim.Program
module Plan = Tagsim.Plan
module Machine = Tagsim.Machine
module Stats = Tagsim.Stats
module Scheme = Tagsim.Scheme
module Support = Tagsim.Support

let test_dir = Filename.temp_dir "tagsim_plan_test" ""
let rmdir_if_empty d = try Sys.rmdir d with Sys_error _ -> ()
let chk = Support.with_checking Support.software

(* Point the store at a private directory, start empty, and leave the
   library in its default (disabled) state afterwards; the directory
   itself is removed. *)
let with_plans f =
  Plan.set_dir test_dir;
  Plan.set_enabled true;
  Plan.wipe ();
  Plan.reset_counters ();
  Fun.protect
    ~finally:(fun () ->
      Plan.wipe ();
      rmdir_if_empty test_dir;
      Plan.set_enabled false;
      Plan.set_dir (Filename.concat "_tagsim_cache" "plan"))
    f

let compile ?(scheme = Scheme.high5) ?(support = chk) name =
  let entry = B.find name in
  Program.compile ~scheme ~support ~sizes:entry.B.sizes entry.B.source

let run p =
  let r = Program.run p in
  Alcotest.(check bool) "no abort" true (r.Program.abort = None);
  r.Program.stats

let formed () = (Machine.trace_counters ()).Machine.tt_formed

(* Run [p] until a further run forms no new traces: newly installed
   traces shift tier-1 heat, so the store's fixed point can take a few
   flush generations to reach. *)
let rec converge ?(rounds = 5) p =
  Program.drop_tstate p;
  let before = formed () in
  ignore (run p);
  if formed () > before && rounds > 0 then converge ~rounds:(rounds - 1) p

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

let overwrite path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

(* --- determinism: two fresh compiles of the same image flush the same
   bytes --- *)

let test_plan_determinism () =
  with_plans (fun () ->
      let flush_once () =
        let p = compile "inter" in
        ignore (run p);
        let path = Plan.entry_path (Program.plan_key p) in
        Alcotest.(check bool) "plan flushed" true (Sys.file_exists path);
        read_file path
      in
      let first = flush_once () in
      Plan.wipe ();
      let second = flush_once () in
      Alcotest.(check bool) "byte-identical plans" true (first = second))

(* --- serialization round trip --- *)

let test_serialize_round_trip () =
  with_plans (fun () ->
      let p = compile "inter" in
      ignore (run p);
      match Plan.load (Program.plan_key p) with
      | None -> Alcotest.fail "no plan stored"
      | Some plan ->
          let text = Plan.serialize plan in
          Alcotest.(check bool) "parse inverts serialize" true
            (Plan.serialize (Plan.parse text) = text))

(* --- the AOT warm start reproduces online statistics bit-for-bit,
   over every program under every scheme --- *)

let test_aot_matches_online () =
  with_plans (fun () ->
      List.iter
        (fun (entry : B.entry) ->
          List.iter
            (fun (scheme : Scheme.t) ->
              let what =
                Printf.sprintf "%s/%s" entry.B.name scheme.Scheme.name
              in
              let p = compile ~scheme entry.B.name in
              let online = run p in
              Program.drop_tstate p;
              let warm = run p in
              Alcotest.(check bool) (what ^ ": stats equal") true
                (Stats.equal online warm))
            Scheme.all)
        (B.all ()))

(* --- at the store's fixed point a warm run forms no traces and
   flushes nothing --- *)

let test_warm_zero_formations () =
  with_plans (fun () ->
      let p = compile "boyer" in
      converge p;
      let _, _, writes0 = Plan.counters () in
      Program.drop_tstate p;
      let before = formed () in
      ignore (run p);
      Alcotest.(check int) "zero online formations" before (formed ());
      let _, _, writes1 = Plan.counters () in
      Alcotest.(check int) "nothing flushed" writes0 writes1;
      Alcotest.(check bool) "traces pre-compiled" true
        (Plan.traces_loaded () > 0))

(* --- corrupt, truncated and stale-version entries fall back to online
   formation, silently and correctly --- *)

let damaged_entry_falls_back what damage =
  with_plans (fun () ->
      let p = compile "inter" in
      let online = run p in
      let path = Plan.entry_path (Program.plan_key p) in
      damage path;
      Plan.reset_counters ();
      Program.drop_tstate p;
      let before = formed () in
      let recovered = run p in
      Alcotest.(check bool) (what ^ ": re-formed online") true
        (formed () > before);
      Alcotest.(check bool) (what ^ ": stats equal") true
        (Stats.equal online recovered);
      let hits, misses, writes = Plan.counters () in
      Alcotest.(check int) (what ^ ": no hit") 0 hits;
      Alcotest.(check int) (what ^ ": one miss") 1 misses;
      Alcotest.(check int) (what ^ ": rewritten") 1 writes)

let test_corrupt_entry () =
  damaged_entry_falls_back "corrupt" (fun path ->
      overwrite path "tagsim-plan 1\ntraces banana\nend\n")

let test_truncated_entry () =
  damaged_entry_falls_back "truncated" (fun path ->
      let text = read_file path in
      overwrite path (String.sub text 0 (String.length text / 2)))

let test_stale_version_entry () =
  damaged_entry_falls_back "stale-version" (fun path ->
      let text = read_file path in
      overwrite path
        ("tagsim-plan v0-something-else"
        ^ String.sub text (String.index text '\n')
            (String.length text - String.index text '\n')))

(* --- a plan whose segments no longer match the image degrades to
   online formation, never wrong execution --- *)

let test_mismatched_plan_ignored () =
  with_plans (fun () ->
      let p = compile "inter" in
      let online = run p in
      let path = Plan.entry_path (Program.plan_key p) in
      (* Well-formed on the wire, but the chain points at pc 1, which is
         no superblock leader of this image: validation must reject it
         and tier 1 re-form the real traces. *)
      overwrite path
        "tagsim-plan 1\n\
         traces 1\n\
         trace 1 2\n\
         seg 1 1 1 j\n\
         seg 1 1 1 j\n\
         end\n";
      Program.drop_tstate p;
      let before = formed () in
      let recovered = run p in
      Alcotest.(check bool) "re-formed online" true (formed () > before);
      Alcotest.(check bool) "stats equal" true (Stats.equal online recovered))

(* --- disabled store is bypassed entirely --- *)

let test_disabled_bypass () =
  with_plans (fun () ->
      Plan.set_enabled false;
      let p = compile "inter" in
      ignore (run p);
      Alcotest.(check (triple int int int)) "no store traffic" (0, 0, 0)
        (Plan.counters ());
      Alcotest.(check int) "no traces pre-compiled" 0 (Plan.traces_loaded ());
      Alcotest.(check bool) "no entry written" false
        (Sys.file_exists (Plan.entry_path (Program.plan_key p))))

(* --- the key separates images, schemes and supports --- *)

let test_key_sensitivity () =
  let pkey ?scheme ?support name = Program.plan_key (compile ?scheme ?support name) in
  let base = pkey "inter" in
  Alcotest.(check bool) "deterministic" true (base = pkey "inter");
  Alcotest.(check bool) "program changes key" false (base = pkey "comp");
  Alcotest.(check bool) "scheme changes key" false
    (base = pkey ~scheme:Scheme.low2 "inter");
  Alcotest.(check bool) "support changes key" false
    (base = pkey ~support:Support.software "inter");
  let k fingerprint token = Plan.key ~fingerprint ~token in
  Alcotest.(check bool) "fingerprint changes key" false
    (k "aa" "t" = k "bb" "t");
  Alcotest.(check bool) "token changes key" false (k "aa" "t" = k "aa" "u")

let suite =
  [
    ( "traceplan",
      [
        Alcotest.test_case "determinism" `Quick test_plan_determinism;
        Alcotest.test_case "serialize-round-trip" `Quick
          test_serialize_round_trip;
        Alcotest.test_case "aot-matches-online" `Slow test_aot_matches_online;
        Alcotest.test_case "warm-zero-formations" `Quick
          test_warm_zero_formations;
        Alcotest.test_case "corrupt-entry" `Quick test_corrupt_entry;
        Alcotest.test_case "truncated-entry" `Quick test_truncated_entry;
        Alcotest.test_case "stale-version" `Quick test_stale_version_entry;
        Alcotest.test_case "mismatched-plan" `Quick test_mismatched_plan_ignored;
        Alcotest.test_case "disabled-bypass" `Quick test_disabled_bypass;
        Alcotest.test_case "key-sensitivity" `Quick test_key_sensitivity;
      ] );
  ]
