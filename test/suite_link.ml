(* The incremental backend: relocatable per-unit objects, the linker,
   and the content-addressed object cache.  The pivotal property is the
   differential one — for every tag scheme and every named support row,
   the linked image is byte-identical to the monolithically assembled
   one — checked with a warm in-process object memo, so it doubles as a
   proof that the cache keys (including the arithmetic-flag projection)
   never conflate units that should differ.  The rest covers key
   sensitivity, on-disk round-trips, and damaged-store robustness. *)

module B = Tagsim.Benchmarks
module Program = Tagsim.Program
module Image = Tagsim.Image
module Objcache = Tagsim.Objcache
module Scheme = Tagsim.Scheme
module Support = Tagsim.Support
module Sched = Tagsim.Sched
module Ast = Tagsim.Ast
module Expand = Tagsim.Expand

(* A unique store directory per test-process run, under the system temp
   directory — never the working tree (a suite crash must not leave
   droppings next to the sources). *)
let test_dir = Filename.temp_dir "_tagsim_objcache_test" ""

let rmdir_if_empty d = try Sys.rmdir d with Sys_error _ -> ()

(* Point the object store at the private directory, start with both
   levels empty, and leave the library in its default (store disabled,
   empty memo) state afterwards; the directory itself is removed. *)
let with_store f =
  Objcache.set_dir test_dir;
  Objcache.set_enabled true;
  Objcache.wipe ();
  Objcache.reset_counters ();
  Objcache.clear_memo ();
  Fun.protect
    ~finally:(fun () ->
      Objcache.wipe ();
      rmdir_if_empty test_dir;
      Objcache.set_enabled false;
      Objcache.set_dir (Filename.concat "_tagsim_cache" "obj");
      Objcache.clear_memo ())
    f

let source name = (B.find name).B.source

let compile ?backend ?sched ~scheme ~support name =
  Program.compile ?backend ?sched ~scheme ~support (source name)

(* --- the differential: monolithic vs linked, every scheme x every
   named support row --- *)

let differential name () =
  (* Memo only (store disabled, the with_store fixture is not used):
     hits across the support rows exercise the key projection. *)
  Objcache.clear_memo ();
  let fe = Program.analyze (source name) in
  List.iter
    (fun scheme ->
      List.iter
        (fun (row, support) ->
          let mono =
            Program.compile_frontend ~backend:`Monolithic ~scheme ~support fe
          in
          let inc =
            Program.compile_frontend ~backend:`Incremental ~scheme ~support fe
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s/%s byte-identical" name scheme.Scheme.name
               row)
            true
            (Image.equal mono.Program.image inc.Program.image))
        Support.all_named)
    Scheme.all;
  Objcache.clear_memo ()

(* --- a warm memo serves every unit and still reproduces the image --- *)

let test_warm_recompile () =
  with_store (fun () ->
      let scheme = Scheme.high5 and support = Support.software in
      let cold = compile ~scheme ~support "comp" in
      let _, cold_misses, _ = Objcache.counters () in
      Alcotest.(check bool) "cold run misses" true (cold_misses > 0);
      Objcache.reset_counters ();
      let warm = compile ~scheme ~support "comp" in
      let _, warm_misses, _ = Objcache.counters () in
      Alcotest.(check int) "warm run: no misses" 0 warm_misses;
      Alcotest.(check bool) "warm image identical" true
        (Image.equal cold.Program.image warm.Program.image))

(* --- the persistent store alone (memo dropped) reproduces the image --- *)

let test_disk_round_trip () =
  with_store (fun () ->
      let scheme = Scheme.low2 and support = Support.software in
      let cold = compile ~scheme ~support "inter" in
      Objcache.clear_memo ();
      Objcache.reset_counters ();
      let reloaded = compile ~scheme ~support "inter" in
      let hits, misses, _ = Objcache.counters () in
      Alcotest.(check int) "all units from disk" 0 misses;
      Alcotest.(check bool) "some hits" true (hits > 0);
      Alcotest.(check bool) "reloaded image identical" true
        (Image.equal cold.Program.image reloaded.Program.image))

(* --- key sensitivity --- *)

let def_of src =
  match Expand.program src with
  | [ d ] -> d
  | _ -> Alcotest.fail "expected one definition"

let test_key_sensitivity () =
  let d = def_of "(de f (x) (car x))" in
  let darith = def_of "(de f (x) (plus2 x 1))" in
  let base ?(scheme = Scheme.high5) ?(support = Support.software)
      ?(sched = Sched.default) ?(opt = `None) ?(env = "env0")
      ?(fingerprint = Objcache.def_fingerprint d) ?(uses_arith = false) () =
    Objcache.key ~kind:"fn" ~fingerprint ~env ~scheme
      ~support_token:(Objcache.support_token ~uses_arith support)
      ~sched ~opt
  in
  let k = base () in
  Alcotest.(check bool) "deterministic" true (k = base ());
  Alcotest.(check bool) "scheme flips key" true (k <> base ~scheme:Scheme.low2 ());
  let row1 = List.assoc "row1" Support.all_named in
  Alcotest.(check bool) "support flips key" true (k <> base ~support:row1 ());
  Alcotest.(check bool) "sched flips key" true
    (k <> base ~sched:{ Sched.default with Sched.hoist = false } ());
  Alcotest.(check bool) "opt flips key" true (k <> base ~opt:`Checks ());
  Alcotest.(check bool) "env flips key" true (k <> base ~env:"env1" ());
  Alcotest.(check bool) "source flips key" true
    (k <> base ~fingerprint:(Objcache.def_fingerprint darith) ());
  (* The projection: configurations differing only in the
     generic-arithmetic flags — row 4 is exactly software plus
     [hw_generic_arith] — share a non-arithmetic function's key, but
     never an arithmetic one's. *)
  let row4 = List.assoc "row4" Support.all_named in
  Alcotest.(check bool) "row4/software differ only in arith flags" true
    ({ row4 with Support.hw_generic_arith = false; int_biased_arith = true }
    = Support.software);
  Alcotest.(check bool) "non-arith fn shared across row4/software" true
    (base ~support:row4 () = base ~support:Support.software ());
  Alcotest.(check bool) "arith fn detected" true (Objcache.def_uses_arith darith);
  Alcotest.(check bool) "non-arith fn detected" true (not (Objcache.def_uses_arith d));
  Alcotest.(check bool) "arith fn not shared across row4/software" true
    (base ~support:row4 ~uses_arith:true
       ~fingerprint:(Objcache.def_fingerprint darith) ()
    <> base ~support:Support.software ~uses_arith:true
         ~fingerprint:(Objcache.def_fingerprint darith) ())

(* --- damaged store entries are silent misses --- *)

let damaged_store_recomputes what damage () =
  with_store (fun () ->
      let scheme = Scheme.high5 and support = Support.software in
      let cold = compile ~scheme ~support "inter" in
      (* Damage every object on disk, drop the memo: recompile must
         silently rebuild and overwrite. *)
      Array.iter
        (fun name ->
          let path = Filename.concat test_dir name in
          if Filename.check_suffix name ".obj" then damage path)
        (Sys.readdir test_dir);
      Objcache.clear_memo ();
      Objcache.reset_counters ();
      let again = compile ~scheme ~support "inter" in
      let _, misses, writes = Objcache.counters () in
      Alcotest.(check bool) (what ^ ": recomputed") true (misses > 0);
      Alcotest.(check bool) (what ^ ": rewritten") true (writes > 0);
      Alcotest.(check bool) (what ^ ": image identical") true
        (Image.equal cold.Program.image again.Program.image))

let overwrite path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let corrupt path = overwrite path "tagsim-obj 1\nI 0 p frobnicate 1 2\nend\n"

let truncate path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic (n / 2) in
  close_in ic;
  overwrite path text

let stale path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  (* Rewrite the header's version stamp to an impossible one. *)
  match String.index_opt text '\n' with
  | None -> Alcotest.fail "empty object file"
  | Some i ->
      overwrite path
        ("tagsim-obj none" ^ String.sub text i (String.length text - i))

(* The pre-refactor stamp specifically: a version-1 object (from before
   the optimization level joined the key) can never satisfy a lookup
   under the current format. *)
let stale_v1 path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match String.index_opt text '\n' with
  | None -> Alcotest.fail "empty object file"
  | Some i ->
      overwrite path
        ("tagsim-obj 1" ^ String.sub text i (String.length text - i))

let suite =
  [
    ( "link",
      [
        Alcotest.test_case "differential-inter" `Slow (differential "inter");
        Alcotest.test_case "differential-comp" `Slow (differential "comp");
        Alcotest.test_case "differential-frl" `Slow (differential "frl");
        Alcotest.test_case "warm-recompile" `Quick test_warm_recompile;
        Alcotest.test_case "disk-round-trip" `Quick test_disk_round_trip;
        Alcotest.test_case "key-sensitivity" `Quick test_key_sensitivity;
        Alcotest.test_case "corrupt-object" `Quick
          (damaged_store_recomputes "corrupt" corrupt);
        Alcotest.test_case "truncated-object" `Quick
          (damaged_store_recomputes "truncated" truncate);
        Alcotest.test_case "stale-object" `Quick
          (damaged_store_recomputes "stale" stale);
        Alcotest.test_case "previous-version-object" `Quick
          (damaged_store_recomputes "previous-version" stale_v1);
      ] );
  ]
