(* The persistent (L2) measurement cache: round-trip equality through
   the on-disk store, robustness against corrupt/truncated entries, key
   sensitivity to the configuration, engine-agnostic keys, and the
   bypass switch.  The staged compiler front end rides along (the cache
   and the shared front ends were introduced together). *)

module B = Tagsim.Benchmarks
module Run = Tagsim.Analysis.Run
module Cache = Tagsim.Analysis.Cache
module Program = Tagsim.Program
module Stats = Tagsim.Stats
module Scheme = Tagsim.Scheme
module Support = Tagsim.Support
module Sched = Tagsim.Sched

let test_dir = Filename.temp_dir "tagsim_cache_test" ""
let rmdir_if_empty d = try Sys.rmdir d with Sys_error _ -> ()

(* Point the store at a private directory, start empty, and leave the
   library in its default (disabled, empty-memo) state afterwards; the
   directory itself is removed. *)
let with_cache f =
  Cache.set_dir test_dir;
  Cache.set_enabled true;
  Cache.wipe ();
  Cache.reset_counters ();
  Run.clear_cache ();
  Fun.protect
    ~finally:(fun () ->
      Cache.wipe ();
      rmdir_if_empty test_dir;
      Cache.set_enabled false;
      Cache.set_dir "_tagsim_cache";
      Run.clear_cache ())
    f

let inter () = B.find "inter"

let config ?engine ?support () =
  let support = Option.value support ~default:Support.software in
  Run.config ?engine ~scheme:Scheme.high5 ~support (inter ())

let check_measurement_equal what (a : Run.measurement) (b : Run.measurement) =
  Alcotest.(check bool) (what ^ ": stats equal") true (Stats.equal a.Run.stats b.Run.stats);
  Alcotest.(check int) (what ^ ": gc collections") a.Run.gc_collections b.Run.gc_collections;
  Alcotest.(check int) (what ^ ": gc bytes") a.Run.gc_bytes_copied b.Run.gc_bytes_copied;
  Alcotest.(check bool) (what ^ ": meta equal") true (a.Run.meta = b.Run.meta)

(* --- round trip: recompute vs reload from disk --- *)

let test_round_trip () =
  with_cache (fun () ->
      let c = config () in
      let computed = Run.run_config c in
      let _, _, writes = Cache.counters () in
      Alcotest.(check int) "one write" 1 writes;
      (* Drop the in-process memo: the only way back is the store. *)
      Run.clear_cache ();
      let before = Run.simulations () in
      let reloaded = Run.run_config c in
      Alcotest.(check int) "no recompute" before (Run.simulations ());
      let hits, _, _ = Cache.counters () in
      Alcotest.(check int) "one hit" 1 hits;
      check_measurement_equal "round-trip" computed reloaded)

(* --- keys are engine-agnostic: a measurement produced by one engine
   serves every other --- *)

let test_engine_agnostic () =
  with_cache (fun () ->
      let ref_m = Run.run_config (config ~engine:`Reference ()) in
      Run.clear_cache ();
      let before = Run.simulations () in
      let fused_m = Run.run_config (config ~engine:`Fused ()) in
      Alcotest.(check int) "served from store" before (Run.simulations ());
      check_measurement_equal "cross-engine" ref_m fused_m)

(* --- corrupt and truncated entries fall back to recompute --- *)

let damaged_entry_recomputes what damage =
  with_cache (fun () ->
      let c = config () in
      let computed = Run.run_config c in
      damage (Cache.entry_path (Run.cache_key c));
      Run.clear_cache ();
      Cache.reset_counters ();
      let before = Run.simulations () in
      let recomputed = Run.run_config c in
      Alcotest.(check int) (what ^ ": recomputed") (before + 1)
        (Run.simulations ());
      let hits, misses, writes = Cache.counters () in
      Alcotest.(check int) (what ^ ": no hit") 0 hits;
      Alcotest.(check int) (what ^ ": one miss") 1 misses;
      Alcotest.(check int) (what ^ ": rewritten") 1 writes;
      check_measurement_equal what computed recomputed)

let overwrite path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let test_corrupt_entry () =
  damaged_entry_recomputes "corrupt" (fun path ->
      overwrite path "tagsim-cache 1\ncycles banana\nend\n")

let test_truncated_entry () =
  damaged_entry_recomputes "truncated" (fun path ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let text = really_input_string ic (n / 2) in
      close_in ic;
      overwrite path text)

let test_stale_version_entry () =
  damaged_entry_recomputes "stale-version" (fun path ->
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (* A payload whose header names another format version. *)
      overwrite path
        ("tagsim-cache v0-something-else"
        ^ String.sub text (String.index text '\n')
            (String.length text - String.index text '\n')))

(* A faithful pre-refactor (version-1) entry — old header, three-int
   meta line — planted at the current key's path can never satisfy a
   post-refactor lookup: the header check rejects it before the meta
   line is even reached. *)
let test_previous_version_entry () =
  damaged_entry_recomputes "previous-version" (fun path ->
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let downgrade line =
        match String.split_on_char ' ' line with
        | "tagsim-cache" :: _ -> "tagsim-cache 1"
        | "meta" :: p :: s :: o :: _ -> String.concat " " [ "meta"; p; s; o ]
        | _ -> line
      in
      overwrite path
        (String.concat "\n"
           (List.map downgrade (String.split_on_char '\n' text))))

(* --- the key changes with every configuration axis --- *)

let test_key_sensitivity () =
  let key ?(sched = Sched.default) ?(opt = `None) ?(scheme = Scheme.high5)
      ?(support = Support.software) entry =
    Cache.key ~sched ~opt ~scheme ~support entry
  in
  let base = key (inter ()) in
  Alcotest.(check bool) "deterministic" true (base = key (inter ()));
  Alcotest.(check bool) "scheme changes key" false
    (base = key ~scheme:Scheme.low2 (inter ()));
  Alcotest.(check bool) "support changes key" false
    (base = key ~support:(Support.with_checking Support.software) (inter ()));
  Alcotest.(check bool) "sched changes key" false
    (base = key ~sched:Sched.off (inter ()));
  Alcotest.(check bool) "opt changes key" false
    (base = key ~opt:`Checks (inter ()));
  Alcotest.(check bool) "program changes key" false
    (base = key (B.find "deduce"));
  (* deduce and dedgc share one source but differ in heap sizing: the
     fingerprint (and so the key) must separate them. *)
  Alcotest.(check bool) "sizes change key" false
    (key (B.find "deduce") = key (B.find "dedgc"))

(* --- disabled store is bypassed entirely --- *)

let test_no_cache_bypass () =
  with_cache (fun () ->
      Cache.set_enabled false;
      let c = config ~support:(Support.with_checking Support.software) () in
      let before = Run.simulations () in
      ignore (Run.run_config c);
      Alcotest.(check int) "still simulates" (before + 1) (Run.simulations ());
      Alcotest.(check (triple int int int)) "no cache traffic" (0, 0, 0)
        (Cache.counters ());
      Alcotest.(check bool) "no entry written" false
        (Sys.file_exists (Cache.entry_path (Run.cache_key c))))

(* --- the staged front end compiles to the same program --- *)

let test_staged_pipeline () =
  let entry = inter () in
  let support = Support.with_checking Support.software in
  let direct =
    Program.compile ~sizes:entry.B.sizes ~scheme:Scheme.high5 ~support
      entry.B.source
  in
  let fe = Program.analyze entry.B.source in
  let staged =
    Program.compile_frontend ~sizes:entry.B.sizes ~scheme:Scheme.high5
      ~support fe
  in
  Alcotest.(check bool) "meta equal" true
    (direct.Program.meta = staged.Program.meta);
  (* One shared front end serves two configurations with different
     emitted code but identical measured semantics. *)
  let r1 = Program.run direct and r2 = Program.run staged in
  Alcotest.(check bool) "stats equal" true
    (Stats.equal r1.Program.stats r2.Program.stats);
  let low =
    Program.compile_frontend ~sizes:entry.B.sizes ~scheme:Scheme.low2 ~support
      fe
  in
  let r3 = Program.run low in
  Alcotest.(check bool) "low2 from same front end runs" true
    (r3.Program.abort = None)

let suite =
  [
    ( "cache",
      [
        Alcotest.test_case "round-trip" `Quick test_round_trip;
        Alcotest.test_case "engine-agnostic" `Quick test_engine_agnostic;
        Alcotest.test_case "corrupt-entry" `Quick test_corrupt_entry;
        Alcotest.test_case "truncated-entry" `Quick test_truncated_entry;
        Alcotest.test_case "stale-version" `Quick test_stale_version_entry;
        Alcotest.test_case "previous-version" `Quick
          test_previous_version_entry;
        Alcotest.test_case "key-sensitivity" `Quick test_key_sensitivity;
        Alcotest.test_case "no-cache-bypass" `Quick test_no_cache_bypass;
        Alcotest.test_case "staged-pipeline" `Quick test_staged_pipeline;
      ] );
  ]
