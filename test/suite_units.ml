(* Unit tests for the lower layers: words, the reader, the expander, the
   tag schemes, the assembler/scheduler and the machine itself (via
   hand-written assembly programs). *)

module Word = Tagsim.Word
module Sexp = Tagsim.Sexp
module Expand = Tagsim.Expand
module Ast = Tagsim.Ast
module Scheme = Tagsim.Scheme
module Insn = Tagsim.Insn
module Reg = Tagsim.Reg
module Buf = Tagsim.Buf
module Sched = Tagsim.Sched
module Image = Tagsim.Image
module Machine = Tagsim.Machine
module Stats = Tagsim.Stats

(* --- Word --- *)

let test_word_basics () =
  Alcotest.(check int) "of_int wraps" 0 (Word.of_int 0x100000000);
  Alcotest.(check int) "to_signed negative" (-1) (Word.to_signed 0xFFFFFFFF);
  Alcotest.(check int) "add wraps" 0 (Word.add 0xFFFFFFFF 1);
  Alcotest.(check int) "sub wraps" 0xFFFFFFFF (Word.sub 0 1);
  Alcotest.(check int) "sra sign extends" 0xFFFFFFFF (Word.sra 0x80000000 31);
  Alcotest.(check int) "srl zero extends" 1 (Word.srl 0x80000000 31);
  Alcotest.(check int) "div truncates toward zero" Word.(of_int (-3))
    (Word.div (Word.of_int (-17)) 5);
  Alcotest.(check int) "rem sign follows dividend" Word.(of_int (-2))
    (Word.rem (Word.of_int (-17)) 5);
  Alcotest.(check int) "field extracts" 5
    (Word.field ~shift:27 ~width:5 (5 lsl 27));
  Alcotest.(check bool) "simm17 fits" true (Word.fits_simm ~width:17 65535);
  Alcotest.(check bool) "simm17 overflow" false
    (Word.fits_simm ~width:17 65536);
  Alcotest.(check int) "lui-style imm is 1 cycle" 1
    (Word.imm_cycles (3 lsl 27));
  Alcotest.(check int) "wide imm is 2 cycles" 2 (Word.imm_cycles 0x12345)

(* --- Sexp reader --- *)

let test_sexp_reader () =
  let p s = Sexp.to_string (Sexp.parse s) in
  Alcotest.(check string) "atom" "foo" (p "foo");
  Alcotest.(check string) "int" "-42" (p "-42");
  Alcotest.(check string) "nested" "(a (b c) 3)" (p "(a (b  c)\n 3)");
  Alcotest.(check string) "quote sugar" "(quote (a b))" (p "'(a b)");
  Alcotest.(check string) "comments" "(a b)" (p "(a ; comment\n b)");
  Alcotest.(check string) "nested quote" "(a (quote b))" (p "(a 'b)");
  Alcotest.(check int) "parse_all" 3
    (List.length (Sexp.parse_all "(a) (b) (c)"));
  Alcotest.check_raises "unbalanced"
    (Sexp.Parse_error "unterminated list") (fun () ->
      ignore (Sexp.parse "(a (b)"));
  (* '+' and '-' are symbols, not numbers *)
  (match Sexp.parse "-" with
  | Sexp.Sym "-" -> ()
  | _ -> Alcotest.fail "- should be a symbol");
  match Sexp.parse "1x" with
  | Sexp.Sym "1x" -> ()
  | _ -> Alcotest.fail "1x should be a symbol"

let test_expander () =
  let e src = Fmt.str "%a" Ast.pp (Expand.expr (Sexp.parse src)) in
  Alcotest.(check string) "cond" "(if 'a 'b (if 'c 'd 'nil))"
    (e "(cond ('a 'b) ('c 'd))");
  Alcotest.(check string) "and" "(if 'a 'b 'nil)" (e "(and 'a 'b)");
  Alcotest.(check string) "cxr" "(car (cdr x))" (e "(cadr x)");
  Alcotest.(check string) "nary plus" "(plus2 (plus2 '1 '2) '3)"
    (e "(+ 1 2 3)");
  Alcotest.(check string) "unary minus" "(difference2 '0 x)" (e "(- x)");
  Alcotest.(check string) "not" "(null x)" (e "(not x)");
  Alcotest.(check string) "push" "(setq l (cons x l))" (e "(push x l)");
  (* duplicate parameters are rejected *)
  Alcotest.check_raises "dup params"
    (Expand.Error "duplicate parameter x in f") (fun () ->
      ignore (Expand.program "(de f (x x) x)"))

(* --- Tag schemes --- *)

let test_scheme_encodings () =
  List.iter
    (fun scheme ->
      let name = scheme.Scheme.name in
      (* integer roundtrip at the extremes *)
      List.iter
        (fun n ->
          Alcotest.(check int)
            (Printf.sprintf "%s int %d" name n)
            n
            (Scheme.decode_int scheme (Scheme.encode_int scheme n));
          Alcotest.(check bool)
            (Printf.sprintf "%s is_int %d" name n)
            true
            (Scheme.is_int_item scheme (Scheme.encode_int scheme n)))
        [ 0; 1; -1; 42; scheme.Scheme.int_min; scheme.Scheme.int_max ];
      (* pointers are not integers, and addresses roundtrip *)
      List.iter
        (fun ty ->
          let addr = 128 * scheme.Scheme.obj_align in
          let item = Scheme.encode_ptr scheme ty addr in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s not int" name (Scheme.ty_name ty))
            false
            (Scheme.is_int_item scheme item);
          Alcotest.(check int)
            (Printf.sprintf "%s %s addr" name (Scheme.ty_name ty))
            addr
            (Scheme.ptr_addr scheme item))
        [ Scheme.Pair; Scheme.Symbol; Scheme.Vector; Scheme.Boxnum ];
      (* out-of-range literals are rejected *)
      Alcotest.(check bool)
        (name ^ " range check") true
        (try
           ignore (Scheme.encode_int scheme (scheme.Scheme.int_max + 1));
           false
         with Invalid_argument _ -> true))
    Scheme.all

(* --- Assembler and machine, via hand-written programs. --- *)

let hw = Scheme.machine_hw ~mem_bytes:(1 lsl 20) Scheme.high5

let run_asm build =
  let b = Buf.create () in
  build b;
  let image = Image.assemble b in
  let m = Machine.create ~hw image in
  (Machine.run m, m)

(* A raw image with integer branch targets, bypassing the assembler and
   scheduler entirely: for testing exact machine semantics (delay slots,
   squashing, interlocks). *)
let raw_image ?(data = [||]) insns : Image.t =
  {
    Image.code =
      Array.of_list
        (List.map
           (fun insn ->
             { Image.insn; annot = Tagsim.Annot.plain; speculative = false })
           insns);
    code_symbols = Hashtbl.create 1;
    data_symbols = Hashtbl.create 1;
    data_words = data;
    data_end = 4 * Array.length data;
    source = [];
  }

let run_raw ?data insns =
  let m = Machine.create ~hw (raw_image ?data insns) in
  (Machine.run m, m)

let check_halt name expected outcome =
  match outcome with
  | Machine.Halted n -> Alcotest.(check int) name expected n
  | Machine.Aborted c -> Alcotest.failf "%s: aborted %d" name c

let test_machine_arith () =
  let outcome, _ =
    run_raw
      [
        Insn.Li (Reg.t0, 20);
        Insn.Li (Reg.t1, 22);
        Insn.Alu (Insn.Add, Reg.v0, Reg.t0, Reg.t1);
        Insn.Halt;
      ]
  in
  check_halt "add" 42 outcome;
  let outcome, _ =
    run_raw
      [
        Insn.Li (Reg.t0, -17);
        Insn.Alui (Insn.Rem, Reg.v0, Reg.t0, 5);
        Insn.Alui (Insn.Add, Reg.v0, Reg.v0, 2);
        Insn.Halt;
      ]
  in
  check_halt "rem" 0 outcome

let test_machine_branch_slots () =
  (* The two instructions in the slots of a (plain, taken) branch
     execute; the fall-through after them does not. *)
  let b cond =
    Insn.B
      ( { Insn.cond; rs = Reg.zero; rt = Reg.zero; squash = false;
          hint = Insn.No_hint },
        5 )
  in
  let outcome, _ =
    run_raw
      [
        Insn.Li (Reg.v0, 0);
        b Insn.Eq;
        Insn.Alui (Insn.Add, Reg.v0, Reg.v0, 1);
        Insn.Alui (Insn.Add, Reg.v0, Reg.v0, 2);
        Insn.Alui (Insn.Add, Reg.v0, Reg.v0, 100);
        Insn.Halt;
      ]
  in
  check_halt "taken: slots only" 3 outcome;
  (* not taken: slots AND fall-through execute *)
  let outcome, _ =
    run_raw
      [
        Insn.Li (Reg.v0, 0);
        b Insn.Ne;
        Insn.Alui (Insn.Add, Reg.v0, Reg.v0, 1);
        Insn.Alui (Insn.Add, Reg.v0, Reg.v0, 2);
        Insn.Alui (Insn.Add, Reg.v0, Reg.v0, 100);
        Insn.Halt;
      ]
  in
  check_halt "not taken: slots + fall-through" 103 outcome

let test_machine_squash () =
  (* Slots of a squashing branch are annulled when it is not taken, and
     charged as squashed cycles. *)
  let outcome, m =
    run_raw
      [
        Insn.Li (Reg.v0, 7);
        Insn.B
          ( { Insn.cond = Insn.Ne; rs = Reg.zero; rt = Reg.zero;
              squash = true; hint = Insn.No_hint },
            4 );
        Insn.Alui (Insn.Add, Reg.v0, Reg.v0, 1);
        Insn.Alui (Insn.Add, Reg.v0, Reg.v0, 2);
        Insn.Halt;
      ]
  in
  check_halt "squash annuls" 7 outcome;
  Alcotest.(check int) "squash count" 2 (Machine.stats m).Stats.squashed;
  (* taken: the slots do execute *)
  let outcome, m =
    run_raw
      [
        Insn.Li (Reg.v0, 7);
        Insn.B
          ( { Insn.cond = Insn.Eq; rs = Reg.zero; rt = Reg.zero;
              squash = true; hint = Insn.No_hint },
            4 );
        Insn.Alui (Insn.Add, Reg.v0, Reg.v0, 1);
        Insn.Alui (Insn.Add, Reg.v0, Reg.v0, 2);
        Insn.Halt;
      ]
  in
  check_halt "squash taken executes slots" 10 outcome;
  Alcotest.(check int) "no squash when taken" 0
    (Machine.stats m).Stats.squashed

let test_machine_load_interlock () =
  (* A load followed by an immediate use costs one extra cycle. *)
  let interlocks gap =
    let insns =
      [ Insn.Ld (Insn.Plain, Reg.t1, Reg.zero, 0) ]
      @ (if gap then [ Insn.Alui (Insn.Add, Reg.t2, Reg.zero, 1) ] else [])
      @ [ Insn.Alu (Insn.Add, Reg.v0, Reg.t1, Reg.zero); Insn.Halt ]
    in
    let _, m = run_raw ~data:[| 5 |] insns in
    (Machine.stats m).Stats.interlocks
  in
  Alcotest.(check int) "interlock charged" 1 (interlocks false);
  Alcotest.(check int) "no interlock with a gap" 0 (interlocks true)

let test_machine_call () =
  (* jal: ra = address after the two delay slots; jr returns there. *)
  let outcome, _ =
    run_raw
      [
        (* 0 *) Insn.Li (Reg.a0, 5);
        (* 1 *) Insn.Jal 5;
        (* 2 *) Insn.Nop;
        (* 3 *) Insn.Nop;
        (* 4 *) Insn.Halt;
        (* 5 *) Insn.Alu (Insn.Add, Reg.v0, Reg.a0, Reg.a0);
        (* 6 *) Insn.Jr Reg.ra;
        (* 7 *) Insn.Nop;
        (* 8 *) Insn.Nop;
      ]
  in
  check_halt "call/return" 10 outcome

let test_machine_tag_ops () =
  (* Btag and checked loads behave per the high5 geometry. *)
  let pair_tag = Scheme.high5.Scheme.tag Scheme.Pair in
  let item = Scheme.encode_ptr Scheme.high5 Scheme.Pair 256 in
  let outcome, _ =
    run_raw
      [
        (* 0 *) Insn.Li (Reg.t0, item);
        (* 1 *)
        Insn.Btag
          ( { Insn.bt_neg = false; bt_rs = Reg.t0; bt_tag = pair_tag;
              bt_squash = false; bt_hint = Insn.No_hint },
            6 );
        (* 2 *) Insn.Nop;
        (* 3 *) Insn.Nop;
        (* 4 *) Insn.Li (Reg.v0, 0);
        (* 5 *) Insn.Halt;
        (* 6 *) Insn.Li (Reg.v0, 1);
        (* 7 *) Insn.Halt;
      ]
  in
  check_halt "btag matches" 1 outcome;
  (* a checked load with the wrong expected tag aborts; with the right
     tag it reads through the masked address *)
  let outcome, _ =
    run_raw
      [
        Insn.Li (Reg.t0, item);
        Insn.Ld (Insn.Checked (pair_tag + 1), Reg.v0, Reg.t0, 0);
        Insn.Halt;
      ]
  in
  (match outcome with
  | Machine.Aborted c when c = Machine.err_type -> ()
  | Machine.Aborted c -> Alcotest.failf "aborted %d" c
  | Machine.Halted _ -> Alcotest.fail "checked load did not trap");
  let data = Array.make 70 0 in
  data.(64) <- 77;
  (* word index of byte address 256 *)
  let outcome, _ =
    run_raw ~data
      [
        Insn.Li (Reg.t0, item);
        Insn.Ld (Insn.Checked pair_tag, Reg.v0, Reg.t0, 0);
        Insn.Halt;
      ]
  in
  check_halt "checked load reads" 77 outcome

let test_assembler_errors () =
  let assemble build =
    let b = Buf.create () in
    build b;
    ignore (Image.assemble b)
  in
  Alcotest.check_raises "undefined label"
    (Image.Error "undefined code label nowhere") (fun () ->
      assemble (fun b -> Buf.emit b (Insn.J "nowhere")));
  Alcotest.check_raises "duplicate label" (Image.Error "duplicate label l")
    (fun () ->
      assemble (fun b ->
          Buf.label b "l";
          Buf.label b "l";
          Buf.emit b Insn.Halt))

let test_sched_hoisting () =
  (* Independent instructions before a jump end up in its slots; the
     machine still computes the same value. *)
  let b = Buf.create () in
  Buf.emit b (Insn.Li (Reg.t0, 1));
  Buf.emit b (Insn.Li (Reg.t1, 2));
  Buf.emit b (Insn.J "next");
  Buf.label b "next";
  Buf.emit b (Insn.Alu (Insn.Add, Reg.v0, Reg.t0, Reg.t1));
  Buf.emit b Insn.Halt;
  let image = Image.assemble b in
  (* no Nop should have been inserted for the jump's slots *)
  let noops =
    Array.fold_left
      (fun acc e -> if e.Image.insn = Insn.Nop then acc + 1 else acc)
      0 image.Image.code
  in
  Alcotest.(check int) "slots filled by hoisting" 0 noops;
  let m = Machine.create ~hw image in
  match Machine.run m with
  | Machine.Halted 3 -> ()
  | Machine.Halted n -> Alcotest.failf "got %d" n
  | Machine.Aborted c -> Alcotest.failf "aborted %d" c

let test_stats_merge_equal () =
  let module Annot = Tagsim.Annot in
  let sample k =
    (* two distinguishable stats records built from scaled charges *)
    let s = Stats.create () in
    Stats.charge s Annot.plain (2 * k);
    Stats.charge s (Annot.make ~checking:true (Annot.Check Annot.List_op)) k;
    Stats.charge s (Annot.make Annot.Insert) (3 * k);
    for _ = 1 to k do
      Stats.count_insn s Insn.K_alu;
      Stats.count_insn s Insn.K_load
    done;
    s.Stats.insns <- s.Stats.insns + (5 * k);
    s.Stats.squashed <- k;
    s.Stats.interlocks <- 2 * k;
    s.Stats.traps <- k;
    s.Stats.trap_cycles <- 4 * k;
    s
  in
  let a = sample 1 and b = sample 2 in
  Alcotest.(check bool) "equal: reflexive" true (Stats.equal a (sample 1));
  Alcotest.(check bool) "equal: distinguishes" false (Stats.equal a b);
  let dst = sample 1 in
  Stats.merge dst b;
  Alcotest.(check bool) "merge accumulates" true (Stats.equal dst (sample 3));
  Alcotest.(check int) "merge sums cycles"
    (Stats.total a + Stats.total b)
    (Stats.total dst);
  Alcotest.(check int) "merge sums insns"
    (Stats.executed_insns a + Stats.executed_insns b)
    (Stats.executed_insns dst);
  Alcotest.(check int) "merge sums klass counts"
    (Stats.klass_count a Insn.K_alu + Stats.klass_count b Insn.K_alu)
    (Stats.klass_count dst Insn.K_alu);
  (* a single differing array cell must break equality *)
  let c = sample 1 in
  Stats.count_insn c Insn.K_jump;
  Alcotest.(check bool) "equal: sees klass_insns" false
    (Stats.equal (sample 1) c);
  let d = sample 1 in
  Stats.charge d (Annot.make Annot.Gc_work) 1;
  Alcotest.(check bool) "equal: sees kind_cycles" false
    (Stats.equal (sample 1) d)

let suite =
  [
    ( "units",
      [
        Alcotest.test_case "word" `Quick test_word_basics;
        Alcotest.test_case "sexp-reader" `Quick test_sexp_reader;
        Alcotest.test_case "expander" `Quick test_expander;
        Alcotest.test_case "scheme-encodings" `Quick test_scheme_encodings;
        Alcotest.test_case "machine-arith" `Quick test_machine_arith;
        Alcotest.test_case "machine-branch-slots" `Quick
          test_machine_branch_slots;
        Alcotest.test_case "machine-squash" `Quick test_machine_squash;
        Alcotest.test_case "machine-interlock" `Quick
          test_machine_load_interlock;
        Alcotest.test_case "machine-call" `Quick test_machine_call;
        Alcotest.test_case "machine-tag-ops" `Quick test_machine_tag_ops;
        Alcotest.test_case "assembler-errors" `Quick test_assembler_errors;
        Alcotest.test_case "sched-hoisting" `Quick test_sched_hoisting;
        Alcotest.test_case "stats-merge-equal" `Quick test_stats_merge_equal;
      ] );
  ]
