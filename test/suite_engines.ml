(* Differential engine testing.  The predecoded closure engine
   (Tagsim.Predecode) must be observationally identical to the reference
   interpreter: every registry benchmark is compiled once per
   configuration and simulated under both engines, and the result value,
   abort status, GC counters and every Stats counter must match exactly.
   The parallel measurement pool must likewise be oblivious to the
   worker count. *)

module P = Tagsim.Program
module Stats = Tagsim.Stats
module Scheme = Tagsim.Scheme
module Support = Tagsim.Support
module Run = Tagsim.Analysis.Run
module B = Tagsim.Benchmarks

(* Software checking exercises the inline check/extract sequences and
   the generic-arithmetic trap path; row7 exercises the checked memory
   ops, btag branches and the hardware trap path. *)
let configs =
  [
    ("high5 chk/software", Scheme.high5, Support.with_checking Support.software);
    ("high5 chk/row7", Scheme.high5, Support.with_checking Support.row7);
  ]

let check_result name (a : P.result) (b : P.result) =
  Alcotest.(check (option string))
    (name ^ ": abort") a.P.abort b.P.abort;
  Alcotest.(check (option string))
    (name ^ ": value")
    (Option.map P.hval_to_string a.P.value)
    (Option.map P.hval_to_string b.P.value);
  Alcotest.(check int)
    (name ^ ": cycles")
    (Stats.total a.P.stats) (Stats.total b.P.stats);
  Alcotest.(check int)
    (name ^ ": insns")
    (Stats.executed_insns a.P.stats)
    (Stats.executed_insns b.P.stats);
  Alcotest.(check bool)
    (name ^ ": all stats counters") true
    (Stats.equal a.P.stats b.P.stats);
  Alcotest.(check int)
    (name ^ ": gc collections") a.P.gc_collections b.P.gc_collections;
  Alcotest.(check int)
    (name ^ ": gc bytes copied") a.P.gc_bytes_copied b.P.gc_bytes_copied

let test_engines_agree (entry : B.entry) () =
  List.iter
    (fun (cname, scheme, support) ->
      let program =
        P.compile ~scheme ~support ~sizes:entry.B.sizes entry.B.source
      in
      let reference = P.run ~engine:`Reference program in
      let predecoded = P.run ~engine:`Predecoded program in
      check_result (entry.B.name ^ " " ^ cname) reference predecoded;
      Alcotest.(check (option string))
        (entry.B.name ^ " " ^ cname ^ ": no abort")
        None reference.P.abort)
    configs

(* The memoised matrix driver must return the same measurements, in the
   same order, for any worker count. *)
let test_pool_jobs_agree () =
  let entries = List.filteri (fun i _ -> i < 3) (Run.all_entries ()) in
  let matrix =
    List.concat_map
      (fun e ->
        [
          Run.config ~scheme:Scheme.high5 ~support:Support.software e;
          Run.config ~scheme:Scheme.high5
            ~support:(Support.with_checking Support.software) e;
          (* a duplicate: run_many must dedupe and still return it *)
          Run.config ~scheme:Scheme.high5 ~support:Support.software e;
        ])
      entries
  in
  Run.clear_cache ();
  let serial = Run.run_many ~jobs:1 matrix in
  Run.clear_cache ();
  let parallel = Run.run_many ~jobs:4 matrix in
  Run.clear_cache ();
  Alcotest.(check int)
    "measurement count" (List.length matrix) (List.length serial);
  List.iter2
    (fun (a : Run.measurement) (b : Run.measurement) ->
      Alcotest.(check string)
        "input order preserved" a.Run.entry.B.name b.Run.entry.B.name;
      Alcotest.(check bool)
        (a.Run.entry.B.name ^ ": stats identical across job counts")
        true
        (Stats.equal a.Run.stats b.Run.stats);
      Alcotest.(check int)
        (a.Run.entry.B.name ^ ": gc collections")
        a.Run.gc_collections b.Run.gc_collections)
    serial parallel

let suite =
  [
    ( "engines",
      List.map
        (fun (e : B.entry) ->
          Alcotest.test_case e.B.name `Slow (test_engines_agree e))
        (B.all ())
      @ [ Alcotest.test_case "pool-jobs" `Quick test_pool_jobs_agree ] );
  ]
