(* Differential engine testing.  The predecoded closure engine
   (Tagsim.Predecode) and the basic-block fusion engine (Tagsim.Fuse)
   must be observationally identical to the reference interpreter: every
   registry benchmark is compiled once per configuration and simulated
   under all three engines, and the result value, abort status, GC
   counters and every Stats counter must match exactly.  Targeted raw
   images then exercise the fused engine's dynamic-exit paths, where the
   pre-summed block statistics must be unwound: generic-arithmetic traps
   with a [rett] resume, squashing branches, fuel exhaustion inside a
   block, checked-load type traps and division by zero mid-block, and
   the load-use interlock both resolved statically inside a block and
   probed dynamically at a block boundary.  The parallel measurement
   pool must likewise be oblivious to the worker count. *)

module P = Tagsim.Program
module Stats = Tagsim.Stats
module Scheme = Tagsim.Scheme
module Support = Tagsim.Support
module Run = Tagsim.Analysis.Run
module B = Tagsim.Benchmarks
module Machine = Tagsim.Machine
module Predecode = Tagsim.Predecode
module Fuse = Tagsim.Fuse
module Insn = Tagsim.Insn
module Reg = Tagsim.Reg
module Buf = Tagsim.Buf
module Sched = Tagsim.Sched
module Image = Tagsim.Image

(* Software checking exercises the inline check/extract sequences and
   the generic-arithmetic trap path; row7 exercises the checked memory
   ops, btag branches and the hardware trap path. *)
let configs =
  [
    ("high5 chk/software", Scheme.high5, Support.with_checking Support.software);
    ("high5 chk/row7", Scheme.high5, Support.with_checking Support.row7);
  ]

let check_result name (a : P.result) (b : P.result) =
  Alcotest.(check (option string))
    (name ^ ": abort") a.P.abort b.P.abort;
  Alcotest.(check (option string))
    (name ^ ": value")
    (Option.map P.hval_to_string a.P.value)
    (Option.map P.hval_to_string b.P.value);
  Alcotest.(check int)
    (name ^ ": cycles")
    (Stats.total a.P.stats) (Stats.total b.P.stats);
  Alcotest.(check int)
    (name ^ ": insns")
    (Stats.executed_insns a.P.stats)
    (Stats.executed_insns b.P.stats);
  Alcotest.(check bool)
    (name ^ ": all stats counters") true
    (Stats.equal a.P.stats b.P.stats);
  Alcotest.(check int)
    (name ^ ": gc collections") a.P.gc_collections b.P.gc_collections;
  Alcotest.(check int)
    (name ^ ": gc bytes copied") a.P.gc_bytes_copied b.P.gc_bytes_copied

let test_engines_agree (entry : B.entry) () =
  List.iter
    (fun (cname, scheme, support) ->
      let program =
        P.compile ~scheme ~support ~sizes:entry.B.sizes entry.B.source
      in
      let reference = P.run ~engine:`Reference program in
      let predecoded = P.run ~engine:`Predecoded program in
      let fused = P.run ~engine:`Fused program in
      check_result (entry.B.name ^ " " ^ cname ^ " pre") reference predecoded;
      check_result (entry.B.name ^ " " ^ cname ^ " fus") reference fused;
      Alcotest.(check (option string))
        (entry.B.name ^ " " ^ cname ^ ": no abort")
        None reference.P.abort)
    configs

(* --- Targeted raw images: the fused engine's dynamic exits. --- *)

let scheme = Scheme.high5
let hw = Scheme.machine_hw ~mem_bytes:(1 lsl 20) scheme

(* Assemble [build b] without the slot scheduler (slots are laid out by
   hand) and run it under one engine. *)
let assemble build =
  let b = Buf.create () in
  build b;
  Image.assemble ~sched:Sched.off b

let run_raw ?fuel ?(setup = fun _ -> ()) image engine =
  let m = Machine.create ?fuel ~engine ~hw image in
  (match engine with
  | `Reference -> ()
  | `Predecoded -> Predecode.attach m
  | `Fused -> Fuse.attach m);
  Machine.set_reg m Reg.rmask scheme.Scheme.data_mask;
  setup m;
  let outcome =
    try `Done (Machine.run m) with Machine.Out_of_fuel -> `Fuel
  in
  (outcome, Machine.stats m)

let outcome_str = function
  | `Fuel -> "out-of-fuel"
  | `Done (Machine.Halted v) -> Printf.sprintf "halted %d" v
  | `Done (Machine.Aborted c) -> Printf.sprintf "aborted %d" c

(* Run under all three engines; reference is ground truth. *)
let check_three name ?fuel ?setup image =
  let ro, rs = run_raw ?fuel ?setup image `Reference in
  let po, ps = run_raw ?fuel ?setup image `Predecoded in
  let fo, fs = run_raw ?fuel ?setup image `Fused in
  Alcotest.(check string)
    (name ^ ": predecoded outcome") (outcome_str ro) (outcome_str po);
  Alcotest.(check string)
    (name ^ ": fused outcome") (outcome_str ro) (outcome_str fo);
  Alcotest.(check bool)
    (name ^ ": predecoded stats") true (Stats.equal rs ps);
  Alcotest.(check bool) (name ^ ": fused stats") true (Stats.equal rs fs);
  (ro, rs)

let expect_outcome name expected (outcome, _) =
  Alcotest.(check string) (name ^ ": outcome") expected (outcome_str outcome)

let add = Insn.Alui (Insn.Add, Reg.t2, Reg.t2, 1)

(* A generic-arithmetic trap in the middle of a straight line, with a
   [settd]-patching handler and a [rett] resume: the trapping block must
   keep its executed prefix's statistics (including the trap's own issue
   cycle), charge the trap overhead, and resume at [epc] — which the
   fuser guarantees is a block leader. *)
let test_garith_rett () =
  let int_item n = Scheme.encode_int scheme n in
  let pair_item = Scheme.encode_ptr scheme Scheme.Pair (256 * 8) in
  let image =
    assemble (fun b ->
        Buf.emit b (Insn.Li (Reg.t0, int_item 5));
        Buf.emit b (Insn.Li (Reg.t1, pair_item));
        Buf.emit b (Insn.Alu (Insn.Add, Reg.t2, Reg.t0, Reg.t0));
        Buf.emit b (Insn.Add_gen (Reg.t3, Reg.t0, Reg.t1));
        (* resume point: the handler patched t3 to 42 *)
        Buf.emit b (Insn.Alui (Insn.Add, Reg.t3, Reg.t3, 1));
        Buf.emit b (Insn.Mv (Reg.v0, Reg.t3));
        Buf.emit b Insn.Halt;
        Buf.label b "gadd";
        Buf.emit b (Insn.Li (Reg.k0, 42));
        Buf.emit b (Insn.Settd Reg.k0);
        Buf.emit b Insn.Rett)
  in
  let setup m =
    Machine.set_gen_handlers m
      ~add:(Image.code_address image "gadd")
      ~sub:(Image.code_address image "gadd")
  in
  let r = check_three "garith-rett" ~setup image in
  expect_outcome "garith-rett" "halted 43" r;
  Alcotest.(check int) "garith-rett: one trap" 1 (snd r).Stats.traps

(* Squashing branches, both ways.  The assembler inserts the two delay
   slots itself (no-ops under [Sched.off]): a taken squashing branch
   executes its slots, a not-taken one annuls them — two cycles charged
   to the branch's slot, no instructions retired. *)
let test_squash_branch () =
  let branch cond target =
    Insn.B
      ( { Insn.cond; rs = Reg.t0; rt = Reg.t1; squash = true;
          hint = Insn.No_hint },
        target )
  in
  let image =
    assemble (fun b ->
        Buf.emit b (Insn.Li (Reg.t0, 1));
        Buf.emit b (Insn.Li (Reg.t1, 1));
        Buf.emit b (Insn.Li (Reg.t2, 0));
        (* taken squashing branch: both (no-op) slots execute *)
        Buf.emit b (branch Insn.Eq "l1");
        Buf.label b "l1";
        (* not-taken squashing branch: both slots annulled *)
        Buf.emit b (branch Insn.Ne "bad");
        Buf.emit b (Insn.Mv (Reg.v0, Reg.t2));
        Buf.emit b Insn.Halt;
        Buf.label b "bad";
        Buf.emit b (Insn.Trap 1))
  in
  let r = check_three "squash-branch" image in
  expect_outcome "squash-branch" "halted 0" r;
  Alcotest.(check int) "squash-branch: two squashed slots" 2
    (snd r).Stats.squashed;
  (* 3 li + taken branch + its 2 slot no-ops + not-taken branch + mv +
     halt; the annulled slots retire nothing *)
  Alcotest.(check int) "squash-branch: nine retirements" 9
    (Stats.executed_insns (snd r))

(* Fuel exhaustion in the middle of what fusion makes a single block:
   the fused engine must stop at the identical retirement count (it
   falls back to per-instruction execution when the remaining fuel does
   not cover the block). *)
let test_fuel_exhaustion () =
  let image =
    assemble (fun b ->
        for _ = 1 to 10 do
          Buf.emit b add
        done;
        Buf.emit b (Insn.Mv (Reg.v0, Reg.t2));
        Buf.emit b Insn.Halt)
  in
  let r = check_three "fuel-mid-block" ~fuel:5 image in
  expect_outcome "fuel-mid-block" "out-of-fuel" r;
  Alcotest.(check int) "fuel-mid-block: five retirements" 5
    (Stats.executed_insns (snd r));
  (* one fuel step past the block's end: the halt still fires *)
  expect_outcome "fuel-after-block" "halted 10"
    (check_three "fuel-after-block" ~fuel:12 image)

(* A checked load whose address operand carries the wrong tag aborts the
   block after its executed prefix; the pre-summed statistics of the
   unexecuted suffix must be unwound (the load's own issue cycle
   stands — the reference charges before it traps). *)
let test_checked_load_trap () =
  let pair_tag = scheme.Scheme.tag Scheme.Pair in
  let image =
    assemble (fun b ->
        Buf.emit b (Insn.Li (Reg.t0, Scheme.encode_int scheme 7));
        Buf.emit b (Insn.Li (Reg.t2, 0));
        Buf.emit b (Insn.Alui (Insn.Add, Reg.t2, Reg.t2, 5));
        Buf.emit b (Insn.Ld (Insn.Checked pair_tag, Reg.t1, Reg.t0, 0));
        Buf.emit b (Insn.Alui (Insn.Add, Reg.t2, Reg.t2, 100));
        Buf.emit b (Insn.Mv (Reg.v0, Reg.t2));
        Buf.emit b Insn.Halt)
  in
  let r = check_three "checked-load-trap" image in
  expect_outcome "checked-load-trap"
    (Printf.sprintf "aborted %d" Machine.err_type)
    r;
  Alcotest.(check int) "checked-load-trap: four retirements" 4
    (Stats.executed_insns (snd r))

(* Division by zero mid-block: the divide retires (it is counted) but
   its cycles are never charged, and the block suffix is unwound. *)
let test_div_zero () =
  let image =
    assemble (fun b ->
        Buf.emit b (Insn.Li (Reg.t0, 10));
        Buf.emit b (Insn.Li (Reg.t1, 0));
        Buf.emit b (Insn.Alu (Insn.Div, Reg.t2, Reg.t0, Reg.t1));
        Buf.emit b add;
        Buf.emit b Insn.Halt)
  in
  let r = check_three "div-zero" image in
  expect_outcome "div-zero" (Printf.sprintf "aborted %d" Machine.err_div0) r;
  Alcotest.(check int) "div-zero: three retirements" 3
    (Stats.executed_insns (snd r))

(* Load-use interlocks: resolved statically between adjacent in-block
   instructions, probed dynamically at a block boundary (here the load
   sits in the second delay slot, so the interlock lands on the first
   instruction of the jump's target block). *)
let test_interlocks () =
  let in_block =
    assemble (fun b ->
        Buf.emit b (Insn.Li (Reg.t0, 256));
        Buf.emit b (Insn.Li (Reg.t1, 7));
        Buf.emit b (Insn.St (Insn.Plain, Reg.t0, Reg.t1, 0));
        Buf.emit b (Insn.Ld (Insn.Plain, Reg.t2, Reg.t0, 0));
        Buf.emit b (Insn.Alu (Insn.Add, Reg.v0, Reg.t2, Reg.t2));
        Buf.emit b Insn.Halt)
  in
  let r = check_three "interlock-in-block" in_block in
  expect_outcome "interlock-in-block" "halted 14" r;
  Alcotest.(check int) "interlock-in-block: one interlock" 1
    (snd r).Stats.interlocks;
  (* A code label is a block leader, so it splits the straight line
     between the load and its use: the interlock crosses the block
     boundary and must be caught by the fused engine's dynamic
     block-entry probe. *)
  let across_blocks =
    assemble (fun b ->
        Buf.emit b (Insn.Li (Reg.t0, 256));
        Buf.emit b (Insn.Li (Reg.t1, 9));
        Buf.emit b (Insn.St (Insn.Plain, Reg.t0, Reg.t1, 0));
        Buf.emit b (Insn.Ld (Insn.Plain, Reg.t2, Reg.t0, 0));
        Buf.label b "l";
        Buf.emit b (Insn.Alu (Insn.Add, Reg.v0, Reg.t2, Reg.t2));
        Buf.emit b Insn.Halt)
  in
  let r = check_three "interlock-across-blocks" across_blocks in
  expect_outcome "interlock-across-blocks" "halted 18" r;
  Alcotest.(check int) "interlock-across-blocks: one interlock" 1
    (snd r).Stats.interlocks

(* Attaching an engine twice must not recompile: the closure and block
   arrays stay physically the same (the structural [= [||]] staleness
   test recompiled empty-code machines forever). *)
let test_attach_idempotent () =
  let image = assemble (fun b -> Buf.emit b Insn.Halt) in
  let m = Machine.create ~engine:`Fused ~hw image in
  Fuse.attach m;
  let exec = m.Machine.exec and blocks = m.Machine.blocks in
  Fuse.attach m;
  Predecode.attach m;
  Alcotest.(check bool) "exec array reused" true (exec == m.Machine.exec);
  Alcotest.(check bool) "block array reused" true (blocks == m.Machine.blocks)

(* The memoised matrix driver must return the same measurements, in the
   same order, for any worker count. *)
let test_pool_jobs_agree () =
  let entries = List.filteri (fun i _ -> i < 3) (Run.all_entries ()) in
  let matrix =
    List.concat_map
      (fun e ->
        [
          Run.config ~scheme:Scheme.high5 ~support:Support.software e;
          Run.config ~scheme:Scheme.high5
            ~support:(Support.with_checking Support.software) e;
          (* a duplicate: run_many must dedupe and still return it *)
          Run.config ~scheme:Scheme.high5 ~support:Support.software e;
        ])
      entries
  in
  Run.clear_cache ();
  let serial = Run.run_many ~jobs:1 matrix in
  Run.clear_cache ();
  let parallel = Run.run_many ~jobs:4 matrix in
  Run.clear_cache ();
  Alcotest.(check int)
    "measurement count" (List.length matrix) (List.length serial);
  List.iter2
    (fun (a : Run.measurement) (b : Run.measurement) ->
      Alcotest.(check string)
        "input order preserved" a.Run.entry.B.name b.Run.entry.B.name;
      Alcotest.(check bool)
        (a.Run.entry.B.name ^ ": stats identical across job counts")
        true
        (Stats.equal a.Run.stats b.Run.stats);
      Alcotest.(check int)
        (a.Run.entry.B.name ^ ": gc collections")
        a.Run.gc_collections b.Run.gc_collections)
    serial parallel

let suite =
  [
    ( "engines",
      List.map
        (fun (e : B.entry) ->
          Alcotest.test_case e.B.name `Slow (test_engines_agree e))
        (B.all ())
      @ [
          Alcotest.test_case "garith-rett" `Quick test_garith_rett;
          Alcotest.test_case "squash-branch" `Quick test_squash_branch;
          Alcotest.test_case "fuel-exhaustion" `Quick test_fuel_exhaustion;
          Alcotest.test_case "checked-load-trap" `Quick
            test_checked_load_trap;
          Alcotest.test_case "div-zero" `Quick test_div_zero;
          Alcotest.test_case "interlocks" `Quick test_interlocks;
          Alcotest.test_case "attach-idempotent" `Quick
            test_attach_idempotent;
          Alcotest.test_case "pool-jobs" `Quick test_pool_jobs_agree;
        ] );
  ]
