(* Differential engine testing.  The predecoded closure engine
   (Tagsim.Predecode), the basic-block fusion engine (Tagsim.Fuse) and
   the superblock trace engine (Tagsim.Trace) must be observationally
   identical to the reference interpreter: every registry benchmark is
   compiled once per (scheme x named support) configuration and
   simulated under all four engines, and the result value, abort
   status, GC counters and every Stats counter must match exactly.
   Targeted raw images then exercise the dynamic-exit paths, where the
   pre-summed block and trace statistics must be unwound:
   generic-arithmetic traps with a [rett] resume, squashing branches,
   fuel exhaustion inside a block or a trace, checked-load type traps
   and division by zero mid-block, load-use interlocks resolved
   statically or probed at a block boundary, hot-loop trace promotion,
   and every superblock side exit (branch misprediction, squash
   annulment both ways, indirect-jump guard failure, traps and fuel
   exhaustion mid-trace).  The parallel measurement pool must likewise
   be oblivious to the worker count. *)

module P = Tagsim.Program
module Stats = Tagsim.Stats
module Scheme = Tagsim.Scheme
module Support = Tagsim.Support
module Run = Tagsim.Analysis.Run
module B = Tagsim.Benchmarks
module Machine = Tagsim.Machine
module Predecode = Tagsim.Predecode
module Fuse = Tagsim.Fuse
module Trace = Tagsim.Trace
module Insn = Tagsim.Insn
module Reg = Tagsim.Reg
module Buf = Tagsim.Buf
module Sched = Tagsim.Sched
module Image = Tagsim.Image

let check_result name (a : P.result) (b : P.result) =
  Alcotest.(check (option string))
    (name ^ ": abort") a.P.abort b.P.abort;
  Alcotest.(check (option string))
    (name ^ ": value")
    (Option.map P.hval_to_string a.P.value)
    (Option.map P.hval_to_string b.P.value);
  Alcotest.(check int)
    (name ^ ": cycles")
    (Stats.total a.P.stats) (Stats.total b.P.stats);
  Alcotest.(check int)
    (name ^ ": insns")
    (Stats.executed_insns a.P.stats)
    (Stats.executed_insns b.P.stats);
  Alcotest.(check bool)
    (name ^ ": all stats counters") true
    (Stats.equal a.P.stats b.P.stats);
  Alcotest.(check int)
    (name ^ ": gc collections") a.P.gc_collections b.P.gc_collections;
  Alcotest.(check int)
    (name ^ ": gc bytes copied") a.P.gc_bytes_copied b.P.gc_bytes_copied

(* The full configuration matrix: every tag scheme under every named
   hardware support row, with run-time checking enabled (checking emits
   the interesting tag sequences and trap paths).  The front end is
   analysed once per program and shared across the matrix. *)
let test_engines_agree (entry : B.entry) () =
  let fe = P.analyze entry.B.source in
  List.iter
    (fun (scheme : Scheme.t) ->
      List.iter
        (fun (sname, support) ->
          let support = Support.with_checking support in
          let cname = scheme.Scheme.name ^ "/" ^ sname in
          let program =
            P.compile_frontend ~sizes:entry.B.sizes ~scheme ~support fe
          in
          let reference = P.run ~engine:`Reference program in
          let predecoded = P.run ~engine:`Predecoded program in
          let fused = P.run ~engine:`Fused program in
          let traced = P.run ~engine:`Traced program in
          let nm leg = entry.B.name ^ " " ^ cname ^ " " ^ leg in
          check_result (nm "pre") reference predecoded;
          check_result (nm "fus") reference fused;
          check_result (nm "tra") reference traced;
          Alcotest.(check (option string))
            (nm "" ^ ": no abort") None reference.P.abort)
        Support.all_named)
    Scheme.all

(* --- Targeted raw images: the dynamic exits of the fused and traced
   engines. --- *)

let scheme = Scheme.high5
let hw = Scheme.machine_hw ~mem_bytes:(1 lsl 20) scheme

(* Assemble [build b] without the slot scheduler (slots are laid out by
   hand) and run it under one engine. *)
let assemble ?(sched = Sched.off) build =
  let b = Buf.create () in
  build b;
  Image.assemble ~sched b

let run_raw ?fuel ?threshold ?(setup = fun _ -> ()) image engine =
  let m = Machine.create ?fuel ~engine ~hw image in
  (match engine with
  | `Reference -> ()
  | `Predecoded -> Predecode.attach m
  | `Fused -> Fuse.attach m
  | `Traced -> Trace.attach ?threshold m);
  Machine.set_reg m Reg.rmask scheme.Scheme.data_mask;
  setup m;
  let outcome =
    try `Done (Machine.run m) with Machine.Out_of_fuel -> `Fuel
  in
  (outcome, Machine.stats m)

let outcome_str = function
  | `Fuel -> "out-of-fuel"
  | `Done (Machine.Halted v) -> Printf.sprintf "halted %d" v
  | `Done (Machine.Aborted c) -> Printf.sprintf "aborted %d" c

(* Run under all four engines; reference is ground truth.  [threshold]
   only lowers the traced engine's promotion threshold so short unit
   loops get hot. *)
let check_four name ?fuel ?threshold ?setup image =
  let ro, rs = run_raw ?fuel ?setup image `Reference in
  let po, ps = run_raw ?fuel ?setup image `Predecoded in
  let fo, fs = run_raw ?fuel ?setup image `Fused in
  let to_, ts = run_raw ?fuel ?threshold ?setup image `Traced in
  Alcotest.(check string)
    (name ^ ": predecoded outcome") (outcome_str ro) (outcome_str po);
  Alcotest.(check string)
    (name ^ ": fused outcome") (outcome_str ro) (outcome_str fo);
  Alcotest.(check string)
    (name ^ ": traced outcome") (outcome_str ro) (outcome_str to_);
  Alcotest.(check bool)
    (name ^ ": predecoded stats") true (Stats.equal rs ps);
  Alcotest.(check bool) (name ^ ": fused stats") true (Stats.equal rs fs);
  Alcotest.(check bool) (name ^ ": traced stats") true (Stats.equal rs ts);
  (ro, rs)

let expect_outcome name expected (outcome, _) =
  Alcotest.(check string) (name ^ ": outcome") expected (outcome_str outcome)

let add = Insn.Alui (Insn.Add, Reg.t2, Reg.t2, 1)

(* A generic-arithmetic trap in the middle of a straight line, with a
   [settd]-patching handler and a [rett] resume: the trapping block must
   keep its executed prefix's statistics (including the trap's own issue
   cycle), charge the trap overhead, and resume at [epc] — which the
   fuser guarantees is a block leader. *)
let test_garith_rett () =
  let int_item n = Scheme.encode_int scheme n in
  let pair_item = Scheme.encode_ptr scheme Scheme.Pair (256 * 8) in
  let image =
    assemble (fun b ->
        Buf.emit b (Insn.Li (Reg.t0, int_item 5));
        Buf.emit b (Insn.Li (Reg.t1, pair_item));
        Buf.emit b (Insn.Alu (Insn.Add, Reg.t2, Reg.t0, Reg.t0));
        Buf.emit b (Insn.Add_gen (Reg.t3, Reg.t0, Reg.t1));
        (* resume point: the handler patched t3 to 42 *)
        Buf.emit b (Insn.Alui (Insn.Add, Reg.t3, Reg.t3, 1));
        Buf.emit b (Insn.Mv (Reg.v0, Reg.t3));
        Buf.emit b Insn.Halt;
        Buf.label b "gadd";
        Buf.emit b (Insn.Li (Reg.k0, 42));
        Buf.emit b (Insn.Settd Reg.k0);
        Buf.emit b Insn.Rett)
  in
  let setup m =
    Machine.set_gen_handlers m
      ~add:(Image.code_address image "gadd")
      ~sub:(Image.code_address image "gadd")
  in
  let r = check_four "garith-rett" ~setup image in
  expect_outcome "garith-rett" "halted 43" r;
  Alcotest.(check int) "garith-rett: one trap" 1 (snd r).Stats.traps

(* Squashing branches, both ways.  The assembler inserts the two delay
   slots itself (no-ops under [Sched.off]): a taken squashing branch
   executes its slots, a not-taken one annuls them — two cycles charged
   to the branch's slot, no instructions retired. *)
let test_squash_branch () =
  let branch cond target =
    Insn.B
      ( { Insn.cond; rs = Reg.t0; rt = Reg.t1; squash = true;
          hint = Insn.No_hint },
        target )
  in
  let image =
    assemble (fun b ->
        Buf.emit b (Insn.Li (Reg.t0, 1));
        Buf.emit b (Insn.Li (Reg.t1, 1));
        Buf.emit b (Insn.Li (Reg.t2, 0));
        (* taken squashing branch: both (no-op) slots execute *)
        Buf.emit b (branch Insn.Eq "l1");
        Buf.label b "l1";
        (* not-taken squashing branch: both slots annulled *)
        Buf.emit b (branch Insn.Ne "bad");
        Buf.emit b (Insn.Mv (Reg.v0, Reg.t2));
        Buf.emit b Insn.Halt;
        Buf.label b "bad";
        Buf.emit b (Insn.Trap 1))
  in
  let r = check_four "squash-branch" image in
  expect_outcome "squash-branch" "halted 0" r;
  Alcotest.(check int) "squash-branch: two squashed slots" 2
    (snd r).Stats.squashed;
  (* 3 li + taken branch + its 2 slot no-ops + not-taken branch + mv +
     halt; the annulled slots retire nothing *)
  Alcotest.(check int) "squash-branch: nine retirements" 9
    (Stats.executed_insns (snd r))

(* Fuel exhaustion in the middle of what fusion makes a single block:
   the fused engine must stop at the identical retirement count (it
   falls back to per-instruction execution when the remaining fuel does
   not cover the block). *)
let test_fuel_exhaustion () =
  let image =
    assemble (fun b ->
        for _ = 1 to 10 do
          Buf.emit b add
        done;
        Buf.emit b (Insn.Mv (Reg.v0, Reg.t2));
        Buf.emit b Insn.Halt)
  in
  let r = check_four "fuel-mid-block" ~fuel:5 image in
  expect_outcome "fuel-mid-block" "out-of-fuel" r;
  Alcotest.(check int) "fuel-mid-block: five retirements" 5
    (Stats.executed_insns (snd r));
  (* one fuel step past the block's end: the halt still fires *)
  expect_outcome "fuel-after-block" "halted 10"
    (check_four "fuel-after-block" ~fuel:12 image)

(* A checked load whose address operand carries the wrong tag aborts the
   block after its executed prefix; the pre-summed statistics of the
   unexecuted suffix must be unwound (the load's own issue cycle
   stands — the reference charges before it traps). *)
let test_checked_load_trap () =
  let pair_tag = scheme.Scheme.tag Scheme.Pair in
  let image =
    assemble (fun b ->
        Buf.emit b (Insn.Li (Reg.t0, Scheme.encode_int scheme 7));
        Buf.emit b (Insn.Li (Reg.t2, 0));
        Buf.emit b (Insn.Alui (Insn.Add, Reg.t2, Reg.t2, 5));
        Buf.emit b (Insn.Ld (Insn.Checked pair_tag, Reg.t1, Reg.t0, 0));
        Buf.emit b (Insn.Alui (Insn.Add, Reg.t2, Reg.t2, 100));
        Buf.emit b (Insn.Mv (Reg.v0, Reg.t2));
        Buf.emit b Insn.Halt)
  in
  let r = check_four "checked-load-trap" image in
  expect_outcome "checked-load-trap"
    (Printf.sprintf "aborted %d" Machine.err_type)
    r;
  Alcotest.(check int) "checked-load-trap: four retirements" 4
    (Stats.executed_insns (snd r))

(* Division by zero mid-block: the divide retires (it is counted) but
   its cycles are never charged, and the block suffix is unwound. *)
let test_div_zero () =
  let image =
    assemble (fun b ->
        Buf.emit b (Insn.Li (Reg.t0, 10));
        Buf.emit b (Insn.Li (Reg.t1, 0));
        Buf.emit b (Insn.Alu (Insn.Div, Reg.t2, Reg.t0, Reg.t1));
        Buf.emit b add;
        Buf.emit b Insn.Halt)
  in
  let r = check_four "div-zero" image in
  expect_outcome "div-zero" (Printf.sprintf "aborted %d" Machine.err_div0) r;
  Alcotest.(check int) "div-zero: three retirements" 3
    (Stats.executed_insns (snd r))

(* Load-use interlocks: resolved statically between adjacent in-block
   instructions, probed dynamically at a block boundary (here the load
   sits in the second delay slot, so the interlock lands on the first
   instruction of the jump's target block). *)
let test_interlocks () =
  let in_block =
    assemble (fun b ->
        Buf.emit b (Insn.Li (Reg.t0, 256));
        Buf.emit b (Insn.Li (Reg.t1, 7));
        Buf.emit b (Insn.St (Insn.Plain, Reg.t0, Reg.t1, 0));
        Buf.emit b (Insn.Ld (Insn.Plain, Reg.t2, Reg.t0, 0));
        Buf.emit b (Insn.Alu (Insn.Add, Reg.v0, Reg.t2, Reg.t2));
        Buf.emit b Insn.Halt)
  in
  let r = check_four "interlock-in-block" in_block in
  expect_outcome "interlock-in-block" "halted 14" r;
  Alcotest.(check int) "interlock-in-block: one interlock" 1
    (snd r).Stats.interlocks;
  (* A code label is a block leader, so it splits the straight line
     between the load and its use: the interlock crosses the block
     boundary and must be caught by the fused engine's dynamic
     block-entry probe. *)
  let across_blocks =
    assemble (fun b ->
        Buf.emit b (Insn.Li (Reg.t0, 256));
        Buf.emit b (Insn.Li (Reg.t1, 9));
        Buf.emit b (Insn.St (Insn.Plain, Reg.t0, Reg.t1, 0));
        Buf.emit b (Insn.Ld (Insn.Plain, Reg.t2, Reg.t0, 0));
        Buf.label b "l";
        Buf.emit b (Insn.Alu (Insn.Add, Reg.v0, Reg.t2, Reg.t2));
        Buf.emit b Insn.Halt)
  in
  let r = check_four "interlock-across-blocks" across_blocks in
  expect_outcome "interlock-across-blocks" "halted 18" r;
  Alcotest.(check int) "interlock-across-blocks: one interlock" 1
    (snd r).Stats.interlocks

(* Attaching an engine twice must not recompile: the closure and block
   arrays stay physically the same (the structural [= [||]] staleness
   test recompiled empty-code machines forever). *)
let test_attach_idempotent () =
  let image = assemble (fun b -> Buf.emit b Insn.Halt) in
  let m = Machine.create ~engine:`Fused ~hw image in
  Fuse.attach m;
  let exec = m.Machine.exec and blocks = m.Machine.blocks in
  Fuse.attach m;
  Predecode.attach m;
  Alcotest.(check bool) "exec array reused" true (exec == m.Machine.exec);
  Alcotest.(check bool) "block array reused" true (blocks == m.Machine.blocks)

(* --- Superblock traces: promotion, side exits, exactness. --- *)

let branch ?(squash = false) cond rs rt target =
  Insn.B ({ Insn.cond; rs; rt; squash; hint = Insn.No_hint }, target)

(* A two-block counted loop (traces need at least two segments, so the
   body is split by a jump): [t2] counts iterations, the back branch
   falls through after [n] of them. *)
let counted_loop ?squash n =
  assemble (fun b ->
      Buf.emit b (Insn.Li (Reg.t0, 0));
      Buf.emit b (Insn.Li (Reg.t1, n));
      Buf.emit b (Insn.Li (Reg.t2, 0));
      Buf.label b "loop";
      Buf.emit b (Insn.Alui (Insn.Add, Reg.t2, Reg.t2, 1));
      Buf.emit b (Insn.J "mid");
      Buf.label b "mid";
      Buf.emit b (Insn.Alui (Insn.Add, Reg.t0, Reg.t0, 1));
      Buf.emit b (branch ?squash Insn.Ne Reg.t0 Reg.t1 "loop");
      Buf.emit b (Insn.Mv (Reg.v0, Reg.t2));
      Buf.emit b Insn.Halt)

let trace_count (m : Machine.t) =
  match m.Machine.tstate with
  | None -> 0
  | Some ts ->
      Array.fold_left
        (fun n t -> if Option.is_some t then n + 1 else n)
        0 ts.Machine.ts_traces

(* Hot-threshold promotion: a loop executing under the threshold stays
   in tier 1 (no trace), over it gets a superblock — and either way the
   statistics match the reference exactly. *)
let test_trace_promotion () =
  let image = counted_loop 50 in
  let run_and_count threshold =
    let m = Machine.create ~engine:`Traced ~hw image in
    Trace.attach ~threshold m;
    Machine.set_reg m Reg.rmask scheme.Scheme.data_mask;
    ignore (Machine.run m);
    trace_count m
  in
  Alcotest.(check int) "cold loop: no trace" 0
    (run_and_count 1_000_000);
  Alcotest.(check bool) "hot loop: trace formed" true (run_and_count 4 > 0);
  let tt0 = Machine.trace_counters () in
  let r = check_four "trace-promotion" ~threshold:4 image in
  expect_outcome "trace-promotion" "halted 50" r;
  let tt1 = Machine.trace_counters () in
  Alcotest.(check bool) "trace counters advanced" true
    (tt1.Machine.tt_formed > tt0.Machine.tt_formed
    && tt1.Machine.tt_entries > tt0.Machine.tt_entries
    && tt1.Machine.tt_in_trace > tt0.Machine.tt_in_trace)

(* The loop's final iteration mispredicts the back branch: a side exit
   must roll the pre-summed trace statistics back to the exact per-block
   deltas. *)
let test_trace_side_exit () =
  let tt0 = Machine.trace_counters () in
  let r = check_four "trace-side-exit" ~threshold:4 (counted_loop 37) in
  expect_outcome "trace-side-exit" "halted 37" r;
  let tt1 = Machine.trace_counters () in
  Alcotest.(check bool) "side exit taken" true
    (tt1.Machine.tt_side_exits > tt0.Machine.tt_side_exits)

(* A squashing back branch: the trace pre-sums the slots of the
   expected taken path; the final not-taken iteration side-exits and
   must replace them with the annul accounting (2 squashed cycles). *)
let test_trace_squash_taken () =
  let r =
    check_four "trace-squash-taken" ~threshold:4
      (counted_loop ~squash:true 29)
  in
  expect_outcome "trace-squash-taken" "halted 29" r;
  Alcotest.(check int) "trace-squash-taken: one annulled pair" 2
    (snd r).Stats.squashed

(* The opposite polarity: a squashing exit branch that is almost never
   taken.  The trace pre-sums the annul accounting of the expected
   fall-through; the final taken iteration must undo it, charge the
   slots as executed, and run them on the way out. *)
let test_trace_squash_fall () =
  let n = 23 in
  let image =
    assemble (fun b ->
        Buf.emit b (Insn.Li (Reg.t0, 0));
        Buf.emit b (Insn.Li (Reg.t1, n));
        Buf.emit b (Insn.Li (Reg.t2, 0));
        Buf.label b "loop";
        Buf.emit b (Insn.Alui (Insn.Add, Reg.t2, Reg.t2, 1));
        Buf.emit b (Insn.Alui (Insn.Add, Reg.t0, Reg.t0, 1));
        Buf.emit b (branch ~squash:true Insn.Eq Reg.t0 Reg.t1 "done");
        Buf.emit b (Insn.J "loop");
        Buf.label b "done";
        Buf.emit b (Insn.Mv (Reg.v0, Reg.t2));
        Buf.emit b Insn.Halt)
  in
  let r = check_four "trace-squash-fall" ~threshold:4 image in
  expect_outcome "trace-squash-fall" (Printf.sprintf "halted %d" n) r;
  (* every not-taken iteration annuls the two slots *)
  Alcotest.(check int) "trace-squash-fall: annulled pairs" (2 * (n - 1))
    (snd r).Stats.squashed

(* An indirect jump whose target is loaded from a dispatch table: the
   trace guards on the dominant target, and the final iteration (whose
   table entry points at the exit) must fail the guard and side-exit
   with exact rollback. *)
let test_trace_indirect () =
  let n = 31 in
  let table = 2048 in
  let image =
    assemble (fun b ->
        Buf.emit b (Insn.Li (Reg.t2, 0));
        Buf.emit b (Insn.Li (Reg.t4, table));
        Buf.label b "loop";
        Buf.emit b (Insn.Alui (Insn.Add, Reg.t2, Reg.t2, 1));
        Buf.emit b (Insn.J "mid");
        Buf.label b "mid";
        Buf.emit b (Insn.Ld (Insn.Plain, Reg.t3, Reg.t4, 0));
        Buf.emit b (Insn.Alui (Insn.Add, Reg.t4, Reg.t4, 4));
        Buf.emit b (Insn.Jr Reg.t3);
        Buf.label b "done";
        Buf.emit b (Insn.Mv (Reg.v0, Reg.t2));
        Buf.emit b Insn.Halt)
  in
  let setup m =
    let loop = Image.code_address image "loop" in
    let done_ = Image.code_address image "done" in
    for i = 0 to n - 2 do
      Machine.poke m (table + (4 * i)) loop
    done;
    Machine.poke m (table + (4 * (n - 1))) done_
  in
  let r = check_four "trace-indirect" ~threshold:4 ~setup image in
  expect_outcome "trace-indirect" (Printf.sprintf "halted %d" n) r

(* Division by zero on a late iteration: the abort lands mid-trace and
   the unexecuted suffix (including the divide's own cycles) must be
   unwound. *)
let test_trace_div_zero () =
  let image =
    assemble (fun b ->
        Buf.emit b (Insn.Li (Reg.t0, 0));
        Buf.emit b (Insn.Li (Reg.t1, 20));
        Buf.emit b (Insn.Li (Reg.t6, 100));
        Buf.label b "loop";
        Buf.emit b (Insn.Alu (Insn.Sub, Reg.t4, Reg.t1, Reg.t0));
        Buf.emit b (Insn.J "mid");
        Buf.label b "mid";
        (* t4 = 20 - t0: reaches zero at t0 = 20, well before the
           (never-satisfied) loop bound of 100 *)
        Buf.emit b (Insn.Alu (Insn.Div, Reg.t5, Reg.t1, Reg.t4));
        Buf.emit b (Insn.Alui (Insn.Add, Reg.t0, Reg.t0, 1));
        Buf.emit b (branch Insn.Ne Reg.t0 Reg.t6 "loop");
        Buf.emit b (Insn.Mv (Reg.v0, Reg.t0));
        Buf.emit b Insn.Halt)
  in
  let r = check_four "trace-div-zero" ~threshold:4 image in
  expect_outcome "trace-div-zero"
    (Printf.sprintf "aborted %d" Machine.err_div0)
    r

(* A generic-arithmetic trap on the last iteration, with a settd/rett
   handler: the trap side-exits the trace, the handler patches the
   result, and execution resumes at [epc] mid-loop. *)
let test_trace_garith () =
  let n = 27 in
  let table = 2048 in
  let int_item k = Scheme.encode_int scheme k in
  let pair_item = Scheme.encode_ptr scheme Scheme.Pair (256 * 8) in
  let image =
    assemble (fun b ->
        Buf.emit b (Insn.Li (Reg.t0, 0));
        Buf.emit b (Insn.Li (Reg.t1, n));
        Buf.emit b (Insn.Li (Reg.t4, table));
        Buf.emit b (Insn.Li (Reg.t6, int_item 1));
        Buf.label b "loop";
        Buf.emit b (Insn.Ld (Insn.Plain, Reg.t3, Reg.t4, 0));
        Buf.emit b (Insn.Alui (Insn.Add, Reg.t4, Reg.t4, 4));
        Buf.emit b (Insn.J "mid");
        Buf.label b "mid";
        Buf.emit b (Insn.Add_gen (Reg.t5, Reg.t3, Reg.t6));
        Buf.emit b (Insn.Alui (Insn.Add, Reg.t0, Reg.t0, 1));
        Buf.emit b (branch Insn.Ne Reg.t0 Reg.t1 "loop");
        Buf.emit b (Insn.Mv (Reg.v0, Reg.t0));
        Buf.emit b Insn.Halt;
        Buf.label b "gadd";
        Buf.emit b (Insn.Li (Reg.k0, int_item 42));
        Buf.emit b (Insn.Settd Reg.k0);
        Buf.emit b Insn.Rett)
  in
  let setup m =
    for i = 0 to n - 2 do
      Machine.poke m (table + (4 * i)) (int_item i)
    done;
    Machine.poke m (table + (4 * (n - 1))) pair_item;
    Machine.set_gen_handlers m
      ~add:(Image.code_address image "gadd")
      ~sub:(Image.code_address image "gadd")
  in
  let r = check_four "trace-garith" ~threshold:4 ~setup image in
  expect_outcome "trace-garith" (Printf.sprintf "halted %d" n) r;
  Alcotest.(check int) "trace-garith: one trap" 1 (snd r).Stats.traps

(* A load scheduled into the second delay slot of a hot back branch:
   inside the trace the interlock on the next segment's first
   instruction must be resolved statically across the junction (the
   reference probes it dynamically at every block entry). *)
let test_trace_cross_interlock () =
  let n = 25 in
  let hoist_only =
    { Sched.hoist = true; fill_unlikely = false; squash_likely = false }
  in
  let image =
    assemble ~sched:hoist_only (fun b ->
        Buf.emit b (Insn.Li (Reg.t0, 256));
        Buf.emit b (Insn.Li (Reg.t1, 7));
        Buf.emit b (Insn.St (Insn.Plain, Reg.t0, Reg.t1, 0));
        Buf.emit b (Insn.Li (Reg.t5, 0));
        Buf.emit b (Insn.Li (Reg.t6, n));
        Buf.emit b (Insn.Li (Reg.t7, 7));
        Buf.emit b (Insn.Li (Reg.t2, 7));
        Buf.label b "loop";
        Buf.emit b (Insn.Alui (Insn.Add, Reg.t5, Reg.t5, 1));
        (* hoist fodder: both land in the back branch's slots, the
           load second *)
        Buf.emit b (Insn.Alu (Insn.Add, Reg.t8, Reg.t7, Reg.t7));
        Buf.emit b (Insn.Ld (Insn.Plain, Reg.t2, Reg.t0, 0));
        Buf.emit b (branch Insn.Ne Reg.t5 Reg.t6 "mid");
        Buf.emit b (Insn.Mv (Reg.v0, Reg.t5));
        Buf.emit b Insn.Halt;
        Buf.label b "mid";
        (* reads the just-loaded t2 as the first instruction after the
           junction: one interlock per iteration *)
        Buf.emit b (branch Insn.Eq Reg.t2 Reg.t7 "loop");
        Buf.emit b (Insn.Trap 1))
  in
  let r = check_four "trace-cross-interlock" ~threshold:4 image in
  expect_outcome "trace-cross-interlock" (Printf.sprintf "halted %d" n) r;
  Alcotest.(check bool) "trace-cross-interlock: interlocks probed" true
    ((snd r).Stats.interlocks >= n - 2)

(* Fuel exhaustion while the loop is running traced: the traced engine
   pre-pays a whole trace, so it must fall back to blocks (and then to
   single steps) and stop at the identical retirement count. *)
let test_trace_fuel () =
  let r = check_four "trace-fuel" ~threshold:4 ~fuel:97 (counted_loop 50) in
  expect_outcome "trace-fuel" "out-of-fuel" r;
  let _, rs = run_raw ~fuel:97 (counted_loop 50) `Reference in
  Alcotest.(check int) "trace-fuel: retirements"
    (Stats.executed_insns rs)
    (Stats.executed_insns (snd r))

(* Attaching the traced engine twice must keep the same profile and
   trace state (the length guard recompiles only when the code
   changes). *)
let test_trace_attach_idempotent () =
  let m = Machine.create ~engine:`Traced ~hw (counted_loop 10) in
  Trace.attach m;
  let ts0 =
    match m.Machine.tstate with
    | Some ts -> ts
    | None -> Alcotest.fail "attach installed no trace state"
  in
  Trace.attach m;
  (match m.Machine.tstate with
  | Some ts1 ->
      Alcotest.(check bool) "trace state reused" true (ts0 == ts1)
  | None -> Alcotest.fail "re-attach dropped the trace state");
  Alcotest.(check bool) "fused blocks attached too" true
    (Array.length m.Machine.blocks > 0)

(* The memoised matrix driver must return the same measurements, in the
   same order, for any worker count. *)
let test_pool_jobs_agree () =
  let entries = List.filteri (fun i _ -> i < 3) (Run.all_entries ()) in
  let matrix =
    List.concat_map
      (fun e ->
        [
          Run.config ~scheme:Scheme.high5 ~support:Support.software e;
          Run.config ~scheme:Scheme.high5
            ~support:(Support.with_checking Support.software) e;
          (* a duplicate: run_many must dedupe and still return it *)
          Run.config ~scheme:Scheme.high5 ~support:Support.software e;
        ])
      entries
  in
  Run.clear_cache ();
  let serial = Run.run_many ~jobs:1 matrix in
  Run.clear_cache ();
  let parallel = Run.run_many ~jobs:4 matrix in
  Run.clear_cache ();
  Alcotest.(check int)
    "measurement count" (List.length matrix) (List.length serial);
  List.iter2
    (fun (a : Run.measurement) (b : Run.measurement) ->
      Alcotest.(check string)
        "input order preserved" a.Run.entry.B.name b.Run.entry.B.name;
      Alcotest.(check bool)
        (a.Run.entry.B.name ^ ": stats identical across job counts")
        true
        (Stats.equal a.Run.stats b.Run.stats);
      Alcotest.(check int)
        (a.Run.entry.B.name ^ ": gc collections")
        a.Run.gc_collections b.Run.gc_collections)
    serial parallel

let suite =
  [
    ( "engines",
      List.map
        (fun (e : B.entry) ->
          Alcotest.test_case e.B.name `Slow (test_engines_agree e))
        (B.all ())
      @ [
          Alcotest.test_case "garith-rett" `Quick test_garith_rett;
          Alcotest.test_case "squash-branch" `Quick test_squash_branch;
          Alcotest.test_case "fuel-exhaustion" `Quick test_fuel_exhaustion;
          Alcotest.test_case "checked-load-trap" `Quick
            test_checked_load_trap;
          Alcotest.test_case "div-zero" `Quick test_div_zero;
          Alcotest.test_case "interlocks" `Quick test_interlocks;
          Alcotest.test_case "attach-idempotent" `Quick
            test_attach_idempotent;
          Alcotest.test_case "trace-promotion" `Quick test_trace_promotion;
          Alcotest.test_case "trace-side-exit" `Quick test_trace_side_exit;
          Alcotest.test_case "trace-squash-taken" `Quick
            test_trace_squash_taken;
          Alcotest.test_case "trace-squash-fall" `Quick
            test_trace_squash_fall;
          Alcotest.test_case "trace-indirect" `Quick test_trace_indirect;
          Alcotest.test_case "trace-div-zero" `Quick test_trace_div_zero;
          Alcotest.test_case "trace-garith" `Quick test_trace_garith;
          Alcotest.test_case "trace-cross-interlock" `Quick
            test_trace_cross_interlock;
          Alcotest.test_case "trace-fuel" `Quick test_trace_fuel;
          Alcotest.test_case "trace-attach-idempotent" `Quick
            test_trace_attach_idempotent;
          Alcotest.test_case "pool-jobs" `Quick test_pool_jobs_agree;
        ] );
  ]
