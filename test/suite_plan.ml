(* The experiment-plan layer: the planner's global deduplicated fan-out,
   the structured sinks, and golden numbers for a reduced-size plan
   under the reference engine. *)

module B = Tagsim.Benchmarks
module Run = Tagsim.Analysis.Run
module Spec = Tagsim.Analysis.Spec
module Planner = Tagsim.Analysis.Planner
module Support = Tagsim.Support

(* --- JSON access helpers (the tree is a plain variant) --- *)

let member k = function
  | Spec.J_obj fields -> (
      match List.assoc_opt k fields with
      | Some v -> v
      | None -> Alcotest.failf "JSON object has no member %S" k)
  | _ -> Alcotest.failf "not a JSON object (looking for %S)" k

let fnum = function
  | Spec.J_float f -> f
  | Spec.J_int i -> float_of_int i
  | _ -> Alcotest.fail "not a JSON number"

let jlist = function
  | Spec.J_list l -> l
  | _ -> Alcotest.fail "not a JSON list"

let entries_named names =
  List.filter (fun (e : B.entry) -> List.mem e.B.name names) (B.all ())

(* --- the planner simulates each distinct configuration exactly once --- *)

let test_planner_dedup () =
  let entries = entries_named [ "inter"; "deduce" ] in
  (* Overlapping matrices: table1 and figure1 declare identical cells,
     figure2 shares the no-checking base, table3 is a subset. *)
  let arts =
    List.map
      (fun n -> Option.get (Planner.find n))
      [ "table1"; "figure1"; "figure2"; "table3" ]
  in
  let distinct =
    let seen = Hashtbl.create 32 in
    List.iter
      (fun (a : Spec.artifact) ->
        List.iter
          (fun c -> Hashtbl.replace seen (Run.config_key c) ())
          (a.Spec.a_configs entries))
      arts;
    Hashtbl.length seen
  in
  (* The union here is 2 programs x (software, software+rtc, row1): the
     overlap between the four artifacts collapses to six cells. *)
  Alcotest.(check int) "expected distinct cells" 6 distinct;
  Run.clear_cache ();
  Run.reset_simulations ();
  let rendered = Planner.plan ~jobs:1 ~entries arts in
  Alcotest.(check int) "one simulation per distinct config" distinct
    (Run.simulations ());
  Alcotest.(check int) "every artifact rendered" (List.length arts)
    (List.length rendered);
  (* A second plan over the same matrix hits the memo cache: no new
     simulations at all. *)
  ignore (Planner.plan ~jobs:1 ~entries arts);
  Alcotest.(check int) "replanning simulates nothing" distinct
    (Run.simulations ())

(* --- golden numbers: full plan, reference engine, reduced suite --- *)

(* Locked headline values for the inter+trav suite under the reference
   engine (all engines are bit-identical, so these also lock the
   predecoded and fused engines through the differential suite).  If a
   legitimate cost-model change moves them, re-derive with:
     Planner.plan ~jobs:1 ~engine:`Reference
       ~entries:(inter+trav) Planner.artifacts *)
let test_golden_numbers () =
  Run.clear_cache ();
  let entries = entries_named [ "inter"; "trav" ] in
  let rendered =
    Planner.plan ~jobs:1 ~engine:`Reference ~entries Planner.artifacts
  in
  Alcotest.(check (list string))
    "all eight artifacts, output order"
    [ "table1"; "figure1"; "figure2"; "table2"; "table3"; "garith";
      "ablations"; "elision" ]
    (List.map (fun r -> r.Spec.r_name) rendered);
  let data name =
    (List.find (fun r -> r.Spec.r_name = name) rendered).Spec.r_json
  in
  let t1 = data "table1" in
  let row i = List.nth (jlist (member "rows" t1)) i in
  let near = Alcotest.float 0.001 in
  Alcotest.check near "table1 inter total" 17.2486
    (fnum (member "total" (row 0)));
  Alcotest.check near "table1 trav total" 66.2677
    (fnum (member "total" (row 1)));
  Alcotest.check near "table1 trav vector" 34.2337
    (fnum (member "vector" (row 1)));
  Alcotest.check near "table1 average total" 41.7581
    (fnum (member "total" (member "average" t1)));
  let t2 = data "table2" in
  let speedup row field = fnum (member field (member row t2)) in
  Alcotest.check near "table2 row1 no_rtc" 6.5081 (speedup "row1" "no_rtc");
  Alcotest.check near "table2 row3 rtc" 13.0292 (speedup "row3" "rtc");
  Alcotest.check near "table2 row7 total no_rtc" 8.3618
    (speedup "row7.total" "no_rtc");
  Alcotest.check near "table2 row7 total rtc" 30.5955
    (speedup "row7.total" "rtc");
  Alcotest.check near "table2 spur rtc" 28.0564 (speedup "spur" "rtc")

(* --- sinks --- *)

let test_json_emitter () =
  let j =
    Spec.J_obj
      [
        ("s", Spec.J_string "a\"b\\c\nd");
        ("l", Spec.J_list [ Spec.J_int 1; Spec.J_float 2.5 ]);
        ("b", Spec.J_bool true);
        ("n", Spec.J_null);
        ("e", Spec.J_obj []);
        ("i", Spec.J_float 3.0);
      ]
  in
  Alcotest.(check string) "emitted JSON"
    "{\n  \"s\": \"a\\\"b\\\\c\\nd\",\n  \"l\": [\n    1,\n    2.5000\n  ],\n\
    \  \"b\": true,\n  \"n\": null,\n  \"e\": {},\n  \"i\": 3.0\n}\n"
    (Spec.json_to_string j)

let test_csv_emitter () =
  let t =
    {
      Spec.t_name = "demo";
      columns = [ "name"; "value" ];
      rows = [ [ "plain"; "1.0" ]; [ "a,b\"c"; "2.0" ] ];
    }
  in
  Alcotest.(check string) "emitted CSV"
    "# demo\nname,value\nplain,1.0\n\"a,b\"\"c\",2.0\n" (Spec.table_to_csv t)

let test_results_json_shape () =
  (* The RESULTS.json wrapper over an (empty-suite-free) cheap plan:
     table3 only, two programs, fused engine. *)
  let entries = entries_named [ "inter"; "deduce" ] in
  let rendered =
    Planner.plan ~jobs:1 ~entries [ Option.get (Planner.find "table3") ]
  in
  let top = Planner.json_of rendered in
  Alcotest.(check int) "schema version" 1 (match member "schema_version" top with
    | Spec.J_int i -> i
    | _ -> -1);
  let arts = member "artifacts" top in
  let t3 = member "data" (member "table3" arts) in
  Alcotest.(check int) "table3 rows" 2 (List.length (jlist t3));
  (* the CSV sink of the same plan has one section with the two rows *)
  let csv = Planner.csv_string rendered in
  Alcotest.(check bool) "csv has header" true
    (String.length csv > 0
    && String.sub csv 0 8 = "# table3")

let test_support_names () =
  Alcotest.(check int) "nine named configurations" 9
    (List.length Support.all_named);
  List.iter
    (fun (name, support) ->
      match Support.by_name name with
      | Some s -> Alcotest.(check bool) (name ^ " round-trips") true (s = support)
      | None -> Alcotest.failf "by_name %S = None" name)
    Support.all_named;
  Alcotest.(check bool) "unknown name" true (Support.by_name "row9" = None)

let test_planner_registry () =
  Alcotest.(check (list string)) "canonical artifact order"
    [ "table1"; "figure1"; "figure2"; "table2"; "table3"; "garith";
      "ablations"; "elision" ]
    (Planner.names ());
  Alcotest.(check bool) "find unknown" true (Planner.find "table9" = None)

let suite =
  [
    ( "plan",
      [
        Alcotest.test_case "json-emitter" `Quick test_json_emitter;
        Alcotest.test_case "csv-emitter" `Quick test_csv_emitter;
        Alcotest.test_case "support-names" `Quick test_support_names;
        Alcotest.test_case "planner-registry" `Quick test_planner_registry;
        Alcotest.test_case "results-json-shape" `Quick test_results_json_shape;
        Alcotest.test_case "planner-dedup" `Slow test_planner_dedup;
        Alcotest.test_case "golden-numbers" `Slow test_golden_numbers;
      ] );
  ]
