(* Entry point aggregating all suites. *)
let () =
  Alcotest.run "tagsim"
    (Suite_units.suite @ Suite_costs.suite @ Suite_props.suite
   @ Suite_differential.suite @ Suite_smoke.suite @ Suite_lang.suite
   @ Suite_configs.suite @ Suite_benchmarks.suite @ Suite_engines.suite
   @ Suite_analysis.suite @ Suite_plan.suite @ Suite_cache.suite
   @ Suite_link.suite @ Suite_tir.suite @ Suite_traceplan.suite
   @ Suite_fuzz.suite)
