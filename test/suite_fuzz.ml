(* The differential fuzzing subsystem: generator determinism, the
   shrinker, the campaign driver (against an injected synthetic
   divergence, so no engine needs breaking), a fixed-seed smoke
   campaign over the full engine x backend x opt matrix, and the
   regression corpus of shrunk counterexamples from the fuzzing
   sessions that built this harness — each pinned to the checked
   behavior the cross-config oracle now agrees on. *)

module Rng = Tagsim.Fuzz.Rng
module Gen = Tagsim.Fuzz.Gen
module Cross = Tagsim.Fuzz.Cross
module Shrink = Tagsim.Fuzz.Shrink
module Driver = Tagsim.Fuzz.Driver
module Sexp = Tagsim.Sexp
module Program = Tagsim.Program
module Scheme = Tagsim.Scheme
module Support = Tagsim.Support

let chk = Support.with_checking Support.software

(* --- the seeded stream --- *)

let test_rng_determinism () =
  let draw seed = List.init 32 (fun _ -> Rng.int (Rng.create seed) 1000) in
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 32 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 32 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  Alcotest.(check bool)
    "different seeds differ" false
    (draw 1 = draw 2)

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10);
    let w = Rng.range r (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (w >= -5 && w <= 5)
  done

(* --- the generator --- *)

let test_gen_determinism () =
  let gen seed = Gen.render (Gen.program (Rng.create seed) ~max_size:60) in
  Alcotest.(check string) "same seed, same program" (gen 9) (gen 9);
  Alcotest.(check bool) "different seeds differ" false (gen 9 = gen 10)

(* Every generated program must parse, and almost every one must
   compile (the generator may overrun a compiler limit, but only
   rarely); and generated programs terminate by construction. *)
let test_gen_compilable () =
  let rng = Rng.create 1 in
  let compiled = ref 0 in
  for _ = 1 to 20 do
    let src = Gen.render (Gen.program rng ~max_size:60) in
    ignore (Sexp.parse_all src);
    match
      Program.compile ~sizes:Gen.sizes ~scheme:Scheme.high5 ~support:chk src
    with
    | _ -> incr compiled
    | exception Tagsim.Codegen.Error _ -> ()
    | exception Tagsim.Program.Error _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "most programs compile (%d/20)" !compiled)
    true (!compiled >= 15)

(* --- the shrinker --- *)

(* Minimize while a marker atom survives: the shrinker must keep the
   predicate true at every accepted step and end much smaller. *)
let test_shrink_keeps_predicate () =
  let src =
    "(de h0 (n) (if (eq n 0) 0 (h0 (sub1 n))))\n\
     (de main () (let ((a (list 1 2 3)) (b (mkvect 5)))\n\
     (putv b 2 (quote poison)) (h0 12) (length a)))"
  in
  let prog = Sexp.parse_all src in
  let has_marker p =
    let rec node = function
      | Sexp.Sym "poison" -> true
      | Sexp.Sym _ | Sexp.Int _ -> false
      | Sexp.List l -> List.exists node l
    in
    List.exists node p
  in
  Alcotest.(check bool) "marker present initially" true (has_marker prog);
  let shrunk = Shrink.minimize ~check:has_marker prog in
  Alcotest.(check bool) "marker survives" true (has_marker shrunk);
  Alcotest.(check bool)
    (Printf.sprintf "shrunk %d -> %d nodes" (Gen.size prog) (Gen.size shrunk))
    true
    (Gen.size shrunk < Gen.size prog / 2)

(* --- the campaign driver, against an injected divergence ---

   The acceptance bar for the whole pipeline: a synthetic "bug" (any
   program whose rendering mentions a vector build) must be caught and
   shrunk to a small reproducer, without actually breaking an engine. *)
let test_campaign_catches_injected_divergence () =
  let buggy prog =
    let src = Gen.render prog in
    let is_sub s =
      let n = String.length s and m = String.length src in
      let rec at i = i + n <= m && (String.sub src i n = s || at (i + 1)) in
      at 0
    in
    if is_sub "mkvect" then
      Cross.Diverge
        {
          Cross.d_scheme = Scheme.high5;
          d_support = chk;
          d_detail = "injected: mkvect miscompiled";
        }
    else Cross.Agree
  in
  let report =
    Driver.campaign ~check:buggy ~matrix:Cross.smoke ~seed:5 ~count:40
      ~max_size:80 ()
  in
  Alcotest.(check bool)
    "injected divergence caught" true
    (List.length report.Driver.r_counterexamples > 0);
  List.iter
    (fun cx ->
      (match buggy (Sexp.parse_all cx.Driver.cx_shrunk) with
      | Cross.Diverge _ -> ()
      | _ -> Alcotest.fail "shrunk program no longer reproduces");
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to %d nodes (<= 20)" cx.Driver.cx_nodes)
        true (cx.Driver.cx_nodes <= 20))
    report.Driver.r_counterexamples

let test_campaign_deterministic () =
  let run () =
    let r =
      Driver.campaign
        ~check:(fun p -> ignore (Gen.render p); Cross.Agree)
        ~matrix:Cross.smoke ~seed:77 ~count:30 ~max_size:60 ()
    in
    (r.Driver.r_generated, r.Driver.r_skipped)
  in
  Alcotest.(check (pair int int)) "same seed, same report" (run ()) (run ())

(* --- the fixed-seed smoke campaign ---

   25 real programs through the real oracle on the smoke matrix (all
   four engines, both backends, both opt levels, high5 + full software
   checking).  Any divergence here is a product bug. *)
let test_smoke_campaign () =
  let report =
    Driver.campaign ~matrix:Cross.smoke ~seed:20260808 ~count:25 ~max_size:70
      ()
  in
  List.iter
    (fun cx ->
      Alcotest.failf "fuzz smoke divergence (program %d): %s\nshrunk: %s"
        cx.Driver.cx_index cx.Driver.cx_detail cx.Driver.cx_shrunk)
    report.Driver.r_counterexamples;
  Alcotest.(check int) "generated" 25 report.Driver.r_generated

(* --- regression corpus ---

   Shrunk counterexamples from the campaigns that built this harness.
   Each one exposed a real defect; the sources are kept byte-for-byte
   (modulo alpha-renaming the generator's shadowed [nil] parameters)
   and must now agree across the full matrix. *)

let agree_on ?(matrix = Cross.full) what src () =
  match Cross.check matrix src with
  | Cross.Agree -> ()
  | Cross.Rejected -> Alcotest.failf "%s: rejected by every config" what
  | Cross.Diverge d -> Alcotest.failf "%s: still diverges: %s" what d.Cross.d_detail

(* Dynamic arity mismatch through a symbol's function cell: the machine
   used to jump straight into the callee with the wrong number of
   argument registers live and die on a wild memory fault (whose
   message embeds a layout-dependent pc, so the opt levels disagreed);
   the host oracle traps "arity".  Found by seed 42 on the smoke
   matrix. *)
let cx_funcall_zero_for_one = "(de h0 (x) (funcall (quote h0)))\n(de main () (h0 nil))"
let cx_funcall_one_for_zero = "(de h0 (x))\n(de main () (funcall (quote h0)))"
let cx_mapcar_arity = "(de h0 ())\n(de main () (mapcar (quote h0) (list nil)))"

(* Unbounded recursion overruns the stack into a wild fault; what
   happens after the overrun is image-layout-dependent, so the fault
   outcome is exempt from cross-image comparison (but still compared
   exactly engine-to-engine).  Shrunk from a decreasing-recursion
   helper whose decrement the shrinker deleted (seed 42). *)
let cx_stack_overrun = "(de h0 (x) (h0 x))\n(de main () (let ((y (h0 nil))) (get y y)))"

(* On hardware parallel-checking rows (pc-all), a failed tag check
   aborts with the machine's own error code; [Program.abort_message]
   only knew the software stubs' trap codes and printed a raw
   "abort 1" where the software rows and the host oracle say "type
   error".  Found by seed 7 on the full matrix. *)
let cx_hw_type_error = "(de main () (car nil))"
let cx_hw_type_error_assoc = "(de main () (assoc nil (list 0)))"

(* A product that wraps the 32-bit word can land back on a valid item
   bit-pattern — 65536 * 65536 wraps to 0 on every scheme, and on the
   low-tag schemes any wrap preserves the two low tag bits — so the
   machine returned a garbage value where the host oracle traps
   "arithmetic error".  There is no high-word multiply in the ISA;
   checked multiplies now verify the product by dividing it back.
   Found by seed 1234 on the full matrix (shrunk by hand from
   3 * -7 * 33554430, which only the low schemes miss). *)
let cx_mul_wrap_to_valid = "(de main () (let ((x (* 65536 65536))) x))"
let cx_mul_wrap_low = "(de main () (let ((x (* 3 (* -7 33554430)))) x))"

(* The boundary corner of the division-back check: -536870912 * -1
   wraps to the bit-pattern of the valid low-scheme item -2^29, and the
   quotient differs from the multiplicand only after the compare's own
   wrap — the exact-compare form must still catch it.  (The high
   schemes reject the literal outright.) *)
let cx_mul_wrap_corner = "(de main () (let ((x (* -536870912 -1))) x))"

(* Near-boundary products that must NOT trap on the low schemes (and
   must trap on the narrower high schemes): the check may not reject
   valid 30-bit products. *)
let cx_mul_big_ok = "(de main () (let ((x (* -16384 32767))) x))"

let test_arity_abort_message () =
  let p =
    Program.compile ~sizes:Gen.sizes ~scheme:Scheme.high5 ~support:chk
      cx_funcall_zero_for_one
  in
  let r = Program.run p in
  Alcotest.(check (option string)) "traps arity" (Some "arity") r.Program.abort

let test_hw_type_error_message () =
  let p =
    Program.compile ~sizes:Gen.sizes ~scheme:Scheme.low2
      ~support:(Support.with_checking Support.row7) cx_hw_type_error
  in
  let r = Program.run p in
  Alcotest.(check (option string))
    "hardware check reports type error" (Some "type error") r.Program.abort

let suite =
  [
    ( "fuzz",
      [
        Alcotest.test_case "rng-determinism" `Quick test_rng_determinism;
        Alcotest.test_case "rng-bounds" `Quick test_rng_bounds;
        Alcotest.test_case "gen-determinism" `Quick test_gen_determinism;
        Alcotest.test_case "gen-compilable" `Quick test_gen_compilable;
        Alcotest.test_case "shrink-keeps-predicate" `Quick
          test_shrink_keeps_predicate;
        Alcotest.test_case "campaign-injected-divergence" `Quick
          test_campaign_catches_injected_divergence;
        Alcotest.test_case "campaign-deterministic" `Quick
          test_campaign_deterministic;
        Alcotest.test_case "smoke-campaign" `Slow test_smoke_campaign;
        Alcotest.test_case "regression-funcall-arity-0for1" `Quick
          (agree_on "funcall-arity-0for1" cx_funcall_zero_for_one);
        Alcotest.test_case "regression-funcall-arity-1for0" `Quick
          (agree_on "funcall-arity-1for0" cx_funcall_one_for_zero);
        Alcotest.test_case "regression-mapcar-arity" `Quick
          (agree_on "mapcar-arity" cx_mapcar_arity);
        Alcotest.test_case "regression-stack-overrun" `Quick
          (agree_on "stack-overrun" cx_stack_overrun);
        Alcotest.test_case "regression-hw-type-error" `Quick
          (agree_on "hw-type-error" cx_hw_type_error);
        Alcotest.test_case "regression-hw-type-error-assoc" `Quick
          (agree_on "hw-type-error-assoc" cx_hw_type_error_assoc);
        Alcotest.test_case "regression-mul-wrap-to-valid" `Quick
          (agree_on "mul-wrap-to-valid" cx_mul_wrap_to_valid);
        Alcotest.test_case "regression-mul-wrap-low" `Quick
          (agree_on "mul-wrap-low" cx_mul_wrap_low);
        Alcotest.test_case "regression-mul-wrap-corner" `Quick
          (agree_on "mul-wrap-corner" cx_mul_wrap_corner);
        Alcotest.test_case "regression-mul-big-ok" `Quick
          (agree_on "mul-big-ok" cx_mul_big_ok);
        Alcotest.test_case "arity-abort-message" `Quick
          test_arity_abort_message;
        Alcotest.test_case "hw-type-error-message" `Quick
          test_hw_type_error_message;
      ] );
  ]
