(* The typed tag-operation IR pipeline (lower -> optimize -> select).

   Three layers of evidence:
   - with optimization off, the lower+select path is byte-identical to
     the monolithic oracle for every scheme x named support row (the
     companion of suite_link's differential, over the programs that
     suite does not cover);
   - with check elimination on, every benchmark still computes its
     expected value under every scheme and total cycles never increase
     (and under high5/software+rtc the checking-attributed cycles
     strictly decrease on at least eight of the ten programs);
   - unit tests pin the tag-knowledge lattice: dominating checks are
     deleted, control-flow joins intersect knowledge, user calls kill
     globals but not spilled locals, allocation GC points kill
     neither, and type-predicate branches seed knowledge. *)

module B = Tagsim.Benchmarks
module Program = Tagsim.Program
module Image = Tagsim.Image
module Scheme = Tagsim.Scheme
module Support = Tagsim.Support
module Stats = Tagsim.Stats
module Symtab = Tagsim.Symtab
module Expand = Tagsim.Expand
module Ast = Tagsim.Ast
module Tir = Tagsim.Tir
module Lower = Tagsim.Lower
module Checkelim = Tagsim.Checkelim

(* --- opt off: byte-identical to the monolithic oracle --- *)

let opt_off_differential name () =
  let fe = Program.analyze (B.find name).B.source in
  List.iter
    (fun scheme ->
      List.iter
        (fun (row, support) ->
          let mono =
            Program.compile_frontend ~backend:`Monolithic ~scheme ~support fe
          in
          let inc =
            Program.compile_frontend ~backend:`Incremental ~opt:`None ~scheme
              ~support fe
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s/%s byte-identical" name scheme.Scheme.name
               row)
            true
            (Image.equal mono.Program.image inc.Program.image))
        Support.all_named)
    Scheme.all

(* --- opt on: same results, cycles never increase --- *)

let chk_support = Support.with_checking Support.software

(* Checking-attributed cycles: what the elision artifact reports. *)
let added_cycles stats =
  Stats.tag_checking ~checking:true stats
  + Stats.generic_arith ~checking:true stats

let test_opt_on_differential () =
  let high5_decreases = ref 0 in
  List.iter
    (fun (entry : B.entry) ->
      let fe = Program.analyze entry.B.source in
      List.iter
        (fun scheme ->
          let what fmt =
            Printf.ksprintf
              (fun s ->
                Printf.sprintf "%s/%s %s" entry.B.name scheme.Scheme.name s)
              fmt
          in
          let base =
            Program.compile_frontend ~sizes:entry.B.sizes ~scheme
              ~support:chk_support fe
          in
          let opt =
            Program.compile_frontend ~opt:`Checks ~sizes:entry.B.sizes ~scheme
              ~support:chk_support fe
          in
          Alcotest.(check bool)
            (what "some checks eliminated")
            true
            (opt.Program.meta.Program.checks_eliminated > 0);
          let rb = Program.run base and ro = Program.run opt in
          Alcotest.(check (option string)) (what "no abort") None
            ro.Program.abort;
          Alcotest.(check string) (what "expected value") entry.B.expected
            (Program.hval_to_string (Option.get ro.Program.value));
          Alcotest.(check string)
            (what "same value as unoptimized")
            (Program.hval_to_string (Option.get rb.Program.value))
            (Program.hval_to_string (Option.get ro.Program.value));
          Alcotest.(check bool)
            (what "cycles never increase")
            true
            (Stats.total ro.Program.stats <= Stats.total rb.Program.stats);
          if
            scheme.Scheme.name = "high5"
            && added_cycles ro.Program.stats < added_cycles rb.Program.stats
          then incr high5_decreases)
        Scheme.all)
    (B.all ());
  Alcotest.(check bool)
    "high5: checking cycles strictly decrease on >= 8 of 10 programs" true
    (!high5_decreases >= 8)

(* --- the tag-knowledge lattice, pinned on tiny functions --- *)

(* Lower one definition from a source string (all definitions are
   registered for arity lookups, so the unit under test may call the
   others). *)
let lower_named src name =
  let defs = Expand.program src in
  let symtab = Symtab.with_builtins () in
  let funcs = Hashtbl.create 8 in
  List.iter
    (fun (d : Ast.def) ->
      ignore (Symtab.intern symtab d.Ast.name);
      Symtab.mark_function symtab d.Ast.name
        ~arity:(List.length d.Ast.params);
      Hashtbl.replace funcs d.Ast.name (List.length d.Ast.params))
    defs;
  let d = List.find (fun (d : Ast.def) -> d.Ast.name = name) defs in
  Lower.def symtab funcs d

let elided_in src name =
  let _, n = Checkelim.run (lower_named src name) in
  n

let check_elided what src name expected =
  Alcotest.(check int) what expected (elided_in src name)

let test_dominating_check () =
  (* The car's check proves x : Pair; the cdr's identical check on the
     same variable is redundant. *)
  check_elided "second list check deleted"
    "(de f (x) (cons (car x) (cdr x)))" "f" 1

let test_predicate_seeds_knowledge () =
  (* The pairp branch dominates the then-arm, so the car needs no
     check; the predicate branch itself must never be deleted. *)
  let src = "(de h (x) (if (pairp x) (car x) (quote nil)))" in
  check_elided "car check deleted under pairp" src "h" 1;
  let tf, _ = Checkelim.run (lower_named src "h") in
  let branches =
    List.length
      (List.filter
         (function Tir.Tybranch _ -> true | _ -> false)
         tf.Tir.f_ops)
  in
  Alcotest.(check bool) "predicate branch survives" true (branches >= 1)

let test_join_drops_one_sided_knowledge () =
  (* Only the then-arm checks x, so the merge point knows nothing and
     the final car keeps its check. *)
  check_elided "one-sided knowledge dropped at join"
    "(de j (x y) (progn (if y (car x) x) (car x)))" "j" 0

let test_join_keeps_common_knowledge () =
  (* Both arms check x : Pair, so the intersection at the merge point
     still proves the final car. *)
  check_elided "two-sided knowledge survives join"
    "(de j2 (x y) (progn (if y (car x) (cdr x)) (car x)))" "j2" 1

let test_call_kills_globals () =
  (* The setq'd constant proves the first car; the user call can write
     any global, so the second car's check must survive. *)
  check_elided "global knowledge killed across user call"
    "(de k2 (y) y) (de g1 () (progn (setq gg (quote (1 2))) (car gg) (k2 0) \
     (car gg)))"
    "g1" 1

let test_local_survives_call () =
  (* x is a register-cached local, spilled and reloaded around the
     call: its type survives where a global's would not. *)
  check_elided "local knowledge survives user call"
    "(de k2 (y) y) (de k (x) (progn (car x) (k2 x) (car x)))" "k" 1

let test_gc_point_kills_nothing () =
  (* cons may collect, but the copying collector preserves types:
     both the local's and the global's knowledge survive the
     allocation. *)
  check_elided "local knowledge survives GC point"
    "(de gc1 (x) (progn (car x) (cons 1 2) (car x)))" "gc1" 1;
  check_elided "global knowledge survives GC point"
    "(de g2 () (progn (setq gg (quote (1 2))) (car gg) (cons 1 2) (car gg)))"
    "g2" 2

let test_int_knowledge_downgrades_arith () =
  (* land2 checks both operands (the literal's check is itself proven);
     the proven x : Int then marks the following generic add's operand
     as known-integer. *)
  check_elided "int checks proven and arith downgraded"
    "(de a1 (x) (progn (land2 x 1) (plus2 x 2)))" "a1" 2

let test_comparison_seeds_int () =
  (* The comparison's operand check dominates both arms of the if. *)
  check_elided "comparison check seeds int knowledge"
    "(de c1 (x) (if (lessp x 1) (plus2 x 2) 0))" "c1" 1

let suite =
  [
    ( "tir",
      [
        Alcotest.test_case "dominating-check" `Quick test_dominating_check;
        Alcotest.test_case "predicate-branch" `Quick
          test_predicate_seeds_knowledge;
        Alcotest.test_case "join-one-sided" `Quick
          test_join_drops_one_sided_knowledge;
        Alcotest.test_case "join-two-sided" `Quick
          test_join_keeps_common_knowledge;
        Alcotest.test_case "call-kills-globals" `Quick test_call_kills_globals;
        Alcotest.test_case "local-survives-call" `Quick
          test_local_survives_call;
        Alcotest.test_case "gc-point-kills-nothing" `Quick
          test_gc_point_kills_nothing;
        Alcotest.test_case "arith-downgrade" `Quick
          test_int_knowledge_downgrades_arith;
        Alcotest.test_case "comparison-int" `Quick test_comparison_seeds_int;
        Alcotest.test_case "differential-deduce" `Slow
          (opt_off_differential "deduce");
        Alcotest.test_case "differential-rat" `Slow
          (opt_off_differential "rat");
        Alcotest.test_case "differential-opt" `Slow
          (opt_off_differential "opt");
        Alcotest.test_case "differential-boyer" `Slow
          (opt_off_differential "boyer");
        Alcotest.test_case "differential-brow" `Slow
          (opt_off_differential "brow");
        Alcotest.test_case "differential-trav" `Slow
          (opt_off_differential "trav");
        Alcotest.test_case "opt-on-differential" `Slow
          test_opt_on_differential;
      ] );
  ]
