(* The benchmark harness.

   Phase 1 regenerates every table and figure of the paper and prints
   them in the paper's layout (this is the reproduction output that
   EXPERIMENTS.md records).

   Phase 2 runs one Bechamel benchmark per table/figure: each measures
   the wall-clock cost of the kernel that regenerates that artifact (a
   representative slice, with the measurement cache out of the way),
   i.e. the simulator-plus-compiler throughput of this implementation. *)

open Bechamel
open Toolkit

(* --- Phase 1: regenerate the paper. --- *)

let print_all () =
  Fmt.pr "================================================================@.";
  Fmt.pr "Reproduction: Steenkiste & Hennessy, \"Tags and Type Checking in@.";
  Fmt.pr "LISP: Hardware and Software Approaches\" (ASPLOS 1987)@.";
  Fmt.pr "================================================================@.@.";
  Fmt.pr "%a@." Tagsim.Analysis.Table1.pp (Tagsim.Analysis.Table1.measure ());
  Fmt.pr "%a@." Tagsim.Analysis.Figure1.pp
    (Tagsim.Analysis.Figure1.measure ());
  Fmt.pr "%a@." Tagsim.Analysis.Figure2.pp
    (Tagsim.Analysis.Figure2.measure ());
  Fmt.pr "%a@." Tagsim.Analysis.Table2.pp (Tagsim.Analysis.Table2.measure ());
  Fmt.pr "%a@." Tagsim.Analysis.Table3.pp (Tagsim.Analysis.Table3.measure ());
  Fmt.pr "%a@." Tagsim.Analysis.Garith.pp (Tagsim.Analysis.Garith.measure ());
  Fmt.pr "@.%a@." Tagsim.Analysis.Ablations.pp
    (Tagsim.Analysis.Ablations.measure ())

(* --- Phase 2: Bechamel kernels. --- *)

(* One uncached compile+simulate of a benchmark under a configuration:
   the unit of work every experiment is built from. *)
let simulate ?(scheme = Tagsim.Scheme.high5)
    ?(support = Tagsim.Support.software) name =
  let entry = Tagsim.Benchmarks.find name in
  let program =
    Tagsim.Program.compile ~scheme ~support
      ~sizes:entry.Tagsim.Benchmarks.sizes entry.Tagsim.Benchmarks.source
  in
  let result = Tagsim.Program.run program in
  assert (result.Tagsim.Program.abort = None)

let chk = Tagsim.Support.with_checking Tagsim.Support.software

(* Each test is the kernel of the corresponding experiment, on a
   representative program (the full experiments iterate these kernels
   over all ten programs and more configurations). *)
let tests =
  [
    Test.make ~name:"table1-checking-delta-deduce"
      (Staged.stage (fun () ->
           simulate "deduce";
           simulate ~support:chk "deduce"));
    Test.make ~name:"figure1-tag-profile-boyer"
      (Staged.stage (fun () -> simulate ~support:chk "boyer"));
    Test.make ~name:"figure2-mask-elimination-comp"
      (Staged.stage (fun () ->
           simulate "comp";
           simulate ~support:Tagsim.Support.row1_hw "comp"));
    Test.make ~name:"table2-row7-frl"
      (Staged.stage (fun () ->
           simulate
             ~support:(Tagsim.Support.with_checking Tagsim.Support.row7)
             "frl"));
    Test.make ~name:"table3-compile-opt"
      (Staged.stage (fun () ->
           let entry = Tagsim.Benchmarks.find "opt" in
           ignore
             (Tagsim.Program.compile ~scheme:Tagsim.Scheme.high5
                ~support:Tagsim.Support.software
                entry.Tagsim.Benchmarks.source)));
    Test.make ~name:"garith-high6-rat"
      (Staged.stage (fun () ->
           simulate ~scheme:Tagsim.Scheme.high6 ~support:chk "rat"));
    Test.make ~name:"ablation-dedgc-pressure"
      (Staged.stage (fun () -> simulate "dedgc"));
  ]

(* OLS ns/run estimates for one test, as (name, ns option) pairs. *)
let analyze_one test =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let tbl = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name result acc ->
      let ns =
        match Analyze.OLS.estimates result with
        | Some [ t ] -> Some t
        | _ -> None
      in
      (name, ns) :: acc)
    tbl []

let benchmark () =
  Fmt.pr "@.Bechamel kernels (wall-clock per regeneration kernel):@.";
  List.iter
    (fun test ->
      List.iter
        (fun (name, ns) ->
          match ns with
          | Some t -> Fmt.pr "  %-44s %10.2f ms/run@." name (t /. 1e6)
          | None -> Fmt.pr "  %-44s (no estimate)@." name)
        (analyze_one test))
    tests

(* --- Phase 3: engine throughput, reference vs predecoded. ---

   One pre-compiled program (boyer, full checking: exercises software
   type checks, generic-arithmetic traps and the GC) simulated under
   each engine.  Both engines produce bit-identical statistics
   (test/suite_engines.ml), so any wall-clock gap is pure dispatch
   overhead.  Reported as simulated MIPS: retired simulated
   instructions per wall-clock second. *)

let engine_program =
  lazy
    (let entry = Tagsim.Benchmarks.find "boyer" in
     Tagsim.Program.compile ~scheme:Tagsim.Scheme.high5 ~support:chk
       ~sizes:entry.Tagsim.Benchmarks.sizes entry.Tagsim.Benchmarks.source)

let engine_insns =
  lazy
    (let result = Tagsim.Program.run (Lazy.force engine_program) in
     assert (result.Tagsim.Program.abort = None);
     Tagsim.Stats.executed_insns result.Tagsim.Program.stats)

let engine_test engine name =
  Test.make ~name
    (Staged.stage (fun () ->
         ignore (Tagsim.Program.run ~engine (Lazy.force engine_program))))

let engine_tests =
  [
    engine_test `Reference "engine-reference-boyer";
    engine_test `Predecoded "engine-predecoded-boyer";
  ]

let engine_benchmark () =
  let insns = float_of_int (Lazy.force engine_insns) in
  Fmt.pr "@.Engine throughput (boyer, high5, full checking):@.";
  List.iter
    (fun test ->
      List.iter
        (fun (name, ns) ->
          match ns with
          | Some t ->
              Fmt.pr "  %-28s %10.2f ms/run  %8.2f simulated MIPS@." name
                (t /. 1e6)
                (insns *. 1e3 /. t)
          | None -> Fmt.pr "  %-28s (no estimate)@." name)
        (analyze_one test))
    engine_tests

let () =
  let jobs = ref 1 in
  let rec parse = function
    | [] -> ()
    | ("--jobs" | "-j") :: n :: rest ->
        jobs := int_of_string n;
        parse rest
    | arg :: rest
      when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
        jobs := int_of_string (String.sub arg 7 (String.length arg - 7));
        parse rest
    | _ :: rest -> parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  Tagsim.Analysis.Pool.set_default_jobs !jobs;
  print_all ();
  benchmark ();
  engine_benchmark ()
