(* The benchmark harness.

   Phase 1 regenerates every table and figure of the paper and prints
   them in the paper's layout (this is the reproduction output that
   EXPERIMENTS.md records).

   Phase 2 runs one Bechamel benchmark per table/figure: each measures
   the wall-clock cost of the kernel that regenerates that artifact (a
   representative slice, with the measurement cache out of the way),
   i.e. the simulator-plus-compiler throughput of this implementation. *)

open Bechamel
open Toolkit

(* --- Phase 1: regenerate the paper. --- *)

let print_all () =
  Fmt.pr "================================================================@.";
  Fmt.pr "Reproduction: Steenkiste & Hennessy, \"Tags and Type Checking in@.";
  Fmt.pr "LISP: Hardware and Software Approaches\" (ASPLOS 1987)@.";
  Fmt.pr "================================================================@.@.";
  (* One planner execution: the union of every artifact's matrix,
     deduplicated and fanned out once over the pool. *)
  let module Spec = Tagsim.Analysis.Spec in
  let module Planner = Tagsim.Analysis.Planner in
  List.iter
    (fun r ->
      if r.Spec.r_name = "ablations" then Fmt.pr "@.%s@." r.Spec.r_text
      else Fmt.pr "%s@." r.Spec.r_text)
    (Planner.plan Planner.artifacts)

(* --- Phase 2: Bechamel kernels. --- *)

(* One uncached compile+simulate of a benchmark under a configuration:
   the unit of work every experiment is built from. *)
let simulate ?(scheme = Tagsim.Scheme.high5)
    ?(support = Tagsim.Support.software) name =
  let entry = Tagsim.Benchmarks.find name in
  let program =
    Tagsim.Program.compile ~scheme ~support
      ~sizes:entry.Tagsim.Benchmarks.sizes entry.Tagsim.Benchmarks.source
  in
  let result = Tagsim.Program.run program in
  assert (result.Tagsim.Program.abort = None)

let chk = Tagsim.Support.with_checking Tagsim.Support.software

(* Each test is the kernel of the corresponding experiment, on a
   representative program (the full experiments iterate these kernels
   over all ten programs and more configurations). *)
let tests =
  [
    Test.make ~name:"table1-checking-delta-deduce"
      (Staged.stage (fun () ->
           simulate "deduce";
           simulate ~support:chk "deduce"));
    Test.make ~name:"figure1-tag-profile-boyer"
      (Staged.stage (fun () -> simulate ~support:chk "boyer"));
    Test.make ~name:"figure2-mask-elimination-comp"
      (Staged.stage (fun () ->
           simulate "comp";
           simulate ~support:Tagsim.Support.row1_hw "comp"));
    Test.make ~name:"table2-row7-frl"
      (Staged.stage (fun () ->
           simulate
             ~support:(Tagsim.Support.with_checking Tagsim.Support.row7)
             "frl"));
    Test.make ~name:"table3-compile-opt"
      (Staged.stage (fun () ->
           let entry = Tagsim.Benchmarks.find "opt" in
           ignore
             (Tagsim.Program.compile ~scheme:Tagsim.Scheme.high5
                ~support:Tagsim.Support.software
                entry.Tagsim.Benchmarks.source)));
    Test.make ~name:"garith-high6-rat"
      (Staged.stage (fun () ->
           simulate ~scheme:Tagsim.Scheme.high6 ~support:chk "rat"));
    Test.make ~name:"ablation-dedgc-pressure"
      (Staged.stage (fun () -> simulate "dedgc"));
  ]

(* OLS ns/run estimates for one test, as (name, ns option) pairs. *)
let analyze_one test =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let tbl = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name result acc ->
      let ns =
        match Analyze.OLS.estimates result with
        | Some [ t ] -> Some t
        | _ -> None
      in
      (name, ns) :: acc)
    tbl []
  (* [Analyze.all] hands back a hash table; sort so the report's row
     order is stable across processes. *)
  |> List.sort compare

let benchmark () =
  Fmt.pr "@.Bechamel kernels (wall-clock per regeneration kernel):@.";
  List.iter
    (fun test ->
      List.iter
        (fun (name, ns) ->
          match ns with
          | Some t -> Fmt.pr "  %-44s %10.2f ms/run@." name (t /. 1e6)
          | None -> Fmt.pr "  %-44s (no estimate)@." name)
        (analyze_one test))
    tests

(* --- Phase 3: engine throughput, reference vs predecoded vs fused vs
   traced. ---

   Every registry program (full checking: software type checks,
   generic-arithmetic traps and the GC), pre-compiled once and
   simulated under each engine.  All engines produce bit-identical
   statistics (test/suite_engines.ml), so any wall-clock gap is pure
   dispatch and accounting overhead.  Reported as simulated MIPS —
   retired simulated instructions per wall-clock second — and recorded
   in BENCH_engines.json alongside the fused/predecoded and
   traced/fused speedups. *)

let engine_programs =
  List.map
    (fun (e : Tagsim.Benchmarks.entry) -> e.Tagsim.Benchmarks.name)
    (Tagsim.Benchmarks.all ())

let engines =
  List.map
    (fun e -> (e, Tagsim.Machine.engine_name e))
    Tagsim.Machine.engine_all

let prepare_program name =
  let entry = Tagsim.Benchmarks.find name in
  let program =
    Tagsim.Program.compile ~scheme:Tagsim.Scheme.high5 ~support:chk
      ~sizes:entry.Tagsim.Benchmarks.sizes entry.Tagsim.Benchmarks.source
  in
  let result = Tagsim.Program.run program in
  assert (result.Tagsim.Program.abort = None);
  (program, Tagsim.Stats.executed_insns result.Tagsim.Program.stats)

(* One OLS ns/run estimate for one engine on one pre-compiled
   program. *)
let estimate_engine program engine ename =
  let test =
    Test.make ~name:ename
      (Staged.stage (fun () -> ignore (Tagsim.Program.run ~engine program)))
  in
  match analyze_one test with (_, ns) :: _ -> ns | [] -> None

type engine_run = { e_name : string; ns : float; mips : float }

let engine_benchmark () =
  let rows =
    List.map
      (fun pname ->
        let program, insns = prepare_program pname in
        (* Best of three independent OLS estimates per engine, taken in
           interleaved rounds (every engine once per round) so slow
           drift — thermal, frequency scaling, background load — hits
           every engine alike instead of whichever happens to be
           measured last. *)
        let best = Hashtbl.create 8 in
        for _round = 1 to 3 do
          List.iter
            (fun (engine, ename) ->
              match estimate_engine program engine ename with
              | Some ns -> (
                  match Hashtbl.find_opt best ename with
                  | Some b when b <= ns -> ()
                  | _ -> Hashtbl.replace best ename ns)
              | None -> ())
            engines
        done;
        let runs =
          List.filter_map
            (fun (_, ename) ->
              Option.map
                (fun ns ->
                  {
                    e_name = ename;
                    ns;
                    mips = float_of_int insns *. 1e3 /. ns;
                  })
                (Hashtbl.find_opt best ename))
            engines
        in
        (pname, insns, runs))
      engine_programs
  in
  List.iter
    (fun (pname, _, runs) ->
      Fmt.pr "@.Engine throughput (%s, high5, full checking):@." pname;
      List.iter
        (fun { e_name; ns; mips } ->
          Fmt.pr "  %-12s %10.2f ms/run  %8.2f simulated MIPS@." e_name
            (ns /. 1e6) mips)
        runs)
    rows;
  let mips_of runs name =
    List.find_opt (fun r -> r.e_name = name) runs
    |> Option.map (fun r -> r.mips)
  in
  let oc = open_out "BENCH_engines.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"unit\": \"simulated MIPS (retired simulated instructions \
       per wall-clock second)\",\n";
  out "  \"benchmarks\": [\n";
  List.iteri
    (fun i (pname, insns, runs) ->
      out "    {\n      \"program\": %S,\n      \"simulated_insns\": %d,\n"
        pname insns;
      out "      \"engines\": [\n";
      List.iteri
        (fun j { e_name; ns; mips } ->
          out
            "        { \"engine\": %S, \"ms_per_run\": %.3f, \
             \"simulated_mips\": %.2f }%s\n"
            e_name (ns /. 1e6) mips
            (if j = List.length runs - 1 then "" else ","))
        runs;
      out "      ]";
      (match (mips_of runs "fused", mips_of runs "predecoded") with
      | Some f, Some p when p > 0.0 ->
          out ",\n      \"fused_over_predecoded\": %.2f" (f /. p)
      | _ -> ());
      (match (mips_of runs "traced", mips_of runs "fused") with
      | Some t, Some f when f > 0.0 ->
          out ",\n      \"traced_over_fused\": %.2f" (t /. f)
      | _ -> ());
      out "\n    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  close_out oc;
  Fmt.pr "@.Per-engine throughput written to BENCH_engines.json@."

(* --- Phase 4: cold vs warm persistent measurement cache. ---

   End-to-end wall-clock of the full planner fan-out (every artifact,
   every program — the work of [tagsim experiments]) with the
   content-addressed store cold (wiped on disk, memo and shared front
   ends dropped) versus warm (store populated, in-process state dropped
   the same way).  Best of three per leg; the warm legs also assert that
   the store alone reproduces the plan with zero simulations.  Recorded
   in BENCH_cache.json. *)

module Cache = Tagsim.Analysis.Cache
module Run = Tagsim.Analysis.Run

let time_plan () =
  let module Planner = Tagsim.Analysis.Planner in
  let t0 = Unix.gettimeofday () in
  ignore (Planner.plan Planner.artifacts);
  Unix.gettimeofday () -. t0

let best_of n leg = List.fold_left min infinity (List.init n (fun _ -> leg ()))

let cache_benchmark () =
  let module Planner = Tagsim.Analysis.Planner in
  let module Spec = Tagsim.Analysis.Spec in
  let was_enabled = Cache.enabled () in
  Cache.set_enabled true;
  (* Size of the deduplicated configuration union, for the report. *)
  let cells =
    let seen = Hashtbl.create 512 in
    List.iter
      (fun (a : Spec.artifact) ->
        List.iter
          (fun c -> Hashtbl.replace seen (Run.matrix_key c) ())
          (a.Spec.a_configs (Tagsim.Benchmarks.all ())))
      Planner.artifacts;
    Hashtbl.length seen
  in
  let runs = 3 in
  (* Both legs also drop the incremental backend's object state (cold
     additionally wipes its store): the cold leg must pay full
     compiles, and the warm leg's point is that the measurement store
     alone — not cached objects — reproduces the plan. *)
  let cold_leg () =
    Cache.wipe ();
    Run.clear_cache ();
    Run.reset_frontends ();
    Tagsim.Objcache.wipe ();
    Tagsim.Objcache.clear_memo ();
    time_plan ()
  in
  let warm_leg () =
    Run.clear_cache ();
    Run.reset_frontends ();
    Tagsim.Objcache.clear_memo ();
    time_plan ()
  in
  let cold = best_of runs cold_leg in
  (* The last cold leg left the store fully populated. *)
  Run.reset_simulations ();
  let warm = best_of runs warm_leg in
  let warm_sims = Run.simulations () in
  Cache.set_enabled was_enabled;
  Fmt.pr "@.Measurement cache, full experiment plan (%d configurations, \
          best of %d):@." cells runs;
  Fmt.pr "  cold (wiped store)   %8.3f s@." cold;
  Fmt.pr "  warm (store only)    %8.3f s   (%.0fx; %d simulations)@." warm
    (cold /. warm) warm_sims;
  let oc = open_out "BENCH_cache.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"benchmark\": \"full planner fan-out (the work of 'tagsim \
       experiments'), persistent measurement cache cold vs warm\",\n";
  out "  \"configurations\": %d,\n" cells;
  out "  \"jobs\": %d,\n" !Tagsim.Analysis.Pool.default_jobs;
  out "  \"runs_per_leg\": %d,\n" runs;
  out "  \"cold_seconds_best\": %.3f,\n" cold;
  out "  \"warm_seconds_best\": %.3f,\n" warm;
  out "  \"warm_speedup\": %.1f,\n" (cold /. warm);
  out "  \"warm_simulations\": %d\n" warm_sims;
  out "}\n";
  close_out oc;
  Fmt.pr "Cold/warm cache timings written to BENCH_cache.json@."

(* --- Phase 5: backend throughput, monolithic vs incremental. ---

   Pure compilation (no simulation) of the full Table 2 matrix — the
   low-tag software cell plus every named high5 support row, each with
   and without full checking, for all ten programs — under the
   monolithic backend versus the incremental one in three states: cold
   (object memo dropped and store wiped), warm persistent store (memo
   dropped, objects reloaded from disk), and warm in-process memo (the
   steady state of a matrix run, where every unit compiles once and
   every later cell links cached objects).  Front ends are shared, as
   in the real pipeline, so the legs time the backend alone.  Best of
   three per leg; recorded in BENCH_compile.json. *)

module Objcache = Tagsim.Objcache

let compile_matrix () =
  (* The Table 2 cells (see Analysis.Table2): low-tag software plus
     every named support row on high5, each with and without full
     run-time checking. *)
  let cells =
    (Tagsim.Scheme.low2, Tagsim.Support.software)
    :: List.map
         (fun (_, s) -> (Tagsim.Scheme.high5, s))
         Tagsim.Support.all_named
  in
  List.concat_map
    (fun entry ->
      let fe = Tagsim.Program.analyze entry.Tagsim.Benchmarks.source in
      List.concat_map
        (fun (scheme, s) ->
          [ (fe, scheme, s); (fe, scheme, Tagsim.Support.with_checking s) ])
        cells)
    (Tagsim.Benchmarks.all ())

let compile_all ?(opt = `None) backend configs =
  List.iter
    (fun (fe, scheme, support) ->
      ignore
        (Tagsim.Program.compile_frontend ~backend ~opt ~scheme ~support fe))
    configs

let time_leg leg =
  let t0 = Unix.gettimeofday () in
  leg ();
  Unix.gettimeofday () -. t0

let compile_benchmark () =
  let configs = compile_matrix () in
  let n = List.length configs in
  let runs = 3 in
  let mono =
    best_of runs (fun () -> time_leg (fun () -> compile_all `Monolithic configs))
  in
  let inc_cold =
    best_of runs (fun () ->
        Objcache.clear_memo ();
        Objcache.wipe ();
        time_leg (fun () -> compile_all `Incremental configs))
  in
  (* The last cold leg left the store fully populated. *)
  let inc_warm_disk =
    best_of runs (fun () ->
        Objcache.clear_memo ();
        time_leg (fun () -> compile_all `Incremental configs))
  in
  Objcache.reset_counters ();
  let inc_warm =
    best_of runs (fun () -> time_leg (fun () -> compile_all `Incremental configs))
  in
  let hits, misses, _ = Objcache.counters () in
  (* One instrumented cold leg per optimization level: the backend's
     own phase accumulator breaks the wall clock into
     lower/opt/select/schedule/assemble/link, so the pipeline split's
     cost is visible (and the optimizer's own cost is isolated). *)
  let instrumented_cold opt =
    Objcache.clear_memo ();
    Objcache.wipe ();
    Tagsim.Bphase.reset ();
    let total = time_leg (fun () -> compile_all ~opt `Incremental configs) in
    (total, Tagsim.Bphase.totals ())
  in
  let cold_none, ph_none = instrumented_cold `None in
  let cold_checks, ph_checks = instrumented_cold `Checks in
  Fmt.pr "@.Backend, full Table 2 compile matrix (%d configurations, best \
          of %d):@." n runs;
  Fmt.pr "  monolithic                %8.3f s@." mono;
  Fmt.pr "  incremental, cold         %8.3f s   (memo dropped, store wiped)@."
    inc_cold;
  if Objcache.enabled () then
    Fmt.pr "  incremental, warm store   %8.3f s   (memo dropped, objects \
            from disk)@."
      inc_warm_disk;
  Fmt.pr "  incremental, warm memo    %8.3f s   (%.1fx vs monolithic; %d \
          hits, %d misses)@."
    inc_warm (mono /. inc_warm) hits misses;
  let pp_phases what total (p : Tagsim.Bphase.totals) =
    Fmt.pr
      "  %-25s %8.3f s   (lower %.3f  opt %.3f  select %.3f  schedule %.3f  \
       assemble %.3f  link %.3f)@."
      what total p.Tagsim.Bphase.lower_s p.Tagsim.Bphase.opt_s
      p.Tagsim.Bphase.select_s p.Tagsim.Bphase.schedule_s
      p.Tagsim.Bphase.assemble_s p.Tagsim.Bphase.link_s
  in
  pp_phases "cold phases, opt none" cold_none ph_none;
  pp_phases "cold phases, opt checks" cold_checks ph_checks;
  let oc = open_out "BENCH_compile.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"benchmark\": \"backend wall-clock over the full Table 2 compile \
       matrix, monolithic vs incremental (relocatable objects + linker + \
       content-addressed object cache)\",\n";
  out "  \"configurations\": %d,\n" n;
  out "  \"runs_per_leg\": %d,\n" runs;
  out "  \"object_store_enabled\": %b,\n" (Objcache.enabled ());
  out "  \"monolithic_seconds_best\": %.3f,\n" mono;
  out "  \"incremental_cold_seconds_best\": %.3f,\n" inc_cold;
  if Objcache.enabled () then
    out "  \"incremental_warm_store_seconds_best\": %.3f,\n" inc_warm_disk;
  out "  \"incremental_warm_memo_seconds_best\": %.3f,\n" inc_warm;
  out "  \"warm_memo_hits\": %d,\n" hits;
  out "  \"warm_memo_misses\": %d,\n" misses;
  out "  \"warm_speedup_vs_monolithic\": %.1f,\n" (mono /. inc_warm);
  let out_phases key total (p : Tagsim.Bphase.totals) term =
    out "  %S: {\n" key;
    out "    \"total_seconds\": %.3f,\n" total;
    out "    \"lower_seconds\": %.3f,\n" p.Tagsim.Bphase.lower_s;
    out "    \"opt_seconds\": %.3f,\n" p.Tagsim.Bphase.opt_s;
    out "    \"select_seconds\": %.3f,\n" p.Tagsim.Bphase.select_s;
    out "    \"schedule_seconds\": %.3f,\n" p.Tagsim.Bphase.schedule_s;
    out "    \"assemble_seconds\": %.3f,\n" p.Tagsim.Bphase.assemble_s;
    out "    \"link_seconds\": %.3f\n" p.Tagsim.Bphase.link_s;
    out "  }%s\n" term
  in
  out_phases "cold_phases_opt_none" cold_none ph_none ",";
  out_phases "cold_phases_opt_checks" cold_checks ph_checks "";
  out "}\n";
  close_out oc;
  Fmt.pr "Backend timings written to BENCH_compile.json@."

(* --- Phase 6: cold-profile vs warm-plan traced-engine start. ---

   Per registry program (high5, full checking — the engine-benchmark
   configuration): wall-clock of one full traced run starting from a
   cold tstate — tier-1 profiling, superblock growth and trace
   compilation all online — versus one starting warm from the
   persistent plan store (plans loaded, validated and pre-compiled on
   attach, zero tier-1 formations).  The program is compiled once and
   the predecode/fuse attachment caches are shared by both legs, so the
   delta isolates exactly what the plan store is supposed to remove.
   The store is seeded to a fixed point first (runs re-flush until no
   new trace forms, so the warm leg's formation count is zero), then
   the legs are measured in interleaved rounds, best of [runs] each.
   Recorded in BENCH_traceplan.json. *)

module Plan = Tagsim.Plan

let traceplan_benchmark () =
  let was_enabled = Plan.enabled () in
  let was_dir = Plan.dir () in
  (* A private, initially empty store: seeding is deterministic (the
     shared store would union plans across image-sharing programs and
     earlier invocations, shifting the planned-trace counts).  Wiped
     and removed on every exit path, including exceptions. *)
  let plan_dir = Filename.temp_dir "tagsim_bench_plan" "" in
  Plan.set_dir plan_dir;
  Plan.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Plan.wipe ();
      Plan.set_dir was_dir;
      Plan.set_enabled was_enabled;
      try Sys.rmdir plan_dir with Sys_error _ -> ())
  @@ fun () ->
  let runs = 9 in
  let rows =
    List.map
      (fun pname ->
        let entry = Tagsim.Benchmarks.find pname in
        let program =
          Tagsim.Program.compile ~scheme:Tagsim.Scheme.high5 ~support:chk
            ~sizes:entry.Tagsim.Benchmarks.sizes
            entry.Tagsim.Benchmarks.source
        in
        let run_once () =
          let r = Tagsim.Program.run program in
          assert (r.Tagsim.Program.abort = None)
        in
        let formed_of (tt : Tagsim.Machine.trace_totals) =
          tt.Tagsim.Machine.tt_formed
        in
        (* Seed the store to its fixed point: newly installed traces can
           shift tier-1 heat, so a couple of rounds may each discover a
           few more heads before the plan covers everything the runs
           ever promote. *)
        let rec seed round =
          Tagsim.Program.drop_tstate program;
          let before = formed_of (Tagsim.Machine.trace_counters ()) in
          run_once ();
          let formed = formed_of (Tagsim.Machine.trace_counters ()) - before in
          if formed > 0 && round < 5 then seed (round + 1)
        in
        seed 0;
        (* Planned-trace count and warm-formation check, outside the
           timed region. *)
        Tagsim.Program.drop_tstate program;
        let loaded0 = Plan.traces_loaded () in
        let formed0 = formed_of (Tagsim.Machine.trace_counters ()) in
        run_once ();
        let planned = Plan.traces_loaded () - loaded0 in
        let warm_formed = formed_of (Tagsim.Machine.trace_counters ()) - formed0 in
        let cold_leg () =
          Plan.set_enabled false;
          Tagsim.Program.drop_tstate program;
          time_leg run_once
        in
        let warm_leg () =
          Plan.set_enabled true;
          Tagsim.Program.drop_tstate program;
          time_leg run_once
        in
        (* Interleaved rounds, as in the engine benchmark: slow drift
           hits both legs alike. *)
        let cold = ref infinity and warm = ref infinity in
        for _round = 1 to runs do
          cold := min !cold (cold_leg ());
          warm := min !warm (warm_leg ())
        done;
        Plan.set_enabled true;
        (pname, planned, warm_formed, !cold, !warm))
      engine_programs
  in
  Fmt.pr "@.Traced-engine start, cold profile vs warm plan (high5, full \
          checking, best of %d):@." runs;
  List.iter
    (fun (pname, planned, warm_formed, cold, warm) ->
      Fmt.pr
        "  %-8s cold %8.2f ms   warm %8.2f ms   (%.3fx; %d planned traces, \
         %d formed warm)@."
        pname (cold *. 1e3) (warm *. 1e3) (cold /. warm) planned warm_formed)
    rows;
  let oc = open_out "BENCH_traceplan.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"benchmark\": \"one full traced-engine run per program, cold \
       tstate (online tier-1 profiling and trace formation) vs warm start \
       from the persistent plan store (plans pre-compiled on attach)\",\n";
  out "  \"scheme\": \"high5\",\n";
  out "  \"support\": \"software, full checking\",\n";
  out "  \"runs_per_leg\": %d,\n" runs;
  out "  \"programs\": [\n";
  List.iteri
    (fun i (pname, planned, warm_formed, cold, warm) ->
      out
        "    { \"program\": %S, \"planned_traces\": %d, \
         \"warm_formations\": %d, \"cold_ms_best\": %.3f, \
         \"warm_ms_best\": %.3f, \"warm_speedup\": %.3f }%s\n"
        pname planned warm_formed (cold *. 1e3) (warm *. 1e3) (cold /. warm)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  close_out oc;
  Fmt.pr "Cold/warm trace-plan timings written to BENCH_traceplan.json@."

let () =
  let jobs = ref 0 in
  let engines_only = ref false in
  let cache_only = ref false in
  let compile_only = ref false in
  let traceplan_only = ref false in
  let rec parse = function
    | [] -> ()
    | ("--jobs" | "-j") :: n :: rest ->
        jobs := int_of_string n;
        parse rest
    | arg :: rest
      when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
        jobs := int_of_string (String.sub arg 7 (String.length arg - 7));
        parse rest
    | "--engines-only" :: rest ->
        engines_only := true;
        parse rest
    | "--cache-only" :: rest ->
        cache_only := true;
        parse rest
    | "--compile-only" :: rest ->
        compile_only := true;
        parse rest
    | "--traceplan-only" :: rest ->
        traceplan_only := true;
        parse rest
    | "--no-cache" :: rest ->
        Cache.set_enabled false;
        Objcache.set_enabled false;
        Plan.set_enabled false;
        parse rest
    | _ :: rest -> parse rest
  in
  Cache.set_enabled true;
  Objcache.set_enabled true;
  Plan.set_enabled true;
  parse (List.tl (Array.to_list Sys.argv));
  Tagsim.Analysis.Pool.set_default_jobs !jobs;
  if !engines_only then engine_benchmark ()
  else if !cache_only then cache_benchmark ()
  else if !compile_only then compile_benchmark ()
  else if !traceplan_only then traceplan_benchmark ()
  else begin
    print_all ();
    benchmark ();
    engine_benchmark ();
    cache_benchmark ();
    compile_benchmark ();
    traceplan_benchmark ()
  end
