(* Sanity checks over the experiment layer: each regenerated artifact
   must exhibit the paper's structural facts (not its exact numbers). *)

module T1 = Tagsim.Analysis.Table1
module T2 = Tagsim.Analysis.Table2
module T3 = Tagsim.Analysis.Table3
module F1 = Tagsim.Analysis.Figure1
module F2 = Tagsim.Analysis.Figure2
module G = Tagsim.Analysis.Garith
module Profile = Tagsim.Analysis.Profile
module Ablations = Tagsim.Analysis.Ablations

let t1 = lazy (T1.measure ())
let t2 = lazy (T2.measure ())
let f1 = lazy (F1.measure ())
let f2 = lazy (F2.measure ())
let g = lazy (G.measure ())

let find_row name =
  List.find (fun (r : T1.row) -> r.T1.name = name) (Lazy.force t1).T1.rows

let test_table1_shape () =
  let t = Lazy.force t1 in
  (* checking always costs time *)
  List.iter
    (fun (r : T1.row) ->
      Alcotest.(check bool) (r.T1.name ^ " positive") true (r.T1.total > 0.0))
    t.T1.rows;
  (* the paper's outliers *)
  let total n = (find_row n).T1.total in
  (* the paper's top two (trav and opt, the vector users) are ours too *)
  let sorted =
    List.sort
      (fun (a : T1.row) (b : T1.row) -> compare b.T1.total a.T1.total)
      t.T1.rows
  in
  let top2 = List.map (fun (r : T1.row) -> r.T1.name) [ List.nth sorted 0; List.nth sorted 1 ] in
  Alcotest.(check bool) "trav and opt are the two most affected" true
    (List.mem "trav" top2 && List.mem "opt" top2);
  ignore total;
  let min_total =
    List.fold_left
      (fun m (r : T1.row) -> min m r.T1.total)
      infinity t.T1.rows
  in
  Alcotest.(check bool) "dedgc is the least affected" true
    ((find_row "dedgc").T1.total = min_total);
  Alcotest.(check bool) "trav is vector-dominated" true
    ((find_row "trav").T1.vector > (find_row "trav").T1.list);
  (* list checking dominates for the majority of the programs *)
  let list_dominated =
    List.length
      (List.filter
         (fun (r : T1.row) ->
           r.T1.list >= r.T1.arith && r.T1.list >= r.T1.vector)
         t.T1.rows)
  in
  Alcotest.(check bool) "list checking dominates for most programs" true
    (list_dominated >= 6)

let test_figure1_shape () =
  let f = Lazy.force f1 in
  (* insertion is negligible; checking dominates; removal's share falls
     when checking is added *)
  Alcotest.(check bool) "insertion < 2%" true (f.F1.insertion.F1.without < 2.0);
  Alcotest.(check bool) "checking dominates" true
    (f.F1.checking.F1.with_ > f.F1.removal.F1.with_
    && f.F1.checking.F1.with_ > f.F1.insertion.F1.with_);
  Alcotest.(check bool) "removal share falls under rtc" true
    (f.F1.removal.F1.with_ < f.F1.removal.F1.without);
  Alcotest.(check bool) "insertion/removal not added by rtc" true
    (f.F1.insertion.F1.added = 0.0 && f.F1.removal.F1.added = 0.0);
  (* the 22-32% band of the paper, loosely *)
  let lo = Tagsim.Analysis.Run.mean f.F1.total_without in
  let hi = Tagsim.Analysis.Run.mean f.F1.total_with in
  Alcotest.(check bool)
    (Printf.sprintf "total tag handling band %.1f..%.1f" lo hi)
    true
    (lo > 8.0 && lo < 30.0 && hi > lo && hi < 45.0)

let test_figure2_shape () =
  let f = Lazy.force f2 in
  Alcotest.(check bool) "and instructions drop" true (f.F2.and_ > 1.0);
  Alcotest.(check bool) "total drops" true (f.F2.total > 1.0);
  Alcotest.(check bool) "cycle speedup in the 3-8% band" true
    (f.F2.cycle_speedup > 3.0 && f.F2.cycle_speedup < 8.0);
  Alcotest.(check bool) "noops increase (slots lost their filler)" true
    (f.F2.noop <= 0.0)

let test_table2_shape () =
  let t = Lazy.force t2 in
  (* parallel checking buys nothing without run-time checking *)
  Alcotest.(check (float 0.01)) "row5 nothing w/o rtc" 0.0
    t.T2.row5.T2.d_total.T2.no_rtc;
  Alcotest.(check (float 0.01)) "row6 nothing w/o rtc" 0.0
    t.T2.row6.T2.d_total.T2.no_rtc;
  Alcotest.(check (float 0.01)) "row4 nothing w/o rtc" 0.0 t.T2.row4.T2.no_rtc;
  (* monotonicity *)
  Alcotest.(check bool) "row5 <= row6 <= row7 (rtc)" true
    (t.T2.row5.T2.d_total.T2.rtc <= t.T2.row6.T2.d_total.T2.rtc
    && t.T2.row6.T2.d_total.T2.rtc <= t.T2.row7.T2.d_total.T2.rtc);
  Alcotest.(check bool) "spur <= row7 (rtc)" true
    (t.T2.spur.T2.rtc <= t.T2.row7.T2.d_total.T2.rtc);
  Alcotest.(check bool) "row3 beats row2 (no rtc)" true
    (t.T2.row3.T2.no_rtc >= t.T2.row2.T2.no_rtc);
  (* the paper's headline: the full hardware is worth 9-22%-ish *)
  Alcotest.(check bool) "row7 rtc in the 15-30 band" true
    (t.T2.row7.T2.d_total.T2.rtc > 15.0 && t.T2.row7.T2.d_total.T2.rtc < 30.0)

let test_table3_shape () =
  List.iter
    (fun (r : T3.row) ->
      Alcotest.(check bool) (r.T3.name ^ " has code") true
        (r.T3.procedures > 0 && r.T3.source_lines > 10
       && r.T3.object_words > 300))
    (T3.measure ())

let test_garith_shape () =
  let g = Lazy.force g in
  Alcotest.(check bool) "high6 cheapens generic arithmetic" true
    (g.G.avg_high6 < g.G.avg_high5);
  Alcotest.(check bool) "dispatch-first costs time" true
    (g.G.dispatch_increase > 0.0);
  Alcotest.(check bool) "preshift saves a little (0..2%)" true
    (g.G.preshift_speedup >= 0.0 && g.G.preshift_speedup < 2.0);
  Alcotest.(check bool) "low tags worth roughly the paper's 5.7%" true
    (g.G.low2_speedup > 3.0 && g.G.low2_speedup < 12.0)

let test_profile () =
  let rows =
    Profile.measure ~scheme:Tagsim.Scheme.high5
      ~support:Tagsim.Support.software
      (Tagsim.Benchmarks.find "dedgc")
  in
  let share prefix =
    List.fold_left
      (fun acc (r : Profile.row) ->
        if
          String.length r.Profile.label >= String.length prefix
          && String.sub r.Profile.label 0 (String.length prefix) = prefix
        then acc +. r.Profile.share
        else acc)
      0.0 rows
  in
  let gc_share = share "gc$" +. share "rt$gc" in
  Alcotest.(check bool)
    (Printf.sprintf "dedgc collector region share %.1f in [30, 70]" gc_share)
    true
    (gc_share > 30.0 && gc_share < 70.0);
  (* shares sum to 100 *)
  let total = List.fold_left (fun a (r : Profile.row) -> a +. r.Profile.share) 0.0 rows in
  Alcotest.(check bool) "profile sums to 100%" true
    (abs_float (total -. 100.0) < 0.5)

let test_sched_ablation_ordering () =
  let a = Ablations.measure () in
  Alcotest.(check bool) "hoisting helps" true (a.Ablations.hoist_only < a.Ablations.none);
  Alcotest.(check bool) "filling helps further" true
    (a.Ablations.hoist_fill <= a.Ablations.hoist_only);
  Alcotest.(check bool) "squashing helps further" true
    (a.Ablations.full <= a.Ablations.hoist_fill)

let suite =
  [
    ( "analysis",
      [
        Alcotest.test_case "table1-shape" `Slow test_table1_shape;
        Alcotest.test_case "figure1-shape" `Slow test_figure1_shape;
        Alcotest.test_case "figure2-shape" `Slow test_figure2_shape;
        Alcotest.test_case "table2-shape" `Slow test_table2_shape;
        Alcotest.test_case "table3-shape" `Quick test_table3_shape;
        Alcotest.test_case "garith-shape" `Slow test_garith_shape;
        Alcotest.test_case "profile" `Quick test_profile;
        Alcotest.test_case "sched-ablation" `Slow test_sched_ablation_ordering;
      ] );
  ]
