(* Language-level tests: every primitive and special form, run across all
   four tag schemes with run-time checking both off and on.  Results must
   be identical in every configuration — the tag implementation is an
   implementation detail, never a semantic one. *)

module P = Tagsim.Program
module Scheme = Tagsim.Scheme
module Support = Tagsim.Support

let configs =
  List.concat_map
    (fun scheme ->
      [ (scheme, Support.software);
        (scheme, Support.with_checking Support.software) ])
    Scheme.all

let run_one ~scheme ~support src =
  let _, result = P.run_source ~scheme ~support src in
  (match result.P.abort with
  | Some msg ->
      Alcotest.failf "aborted (%s, %s): %s" scheme.Scheme.name
        (Support.describe support) msg
  | None -> ());
  match result.P.value with
  | Some v -> P.hval_to_string v
  | None -> Alcotest.fail "no value"

(* Check the program's result (printed form) in every configuration. *)
let check src expected () =
  List.iter
    (fun (scheme, support) ->
      let got = run_one ~scheme ~support src in
      Alcotest.(check string)
        (Printf.sprintf "%s [%s/%s]" src scheme.Scheme.name
           (Support.describe support))
        expected got)
    configs

let case name src expected =
  Alcotest.test_case name `Quick (check src expected)

(* Generic arithmetic on boxed numbers is only defined when run-time
   checking is on (with checking off, the compiler open-codes integer
   arithmetic, as PSL did). *)
let check_checked src expected () =
  List.iter
    (fun scheme ->
      let support = Support.with_checking Support.software in
      let got = run_one ~scheme ~support src in
      Alcotest.(check string)
        (Printf.sprintf "%s [%s/rtc]" src scheme.Scheme.name)
        expected got)
    Scheme.all

let case_checked name src expected =
  Alcotest.test_case name `Quick (check_checked src expected)

let arith_cases =
  [
    case "add" "(de main () (+ 1 2 3))" "6";
    case "sub" "(de main () (- 10 3 2))" "5";
    case "neg" "(de main () (- 5))" "-5";
    case "mul" "(de main () (* 3 4 5))" "60";
    case "quotient" "(de main () (quotient 17 5))" "3";
    case "quotient-neg" "(de main () (quotient -17 5))" "-3";
    case "remainder" "(de main () (remainder 17 5))" "2";
    case "remainder-neg" "(de main () (remainder -17 5))" "-2";
    case "min" "(de main () (min 3 1 2))" "1";
    case "max" "(de main () (max 3 1 2))" "3";
    case "abs" "(de main () (abs -7))" "7";
    case "land" "(de main () (land 12 10))" "8";
    case "lor" "(de main () (lor 12 10))" "14";
    case "lxor" "(de main () (lxor 12 10))" "6";
    case "add1" "(de main () (add1 41))" "42";
    case "sub1" "(de main () (sub1 43))" "42";
    case "negative-arith" "(de main () (+ -5 -6))" "-11";
    case "big" "(de main () (* 1000 1000))" "1000000";
    case "gcd" "(de main () (gcd 12 18))" "6";
    case "zerop" "(de main () (if (zerop 0) 1 2))" "1";
    case "minusp" "(de main () (if (minusp -3) 1 2))" "1";
    case "compare-lt" "(de main () (if (< 1 2) 'yes 'no))" "yes";
    case "compare-ge" "(de main () (if (>= 2 2) 'yes 'no))" "yes";
    case "compare-le" "(de main () (if (<= 3 2) 'yes 'no))" "no";
    case "eqn" "(de main () (if (= 5 5) 'yes 'no))" "yes";
    case "neqn" "(de main () (if (/= 5 5) 'yes 'no))" "no";
  ]

let list_cases =
  [
    case "cons-car-cdr" "(de main () (cdr (cons 1 2)))" "2";
    case "list-lit" "(de main () (list 1 2 3))" "(1 2 3)";
    case "list-long" "(de main () (list 1 2 3 4 5 6 7 8))" "(1 2 3 4 5 6 7 8)";
    case "quote" "(de main () '(a b (c d) 3))" "(a b (c d) 3)";
    case "append" "(de main () (append '(1 2) '(3 4)))" "(1 2 3 4)";
    case "reverse" "(de main () (reverse '(1 2 3)))" "(3 2 1)";
    case "length" "(de main () (length '(a b c d)))" "4";
    case "memq" "(de main () (memq 'c '(a b c d)))" "(c d)";
    case "memq-miss" "(de main () (memq 'z '(a b c)))" "nil";
    case "member" "(de main () (member '(1) '((0) (1) (2))))" "((1) (2))";
    case "assq" "(de main () (cdr (assq 'b '((a 1) (b 2) (c 3)))))" "(2)";
    case "equal" "(de main () (if (equal '(1 (2)) '(1 (2))) 'yes 'no))" "yes";
    case "rplaca" "(de main () (let ((x (cons 1 2))) (rplaca x 9) (car x)))"
      "9";
    case "rplacd" "(de main () (let ((x (cons 1 2))) (rplacd x 9) (cdr x)))"
      "9";
    case "nth" "(de main () (nth '(10 20 30) 2))" "30";
    case "last" "(de main () (last '(1 2 3)))" "(3)";
    case "nconc" "(de main () (nconc (list 1 2) (list 3)))" "(1 2 3)";
    case "delq" "(de main () (delq 'b '(a b c b)))" "(a c)";
    case "copy" "(de main () (copy '(1 (2 3))))" "(1 (2 3))";
    case "dolist"
      "(de main () (let ((n 0)) (dolist (x '(1 2 3)) (setq n (+ n x))) n))"
      "6";
    case "cadr" "(de main () (cadr '(1 2 3)))" "2";
    case "cddr" "(de main () (cddr '(1 2 3)))" "(3)";
    case "caddr" "(de main () (caddr '(1 2 3)))" "3";
  ]

let predicate_cases =
  [
    case "atom-sym" "(de main () (if (atom 'a) 'yes 'no))" "yes";
    case "atom-pair" "(de main () (if (atom '(1)) 'yes 'no))" "no";
    case "pairp" "(de main () (if (pairp '(1)) 'yes 'no))" "yes";
    case "pairp-nil" "(de main () (if (pairp nil) 'yes 'no))" "no";
    case "null" "(de main () (if (null nil) 'yes 'no))" "yes";
    case "numberp-int" "(de main () (if (numberp 3) 'yes 'no))" "yes";
    case "numberp-sym" "(de main () (if (numberp 'a) 'yes 'no))" "no";
    case "numberp-neg" "(de main () (if (numberp -3) 'yes 'no))" "yes";
    case "symbolp" "(de main () (if (symbolp 'a) 'yes 'no))" "yes";
    case "symbolp-int" "(de main () (if (symbolp 3) 'yes 'no))" "no";
    case "vectorp" "(de main () (if (vectorp (mkvect 3)) 'yes 'no))" "yes";
    case "vectorp-no" "(de main () (if (vectorp '(1)) 'yes 'no))" "no";
    case "boxp" "(de main () (if (boxp (makebox 1)) 'yes 'no))" "yes";
    case "boxp-no" "(de main () (if (boxp 1) 'yes 'no))" "no";
    case "eq-sym" "(de main () (if (eq 'a 'a) 'yes 'no))" "yes";
    case "eq-int" "(de main () (if (eq 3 3) 'yes 'no))" "yes";
    case "neq" "(de main () (if (neq 'a 'b) 'yes 'no))" "yes";
    case "pred-value" "(de main () (pairp '(1)))" "t";
    case "pred-value-nil" "(de main () (pairp 3))" "nil";
    case "numberp-value" "(de main () (numberp 7))" "t";
  ]

let control_cases =
  [
    case "cond"
      "(de main () (cond ((eq 1 2) 'a) ((eq 1 1) 'b) (t 'c)))" "b";
    case "cond-default" "(de main () (cond ((eq 1 2) 'a) (t 'c)))" "c";
    case "cond-value" "(de main () (cond ((memq 'b '(a b))) (t 'no)))"
      "(b)";
    case "and" "(de main () (and 1 2 3))" "3";
    case "and-nil" "(de main () (and 1 nil 3))" "nil";
    case "or" "(de main () (or nil nil 7))" "7";
    case "or-first" "(de main () (or 5 9))" "5";
    case "when" "(de main () (when (eq 1 1) 'a 'b))" "b";
    case "unless" "(de main () (unless (eq 1 2) 'b))" "b";
    case "while"
      "(de main () (let ((i 0) (s 0)) (while (< i 5) (setq s (+ s i)) \
       (incf i)) s))"
      "10";
    case "dotimes" "(de main () (let ((s 0)) (dotimes (i 5) (setq s (+ s i))) s))"
      "10";
    case "progn" "(de main () (progn 1 2 3))" "3";
    case "prog1" "(de main () (prog1 1 2 3))" "1";
    case "nested-let"
      "(de main () (let ((x 1)) (let ((y 2)) (let ((x 10)) (+ x y)))))" "12";
    case "setq-shadow"
      "(de main () (let ((x 1)) (let ((x 2)) (setq x 3)) x))" "1";
    case "deep-call"
      "(de f1 (x) (+ x 1)) (de f2 (x) (* (f1 x) 2))\n\
       (de main () (f2 (f2 (f2 1))))" "22";
    case "four-args" "(de f (a b c d) (- (+ a c) (+ b d)))\n\
                      (de main () (f 10 2 30 4))" "34";
    case "recursion-acc"
      "(de sum (l acc) (if (null l) acc (sum (cdr l) (+ acc (car l)))))\n\
       (de main () (sum '(1 2 3 4 5) 0))" "15";
  ]

let global_symbol_cases =
  [
    case "global" "(de main () (setq g 42) (+ g 1))" "43";
    case "global-init-nil" "(de main () (if (null gundefined) 'yes 'no))" "yes";
    case "plist" "(de main () (put 'x 'color 'red) (get 'x 'color))" "red";
    case "plist-update"
      "(de main () (put 'x 'k 1) (put 'x 'k 2) (get 'x 'k))" "2";
    case "plist-two-keys"
      "(de main () (put 'x 'a 1) (put 'x 'b 2) (+ (get 'x 'a) (get 'x 'b)))"
      "3";
    case "plist-miss" "(de main () (get 'x 'nope))" "nil";
    case "remprop"
      "(de main () (put 'x 'k 5) (remprop 'x 'k) (get 'x 'k))" "nil";
    case "funcall" "(de double (x) (* x 2))\n\
                    (de main () (funcall 'double 21))" "42";
    case "funcall-var"
      "(de inc (x) (+ x 1)) (de dec (x) (- x 1))\n\
       (de main () (let ((f (if nil 'inc 'dec))) (funcall f 10)))" "9";
    case "mapcar" "(de double (x) (* x 2))\n\
                   (de main () (mapcar 'double '(1 2 3)))" "(2 4 6)";
  ]

let vector_cases =
  [
    case "mkvect-getv" "(de main () (getv (mkvect 5) 3))" "nil";
    case "putv-getv"
      "(de main () (let ((v (mkvect 5))) (putv v 2 'x) (getv v 2)))" "x";
    case "putv-result" "(de main () (putv (mkvect 3) 0 99))" "99";
    case "vlen" "(de main () (vlen (mkvect 7)))" "7";
    case "vlen-zero" "(de main () (vlen (mkvect 0)))" "0";
    case "vector-sum"
      "(de main ()\n\
      \  (let ((v (mkvect 10)) (s 0))\n\
      \    (dotimes (i 10) (putv v i (* i i)))\n\
      \    (dotimes (i 10) (setq s (+ s (getv v i))))\n\
      \    s))"
      "285";
    case "vector-of-lists"
      "(de main () (let ((v (mkvect 2))) (putv v 0 '(1 2)) (car (getv v 0))))"
      "1";
  ]

let boxnum_cases =
  [
    case "makebox-unbox" "(de main () (unbox (makebox 17)))" "17";
    case_checked "box-add" "(de main () (unbox (+ (makebox 3) 4)))" "7";
    case_checked "box-add-rev" "(de main () (unbox (+ 4 (makebox 3))))" "7";
    case_checked "box-box" "(de main () (unbox (+ (makebox 3) (makebox 5))))"
      "8";
    case_checked "box-sub" "(de main () (unbox (- (makebox 10) 4)))" "6";
    case "box-neg-payload" "(de main () (unbox (makebox -9)))" "-9";
  ]

let suite =
  [
    ("lang.arith", arith_cases);
    ("lang.lists", list_cases);
    ("lang.predicates", predicate_cases);
    ("lang.control", control_cases);
    ("lang.globals", global_symbol_cases);
    ("lang.vectors", vector_cases);
    ("lang.boxnums", boxnum_cases);
  ]
