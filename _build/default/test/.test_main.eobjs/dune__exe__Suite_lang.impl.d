test/suite_lang.ml: Alcotest List Printf Tagsim
