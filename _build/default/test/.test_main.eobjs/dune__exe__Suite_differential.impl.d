test/suite_differential.ml: Alcotest Buffer List QCheck QCheck_alcotest Tagsim
