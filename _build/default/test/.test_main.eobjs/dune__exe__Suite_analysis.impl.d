test/suite_analysis.ml: Alcotest Lazy List Printf String Tagsim
