test/suite_smoke.ml: Alcotest Tagsim
