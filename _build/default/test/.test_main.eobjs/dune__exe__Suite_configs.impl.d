test/suite_configs.ml: Alcotest List Option Printf Tagsim
