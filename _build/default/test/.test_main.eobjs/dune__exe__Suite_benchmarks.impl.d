test/suite_benchmarks.ml: Alcotest List Option Printf Tagsim Tagsim_programs
