test/suite_costs.ml: Alcotest Printf Tagsim
