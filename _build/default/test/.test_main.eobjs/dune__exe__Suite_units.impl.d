test/suite_units.ml: Alcotest Array Fmt Hashtbl List Printf Tagsim
