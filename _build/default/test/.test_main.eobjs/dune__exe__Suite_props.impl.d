test/suite_props.ml: List Printf QCheck QCheck_alcotest String Tagsim Test
