(* Golden cost-model tests: the paper states exact cycle costs for the
   tag operations (Sections 3-4), and the emission layer must reproduce
   them, per scheme and per hardware configuration:

   - tag insertion: 2 cycles high-tag, 1 low-tag, 1 with a preshifted
     pair tag (Section 3.1);
   - tag removal: 1 cycle masking, 0 with low tags or tag-ignoring
     memory (Sections 3.2, 5);
   - integer test: 3 cycles high-tag (method 2 of Section 4.1), 2
     low-tag;
   - tag check: extraction + compare-and-branch (+ unused slots charged
     to checking, Section 3.4); 1 instruction with a tag branch
     (Section 6.1);
   - a full integer-biased generic add: 10 cycles of checking+add on the
     high-tag scheme (Section 4.2), 4-5 under the High6 encoding.

   Each test emits exactly one operation, runs it on the machine with
   operands preloaded into registers, and asserts the per-category cycle
   counters. *)

module Scheme = Tagsim.Scheme
module Support = Tagsim.Support
module Emit = Tagsim.Emit
module Insn = Tagsim.Insn
module Reg = Tagsim.Reg
module Buf = Tagsim.Buf
module Sched = Tagsim.Sched
module Image = Tagsim.Image
module Machine = Tagsim.Machine
module Stats = Tagsim.Stats
module Annot = Tagsim.Annot

(* Emit [build ctx], a halt, and an error sink; run with [setup] applied
   to the machine first; return the statistics. *)
let measure ?(sched = Sched.off) ~scheme ~support ?(setup = fun _ -> ())
    build =
  let b = Buf.create () in
  let ctx = { Emit.b; scheme; support } in
  build ctx;
  Buf.emit b Insn.Halt;
  Emit.label ctx "err";
  Buf.emit b (Insn.Trap 0);
  let image = Image.assemble ~sched b in
  let hw = Scheme.machine_hw ~mem_bytes:(1 lsl 20) scheme in
  let m = Machine.create ~hw image in
  Machine.set_reg m Reg.rmask scheme.Scheme.data_mask;
  setup m;
  (match Machine.run m with
  | Machine.Halted _ -> ()
  | Machine.Aborted c -> Alcotest.failf "aborted %d" c);
  Machine.stats m

let pair_item scheme = Scheme.encode_ptr scheme Scheme.Pair (256 * 8)
let int_item scheme n = Scheme.encode_int scheme n

let test_insertion_costs () =
  let insert scheme support =
    let stats =
      measure ~scheme ~support
        ~setup:(fun m -> Machine.set_reg m Reg.t0 (256 * 8))
        (fun ctx ->
          Emit.insert_tag ctx ~ty:Scheme.Pair ~src:Reg.t0 ~dst:Reg.t1
            ~scratch:Reg.v1)
    in
    Stats.insertion stats
  in
  Alcotest.(check int) "high5 insertion = 2" 2
    (insert Scheme.high5 Support.software);
  Alcotest.(check int) "high6 insertion = 2" 2
    (insert Scheme.high6 Support.software);
  Alcotest.(check int) "low2 insertion = 1" 1
    (insert Scheme.low2 Support.software);
  Alcotest.(check int) "low3 insertion = 1" 1
    (insert Scheme.low3 Support.software);
  (* Section 3.1: a preshifted pair tag halves the high-tag cost. *)
  let preshift = { Support.software with Support.preshifted_pair_tag = true } in
  let stats =
    measure ~scheme:Scheme.high5 ~support:preshift
      ~setup:(fun m ->
        Machine.set_reg m Reg.t0 (256 * 8);
        Machine.set_reg m Reg.k5
          (Scheme.high5.Scheme.tag Scheme.Pair lsl Scheme.high5.Scheme.tag_shift))
      (fun ctx ->
        Emit.insert_tag ctx ~ty:Scheme.Pair ~src:Reg.t0 ~dst:Reg.t1
          ~scratch:Reg.v1)
  in
  Alcotest.(check int) "high5 preshifted insertion = 1" 1
    (Stats.insertion stats)

let test_removal_costs () =
  let removal scheme support =
    let stats =
      measure ~scheme ~support
        ~setup:(fun m -> Machine.set_reg m Reg.t0 (pair_item scheme))
        (fun ctx ->
          let acc =
            Emit.object_access ctx ~ty:Scheme.Pair ~parallel:false Reg.t0
              ~scratch:Reg.v1
          in
          Emit.load ctx acc ~dst:Reg.t1 ~off:0)
    in
    Stats.removal stats
  in
  Alcotest.(check int) "high5 removal = 1" 1
    (removal Scheme.high5 Support.software);
  Alcotest.(check int) "low2 removal = 0" 0
    (removal Scheme.low2 Support.software);
  Alcotest.(check int) "low3 removal = 0" 0
    (removal Scheme.low3 Support.software);
  Alcotest.(check int) "high5 + tag-ignoring removal = 0" 0
    (removal Scheme.high5 Support.row1_hw)

let test_int_test_costs () =
  (* Not-taken integer test on an integer operand: extraction + branch
     (+ the branch's two unfilled slots, charged to checking as in
     Section 3.4). *)
  let cost scheme =
    let stats =
      measure ~scheme ~support:Support.software
        ~setup:(fun m -> Machine.set_reg m Reg.t0 (int_item scheme 7))
        (fun ctx ->
          Emit.int_test ctx ~src_kind:Annot.Arith_op ~sense:`Is_not Reg.t0
            ~scratch:Reg.v1 "err")
    in
    ( Stats.extraction stats,
      Stats.check_only stats,
      Stats.tag_checking stats )
  in
  let ext5, chk5, tot5 = cost Scheme.high5 in
  Alcotest.(check int) "high5 int-test extraction = 2" 2 ext5;
  Alcotest.(check int) "high5 int-test branch+slots = 3" 3 chk5;
  Alcotest.(check int) "high5 int-test total = 5" 5 tot5;
  let ext2, chk2, tot2 = cost Scheme.low2 in
  Alcotest.(check int) "low2 int-test extraction = 1" 1 ext2;
  Alcotest.(check int) "low2 int-test branch+slots = 3" 3 chk2;
  Alcotest.(check int) "low2 int-test total = 4" 4 tot2

let test_check_costs () =
  (* Pair check on a pair (not taken): extract (1) + branch (1) + two
     slots; a single instruction (+ slots) with the tag branch. *)
  let cost scheme support =
    let stats =
      measure ~scheme ~support
        ~setup:(fun m -> Machine.set_reg m Reg.t0 (pair_item scheme))
        (fun ctx ->
          Emit.check_type ctx ~src_kind:Annot.List_op ~ty:Scheme.Pair
            ~sense:`Is_not Reg.t0 ~scratch:Reg.v1 "err")
    in
    (Stats.extraction stats, Stats.check_only stats)
  in
  let ext, chk = cost Scheme.high5 Support.software in
  Alcotest.(check int) "high5 check extraction = 1" 1 ext;
  Alcotest.(check int) "high5 check branch+slots = 3" 3 chk;
  let ext, chk = cost Scheme.high5 Support.row2 in
  Alcotest.(check int) "tag-branch check extraction = 0" 0 ext;
  Alcotest.(check int) "tag-branch check branch+slots = 3" 3 chk;
  (* Low2's escape-tagged types need the extra header compare. *)
  let addr = 256 * 8 in
  let stats =
    measure ~scheme:Scheme.low2 ~support:Support.software
      ~setup:(fun m ->
        Machine.set_reg m Reg.t0 (Scheme.encode_ptr Scheme.low2 Scheme.Vector addr);
        Machine.poke m addr Scheme.subtype_vector)
      (fun ctx ->
        Emit.check_type ctx ~src_kind:Annot.Vector_op ~ty:Scheme.Vector
          ~sense:`Is_not Reg.t0 ~scratch:Reg.v1 "err")
  in
  Alcotest.(check bool) "low2 escape check costs more" true
    (Stats.tag_checking stats > 4)

let test_generic_add_cost () =
  (* The full integer-biased generic add of Section 4.2: "10 cycles: 9
     cycles for type and overflow checking, and 1 for adding" on the
     straightforward scheme.  We measure a compiled (+ x y) body with
     both operands unknown, by differencing against a body that moves an
     operand instead of adding. *)
  let cycles ~scheme ~support src =
    let _, result =
      Tagsim.Program.run_source ~sched:Sched.off ~scheme ~support src
    in
    Tagsim.Stats.total result.Tagsim.Program.stats
  in
  let add_prog = "(de f (x y) (+ x y)) (de main () (f 3 4))" in
  let base_prog = "(de f (x y) (progn y x)) (de main () (f 3 4))" in
  let overhead scheme support =
    cycles ~scheme ~support add_prog - cycles ~scheme ~support base_prog
  in
  let chk = Support.with_checking Support.software in
  (* Without checking the add is the single machine instruction (the
     baseline moves between temporaries similarly). *)
  Alcotest.(check int) "unchecked add = 1 cycle" 1
    (overhead Scheme.high5 Support.software);
  (* With checking: 2 int tests (incl. their branch slots) + add +
     overflow check + the move out of the scratch result register: 17
     cycles with every slot unfilled.  The paper's 10 counts the branch
     slots as overlapped, which the scheduler mostly recovers (below). *)
  let c = overhead Scheme.high5 chk in
  Alcotest.(check int) "checked generic add, slots unfilled" 17 c;
  (* With the delay-slot scheduler the net cost approaches the paper's
     10 cycles. *)
  let cycles_sched src =
    let _, result = Tagsim.Program.run_source ~scheme:Scheme.high5 ~support:chk src in
    Tagsim.Stats.total result.Tagsim.Program.stats
  in
  let c_sched = cycles_sched add_prog - cycles_sched base_prog in
  Alcotest.(check bool)
    (Printf.sprintf "scheduled generic add cost %d within [10, 14]" c_sched)
    true
    (c_sched >= 10 && c_sched <= 14);
  (* High6 (Section 4.2): add + single validity check. *)
  let c6 = overhead Scheme.high6 chk in
  Alcotest.(check bool)
    (Printf.sprintf "high6 generic add cost %d < high5's %d" c6 c)
    true (c6 < c);
  (* Hardware generic arithmetic (row 4): back to a single cycle. *)
  Alcotest.(check int) "hw generic add = 1 cycle" 1
    (overhead Scheme.high5 (Support.with_checking Support.row4))

let test_parallel_check_cost () =
  (* With parallel-checked loads, a checked car has no explicit check or
     mask at all (Section 6.2.1). *)
  let stats scheme support =
    measure ~scheme ~support
      ~setup:(fun m -> Machine.set_reg m Reg.t0 (pair_item scheme))
      (fun ctx ->
        let parallel = Emit.parallel_covers ctx Scheme.Pair in
        if (not parallel) && ctx.Emit.support.Support.runtime_checking then
          Emit.check_type ~checking:true ctx ~src_kind:Annot.List_op
            ~ty:Scheme.Pair ~sense:`Is_not Reg.t0 ~scratch:Reg.v1 "err";
        let acc =
          Emit.object_access ctx ~ty:Scheme.Pair ~parallel Reg.t0
            ~scratch:Reg.v1
        in
        Emit.load ctx acc ~dst:Reg.t1 ~off:0)
  in
  let soft = stats Scheme.high5 (Support.with_checking Support.software) in
  let par = stats Scheme.high5 (Support.with_checking Support.row5) in
  Alcotest.(check bool) "software checked car has check cycles" true
    (Stats.tag_checking soft > 0);
  Alcotest.(check int) "parallel checked car: no check cycles" 0
    (Stats.tag_checking par);
  Alcotest.(check int) "parallel checked car: no mask cycles" 0
    (Stats.removal par)

(* Checked vector access (getv): tag check + index type check + bounds
   check; Low2 pays extra for the escape-tag discrimination, and the
   parallel hardware hides the tag check inside the length load. *)
let test_vector_access_costs () =
  let cycles ~scheme ~support =
    let src = "(de f (v i) (getv v i)) (de main () (f (mkvect 4) 2))" in
    let base = "(de f (v i) (progn i v)) (de main () (f (mkvect 4) 2))" in
    let run s =
      let _, r = Tagsim.Program.run_source ~sched:Sched.off ~scheme ~support s in
      Tagsim.Stats.total r.Tagsim.Program.stats
    in
    run src - run base
  in
  let chk = Support.with_checking Support.software in
  let h5_plain = cycles ~scheme:Scheme.high5 ~support:Support.software in
  let h5_chk = cycles ~scheme:Scheme.high5 ~support:chk in
  let l2_chk = cycles ~scheme:Scheme.low2 ~support:chk in
  let h5_par = cycles ~scheme:Scheme.high5 ~support:(Support.with_checking Support.row6) in
  (* Unchecked high5 getv: mask + scale + add + load, plus the load-use
     interlock on the just-computed address = 5 cycles. *)
  Alcotest.(check int) "unchecked high5 getv = 5" 5 h5_plain;
  Alcotest.(check bool)
    (Printf.sprintf "checking adds a lot (%d -> %d)" h5_plain h5_chk)
    true
    (h5_chk >= h5_plain + 8);
  Alcotest.(check bool)
    (Printf.sprintf "low2 escape check costs more than high5 (%d > %d)"
       l2_chk h5_chk)
    true (l2_chk > h5_chk);
  Alcotest.(check bool)
    (Printf.sprintf "parallel checking is cheaper (%d < %d)" h5_par h5_chk)
    true (h5_par < h5_chk)

let suite =
  [
    ( "costs",
      [
        Alcotest.test_case "insertion" `Quick test_insertion_costs;
        Alcotest.test_case "removal" `Quick test_removal_costs;
        Alcotest.test_case "int-test" `Quick test_int_test_costs;
        Alcotest.test_case "type-check" `Quick test_check_costs;
        Alcotest.test_case "generic-add" `Quick test_generic_add_cost;
        Alcotest.test_case "parallel-check" `Quick test_parallel_check_cost;
        Alcotest.test_case "vector-access" `Quick test_vector_access_costs;
      ] );
  ]
