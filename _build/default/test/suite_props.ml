(* Property-based tests (qcheck, registered as alcotest cases).

   - encode/decode roundtrips and hardware-test agreement for every tag
     scheme;
   - the reader/printer roundtrip;
   - random arithmetic expressions evaluate exactly as an OCaml reference,
     across every scheme with checking off and on (the compiled code path
     differs radically between configurations; the values must not);
   - random list data survives construction, copying and a forced
     collection in a tiny heap. *)

module Scheme = Tagsim.Scheme
module Support = Tagsim.Support
module Sexp = Tagsim.Sexp
module Word = Tagsim.Word
module P = Tagsim.Program

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- Word properties. --- *)

let word_props =
  let open QCheck in
  [
    Test.make ~name:"word add = mod 2^32" ~count:500
      (pair (int_bound Word.mask) (int_bound Word.mask))
      (fun (a, b) -> Word.add a b = (a + b) land Word.mask);
    Test.make ~name:"word to_signed/of_int roundtrip" ~count:500
      (int_range (-0x80000000) 0x7FFFFFFF)
      (fun n -> Word.to_signed (Word.of_int n) = n);
    Test.make ~name:"sra agrees with asr on signed" ~count:500
      (pair (int_range (-0x80000000) 0x7FFFFFFF) (int_bound 31))
      (fun (n, k) -> Word.to_signed (Word.sra (Word.of_int n) k) = n asr k);
  ]

(* --- Scheme properties. --- *)

let scheme_props =
  let open QCheck in
  List.concat_map
    (fun scheme ->
      let name = scheme.Scheme.name in
      let in_range =
        int_range scheme.Scheme.int_min scheme.Scheme.int_max
      in
      [
        Test.make
          ~name:(name ^ ": int roundtrip and is_int")
          ~count:500 in_range
          (fun n ->
            let w = Scheme.encode_int scheme n in
            Scheme.decode_int scheme w = n && Scheme.is_int_item scheme w);
        Test.make
          ~name:(name ^ ": gen_overflowed = out-of-range sum")
          ~count:500 (pair in_range in_range)
          (fun (a, b) ->
            let wa = Scheme.encode_int scheme a
            and wb = Scheme.encode_int scheme b in
            let sum = Word.add wa wb in
            let fits =
              a + b >= scheme.Scheme.int_min && a + b <= scheme.Scheme.int_max
            in
            Scheme.gen_overflowed scheme wa wb sum = not fits
            && (not fits) = not (fits && Scheme.decode_int scheme sum = a + b));
        Test.make
          ~name:(name ^ ": pointer roundtrip, never an int")
          ~count:200
          (pair (int_range 1 4096)
             (oneofl [ Scheme.Pair; Scheme.Symbol; Scheme.Vector; Scheme.Boxnum ]))
          (fun (block, ty) ->
            let addr = block * scheme.Scheme.obj_align in
            let w = Scheme.encode_ptr scheme ty addr in
            Scheme.ptr_addr scheme w = addr
            && not (Scheme.is_int_item scheme w));
      ])
    Scheme.all

(* --- Reader/printer roundtrip. --- *)

let gen_sexp =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        map (fun n -> Sexp.Int n) (int_range (-1000) 1000);
        map
          (fun i -> Sexp.Sym (List.nth [ "a"; "b"; "foo"; "x1"; "-"; "+" ] i))
          (int_bound 5);
      ]
  in
  sized
  @@ fix (fun self n ->
         if n = 0 then atom
         else
           frequency
             [
               (2, atom);
               ( 3,
                 map
                   (fun l -> Sexp.List l)
                   (list_size (int_bound 4) (self (n / 2))) );
             ])

let rec sexp_equal a b =
  match (a, b) with
  | Sexp.Int x, Sexp.Int y -> x = y
  | Sexp.Sym x, Sexp.Sym y -> x = y
  | Sexp.List x, Sexp.List y ->
      List.length x = List.length y && List.for_all2 sexp_equal x y
  | _ -> false

let sexp_props =
  [
    QCheck.Test.make ~name:"sexp print/parse roundtrip" ~count:300
      (QCheck.make ~print:Sexp.to_string gen_sexp)
      (fun s -> sexp_equal s (Sexp.parse (Sexp.to_string s)));
  ]

(* --- Random arithmetic programs. --- *)

type aexpr =
  | Lit of int
  | Bin of string * aexpr * aexpr (* +, -, *, min, max *)

let rec aexpr_src = function
  | Lit n -> string_of_int n
  | Bin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" op (aexpr_src a) (aexpr_src b)

exception Out_of_range

(* Reference evaluation; raises if any intermediate leaves the common
   integer range (high6 is the narrowest: 26 bits). *)
let rec aexpr_eval e =
  let guard n = if n < -33000000 || n > 33000000 then raise Out_of_range else n in
  match e with
  | Lit n -> n
  | Bin (op, a, b) -> (
      let x = aexpr_eval a and y = aexpr_eval b in
      guard
        (match op with
        | "+" -> x + y
        | "-" -> x - y
        | "*" -> x * y
        | "min" -> min x y
        | _ -> max x y))

let gen_aexpr =
  let open QCheck.Gen in
  (* size bounded so expression depth stays within the compiler's
     nine-temporary evaluation stack *)
  sized_size (int_bound 20)
  @@ fix (fun self n ->
         if n = 0 then map (fun i -> Lit i) (int_range (-50) 50)
         else
           frequency
             [
               (1, map (fun i -> Lit i) (int_range (-50) 50));
               ( 3,
                 map3
                   (fun op a b -> Bin (op, a, b))
                   (oneofl [ "+"; "-"; "*"; "min"; "max" ])
                   (self (n / 2)) (self (n / 2)) );
             ])

let arith_configs =
  List.concat_map
    (fun scheme ->
      [ (scheme, Support.software);
        (scheme, Support.with_checking Support.software) ])
    Scheme.all

let arith_props =
  [
    QCheck.Test.make ~name:"random arithmetic agrees with OCaml" ~count:60
      (QCheck.make ~print:aexpr_src gen_aexpr)
      (fun e ->
        match aexpr_eval e with
        | exception Out_of_range -> QCheck.assume_fail ()
        | expected ->
            let src = Printf.sprintf "(de main () %s)" (aexpr_src e) in
            List.for_all
              (fun (scheme, support) ->
                let _, r = P.run_source ~scheme ~support src in
                match r.P.value with
                | Some (P.Hint n) -> n = expected
                | _ -> false)
              arith_configs);
  ]

(* --- Random list structures survive copying and collection. --- *)

let rec const_src depth rand =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [ map string_of_int (int_range (-99) 99); oneofl [ "a"; "b"; "c" ] ]
      rand
  else
    let n = int_bound 3 rand in
    let elems = List.init n (fun _ -> const_src (depth - 1) rand) in
    "(" ^ String.concat " " elems ^ ")"

let gen_const = QCheck.Gen.(int_bound 3 >>= fun d -> fun r -> const_src d r)

let gc_props =
  [
    QCheck.Test.make ~name:"structures survive copying GC" ~count:40
      (QCheck.make ~print:(fun s -> s) gen_const)
      (fun quoted ->
        (* Build a deep copy in the heap, churn to force collections, and
           compare against the static constant. *)
        let src =
          Printf.sprintf
            "(de churn (n) (let ((l nil)) (dotimes (i n) (push i l)) l))\n\
             (de main ()\n\
            \  (let ((x (copy '%s)))\n\
            \    (churn 200) (reclaim) (churn 200)\n\
            \    (if (equal x '%s) 'ok 'broken)))"
            quoted quoted
        in
        List.for_all
          (fun scheme ->
            let _, r =
              P.run_source ~scheme ~support:Support.software
                ~sizes:{ Tagsim.Layout.stack_bytes = 1 lsl 16;
                         semi_bytes = 1 lsl 13 }
                src
            in
            match r.P.value with Some (P.Hsym "ok") -> true | _ -> false)
          Scheme.all);
  ]

let suite =
  [
    ( "properties",
      List.map to_alcotest
        (word_props @ scheme_props @ sexp_props @ arith_props @ gc_props) );
  ]
