(* Differential testing: random (typed) programs are evaluated by the
   OCaml reference interpreter (Tagsim.Oracle) and by the full
   compile–schedule–simulate pipeline under every tag scheme with
   checking on.  Values AND run-time errors must agree exactly. *)

module Oracle = Tagsim.Oracle
module P = Tagsim.Program
module Scheme = Tagsim.Scheme
module Support = Tagsim.Support

(* --- A typed random program generator. --- *)

type rty = TInt | TList | TAny

let gen_program : string QCheck.Gen.t =
 fun rand ->
  let open QCheck.Gen in
  let buf = Buffer.create 256 in
  let add = Buffer.add_string buf in
  (* environment: variables with their types *)
  let vars = ref [ ("gi", TInt); ("gl", TList) ] in
  let pick_var ty =
    let cands = List.filter (fun (_, t) -> t = ty) !vars in
    match cands with
    | [] -> None
    | l -> Some (fst (List.nth l (int_bound (List.length l - 1) rand)))
  in
  let symbols = [ "a"; "b"; "c"; "k1"; "k2" ] in
  let sym () = List.nth symbols (int_bound 4 rand) in
  let rec expr ty depth =
    let leaf () =
      match ty with
      | TInt -> (
          match (int_bound 3 rand, pick_var TInt) with
          | 0, Some v -> add v
          | _ -> add (string_of_int (int_range (-40) 40 rand)))
      | TList -> (
          match (int_bound 3 rand, pick_var TList) with
          | 0, Some v -> add v
          | 1, _ -> add "nil"
          | _ ->
              add "'(";
              let n = int_bound 3 rand in
              for i = 0 to n do
                if i > 0 then add " ";
                if bool rand then add (string_of_int (int_bound 9 rand))
                else add (sym ())
              done;
              add ")")
      | TAny -> (
          match int_bound 2 rand with
          | 0 -> expr TInt 0
          | 1 -> expr TList 0
          | _ ->
              add "'";
              add (sym ()))
    in
    if depth <= 0 then leaf ()
    else
      let binary op a tb =
        add "(";
        add op;
        add " ";
        expr a (depth - 1);
        add " ";
        expr tb (depth - 1);
        add ")"
      in
      match ty with
      | TInt -> (
          match int_bound 12 rand with
          | 0 | 1 -> leaf ()
          | 2 -> binary "+" TInt TInt
          | 3 -> binary "-" TInt TInt
          | 4 ->
              (* keep products small *)
              add "(* ";
              add (string_of_int (int_range (-9) 9 rand));
              add " ";
              expr TInt (depth - 1);
              add ")"
          | 5 ->
              add "(length ";
              expr TList (depth - 1);
              add ")"
          | 6 ->
              add "(if ";
              test (depth - 1);
              add " ";
              expr TInt (depth - 1);
              add " ";
              expr TInt (depth - 1);
              add ")"
          | 7 ->
              add "(quotient ";
              expr TInt (depth - 1);
              add " ";
              add (string_of_int (1 + int_bound 8 rand));
              add ")"
          | 8 ->
              (* may be a type error at run time: car of a list that can
                 be empty; both sides must agree *)
              add "(car ";
              expr TList (depth - 1);
              add ")"
          | 9 -> (
              match int_bound 3 rand with
              | 0 ->
                  add "(twice ";
                  expr TInt (depth - 1);
                  add ")"
              | 1 ->
                  add "(sum3 ";
                  expr TInt (depth - 1);
                  add " ";
                  expr TInt (depth - 1);
                  add " ";
                  add (string_of_int (int_bound 9 rand));
                  add ")"
              | 2 ->
                  add "(mylen ";
                  expr TList (depth - 1);
                  add ")"
              | _ ->
                  add "(funcall 'twice ";
                  expr TInt (depth - 1);
                  add ")")
          | 10 ->
              (* vectors: build, store, read back *)
              add "(let ((vv (mkvect ";
              add (string_of_int (1 + int_bound 4 rand));
              add "))) (putv vv 0 ";
              expr TInt (depth - 1);
              add ") (+ (getv vv 0) (vlen vv)))"
          | 11 ->
              add "(unbox (+ (makebox ";
              expr TInt (depth - 1);
              add ") ";
              add (string_of_int (int_bound 9 rand));
              add "))"
          | _ ->
              add "(remainder ";
              expr TInt (depth - 1);
              add " ";
              add (string_of_int (2 + int_bound 7 rand));
              add ")")
      | TList -> (
          match int_bound 7 rand with
          | 0 -> leaf ()
          | 1 ->
              add "(cons ";
              expr TAny (depth - 1);
              add " ";
              expr TList (depth - 1);
              add ")"
          | 2 -> binary "append" TList TList
          | 3 ->
              add "(reverse ";
              expr TList (depth - 1);
              add ")"
          | 4 ->
              add "(cdr ";
              expr TList (depth - 1);
              add ")"
          | 5 ->
              add "(memq '";
              add (sym ());
              add " ";
              expr TList (depth - 1);
              add ")"
          | 6 ->
              add "(if ";
              test (depth - 1);
              add " ";
              expr TList (depth - 1);
              add " ";
              expr TList (depth - 1);
              add ")"
          | _ ->
              add "(delq '";
              add (sym ());
              add " ";
              expr TList (depth - 1);
              add ")")
      | TAny -> expr (if bool rand then TInt else TList) depth
  and test depth =
    if depth <= 0 then add (if bool rand then "t" else "nil")
    else
      match int_bound 5 rand with
      | 0 ->
          add "(pairp ";
          expr TList (depth - 1);
          add ")"
      | 1 ->
          add "(null ";
          expr TList (depth - 1);
          add ")"
      | 2 ->
          add "(lessp ";
          expr TInt (depth - 1);
          add " ";
          expr TInt (depth - 1);
          add ")"
      | 3 ->
          add "(eq ";
          expr TAny (depth - 1);
          add " ";
          expr TAny (depth - 1);
          add ")"
      | 4 ->
          add "(atom ";
          expr TAny (depth - 1);
          add ")"
      | _ ->
          add "(equal ";
          expr TList (depth - 1);
          add " ";
          expr TList (depth - 1);
          add ")"
  in
  (* a helper function the program may call *)
  add "(de twice (x) (+ x x))\n";
  add "(de sum3 (p q r) (+ p (+ q r)))\n";
  add "(de mylen (l) (if (pairp l) (+ 1 (mylen (cdr l))) 0))\n";
  (* main: bind two locals, run a couple of statements, return a value *)
  add "(de main ()\n  (let ((gi ";
  expr TInt 2;
  add ") (gl ";
  expr TList 2;
  add "))\n";
  vars := ("li", TInt) :: !vars;
  add "    (let ((li ";
  expr TInt 2;
  add "))\n";
  let n_stmts = int_bound 2 rand in
  for _ = 0 to n_stmts do
    (match int_bound 3 rand with
    | 0 ->
        add "      (setq gi ";
        expr TInt 2;
        add ")\n"
    | 1 ->
        add "      (setq gl ";
        expr TList 2;
        add ")\n"
    | 2 ->
        add "      (put 'store 'key ";
        expr TInt 2;
        add ")\n"
    | _ ->
        add "      (setq globalv ";
        expr TAny 2;
        add ")\n")
  done;
  (match int_bound 3 rand with
  | 0 ->
      add "      (list gi li (get 'store 'key) ";
      expr TAny 2;
      add ")"
  | 1 ->
      add "      (append gl (list li gi))"
  | 2 ->
      add "      (cons globalv ";
      expr TList 2;
      add ")"
  | _ ->
      add "      (+ gi (if (numberp globalv) globalv li))");
  add ")))";
  Buffer.contents buf

exception Too_deep

(* The compiler rejects expressions deeper than its temporary stack; the
   generator occasionally produces such programs, which are skipped. *)
let run_compiled ~scheme src =
  let support = Support.with_checking Support.software in
  match P.run_source ~scheme ~support src with
  | _, { P.abort = Some msg; _ } -> Error msg
  | _, { P.value = Some v; _ } -> Ok (P.hval_to_string v)
  | _ -> Error "no value"
  | exception Tagsim.Codegen.Error _ -> raise Too_deep

let agree src =
  try
    List.for_all
      (fun scheme ->
        let oracle =
          match Oracle.run ~scheme src with
          | Oracle.Value v -> Ok (Oracle.to_string v)
          | Oracle.Error e -> Error e
        in
        let compiled = run_compiled ~scheme src in
        oracle = compiled)
      Scheme.all
  with Too_deep -> QCheck.assume_fail ()

let props =
  [
    QCheck.Test.make ~name:"random programs: oracle = machine" ~count:250
      (QCheck.make ~print:(fun s -> s) gen_program)
      agree;
  ]

(* A few handwritten agreements covering the error paths explicitly. *)
let test_error_agreement () =
  List.iter
    (fun src ->
      List.iter
        (fun scheme ->
          let oracle =
            match Oracle.run ~scheme src with
            | Oracle.Value v -> Ok (Oracle.to_string v)
            | Oracle.Error e -> Error e
          in
          let compiled = run_compiled ~scheme src in
          if oracle <> compiled then
            Alcotest.failf "%s [%s]: oracle %s, machine %s" src
              scheme.Scheme.name
              (match oracle with Ok s -> s | Error e -> "ERR " ^ e)
              (match compiled with Ok s -> s | Error e -> "ERR " ^ e))
        Scheme.all)
    [
      "(de main () (car nil))";
      "(de main () (car (cdr '(1))))";
      "(de main () (cdr 5))";
      "(de main () (getv (mkvect 2) 2))";
      "(de main () (+ 'x 1))";
      "(de main () (* 'x 2))";
      "(de main () (quotient 4 (length nil)))";
      "(de main () (unbox 3))";
      "(de main () (vlen '(1 2)))";
      "(de main () (funcall 'nodef 1))";
      "(de main () (equal (mkvect 2) (mkvect 2)))";
      "(de main () (eq (makebox 3) (makebox 3)))";
      "(de main () (let ((b (makebox 3))) (eq b b)))";
    ]

let suite =
  [
    ( "differential",
      List.map QCheck_alcotest.to_alcotest props
      @ [ Alcotest.test_case "error-agreement" `Quick test_error_agreement ]
    );
  ]
