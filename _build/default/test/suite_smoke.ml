(* First end-to-end smoke tests: compile and run tiny programs. *)

let scheme = Tagsim.Scheme.high5
let support = Tagsim.Support.software

let run_int ?(scheme = scheme) ?(support = support) src expected =
  let _, result = Tagsim.Program.run_source ~scheme ~support src in
  (match result.Tagsim.Program.abort with
  | Some msg -> Alcotest.failf "aborted: %s" msg
  | None -> ());
  match result.Tagsim.Program.value with
  | Some (Tagsim.Program.Hint n) -> Alcotest.(check int) src expected n
  | Some v ->
      Alcotest.failf "expected int, got %s" (Tagsim.Program.hval_to_string v)
  | None -> Alcotest.fail "no value"

let test_const () = run_int "(de main () 42)" 42
let test_add () = run_int "(de main () (+ 1 2))" 3
let test_let () = run_int "(de main () (let ((x 10) (y 20)) (+ x y)))" 30

let test_call () =
  run_int "(de sq (x) (* x x)) (de main () (sq 7))" 49

let test_fib () =
  run_int
    "(de fib (n) (if (lessp n 2) n (+ (fib (- n 1)) (fib (- n 2)))))\n\
     (de main () (fib 10))"
    55

let test_list () =
  run_int "(de main () (length (list 1 2 3 4 5)))" 5

let test_cons_car () =
  run_int "(de main () (car (cons 42 nil)))" 42

let suite =
  [
    ( "smoke",
      [
        Alcotest.test_case "const" `Quick test_const;
        Alcotest.test_case "add" `Quick test_add;
        Alcotest.test_case "let" `Quick test_let;
        Alcotest.test_case "call" `Quick test_call;
        Alcotest.test_case "fib" `Quick test_fib;
        Alcotest.test_case "list" `Quick test_list;
        Alcotest.test_case "cons-car" `Quick test_cons_car;
      ] );
  ]
