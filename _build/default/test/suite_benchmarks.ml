(* Benchmark validation: every one of the paper's ten programs must
   produce its expected value under every tag scheme, with checking off
   and on, and under the full-hardware configuration.  Also validates the
   benchmark-specific properties the paper calls out (dedgc spends about
   half its time collecting; trav is vector-dominated; rat is
   arithmetic-heavy) and cross-checks rat against an exact reference
   computation in OCaml. *)

module P = Tagsim.Program
module B = Tagsim.Benchmarks
module Scheme = Tagsim.Scheme
module Support = Tagsim.Support
module Stats = Tagsim.Stats

let run e ~scheme ~support =
  let _, r =
    P.run_source ~scheme ~support ~sizes:e.B.sizes e.B.source
  in
  (match r.P.abort with
  | Some m -> Alcotest.failf "%s aborted (%s): %s" e.B.name scheme.Scheme.name m
  | None -> ());
  r

let value r = P.hval_to_string (Option.get r.P.value)

let check_benchmark e () =
  List.iter
    (fun scheme ->
      List.iter
        (fun support ->
          let r = run e ~scheme ~support in
          Alcotest.(check string)
            (Printf.sprintf "%s [%s/%s]" e.B.name scheme.Scheme.name
               (Support.describe support))
            e.B.expected (value r))
        [
          Support.software;
          Support.with_checking Support.software;
          Support.with_checking Support.row7;
        ])
    Scheme.all

let test_dedgc_gc_share () =
  let e = B.find "dedgc" in
  let r = run e ~scheme:Scheme.high5 ~support:Support.software in
  let share =
    float_of_int (Stats.gc r.P.stats) /. float_of_int (Stats.total r.P.stats)
  in
  Alcotest.(check bool)
    (Printf.sprintf "dedgc gc share %.2f in [0.30, 0.65]" share)
    true
    (share >= 0.30 && share <= 0.65);
  Alcotest.(check bool) "dedgc collects a lot" true (r.P.gc_collections >= 10);
  (* deduce itself, with the normal heap, does not collect. *)
  let d = B.find "deduce" in
  let rd = run d ~scheme:Scheme.high5 ~support:Support.software in
  Alcotest.(check int) "deduce does not collect" 0 rd.P.gc_collections

let test_trav_vector_dominated () =
  let e = B.find "trav" in
  let support = Support.with_checking Support.software in
  let r = run e ~scheme:Scheme.high5 ~support in
  let vec = Stats.checking_of r.P.stats Tagsim.Annot.Vector_op in
  let lst = Stats.checking_of r.P.stats Tagsim.Annot.List_op in
  Alcotest.(check bool) "trav: vector checks dominate list checks" true
    (vec > 2 * lst)

let test_rat_arith_heavy () =
  let e = B.find "rat" in
  let support = Support.with_checking Support.software in
  let r = run e ~scheme:Scheme.high5 ~support in
  let arith = Stats.checking_of r.P.stats Tagsim.Annot.Arith_op in
  List.iter
    (fun other ->
      let oe = B.find other in
      let ro = run oe ~scheme:Scheme.high5 ~support in
      let oa =
        float_of_int (Stats.checking_of ro.P.stats Tagsim.Annot.Arith_op)
        /. float_of_int (Stats.total ro.P.stats)
      in
      let ra =
        float_of_int arith /. float_of_int (Stats.total r.P.stats)
      in
      Alcotest.(check bool)
        (Printf.sprintf "rat arith share (%.3f) > %s's (%.3f)" ra other oa)
        true (ra > oa))
    [ "inter"; "deduce"; "brow"; "boyer" ]

(* Exact reference for rat, in OCaml arbitrary-precision-enough ints:
   f(x) = (x^2 - 3x + 5) / (x + 2) at x = (k+1)/(k+2). *)
let test_rat_reference () =
  let s = ref 0 in
  for _rep = 1 to 6 do
    for k = 0 to 39 do
      let a = k + 1 and b = k + 2 in
      let num = (a * a) - (3 * a * b) + (5 * b * b) in
      let den = b * (a + (2 * b)) in
      s := !s + (4000 * num / den)
    done
  done;
  (* two Newton steps from 3/2 for x^2 - 2 *)
  let x_num, x_den = (577, 408) in
  let expected = Printf.sprintf "(%d %d)" (!s / 240) (4000 * x_num / x_den) in
  Alcotest.(check string) "rat reference" (B.find "rat").B.expected expected

let test_trav_reference () =
  (* see lib/programs/trav.ml: the expected value is derived there *)
  Alcotest.(check string) "trav reference" (B.find "trav").B.expected
    Tagsim_programs.Trav.expected

let suite =
  [
    ( "benchmarks",
      List.map
        (fun e ->
          Alcotest.test_case e.B.name `Slow (check_benchmark e))
        (B.all ())
      @ [
          Alcotest.test_case "dedgc-gc-share" `Quick test_dedgc_gc_share;
          Alcotest.test_case "trav-vector-dominated" `Quick
            test_trav_vector_dominated;
          Alcotest.test_case "rat-arith-heavy" `Quick test_rat_arith_heavy;
          Alcotest.test_case "rat-reference" `Quick test_rat_reference;
          Alcotest.test_case "trav-reference" `Quick test_trav_reference;
        ] );
  ]
