(* Configuration-invariance tests: every hardware-support configuration of
   Table 2 (plus the ablations) must compute exactly the same values; only
   the cycle counts may differ.  Also checks the expected cycle-count
   orderings (e.g. hardware support never makes a program slower). *)

module P = Tagsim.Program
module Scheme = Tagsim.Scheme
module Support = Tagsim.Support
module Stats = Tagsim.Stats
module Sched = Tagsim.Sched

let supports_no_rtc =
  [
    ("software", Support.software);
    ("row1-hw", Support.row1_hw);
    ("row2", Support.row2);
    ("row3", Support.row3);
    ("row4", Support.row4);
    ("row5", Support.row5);
    ("row6", Support.row6);
    ("row7", Support.row7);
    ("spur", Support.spur);
    ("preshift", { Support.software with Support.preshifted_pair_tag = true });
  ]

let all_supports =
  supports_no_rtc
  @ List.map
      (fun (n, s) -> (n ^ "+rtc", Support.with_checking s))
      supports_no_rtc
  @ [
      ( "dispatch+rtc",
        Support.with_checking
          { Support.software with Support.int_biased_arith = false } );
    ]

(* A program exercising lists, vectors, symbols, arithmetic, recursion and
   allocation all at once. *)
let workload =
  "(de tree (n) (if (< n 2) (cons n nil) (cons (tree (- n 1)) (tree (- n \
   2)))))\n\
   (de count (x) (if (pairp x) (+ (count (car x)) (count (cdr x))) (if \
   (numberp x) 1 0)))\n\
   (de main ()\n\
  \  (let ((v (mkvect 10)) (s 0))\n\
  \    (dotimes (i 10) (putv v i (tree (+ i 1))))\n\
  \    (reclaim)\n\
  \    (dotimes (i 10) (putv v i (tree (+ i 1))))\n\
  \    (dotimes (i 10) (setq s (+ s (count (getv v i)))))\n\
  \    (put 'result 'count s)\n\
  \    (+ (get 'result 'count) (length (list 1 2 3)))))"

let expected = "234"

let run ~scheme ~support ?(sched = Sched.default) () =
  let t, result =
    P.run_source ~scheme ~support ~sched
      ~sizes:{ Tagsim.Layout.stack_bytes = 1 lsl 16; semi_bytes = 1 lsl 14 }
      workload
  in
  ignore t;
  (match result.P.abort with
  | Some msg -> Alcotest.failf "aborted (%s): %s" scheme.Scheme.name msg
  | None -> ());
  (result, P.hval_to_string (Option.get result.P.value))

let test_all_configs () =
  List.iter
    (fun scheme ->
      List.iter
        (fun (name, support) ->
          let result, got = run ~scheme ~support () in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s" scheme.Scheme.name name)
            expected got;
          (* The small heap forces collections. *)
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s collected" scheme.Scheme.name name)
            true
            (result.P.gc_collections > 0))
        all_supports)
    Scheme.all

(* With checking on, hardware support must not slow the program down. *)
let test_support_orderings () =
  let scheme = Scheme.high5 in
  let cycles support =
    let result, _ = run ~scheme ~support:(Support.with_checking support) () in
    Stats.total result.P.stats
  in
  let base = cycles Support.software in
  List.iter
    (fun (name, support) ->
      let c = cycles support in
      Alcotest.(check bool)
        (Printf.sprintf "row %s at least as fast (base %d vs %d)" name base c)
        true (c <= base))
    [
      ("row1", Support.row1_hw);
      ("row2", Support.row2);
      ("row3", Support.row3);
      ("row5", Support.row5);
      ("row6", Support.row6);
      ("row7", Support.row7);
      ("spur", Support.spur);
    ];
  (* Row 7 dominates rows 1-3. *)
  Alcotest.(check bool) "row7 fastest" true
    (cycles Support.row7 <= cycles Support.row3)

(* The delay-slot scheduler must not change results, only cycles. *)
let test_sched_ablation () =
  List.iter
    (fun scheme ->
      let r_on, v_on = run ~scheme ~support:Support.software () in
      let r_off, v_off =
        run ~scheme ~support:Support.software ~sched:Sched.off ()
      in
      Alcotest.(check string) "sched result" v_on v_off;
      Alcotest.(check bool) "sched saves cycles" true
        (Stats.total r_on.P.stats <= Stats.total r_off.P.stats))
    Scheme.all

(* The low-tag schemes eliminate tag removal entirely (Section 5.2), and
   the high-tag scheme with tag-ignoring memory drops its masking. *)
let test_removal_elimination () =
  let removal scheme support =
    let r, _ = run ~scheme ~support () in
    Stats.removal r.P.stats
  in
  let base = removal Scheme.high5 Support.software in
  Alcotest.(check bool) "high5 masks" true (base > 0);
  (* Low2 needs no masking anywhere, including inside the collector. *)
  Alcotest.(check int) "low2 no masks" 0 (removal Scheme.low2 Support.software);
  (* Tag-ignoring memory removes every mutator mask (the collector still
     masks for its address arithmetic). *)
  Alcotest.(check bool) "high5+ti fewer masks" true
    (removal Scheme.high5 Support.row1_hw < base);
  (* Low3 masks only inside the collector. *)
  Alcotest.(check bool) "low3 fewer masks" true
    (removal Scheme.low3 Support.software < base)

(* Hardware generic arithmetic handles the boxnum trap path. *)
let test_gen_arith_trap () =
  let src = "(de main () (unbox (+ (makebox 3) (+ 4 (makebox 5)))))" in
  List.iter
    (fun scheme ->
      let support = Support.with_checking Support.row4 in
      let _, result = P.run_source ~scheme ~support src in
      (match result.P.abort with
      | Some m -> Alcotest.failf "aborted (%s): %s" scheme.Scheme.name m
      | None -> ());
      Alcotest.(check string) "trap path value" "12"
        (P.hval_to_string (Option.get result.P.value));
      Alcotest.(check bool) "traps happened" true
        (result.P.stats.Stats.traps > 0))
    Scheme.all

(* Type errors are detected when checking is on. *)
let test_error_detection () =
  let cases =
    [
      ("(de main () (car 5))", "type error");
      ("(de main () (cdr 'a))", "type error");
      ("(de main () (getv (mkvect 3) 7))", "bounds error");
      ("(de main () (getv (mkvect 3) -1))", "bounds error");
      ("(de main () (getv '(1) 0))", "type error");
      ("(de main () (+ 'a 1))", "type error");
      ("(de main () (quotient 1 0))", "arithmetic error (overflow or bad type)");
      ("(de main () (funcall 'nosuch 1))", "undefined function");
      ("(de main () (funcall 5))", "type error");
    ]
  in
  List.iter
    (fun scheme ->
      List.iter
        (fun (src, expected_msg) ->
          let support = Support.with_checking Support.software in
          let _, result = P.run_source ~scheme ~support src in
          match result.P.abort with
          | Some msg ->
              Alcotest.(check string)
                (Printf.sprintf "%s [%s]" src scheme.Scheme.name)
                expected_msg msg
          | None ->
              Alcotest.failf "%s [%s]: expected an abort" src
                scheme.Scheme.name)
        cases)
    Scheme.all;
  (* Overflow detection, scaled to each scheme's integer range. *)
  List.iter
    (fun scheme ->
      let m = scheme.Scheme.int_max - 1 in
      let src = Printf.sprintf "(de main () (+ %d %d))" m m in
      let support = Support.with_checking Support.software in
      let _, result = P.run_source ~scheme ~support src in
      match result.P.abort with
      | Some msg ->
          Alcotest.(check string)
            (Printf.sprintf "overflow [%s]" scheme.Scheme.name)
            "arithmetic error (overflow or bad type)" msg
      | None -> Alcotest.failf "overflow [%s]: no abort" scheme.Scheme.name)
    Scheme.all

let suite =
  [
    ( "configs",
      [
        Alcotest.test_case "all-configs-same-result" `Quick test_all_configs;
        Alcotest.test_case "support-orderings" `Quick test_support_orderings;
        Alcotest.test_case "sched-ablation" `Quick test_sched_ablation;
        Alcotest.test_case "removal-elimination" `Quick
          test_removal_elimination;
        Alcotest.test_case "gen-arith-trap" `Quick test_gen_arith_trap;
        Alcotest.test_case "error-detection" `Quick test_error_detection;
      ] );
  ]
