(** The Lisp library prelude.

    These play the role of the "LISP system modules" the paper's Appendix
    mentions: each benchmark is compiled together with the prelude
    functions it actually uses (unreachable ones are pruned), and their
    cycles are measured like user code.  Each function is a separate
    source string so that Table 3 can count the lines of the retained
    ones. *)

let functions : (string * string) list =
  [
    ("abs", "(de abs (x) (if (lessp x 0) (- x) x))");
    ("min2", "(de min2 (a b) (if (greaterp a b) b a))");
    ("max2", "(de max2 (a b) (if (lessp a b) b a))");
    ( "length",
      "(de length (l)\n\
      \  (let ((n 0))\n\
      \    (while (pairp l) (incf n) (setq l (cdr l)))\n\
      \    n))" );
    ( "append2",
      "(de append2 (a b)\n\
      \  (if (pairp a) (cons (car a) (append2 (cdr a) b)) b))" );
    ( "reverse",
      "(de reverse (l)\n\
      \  (let ((r nil)) (dolist (x l) (push x r)) r))" );
    ( "nconc2",
      "(de nconc2 (a b)\n\
      \  (if (null a) b\n\
      \    (let ((p a))\n\
      \      (while (pairp (cdr p)) (setq p (cdr p)))\n\
      \      (rplacd p b)\n\
      \      a)))" );
    ( "memq",
      "(de memq (x l)\n\
      \  (while (and (pairp l) (not (eq (car l) x))) (setq l (cdr l)))\n\
      \  l)" );
    ( "member",
      "(de member (x l)\n\
      \  (while (and (pairp l) (not (equal (car l) x))) (setq l (cdr l)))\n\
      \  l)" );
    ( "assq",
      "(de assq (x l)\n\
      \  (while (and (pairp l) (not (eq (caar l) x))) (setq l (cdr l)))\n\
      \  (if (pairp l) (car l) nil))" );
    ( "assoc",
      "(de assoc (x l)\n\
      \  (while (and (pairp l) (not (equal (caar l) x))) (setq l (cdr l)))\n\
      \  (if (pairp l) (car l) nil))" );
    ( "equal",
      "(de equal (a b)\n\
      \  (cond ((eq a b) t)\n\
      \        ((and (pairp a) (pairp b))\n\
      \         (and (equal (car a) (car b)) (equal (cdr a) (cdr b))))\n\
      \        (t nil)))" );
    ( "nth",
      "(de nth (l n)\n\
      \  (while (greaterp n 0) (setq l (cdr l)) (decf n))\n\
      \  (car l))" );
    ("last", "(de last (l) (while (pairp (cdr l)) (setq l (cdr l))) l)");
    ( "get",
      "(de get (s k)\n\
      \  (let ((p (plist s)))\n\
      \    (while (and (pairp p) (not (eq (caar p) k))) (setq p (cdr p)))\n\
      \    (if (pairp p) (cdar p) nil)))" );
    ( "put",
      "(de put (s k v)\n\
      \  (let ((p (plist s)))\n\
      \    (while (and (pairp p) (not (eq (caar p) k))) (setq p (cdr p)))\n\
      \    (if (pairp p) (rplacd (car p) v)\n\
      \      (setplist s (cons (cons k v) (plist s))))\n\
      \    v))" );
    ( "remprop",
      "(de remprop (s k)\n\
      \  (let ((p (plist s)) (prev nil))\n\
      \    (while (and (pairp p) (not (eq (caar p) k)))\n\
      \      (setq prev p) (setq p (cdr p)))\n\
      \    (when (pairp p)\n\
      \      (if prev (rplacd prev (cdr p)) (setplist s (cdr p))))\n\
      \    nil))" );
    ( "mapcar",
      "(de mapcar (fn l)\n\
      \  (let ((r nil))\n\
      \    (dolist (x l) (push (funcall fn x) r))\n\
      \    (reverse r)))" );
    ( "copy",
      "(de copy (x)\n\
      \  (if (pairp x) (cons (copy (car x)) (copy (cdr x))) x))" );
    ( "delq",
      "(de delq (x l)\n\
      \  (cond ((null l) nil)\n\
      \        ((eq (car l) x) (delq x (cdr l)))\n\
      \        (t (cons (car l) (delq x (cdr l))))))" );
    ( "gcd",
      "(de gcd (a b)\n\
      \  (setq a (abs a))\n\
      \  (setq b (abs b))\n\
      \  (while (greaterp b 0)\n\
      \    (let ((r (remainder a b))) (setq a b) (setq b r)))\n\
      \  a)" );
  ]

let source_of name = List.assoc_opt name functions
let line_count src = List.length (String.split_on_char '\n' src)
