(** Code generation: core AST to annotated assembly.  See the
    implementation header for the compilation model (register
    conventions, caller-save discipline, inline allocation, slow-path
    stubs). *)

exception Error of string

val max_args : int

(** Compile one function definition into the context's buffer. *)
val compile_def :
  Tagsim_runtime.Emit.ctx ->
  Symtab.t ->
  (string, int) Hashtbl.t ->
  Tagsim_lisp.Ast.def ->
  unit
