lib/compiler/prelude.ml: List String
