lib/compiler/symtab.ml: Hashtbl List Printf Tagsim_asm Tagsim_runtime Tagsim_tags
