lib/compiler/prelude.mli:
