lib/compiler/program.mli: Format Symtab Tagsim_asm Tagsim_runtime Tagsim_sim Tagsim_tags
