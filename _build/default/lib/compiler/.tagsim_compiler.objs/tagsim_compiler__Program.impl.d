lib/compiler/program.ml: Array Codegen Fmt Hashtbl List Prelude Printf String Symtab Tagsim_asm Tagsim_lisp Tagsim_mipsx Tagsim_runtime Tagsim_sim Tagsim_tags
