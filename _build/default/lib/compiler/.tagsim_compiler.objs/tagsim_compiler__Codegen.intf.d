lib/compiler/codegen.mli: Hashtbl Symtab Tagsim_lisp Tagsim_runtime
