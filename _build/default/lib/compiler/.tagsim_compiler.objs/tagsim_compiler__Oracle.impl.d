lib/compiler/oracle.ml: Array Fmt Hashtbl List Prelude Printf Tagsim_lisp Tagsim_tags
