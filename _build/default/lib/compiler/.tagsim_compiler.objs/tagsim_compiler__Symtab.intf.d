lib/compiler/symtab.mli: Tagsim_asm Tagsim_tags
