lib/compiler/codegen.ml: Fmt Hashtbl List Option Symtab Tagsim_asm Tagsim_lisp Tagsim_mipsx Tagsim_runtime Tagsim_tags
