(** A reference interpreter for the Lisp dialect, used as a differential
    testing oracle: random programs are evaluated both here (plain OCaml,
    no tags, no simulator) and by the full compile–simulate pipeline, and
    the results must agree — including which programs signal run-time
    errors.

    The oracle models the checked semantics: car/cdr of a non-pair,
    vector index errors, arithmetic on non-numbers and integer overflow
    (relative to a scheme's integer range) all raise {!Lisp_error}. *)

module Ast = Tagsim_lisp.Ast
module Expand = Tagsim_lisp.Expand
module Scheme = Tagsim_tags.Scheme

exception Lisp_error of string

let error msg = raise (Lisp_error msg)

type value =
  | Int of int
  | Sym of string
  | Pair of pair
  | Vec of value array
  | Box of int

and pair = { mutable car : value; mutable cdr : value }

let nil = Sym "nil"
let t = Sym "t"
let truthy = function Sym "nil" -> false | _ -> true
let of_bool b = if b then t else nil

type env = {
  int_min : int;
  int_max : int;
  defs : (string, Ast.def) Hashtbl.t;
  globals : (string, value) Hashtbl.t; (* symbol value cells *)
  plists : (string, value ref) Hashtbl.t;
      (* property lists as shared, mutable Lisp values: the prelude's
         [put] mutates them through rplacd, exactly as on the machine *)
  mutable fuel : int; (* recursion/step budget *)
}

let rec value_of_const (c : Ast.const) =
  match c with
  | Ast.Cint n -> Int n
  | Ast.Csym s -> Sym s
  | Ast.Clist [] -> nil
  | Ast.Clist (x :: rest) ->
      Pair { car = value_of_const x; cdr = value_of_const (Ast.Clist rest) }


(* Pointer equality, like [eq]: immediates by value, objects by identity. *)
let eq_value a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Sym x, Sym y -> x = y
  | _ -> a == b

(* The prelude's [equal]: eq, or pairwise recursion on pairs — vectors
   and boxes compare by identity, exactly as the Lisp definition does. *)
let rec equal_value a b =
  eq_value a b
  ||
  match (a, b) with
  | Pair x, Pair y -> equal_value x.car y.car && equal_value x.cdr y.cdr
  | (Int _ | Sym _ | Pair _ | Vec _ | Box _), _ -> false

let _ = equal_value

let as_int _env = function Int n -> n | _ -> error "type error"

(* The multiplicative fallbacks reject non-integers with an arithmetic
   error (rt$gmul and friends), unlike add/sub whose unboxing reports a
   type error. *)
let as_int_arith _env = function
  | Int n -> n
  | _ -> error "arithmetic error (overflow or bad type)"

let check_range env n =
  if n < env.int_min || n > env.int_max then
    error "arithmetic error (overflow or bad type)"
  else n

(* Generic arithmetic: integers stay integers, boxed operands box the
   result (add/sub only, as in the runtime). *)
let arith env op a b =
  let num = function
    | Int n -> (n, false)
    | Box n -> (n, true)
    | _ -> error "type error"
  in
  match op with
  | `Add | `Sub ->
      let x, bx = num a and y, by = num b in
      let r = check_range env (if op = `Add then x + y else x - y) in
      if bx || by then Box r else Int r
  | `Mul -> Int (check_range env (as_int_arith env a * as_int_arith env b))
  | `Div ->
      let y = as_int_arith env b in
      if y = 0 then error "arithmetic error (overflow or bad type)"
      else Int (as_int_arith env a / y)
  | `Rem ->
      let y = as_int_arith env b in
      if y = 0 then error "arithmetic error (overflow or bad type)"
      else Int (as_int_arith env a mod y)

let compare_ints env op a b =
  let x = as_int env a and y = as_int env b in
  of_bool
    (match op with
    | `Lt -> x < y
    | `Gt -> x > y
    | `Le -> x <= y
    | `Ge -> x >= y)

let plist_cell env s =
  match Hashtbl.find_opt env.plists s with
  | Some cell -> cell
  | None ->
      let cell = ref nil in
      Hashtbl.replace env.plists s cell;
      cell

let spend env =
  env.fuel <- env.fuel - 1;
  if env.fuel <= 0 then error "out of fuel"

let rec eval env (locals : (string * value ref) list) (e : Ast.expr) : value =
  spend env;
  match e with
  | Ast.Const c -> value_of_const c
  | Ast.Var v -> (
      match List.assoc_opt v locals with
      | Some r -> !r
      | None -> (
          match Hashtbl.find_opt env.globals v with
          | Some value -> value
          | None -> nil))
  | Ast.Setq (v, e) -> (
      let value = eval env locals e in
      match List.assoc_opt v locals with
      | Some r ->
          r := value;
          value
      | None ->
          Hashtbl.replace env.globals v value;
          value)
  | Ast.If (c, a, b) ->
      if truthy (eval env locals c) then eval env locals a
      else eval env locals b
  | Ast.Progn es ->
      List.fold_left (fun _ e -> eval env locals e) nil es
  | Ast.While (c, body) ->
      let rec loop () =
        spend env;
        if truthy (eval env locals c) then begin
          List.iter (fun e -> ignore (eval env locals e)) body;
          loop ()
        end
        else nil
      in
      loop ()
  | Ast.Let (binds, body) ->
      let locals =
        List.fold_left
          (fun locals (v, init) ->
            (v, ref (eval env locals init)) :: locals)
          locals binds
      in
      List.fold_left (fun _ e -> eval env locals e) nil body
  | Ast.Funcall (f, args) -> (
      let fv = eval env locals f in
      let args = List.map (fun a -> eval env locals a) args in
      match fv with
      | Sym name when Hashtbl.mem env.defs name -> apply env name args
      | Sym _ -> error "undefined function"
      | _ -> error "type error")
  | Ast.Call (name, args) ->
      let args = List.map (fun a -> eval env locals a) args in
      if Hashtbl.mem env.defs name then apply env name args
      else prim env name args

and apply env name args =
  let def = Hashtbl.find env.defs name in
  if List.length def.Ast.params <> List.length args then error "arity"
  else
    let locals = List.map2 (fun p a -> (p, ref a)) def.Ast.params args in
    eval env locals def.Ast.body

and prim env name args =
  match (name, args) with
  | "car", [ Pair p ] -> p.car
  | "cdr", [ Pair p ] -> p.cdr
  | ("car" | "cdr"), [ _ ] -> error "type error"
  | "cons", [ a; b ] -> Pair { car = a; cdr = b }
  | "rplaca", [ Pair p; v ] ->
      p.car <- v;
      Pair p
  | "rplacd", [ Pair p; v ] ->
      p.cdr <- v;
      Pair p
  | ("rplaca" | "rplacd"), [ _; _ ] -> error "type error"
  | "plus2", [ a; b ] -> arith env `Add a b
  | "difference2", [ a; b ] -> arith env `Sub a b
  | "times2", [ a; b ] -> arith env `Mul a b
  | "quotient", [ a; b ] -> arith env `Div a b
  | "remainder", [ a; b ] -> arith env `Rem a b
  | "land2", [ a; b ] -> Int (as_int env a land as_int env b)
  | "lor2", [ a; b ] -> Int (as_int env a lor as_int env b)
  | "lxor2", [ a; b ] -> Int (as_int env a lxor as_int env b)
  | "lessp", [ a; b ] -> compare_ints env `Lt a b
  | "greaterp", [ a; b ] -> compare_ints env `Gt a b
  | "leq", [ a; b ] -> compare_ints env `Le a b
  | "geq", [ a; b ] -> compare_ints env `Ge a b
  | "eqn", [ a; b ] -> of_bool (eq_value a b)
  | "eq", [ a; b ] -> of_bool (eq_value a b)
  | "null", [ a ] -> of_bool (not (truthy a))
  | "atom", [ a ] -> of_bool (match a with Pair _ -> false | _ -> true)
  | "pairp", [ a ] -> of_bool (match a with Pair _ -> true | _ -> false)
  | "symbolp", [ a ] -> of_bool (match a with Sym _ -> true | _ -> false)
  | "vectorp", [ a ] -> of_bool (match a with Vec _ -> true | _ -> false)
  | "boxp", [ a ] -> of_bool (match a with Box _ -> true | _ -> false)
  | "numberp", [ a ] ->
      of_bool (match a with Int _ | Box _ -> true | _ -> false)
  | "mkvect", [ Int n ] ->
      if n < 0 then error "bounds error" else Vec (Array.make n nil)
  | "mkvect", [ _ ] -> error "type error"
  | "getv", [ Vec v; Int i ] ->
      if i < 0 || i >= Array.length v then error "bounds error" else v.(i)
  | "putv", [ Vec v; Int i; x ] ->
      if i < 0 || i >= Array.length v then error "bounds error"
      else begin
        v.(i) <- x;
        x
      end
  | ("getv" | "putv"), _ -> error "type error"
  | "vlen", [ Vec v ] -> Int (Array.length v)
  | "vlen", [ _ ] -> error "type error"
  | "makebox", [ Int n ] -> Box n
  | "makebox", [ _ ] -> error "type error"
  | "unbox", [ Box n ] -> Int n
  | "unbox", [ _ ] -> error "type error"
  | "plist", [ Sym s ] -> !(plist_cell env s)
  | "plist", [ _ ] -> error "type error"
  | "setplist", [ Sym s; v ] ->
      plist_cell env s := v;
      v
  | "setplist", [ _; _ ] -> error "type error"
  | "reclaim", [] -> nil
  | "gccount", [] -> Int 0
  | "error", [] -> error "user error"
  | _ ->
      error (Printf.sprintf "unknown primitive %s/%d" name (List.length args))

(* The oracle uses the same prelude source as the compiler, interpreted. *)
let load_defs source =
  let defs = Hashtbl.create 64 in
  List.iter
    (fun (_, src) ->
      List.iter
        (fun d -> Hashtbl.replace defs d.Ast.name d)
        (Expand.program src))
    Prelude.functions;
  List.iter
    (fun d -> Hashtbl.replace defs d.Ast.name d)
    (Expand.program source);
  defs

type outcome = Value of value | Error of string

let run ?(scheme = Scheme.high5) ?(fuel = 2_000_000) source : outcome =
  let env =
    {
      int_min = scheme.Scheme.int_min;
      int_max = scheme.Scheme.int_max;
      defs = load_defs source;
      globals = Hashtbl.create 16;
      plists = Hashtbl.create 16;
      fuel;
    }
  in
  if not (Hashtbl.mem env.defs "main") then Error "no main"
  else
    try Value (apply env "main" []) with
    | Lisp_error msg -> Error msg
    | Stack_overflow -> Error "out of fuel"

(* Print values exactly like {!Program.hval_to_string}. *)
let rec pp ppf v =
  match v with
  | Int n -> Fmt.int ppf n
  | Sym s -> Fmt.string ppf s
  | Vec a -> Fmt.pf ppf "#(%a)" Fmt.(array ~sep:(any " ") pp) a
  | Box n -> Fmt.pf ppf "#box(%d)" n
  | Pair _ ->
      let rec elements acc = function
        | Pair { car; cdr } -> elements (car :: acc) cdr
        | Sym "nil" -> (List.rev acc, None)
        | other -> (List.rev acc, Some other)
      in
      let items, tail = elements [] v in
      (match tail with
      | None -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " ") pp) items
      | Some tl ->
          Fmt.pf ppf "(%a . %a)" Fmt.(list ~sep:(any " ") pp) items pp tl)

let to_string v = Fmt.str "%a" pp v
