(** The Lisp library prelude — the stand-in for the paper's "LISP system
    modules": each benchmark is compiled together with the prelude
    functions it actually uses, and their cycles are measured like user
    code. *)

(** Function name, definition source. *)
val functions : (string * string) list

val source_of : string -> string option
val line_count : string -> int
