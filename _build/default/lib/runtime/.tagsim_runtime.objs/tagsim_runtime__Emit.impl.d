lib/runtime/emit.ml: Layout Tagsim_asm Tagsim_mipsx Tagsim_tags
