lib/runtime/rt.mli: Emit
