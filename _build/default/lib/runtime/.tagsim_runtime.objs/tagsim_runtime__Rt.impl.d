lib/runtime/rt.ml: Emit Layout List Tagsim_asm Tagsim_mipsx Tagsim_tags
