lib/runtime/emit.mli: Tagsim_asm Tagsim_mipsx Tagsim_tags
