lib/runtime/layout.mli: Tagsim_mipsx
