lib/runtime/layout.ml: List Printf Tagsim_mipsx
