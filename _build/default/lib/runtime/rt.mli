(** Runtime system, emitted as simulated machine code so that its cycles
    (and its tag operations) are measured exactly like user code: error
    stubs, the vector and boxed-number allocators, the generic-arithmetic
    fallback (call and trap entries), the two-space copying collector,
    and the startup sequence.  See the implementation header for the
    register discipline. *)

(** Emit the startup sequence (must be the first code emitted: the
    machine starts at address 0): establish the register conventions,
    call [main_label] and halt with its result in v0. *)
val emit_startup : Emit.ctx -> main_label:string -> unit

(** Emit all runtime routines and the runtime's static data (call after
    the user code). *)
val emit_routines : Emit.ctx -> unit
