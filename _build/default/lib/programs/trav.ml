(** [trav]: a short version of the traverse benchmark (Gabriel).

    Creates and repeatedly traverses a tree structure whose nodes are
    {e structures implemented as vectors} — the paper's Appendix notes
    exactly this, and it is why [trav] shows by far the highest
    vector-checking cost in Table 1 (72% of the run-time checking
    increase). *)

let source =
  {lisp|
; A node is a 4-slot structure: 0 = mark, 1 = value, 2 = sons, 3 = visits.
(de mknode (v)
  (let ((n (mkvect 4)))
    (putv n 0 0)
    (putv n 1 v)
    (putv n 2 nil)
    (putv n 3 0)
    n))

(de addson (p s) (putv p 2 (cons s (getv p 2))) s)

; A binary tree of the given depth, with value = depth at each node.
(de buildtree (depth)
  (let ((n (mknode depth)))
    (when (greaterp depth 0)
      (addson n (buildtree (- depth 1)))
      (addson n (buildtree (- depth 1))))
    n))

; Count the nodes not yet carrying this mark, marking as we go and
; bumping each node's visit counter.
(de travcount (n mark)
  (if (eq (getv n 0) mark) 0
    (progn
      (putv n 0 mark)
      (putv n 3 (+ (getv n 3) 1))
      (let ((c 1))
        (dolist (s (getv n 2))
          (setq c (+ c (travcount s mark))))
        c))))

; Sum of the value slots, weighted by visits.
(de checksum (n mark)
  (if (eq (getv n 0) mark) 0
    (progn
      (putv n 0 mark)
      (let ((c (* (getv n 1) (getv n 3))))
        (dolist (s (getv n 2))
          (setq c (+ c (checksum s mark))))
        c))))

; Collect every node into a vector (preorder), for cross-linking.
(de collect (n v)
  (putv v (getv v 0) n)
  (putv v 0 (+ (getv v 0) 1))
  (dolist (s (getv n 2)) (collect s v)))

; Add deterministic cross edges: node i gains node (i * 7 + 3) mod count
; as an extra son, turning the tree into a graph (as in the traverse
; benchmark's randomly cross-linked structures).
(de crosslink (v count)
  (let ((i 1))
    (while (lessp i count)
      (let ((extra (+ (remainder (* i 7) (- count 1)) 1)))
        (addson (getv v i) (getv v extra)))
      (setq i (+ i 4)))))

(de main ()
  (let ((root (buildtree 10)) (total 0))
    (dotimes (i 18) (setq total (+ total (travcount root (+ i 1)))))
    (let ((all (mkvect 2100)))
      (putv all 0 1)
      (collect root all)
      (crosslink all (getv all 0))
      (let ((gtotal 0))
        (dotimes (i 6) (setq gtotal (+ gtotal (travcount root (+ 100 i)))))
        (list total (checksum root 1000) gtotal)))))
|lisp}

(* 2^11 - 1 = 2047 nodes.  18 tree traversals, then 6 graph traversals
   after cross-linking (which still reach exactly the 2047 nodes, so the
   third component is 6 * 2047); every node ends up visited 24 times, so
   the checksum is 24 * sum(value * count-at-value). *)
let expected =
  let nodes = 2047 in
  let weighted = ref 0 in
  for value = 0 to 10 do
    weighted := !weighted + (value * (1 lsl (10 - value)))
  done;
  Printf.sprintf "(%d %d %d)" (nodes * 18) (24 * !weighted) (nodes * 6)
