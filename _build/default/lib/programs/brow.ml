(** [brow]: a short version of the browse benchmark (Gabriel) — creates
    an AI-like database of units (symbols with property lists of pattern
    "sentences") and browses it by matching wildcard patterns against
    every unit's properties.  List operations dominate, as in Table 1. *)

let source =
  {lisp|
; ---- A little deterministic pseudo-random generator. ----

(de rnd (n)
  (setq seed (remainder (+ (* seed 137) 59) 9973))
  (remainder seed n))

; ---- The pattern matcher: ? matches one element, * any segment. ----

(de bmatch (pat dat)
  (cond ((null pat) (null dat))
        ((eq (car pat) '?)
         (and (pairp dat) (bmatch (cdr pat) (cdr dat))))
        ((eq (car pat) '*)
         (or (bmatch (cdr pat) dat)
             (and (pairp dat) (bmatch pat (cdr dat)))))
        ((atom (car pat))
         (and (pairp dat)
              (eq (car pat) (car dat))
              (bmatch (cdr pat) (cdr dat))))
        (t (and (pairp dat)
                (pairp (car dat))
                (bmatch (car pat) (car dat))
                (bmatch (cdr pat) (cdr dat))))))

; ---- Database creation. ----

(de units ()
  '(u1 u2 u3 u4 u5 u6 u7 u8 u9 u10 u11 u12 u13 u14 u15))
(de vocab () '(a b c d e f g k))

(de make-sentence ()
  (let ((len (+ 3 (rnd 3))) (s nil))
    (dotimes (i len)
      (push (nth (vocab) (rnd 8)) s))
    s))

(de init-units ()
  (dolist (u (units))
    (setplist u nil)
    (let ((props nil))
      (dotimes (i 6)
        (push (make-sentence) props))
      (put u 'props props))))

; ---- Browsing. ----

(de queries ()
  '((a * b) (* c *) (? ? *) (k *) (* d) (a ? * e) (* f ? *) (g * g)
    (* a * b *) (? * k) (e e *) (* ? g)))

(de browse-unit (u)
  (let ((n 0))
    (dolist (p (get u 'props))
      (dolist (q (queries))
        (when (bmatch q p) (incf n))))
    n))

; Rotate a list: the "browsing" reordering between rounds.
(de rotate (l)
  (if (null l) nil (append (cdr l) (list (car l)))))

(de main ()
  (setq seed 74755)
  (init-units)
  (let ((total 0) (us (units)))
    (dotimes (round 12)
      (dolist (u us)
        (setq total (+ total (browse-unit u))))
      (setq us (rotate us))
      ; refresh one unit's properties each round
      (let ((u (nth us (rnd 15))))
        (setplist u nil)
        (let ((props nil))
          (dotimes (i 6)
            (push (make-sentence) props))
          (put u 'props props))))
    total))
|lisp}

(* Deterministic (fixed seed); cross-checked across every configuration. *)
let expected = "2599"
