(** [inter]: a simple interpreter for a subset of LISP, used to calculate
    a Fibonacci number and to sort a list of numbers (adapted, like the
    paper's version, from "Lisp in Lisp").

    The interpreted language supports numbers, symbols, [quote], [if] and
    function application; user functions are stored under the [defn]
    property of their name.  Environments are association lists, so the
    workload is dominated by list operations — matching the paper's
    description of [inter]. *)

let source =
  {lisp|
; ---- The interpreter. ----

(de ev (x env)
  (cond ((numberp x) x)
        ((symbolp x) (cdr (assq x env)))
        ((eq (car x) 'quote) (cadr x))
        ((eq (car x) 'if)
         (if (ev (cadr x) env)
             (ev (caddr x) env)
           (ev (cadddr x) env)))
        (t (evapply (car x) (evlis (cdr x) env)))))

(de evlis (l env)
  (if (null l) nil
    (cons (ev (car l) env) (evlis (cdr l) env))))

(de bindargs (params args)
  (if (null params) nil
    (cons (cons (car params) (car args))
          (bindargs (cdr params) (cdr args)))))

(de evapply (fn args)
  (cond ((eq fn 'car) (car (car args)))
        ((eq fn 'cdr) (cdr (car args)))
        ((eq fn 'cons) (cons (car args) (cadr args)))
        ((eq fn 'plus) (+ (car args) (cadr args)))
        ((eq fn 'diff) (- (car args) (cadr args)))
        ((eq fn 'lessp) (lessp (car args) (cadr args)))
        ((eq fn 'eq) (eq (car args) (cadr args)))
        ((eq fn 'null) (null (car args)))
        ((eq fn 'atom) (atom (car args)))
        (t (let ((defn (get fn 'defn)))
             (ev (cadr defn) (bindargs (car defn) args))))))

; ---- The interpreted programs. ----

(de setup ()
  (put 'fib 'defn
       '((n) (if (lessp n 2) n
               (plus (fib (diff n 1)) (fib (diff n 2))))))
  (put 'insert 'defn
       '((x l) (if (null l) (cons x (quote nil))
                 (if (lessp x (car l)) (cons x l)
                   (cons (car l) (insert x (cdr l)))))))
  (put 'isort 'defn
       '((l) (if (null l) (quote nil)
               (insert (car l) (isort (cdr l))))))
  (put 'len 'defn
       '((l) (if (null l) 0 (plus 1 (len (cdr l))))))
  (put 'appnd 'defn
       '((a b) (if (null a) b (cons (car a) (appnd (cdr a) b)))))
  (put 'flat 'defn
       '((x) (if (null x) (quote nil)
               (if (atom x) (cons x (quote nil))
                 (appnd (flat (car x)) (flat (cdr x))))))))

(de main ()
  (setup)
  (list (ev '(fib 13) nil)
        (ev '(isort (quote (9 5 1 8 4 7 2 10 3 6))) nil)
        (ev '(len (flat (quote ((1 2) (3 (4 5)) (((6))) 7)))) nil)))
|lisp}

let expected = "(233 (1 2 3 4 5 6 7 8 9 10) 7)"
