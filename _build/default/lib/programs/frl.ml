(** [frl]: a simple inventory system using the frame representation
    language.  Frames are symbols whose slots live on their property
    lists; [ako] links give inheritance, so slot lookup climbs the frame
    hierarchy — symbol and list operations throughout, as in the paper's
    FRL workload. *)

let source =
  {lisp|
; ---- A miniature FRL: frames are symbols, slots are properties,
;      values are lists; ako links give inheritance. ----

(de fput (fr slot val)
  (let ((vs (get fr slot)))
    (unless (member val vs)
      (put fr slot (cons val vs))))
  val)

(de fremove (fr slot val)
  (put fr slot (delq val (get fr slot)))
  val)

; Local values only.
(de fget-local (fr slot) (get fr slot))

; Values with inheritance through (possibly several) ako parents.
(de fget (fr slot)
  (let ((vs (get fr slot)))
    (if vs vs (fget-parents (get fr 'ako) slot))))

(de fget-parents (parents slot)
  (if (null parents) nil
    (let ((vs (fget (car parents) slot)))
      (if vs vs (fget-parents (cdr parents) slot)))))

; First inherited value, defaulting to 0 for numeric slots.
(de fget1 (fr slot)
  (let ((vs (fget fr slot)))
    (if vs (car vs) 0)))

; All frames that are (transitively) instances of a category.
(de instancesp (fr cat)
  (cond ((eq fr cat) t)
        (t (instances-parents (get fr 'ako) cat))))

(de instances-parents (parents cat)
  (cond ((null parents) nil)
        ((instancesp (car parents) cat) t)
        (t (instances-parents (cdr parents) cat))))

; ---- The inventory. ----

(de setup ()
  ; category hierarchy
  (fput 'hardware 'ako 'thing)
  (fput 'tool 'ako 'hardware)
  (fput 'powertool 'ako 'tool)
  (fput 'handtool 'ako 'tool)
  (fput 'fastener 'ako 'hardware)
  ; category defaults
  (fput 'thing 'discount 0)
  (fput 'tool 'discount 5)
  (fput 'powertool 'discount 10)
  (fput 'fastener 'reorder 100)
  (fput 'tool 'reorder 3)
  ; suppliers, inherited through the category hierarchy
  (fput 'hardware 'supplier 'acme)
  (fput 'powertool 'supplier 'maketool)
  (fput 'fastener 'supplier 'boltco)
  ; items
  (dolist (d '((drill powertool 120 2) (saw powertool 90 4)
               (hammer handtool 15 12) (wrench handtool 22 7)
               (pliers handtool 18 0) (screw fastener 1 500)
               (nail fastener 1 80) (bolt fastener 2 40)
               (lathe powertool 800 1) (file handtool 9 25)
               (sander powertool 150 3) (router powertool 210 2)
               (chisel handtool 14 9) (rasp handtool 11 16)
               (rivet fastener 1 120) (washer fastener 1 60)
               (anvil handtool 260 1) (clamp handtool 17 22)))
    (let ((item (car d)))
      (fput item 'ako (cadr d))
      (fput item 'price (caddr d))
      (fput item 'stock (cadddr d)))))

(de items ()
  '(drill saw hammer wrench pliers screw nail bolt lathe file
    sander router chisel rasp rivet washer anvil clamp))

; Items sourced from a given supplier (through inheritance).
(de from-supplier (sup)
  (let ((r nil))
    (dolist (item (items))
      (when (memq sup (fget item 'supplier)) (push item r)))
    (reverse r)))

; Total stock value, applying the inherited discount percentage.
(de stock-value ()
  (let ((total 0))
    (dolist (item (items))
      (let ((price (fget1 item 'price))
            (n (fget1 item 'stock))
            (disc (fget1 item 'discount)))
        (setq total (+ total (quotient (* (* price n) (- 100 disc)) 100)))))
    total))

; Items whose stock is below their (inherited) reorder level.
(de to-reorder ()
  (let ((r nil))
    (dolist (item (items))
      (when (lessp (fget1 item 'stock) (fget1 item 'reorder))
        (push item r)))
    (reverse r)))

; Count of items under a given category.
(de count-in (cat)
  (let ((n 0))
    (dolist (item (items))
      (when (instancesp item cat) (incf n)))
    n))

(de main ()
  (setup)
  (let ((value 0) (reorders 0) (tools 0) (acme 0))
    (dotimes (round 30)
      (setq value (+ value (quotient (stock-value) 100)))
      (setq reorders (+ reorders (length (to-reorder))))
      (setq tools (+ tools (count-in 'tool)))
      (setq acme (+ acme (length (from-supplier 'acme))))
      ; simulate a sale and a restock so the plists keep churning
      (let ((s (fget1 'hammer 'stock)))
        (fremove 'hammer 'stock s)
        (fput 'hammer 'stock (if (greaterp s 4) (- s 1) 12))))
    (list value reorders tools acme (fget1 'hammer 'stock))))
|lisp}

(* Deterministic; cross-checked across every configuration. *)
let expected = "(1261 240 390 240 9)"
