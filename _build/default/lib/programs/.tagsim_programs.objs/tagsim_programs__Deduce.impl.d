lib/programs/deduce.ml:
