lib/programs/registry.ml: Boyer Brow Comp Deduce Frl Inter List Opt Rat Tagsim_runtime Trav
