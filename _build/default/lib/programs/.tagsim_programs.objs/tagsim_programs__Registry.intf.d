lib/programs/registry.mli: Tagsim_runtime
