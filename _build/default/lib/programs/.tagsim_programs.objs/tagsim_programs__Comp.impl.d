lib/programs/comp.ml:
