lib/programs/brow.ml:
