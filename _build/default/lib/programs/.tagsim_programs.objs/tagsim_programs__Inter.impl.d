lib/programs/inter.ml:
