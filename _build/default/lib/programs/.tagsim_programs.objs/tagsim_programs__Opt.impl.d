lib/programs/opt.ml:
