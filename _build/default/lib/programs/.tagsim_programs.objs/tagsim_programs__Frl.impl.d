lib/programs/frl.ml:
