lib/programs/boyer.ml:
