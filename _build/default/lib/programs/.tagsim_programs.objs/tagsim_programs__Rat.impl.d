lib/programs/rat.ml:
