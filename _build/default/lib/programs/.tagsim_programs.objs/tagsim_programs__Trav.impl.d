lib/programs/trav.ml: Printf
