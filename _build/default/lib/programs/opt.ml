(** [opt]: the optimizer pass added to the compiler.  The paper notes "it
    uses lists, and vectors", and Table 1 shows a substantial
    vector-checking component — so this pass keeps its code sequences in
    vectors: a peephole pass copies between two instruction vectors until
    a fixpoint, and a register-usage histogram lives in a third vector. *)

let source =
  {lisp|
; Fill a vector from a list; returns the element count.
(de fill (v l)
  (let ((i 0))
    (dolist (x l) (putv v i x) (incf i))
    i))

; One peephole pass: copy v[0..n) to w, applying
;   (pushc x) (pop)            =>  (nothing)
;   (pushc a) (pushc b) (op add) => (pushc a+b)
;   (pushc a) (pushc b) (op mul) => (pushc a*b)
;   (jmp 0)                    =>  (nothing)
;   (load i) (load i)          =>  (load i) (dup)
; Returns (new-count . changed).
(de peephole (v n w)
  (let ((i 0) (j 0) (changed nil))
    (while (lessp i n)
      ; fetch the three-instruction window once per step
      (let ((i1 (+ i 1)))
        (let ((a (getv v i))
              (b (if (lessp i1 n) (getv v i1) nil))
              (c (if (lessp (+ i 2) n) (getv v (+ i 2)) nil)))
          (cond ((and b (eq (car a) 'pushc) (eq (car b) 'pop))
                 (setq i (+ i 2))
                 (setq changed t))
                ((and c (eq (car a) 'pushc) (eq (car b) 'pushc)
                      (eq (car c) 'op) (memq (cadr c) '(add mul)))
                 (putv w j
                       (list 'pushc
                             (if (eq (cadr c) 'add)
                                 (+ (cadr a) (cadr b))
                               (* (cadr a) (cadr b)))))
                 (incf j)
                 (setq i (+ i 3))
                 (setq changed t))
                ((and (eq (car a) 'jmp) (zerop (cadr a)))
                 (incf i)
                 (setq changed t))
                ((and b (eq (car a) 'load) (eq (car b) 'load)
                      (eqn (cadr a) (cadr b)))
                 (putv w j a)
                 (putv w (+ j 1) '(dup))
                 (setq j (+ j 2))
                 (setq i (+ i 2))
                 (setq changed t))
                (t (putv w j a)
                   (incf j)
                   (incf i))))))
    (cons j changed)))

; Iterate the peephole pass to a fixpoint; returns the final length.
(de optimize (code)
  (let ((v (mkvect 128)) (w (mkvect 128)))
    (let ((n (fill v code)) (go t))
      (while go
        (let ((r (peephole v n w)))
          (setq n (car r))
          (setq go (cdr r))
          (let ((tmpv v))
            (setq v w)
            (setq w tmpv))))
      n)))

; Register-usage histogram, kept in a vector.
(de usage (code)
  (let ((h (mkvect 16)) (s 0))
    (dotimes (i 16) (putv h i 0))
    (dolist (x code)
      (when (eq (car x) 'load)
        (putv h (cadr x) (+ (getv h (cadr x)) 1))))
    (dotimes (i 16)
      (setq s (+ s (* (+ i 1) (getv h i)))))
    s))

(de testcode ()
  '(((pushc 1) (pushc 2) (op add) (pushc 5) (pop) (load 0) (load 0)
     (op mul) (jmp 0) (pushc 3) (pushc 4) (op mul) (op add) (ret 1))
    ((load 1) (load 1) (load 2) (op add) (pushc 7) (pushc 0) (pop)
     (pushc 2) (pushc 8) (op add) (op mul) (gload x) (op add) (ret 2))
    ((pushc 10) (pushc 20) (op add) (pushc 30) (op add) (pushc 40)
     (op add) (jmp 0) (load 3) (load 3) (load 3) (op add) (ret 1))
    ((load 0) (pushc 6) (pushc 7) (op mul) (op add) (load 4) (load 4)
     (pushc 0) (pop) (op less) (brf 2) (load 5) (ret 3))
    ((pushc 2) (pushc 3) (op mul) (pushc 4) (pushc 5) (op mul) (op add)
     (pushc 1) (pop) (jmp 0) (load 2) (load 2) (op add) (ret 0))
    ((load 7) (pushc 100) (pushc 28) (op add) (op mul) (load 7) (load 7)
     (op less) (brf 3) (pushc 0) (pop) (gload y) (op add) (jmp 0) (ret 2))
    ((pushc 6) (pushc 6) (op mul) (pushc 8) (pushc 9) (op add) (op mul)
     (load 1) (load 1) (load 1) (op add) (op add) (jmp 4) (pushc 3)
     (pop) (ret 1))))

(de main ()
  (let ((tot 0) (use 0))
    (dotimes (round 25)
      (dolist (p (testcode))
        (setq tot (+ tot (optimize p)))
        (setq use (+ use (usage p)))))
    (list tot use)))
|lisp}

(* Deterministic; cross-checked across every configuration. *)
let expected = "(1325 1850)"
