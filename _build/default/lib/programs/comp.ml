(** [comp]: the first pass of the front end of a Lisp compiler — our
    stand-in compiles a small expression language to a stack machine:
    constant folding, lexical-address resolution, and code-list
    generation.  Like the PSL pass the paper measured, it is almost
    entirely list and symbol manipulation. *)

let source =
  {lisp|
; ---- Constant folding. ----

(de all-numbers (l)
  (cond ((null l) t)
        ((numberp (car l)) (all-numbers (cdr l)))
        (t nil)))

(de arith-eval (op args)
  (let ((a (car args)) (b (cadr args)))
    (cond ((eq op 'add) (+ a b))
          ((eq op 'sub) (- a b))
          ((eq op 'mul) (* a b))
          (t 0))))

(de cfold (e)
  (cond ((atom e) e)
        ((eq (car e) 'quote) e)
        (t (let ((args (cfold-args (cdr e))))
             (if (and (memq (car e) '(add sub mul)) (all-numbers args))
                 (progn (setq fold-count (+ fold-count 1))
                        (arith-eval (car e) args))
               (cons (car e) args))))))

(de cfold-args (l)
  (if (null l) nil (cons (cfold (car l)) (cfold-args (cdr l)))))

; ---- Code generation (code lists are built in reverse). ----

(de lookup (v env n)
  (cond ((null env) nil)
        ((eq (car env) v) n)
        (t (lookup v (cdr env) (+ n 1)))))

(de comp-expr (e env)
  (cond ((numberp e) (list (list 'pushc e)))
        ((symbolp e)
         (let ((i (lookup e env 0)))
           (if i (list (list 'load i)) (list (list 'gload e)))))
        ((eq (car e) 'quote) (list (list 'pushc (cadr e))))
        ((eq (car e) 'if)
         (let ((c (comp-expr (cadr e) env)))
           (let ((a (comp-expr (caddr e) env)))
             (let ((b (comp-expr (cadddr e) env)))
               (let ((code (cons (list 'brf (+ (length a) 1)) c)))
                 (setq code (append a code))
                 (setq code (cons (list 'jmp (length b)) code))
                 (append b code))))))
        ((memq (car e) '(add sub mul less eqv carop cdrop consop))
         (comp-op (car e) (cdr e) env))
        (t (comp-call e env))))

(de comp-op (op args env)
  (let ((code nil))
    (dolist (a args)
      (setq code (append (comp-expr a env) code)))
    (cons (list 'op op) code)))

(de comp-call (e env)
  (let ((code nil) (n 0))
    (dolist (a (cdr e))
      (setq code (append (comp-expr a env) code))
      (incf n))
    (cons (list 'call (car e) n) code)))

; d = (def name (params) body)
(de comp-defn (d)
  (let ((body (cfold (cadddr d))))
    (let ((code (comp-expr body (caddr d))))
      (cons (list 'ret (length (caddr d))) code))))

; ---- A second pass: verify stack balance and find the maximum stack
;      depth of a (reversed) code list. ----

(de stack-effect (instr)
  (let ((op (car instr)))
    (cond ((memq op '(pushc load gload)) 1)
          ((eq op 'op) -1)          ; two operands -> one result
          ((eq op 'brf) -1)
          ((eq op 'jmp) 0)
          ((eq op 'call) (- 1 (caddr instr)))
          ((eq op 'ret) -1)
          (t 0))))

(de max-depth (code)
  ; code is reversed: walk it back-to-front
  (let ((depth 0) (deepest 0))
    (dolist (instr (reverse code))
      (setq depth (+ depth (stack-effect instr)))
      (when (greaterp depth deepest) (setq deepest depth)))
    deepest))

; ---- The source programs fed to the pass. ----

(de testprogs ()
  '((def fib (n)
      (if (less n 2) n (add (fib (sub n 1)) (fib (sub n 2)))))
    (def fact (n)
      (if (less n 1) 1 (mul n (fact (sub n 1)))))
    (def dist2 (x y)
      (add (mul x x) (mul y y)))
    (def area (r)
      (mul (mul 3 (add 7 7)) (mul r r)))
    (def sumlist (l acc)
      (if (eqv l (quote nil)) acc
        (sumlist (cdrop l) (add acc (carop l)))))
    (def poly (x)
      (add (mul (add 2 3) (mul x x)) (add (mul (sub 9 2) x) (mul 4 5))))
    (def choose (a b c)
      (if (less a b) (if (less b c) c (add b global-bias)) (sub a c)))
    (def hyp2 (a b)
      (add (mul a a) (mul b b)))
    (def scale (x)
      (mul (add 10 (mul 2 16)) (sub x (sub 8 3))))
    (def treesum (n)
      (if (less n 1) 0
        (add n (add (treesum (sub n 1)) (treesum (sub n 2))))))
    (def clamp (x lo hi)
      (if (less x lo) lo (if (less hi x) hi x)))
    (def maxdepth-probe (p q r s)
      (add (mul p q) (mul (add r 1) (sub s 2))))))

(de main ()
  (setq fold-count 0)
  (let ((instrs 0) (defs 0) (depths 0))
    (dotimes (round 20)
      (dolist (d (testprogs))
        (let ((code (comp-defn d)))
          (setq instrs (+ instrs (length code)))
          (setq depths (+ depths (max-depth code))))
        (incf defs)))
    (list instrs fold-count defs depths)))
|lisp}

(* Deterministic: instruction count, folds performed, definitions seen;
   identical across all configurations. *)
let expected = "(2900 160 240 840)"
