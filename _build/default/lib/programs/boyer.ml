(** [boyer]: the Boyer benchmark — a rewrite-rule-based simplifier
    combined with a dumb tautology checker (published by Gabriel; the
    paper uses a version of it, and the Appendix lists it among the three
    larger Gabriel benchmarks).

    This is a reduced version: the rewrite engine, the one-way unifier,
    [apply-subst] and the tautology checker are the classic ones; the
    lemma database is a subset chosen so that every rule fires on the test
    terms and rewriting terminates. *)

let source =
  {lisp|
; ---- One-way unification (pattern atoms are variables). ----

(de one-way-unify (term pat)
  (setq unify-subst nil)
  (one-way-unify1 term pat))

(de one-way-unify1 (term pat)
  (cond ((atom pat)
         (let ((e (assq pat unify-subst)))
           (if e (equal term (cdr e))
             (progn
               (setq unify-subst (cons (cons pat term) unify-subst))
               t))))
        ((atom term) nil)
        ((eq (car term) (car pat))
         (one-way-unify1-lst (cdr term) (cdr pat)))
        (t nil)))

(de one-way-unify1-lst (tl pl)
  (cond ((null tl) (null pl))
        ((null pl) nil)
        ((one-way-unify1 (car tl) (car pl))
         (one-way-unify1-lst (cdr tl) (cdr pl)))
        (t nil)))

; ---- Substitution. ----

(de apply-subst (alist term)
  (if (atom term)
      (let ((e (assq term alist)))
        (if e (cdr e) term))
    (cons (car term) (apply-subst-lst alist (cdr term)))))

(de apply-subst-lst (alist lst)
  (if (null lst) nil
    (cons (apply-subst alist (car lst))
          (apply-subst-lst alist (cdr lst)))))

; ---- The rewriter. ----

(de add-lemma (lemma)
  ; lemma = (equal lhs rhs), indexed under the head of lhs
  (let ((head (car (cadr lemma))))
    (put head 'lemmas (cons lemma (get head 'lemmas)))))

(de rewrite (term)
  (setq rewrite-count (+ rewrite-count 1))
  (if (atom term) term
    (rewrite-with-lemmas
     (cons (car term) (rewrite-args (cdr term)))
     (get (car term) 'lemmas))))

(de rewrite-args (lst)
  (if (null lst) nil
    (cons (rewrite (car lst)) (rewrite-args (cdr lst)))))

(de rewrite-with-lemmas (term lst)
  (cond ((null lst) term)
        ((one-way-unify term (cadr (car lst)))
         (rewrite (apply-subst unify-subst (caddr (car lst)))))
        (t (rewrite-with-lemmas term (cdr lst)))))

; ---- The dumb tautology checker. ----

(de truep (x lst) (or (equal x '(t)) (member x lst)))
(de falsep (x lst) (or (equal x '(f)) (member x lst)))

(de tautologyp (x true-lst false-lst)
  (cond ((truep x true-lst) t)
        ((falsep x false-lst) nil)
        ((atom x) nil)
        ((eq (car x) 'if)
         (cond ((truep (cadr x) true-lst)
                (tautologyp (caddr x) true-lst false-lst))
               ((falsep (cadr x) false-lst)
                (tautologyp (cadddr x) true-lst false-lst))
               (t (and (tautologyp (caddr x)
                                   (cons (cadr x) true-lst) false-lst)
                       (tautologyp (cadddr x) true-lst
                                   (cons (cadr x) false-lst))))))
        (t nil)))

(de tautp (x) (tautologyp (rewrite x) nil nil))

; ---- Lemma database (reduced). ----

(de setup ()
  ; the if-distribution lemma is what lets the dumb checker succeed on
  ; nested tests (as in Gabriel's full lemma set)
  (add-lemma '(equal (if (if a b c) d e) (if a (if b d e) (if c d e))))
  (add-lemma '(equal (and p q) (if p (if q (t) (f)) (f))))
  (add-lemma '(equal (or p q) (if p (t) (if q (t) (f)))))
  (add-lemma '(equal (not p) (if p (f) (t))))
  (add-lemma '(equal (implies p q) (if p (if q (t) (f)) (t))))
  (add-lemma '(equal (iff p q) (and (implies p q) (implies q p))))
  (add-lemma '(equal (plus (plus x y) z) (plus x (plus y z))))
  (add-lemma '(equal (times (times x y) z) (times x (times y z))))
  (add-lemma '(equal (times x (plus y z)) (plus (times x y) (times x z))))
  (add-lemma '(equal (difference x x) (zero)))
  (add-lemma '(equal (append (append x y) z) (append x (append y z))))
  (add-lemma '(equal (reverse (append x y))
                     (append (reverse y) (reverse x))))
  (add-lemma '(equal (length (append x y)) (plus (length x) (length y))))
  (add-lemma '(equal (equal (plus x y) (plus x z)) (equal y z)))
  (add-lemma '(equal (lessp (plus x y) (plus x z)) (lessp y z)))
  (add-lemma '(equal (remainder x x) (zero)))
  (add-lemma '(equal (remainder (times x y) x) (zero)))
  ; lemmas from the full Gabriel set that never fire on these terms but
  ; are scanned by rewrite-with-lemmas, as in the original workload
  (add-lemma '(equal (compile form)
                     (reverse (codegen (optimize form) (nil)))))
  (add-lemma '(equal (eqp x y) (equal (fix x) (fix y))))
  (add-lemma '(equal (greaterp x y) (lessp y x)))
  (add-lemma '(equal (lesseqp x y) (not (lessp y x))))
  (add-lemma '(equal (greatereqp x y) (not (lessp x y))))
  (add-lemma '(equal (boolean x) (or (equal x (t)) (equal x (f)))))
  (add-lemma '(equal (iff2 x y) (and (implies x y) (implies y x))))
  (add-lemma '(equal (even1 x) (if (zerop x) (t) (odd (sub1 x)))))
  (add-lemma '(equal (countps l pred) (countps-loop l pred (zero))))
  (add-lemma '(equal (fact- i) (fact-loop i 1)))
  (add-lemma '(equal (divides x y) (zerop (remainder y x))))
  (add-lemma '(equal (assume-true var alist)
                     (cons (cons var (t)) alist)))
  (add-lemma '(equal (assume-false var alist)
                     (cons (cons var (f)) alist)))
  (add-lemma '(equal (tautology-checker x)
                     (tautologyp (normalize x) (nil))))
  (add-lemma '(equal (falsify x) (falsify1 (normalize x) (nil))))
  (add-lemma '(equal (prime x)
                     (and (not (zerop x))
                          (not (equal x (add1 (zero))))
                          (prime1 x (sub1 x)))))
  (add-lemma '(equal (gcd- x y) (gcd- y x)))
  (add-lemma '(equal (nth- (nil) i) (if (zerop i) (nil) (zero))))
  (add-lemma '(equal (exp i (plus j k)) (times (exp i j) (exp i k))))
  (add-lemma '(equal (flatten (cons x y))
                     (append (flatten x) (flatten y)))))

; ---- The test terms. ----

(de subst-alist ()
  (list (cons 'x '(f (plus (plus a b) (plus c (zero)))))
        (cons 'y '(f (times (times a b) (plus c d))))
        (cons 'z '(f (reverse (append (append a b) (nil)))))
        (cons 'u '(equal (plus a b) (difference x y)))
        (cons 'w '(lessp (remainder a b) (enumber (length b))))))

(de test-term ()
  (apply-subst
   (subst-alist)
   '(implies (and (implies x y)
                  (and (implies y z) (implies z u)))
             (implies x u))))

; a term that is NOT a tautology (the converse implication)
(de bad-term ()
  (apply-subst (subst-alist) '(implies (implies x u) (implies u x))))

(de main ()
  (setq rewrite-count 0)
  (setup)
  (list (tautp (test-term)) (tautp (bad-term)) rewrite-count))
|lisp}

(* The chain-of-implications term is a propositional tautology and its
   converse is not; the rewrite count is deterministic and cross-checked
   across every tag scheme and hardware configuration. *)
let expected = "(t nil 15115)"
