(** [rat]: a rational function evaluator, after the one that comes with
    the PSL system.  Rationals are normalised pairs (numerator .
    denominator); polynomials are coefficient lists evaluated by Horner's
    rule; rational functions are ratios of polynomials.  This is the most
    computation-intensive program of the set (the paper reports 8% of its
    time in generic arithmetic). *)

let source =
  {lisp|
; ---- Rational arithmetic on normalised pairs. ----

(de mkrat (n d)
  (when (zerop d) (error))
  (when (lessp d 0) (setq n (- n)) (setq d (- d)))
  (let ((g (gcd n d)))
    (if (zerop g) (cons 0 1)
      (cons (quotient n g) (quotient d g)))))

(de rplus (a b)
  (mkrat (+ (* (car a) (cdr b)) (* (car b) (cdr a)))
         (* (cdr a) (cdr b))))

(de rdiff (a b)
  (mkrat (- (* (car a) (cdr b)) (* (car b) (cdr a)))
         (* (cdr a) (cdr b))))

(de rtimes (a b)
  (mkrat (* (car a) (car b)) (* (cdr a) (cdr b))))

(de rdiv (a b)
  (when (zerop (car b)) (error))
  (mkrat (* (car a) (cdr b)) (* (cdr a) (car b))))

(de rzerop (a) (zerop (car a)))

; ---- Polynomials: lists of rational coefficients, highest first. ----

(de peval (p x)
  (let ((acc (cons 0 1)))
    (dolist (c p)
      (setq acc (rplus (rtimes acc x) c)))
    acc))

; Derivative of a polynomial of degree (length p) - 1.
(de pderiv (p)
  (let ((n (- (length p) 1)) (r nil))
    (while (greaterp n 0)
      (push (rtimes (cons n 1) (car p)) r)
      (setq p (cdr p))
      (decf n))
    (reverse r)))

; ---- Symbolic polynomial arithmetic over integer coefficient lists
;      (lowest degree first), used to build the test polynomials. ----

(de ipadd (p q)
  (cond ((null p) q)
        ((null q) p)
        (t (cons (+ (car p) (car q)) (ipadd (cdr p) (cdr q))))))

(de ipscale (p k)
  (if (null p) nil (cons (* k (car p)) (ipscale (cdr p) k))))

; multiply by (x + a): shift and add
(de ipmullin (p a)
  (ipadd (ipscale p a) (cons 0 p)))

; build the monic polynomial with the given roots (as (x - r) factors)
(de iproots (roots)
  (let ((p (list 1)))
    (dolist (r roots)
      (setq p (ipmullin p (- r))))
    p))

; convert an integer polynomial (lowest first) to rational coefficients
; (highest first), as peval expects
(de ratcoeffs (p)
  (let ((r nil))
    (dolist (c p) (push (cons c 1) r))
    r))

; ---- Rational functions: (numerator-poly . denominator-poly). ----

(de rfeval (f x)
  (rdiv (peval (car f) x) (peval (cdr f) x)))

; Scaled integer value of a rational (floor of 4000 * n/d; the scale
; keeps every product inside the 26-bit range of the High6 scheme).
(de rscale (a) (quotient (* 4000 (car a)) (cdr a)))

; Newton step for a root of p: x - p(x)/p'(x).
(de newton (p x steps)
  (let ((dp (pderiv p)))
    (dotimes (i steps)
      (setq x (rdiff x (rdiv (peval p x) (peval dp x)))))
    x))

(de main ()
  ; f(x) = (x - 1)(x - 2) + 3 over (x + 2), built symbolically and
  ; evaluated over a grid of rationals.  The sum is accumulated as a
  ; scaled integer: exact rational summation would overflow the 27-bit
  ; integer range of the high-tag schemes.
  (let ((f nil) (s 0))
    (dotimes (rep 6)
      ; rebuild the rational function symbolically each repetition
      (let ((num (ipadd (iproots '(1 2)) (list 3)))
            (den (iproots '(-2))))
        (setq f (cons (ratcoeffs num) (ratcoeffs den))))
      (dotimes (k 40)
        (let ((x (mkrat (+ k 1) (+ k 2))))
          (setq s (+ s (rscale (rfeval f x)))))))
    ; Two Newton iterations for sqrt(2) as a rational: p(x) = x^2 - 2.
    (let ((r (newton (list (cons 1 1) (cons 0 1) (cons -2 1)) (cons 3 2) 2)))
      (list (quotient s 240) (rscale r)))))
|lisp}

(* sum over the grid of floor(10000 * f((k+1)/(k+2))) / 240, and two
   Newton steps from 3/2 for sqrt 2 give 577/408, scaled 14142;
   cross-checked by an exact reference computation in
   test/suite_benchmarks.ml. *)
let expected = "(4258 5656)"
