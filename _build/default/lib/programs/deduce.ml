(** [deduce]: a deductive information retriever for a database organised
    as a discrimination tree (adapted, like the paper's version, from
    Charniak, Riesbeck & McDermott's "Artificial Intelligence
    Programming").

    Facts are indexed two levels deep — by predicate and, when it is a
    constant, by first argument — which is the discrimination-net
    structure; queries are patterns with [(? v)] variables matched by a
    one-sided unifier; two-premise rules derive new facts to a fixpoint
    count.

    [dedgc] is this same program run with a heap small enough that the
    copying collector runs continually (the paper reports ~50% of dedgc's
    time inside the collector). *)

let source =
  {lisp|
; ---- Pattern variables are (? name). ----

(de variablep (x) (and (pairp x) (eq (car x) '?)))

; ---- The discrimination net. ----

(de index-fact (f)
  (let ((pred (car f)) (a1 (cadr f)))
    (put pred 'allfacts (cons f (get pred 'allfacts)))
    (unless (variablep a1)
      (put pred a1 (cons f (get pred a1))))))

(de fetch (pat)
  (let ((a1 (cadr pat)))
    (if (variablep a1)
        (get (car pat) 'allfacts)
      (get (car pat) a1))))

; ---- One-sided matching; environments are alists, 'fail on failure. ----

(de match1 (pat dat env)
  (cond ((variablep pat)
         (let ((b (assq (cadr pat) env)))
           (if b (if (equal (cdr b) dat) env 'fail)
             (cons (cons (cadr pat) dat) env))))
        ((atom pat) (if (eq pat dat) env 'fail))
        ((atom dat) 'fail)
        (t (let ((e (match1 (car pat) (car dat) env)))
             (if (eq e 'fail) 'fail
               (match1 (cdr pat) (cdr dat) e))))))

(de instantiate (pat env)
  (cond ((variablep pat)
         (let ((b (assq (cadr pat) env)))
           (if b (cdr b) pat)))
        ((atom pat) pat)
        (t (cons (instantiate (car pat) env)
                 (instantiate (cdr pat) env)))))

; All (fact . env) pairs matching a pattern.
(de retrieve (pat)
  (let ((r nil))
    (dolist (f (fetch pat))
      (let ((e (match1 pat f nil)))
        (unless (eq e 'fail) (push (cons f e) r))))
    r))

; ---- Two-premise rules. ----

(de solve2 (p1 p2 concl)
  (let ((out nil))
    (dolist (m1 (retrieve p1))
      (let ((e1 (match1 p1 (car m1) nil)))
        (dolist (m2 (retrieve (instantiate p2 e1)))
          (let ((e2 (match1 p2 (car m2) e1)))
            (unless (eq e2 'fail)
              (push (instantiate concl e2) out))))))
    out))

(de assert-new (facts)
  (let ((n 0))
    (dolist (f facts)
      (unless (member f (get (car f) 'allfacts))
        (index-fact f)
        (incf n)))
    n))

; ---- The database: three generations of a family. ----

(de setup-facts ()
  (dolist (f '((parent adam bob) (parent adam carol) (parent eve bob)
               (parent eve carol) (parent bob dan) (parent bob dora)
               (parent alice dan) (parent alice dora) (parent carol ed)
               (parent frank ed) (parent dan gail) (parent dan hugo)
               (parent wilma gail) (parent wilma hugo) (parent dora ian)
               (parent ed jane) (parent ed kate)
               (parent gail leo) (parent gail mona) (parent noel leo)
               (parent noel mona) (parent hugo owen) (parent petra owen)
               (parent jane quin) (parent rolf quin)
               (male adam) (male bob) (male dan) (male ed) (male frank)
               (male hugo) (male ian) (male noel) (male leo) (male owen)
               (male rolf) (male quin)
               (female eve) (female carol) (female alice) (female dora)
               (female wilma) (female gail) (female jane) (female kate)
               (female mona) (female petra)
               (spouse adam eve) (spouse bob alice) (spouse dan wilma)
               (spouse carol frank) (spouse gail noel) (spouse hugo petra)
               (spouse jane rolf)))
    (index-fact f)))

(de main ()
  (setup-facts)
  (let ((derived 0) (queries 0))
    (setq derived
          (+ derived
             (assert-new (solve2 '(parent (? x) (? y)) '(parent (? y) (? z))
                                 '(grandparent (? x) (? z))))))
    (setq derived
          (+ derived
             (assert-new (solve2 '(parent (? p) (? a)) '(parent (? p) (? b))
                                 '(sib (? a) (? b))))))
    (setq derived
          (+ derived
             (assert-new (solve2 '(sib (? u) (? p)) '(parent (? p) (? c))
                                 '(pibling (? u) (? c))))))
    (setq derived
          (+ derived
             (assert-new (solve2 '(grandparent (? g) (? x))
                                 '(grandparent (? g) (? y))
                                 '(second (? x) (? y))))))
    (setq derived
          (+ derived
             (assert-new (solve2 '(spouse (? a) (? b)) '(parent (? b) (? c))
                                 '(parent-by-marriage (? a) (? c))))))
    (setq derived
          (+ derived
             (assert-new (solve2 '(pibling (? u) (? c)) '(male (? u))
                                 '(uncle (? u) (? c))))))
    (setq derived
          (+ derived
             (assert-new (solve2 '(pibling (? u) (? c)) '(female (? u))
                                 '(aunt (? u) (? c))))))
    ; Query phase: repeated retrievals over the enlarged database.
    (dotimes (i 8)
      (setq queries (+ queries (length (retrieve '(parent (? x) (? y))))))
      (setq queries (+ queries (length (retrieve '(parent bob (? y))))))
      (setq queries (+ queries (length (retrieve '(grandparent (? x) gail)))))
      (setq queries (+ queries (length (retrieve '(sib dan (? y))))))
      (setq queries (+ queries (length (retrieve '(pibling (? u) (? c))))))
      (setq queries (+ queries (length (retrieve '(male (? m))))))
      (setq queries (+ queries (length (retrieve '(uncle (? u) gail)))))
      (setq queries (+ queries (length (retrieve '(aunt (? a) (? c))))))
      (setq queries (+ queries (length (retrieve '(spouse dan (? w))))))
      (setq queries
            (+ queries (length (retrieve '(parent-by-marriage noel (? c)))))))
    (list derived queries)))
|lisp}

(* Deterministic counts, identical under every scheme and configuration;
   cross-checked in test/suite_benchmarks.ml. *)
let expected = "(134 624)"

(* Semispace for the dedgc variant: large enough for the live database,
   small enough that transient match environments force a collection
   every few queries. *)
let dedgc_semi_bytes = 10240
