lib/tags/support.mli:
