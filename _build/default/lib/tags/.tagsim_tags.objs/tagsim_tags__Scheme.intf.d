lib/tags/scheme.mli: Tagsim_sim
