lib/tags/scheme.ml: List Printf Tagsim_mipsx Tagsim_sim
