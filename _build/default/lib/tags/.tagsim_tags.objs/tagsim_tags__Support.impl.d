lib/tags/support.ml: List String
