lib/lisp/sexp.mli: Format
