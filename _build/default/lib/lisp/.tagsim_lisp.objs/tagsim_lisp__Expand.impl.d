lib/lisp/expand.ml: Ast Fmt Hashtbl List Printf Sexp String
