lib/lisp/ast.mli: Format
