lib/lisp/sexp.ml: Fmt List String
