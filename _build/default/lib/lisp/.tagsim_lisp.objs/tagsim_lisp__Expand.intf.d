lib/lisp/expand.mli: Ast Sexp
