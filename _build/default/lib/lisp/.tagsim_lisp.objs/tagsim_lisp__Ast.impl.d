lib/lisp/ast.ml: Fmt
