(** Core abstract syntax after special-form and macro expansion. *)

type const = Cint of int | Csym of string | Clist of const list

type expr =
  | Const of const
  | Var of string (* local variable or global (symbol value cell) *)
  | If of expr * expr * expr
  | Progn of expr list
  | Setq of string * expr
  | While of expr * expr list
  | Let of (string * expr) list * expr list
  | Call of string * expr list (* primitive or user function *)
  | Funcall of expr * expr list (* call through a symbol's function cell *)

type def = { name : string; params : string list; body : expr }

let nil = Const (Csym "nil")
let t = Const (Csym "t")

let rec pp_const ppf = function
  | Cint n -> Fmt.int ppf n
  | Csym s -> Fmt.string ppf s
  | Clist l -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " ") pp_const) l

let rec pp ppf = function
  | Const c -> Fmt.pf ppf "'%a" pp_const c
  | Var v -> Fmt.string ppf v
  | If (c, a, b) -> Fmt.pf ppf "(if %a %a %a)" pp c pp a pp b
  | Progn es -> Fmt.pf ppf "(progn %a)" Fmt.(list ~sep:(any " ") pp) es
  | Setq (v, e) -> Fmt.pf ppf "(setq %s %a)" v pp e
  | While (c, body) ->
      Fmt.pf ppf "(while %a %a)" pp c Fmt.(list ~sep:(any " ") pp) body
  | Let (binds, body) ->
      let pp_bind ppf (v, e) = Fmt.pf ppf "(%s %a)" v pp e in
      Fmt.pf ppf "(let (%a) %a)"
        Fmt.(list ~sep:(any " ") pp_bind)
        binds
        Fmt.(list ~sep:(any " ") pp)
        body
  | Call (f, args) -> Fmt.pf ppf "(%s %a)" f Fmt.(list ~sep:(any " ") pp) args
  | Funcall (f, args) ->
      Fmt.pf ppf "(funcall %a %a)" pp f Fmt.(list ~sep:(any " ") pp) args
