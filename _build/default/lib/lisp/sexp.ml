(** S-expression reader for the Lisp dialect.

    Syntax: integers, symbols, proper lists, ['] quote sugar, [;] line
    comments.  Symbols are case-sensitive.  Strings and dotted pairs are
    not part of the dialect (PSL programs of the benchmark suite are
    restructured to avoid them). *)

type t = Int of int | Sym of string | List of t list

exception Parse_error of string

let errorf fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

let is_delim c =
  match c with
  | '(' | ')' | '\'' | ';' -> true
  | c -> c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_int_literal tok =
  let body, start =
    if String.length tok > 1 && (tok.[0] = '-' || tok.[0] = '+') then (tok, 1)
    else (tok, 0)
  in
  String.length body > start
  && String.for_all (fun c -> c >= '0' && c <= '9')
       (String.sub body start (String.length body - start))

(* Streaming tokenizer over a string. *)
type lexer = { src : string; mutable pos : int }

let rec skip_ws lx =
  if lx.pos < String.length lx.src then
    match lx.src.[lx.pos] with
    | ' ' | '\t' | '\n' | '\r' ->
        lx.pos <- lx.pos + 1;
        skip_ws lx
    | ';' ->
        while lx.pos < String.length lx.src && lx.src.[lx.pos] <> '\n' do
          lx.pos <- lx.pos + 1
        done;
        skip_ws lx
    | _ -> ()

type token = Tlparen | Trparen | Tquote | Tatom of string | Teof

let next_token lx =
  skip_ws lx;
  if lx.pos >= String.length lx.src then Teof
  else
    match lx.src.[lx.pos] with
    | '(' ->
        lx.pos <- lx.pos + 1;
        Tlparen
    | ')' ->
        lx.pos <- lx.pos + 1;
        Trparen
    | '\'' ->
        lx.pos <- lx.pos + 1;
        Tquote
    | _ ->
        let start = lx.pos in
        while lx.pos < String.length lx.src && not (is_delim lx.src.[lx.pos]) do
          lx.pos <- lx.pos + 1
        done;
        Tatom (String.sub lx.src start (lx.pos - start))

let atom tok =
  if is_int_literal tok then Int (int_of_string tok) else Sym tok

let rec parse_one lx =
  match next_token lx with
  | Teof -> None
  | Trparen -> errorf "unexpected ')' at offset %d" lx.pos
  | Tquote -> (
      match parse_one lx with
      | Some e -> Some (List [ Sym "quote"; e ])
      | None -> errorf "end of input after quote")
  | Tatom tok -> Some (atom tok)
  | Tlparen ->
      let rec elements acc =
        match next_token lx with
        | Trparen -> List (List.rev acc)
        | Teof -> errorf "unterminated list"
        | Tquote -> (
            match parse_one lx with
            | Some e -> elements (List [ Sym "quote"; e ] :: acc)
            | None -> errorf "end of input after quote")
        | Tatom tok -> elements (atom tok :: acc)
        | Tlparen ->
            lx.pos <- lx.pos - 1;
            (* re-enter list parsing through parse_one *)
            (match parse_one lx with
            | Some e -> elements (e :: acc)
            | None -> errorf "unterminated list")
      in
      Some (elements [])

(** Parse all toplevel forms in a source string. *)
let parse_all src =
  let lx = { src; pos = 0 } in
  let rec loop acc =
    match parse_one lx with Some e -> loop (e :: acc) | None -> List.rev acc
  in
  loop []

(** Parse exactly one form. *)
let parse src =
  match parse_all src with
  | [ e ] -> e
  | l -> errorf "expected one form, got %d" (List.length l)

let rec pp ppf = function
  | Int n -> Fmt.int ppf n
  | Sym s -> Fmt.string ppf s
  | List l -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " ") pp) l

let to_string e = Fmt.str "%a" pp e
