(** Core abstract syntax after special-form and macro expansion. *)

type const = Cint of int | Csym of string | Clist of const list

type expr =
  | Const of const
  | Var of string (* local variable or global (symbol value cell) *)
  | If of expr * expr * expr
  | Progn of expr list
  | Setq of string * expr
  | While of expr * expr list
  | Let of (string * expr) list * expr list
  | Call of string * expr list (* primitive or user function *)
  | Funcall of expr * expr list (* call through a symbol's function cell *)

type def = { name : string; params : string list; body : expr }

val nil : expr
val t : expr
val pp_const : Format.formatter -> const -> unit
val pp : Format.formatter -> expr -> unit
