(** Translation from s-expressions to core AST: special forms, the fixed
    macro set (cond/and/or/when/unless/list/push/pop/dotimes/dolist/...),
    and desugaring of n-ary arithmetic into the binary primitives the
    code generator knows. *)

exception Error of string

(** Expand one expression. *)
val expr : Sexp.t -> Ast.expr

(** Expand a toplevel [(de name (params) body...)] definition. *)
val definition : Sexp.t -> Ast.def

(** Parse and expand a whole program: a sequence of [de] forms. *)
val program : string -> Ast.def list
