(** S-expression reader for the Lisp dialect: integers, symbols, proper
    lists, ['] quote sugar, [;] line comments.  Strings and dotted pairs
    are not part of the dialect. *)

type t = Int of int | Sym of string | List of t list

exception Parse_error of string

(** Parse all toplevel forms in a source string. *)
val parse_all : string -> t list

(** Parse exactly one form. *)
val parse : string -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
