(** Measurement driver: run a benchmark under a configuration, validate
    its result against the registry's expected value, and hand back the
    statistics.  Runs are memoised (the experiments share many
    configurations). *)

module Stats := Tagsim_sim.Stats
module Scheme := Tagsim_tags.Scheme
module Support := Tagsim_tags.Support
module Sched := Tagsim_asm.Sched
module Program := Tagsim_compiler.Program
module Registry := Tagsim_programs.Registry

exception Wrong_result of string

type measurement = {
  entry : Registry.entry;
  scheme : Scheme.t;
  support : Support.t;
  stats : Stats.t;
  gc_collections : int;
  gc_bytes_copied : int;
  meta : Program.meta;
}

val run :
  ?sched:Sched.config ->
  scheme:Scheme.t ->
  support:Support.t ->
  Registry.entry ->
  measurement

val all_entries : unit -> Registry.entry list

(** {1 Aggregation helpers} *)

val pct : int -> int -> float
val mean : float list -> float
val stddev : float list -> float
