(** Table 3: static information on the ten test programs. *)

type row = {
  name : string;
  procedures : int;
  source_lines : int;
  object_words : int;
}

type t = row list

val measure : ?scheme:Tagsim_tags.Scheme.t -> unit -> t
val pp : Format.formatter -> t -> unit
