lib/analysis/profile.mli: Format Tagsim_asm Tagsim_programs Tagsim_tags
