lib/analysis/garith.ml: Fmt List Run Tagsim_mipsx Tagsim_programs Tagsim_sim Tagsim_tags
