lib/analysis/figure1.mli: Format Tagsim_tags
