lib/analysis/run.ml: Hashtbl List Option Printf String Tagsim_asm Tagsim_compiler Tagsim_programs Tagsim_runtime Tagsim_sim Tagsim_tags
