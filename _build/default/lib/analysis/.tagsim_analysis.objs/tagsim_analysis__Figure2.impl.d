lib/analysis/figure2.ml: Fmt List Run Tagsim_mipsx Tagsim_sim Tagsim_tags
