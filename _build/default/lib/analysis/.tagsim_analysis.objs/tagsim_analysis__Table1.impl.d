lib/analysis/table1.ml: Fmt List Run Tagsim_mipsx Tagsim_programs Tagsim_sim Tagsim_tags
