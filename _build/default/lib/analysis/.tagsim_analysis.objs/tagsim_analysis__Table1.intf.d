lib/analysis/table1.mli: Format Tagsim_tags
