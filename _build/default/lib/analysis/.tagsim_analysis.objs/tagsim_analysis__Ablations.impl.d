lib/analysis/ablations.ml: Fmt List Run Tagsim_asm Tagsim_sim Tagsim_tags
