lib/analysis/run.mli: Tagsim_asm Tagsim_compiler Tagsim_programs Tagsim_sim Tagsim_tags
