lib/analysis/ablations.mli: Format
