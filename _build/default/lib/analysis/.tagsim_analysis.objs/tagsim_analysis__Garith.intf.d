lib/analysis/garith.mli: Format
