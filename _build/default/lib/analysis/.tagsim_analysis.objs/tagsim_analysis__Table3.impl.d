lib/analysis/table3.ml: Fmt List Run Tagsim_compiler Tagsim_programs Tagsim_tags
