lib/analysis/profile.ml: Array Fmt Hashtbl List String Tagsim_asm Tagsim_compiler Tagsim_programs Tagsim_sim Tagsim_tags
