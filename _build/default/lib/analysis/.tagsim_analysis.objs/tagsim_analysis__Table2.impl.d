lib/analysis/table2.ml: Fmt List Run Tagsim_sim Tagsim_tags
