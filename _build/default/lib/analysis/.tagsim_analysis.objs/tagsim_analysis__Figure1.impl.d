lib/analysis/figure1.ml: Fmt List Run Tagsim_sim Tagsim_tags
