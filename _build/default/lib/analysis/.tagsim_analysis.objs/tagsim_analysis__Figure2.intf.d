lib/analysis/figure2.mli: Format Tagsim_tags
