lib/analysis/table3.mli: Format Tagsim_tags
