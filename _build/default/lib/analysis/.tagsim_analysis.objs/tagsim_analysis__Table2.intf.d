lib/analysis/table2.mli: Format
