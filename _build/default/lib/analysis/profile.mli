(** A flat execution profiler: attributes every cycle to the function
    whose code region the program counter is in — user functions
    ([f$...]), runtime routines ([rt$...]) and the collector
    ([gc$...]). *)

type row = { label : string; cycles : int; share : float }

(** Rows sorted by descending cycle count. *)
val measure :
  ?sched:Tagsim_asm.Sched.config ->
  scheme:Tagsim_tags.Scheme.t ->
  support:Tagsim_tags.Support.t ->
  Tagsim_programs.Registry.entry ->
  row list

val pp : Format.formatter -> row list -> unit
