(** Measurement driver: run a benchmark under a configuration, validate
    its result, and hand back the statistics.  Runs are memoised — the
    experiments share many configurations. *)

module Stats = Tagsim_sim.Stats
module Scheme = Tagsim_tags.Scheme
module Support = Tagsim_tags.Support
module Sched = Tagsim_asm.Sched
module Program = Tagsim_compiler.Program
module Registry = Tagsim_programs.Registry
module L = Tagsim_runtime.Layout

exception Wrong_result of string

type measurement = {
  entry : Registry.entry;
  scheme : Scheme.t;
  support : Support.t;
  stats : Stats.t;
  gc_collections : int;
  gc_bytes_copied : int;
  meta : Program.meta;
}

let cache : (string, measurement) Hashtbl.t = Hashtbl.create 64

let sched_key (s : Sched.config) =
  Printf.sprintf "%b%b%b" s.Sched.hoist s.Sched.fill_unlikely
    s.Sched.squash_likely

let key entry scheme support sched =
  String.concat "/"
    [
      entry.Registry.name;
      scheme.Scheme.name;
      Support.describe support;
      sched_key sched;
    ]

let run ?(sched = Sched.default) ~scheme ~support (entry : Registry.entry) =
  let k = key entry scheme support sched in
  match Hashtbl.find_opt cache k with
  | Some m -> m
  | None ->
      let program =
        Program.compile ~sched ~sizes:entry.Registry.sizes ~scheme ~support
          entry.Registry.source
      in
      let result = Program.run program in
      (match result.Program.abort with
      | Some msg ->
          raise
            (Wrong_result
               (Printf.sprintf "%s [%s]: aborted: %s" entry.Registry.name
                  scheme.Scheme.name msg))
      | None -> ());
      let got = Program.hval_to_string (Option.get result.Program.value) in
      if got <> entry.Registry.expected then
        raise
          (Wrong_result
             (Printf.sprintf "%s [%s/%s]: got %s, expected %s"
                entry.Registry.name scheme.Scheme.name
                (Support.describe support) got entry.Registry.expected));
      let m =
        {
          entry;
          scheme;
          support;
          stats = result.Program.stats;
          gc_collections = result.Program.gc_collections;
          gc_bytes_copied = result.Program.gc_bytes_copied;
          meta = program.Program.meta;
        }
      in
      Hashtbl.replace cache k m;
      m

let all_entries () = Registry.all ()

(* Percentage helpers. *)
let pct part whole = 100.0 *. float_of_int part /. float_of_int whole

let mean l =
  match l with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev l =
  let m = mean l in
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
      sqrt
        (List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 l
        /. float_of_int (List.length l))
