(** Ablations of this implementation's delay-slot scheduler (DESIGN.md):
    suite cycles under each feature level, with run-time checking on. *)

type t = {
  none : int; (* all scheduling off *)
  hoist_only : int;
  hoist_fill : int;
  full : int; (* + squashing likely branches *)
}

val measure : unit -> t
val pp : Format.formatter -> t -> unit
