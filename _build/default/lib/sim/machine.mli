(** The instruction-level simulator.  Cost model: one cycle per
    instruction, with the deviations documented in the implementation
    header (wide immediates, multiply/divide, load-use interlocks,
    squashed slots, trap overhead) — all of them visible to the paper's
    cycle accounting. *)

module Image := Tagsim_asm.Image

exception Machine_error of string

(** Hardware configuration: tag geometry and the semantics of the
    tag-aware instructions.  Supplied by the tag scheme in use
    (see {!Tagsim_tags.Scheme.machine_hw}). *)
type hw = {
  mem_bytes : int; (* power of two *)
  tag_shift : int;
  tag_width : int;
  addr_mask : int; (* applied by tag-ignoring and checked memory ops *)
  is_int_item : int -> bool; (* hardware integer test, for Add_gen *)
  gen_overflowed : int -> int -> int -> bool;
  trap_overhead : int;
}

type outcome = Halted of int | Aborted of int

type t

(** {1 Abort codes} *)

val err_type : int
val err_bounds : int
val err_mem : int
val err_div0 : int

(** [Trap n] aborts with code [err_user_base + n]. *)
val err_user_base : int

(** {1 Lifecycle} *)

val create : ?fuel:int -> hw:hw -> Image.t -> t

(** Register the trap handlers for hardware generic arithmetic. *)
val set_gen_handlers : t -> add:int -> sub:int -> unit

val reg : t -> int -> int

(** Current program counter (an instruction index). *)
val pc : t -> int

(** Termination state, if the machine has stopped. *)
val outcome : t -> outcome option

val set_reg : t -> int -> int -> unit
val stats : t -> Stats.t

(** Direct memory access for the host (loader, result decoding,
    performance counters).  Addresses are byte addresses. *)
val peek : t -> int -> int

val poke : t -> int -> int -> unit

(** Execute one instruction (including its delay slots). *)
val step : t -> unit

exception Out_of_fuel

(** Run to completion. *)
val run : t -> outcome
