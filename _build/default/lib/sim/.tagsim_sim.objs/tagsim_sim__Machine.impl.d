lib/sim/machine.ml: Array Fmt List Stats Tagsim_asm Tagsim_mipsx
