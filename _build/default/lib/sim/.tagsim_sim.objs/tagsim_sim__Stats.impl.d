lib/sim/stats.ml: Array Fmt List Tagsim_mipsx
