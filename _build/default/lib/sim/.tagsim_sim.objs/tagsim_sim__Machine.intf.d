lib/sim/machine.mli: Stats Tagsim_asm
