lib/sim/stats.mli: Format Tagsim_mipsx
