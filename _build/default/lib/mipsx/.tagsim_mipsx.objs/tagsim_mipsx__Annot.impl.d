lib/mipsx/annot.ml: Fmt
