lib/mipsx/reg.mli: Format
