lib/mipsx/insn.mli: Format Reg
