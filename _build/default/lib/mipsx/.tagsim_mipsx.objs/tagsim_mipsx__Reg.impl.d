lib/mipsx/reg.ml: Fmt List Printf
