lib/mipsx/word.ml: Fmt
