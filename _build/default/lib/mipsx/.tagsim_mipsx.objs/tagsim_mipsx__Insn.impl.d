lib/mipsx/insn.ml: Fmt Printf Reg
