lib/mipsx/annot.mli: Format
