lib/mipsx/word.mli: Format
