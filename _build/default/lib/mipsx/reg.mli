(** Machine registers and the software register convention used by the
    Lisp compiler and runtime (see the implementation for the full
    convention table). *)

type t = int

val count : int

(** {1 Hardware-defined} *)

val zero : t

(** {1 Software convention} *)

val rmask : t
(** data-part mask for tag removal, kept loaded at all times *)

val v0 : t
(** function result; also transient scratch, never live across a
    collection point *)

val v1 : t
(** transient scratch, never live across a collection point *)

val a0 : t
val a1 : t
val a2 : t
val a3 : t

val t0 : t
(** expression temporaries t0..t8 = r8..r16; [temp i] gives the i-th *)

val temp : int -> t
val n_temps : int
val t1 : t
val t2 : t
val t3 : t
val t4 : t
val t5 : t
val t6 : t
val t7 : t
val t8 : t

val rnil : t
(** the nil item, kept loaded at all times (PSL convention) *)

val k0 : t
(** k0..k4: runtime-internal scratch (collector, trap handlers) *)

val k1 : t
val k2 : t
val k3 : t
val k4 : t

val k5 : t
(** preserved across collections; may hold a preshifted tag constant *)

val tr0 : t
(** trap argument 0: first operand of a trapped instruction *)

val tr1 : t
val stb : t
(** symbol table base *)

val hl : t
(** heap limit *)

val hp : t
(** heap (free) pointer *)

val sp : t
(** stack pointer, grows downwards *)

val epc : t
(** trap return address (written by the trap mechanism) *)

val ra : t
(** return address *)

val name : t -> string
val pp : Format.formatter -> t -> unit

(** Registers holding tagged Lisp values at any instruction boundary; the
    garbage collector treats these as roots (together with the stack).
    [v0]/[v1] are deliberately excluded: they are transient scratch that
    may hold non-item values and are never live across a collection. *)
val gc_roots : t list
