(** Cycle-classification annotations: every emitted instruction carries
    one, and the simulator accumulates executed cycles per annotation.
    The categories follow Section 3 of the paper; see the implementation
    header for the full story. *)

(** Which kind of operation a tag extraction or check belongs to — the
    Table 1 columns plus source-level type predicates. *)
type source =
  | List_op (* car, cdr, rplaca, ... *)
  | Vector_op (* getv, putv: tag, index and bounds checks *)
  | Arith_op (* integer tests and overflow tests in arithmetic *)
  | Symbol_op (* symbol accesses (value cells, property lists) *)
  | User_pred (* atom, pairp, numberp, ... in the source *)
  | Other_op

type kind =
  | Plain
  | Insert
  | Remove
  | Extract of source
  | Check of source
  | Garith (* generic-arithmetic dispatch / fixup *)
  | Alloc (* inline allocation sequence *)
  | Gc_work (* inside the copying collector *)
  | Slot_fill (* no-op placed in an unfilled delay slot *)

type t = { kind : kind; checking : bool }
(** [checking] marks instructions that exist only because full run-time
    checking is enabled (the dark-grey component of Figure 1). *)

val plain : t
val make : ?checking:bool -> kind -> t
val source_name : source -> string
val kind_name : kind -> string
val pp : Format.formatter -> t -> unit

(** {1 Dense indexing for the statistics module} *)

val source_index : source -> int
val n_sources : int
val all_sources : source list
