(** 32-bit machine words, stored as non-negative OCaml ints in [0, 2^32). *)

val bits : int
val mask : int

(** Truncate an OCaml int to an unsigned 32-bit word. *)
val of_int : int -> int

(** Interpret a word as a signed 32-bit two's-complement integer. *)
val to_signed : int -> int

val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int

(** Signed division truncating towards zero, as on MIPS-X.  Division by
    zero is a machine-level error handled by the caller. *)
val div : int -> int -> int

(** Signed remainder; the sign follows the dividend. *)
val rem : int -> int -> int

val logand : int -> int -> int
val logor : int -> int -> int
val logxor : int -> int -> int
val lognor : int -> int -> int

(** Shift amounts are taken modulo 32, as on most RISC hardware. *)
val sll : int -> int -> int

val srl : int -> int -> int
val sra : int -> int -> int
val lt_signed : int -> int -> bool
val lt_unsigned : int -> int -> bool
val equal : int -> int -> bool

(** [field ~shift ~width w] extracts an unsigned bit-field from [w]. *)
val field : shift:int -> width:int -> int -> int

(** True when the argument fits in a signed immediate of [width] bits
    (MIPS-X immediates are 17 bits wide). *)
val fits_simm : width:int -> int -> bool

(** Cycles needed to materialise a constant: one for a 17-bit signed
    immediate or a [lui]-style upper-half constant, two otherwise. *)
val imm_cycles : int -> int

val pp : Format.formatter -> int -> unit
