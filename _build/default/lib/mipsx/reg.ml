(** Machine registers and the software register convention used by the
    Lisp compiler and runtime.

    The convention mirrors the flavour of the PSL-on-MIPS-X system described
    in the paper: a dedicated mask register for tag removal (Section 3.2),
    a heap pointer and heap limit kept in registers for inline allocation,
    and a symbol-table base register for fast access to global value cells. *)

type t = int

let count = 32

(* Hardware-defined. *)
let zero = 0

(* Dedicated software convention. *)
let rmask = 1 (* data-part mask for tag removal, kept loaded at all times *)
let v0 = 2 (* function result *)
let v1 = 3 (* secondary result / codegen scratch *)

let a0 = 4 (* first four arguments *)
let a1 = 5
let a2 = 6
let a3 = 7

(* Expression temporaries t0..t8 = r8..r16, allocated stack-wise. *)
let t0 = 8
let temp i =
  if i < 0 || i > 8 then invalid_arg "Reg.temp";
  t0 + i

let n_temps = 9
let t1 = temp 1
let t2 = temp 2
let t3 = temp 3
let t4 = temp 4
let t5 = temp 5
let t6 = temp 6
let t7 = temp 7
let t8 = temp 8

let rnil = 17 (* the nil item, kept loaded at all times (PSL convention) *)

(* Runtime-internal scratch (trap handlers, GC, generic-arith fallback). *)
let k0 = 18
let k1 = 19
let k2 = 20
let k3 = 21
let k4 = 22
let k5 = 23

let tr0 = 24 (* trap argument 0: first operand of a trapped instruction *)
let tr1 = 25 (* trap argument 1: second operand of a trapped instruction *)
let stb = 26 (* symbol table base *)
let hl = 27 (* heap limit *)
let hp = 28 (* heap (free) pointer *)
let sp = 29 (* stack pointer, grows downwards *)
let epc = 30 (* trap return address (written by the trap mechanism) *)
let ra = 31 (* return address *)

let name r =
  match r with
  | 0 -> "zero"
  | 1 -> "rmask"
  | 2 -> "v0"
  | 3 -> "v1"
  | 4 -> "a0"
  | 5 -> "a1"
  | 6 -> "a2"
  | 7 -> "a3"
  | 18 -> "k0"
  | 19 -> "k1"
  | 20 -> "k2"
  | 21 -> "k3"
  | 22 -> "k4"
  | 23 -> "k5"
  | 24 -> "tr0"
  | 25 -> "tr1"
  | 26 -> "stb"
  | 27 -> "hl"
  | 28 -> "hp"
  | 29 -> "sp"
  | 30 -> "epc"
  | 31 -> "ra"
  | 17 -> "rnil"
  | r when r >= 8 && r <= 16 -> Printf.sprintf "t%d" (r - 8)
  | r -> Printf.sprintf "r%d" r

let pp ppf r = Fmt.string ppf (name r)

(** Registers holding tagged Lisp values at any instruction boundary; the
    garbage collector treats these as roots (together with the stack). *)
let gc_roots =
  [ a0; a1; a2; a3 ] @ List.init n_temps temp @ [ rnil; k5; tr0; tr1 ]
(* k0..k4 are GC-internal scratch and deliberately not roots; k5 is
   preserved so that it can hold a preshifted tag constant (Section 3.1
   ablation).  v0/v1 are transient scratch, never live across a
   collection, and may hold non-item values, so they must not be
   scanned. *)
