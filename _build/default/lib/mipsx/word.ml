(** 32-bit machine words, stored as non-negative OCaml ints in [0, 2^32). *)

let bits = 32
let mask = 0xFFFFFFFF

(** Truncate an OCaml int to an unsigned 32-bit word. *)
let of_int n = n land mask

(** Interpret a word as a signed 32-bit two's-complement integer. *)
let to_signed w =
  if w land 0x80000000 <> 0 then w - 0x100000000 else w

let add a b = (a + b) land mask
let sub a b = (a - b) land mask
let mul a b = (a * b) land mask

(** Signed division truncating towards zero, as on MIPS-X.
    Division by zero is a machine-level error handled by the caller. *)
let div a b = of_int (to_signed a / to_signed b)

let rem a b = of_int (to_signed a mod to_signed b)
let logand a b = a land b
let logor a b = a lor b
let logxor a b = a lxor b
let lognor a b = lnot (a lor b) land mask

(** Shift amounts are taken modulo 32, as on most RISC hardware. *)
let sll a n = (a lsl (n land 31)) land mask

let srl a n = a lsr (n land 31)
let sra a n = of_int (to_signed a asr (n land 31))
let lt_signed a b = to_signed a < to_signed b
let lt_unsigned a b = a < b
let equal a b = a = b

(** [field ~shift ~width w] extracts an unsigned bit-field from [w]. *)
let field ~shift ~width w = (w lsr shift) land ((1 lsl width) - 1)

(** True when [n] fits in a signed immediate of [width] bits
    (MIPS-X immediates are 17 bits wide). *)
let fits_simm ~width n =
  let half = 1 lsl (width - 1) in
  n >= -half && n < half

(** Cycles needed to materialise constant [n]: one for a 17-bit signed
    immediate or a [lui]-style upper-half constant (e.g. a tag value shifted
    to the top of the word), two for anything else. *)
let imm_cycles n =
  if fits_simm ~width:17 n || n land 0xFFFF = 0 then 1 else 2

let pp ppf w = Fmt.pf ppf "0x%08x" w
