(** Cycle-classification annotations.

    Every instruction emitted by the compiler or the runtime carries an
    annotation saying what kind of work it performs.  The simulator
    accumulates executed cycles per annotation; the analysis layer turns the
    accumulated counters into the paper's Tables and Figures.

    The categories follow Section 3 of the paper:
    - {e insertion}: building a tagged item from a datum and a tag,
    - {e removal}: masking the tag out before using the data part,
    - {e extraction}: isolating the tag for a comparison,
    - {e checking}: the comparison-and-branch part of a type check,
    - {e generic arithmetic}: dispatch work beyond the inline integer test.

    The [source] of extractions and checks distinguishes the Table 1 columns
    (arith / vector / list) and the user-specified type predicates of
    Section 6 category three.  The [checking] flag marks instructions that
    exist only because full run-time checking is enabled; it separates the
    light-grey and dark-grey components of Figure 1. *)

type source =
  | List_op (* car, cdr, rplaca, ... *)
  | Vector_op (* getv, putv: tag, index and bounds checks *)
  | Arith_op (* integer tests and overflow tests in arithmetic *)
  | Symbol_op (* symbol accesses (value cells, property lists) *)
  | User_pred (* atom, pairp, numberp, eq-on-type, ... in the source *)
  | Other_op

type kind =
  | Plain
  | Insert
  | Remove
  | Extract of source
  | Check of source
  | Garith (* generic-arithmetic dispatch / fixup *)
  | Alloc (* inline allocation sequence *)
  | Gc_work (* inside the copying collector *)
  | Slot_fill (* no-op placed in an unfilled delay slot *)

type t = { kind : kind; checking : bool }

let plain = { kind = Plain; checking = false }
let make ?(checking = false) kind = { kind; checking }

let source_name = function
  | List_op -> "list"
  | Vector_op -> "vector"
  | Arith_op -> "arith"
  | Symbol_op -> "symbol"
  | User_pred -> "user"
  | Other_op -> "other"

let kind_name = function
  | Plain -> "plain"
  | Insert -> "insert"
  | Remove -> "remove"
  | Extract s -> "extract." ^ source_name s
  | Check s -> "check." ^ source_name s
  | Garith -> "garith"
  | Alloc -> "alloc"
  | Gc_work -> "gc"
  | Slot_fill -> "slot"

let pp ppf t =
  Fmt.pf ppf "%s%s" (kind_name t.kind) (if t.checking then "+rtc" else "")

(* Dense indexing used by the statistics module. *)

let source_index = function
  | List_op -> 0
  | Vector_op -> 1
  | Arith_op -> 2
  | Symbol_op -> 3
  | User_pred -> 4
  | Other_op -> 5

let n_sources = 6

let all_sources =
  [ List_op; Vector_op; Arith_op; Symbol_op; User_pred; Other_op ]
