(** The MIPS-X-like instruction set.

    The type is parameterised over the representation of code and data
    addresses: the assembler works with symbolic labels ([string t]) and
    produces resolved instructions ([int t]).

    The baseline instruction set is a plain single-issue RISC: one cycle per
    instruction, delayed branches with two delay slots (optionally squashing,
    Section 6.2.1 of the paper), a one-cycle load delay.  The extensions the
    paper studies are modelled as additional instructions or memory modes:

    - [Tag_ignoring] loads/stores drop the tag bits of the address
      (Section 5.2, Table 2 row 1 hardware variant);
    - [Checked] loads/stores verify the tag of the {e address operand} in
      parallel with the address calculation and trap on mismatch
      (Section 6.2.1, Table 2 rows 5 and 6);
    - [Btag] branches compare the tag field directly, without a separate
      extraction instruction (Section 6.1, Table 2 row 2);
    - [Add_gen]/[Sub_gen] perform hardware generic arithmetic: they execute
      an integer add/sub and trap unless both operands carry integer tags
      and no overflow occurs (Section 6.2.2, Table 2 row 4). *)

type alu =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Nor
  | Slt (* signed set-on-less-than *)
  | Sltu
  | Sll
  | Srl
  | Sra
  | Mul
  | Div
  | Rem

type cond = Eq | Ne | Lt | Ge | Gt | Le

type mem_mode =
  | Plain
  | Tag_ignoring
  | Checked of int (* expected tag value for the address operand *)

(** Static branch prediction hint supplied by the code generator; the
    delay-slot scheduler uses it to decide how to fill the two slots. *)
type hint =
  | No_hint
  | Unlikely (* taken path aborts or retries: slots may hold stores *)
  | Slow_path
      (* taken path resumes after fixing the result: slots may hold only
         register work that the slow path overwrites *)
  | Likely (* e.g. loop back-edge *)

type branch = {
  cond : cond;
  rs : Reg.t;
  rt : Reg.t;
  squash : bool; (* squashing branch: slots annulled when not taken *)
  hint : hint;
}

type branch_i = {
  bi_cond : cond;
  bi_rs : Reg.t;
  bi_imm : int; (* 17-bit signed immediate *)
  bi_squash : bool;
  bi_hint : hint;
}

type btag = {
  bt_neg : bool; (* true: branch when tag differs *)
  bt_rs : Reg.t;
  bt_tag : int; (* expected tag value *)
  bt_squash : bool;
  bt_hint : hint;
}

type 'lbl t =
  | Alu of alu * Reg.t * Reg.t * Reg.t (* rd <- rs op rt *)
  | Alui of alu * Reg.t * Reg.t * int (* rd <- rs op imm *)
  | Li of Reg.t * int (* rd <- constant (2 cycles if wide) *)
  | La of Reg.t * 'lbl (* rd <- address of data label *)
  | Mv of Reg.t * Reg.t (* rd <- rs (distinct class for Figure 2) *)
  | Ld of mem_mode * Reg.t * Reg.t * int (* rd <- mem[rs + off] *)
  | St of mem_mode * Reg.t * Reg.t * int (* mem[rs + off] <- rt *)
  | B of branch * 'lbl
  | Bi of branch_i * 'lbl
  | Btag of btag * 'lbl
  | J of 'lbl
  | Jal of 'lbl
  | Jr of Reg.t
  | Jalr of Reg.t (* call through register (funcall) *)
  | Add_gen of Reg.t * Reg.t * Reg.t
  | Sub_gen of Reg.t * Reg.t * Reg.t
  | Settd of Reg.t (* trap handler: write rs to the trapped insn's dest *)
  | Rett (* return from a resumable trap *)
  | Trap of int (* abort execution with an error code *)
  | Halt (* normal termination; result in v0 *)
  | Nop

(* --- Static properties used by the scheduler and the simulator. --- *)

let is_control = function
  | B _ | Bi _ | Btag _ | J _ | Jal _ | Jr _ | Jalr _ | Trap _ | Halt | Rett ->
      true
  | Alu _ | Alui _ | Li _ | La _ | Mv _ | Ld _ | St _ | Add_gen _ | Sub_gen _
  | Settd _ | Nop ->
      false

(** Registers read by an instruction (for dependence checking). *)
let reads = function
  | Alu (_, _, rs, rt) -> [ rs; rt ]
  | Alui (_, _, rs, _) -> [ rs ]
  | Li _ | La _ -> []
  | Mv (_, rs) -> [ rs ]
  | Ld (_, _, rs, _) -> [ rs ]
  | St (_, rs, rt, _) -> [ rs; rt ]
  | B ({ rs; rt; _ }, _) -> [ rs; rt ]
  | Bi ({ bi_rs; _ }, _) -> [ bi_rs ]
  | Btag ({ bt_rs; _ }, _) -> [ bt_rs ]
  | J _ | Jal _ -> []
  | Jr rs | Jalr rs -> [ rs ]
  | Add_gen (_, rs, rt) | Sub_gen (_, rs, rt) -> [ rs; rt ]
  | Settd rs -> [ rs ]
  | Rett -> [ Reg.epc ]
  | Trap _ | Halt | Nop -> []

(** Register written by an instruction, if any. *)
let writes = function
  | Alu (_, rd, _, _)
  | Alui (_, rd, _, _)
  | Li (rd, _)
  | La (rd, _)
  | Mv (rd, _)
  | Ld (_, rd, _, _)
  | Add_gen (rd, _, _)
  | Sub_gen (rd, _, _) ->
      Some rd
  | Jal _ | Jalr _ -> Some Reg.ra
  | St _ | B _ | Bi _ | Btag _ | J _ | Jr _ | Settd _ | Rett | Trap _ | Halt
  | Nop ->
      None

let has_memory_effect = function
  | Ld _ | St _ -> true
  | Alu _ | Alui _ | Li _ | La _ | Mv _ | B _ | Bi _ | Btag _ | J _ | Jal _
  | Jr _ | Jalr _ | Add_gen _ | Sub_gen _ | Settd _ | Rett | Trap _ | Halt
  | Nop ->
      false

(** Could the instruction trap (beyond ordinary memory access)?  Trapping
    instructions are never hoisted into delay slots. *)
let may_trap = function
  | Add_gen _ | Sub_gen _ | Trap _ -> true
  | Ld (Checked _, _, _, _) | St (Checked _, _, _, _) -> true
  | Alu ((Div | Rem), _, _, _) | Alui ((Div | Rem), _, _, _) -> true
  | Ld _ | St _ | Alu _ | Alui _ | Li _ | La _ | Mv _ | B _ | Bi _ | Btag _
  | J _ | Jal _ | Jr _ | Jalr _ | Settd _ | Rett | Halt | Nop ->
      false

(* --- Pretty-printing (symbolic form). --- *)

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Nor -> "nor"
  | Slt -> "slt"
  | Sltu -> "sltu"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"

let cond_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Ge -> "ge"
  | Gt -> "gt"
  | Le -> "le"

let mode_suffix = function
  | Plain -> ""
  | Tag_ignoring -> ".ti"
  | Checked tag -> Printf.sprintf ".chk%d" tag

let pp pp_lbl ppf insn =
  let r = Reg.name in
  match insn with
  | Alu (op, rd, rs, rt) ->
      Fmt.pf ppf "%s %s, %s, %s" (alu_name op) (r rd) (r rs) (r rt)
  | Alui (op, rd, rs, imm) ->
      Fmt.pf ppf "%si %s, %s, %d" (alu_name op) (r rd) (r rs) imm
  | Li (rd, imm) -> Fmt.pf ppf "li %s, %d" (r rd) imm
  | La (rd, lbl) -> Fmt.pf ppf "la %s, %a" (r rd) pp_lbl lbl
  | Mv (rd, rs) -> Fmt.pf ppf "mv %s, %s" (r rd) (r rs)
  | Ld (m, rd, rs, off) ->
      Fmt.pf ppf "ld%s %s, %d(%s)" (mode_suffix m) (r rd) off (r rs)
  | St (m, rs, rt, off) ->
      Fmt.pf ppf "st%s %s, %d(%s)" (mode_suffix m) (r rt) off (r rs)
  | B (b, lbl) ->
      Fmt.pf ppf "b%s%s %s, %s, %a" (cond_name b.cond)
        (if b.squash then ".sq" else "")
        (r b.rs) (r b.rt) pp_lbl lbl
  | Bi (b, lbl) ->
      Fmt.pf ppf "b%si%s %s, %d, %a" (cond_name b.bi_cond)
        (if b.bi_squash then ".sq" else "")
        (r b.bi_rs) b.bi_imm pp_lbl lbl
  | Btag (b, lbl) ->
      Fmt.pf ppf "btag%s%s %s, %d, %a"
        (if b.bt_neg then ".ne" else ".eq")
        (if b.bt_squash then ".sq" else "")
        (r b.bt_rs) b.bt_tag pp_lbl lbl
  | J lbl -> Fmt.pf ppf "j %a" pp_lbl lbl
  | Jal lbl -> Fmt.pf ppf "jal %a" pp_lbl lbl
  | Jr rs -> Fmt.pf ppf "jr %s" (r rs)
  | Jalr rs -> Fmt.pf ppf "jalr %s" (r rs)
  | Add_gen (rd, rs, rt) ->
      Fmt.pf ppf "add.gen %s, %s, %s" (r rd) (r rs) (r rt)
  | Sub_gen (rd, rs, rt) ->
      Fmt.pf ppf "sub.gen %s, %s, %s" (r rd) (r rs) (r rt)
  | Settd rs -> Fmt.pf ppf "settd %s" (r rs)
  | Rett -> Fmt.string ppf "rett"
  | Trap code -> Fmt.pf ppf "trap %d" code
  | Halt -> Fmt.string ppf "halt"
  | Nop -> Fmt.string ppf "nop"

(** Map the label type, e.g. when resolving labels to addresses. *)
let map_label f = function
  | La (rd, l) -> La (rd, f l)
  | B (b, l) -> B (b, f l)
  | Bi (b, l) -> Bi (b, f l)
  | Btag (b, l) -> Btag (b, f l)
  | J l -> J (f l)
  | Jal l -> Jal (f l)
  | Alu (op, rd, rs, rt) -> Alu (op, rd, rs, rt)
  | Alui (op, rd, rs, imm) -> Alui (op, rd, rs, imm)
  | Li (rd, imm) -> Li (rd, imm)
  | Mv (rd, rs) -> Mv (rd, rs)
  | Ld (m, rd, rs, off) -> Ld (m, rd, rs, off)
  | St (m, rs, rt, off) -> St (m, rs, rt, off)
  | Jr rs -> Jr rs
  | Jalr rs -> Jalr rs
  | Add_gen (rd, rs, rt) -> Add_gen (rd, rs, rt)
  | Sub_gen (rd, rs, rt) -> Sub_gen (rd, rs, rt)
  | Settd rs -> Settd rs
  | Rett -> Rett
  | Trap code -> Trap code
  | Halt -> Halt
  | Nop -> Nop

(** Instruction class for the Figure 2 frequency accounting. *)
type klass =
  | K_and (* tag-masking and other AND operations *)
  | K_move
  | K_nop
  | K_load
  | K_store
  | K_branch
  | K_jump
  | K_alu
  | K_other

let klass = function
  | Alu (And, _, _, _) | Alui (And, _, _, _) -> K_and
  | Mv _ -> K_move
  | Nop -> K_nop
  | Ld _ -> K_load
  | St _ -> K_store
  | B _ | Bi _ | Btag _ -> K_branch
  | J _ | Jal _ | Jr _ | Jalr _ -> K_jump
  | Alu _ | Alui _ | Li _ | La _ | Add_gen _ | Sub_gen _ -> K_alu
  | Settd _ | Rett | Trap _ | Halt -> K_other

let klass_name = function
  | K_and -> "and"
  | K_move -> "move"
  | K_nop -> "noop"
  | K_load -> "load"
  | K_store -> "store"
  | K_branch -> "branch"
  | K_jump -> "jump"
  | K_alu -> "alu"
  | K_other -> "other"

let klass_index = function
  | K_and -> 0
  | K_move -> 1
  | K_nop -> 2
  | K_load -> 3
  | K_store -> 4
  | K_branch -> 5
  | K_jump -> 6
  | K_alu -> 7
  | K_other -> 8

let n_klasses = 9

let all_klasses =
  [ K_and; K_move; K_nop; K_load; K_store; K_branch; K_jump; K_alu; K_other ]
