(** The MIPS-X-like instruction set, parameterised over the label type:
    symbolic programs use [string t], resolved programs [int t].  See the
    implementation header for the modelling of the paper's hardware
    extensions. *)

type alu =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Nor
  | Slt
  | Sltu
  | Sll
  | Srl
  | Sra
  | Mul
  | Div
  | Rem

type cond = Eq | Ne | Lt | Ge | Gt | Le

type mem_mode =
  | Plain
  | Tag_ignoring (* hardware drops the tag bits of the address *)
  | Checked of int (* hardware verifies the address operand's tag *)

(** Static branch prediction hint, consumed by the delay-slot scheduler. *)
type hint =
  | No_hint
  | Unlikely (* taken path aborts or retries: slots may hold stores *)
  | Slow_path
      (* taken path resumes after fixing the result: slots may hold only
         register work that the slow path overwrites *)
  | Likely (* e.g. loop back-edge *)

type branch = {
  cond : cond;
  rs : int;
  rt : int;
  squash : bool; (* squashing branch: slots annulled when not taken *)
  hint : hint;
}

type branch_i = {
  bi_cond : cond;
  bi_rs : int;
  bi_imm : int; (* 17-bit signed immediate *)
  bi_squash : bool;
  bi_hint : hint;
}

type btag = {
  bt_neg : bool; (* true: branch when the tag differs *)
  bt_rs : int;
  bt_tag : int; (* expected tag value *)
  bt_squash : bool;
  bt_hint : hint;
}

type 'lbl t =
  | Alu of alu * Reg.t * Reg.t * Reg.t (* rd <- rs op rt *)
  | Alui of alu * Reg.t * Reg.t * int (* rd <- rs op imm *)
  | Li of Reg.t * int (* rd <- constant (2 cycles if wide) *)
  | La of Reg.t * 'lbl (* rd <- address of a data label *)
  | Mv of Reg.t * Reg.t (* rd <- rs (its own class for Figure 2) *)
  | Ld of mem_mode * Reg.t * Reg.t * int (* rd <- mem[rs + off] *)
  | St of mem_mode * Reg.t * Reg.t * int (* mem[rs + off] <- rt *)
  | B of branch * 'lbl
  | Bi of branch_i * 'lbl
  | Btag of btag * 'lbl
  | J of 'lbl
  | Jal of 'lbl
  | Jr of Reg.t
  | Jalr of Reg.t (* call through a register (funcall) *)
  | Add_gen of Reg.t * Reg.t * Reg.t (* hardware generic add: may trap *)
  | Sub_gen of Reg.t * Reg.t * Reg.t
  | Settd of Reg.t (* trap handler: write rs to the trapped insn's dest *)
  | Rett (* return from a resumable trap *)
  | Trap of int (* abort execution with an error code *)
  | Halt (* normal termination; result in v0 *)
  | Nop

(** {1 Static properties (scheduler / simulator)} *)

val is_control : 'lbl t -> bool
val reads : 'lbl t -> Reg.t list
val writes : 'lbl t -> Reg.t option
val has_memory_effect : 'lbl t -> bool

(** Could the instruction trap (beyond ordinary memory access)?  Trapping
    instructions are never hoisted into delay slots. *)
val may_trap : 'lbl t -> bool

(** {1 Pretty-printing} *)

val alu_name : alu -> string
val cond_name : cond -> string
val mode_suffix : mem_mode -> string
val pp : (Format.formatter -> 'lbl -> unit) -> Format.formatter -> 'lbl t -> unit

(** Map the label type, e.g. when resolving labels to addresses. *)
val map_label : ('a -> 'b) -> 'a t -> 'b t

(** {1 Instruction classes for the Figure 2 frequency accounting} *)

type klass =
  | K_and
  | K_move
  | K_nop
  | K_load
  | K_store
  | K_branch
  | K_jump
  | K_alu
  | K_other

val klass : 'lbl t -> klass
val klass_name : klass -> string
val klass_index : klass -> int
val n_klasses : int
val all_klasses : klass list
