(** Two-pass assembler: schedules delay slots, resolves labels and
    produces a loadable image.  Code and data live in separate address
    spaces (code addresses are instruction indices, data addresses byte
    addresses; all data accesses are word-aligned). *)

module Insn := Tagsim_mipsx.Insn
module Annot := Tagsim_mipsx.Annot

exception Error of string

type entry = { insn : int Insn.t; annot : Annot.t; speculative : bool }

type t = {
  code : entry array;
  code_symbols : (string, int) Hashtbl.t;
  data_symbols : (string, int) Hashtbl.t; (* byte addresses *)
  data_words : int array; (* initial data image, starting at address 0 *)
  data_end : int; (* first free byte address after static data *)
  source : Buf.item list; (* scheduled symbolic program, for dumps *)
}

(** The first data address handed out; lower addresses are reserved so
    that 0 is never a valid object address. *)
val data_base : int

val assemble : ?sched:Sched.config -> Buf.t -> t

(** Address of a code label; raises {!Error} if unknown. *)
val code_address : t -> string -> int

(** Byte address of a data label; raises {!Error} if unknown. *)
val data_address : t -> string -> int

val size_in_words : t -> int
val pp : Format.formatter -> t -> unit
