(** Delay-slot scheduling: rewrites a slot-free instruction stream so
    that every branch or jump is followed by exactly two slot
    instructions — hoisted from before the branch, pulled from the
    fall-through of rarely-taken branches, or copied from the target of
    likely branches (which become squashing).  Unfilled slots become
    no-ops that inherit a checking branch's annotation, matching the
    paper's accounting of unused delay slots (Section 3.4). *)

type config = {
  hoist : bool;
  fill_unlikely : bool;
  squash_likely : bool;
}

val default : config

(** Everything off: every slot becomes a no-op (the naive-assembler
    ablation). *)
val off : config

(** [run ~config ~fresh items] returns the slotted stream; [fresh]
    generates labels for the squashing-branch retargets. *)
val run :
  ?config:config ->
  fresh:(string -> string) ->
  Buf.item list ->
  Buf.item list
