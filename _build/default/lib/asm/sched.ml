(** Delay-slot scheduling.

    MIPS-X branches have two delay slots; loads have a one-cycle use delay.
    The code generator emits branch instructions with no slots; this pass
    rewrites the stream so that every branch or jump is followed by exactly
    two slot instructions, filled as a period compiler would:

    - {b hoisting}: the instructions immediately preceding the branch are
      moved into its slots when they do not feed the branch condition;
    - {b fall-through filling}: branches marked [Unlikely] (run-time error
      checks, which either fall through or abort) get remaining slots from
      the fall-through path, so the checked operation overlaps its own check
      (Section 6.2.1: "an operation and its tag check will happen
      concurrently ... if the operation is moved in a delayed slot of the
      branch").  Memory operations moved this way are marked speculative:
      on the error path they may touch a garbage address before the program
      aborts, and the simulator ignores such faults;
    - {b squashing}: branches marked [Likely] (loop back-edges) become
      squashing branches whose slots hold copies of the first instructions
      of the target block; when the branch is not taken the slots are
      annulled and counted as squashed cycles (Figure 2).

    Unfilled slots become no-ops.  A no-op sitting in the slot of a
    tag-checking branch inherits the branch's annotation, because the paper
    charges unused delay slots to the cost of tag checking (Section 3.4). *)

module Insn = Tagsim_mipsx.Insn
module Annot = Tagsim_mipsx.Annot
module Reg = Tagsim_mipsx.Reg

type config = {
  hoist : bool;
  fill_unlikely : bool;
  squash_likely : bool;
}

let default = { hoist = true; fill_unlikely = true; squash_likely = true }
let off = { hoist = false; fill_unlikely = false; squash_likely = false }

(* An output cell; [barrier] stops the hoisting window (labels, control
   instructions and already-placed slot instructions are barriers). *)
type cell = { item : Buf.item; barrier : bool }

let needs_slots (insn : string Insn.t) =
  match insn with
  | Insn.B _ | Insn.Bi _ | Insn.Btag _ | Insn.J _ | Insn.Jal _ | Insn.Jr _
  | Insn.Jalr _ ->
      true
  | Insn.Alu _ | Insn.Alui _ | Insn.Li _ | Insn.La _ | Insn.Mv _ | Insn.Ld _
  | Insn.St _ | Insn.Add_gen _ | Insn.Sub_gen _ | Insn.Settd _ | Insn.Rett
  | Insn.Trap _ | Insn.Halt | Insn.Nop ->
      false

let branch_hint (insn : string Insn.t) =
  match insn with
  | Insn.B (b, _) -> b.Insn.hint
  | Insn.Bi (b, _) -> b.Insn.bi_hint
  | Insn.Btag (b, _) -> b.Insn.bt_hint
  | _ -> Insn.No_hint

let branch_target (insn : string Insn.t) =
  match insn with
  | Insn.B (_, l) | Insn.Bi (_, l) | Insn.Btag (_, l) -> Some l
  | _ -> None

(* Registers that must not be written by a hoisted instruction: the branch
   sources, plus [ra] for jumps that read or write it. *)
let protected_regs (insn : string Insn.t) =
  let base = Insn.reads insn in
  match insn with
  | Insn.Jal _ | Insn.Jalr _ -> Reg.ra :: base
  | _ -> base

let hoistable ~protect ~protect_reads (s : Buf.slot) =
  (not (Insn.is_control s.insn))
  && (not (Insn.may_trap s.insn))
  && (not s.speculative)
  && s.insn <> Insn.Nop
  && (match Insn.writes s.insn with
     | None -> true
     | Some rd -> not (List.mem rd protect))
  && not (List.exists (fun r -> List.mem r protect_reads) (Insn.reads s.insn))

(* Instructions safe to pull from the fall-through path of a branch that
   is rarely taken; they execute even when the branch IS taken, so what
   is allowed depends on the taken path:

   - [Unlikely]: the taken path aborts or re-executes the fall-through
     (the allocation retry), so stores are fine too; writes to registers
     the collector treats as roots are not (a stale speculative value
     must never become a root);
   - [Slow_path]: the taken path resumes after recomputing the result,
     so only register work the slow path overwrites anyway may move:
     no memory effects, no root writes. *)
let fallthrough_safe ~hint (s : Buf.slot) =
  (not (Insn.is_control s.insn))
  && (not (Insn.may_trap s.insn))
  && s.insn <> Insn.Nop
  && (hint <> Insn.Slow_path || not (Insn.has_memory_effect s.insn))
  && (match Insn.writes s.insn with
     | None -> true
     | Some r -> not (List.mem r Reg.gc_roots))

let slot_annot (branch_annot : Annot.t) =
  match branch_annot.Annot.kind with
  | Annot.Check _ | Annot.Extract _ | Annot.Garith | Annot.Alloc
  | Annot.Gc_work ->
      branch_annot
  | Annot.Plain | Annot.Insert | Annot.Remove | Annot.Slot_fill ->
      Annot.make Annot.Slot_fill

let make_speculative (s : Buf.slot) =
  if Insn.has_memory_effect s.insn then { s with speculative = true } else s

(* --- Pass A: slot every control instruction. --- *)

let pass_a config (input : Buf.item list) : Buf.item list =
  let out : cell list ref = ref [] in
  let push ?(barrier = false) item = out := { item; barrier } :: !out in
  (* Take up to [n] hoistable instructions from the end of the current
     block; returns them in program order and removes them from [out]. *)
  let take_hoisted n protect protect_reads =
    if not config.hoist then []
    else
      let rec loop acc n l =
        match l with
        | { item = Buf.I s; barrier = false } :: rest
          when n > 0 && hoistable ~protect ~protect_reads s ->
            loop (s :: acc) (n - 1) rest
        | _ ->
            out := l;
            acc
      in
      loop [] n !out
  in
  let rec go input =
    match input with
    | [] -> ()
    | (Buf.L _ as item) :: rest ->
        push ~barrier:true item;
        go rest
    | (Buf.C _ as item) :: rest ->
        push item;
        go rest
    | (Buf.I s as item) :: rest when not (needs_slots s.insn) ->
        push item;
        go rest
    | (Buf.I branch as item) :: rest ->
        let protect = protected_regs branch.insn in
        let protect_reads =
          (* [jal] writes [ra] before the slots execute, so a hoisted
             instruction must not read the old value. *)
          match branch.insn with
          | Insn.Jal _ | Insn.Jalr _ -> [ Reg.ra ]
          | _ -> []
        in
        let hoisted = take_hoisted 2 protect protect_reads in
        push ~barrier:true item;
        List.iter (fun s -> push ~barrier:true (Buf.I s)) hoisted;
        let filled = List.length hoisted in
        let want = 2 - filled in
        let hint = branch_hint branch.insn in
        let rest, pulled =
          if
            want > 0 && config.fill_unlikely
            && (hint = Insn.Unlikely || hint = Insn.Slow_path)
          then
            let rec pull acc n l =
              match l with
              | Buf.I s :: tl when n > 0 && fallthrough_safe ~hint s ->
                  pull (make_speculative s :: acc) (n - 1) tl
              | _ -> (l, List.rev acc)
            in
            pull [] want rest
          else (rest, [])
        in
        List.iter (fun s -> push ~barrier:true (Buf.I s)) pulled;
        let missing = 2 - filled - List.length pulled in
        for _ = 1 to missing do
          push ~barrier:true
            (Buf.I
               {
                 insn = Insn.Nop;
                 annot = slot_annot branch.annot;
                 speculative = false;
               })
        done;
        go rest
  in
  go input;
  List.rev_map (fun c -> c.item) !out

(* --- Pass B: squashing branches filled from their target. --- *)

(* For each [Likely] branch whose two slots are no-ops, copy the first one
   or two instructions of the target block into the slots, turn the branch
   into a squashing branch, and retarget it past the copied instructions
   (via a fresh label inserted after them). *)

let pass_b buf_fresh (items : Buf.item list) : Buf.item list =
  let arr = Array.of_list items in
  let n = Array.length arr in
  (* Map label -> position. *)
  let pos = Hashtbl.create 64 in
  Array.iteri
    (fun i item ->
      match item with Buf.L l -> Hashtbl.replace pos l i | Buf.I _ | Buf.C _ -> ())
    arr;
  (* How many leading instructions of the block at [i] can be copied. *)
  let copyable_at i =
    let rec skip_comments j =
      if j < n then
        match arr.(j) with
        | Buf.C _ | Buf.L _ -> skip_comments (j + 1)
        | Buf.I _ -> j
      else j
    in
    let j = skip_comments i in
    let ok k =
      k < n
      &&
      match arr.(k) with
      | Buf.I s ->
          (not (Insn.is_control s.insn)) && s.insn <> Insn.Nop
          && not s.speculative
      | Buf.L _ | Buf.C _ -> false
    in
    if ok j then if ok (j + 1) then (j, 2) else (j, 1) else (j, 0)
  in
  (* Split labels inserted after copied instructions: (position, label). *)
  let splits = Hashtbl.create 16 in
  let split_label_after target count =
    match Hashtbl.find_opt pos target with
    | None -> None
    | Some i ->
        let start, avail = copyable_at i in
        let count = min count avail in
        if count = 0 then None
        else
          let key = (start, count) in
          let lbl =
            match Hashtbl.find_opt splits key with
            | Some l -> l
            | None ->
                let l = buf_fresh "sq" in
                Hashtbl.add splits key l;
                l
          in
          let copies =
            List.init count (fun k ->
                match arr.(start + k) with
                | Buf.I s -> s
                | Buf.L _ | Buf.C _ -> assert false)
          in
          Some (lbl, copies)
  in
  let rewritten =
    Array.to_list arr
    |> List.mapi (fun i item -> (i, item))
    |> List.concat_map (fun (i, item) ->
           match item with
           | Buf.I s when branch_hint s.insn = Insn.Likely -> (
               (* Only rewrite when both slots are no-ops. *)
               let slots_are_noops =
                 i + 2 < n
                 &&
                 match (arr.(i + 1), arr.(i + 2)) with
                 | Buf.I s1, Buf.I s2 ->
                     s1.insn = Insn.Nop && s2.insn = Insn.Nop
                 | _ -> false
               in
               if not slots_are_noops then [ (i, item) ]
               else
                 match branch_target s.insn with
                 | None -> [ (i, item) ]
                 | Some target -> (
                     match split_label_after target 2 with
                     | None -> [ (i, item) ]
                     | Some (lbl, copies) ->
                         let squashed =
                           match s.insn with
                           | Insn.B (b, _) ->
                               Insn.B ({ b with Insn.squash = true }, lbl)
                           | Insn.Bi (b, _) ->
                               Insn.Bi ({ b with Insn.bi_squash = true }, lbl)
                           | Insn.Btag (b, _) ->
                               Insn.Btag ({ b with Insn.bt_squash = true }, lbl)
                           | other -> other
                         in
                         (* Replace the branch and overwrite its no-op slots
                            with the copies (pad if only one copy). *)
                         let slot_items =
                           List.map (fun c -> (i, Buf.I c)) copies
                           @
                           if List.length copies = 1 then
                             [
                               ( i,
                                 Buf.I
                                   {
                                     Buf.insn = Insn.Nop;
                                     annot = slot_annot s.annot;
                                     speculative = false;
                                   } );
                             ]
                           else []
                         in
                         (i, Buf.I { s with Buf.insn = squashed }) :: slot_items
                         @ [ (i, Buf.C "squash-filled") ]))
           | _ -> [ (i, item) ])
  in
  (* Drop the original no-op slots that followed rewritten branches, and
     insert the split labels. *)
  let rewritten_positions = Hashtbl.create 16 in
  List.iter
    (fun (i, item) ->
      match item with
      | Buf.C "squash-filled" -> Hashtbl.replace rewritten_positions i ()
      | _ -> ())
    rewritten;
  let keep =
    List.filter_map
      (fun (i, item) ->
        match item with
        | Buf.C "squash-filled" -> None
        | _ -> Some (i, item))
      rewritten
  in
  (* Remove the two no-op slot items that directly follow a rewritten
     branch position in the original array. *)
  let drop = Hashtbl.create 16 in
  Hashtbl.iter
    (fun i () ->
      Hashtbl.replace drop (i + 1) ();
      Hashtbl.replace drop (i + 2) ())
    rewritten_positions;
  let without_old_slots =
    List.filter
      (fun (i, item) ->
        match item with
        | Buf.I { insn = Insn.Nop; _ } -> not (Hashtbl.mem drop i)
        | _ -> true)
      keep
  in
  (* Insert split labels: label (start, count) goes after original index
     start + count - 1. *)
  let labels_after : (int, string list) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (start, count) lbl ->
      let at = start + count - 1 in
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt labels_after at)
      in
      Hashtbl.replace labels_after at (lbl :: existing))
    splits;
  let inserted = Hashtbl.create 16 in
  List.concat_map
    (fun (i, item) ->
      match Hashtbl.find_opt labels_after i with
      | Some lbls when not (Hashtbl.mem inserted i) ->
          Hashtbl.replace inserted i ();
          item :: List.map (fun l -> Buf.L l) lbls
      | Some _ | None -> [ item ])
    without_old_slots

let run ?(config = default) ~fresh items =
  let a = pass_a config items in
  if config.squash_likely then pass_b fresh a else a
