lib/asm/buf.ml: Fmt List Printf Tagsim_mipsx
