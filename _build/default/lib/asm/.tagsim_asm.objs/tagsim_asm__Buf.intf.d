lib/asm/buf.mli: Format Tagsim_mipsx
