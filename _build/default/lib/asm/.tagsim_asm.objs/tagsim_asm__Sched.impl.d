lib/asm/sched.ml: Array Buf Hashtbl List Option Tagsim_mipsx
