lib/asm/image.ml: Array Buf Fmt Hashtbl List Sched Tagsim_mipsx
