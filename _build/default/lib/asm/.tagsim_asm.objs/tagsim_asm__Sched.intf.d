lib/asm/sched.mli: Buf
