lib/asm/image.mli: Buf Format Hashtbl Sched Tagsim_mipsx
