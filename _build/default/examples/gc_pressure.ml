(* The dedgc experiment, as a curve: run the deduce retriever under
   shrinking semispaces and watch the copying collector take over the
   execution profile (the paper's dedgc spends ~50% of its time
   collecting).  The collector is simulated machine code, so its tag
   dispatch shows up in the extraction/checking statistics like any other
   code.

   Run with:  dune exec examples/gc_pressure.exe *)

let entry = Tagsim.Benchmarks.find "deduce"

let () =
  Fmt.pr "%10s %12s %12s %8s %10s@." "semispace" "cycles" "gc-cycles"
    "gc-share" "collections";
  List.iter
    (fun semi ->
      let _, result =
        Tagsim.Program.run_source ~scheme:Tagsim.Scheme.high5
          ~support:Tagsim.Support.software
          ~sizes:{ Tagsim.Layout.stack_bytes = 1 lsl 18; semi_bytes = semi }
          entry.Tagsim.Benchmarks.source
      in
      let stats = result.Tagsim.Program.stats in
      let total = Tagsim.Stats.total stats in
      let gc = Tagsim.Stats.gc stats in
      Fmt.pr "%10d %12d %12d %7.1f%% %10d@." semi total gc
        (100.0 *. float_of_int gc /. float_of_int total)
        result.Tagsim.Program.gc_collections)
    [ 65536; 32768; 16384; 8192; 6400; 6144 ]
