(* A tour of the four tag schemes (Sections 2.1, 4.2 and 5.2 of the
   paper): run the same program under each and compare both the cycle
   counts and the tag-operation profile.  The low-tag schemes eliminate
   tag removal entirely; the High6 encoding cheapens generic adds.

   Run with:  dune exec examples/tag_scheme_tour.exe *)

let entry = Tagsim.Benchmarks.find "boyer"

let () =
  Fmt.pr "%-8s %10s %8s %8s %8s %8s@." "scheme" "cycles" "insert" "remove"
    "check" "garith";
  List.iter
    (fun scheme ->
      let support = Tagsim.Support.with_checking Tagsim.Support.software in
      let _, result =
        Tagsim.Program.run_source ~scheme ~support
          ~sizes:entry.Tagsim.Benchmarks.sizes entry.Tagsim.Benchmarks.source
      in
      let stats = result.Tagsim.Program.stats in
      Fmt.pr "%-8s %10d %8d %8d %8d %8d@." scheme.Tagsim.Scheme.name
        (Tagsim.Stats.total stats)
        (Tagsim.Stats.insertion stats)
        (Tagsim.Stats.removal stats)
        (Tagsim.Stats.tag_checking stats)
        (Tagsim.Stats.generic_arith stats))
    Tagsim.Scheme.all;
  Fmt.pr
    "@.Note how low2/low3 drop removal to (almost) zero — the Section 5.2 \
     result — while@.every scheme computes the same value.@."
