(* What would LISP-machine-style hardware buy on this workload?  The
   Table 2 question, asked of a single program: run it under each degree
   of hardware tag support and report the speedup over the plain software
   implementation.

   Run with:  dune exec examples/hardware_what_if.exe [benchmark] *)

let configs =
  [
    ("software (baseline)", Tagsim.Support.software);
    ("row 1: tag-ignoring memory", Tagsim.Support.row1_hw);
    ("row 2: tag-field branches", Tagsim.Support.row2);
    ("row 3: rows 1+2", Tagsim.Support.row3);
    ("row 4: hardware generic arith", Tagsim.Support.row4);
    ("row 5: parallel checks (lists)", Tagsim.Support.row5);
    ("row 6: parallel checks (all)", Tagsim.Support.row6);
    ("row 7: everything", Tagsim.Support.row7);
    ("SPUR-like", Tagsim.Support.spur);
  ]

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "deduce" in
  let entry = Tagsim.Benchmarks.find name in
  Fmt.pr "workload: %s (full run-time checking)@.@." name;
  let cycles support =
    let _, result =
      Tagsim.Program.run_source ~scheme:Tagsim.Scheme.high5
        ~support:(Tagsim.Support.with_checking support)
        ~sizes:entry.Tagsim.Benchmarks.sizes entry.Tagsim.Benchmarks.source
    in
    Tagsim.Stats.total result.Tagsim.Program.stats
  in
  let base = cycles Tagsim.Support.software in
  List.iter
    (fun (label, support) ->
      let c = cycles support in
      Fmt.pr "%-32s %10d cycles   %+6.2f%%@." label c
        (100.0 *. float_of_int (base - c) /. float_of_int base))
    configs
