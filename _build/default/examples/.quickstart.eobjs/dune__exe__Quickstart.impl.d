examples/quickstart.ml: Fmt Option Tagsim
