examples/tag_scheme_tour.mli:
