examples/hardware_what_if.mli:
