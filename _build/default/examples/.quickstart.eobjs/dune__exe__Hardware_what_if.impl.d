examples/hardware_what_if.ml: Array Fmt List Sys Tagsim
