examples/tag_scheme_tour.ml: Fmt List Tagsim
