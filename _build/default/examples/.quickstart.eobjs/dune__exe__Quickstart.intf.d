examples/quickstart.mli:
