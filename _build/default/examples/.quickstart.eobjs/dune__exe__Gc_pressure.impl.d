examples/gc_pressure.ml: Fmt List Tagsim
