(* Quickstart: compile a small Lisp program for the simulated MIPS-X-like
   machine, run it, and look at where the cycles went.

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {|
(de squares (n)
  (let ((l nil))
    (dotimes (i n) (push (* i i) l))
    (reverse l)))

(de main ()
  (let ((l (squares 10)) (s 0))
    (dolist (x l) (setq s (+ s x)))
    (list s (length l))))
|}

let () =
  (* Pick a tag scheme (where the tag lives in the word) and a support
     configuration (which checks run, and what hardware helps). *)
  let scheme = Tagsim.Scheme.high5 in
  let support = Tagsim.Support.with_checking Tagsim.Support.software in
  let _program, result = Tagsim.Program.run_source ~scheme ~support source in
  (match result.Tagsim.Program.value with
  | Some v -> Fmt.pr "result: %s@." (Tagsim.Program.hval_to_string v)
  | None ->
      Fmt.pr "aborted: %s@." (Option.value ~default:"?" result.Tagsim.Program.abort));
  let stats = result.Tagsim.Program.stats in
  let total = Tagsim.Stats.total stats in
  Fmt.pr "total cycles: %d@." total;
  let pct n = 100.0 *. float_of_int n /. float_of_int total in
  Fmt.pr "tag insertion  %5.2f%%@." (pct (Tagsim.Stats.insertion stats));
  Fmt.pr "tag removal    %5.2f%%@." (pct (Tagsim.Stats.removal stats));
  Fmt.pr "tag checking   %5.2f%%  (including extraction)@."
    (pct (Tagsim.Stats.tag_checking stats));
  Fmt.pr "generic arith  %5.2f%%@." (pct (Tagsim.Stats.generic_arith stats));
  (* How much of the checking cost exists only because run-time checking
     is on?  (The dark-grey bars of the paper's Figure 1.) *)
  Fmt.pr "added by rtc   %5.2f%%@."
    (pct (Tagsim.Stats.tag_checking ~checking:true stats))
